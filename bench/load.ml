(* Closed-loop load generator for the query server (docs/serving.md).

   Each analyst is a thread in a closed loop: submit one request, wait for
   the answer, submit the next — so concurrency equals the analyst count and
   the broker's batch size is bounded by it. Latency is measured around each
   submit; queue wait and batch size come back in the responses themselves,
   so the numbers below need no telemetry instance.

   Modes:
     load.exe --compare --json
         In-process A/B/C on the 2^16-universe regression config: the same
         workload at --max-batch, again at batch size 1 (the sequential
         baseline), and again at --max-batch with the write-ahead journal
         fsyncing every batch — reporting the batching speedup and the
         journal overhead, and merging a "server" section into
         BENCH_pmw.json (pmw-kernel-bench/3 schema: per-leg runs plus a
         "latency" block keyed by leg label with p50/p90/p99/max ms).
     load.exe --socket /tmp/pmw.sock --duration-s 5
         Drive an external `pmw_cli serve` over its Unix socket for a fixed
         duration (the CI server-smoke job).
     load.exe
         One in-process run, printed only.

   The default budget is deliberately generous (--eps 20): the bench
   measures serving capacity, not exhaustion — backpressure behaviour has
   its own tests in test/test_server.ml. *)

module Broker = Pmw_server.Broker
module Net = Pmw_server.Net
module Protocol = Pmw_server.Protocol
module Session = Pmw_session.Session
module Common = Pmw_experiments.Common
module Rng = Pmw_rng.Rng

type sample = {
  s_latency : float;
  s_status : string;
  s_wait : float option;
  s_batch : int option;
}

type run_result = {
  r_label : string;
  r_max_batch : int;
  r_analysts : int;
  r_completed : int;
  r_wall_s : float;
  r_latencies : float array;  (* sorted ascending, seconds *)
  r_statuses : (string * int) list;
  r_wait_mean_s : float;
  r_batch_mean : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(min (n - 1) (int_of_float (Float.of_int (n - 1) *. p +. 0.5)))

let summarize ~label ~max_batch ~analysts ~wall_s samples =
  let all = List.concat (Array.to_list samples) in
  let lat = Array.of_list (List.map (fun s -> s.s_latency) all) in
  Array.sort compare lat;
  let statuses =
    List.sort_uniq compare (List.map (fun s -> s.s_status) all)
    |> List.map (fun st -> (st, List.length (List.filter (fun s -> s.s_status = st) all)))
  in
  let mean f =
    let vals = List.filter_map f all in
    if vals = [] then 0. else List.fold_left ( +. ) 0. vals /. float_of_int (List.length vals)
  in
  {
    r_label = label;
    r_max_batch = max_batch;
    r_analysts = analysts;
    r_completed = List.length all;
    r_wall_s = wall_s;
    r_latencies = lat;
    r_statuses = statuses;
    r_wait_mean_s = mean (fun s -> s.s_wait);
    r_batch_mean = mean (fun s -> Option.map float_of_int s.s_batch);
  }

let throughput r = if r.r_wall_s > 0. then float_of_int r.r_completed /. r.r_wall_s else 0.

let print_result r =
  let ms v = v *. 1e3 in
  Printf.printf
    "%-10s batch<=%-3d %d analysts: %d requests in %.2fs = %.1f req/s\n\
    \           latency ms p50 %.2f  p90 %.2f  p99 %.2f  max %.2f; queue wait mean %.2f ms; \
     batch mean %.2f\n"
    r.r_label r.r_max_batch r.r_analysts r.r_completed r.r_wall_s (throughput r)
    (ms (percentile r.r_latencies 0.50))
    (ms (percentile r.r_latencies 0.90))
    (ms (percentile r.r_latencies 0.99))
    (ms (percentile r.r_latencies 1.0))
    (ms r.r_wait_mean_s) r.r_batch_mean;
  List.iter (fun (st, n) -> Printf.printf "           %6d %s\n" n st) r.r_statuses;
  Printf.printf "%!"

let status_of_response (rsp : Protocol.response) = Protocol.status_tag rsp.Protocol.rsp_status

(* The closed loop an analyst runs, generic over the transport. [call] is
   Broker.submit (in-process) or Net.Client.call (socket). Stops after
   [requests] calls or at [deadline], whichever comes first. *)
let analyst_loop ~call ~queries ~requests ~deadline ~analyst =
  let out = ref [] in
  let r = ref 0 in
  let continue () =
    (match requests with Some n -> !r < n | None -> true)
    && match deadline with Some d -> Unix.gettimeofday () < d | None -> true
  in
  while continue () do
    let name = queries.(!r mod Array.length queries) in
    let req =
      { Protocol.req_id = !r; req_analyst = analyst; req_query = name; req_rid = None;
        req_shards = None; req_trace = None; req_pspan = None; req_rows = None }
    in
    let t0 = Unix.gettimeofday () in
    (match call req with
    | Some (rsp : Protocol.response) ->
        let t1 = Unix.gettimeofday () in
        out :=
          {
            s_latency = t1 -. t0;
            s_status = status_of_response rsp;
            s_wait = rsp.Protocol.rsp_queue_wait_s;
            s_batch = rsp.Protocol.rsp_batch;
          }
          :: !out
    | None -> ());
    incr r
  done;
  !out

let drive ~label ~max_batch ~analysts ~queries ~requests ~duration_s ~make_call ~finish =
  let samples = Array.make analysts [] in
  let deadline = Option.map (fun d -> Unix.gettimeofday () +. d) duration_s in
  let t_start = Unix.gettimeofday () in
  let t_done = ref t_start in
  let threads =
    List.init analysts (fun i ->
        Thread.create
          (fun () ->
            let analyst = Printf.sprintf "an%d" i in
            let call = make_call i in
            samples.(i) <- analyst_loop ~call ~queries ~requests ~deadline ~analyst)
          ())
  in
  (* The coordinator joins the analysts and then releases whatever the
     transport needs released (the broker's drain, the clients' sockets);
     the caller's current thread may be busy being the serializer. *)
  let coordinator =
    Thread.create
      (fun () ->
        List.iter Thread.join threads;
        t_done := Unix.gettimeofday ();
        finish ())
      ()
  in
  (coordinator, fun () -> summarize ~label ~max_batch ~analysts ~wall_s:(!t_done -. t_start) samples)

(* --- in-process serving --- *)

(* levels for a d=2 regression grid with 5 label levels: levels^2 * 5 ~ 2^bits *)
let levels_for_bits bits = max 2 (int_of_float (sqrt (ldexp 1. bits /. 5.)))

let run_inproc ?journal_path ~label ~bits ~n ~eps ~t_max ~analysts ~requests ~max_batch () =
  let w = Common.Workload.regression ~d:2 ~levels:(levels_for_bits bits) () in
  let universe = w.Common.Workload.universe in
  let dataset = w.Common.Workload.sample ~n (Rng.create ~seed:2 ()) in
  let k = (analysts * requests) + 16 in
  let config =
    Pmw_core.Config.practical ~universe
      ~privacy:(Pmw_dp.Params.create ~eps ~delta:1e-6)
      ~alpha:0.1 ~beta:0.05 ~scale:w.Common.Workload.scale ~k ~t_max ~solver_iters:200 ()
  in
  let session = Session.create ~config ~dataset ~rng:(Rng.create ~seed:3 ()) () in
  let registry = Hashtbl.create 16 in
  List.iter (fun q -> Hashtbl.replace registry q.Pmw_core.Cm_query.name q) w.Common.Workload.queries;
  let journal =
    Option.map
      (fun path ->
        (try Sys.remove path with Sys_error _ -> ());
        match Pmw_server.Journal.open_journal ~path with
        | Ok (j, _) -> j
        | Error why -> failwith why)
      journal_path
  in
  let broker =
    Broker.create
      ~config:
        { Broker.max_batch; quota = 0; retry_after_s = 0.05; dedup_cap = 4096; checkpoint_every = 0 }
      ?journal ~session ~resolve:(Hashtbl.find_opt registry) ()
  in
  let queries =
    Array.of_list (List.map (fun q -> q.Pmw_core.Cm_query.name) w.Common.Workload.queries)
  in
  let coordinator, result =
    drive ~label ~max_batch ~analysts ~queries ~requests:(Some requests) ~duration_s:None
      ~make_call:(fun _ -> fun req -> Some (Broker.submit broker req))
      ~finish:(fun () -> Broker.shutdown broker)
  in
  Broker.run broker;
  Thread.join coordinator;
  Option.iter Pmw_server.Journal.close journal;
  (result (), Pmw_data.Universe.size universe)

(* --- in-process fleet serving --- *)

(* The same workload behind a sharded fleet: N disjoint block shards, each
   with its own session and serializer domain, composed by the router.
   Analyst i scopes its queries to shard (i mod shards) — the steady-state
   routing pattern where each shard serves its own record block without
   fan-out barriers — so throughput measures per-shard serialization, not
   the composition path (the router tests own that). *)
let run_fleet ~label ~bits ~n ~eps ~t_max ~analysts ~requests ~max_batch ~shards () =
  let module Shard = Pmw_server.Shard in
  let module Router = Pmw_server.Router in
  let w = Common.Workload.regression ~d:2 ~levels:(levels_for_bits bits) () in
  let universe = w.Common.Workload.universe in
  let dataset = w.Common.Workload.sample ~n (Rng.create ~seed:2 ()) in
  let k = (analysts * requests) + 16 in
  let config =
    Pmw_core.Config.practical ~universe
      ~privacy:(Pmw_dp.Params.create ~eps ~delta:1e-6)
      ~alpha:0.1 ~beta:0.05 ~scale:w.Common.Workload.scale ~k ~t_max ~solver_iters:200 ()
  in
  let registry = Hashtbl.create 16 in
  List.iter (fun q -> Hashtbl.replace registry q.Pmw_core.Cm_query.name q) w.Common.Workload.queries;
  let blocks = Shard.partition dataset ~by:Shard.Block ~shards in
  let fleet =
    Array.of_list
      (List.mapi
         (fun i block ->
           Shard.create ~id:i
             ~weight:(float_of_int (Pmw_data.Dataset.size block) /. float_of_int n)
             ~config:
               {
                 Broker.max_batch;
                 quota = 0;
                 retry_after_s = 0.05;
                 dedup_cap = 4096;
                 checkpoint_every = 0;
               }
             ~make_session:(fun tel ->
               let pool = Pmw_parallel.Pool.create ~domains:1 () in
               Session.create ~pool ~telemetry:tel
                 ~label:(Printf.sprintf "shard%d" i)
                 ~config ~dataset:block
                 ~rng:(Rng.create ~seed:(3 + i) ())
                 ())
             ~resolve:(Hashtbl.find_opt registry) ())
         blocks)
  in
  Array.iter
    (fun s ->
      match Shard.start s with
      | Ok () -> ()
      | Error m -> failwith (Printf.sprintf "shard %d: %s" (Shard.id s) m))
    fleet;
  let router = Router.create ~shards:fleet () in
  let queries =
    Array.of_list (List.map (fun q -> q.Pmw_core.Cm_query.name) w.Common.Workload.queries)
  in
  let coordinator, result =
    drive ~label ~max_batch ~analysts ~queries ~requests:(Some requests) ~duration_s:None
      ~make_call:(fun i ->
        fun req ->
          Some (Router.submit router { req with Protocol.req_shards = Some [ i mod shards ] }))
      ~finish:(fun () -> Array.iter Shard.stop fleet)
  in
  Thread.join coordinator;
  result ()

(* --- socket client mode --- *)

(* --queries overrides this stock panel for other workloads. *)
let default_panel = Bench_json.default_panel

let run_socket ~path ~queries ~analysts ~requests ~duration_s () =
  (* The 30 s deadline is a watchdog, not a latency target: a socket bench
     against a wedged server should fail, not hang the CI job. *)
  let clients = Array.init analysts (fun _ -> Net.Client.connect ~deadline_s:30. path) in
  let coordinator, result =
    drive ~label:"socket" ~max_batch:0 ~analysts ~queries ~requests ~duration_s
      ~make_call:(fun i ->
        fun req ->
          match Net.Client.call clients.(i) req with
          | Ok rsp -> Some rsp
          | Error e ->
              Printf.eprintf "analyst %s: %s\n%!" req.Protocol.req_analyst
                (Net.Client.error_to_string e);
              None)
      ~finish:(fun () -> Array.iter Net.Client.close clients)
  in
  Thread.join coordinator;
  result ()

(* --- BENCH_pmw.json merge --- *)

let run_json r =
  let ms v = v *. 1e3 in
  Protocol.Obj
    [
      ("label", Protocol.Str r.r_label);
      ("max_batch", Protocol.Num (float_of_int r.r_max_batch));
      ("analysts", Protocol.Num (float_of_int r.r_analysts));
      ("requests", Protocol.Num (float_of_int r.r_completed));
      ("wall_s", Protocol.Num r.r_wall_s);
      ("throughput_rps", Protocol.Num (throughput r));
      ("latency_p50_ms", Protocol.Num (ms (percentile r.r_latencies 0.50)));
      ("latency_p90_ms", Protocol.Num (ms (percentile r.r_latencies 0.90)));
      ("latency_p99_ms", Protocol.Num (ms (percentile r.r_latencies 0.99)));
      ("latency_max_ms", Protocol.Num (ms (percentile r.r_latencies 1.0)));
      ("queue_wait_mean_ms", Protocol.Num (ms r.r_wait_mean_s));
      ("batch_size_mean", Protocol.Num r.r_batch_mean);
    ]

(* The v3 "latency" block: one object per comparison leg, keyed by the leg's
   label, so a dashboard (or the CI 5%-drift check) can read a percentile
   without scanning the "runs" array. *)
let latency_json results =
  let ms v = v *. 1e3 in
  Protocol.Obj
    (List.map
       (fun r ->
         ( r.r_label,
           Protocol.Obj
             [
               ("p50_ms", Protocol.Num (ms (percentile r.r_latencies 0.50)));
               ("p90_ms", Protocol.Num (ms (percentile r.r_latencies 0.90)));
               ("p99_ms", Protocol.Num (ms (percentile r.r_latencies 0.99)));
               ("max_ms", Protocol.Num (ms (percentile r.r_latencies 1.0)));
             ] ))
       results)

let merge_bench_json ~path ~bits ~universe_size ~results ~speedup ~journal_ratio ~fleet_shards
    ~fleet_ratio =
  let server =
    Protocol.Obj
      [
        ("universe_bits", Protocol.Num (float_of_int bits));
        ("universe_size", Protocol.Num (float_of_int universe_size));
        ("generator", Protocol.Str "bench/load.exe -- --compare --json");
        ("timestamp", Protocol.Str (Bench_json.iso8601_utc ()));
        ("runs", Protocol.Arr (List.map run_json results));
        ("latency", latency_json results);
        ("batching_speedup", Protocol.Num speedup);
        ("journal_throughput_ratio", Protocol.Num journal_ratio);
        ("fleet_shards", Protocol.Num (float_of_int fleet_shards));
        ("fleet_throughput_ratio", Protocol.Num fleet_ratio);
      ]
  in
  Bench_json.merge_section ~path ~section:"server"
    ~command:"bench/load.exe -- --compare --json" server

(* --- entry point --- *)

let () =
  let socket = ref None in
  let analysts = ref 8 in
  let requests = ref 16 in
  let duration = ref None in
  let max_batch = ref 16 in
  let bits = ref 16 in
  let n = ref 40_000 in
  let eps = ref 20. in
  let t_max = ref 12 in
  let compare_flag = ref false in
  let json = ref false in
  let shards = ref 4 in
  let panel = ref default_panel in
  let rec parse = function
    | [] -> ()
    | "--socket" :: v :: rest ->
        socket := Some v;
        parse rest
    | "--analysts" :: v :: rest ->
        analysts := int_of_string v;
        parse rest
    | "--requests" :: v :: rest ->
        requests := int_of_string v;
        parse rest
    | "--duration-s" :: v :: rest ->
        duration := Some (float_of_string v);
        parse rest
    | "--max-batch" :: v :: rest ->
        max_batch := int_of_string v;
        parse rest
    | "--universe-bits" :: v :: rest ->
        bits := int_of_string v;
        parse rest
    | "--n" :: v :: rest ->
        n := int_of_string v;
        parse rest
    | "--eps" :: v :: rest ->
        eps := float_of_string v;
        parse rest
    | "--t-max" :: v :: rest ->
        t_max := int_of_string v;
        parse rest
    | "--queries" :: v :: rest ->
        panel := Array.of_list (String.split_on_char ',' v);
        parse rest
    | "--compare" :: rest ->
        compare_flag := true;
        parse rest
    | "--shards" :: v :: rest ->
        shards := int_of_string v;
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %s\n\
           usage: load.exe [--socket PATH [--duration-s S] [--queries A,B,...]]\n\
          \       [--analysts N] [--requests N] [--max-batch N] [--universe-bits B]\n\
          \       [--n N] [--eps E] [--t-max T] [--compare] [--shards N] [--json]\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !socket with
  | Some path ->
      let requests = if !duration = None then Some !requests else None in
      let r = run_socket ~path ~queries:!panel ~analysts:!analysts ~requests ~duration_s:!duration () in
      print_result r
  | None ->
      let run ~label ~max_batch =
        run_inproc ~label ~bits:!bits ~n:!n ~eps:!eps ~t_max:!t_max ~analysts:!analysts
          ~requests:!requests ~max_batch ()
      in
      if not !compare_flag then begin
        let r, _ = run ~label:"batched" ~max_batch:!max_batch in
        print_result r
      end
      else begin
        let batched, universe_size = run ~label:"batched" ~max_batch:!max_batch in
        print_result batched;
        let sequential, _ = run ~label:"batch-1" ~max_batch:1 in
        print_result sequential;
        (* same workload again with the write-ahead journal fsyncing every
           batch: the durability tax the chaos layer's acceptance bound
           (within 20% of no-journal) holds against *)
        let journal_path = Filename.temp_file "pmw-load" ".journal" in
        let journaled, _ =
          run_inproc ~journal_path ~label:"journaled" ~bits:!bits ~n:!n ~eps:!eps ~t_max:!t_max
            ~analysts:!analysts ~requests:!requests ~max_batch:!max_batch ()
        in
        (try Sys.remove journal_path with Sys_error _ -> ());
        print_result journaled;
        (* the same workload again behind a --shards fleet: shard-scoped
           analysts measure what sharding costs (or buys, with real cores)
           relative to the single batched broker *)
        let fleet =
          run_fleet ~label:"fleet" ~bits:!bits ~n:!n ~eps:!eps ~t_max:!t_max ~analysts:!analysts
            ~requests:!requests ~max_batch:!max_batch ~shards:!shards ()
        in
        print_result fleet;
        let speedup =
          if throughput sequential > 0. then throughput batched /. throughput sequential else 0.
        in
        let journal_ratio =
          if throughput batched > 0. then throughput journaled /. throughput batched else 0.
        in
        let fleet_ratio =
          if throughput batched > 0. then throughput fleet /. throughput batched else 0.
        in
        Printf.printf
          "batching speedup: %.2fx; journaled throughput: %.1f%% of no-journal; %d-shard fleet \
           throughput: %.1f%% of single broker\n\
           %!"
          speedup (100. *. journal_ratio) !shards (100. *. fleet_ratio);
        if !json then
          merge_bench_json ~path:"BENCH_pmw.json" ~bits:!bits ~universe_size
            ~results:[ batched; sequential; journaled; fleet ] ~speedup ~journal_ratio
            ~fleet_shards:!shards ~fleet_ratio
      end
