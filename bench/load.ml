(* Closed-loop load generator for the query server (docs/serving.md).

   Each analyst is a thread in a closed loop: submit one request, wait for
   the answer, submit the next — so concurrency equals the analyst count and
   the broker's batch size is bounded by it. Latency is measured around each
   submit; queue wait and batch size come back in the responses themselves,
   so the numbers below need no telemetry instance.

   Modes:
     load.exe --compare --json
         In-process A/B on the 2^16-universe regression config: the same
         workload at --max-batch and again at batch size 1 (the sequential
         baseline), reporting the batching speedup and merging a "server"
         section into BENCH_pmw.json (pmw-kernel-bench/2 schema).
     load.exe --socket /tmp/pmw.sock --duration-s 5
         Drive an external `pmw_cli serve` over its Unix socket for a fixed
         duration (the CI server-smoke job).
     load.exe
         One in-process run, printed only.

   The default budget is deliberately generous (--eps 20): the bench
   measures serving capacity, not exhaustion — backpressure behaviour has
   its own tests in test/test_server.ml. *)

module Broker = Pmw_server.Broker
module Net = Pmw_server.Net
module Protocol = Pmw_server.Protocol
module Session = Pmw_session.Session
module Common = Pmw_experiments.Common
module Rng = Pmw_rng.Rng

type sample = {
  s_latency : float;
  s_status : string;
  s_wait : float option;
  s_batch : int option;
}

type run_result = {
  r_label : string;
  r_max_batch : int;
  r_analysts : int;
  r_completed : int;
  r_wall_s : float;
  r_latencies : float array;  (* sorted ascending, seconds *)
  r_statuses : (string * int) list;
  r_wait_mean_s : float;
  r_batch_mean : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(min (n - 1) (int_of_float (Float.of_int (n - 1) *. p +. 0.5)))

let summarize ~label ~max_batch ~analysts ~wall_s samples =
  let all = List.concat (Array.to_list samples) in
  let lat = Array.of_list (List.map (fun s -> s.s_latency) all) in
  Array.sort compare lat;
  let statuses =
    List.sort_uniq compare (List.map (fun s -> s.s_status) all)
    |> List.map (fun st -> (st, List.length (List.filter (fun s -> s.s_status = st) all)))
  in
  let mean f =
    let vals = List.filter_map f all in
    if vals = [] then 0. else List.fold_left ( +. ) 0. vals /. float_of_int (List.length vals)
  in
  {
    r_label = label;
    r_max_batch = max_batch;
    r_analysts = analysts;
    r_completed = List.length all;
    r_wall_s = wall_s;
    r_latencies = lat;
    r_statuses = statuses;
    r_wait_mean_s = mean (fun s -> s.s_wait);
    r_batch_mean = mean (fun s -> Option.map float_of_int s.s_batch);
  }

let throughput r = if r.r_wall_s > 0. then float_of_int r.r_completed /. r.r_wall_s else 0.

let print_result r =
  let ms v = v *. 1e3 in
  Printf.printf
    "%-10s batch<=%-3d %d analysts: %d requests in %.2fs = %.1f req/s\n\
    \           latency ms p50 %.2f  p90 %.2f  p99 %.2f  max %.2f; queue wait mean %.2f ms; \
     batch mean %.2f\n"
    r.r_label r.r_max_batch r.r_analysts r.r_completed r.r_wall_s (throughput r)
    (ms (percentile r.r_latencies 0.50))
    (ms (percentile r.r_latencies 0.90))
    (ms (percentile r.r_latencies 0.99))
    (ms (percentile r.r_latencies 1.0))
    (ms r.r_wait_mean_s) r.r_batch_mean;
  List.iter (fun (st, n) -> Printf.printf "           %6d %s\n" n st) r.r_statuses;
  Printf.printf "%!"

let status_of_response (rsp : Protocol.response) = Protocol.status_tag rsp.Protocol.rsp_status

(* The closed loop an analyst runs, generic over the transport. [call] is
   Broker.submit (in-process) or Net.Client.call (socket). Stops after
   [requests] calls or at [deadline], whichever comes first. *)
let analyst_loop ~call ~queries ~requests ~deadline ~analyst =
  let out = ref [] in
  let r = ref 0 in
  let continue () =
    (match requests with Some n -> !r < n | None -> true)
    && match deadline with Some d -> Unix.gettimeofday () < d | None -> true
  in
  while continue () do
    let name = queries.(!r mod Array.length queries) in
    let req = { Protocol.req_id = !r; req_analyst = analyst; req_query = name } in
    let t0 = Unix.gettimeofday () in
    (match call req with
    | Some (rsp : Protocol.response) ->
        let t1 = Unix.gettimeofday () in
        out :=
          {
            s_latency = t1 -. t0;
            s_status = status_of_response rsp;
            s_wait = rsp.Protocol.rsp_queue_wait_s;
            s_batch = rsp.Protocol.rsp_batch;
          }
          :: !out
    | None -> ());
    incr r
  done;
  !out

let drive ~label ~max_batch ~analysts ~queries ~requests ~duration_s ~make_call ~finish =
  let samples = Array.make analysts [] in
  let deadline = Option.map (fun d -> Unix.gettimeofday () +. d) duration_s in
  let t_start = Unix.gettimeofday () in
  let t_done = ref t_start in
  let threads =
    List.init analysts (fun i ->
        Thread.create
          (fun () ->
            let analyst = Printf.sprintf "an%d" i in
            let call = make_call i in
            samples.(i) <- analyst_loop ~call ~queries ~requests ~deadline ~analyst)
          ())
  in
  (* The coordinator joins the analysts and then releases whatever the
     transport needs released (the broker's drain, the clients' sockets);
     the caller's current thread may be busy being the serializer. *)
  let coordinator =
    Thread.create
      (fun () ->
        List.iter Thread.join threads;
        t_done := Unix.gettimeofday ();
        finish ())
      ()
  in
  (coordinator, fun () -> summarize ~label ~max_batch ~analysts ~wall_s:(!t_done -. t_start) samples)

(* --- in-process serving --- *)

(* levels for a d=2 regression grid with 5 label levels: levels^2 * 5 ~ 2^bits *)
let levels_for_bits bits = max 2 (int_of_float (sqrt (ldexp 1. bits /. 5.)))

let run_inproc ~label ~bits ~n ~eps ~t_max ~analysts ~requests ~max_batch () =
  let w = Common.Workload.regression ~d:2 ~levels:(levels_for_bits bits) () in
  let universe = w.Common.Workload.universe in
  let dataset = w.Common.Workload.sample ~n (Rng.create ~seed:2 ()) in
  let k = (analysts * requests) + 16 in
  let config =
    Pmw_core.Config.practical ~universe
      ~privacy:(Pmw_dp.Params.create ~eps ~delta:1e-6)
      ~alpha:0.1 ~beta:0.05 ~scale:w.Common.Workload.scale ~k ~t_max ~solver_iters:200 ()
  in
  let session = Session.create ~config ~dataset ~rng:(Rng.create ~seed:3 ()) () in
  let registry = Hashtbl.create 16 in
  List.iter (fun q -> Hashtbl.replace registry q.Pmw_core.Cm_query.name q) w.Common.Workload.queries;
  let broker =
    Broker.create
      ~config:{ Broker.max_batch; quota = 0; retry_after_s = 0.05 }
      ~session ~resolve:(Hashtbl.find_opt registry) ()
  in
  let queries =
    Array.of_list (List.map (fun q -> q.Pmw_core.Cm_query.name) w.Common.Workload.queries)
  in
  let coordinator, result =
    drive ~label ~max_batch ~analysts ~queries ~requests:(Some requests) ~duration_s:None
      ~make_call:(fun _ -> fun req -> Some (Broker.submit broker req))
      ~finish:(fun () -> Broker.shutdown broker)
  in
  Broker.run broker;
  Thread.join coordinator;
  (result (), Pmw_data.Universe.size universe)

(* --- socket client mode --- *)

(* Query names the stock `pmw_cli serve` regression workload (d=2)
   registers; `serve` prints its registered names at startup, and --queries
   overrides this list for other workloads. *)
let default_panel =
  [|
    "0.25*squared";
    "huber(0.5)";
    "absolute";
    "quantile(0.25)";
    "quantile(0.75)";
    "0.25*squared|mask=01";
    "0.25*squared|mask=10";
  |]

let run_socket ~path ~queries ~analysts ~requests ~duration_s () =
  let clients = Array.init analysts (fun _ -> Net.Client.connect path) in
  let coordinator, result =
    drive ~label:"socket" ~max_batch:0 ~analysts ~queries ~requests ~duration_s
      ~make_call:(fun i ->
        fun req ->
          match Net.Client.call clients.(i) req with
          | Ok rsp -> Some rsp
          | Error why ->
              Printf.eprintf "analyst %s: %s\n%!" req.Protocol.req_analyst why;
              None)
      ~finish:(fun () -> Array.iter Net.Client.close clients)
  in
  Thread.join coordinator;
  result ()

(* --- BENCH_pmw.json merge --- *)

(* Pretty printer for the merged document: objects multi-line down to the
   section level, arrays of objects one element per line, leaves compact —
   close enough to bench/main.ml's hand formatting to diff sanely. *)
let rec pretty ~depth buf j =
  let indent n = String.make (2 * n) ' ' in
  let compact j = Buffer.add_string buf (Protocol.json_to_string j) in
  match j with
  | Protocol.Obj fields when depth < 2 && fields <> [] ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (indent (depth + 1));
          Buffer.add_string buf (Protocol.json_to_string (Protocol.Str k));
          Buffer.add_string buf ": ";
          pretty ~depth:(depth + 1) buf v)
        fields;
      Buffer.add_string buf "\n";
      Buffer.add_string buf (indent depth);
      Buffer.add_string buf "}"
  | Protocol.Arr items
    when items <> [] && List.for_all (function Protocol.Obj _ -> true | _ -> false) items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (indent (depth + 1));
          compact item)
        items;
      Buffer.add_string buf "\n";
      Buffer.add_string buf (indent depth);
      Buffer.add_string buf "]"
  | j -> compact j

let iso8601_utc () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let run_json r =
  let ms v = v *. 1e3 in
  Protocol.Obj
    [
      ("label", Protocol.Str r.r_label);
      ("max_batch", Protocol.Num (float_of_int r.r_max_batch));
      ("analysts", Protocol.Num (float_of_int r.r_analysts));
      ("requests", Protocol.Num (float_of_int r.r_completed));
      ("wall_s", Protocol.Num r.r_wall_s);
      ("throughput_rps", Protocol.Num (throughput r));
      ("latency_p50_ms", Protocol.Num (ms (percentile r.r_latencies 0.50)));
      ("latency_p90_ms", Protocol.Num (ms (percentile r.r_latencies 0.90)));
      ("latency_p99_ms", Protocol.Num (ms (percentile r.r_latencies 0.99)));
      ("latency_max_ms", Protocol.Num (ms (percentile r.r_latencies 1.0)));
      ("queue_wait_mean_ms", Protocol.Num (ms r.r_wait_mean_s));
      ("batch_size_mean", Protocol.Num r.r_batch_mean);
    ]

let merge_bench_json ~path ~bits ~universe_size ~results ~speedup =
  let server =
    Protocol.Obj
      [
        ("universe_bits", Protocol.Num (float_of_int bits));
        ("universe_size", Protocol.Num (float_of_int universe_size));
        ("generator", Protocol.Str "bench/load.exe -- --compare --json");
        ("timestamp", Protocol.Str (iso8601_utc ()));
        ("runs", Protocol.Arr (List.map run_json results));
        ("batching_speedup", Protocol.Num speedup);
      ]
  in
  let existing =
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let raw = really_input_string ic len in
      close_in ic;
      match Protocol.json_of_string raw with Ok (Protocol.Obj fields) -> fields | _ -> []
    end
    else []
  in
  let fields =
    if existing = [] then
      [
        ("schema", Protocol.Str "pmw-kernel-bench/2");
        ("command", Protocol.Str "bench/load.exe -- --compare --json");
        ( "meta",
          Protocol.Obj
            [
              ("timestamp", Protocol.Str (iso8601_utc ()));
              ("ocaml", Protocol.Str Sys.ocaml_version);
            ] );
      ]
    else existing
  in
  let fields = List.remove_assoc "server" fields @ [ ("server", server) ] in
  let buf = Buffer.create 4096 in
  pretty ~depth:0 buf (Protocol.Obj fields);
  Buffer.add_char buf '\n';
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s (server section)\n%!" path

(* --- entry point --- *)

let () =
  let socket = ref None in
  let analysts = ref 8 in
  let requests = ref 16 in
  let duration = ref None in
  let max_batch = ref 16 in
  let bits = ref 16 in
  let n = ref 40_000 in
  let eps = ref 20. in
  let t_max = ref 12 in
  let compare_flag = ref false in
  let json = ref false in
  let panel = ref default_panel in
  let rec parse = function
    | [] -> ()
    | "--socket" :: v :: rest ->
        socket := Some v;
        parse rest
    | "--analysts" :: v :: rest ->
        analysts := int_of_string v;
        parse rest
    | "--requests" :: v :: rest ->
        requests := int_of_string v;
        parse rest
    | "--duration-s" :: v :: rest ->
        duration := Some (float_of_string v);
        parse rest
    | "--max-batch" :: v :: rest ->
        max_batch := int_of_string v;
        parse rest
    | "--universe-bits" :: v :: rest ->
        bits := int_of_string v;
        parse rest
    | "--n" :: v :: rest ->
        n := int_of_string v;
        parse rest
    | "--eps" :: v :: rest ->
        eps := float_of_string v;
        parse rest
    | "--t-max" :: v :: rest ->
        t_max := int_of_string v;
        parse rest
    | "--queries" :: v :: rest ->
        panel := Array.of_list (String.split_on_char ',' v);
        parse rest
    | "--compare" :: rest ->
        compare_flag := true;
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %s\n\
           usage: load.exe [--socket PATH [--duration-s S] [--queries A,B,...]]\n\
          \       [--analysts N] [--requests N] [--max-batch N] [--universe-bits B]\n\
          \       [--n N] [--eps E] [--t-max T] [--compare] [--json]\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !socket with
  | Some path ->
      let requests = if !duration = None then Some !requests else None in
      let r = run_socket ~path ~queries:!panel ~analysts:!analysts ~requests ~duration_s:!duration () in
      print_result r
  | None ->
      let run ~label ~max_batch =
        run_inproc ~label ~bits:!bits ~n:!n ~eps:!eps ~t_max:!t_max ~analysts:!analysts
          ~requests:!requests ~max_batch ()
      in
      if not !compare_flag then begin
        let r, _ = run ~label:"batched" ~max_batch:!max_batch in
        print_result r
      end
      else begin
        let batched, universe_size = run ~label:"batched" ~max_batch:!max_batch in
        print_result batched;
        let sequential, _ = run ~label:"batch-1" ~max_batch:1 in
        print_result sequential;
        let speedup =
          if throughput sequential > 0. then throughput batched /. throughput sequential else 0.
        in
        Printf.printf "batching speedup: %.2fx\n%!" speedup;
        if !json then
          merge_bench_json ~path:"BENCH_pmw.json" ~bits:!bits ~universe_size
            ~results:[ batched; sequential ] ~speedup
      end
