(* The benchmark harness.

   Two layers:
   1. The experiment harness (lib/experiments) — regenerates every table and
      figure of the paper's evaluation (Table 1 rows 1-4 and the F1-F5 prose
      claims). Run all of them (default) or one by id.
   2. Bechamel micro-benchmarks of the mechanism's inner operations (one per
      reproduced table/figure, timing the kernel that experiment stresses).

   Two layers plus a kernel regression harness: the before/after kernel
   suite times the pooled O(|X|) kernels against the pre-pool (seed)
   algorithms, replicated verbatim below, at |X| = 2^10 / 2^14 / 2^18.

   Usage:
     dune exec bench/main.exe                       # micro + kernels + experiments
     dune exec bench/main.exe -- list               # list experiment ids
     dune exec bench/main.exe -- t1-uglm            # one experiment
     dune exec bench/main.exe -- micro              # micro + kernel benchmarks only
     dune exec bench/main.exe -- micro --json       # also write BENCH_pmw.json
     dune exec bench/main.exe -- micro --json --quick  # |X| = 2^10 only (CI smoke) *)

open Bechamel
open Toolkit
module Common = Pmw_experiments.Common
module Registry = Pmw_experiments.Registry
module Universe = Pmw_data.Universe
module Histogram = Pmw_data.Histogram
module Rng = Pmw_rng.Rng

(* --- bechamel micro-benchmarks: the kernels behind each experiment --- *)

let micro_tests () =
  let rng = Rng.create ~seed:1 () in
  let universe = Universe.hypercube ~d:10 () in
  let hist = Pmw_data.Synth.zipf_histogram ~universe ~s:1. rng in
  let mw = Pmw_mw.Mw.create ~universe ~eta:0.3 () in
  let sv =
    Pmw_dp.Sparse_vector.create ~t_max:1_000_000 ~k:max_int ~threshold:1.
      ~privacy:(Pmw_dp.Params.create ~eps:1. ~delta:1e-6)
      ~sensitivity:0.001 ~rng ()
  in
  let scores = Array.init 1024 (fun i -> float_of_int (i mod 17)) in
  let workload = Common.Workload.regression ~d:2 ~levels:5 () in
  let dataset = workload.Common.Workload.sample ~n:10_000 (Rng.create ~seed:2 ()) in
  let query = List.hd workload.Common.Workload.queries in
  let dhat = Histogram.uniform workload.Common.Workload.universe in
  [
    (* T1.linear: the linear-PMW kernel = one histogram inner product, via
       the production path (memoized per-query value table + chunked dot) *)
    Test.make ~name:"t1-linear/query-eval"
      (Staged.stage
         (let lq =
            Pmw_core.Linear_pmw.counting_query ~name:"first-feature" (fun x ->
                x.Pmw_data.Point.features.(0) > 0.)
          in
          fun () -> Pmw_core.Linear_pmw.evaluate lq hist));
    (* T1.lipschitz & friends: one public argmin over the hypothesis *)
    Test.make ~name:"t1-lipschitz/public-argmin"
      (Staged.stage (fun () -> Pmw_core.Cm_query.minimize_on_histogram ~iters:50 query dhat));
    (* T1.uglm: one noisy-GD oracle call *)
    Test.make ~name:"t1-uglm/oracle-call"
      (Staged.stage
         (let oracle = Pmw_erm.Oracles.noisy_gd ~max_steps:50 () in
          let req =
            {
              Pmw_erm.Oracle.dataset;
              loss = query.Pmw_core.Cm_query.loss;
              domain = query.Pmw_core.Cm_query.domain;
              privacy = Pmw_dp.Params.create ~eps:0.1 ~delta:1e-7;
              rng;
              solver_iters = 50;
            }
          in
          fun () -> oracle.Pmw_erm.Oracle.run req));
    (* T1.strong: the exponential mechanism selection used offline *)
    Test.make ~name:"t1-strong/exp-mechanism"
      (Staged.stage (fun () ->
           Pmw_dp.Mechanisms.exponential ~eps:1. ~sensitivity:0.01 ~scores rng));
    (* F2/F5: one MW update over |X| = 1024 *)
    Test.make ~name:"f2-f5/mw-update"
      (Staged.stage (fun () -> Pmw_mw.Mw.update mw ~loss:(fun i -> float_of_int (i land 7))));
    (* F1/F4: one sparse-vector query *)
    Test.make ~name:"f1-f4/sv-query" (Staged.stage (fun () -> Pmw_dp.Sparse_vector.query sv 0.2));
    (* F3: one histogram normalization (softmax over |X|) *)
    Test.make ~name:"f3/distribution" (Staged.stage (fun () -> Pmw_mw.Mw.distribution mw));
    (* A3: one analytic Gaussian calibration (bisection) *)
    Test.make ~name:"a3/analytic-sigma"
      (Staged.stage (fun () ->
           Pmw_dp.Analytic_gaussian.sigma ~eps:0.7 ~delta:1e-6 ~sensitivity:1.));
    (* A6: one MWEM round (measurement + update) over |X| = 1024 *)
    Test.make ~name:"a6/mwem-round"
      (Staged.stage
         (let ds = Pmw_data.Dataset.of_histogram ~n:5_000 hist (Rng.create ~seed:3 ()) in
          let queries =
            Array.of_list (Pmw_core.Workloads.positive_marginals ~dim:10 ~order:1)
          in
          fun () ->
            Pmw_core.Mwem.run ~dataset:ds ~queries ~eps:1. ~rounds:1 ~replays:1
              ~rng:(Rng.create ~seed:4 ())
              ()));
    (* F7: one least-squares reconstruction decode (n = 64, k = 128) *)
    Test.make ~name:"f7/reconstruction-decode"
      (Staged.stage
         (let rng7 = Rng.create ~seed:5 () in
          let secret = Array.init 64 (fun i -> i mod 3 = 0) in
          let qs =
            Pmw_attacks.Reconstruction.random_subset_queries ~n:64 ~k:128 ~secret
              ~noise:(fun _ -> 0.)
              rng7
          in
          fun () -> Pmw_attacks.Reconstruction.reconstruct qs));
    (* A2 flavor: permute-and-flip selection over 1024 candidates *)
    Test.make ~name:"a2/permute-and-flip"
      (Staged.stage (fun () ->
           Pmw_dp.Mechanisms.permute_and_flip ~eps:1. ~sensitivity:0.01 ~scores rng));
  ]

let run_micro () =
  let tests = Test.make_grouped ~name:"pmw" ~fmt:"%s/%s" (micro_tests ()) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name v ->
      match Analyze.OLS.estimates v with
      | Some [ t ] -> rows := (name, t) :: !rows
      | Some _ | None -> ())
    results;
  let rows = List.sort compare !rows in
  Printf.printf "\n== micro-benchmarks (ns per call, OLS on monotonic clock) ==\n";
  List.iter (fun (name, t) -> Printf.printf "%-32s %12.0f ns\n" name t) rows;
  Printf.printf "%!"

(* --- kernel regression bench: the pooled kernels against the pre-pool
   (seed) algorithms, replicated verbatim from the original Mw/Special/
   Histogram implementations so "baseline" means the actual before-code. --- *)

module Pool = Pmw_parallel.Pool

let seed_log_sum_exp a =
  let n = Array.length a in
  if n = 0 then neg_infinity
  else begin
    let m = Array.fold_left Float.max neg_infinity a in
    if m = neg_infinity then neg_infinity
    else begin
      let acc = ref 0. in
      for i = 0 to n - 1 do
        acc := !acc +. exp (a.(i) -. m)
      done;
      m +. log !acc
    end
  end

let seed_softmax a =
  let lse = seed_log_sum_exp a in
  Array.map (fun x -> exp (x -. lse)) a

let seed_mw_update log_w ~eta ~loss =
  for i = 0 to Array.length log_w - 1 do
    log_w.(i) <- log_w.(i) -. (eta *. loss i)
  done;
  let lse = seed_log_sum_exp log_w in
  if Float.abs lse > 500. then
    for i = 0 to Array.length log_w - 1 do
      log_w.(i) <- log_w.(i) -. lse
    done

let seed_distribution universe log_w = Histogram.of_weights universe (seed_softmax log_w)

let seed_expect universe w f =
  let values = Array.mapi (fun i wi -> wi *. f i (Universe.get universe i)) w in
  Pmw_linalg.Vec.kahan_sum values

(* Median of three timed batches, each batch running for ~0.15 s wall clock;
   returns ns per call. *)
let time_ns f =
  f ();
  f ();
  let batch () =
    let t0 = Unix.gettimeofday () in
    let iters = ref 0 in
    let elapsed = ref 0. in
    while !elapsed < 0.15 do
      f ();
      incr iters;
      elapsed := Unix.gettimeofday () -. t0
    done;
    !elapsed *. 1e9 /. float_of_int !iters
  in
  match List.sort compare [ batch (); batch (); batch () ] with
  | [ _; median; _ ] -> median
  | _ -> assert false

type kernel_row = {
  kr_name : string;
  kr_bits : int;
  kr_baseline : float;  (** seed algorithm, ns/call *)
  kr_seq : float;  (** pooled kernel, 1 domain, ns/call *)
  kr_par : float;  (** pooled kernel, [par_domains] domains, ns/call *)
  mutable kr_wall_s : float;  (** wall clock spent measuring this row *)
}

(* Stamp the row with how long its three measurements took end to end —
   a trajectory signal (is the bench itself slowing down?) that the ns/call
   estimates deliberately exclude. *)
let walled make =
  let t0 = Unix.gettimeofday () in
  let row = make () in
  row.kr_wall_s <- Unix.gettimeofday () -. t0;
  row

let par_domains = 4

let bench_kernels_at ~pool1 ~pool4 bits =
  let universe = Universe.hypercube ~d:bits () in
  let n = Universe.size universe in
  let eta = 0.3 in
  let loss i = float_of_int (i land 7) in
  (* mw-update: the F2/F5 hot loop. The element with loss 0 pins the max at
     0, so neither variant recenters — each call is the steady-state cost. *)
  let mw_update =
    let log_w = Array.make n 0. in
    let mw1 = Pmw_mw.Mw.create ~pool:pool1 ~universe ~eta () in
    let mw4 = Pmw_mw.Mw.create ~pool:pool4 ~universe ~eta () in
    walled (fun () ->
        {
          kr_name = "f2-f5/mw-update";
          kr_bits = bits;
          kr_baseline = time_ns (fun () -> seed_mw_update log_w ~eta ~loss);
          kr_seq = time_ns (fun () -> Pmw_mw.Mw.update mw1 ~loss);
          kr_par = time_ns (fun () -> Pmw_mw.Mw.update mw4 ~loss);
          kr_wall_s = 0.;
        })
  in
  (* distribution: softmax over |X| + histogram construction (F3). The MW
     state is warmed with a few updates so the weights are non-uniform. *)
  let distribution =
    let mw1 = Pmw_mw.Mw.create ~pool:pool1 ~universe ~eta () in
    let mw4 = Pmw_mw.Mw.create ~pool:pool4 ~universe ~eta () in
    for _ = 1 to 3 do
      Pmw_mw.Mw.update mw1 ~loss;
      Pmw_mw.Mw.update mw4 ~loss
    done;
    let log_w = Pmw_mw.Mw.log_weights mw1 in
    walled (fun () ->
        {
          kr_name = "f3/distribution";
          kr_bits = bits;
          kr_baseline = time_ns (fun () -> ignore (seed_distribution universe log_w));
          kr_seq = time_ns (fun () -> ignore (Pmw_mw.Mw.distribution mw1));
          kr_par = time_ns (fun () -> ignore (Pmw_mw.Mw.distribution mw4));
          kr_wall_s = 0.;
        })
  in
  (* log-sum-exp: the shared normalization primitive. *)
  let lse =
    let a = Array.init n (fun i -> -.(eta *. loss i)) in
    walled (fun () ->
        {
          kr_name = "linalg/log-sum-exp";
          kr_bits = bits;
          kr_baseline = time_ns (fun () -> ignore (seed_log_sum_exp a));
          kr_seq = time_ns (fun () -> ignore (Pmw_linalg.Special.log_sum_exp ~pool:pool1 a));
          kr_par = time_ns (fun () -> ignore (Pmw_linalg.Special.log_sum_exp ~pool:pool4 a));
          kr_wall_s = 0.;
        })
  in
  (* expect: the linear-query evaluation sweep. *)
  let expect =
    let hist = Histogram.uniform universe in
    let w = Histogram.weights hist in
    let f _ (x : Pmw_data.Point.t) = if x.Pmw_data.Point.features.(0) > 0. then 1. else 0. in
    walled (fun () ->
        {
          kr_name = "hist/expect";
          kr_bits = bits;
          kr_baseline = time_ns (fun () -> ignore (seed_expect universe w f));
          kr_seq = time_ns (fun () -> ignore (Histogram.expect ~pool:pool1 hist f));
          kr_par = time_ns (fun () -> ignore (Histogram.expect ~pool:pool4 hist f));
          kr_wall_s = 0.;
        })
  in
  [ mw_update; distribution; lse; expect ]

let speedup r = r.kr_baseline /. r.kr_par

let print_kernel_rows rows =
  Printf.printf
    "\n== kernel regression bench (ns per call; baseline = seed algorithm, par = %d domains) ==\n"
    par_domains;
  Printf.printf "%-22s %6s %14s %14s %14s %9s\n" "kernel" "|X|" "baseline" "pool-1" "pool-4"
    "speedup";
  List.iter
    (fun r ->
      Printf.printf "%-22s %6s %14.0f %14.0f %14.0f %8.2fx\n" r.kr_name
        (Printf.sprintf "2^%d" r.kr_bits)
        r.kr_baseline r.kr_seq r.kr_par (speedup r))
    rows;
  Printf.printf "%!"

(* First line of a subprocess, or None on any failure — used for the
   best-effort git revision stamp (benches also run from tarballs). *)
let read_first_line cmd =
  match Unix.open_process_in cmd with
  | exception _ -> None
  | ic -> (
      let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 -> (match line with Some "" | None -> None | s -> s)
      | _ | (exception _) -> None)

let iso8601_utc () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let write_json ~path ~quick rows =
  let oc = open_out path in
  let git =
    match read_first_line "git describe --always --dirty 2>/dev/null" with
    | Some rev -> rev
    | None -> "unknown"
  in
  let pmw_domains = try Sys.getenv "PMW_DOMAINS" with Not_found -> "" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema\": \"%s\",\n" Bench_json.schema;
  Printf.fprintf oc "  \"command\": \"bench/main.exe -- micro --json%s\",\n"
    (if quick then " --quick" else "");
  (* Trajectory metadata: enough to line up two BENCH_pmw.json files from
     different commits/machines before comparing their numbers. *)
  Printf.fprintf oc "  \"meta\": {\n";
  Printf.fprintf oc "    \"git\": \"%s\",\n" (String.escaped git);
  Printf.fprintf oc "    \"timestamp\": \"%s\",\n" (iso8601_utc ());
  Printf.fprintf oc "    \"ocaml\": \"%s\",\n" Sys.ocaml_version;
  Printf.fprintf oc "    \"pmw_domains_env\": \"%s\",\n" (String.escaped pmw_domains);
  Printf.fprintf oc "    \"quick\": %b\n" quick;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"domains\": %d,\n" par_domains;
  Printf.fprintf oc "  \"grain\": %d,\n" Pool.grain;
  Printf.fprintf oc "  \"kernels\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    { \"name\": \"%s\", \"universe_bits\": %d, \"baseline_ns\": %.1f, \"seq_ns\": %.1f, \
         \"par_ns\": %.1f, \"speedup\": %.3f, \"wall_s\": %.3f }%s\n"
        r.kr_name r.kr_bits r.kr_baseline r.kr_seq r.kr_par (speedup r) r.kr_wall_s
        (if i = last then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let run_kernels ~json ~quick () =
  let sizes = if quick then [ 10 ] else [ 10; 14; 18 ] in
  let pool1 = Pool.create ~domains:1 () in
  let pool4 = Pool.create ~domains:par_domains () in
  let rows = List.concat_map (bench_kernels_at ~pool1 ~pool4) sizes in
  print_kernel_rows rows;
  if json then write_json ~path:"BENCH_pmw.json" ~quick rows;
  Pool.shutdown pool4;
  Pool.shutdown pool1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let is_flag a = String.length a >= 2 && String.sub a 0 2 = "--" in
  let flags, positional = List.partition is_flag args in
  let json = List.mem "--json" flags in
  let quick = List.mem "--quick" flags in
  match positional with
  | "list" :: _ ->
      List.iter
        (fun e ->
          Printf.printf "%-14s %s\n" e.Registry.name e.Registry.description)
        Registry.all
  | "micro" :: _ ->
      run_micro ();
      run_kernels ~json ~quick ()
  | name :: _ -> (
      match Registry.find name with
      | Some e -> e.Registry.run ()
      | None ->
          Printf.eprintf "unknown experiment %S; try 'list'\n" name;
          exit 1)
  | [] ->
      run_micro ();
      run_kernels ~json ~quick ();
      Registry.run_all ()
