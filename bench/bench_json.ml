(* Shared helpers for the bench executables that merge sections into
   BENCH_pmw.json (load.exe writes "server", chaos.exe writes "chaos").
   Lives in its own module because dune links every non-main module of this
   directory into each executable. *)

module Protocol = Pmw_server.Protocol

(* Pretty printer for the merged document: objects multi-line down to the
   section level, arrays of objects one element per line, leaves compact —
   close enough to bench/main.ml's hand formatting to diff sanely. *)
let rec pretty ~depth buf j =
  let indent n = String.make (2 * n) ' ' in
  let compact j = Buffer.add_string buf (Protocol.json_to_string j) in
  match j with
  | Protocol.Obj fields when depth < 2 && fields <> [] ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (indent (depth + 1));
          Buffer.add_string buf (Protocol.json_to_string (Protocol.Str k));
          Buffer.add_string buf ": ";
          pretty ~depth:(depth + 1) buf v)
        fields;
      Buffer.add_string buf "\n";
      Buffer.add_string buf (indent depth);
      Buffer.add_string buf "}"
  | Protocol.Arr items
    when items <> [] && List.for_all (function Protocol.Obj _ -> true | _ -> false) items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (indent (depth + 1));
          compact item)
        items;
      Buffer.add_string buf "\n";
      Buffer.add_string buf (indent depth);
      Buffer.add_string buf "]"
  | j -> compact j

(* Document schema. v3 added the per-leg "latency" block to the "server"
   section (p50/p90/p99/max per run leg, not just throughput). *)
let schema = "pmw-kernel-bench/3"

let iso8601_utc () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

(* Replace one top-level [section] of the pmw-kernel-bench document at
   [path], creating a minimal skeleton when the file is absent or
   unparsable. Other sections (the kernel table, "server", "chaos") are
   preserved byte-for-value; the schema tag is upgraded to the current
   version, since the writer emits the current section shapes. *)
let merge_section ~path ~section ~command json =
  let existing =
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let raw = really_input_string ic len in
      close_in ic;
      match Protocol.json_of_string raw with Ok (Protocol.Obj fields) -> fields | _ -> []
    end
    else []
  in
  let fields =
    if existing = [] then
      [
        ("command", Protocol.Str command);
        ( "meta",
          Protocol.Obj
            [
              ("timestamp", Protocol.Str (iso8601_utc ()));
              ("ocaml", Protocol.Str Sys.ocaml_version);
            ] );
      ]
    else List.remove_assoc "schema" existing
  in
  let fields =
    (("schema", Protocol.Str schema) :: List.remove_assoc section fields) @ [ (section, json) ]
  in
  let buf = Buffer.create 4096 in
  pretty ~depth:0 buf (Protocol.Obj fields);
  Buffer.add_char buf '\n';
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s (%s section)\n%!" path section

(* Query names the stock `pmw_cli serve` regression workload (d=2)
   registers; `serve` prints its registered names at startup. *)
let default_panel =
  [|
    "0.25*squared";
    "huber(0.5)";
    "absolute";
    "quantile(0.25)";
    "quantile(0.75)";
    "0.25*squared|mask=01";
    "0.25*squared|mask=10";
  |]
