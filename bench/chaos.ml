(* Chaos soak harness for the crash-safe serving layer (docs/robustness.md).

   Topology: this process spawns a real `pmw_cli serve` daemon (journal +
   checkpoints + --resume), puts the Flaky fault proxy in front of its
   socket, and drives N analyst threads through the proxy with
   rid-stamped requests and the Client retry loop. A killer loop SIGKILLs
   the server at random points and restarts it, measuring recovery time.
   After the last cycle the analysts stop, the server is drained with
   SIGTERM, and the journal + traces are validated:

     (a) the journal's cumulative (eps, delta) is monotone, additive for
         serve debits, covers the largest spend any client was ever told
         (rsp_spent_eps/delta), and never exceeds the configured pot — no budget is
         forgotten by a crash and none is spent twice;
     (b) every deliberately re-asked request_id produced a byte-identical
         answer to the recorded one (client side), and no rid appears in
         the journal twice with different bytes (server side);
     (c) the final incarnation's telemetry trace passes Trace.validate.

   Exit status 0 when every invariant holds, 1 otherwise. With --json, a
   "chaos" section (recovery-time and dedup-hit metrics included) is merged
   into BENCH_pmw.json. *)

module Protocol = Pmw_server.Protocol
module Net = Pmw_server.Net
module Flaky = Pmw_server.Flaky
module Journal = Pmw_server.Journal
module Trace = Pmw_telemetry.Trace
module Splitmix64 = Pmw_rng.Splitmix64

type analyst_stats = {
  mutable a_completed : int;
  mutable a_answered : int;
  mutable a_partials : int;
  mutable a_coverage_bad : int;
  mutable a_errors : int;
  mutable a_dedup_checks : int;
  mutable a_dedup_mismatches : int;
  mutable a_max_eps : float;
  mutable a_max_delta : float;
  mutable a_lines : (string * string) list;  (* (rid, recorded line), newest first *)
}

let new_stats () =
  {
    a_completed = 0;
    a_answered = 0;
    a_partials = 0;
    a_coverage_bad = 0;
    a_errors = 0;
    a_dedup_checks = 0;
    a_dedup_mismatches = 0;
    a_max_eps = 0.;
    a_max_delta = 0.;
    a_lines = [];
  }

let uniform rng lo hi =
  lo +. ((hi -. lo) *. (float_of_int (Splitmix64.next_in rng ~bound:1_000_000) /. 1_000_000.))

let is_rejected (rsp : Protocol.response) =
  match rsp.Protocol.rsp_status with Protocol.Rejected _ -> true | _ -> false

(* One analyst: closed loop through the proxy, every request rid-stamped,
   and a fraction of answered rids immediately re-asked — the dedup layer
   must hand back the recorded bytes. When [fleet = Some shards], Partial
   verdicts are expected while a shard is down; their coverage must equal
   the surviving-weight fraction (near-equal block partition: within 1e-3
   of (shards - missing)/shards), and missing_shards must be non-empty.
   Byte-identity dedup re-asks stay off in fleet mode — the router stamps a
   fresh seq and recomposes the fleet envelope on every call, so the
   single-broker byte contract intentionally does not hold; the per-shard
   journals still enforce no-rid-rewrite server-side. *)
let analyst ?fleet ~running ~proxy_path ~panel ~seed ~dup_prob i =
  let stats = new_stats () in
  let rng = Splitmix64.create (Int64.add seed (Int64.of_int (101 * (i + 1)))) in
  let name = Printf.sprintf "an%d" i in
  let policy =
    {
      Net.Client.rp_max_attempts = 12;
      rp_base_delay_s = 0.05;
      rp_max_delay_s = 1.;
      rp_deadline_s = 60.;
      rp_seed = Int64.add seed (Int64.of_int i);
    }
  in
  let client = ref None in
  let get_client () =
    match !client with
    | Some c -> Some c
    | None -> (
        match Net.Client.connect ~deadline_s:5. proxy_path with
        | c ->
            client := Some c;
            Some c
        | exception Unix.Unix_error _ -> None)
  in
  let r = ref 0 in
  while Atomic.get running do
    (match get_client () with
    | None -> Thread.delay 0.05
    | Some c -> (
        let rid = Printf.sprintf "%s-r%d" name !r in
        let req =
          {
            Protocol.req_id = !r;
            req_analyst = name;
            req_query = panel.(Splitmix64.next_in rng ~bound:(Array.length panel));
            req_rid = Some rid;
            req_shards = None;
            req_trace = None;
            req_pspan = None;
            req_rows = None;
          }
        in
        match Net.Client.call_with_retry ~policy c req with
        | Error _ ->
            stats.a_errors <- stats.a_errors + 1;
            (* the connection object reconnects lazily; brief pause so a
               dead server window doesn't spin *)
            Thread.delay 0.05
        | Ok rsp ->
            stats.a_completed <- stats.a_completed + 1;
            Option.iter (fun e -> stats.a_max_eps <- Float.max stats.a_max_eps e)
              rsp.Protocol.rsp_spent_eps;
            Option.iter (fun d -> stats.a_max_delta <- Float.max stats.a_max_delta d)
              rsp.Protocol.rsp_spent_delta;
            (match (rsp.Protocol.rsp_status, fleet) with
            | Protocol.Partial { missing_shards; coverage; _ }, Some shards ->
                stats.a_partials <- stats.a_partials + 1;
                let expected =
                  float_of_int (shards - List.length missing_shards) /. float_of_int shards
                in
                if missing_shards = [] || Float.abs (coverage -. expected) > 1e-3 then begin
                  stats.a_coverage_bad <- stats.a_coverage_bad + 1;
                  Printf.eprintf "BAD COVERAGE %s/%s: [%s] coverage %.6f expected %.6f\n%!" name
                    rid
                    (String.concat "," (List.map string_of_int missing_shards))
                    coverage expected
                end
            | Protocol.Partial _, None ->
                (* a single broker can never produce a fleet verdict *)
                stats.a_partials <- stats.a_partials + 1;
                stats.a_coverage_bad <- stats.a_coverage_bad + 1
            | _ -> ());
            if not (is_rejected rsp) then begin
              stats.a_answered <- stats.a_answered + 1;
              let line = Protocol.encode_response rsp in
              stats.a_lines <- (rid, line) :: stats.a_lines;
              if uniform rng 0. 1. < dup_prob then begin
                (* idempotent retry check: same rid again, on purpose *)
                match Net.Client.call_with_retry ~policy c req with
                | Error _ -> stats.a_errors <- stats.a_errors + 1
                | Ok dup when is_rejected dup -> ()
                | Ok dup ->
                    stats.a_dedup_checks <- stats.a_dedup_checks + 1;
                    if Protocol.encode_response dup <> line then begin
                      stats.a_dedup_mismatches <- stats.a_dedup_mismatches + 1;
                      Printf.eprintf "DEDUP MISMATCH %s/%s:\n  first %s\n  retry %s\n%!" name rid
                        line
                        (Protocol.encode_response dup)
                    end
              end
            end));
    incr r;
    Thread.delay 0.01
  done;
  Option.iter Net.Client.close !client;
  stats

(* --- server lifecycle --- *)

type server = { mutable pid : int; mutable incarnation : int }

let spawn_server ?(checkpointing = true) ?(extra = []) ~bin ~dir ~socket ~journal ~eps ~n ~k srv =
  srv.incarnation <- srv.incarnation + 1;
  let log =
    Unix.openfile
      (Filename.concat dir (Printf.sprintf "server-%d.log" srv.incarnation))
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  let trace = Filename.concat dir (Printf.sprintf "trace-%d.jsonl" srv.incarnation) in
  let args =
    Array.of_list
      ([ bin; "serve"; "--socket"; socket; "--journal"; journal ]
      @ (if checkpointing then
           [ "--checkpoint-dir"; Filename.concat dir "ckpt"; "--resume"; "--checkpoint-every"; "8" ]
         else [])
      @ [
          "--dedup-cap"; "200000";
          "-n"; string_of_int n;
          "-k"; string_of_int k;
          "--eps"; Printf.sprintf "%g" eps;
          "--alpha"; "0.1";
          "--seed"; "7";
          "--trace"; trace;
        ]
      @ extra)
  in
  srv.pid <- Unix.create_process bin args Unix.stdin log log;
  Unix.close log;
  trace

let wait_ready ~socket ~timeout_s =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Some (Unix.gettimeofday () -. t0)
    | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Unix.gettimeofday () -. t0 > timeout_s then None
        else begin
          Thread.delay 0.02;
          go ()
        end
  in
  go ()

let kill_wait pid signal =
  (try Unix.kill pid signal with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid : int * Unix.process_status) with Unix.Unix_error _ -> ()

(* --- journal validation --- *)

let check cond fmt =
  Printf.ksprintf
    (fun msg ->
      if cond then true
      else begin
        Printf.eprintf "INVARIANT VIOLATED: %s\n%!" msg;
        false
      end)
    fmt

let validate_journal ~path ~eps_total ~max_reported_eps ~max_reported_delta =
  let raw =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  match Journal.replay_string raw with
  | Error why ->
      Printf.eprintf "INVARIANT VIOLATED: journal unreadable: %s\n%!" why;
      (false, 0, (0., 0.))
  | Ok rv ->
      let ok = ref (check (not rv.Journal.rv_torn) "journal torn after graceful drain") in
      let tol = 1e-9 *. Float.max 1. eps_total in
      let prev = ref (0., 0.) in
      (* Lifetime accounting: an Epoch record carries the spend retired into
         sealed generations; answers after it report base + within-epoch cum. *)
      let base = ref (0., 0.) in
      List.iter
        (fun r ->
          match r with
          | Journal.Epoch { je_base_eps; je_base_delta; _ } ->
              base := (je_base_eps, je_base_delta);
              prev := (0., 0.)
          | Journal.Ingest _ -> ()
          | Journal.Debit { jd_mechanism; jd_eps; jd_delta = _; jd_cum_eps; jd_cum_delta } ->
              let pe, pd = !prev in
              ok :=
                check
                  (jd_cum_eps >= pe -. tol && jd_cum_delta >= pd -. tol)
                  "cumulative ledger went backwards (%.6g,%.3g) -> (%.6g,%.3g)" pe pd jd_cum_eps
                  jd_cum_delta
                && !ok;
              if jd_mechanism = "serve" then
                ok :=
                  check
                    (Float.abs (jd_cum_eps -. (pe +. jd_eps)) <= tol)
                    "serve debit not additive: %.6g + %.6g <> %.6g" pe jd_eps jd_cum_eps
                  && !ok;
              prev := (jd_cum_eps, jd_cum_delta)
          | Journal.Answer { ja_seq; ja_line; _ } -> (
              (* debit-before-answers: at every journal prefix, the spend
                 an answer reports to its client must already be covered
                 by the last durable debit — otherwise a crash right here
                 would re-serve the answer with its cost never debited *)
              match Protocol.decode_response ja_line with
              | Error why ->
                  ok := check false "journaled answer seq %d unreadable: %s" ja_seq why && !ok
              | Ok rsp ->
                  let pe, pd = !prev in
                  let be, bd = !base in
                  Option.iter
                    (fun e ->
                      ok :=
                        check
                          (be +. pe +. tol >= e)
                          "answer seq %d reports spent_eps %.6g but the preceding debit only \
                           covers %.6g"
                          ja_seq e (be +. pe)
                        && !ok)
                    rsp.Protocol.rsp_spent_eps;
                  Option.iter
                    (fun d ->
                      ok :=
                        check
                          (bd +. pd +. (tol *. 1e-6) >= d)
                          "answer seq %d reports spent_delta %.3g but the preceding debit only \
                           covers %.3g"
                          ja_seq d (bd +. pd)
                        && !ok)
                    rsp.Protocol.rsp_spent_delta)
          | Journal.Mark _ -> ())
        rv.Journal.rv_records;
      let cum_eps, cum_delta = rv.Journal.rv_cum in
      let base_eps, base_delta = rv.Journal.rv_base in
      ok :=
        check
          (cum_eps <= eps_total +. tol)
          "journal cumulative eps %.6g exceeds the %.6g pot (double-spend)" cum_eps eps_total
        && !ok;
      ok :=
        check
          (base_eps +. cum_eps +. tol >= max_reported_eps)
          "a client saw spent_eps %.6g but the journal only covers %.6g" max_reported_eps
          (base_eps +. cum_eps)
        && !ok;
      ok :=
        check
          (base_delta +. cum_delta +. (tol *. 1e-6) >= max_reported_delta)
          "a client saw spent_delta %.3g but the journal only covers %.3g" max_reported_delta
          (base_delta +. cum_delta)
        && !ok;
      (* server-side byte identity: a rid journaled twice must carry the
         same bytes (it should in fact never be journaled twice at all —
         the dedup path replays without re-recording) *)
      let by_rid = Hashtbl.create 256 in
      List.iter
        (fun (key, line) ->
          match Hashtbl.find_opt by_rid key with
          | None -> Hashtbl.add by_rid key line
          | Some first ->
              ok :=
                check (String.equal first line) "rid %s journaled twice with different bytes"
                  (snd key)
                && !ok)
        rv.Journal.rv_answers;
      (!ok, List.length rv.Journal.rv_records, rv.Journal.rv_cum)

(* --- fleet soak (--kill-shard) ---

   One `pmw_cli serve --shards N --chaos-ctl` fleet process; analysts drive
   it straight over its socket while a killer loop takes down one shard at
   a time through the control plane and times the supervisor's recovery
   (ctl:health polling). Validated afterwards: every partial answer named
   the dead shards with the right coverage, each shard's journal passes the
   single-broker invariants independently, the fleet-reported spend is the
   parallel-composition max over the shard journals (never their sum — that
   would be cross-shard double-counting), and every recovery beat the one-
   second target. *)

let fleet_soak ~bin ~dir ~seed ~eps ~n ~k ~shards ~analysts ~cycles ~kill_min ~kill_max ~json () =
  let socket = Filename.concat dir "fleet.sock" in
  let journal = Filename.concat dir "journal.wal" in
  let srv = { pid = -1; incarnation = 0 } in
  let t_start = Unix.gettimeofday () in
  let trace =
    spawn_server ~checkpointing:false
      ~extra:
        [
          "--shards"; string_of_int shards; "--shard-by"; "block"; "--chaos-ctl";
          "--fleet-deadline"; "10";
        ]
      ~bin ~dir ~socket ~journal ~eps ~n ~k srv
  in
  (match wait_ready ~socket ~timeout_s:120. with
  | Some _ -> ()
  | None ->
      Printf.eprintf "fleet never came up; see %s/server-1.log\n" dir;
      exit 2);
  let running = Atomic.make true in
  let panel = Bench_json.default_panel in
  let results = Array.make analysts (new_stats ()) in
  let threads =
    List.init analysts (fun i ->
        Thread.create
          (fun () ->
            results.(i) <-
              analyst ~fleet:shards ~running ~proxy_path:socket ~panel ~seed:(Int64.of_int seed)
                ~dup_prob:0. i)
          ())
  in
  let ctl = Net.Client.connect ~deadline_s:5. socket in
  let call_ctl ~id q =
    Net.Client.call ctl
      {
        Protocol.req_id = id;
        req_analyst = "chaos-ctl";
        req_query = q;
        req_rid = None;
        req_shards = None;
        req_trace = None;
        req_pspan = None;
        req_rows = None;
      }
  in
  let rng = Splitmix64.create (Int64.of_int (seed + 997)) in
  let recoveries = ref [] in
  let failed_restart = ref false in
  let kill_errors = ref 0 in
  for cycle = 1 to cycles do
    Thread.delay (uniform rng kill_min kill_max);
    let target = (cycle - 1) mod shards in
    match call_ctl ~id:(10_000 + cycle) (Printf.sprintf "ctl:kill:%d" target) with
    | Ok { Protocol.rsp_status = Protocol.Answered; _ } -> (
        let t0 = Unix.gettimeofday () in
        let rec poll () =
          if Unix.gettimeofday () -. t0 > 30. then None
          else
            match call_ctl ~id:(20_000 + cycle) "ctl:health" with
            | Ok { Protocol.rsp_status = Protocol.Answered; rsp_theta = Some states; _ }
              when Array.length states > target && states.(target) = 2. ->
                Some (Unix.gettimeofday () -. t0)
            | _ ->
                Thread.delay 0.005;
                poll ()
        in
        match poll () with
        | Some dt ->
            recoveries := dt :: !recoveries;
            Printf.printf "cycle %2d/%d: killed shard %d, recovered in %.0f ms\n%!" cycle cycles
              target (dt *. 1e3)
        | None ->
            Printf.eprintf "cycle %d: shard %d never came back\n%!" cycle target;
            failed_restart := true)
    | Ok rsp ->
        Printf.eprintf "cycle %d: ctl:kill:%d answered %s\n%!" cycle target
          (Protocol.status_tag rsp.Protocol.rsp_status);
        incr kill_errors
    | Error e ->
        Printf.eprintf "cycle %d: ctl error %s\n%!" cycle (Net.Client.error_to_string e);
        incr kill_errors
  done;
  Net.Client.close ctl;
  Atomic.set running false;
  List.iter Thread.join threads;
  kill_wait srv.pid Sys.sigterm;
  let wall_s = Unix.gettimeofday () -. t_start in
  let total f = Array.fold_left (fun acc s -> acc + f s) 0 results in
  let completed = total (fun s -> s.a_completed) in
  let answered = total (fun s -> s.a_answered) in
  let errors = total (fun s -> s.a_errors) in
  let partials = total (fun s -> s.a_partials) in
  let coverage_bad = total (fun s -> s.a_coverage_bad) in
  let max_reported_eps = Array.fold_left (fun acc s -> Float.max acc s.a_max_eps) 0. results in
  let shard_journals =
    List.init shards (fun i ->
        let path = Printf.sprintf "%s.shard%d" journal i in
        let ok, records, (cum_eps, cum_delta) =
          validate_journal ~path ~eps_total:eps ~max_reported_eps:0. ~max_reported_delta:0.
        in
        (i, ok, records, cum_eps, cum_delta))
  in
  let max_cum_eps =
    List.fold_left (fun acc (_, _, _, e, _) -> Float.max acc e) 0. shard_journals
  in
  let trace_ok =
    match Trace.load ~path:trace with
    | Error why ->
        Printf.eprintf "INVARIANT VIOLATED: fleet trace unreadable: %s\n%!" why;
        false
    | Ok events -> (
        match Trace.validate events with
        | Ok () -> true
        | Error why ->
            Printf.eprintf "INVARIANT VIOLATED: fleet trace invalid: %s\n%!" why;
            false)
  in
  let recov = Array.of_list !recoveries in
  Array.sort compare recov;
  let recovery_mean =
    if Array.length recov = 0 then 0.
    else Array.fold_left ( +. ) 0. recov /. float_of_int (Array.length recov)
  in
  let recovery_max = if Array.length recov = 0 then 0. else recov.(Array.length recov - 1) in
  let tol = 1e-9 *. Float.max 1. eps in
  let checks_ok =
    List.for_all (fun (_, ok, _, _, _) -> ok) shard_journals
    && check (coverage_bad = 0) "%d partial answers with wrong coverage/missing_shards"
         coverage_bad
    && check (partials > 0) "no partial answers observed across %d shard kills" cycles
    && check (not !failed_restart) "a killed shard never came back"
    && check (!kill_errors = 0) "%d ctl kills failed" !kill_errors
    && check (completed > 0) "no requests completed"
    && check
         (max_reported_eps <= max_cum_eps +. tol)
         "fleet reported spent_eps %.6g but the largest shard journal covers %.6g (cross-shard \
          double-spend)"
         max_reported_eps max_cum_eps
    && check (recovery_max < 1.)
         "slowest shard recovery %.0f ms blew the one-second target" (recovery_max *. 1e3)
    && trace_ok
  in
  Printf.printf
    "fleet soak: %d shard kills across %d shards, %d analysts, %.1fs wall\n\
    \  %d completed (%d answered, %d partial, %d client errors), %d bad coverages\n\
    \  shard recovery ms mean %.0f max %.0f; fleet max reported eps %.4f, max shard journal eps \
     %.4f\n"
    cycles shards analysts wall_s completed answered partials errors coverage_bad
    (recovery_mean *. 1e3) (recovery_max *. 1e3) max_reported_eps max_cum_eps;
  List.iter
    (fun (i, ok, records, cum_eps, cum_delta) ->
      Printf.printf "  shard %d journal: %d records, cum eps %.4f, cum delta %.3g%s\n" i records
        cum_eps cum_delta
        (if ok then "" else " INVALID"))
    shard_journals;
  Printf.printf "%s\n%!" (if checks_ok then "ALL INVARIANTS HELD" else "INVARIANTS VIOLATED");
  if json then begin
    let num v = Protocol.Num v in
    let int v = Protocol.Num (float_of_int v) in
    let section =
      Protocol.Obj
        [
          ("generator", Protocol.Str "bench/chaos.exe -- --kill-shard --json");
          ("timestamp", Protocol.Str (Bench_json.iso8601_utc ()));
          ("shards", int shards);
          ("cycles", int cycles);
          ("analysts", int analysts);
          ("wall_s", num wall_s);
          ("requests_completed", int completed);
          ("requests_answered", int answered);
          ("requests_partial", int partials);
          ("coverage_violations", int coverage_bad);
          ("client_errors", int errors);
          ("shard_recovery_mean_ms", num (recovery_mean *. 1e3));
          ("shard_recovery_max_ms", num (recovery_max *. 1e3));
          ("fleet_max_reported_eps", num max_reported_eps);
          ( "shard_journal_cum_eps",
            Protocol.Arr (List.map (fun (_, _, _, e, _) -> num e) shard_journals) );
          ("invariants_held", Protocol.Bool checks_ok);
        ]
    in
    Bench_json.merge_section ~path:"BENCH_pmw.json" ~section:"chaos_fleet"
      ~command:"bench/chaos.exe -- --kill-shard --json" section
  end;
  exit (if checks_ok then 0 else 1)

(* --- epoch soak (--kill-epoch) ---

   In-process twin-shard soak for the epoch transition protocol: a "chaos"
   shard and a fault-free "reference" shard are built from identical
   deterministic constructors (same seeds, same config — only journal paths
   differ) and driven through the identical request script. Every cycle
   answers a few queries, ingests rows, rolls the reference's epoch
   cleanly, then rolls the chaos shard's epoch with a fault injected at one
   transition step (kill -9, ENOSPC, EIO, torn mid-write — the Epoch fault
   hook, which is why this soak is in-process), restarts it, and verifies:

     Phase A (fault at Seal_mark or later — the seal checkpoint, or the
     committed snapshot, survives): recovery must either resume the exact
     pre-transition state from the seal and re-run the transition, or roll
     the committed snapshot forward; both are deterministic, so every
     subsequent answer must match the reference shard bit for bit (status,
     seq, theta float bits, spent stamps, epoch).

     Phase B (fault before the seal exists): the transition is lost
     entirely and recovery must land on the whole OLD epoch. In-flight MW
     state legitimately reverts to the journal account, so the twins
     diverge and only structural invariants are checked from then on.

   After the last cycle both journals are validated (per-epoch pot bound,
   debit-before-answer, no rid rewrite), the compacted journal's record
   count is asserted bounded by the per-epoch script (never total
   history), and the chaos journal's generation must agree with its epoch
   snapshot — old or new, never a hybrid. *)

type fault_kind = F_crash | F_enospc | F_eio

let fault_kind_to_string = function
  | F_crash -> "kill"
  | F_enospc -> "ENOSPC"
  | F_eio -> "EIO"

let epoch_fault_plan =
  let module E = Pmw_server.Epoch in
  [
    (* Phase A: seal or snapshot survives; recovery must be exact. *)
    (E.Seal_mark, F_crash, `A);
    (E.Snap_write, F_crash, `A);
    (E.Snap_write_mid, F_crash, `A);
    (E.Snap_fsync, F_crash, `A);
    (E.Snap_rename, F_crash, `A);
    (E.Snap_dirsync, F_crash, `A);
    (E.New_session, F_crash, `A);
    (E.Compact_write, F_crash, `A);
    (E.Compact_write_mid, F_crash, `A);
    (E.Compact_fsync, F_crash, `A);
    (E.Compact_rename, F_crash, `A);
    (E.Compact_dirsync, F_crash, `A);
    (E.Seal_cleanup, F_crash, `A);
    (E.Snap_write, F_enospc, `A);
    (E.Compact_write, F_enospc, `A);
    (E.Snap_fsync, F_eio, `A);
    (E.Compact_fsync, F_eio, `A);
    (E.Seal_mark, F_eio, `A);
    (* Phase B: pre-seal faults — the whole old epoch must survive. *)
    (E.Seal_checkpoint, F_crash, `B);
    (E.Seal_checkpoint, F_enospc, `B);
  ]

let copy_file src dst =
  if Sys.file_exists src then begin
    let ic = open_in_bin src in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let oc = open_out_bin dst in
    output_string oc s;
    close_out oc
  end

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0. else sorted.(min (n - 1) (int_of_float ((p *. float_of_int (n - 1)) +. 0.5)))

let epoch_soak ~dir ~cycles ~json () =
  let module Universe = Pmw_data.Universe in
  let module Dataset = Pmw_data.Dataset in
  let module Histogram = Pmw_data.Histogram in
  let module Synth = Pmw_data.Synth in
  let module Losses = Pmw_convex.Losses in
  let module Domain_ = Pmw_convex.Domain in
  let module Cm_query = Pmw_core.Cm_query in
  let module Config = Pmw_core.Config in
  let module Session = Pmw_session.Session in
  let module Checkpoint = Pmw_session.Checkpoint in
  let module Pool = Pmw_parallel.Pool in
  let module Rng = Pmw_rng.Rng in
  let module Shard = Pmw_server.Shard in
  let module Epoch = Pmw_server.Epoch in
  let t_start = Unix.gettimeofday () in
  (* Fixture: the small regression setup the server tests use; a generous
     per-epoch pot so the short per-epoch script never exhausts it. *)
  let universe = Universe.regression_grid ~d:2 ~levels:5 ~label_levels:5 () in
  let usize = Universe.size universe in
  let domain = Domain_.unit_ball ~dim:2 in
  let eps_pot = 5. in
  let privacy = Pmw_dp.Params.create ~eps:eps_pot ~delta:1e-5 in
  let dataset =
    Synth.linear_regression ~universe ~theta_star:[| 0.5; -0.2 |] ~noise:0.1 ~n:3_000
      (Rng.create ~seed:7 ())
  in
  let config =
    Config.practical ~universe ~privacy ~alpha:0.02 ~beta:0.05 ~scale:2. ~k:14 ~t_max:8
      ~solver_iters:120 ()
  in
  let panel =
    [
      ("sq", Cm_query.make ~name:"sq" ~loss:(Losses.squared ()) ~domain ());
      ("huber", Cm_query.make ~name:"huber" ~loss:(Losses.huber ~delta:0.5 ()) ~domain ());
    ]
  in
  let resolve name = List.assoc_opt name panel in
  let base_rows = Dataset.rows dataset in
  (* Twin constructors: everything (label, seeds, config) identical across
     the two shards — byte-identity of the survivors depends on it. The
     session is a pure function of (epoch, absorbed, prior). *)
  let dataset_at ~epoch ~absorbed =
    Dataset.create ~epoch universe (Array.append base_rows absorbed)
  in
  let mk_session ~epoch ~absorbed ~prior tel =
    let pool = Pool.create ~domains:1 () in
    Session.create ~pool ~telemetry:tel ~label:"epoch-twin" ~config
      ~dataset:(dataset_at ~epoch ~absorbed)
      ?prior:(Option.map (Histogram.of_weights universe) prior)
      ~rng:(Rng.create ~seed:(1009 + (31 * epoch)) ())
      ()
  in
  let jpath id = Filename.concat dir (Printf.sprintf "epoch%d.wal" id) in
  let mk id =
    Shard.create ~id ~weight:1.0 ~journal_path:(jpath id)
      ~epoch:
        {
          Shard.se_snapshot = jpath id ^ ".epoch";
          se_every = 0 (* transitions on request only: the script is the clock *);
          se_row_bound = usize;
          se_make = mk_session;
          se_resume =
            (fun ~absorbed ckpt tel ->
              let pool = Pool.create ~domains:1 () in
              Session.resume ~pool ~telemetry:tel ~label:"epoch-twin" ~config
                ~dataset:(dataset_at ~epoch:ckpt.Checkpoint.epoch ~absorbed)
                ~rng:(Rng.create ~seed:0 ())
                ckpt);
        }
      ~make_session:(fun tel -> mk_session ~epoch:0 ~absorbed:[||] ~prior:None tel)
      ~resolve ()
  in
  let chaos = mk 0 and refsh = mk 1 in
  let must_start s what =
    match Shard.start s with
    | Ok () -> ()
    | Error m ->
        Printf.eprintf "%s shard failed to boot: %s\n" what m;
        exit 2
  in
  must_start chaos "chaos";
  must_start refsh "reference";
  let ok = ref true in
  let diverged = ref false in
  let max_reported_eps = ref 0. and max_reported_delta = ref 0. in
  let transitions = ref 0 in
  let trans_times = ref [] and recov_times = ref [] in
  let reclaimed = ref 0 in
  let max_post_records = ref 0 in
  let wait_for ?(timeout = 30.) pred =
    let t0 = Unix.gettimeofday () in
    let rec go () =
      if pred () then true
      else if Unix.gettimeofday () -. t0 > timeout then false
      else begin
        Thread.delay 0.002;
        go ()
      end
    in
    go ()
  in
  (* Everything nondeterministic (queue wait) is excluded; everything the
     recovery contract promises (verdict, seq, theta bits, spent stamps,
     epoch) is compared exactly. *)
  let canon (r : Protocol.response) =
    let bits v = Printf.sprintf "%Lx" (Int64.bits_of_float v) in
    Printf.sprintf "%s seq=%d theta=[%s] src=%s upd=%s eps=%s delta=%s epoch=%s"
      (Protocol.status_tag r.Protocol.rsp_status)
      r.Protocol.rsp_seq
      (match r.Protocol.rsp_theta with
      | None -> ""
      | Some th -> String.concat "," (List.map bits (Array.to_list th)))
      (Option.value ~default:"-" r.Protocol.rsp_source)
      (match r.Protocol.rsp_update_index with Some i -> string_of_int i | None -> "-")
      (match r.Protocol.rsp_spent_eps with Some v -> bits v | None -> "-")
      (match r.Protocol.rsp_spent_delta with Some v -> bits v | None -> "-")
      (match r.Protocol.rsp_epoch with Some e -> string_of_int e | None -> "-")
  in
  let compare_replies ~what rid rc rr =
    match (rc, rr) with
    | Some rc, Some rr ->
        let lc = canon rc and lr = canon rr in
        ok :=
          check (String.equal lc lr) "%s %s: twins disagree\n  chaos %s\n  ref   %s" what rid lc
            lr
          && !ok
    | _ ->
        ok :=
          check false "%s %s: missing reply (chaos %b, reference %b)" what rid (rc <> None)
            (rr <> None)
          && !ok
  in
  let mkreq ?rows ~id ~rid ~query () =
    {
      Protocol.req_id = id;
      req_analyst = "epoch-an";
      req_query = query;
      req_rid = Some rid;
      req_shards = None;
      req_trace = None;
      req_pspan = None;
      req_rows = rows;
    }
  in
  let note_spent = function
    | Some r ->
        Option.iter (fun e -> max_reported_eps := Float.max !max_reported_eps e)
          r.Protocol.rsp_spent_eps;
        Option.iter (fun d -> max_reported_delta := Float.max !max_reported_delta d)
          r.Protocol.rsp_spent_delta
    | None -> ()
  in
  let plan_len = List.length epoch_fault_plan in
  for cycle = 1 to cycles do
    let step, kind, phase = List.nth epoch_fault_plan ((cycle - 1) mod plan_len) in
    let e0 =
      match Shard.epoch chaos with
      | Some e -> e
      | None ->
          ok := check false "cycle %d: chaos shard not running at cycle start" cycle && !ok;
          0
    in
    (* a few answered queries (identical script on both twins) *)
    for j = 1 to 2 do
      let query = if (cycle + j) mod 2 = 0 then "sq" else "huber" in
      let rid = Printf.sprintf "c%d-q%d" cycle j in
      let r = mkreq ~id:((100 * cycle) + j) ~rid ~query () in
      let rc = Shard.submit chaos r and rr = Shard.submit refsh r in
      note_spent rc;
      if not !diverged then compare_replies ~what:"query" rid rc rr
    done;
    (* ingest two deterministic rows; absorbed at the transition below *)
    let rows = [ 17 * cycle mod usize; (17 * cycle + 5) mod usize ] in
    let ri =
      mkreq ~rows ~id:(100 * cycle) ~rid:(Printf.sprintf "c%d-ing" cycle) ~query:"ingest" ()
    in
    let ic = Shard.submit chaos ri and ir = Shard.submit refsh ri in
    if not !diverged then compare_replies ~what:"ingest" (Printf.sprintf "c%d-ing" cycle) ic ir;
    (* reference rolls cleanly (it must finish before the fault hook arms —
       the hook is process-global) *)
    (let t0 = Unix.gettimeofday () in
     let jb = Shard.journal_size refsh in
     if not (Shard.request_epoch refsh) then
       ok := check false "cycle %d: reference refused the epoch request" cycle && !ok
     else if not (wait_for (fun () -> Shard.epoch refsh = Some (e0 + 1))) then
       ok := check false "cycle %d: reference transition to %d never completed" cycle (e0 + 1) && !ok
     else begin
       trans_times := (Unix.gettimeofday () -. t0) :: !trans_times;
       (* barrier: the epoch becomes visible at the session swap, but the
          transition tail (compaction, open mark, seal cleanup) is still
          running on the reference's serializer — and the fault hook is
          process-global. The seal file is removed immediately after the
          last probe (Seal_cleanup), so once it is gone the reference can
          probe no more and the hook below can only catch the chaos twin. *)
       ok :=
         check
           (wait_for (fun () ->
                not (Sys.file_exists (Epoch.seal_path (jpath 1 ^ ".epoch")))))
           "cycle %d: reference transition tail never finished (seal still present)" cycle
         && !ok;
       match (jb, Shard.journal_size refsh) with
       | Some (b0, _), Some (b1, r1) ->
           if b0 > b1 then reclaimed := !reclaimed + (b0 - b1);
           max_post_records := max !max_post_records r1
       | _ -> ()
     end);
    (* chaos rolls under an injected fault, crashes, restarts, recovers *)
    if cycle <= 3 then
      copy_file (jpath 0) (Filename.concat dir (Printf.sprintf "journal.pre-compact.c%d" cycle));
    let armed = Atomic.make true in
    Epoch.set_fault_hook (fun s ->
        if s = step && Atomic.compare_and_set armed true false then
          match kind with
          | F_crash -> raise (Epoch.Injected (s, "kill"))
          | F_enospc -> raise (Unix.Unix_error (Unix.ENOSPC, "write", "injected"))
          | F_eio -> raise (Unix.Unix_error (Unix.EIO, "fsync", "injected")));
    if not (Shard.request_epoch chaos) then
      ok := check false "cycle %d: chaos shard refused the epoch request" cycle && !ok
    else
      ok :=
        check
          (wait_for (fun () -> Shard.state chaos = Shard.Crashed))
          "cycle %d: fault %s at %s never crashed the shard" cycle (fault_kind_to_string kind)
          (Epoch.step_to_string step)
        && !ok;
    Epoch.clear_fault_hook ();
    let t0 = Unix.gettimeofday () in
    (match Shard.start chaos with
    | Ok () -> recov_times := (Unix.gettimeofday () -. t0) :: !recov_times
    | Error m ->
        ok :=
          check false "cycle %d: restart after %s at %s failed: %s" cycle
            (fault_kind_to_string kind) (Epoch.step_to_string step) m
          && !ok);
    (match phase with
    | `A ->
        (* seal resume or roll forward — either way the new epoch must land *)
        ok :=
          check
            (wait_for (fun () -> Shard.epoch chaos = Some (e0 + 1)))
            "cycle %d: recovery after %s at %s did not complete epoch %d (hybrid state?)" cycle
            (fault_kind_to_string kind) (Epoch.step_to_string step) (e0 + 1)
          && !ok
    | `B ->
        (* the whole old epoch, then a clean roll to rejoin the reference *)
        ok :=
          check
            (Shard.epoch chaos = Some e0)
            "cycle %d: pre-seal fault at %s should recover to old epoch %d but shard is at %s"
            cycle (Epoch.step_to_string step) e0
            (match Shard.epoch chaos with Some e -> string_of_int e | None -> "down")
          && !ok;
        diverged := true;
        if not (Shard.request_epoch chaos && wait_for (fun () -> Shard.epoch chaos = Some (e0 + 1)))
        then ok := check false "cycle %d: clean roll after phase-B recovery never completed" cycle && !ok);
    incr transitions;
    if cycle <= 3 then
      copy_file (jpath 0) (Filename.concat dir (Printf.sprintf "journal.post-compact.c%d" cycle));
    (* post-recovery: a fresh query and a dedup re-ask must match the twin *)
    let post_rid = Printf.sprintf "c%d-post" cycle in
    let rp = mkreq ~id:(100 * cycle + 9) ~rid:post_rid ~query:"sq" () in
    let pc = Shard.submit chaos rp and pr = Shard.submit refsh rp in
    note_spent pc;
    if not !diverged then begin
      compare_replies ~what:"post-recovery query" post_rid pc pr;
      let old_rid = Printf.sprintf "c%d-q1" cycle in
      let ro = mkreq ~id:(100 * cycle + 1) ~rid:old_rid ~query:(if (cycle + 1) mod 2 = 0 then "sq" else "huber") () in
      compare_replies ~what:"dedup re-ask across compaction" old_rid (Shard.submit chaos ro)
        (Shard.submit refsh ro)
    end;
    Printf.printf "cycle %2d/%d: %s at %-18s -> epoch %d, recovered%s\n%!" cycle cycles
      (fault_kind_to_string kind)
      (Epoch.step_to_string step)
      (match Shard.epoch chaos with Some e -> e | None -> -1)
      (if phase = `B then " (phase B: old epoch, then clean roll)" else "")
  done;
  (* graceful drain, then validate both journals and the epoch agreement *)
  Shard.stop chaos;
  Shard.stop refsh;
  let wall_s = Unix.gettimeofday () -. t_start in
  let chaos_ok, chaos_records, _ =
    validate_journal ~path:(jpath 0) ~eps_total:eps_pot ~max_reported_eps:!max_reported_eps
      ~max_reported_delta:!max_reported_delta
  in
  let ref_ok, _, _ =
    validate_journal ~path:(jpath 1) ~eps_total:eps_pot ~max_reported_eps:0.
      ~max_reported_delta:0.
  in
  (* whole-epoch recovery, never hybrid: the surviving journal's generation
     must equal the epoch snapshot's *)
  let agreement_ok =
    let raw =
      let ic = open_in_bin (jpath 0) in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    in
    match
      ( Journal.replay_string raw,
        Pmw_server.Epoch.read_snapshot ~path:(jpath 0 ^ ".epoch") )
    with
    | Ok rv, Ok (Some snap) ->
        check
          (rv.Journal.rv_epoch = snap.Pmw_server.Epoch.sn_epoch)
          "journal generation %d disagrees with epoch snapshot %d (hybrid state)"
          rv.Journal.rv_epoch snap.Pmw_server.Epoch.sn_epoch
    | Ok _, Ok None -> check false "no epoch snapshot survived the soak"
    | Error m, _ -> check false "chaos journal unreadable at the end: %s" m
    | _, Error m -> check false "epoch snapshot unreadable at the end: %s" m
  in
  (* compaction bound: the journal must scale with one epoch's script, not
     with total history (~7 records per cycle would leak through otherwise) *)
  let bound_ok =
    check (chaos_records <= 24 && !max_post_records <= 24)
      "journal not bounded by the per-epoch script: %d records now, %d max post-transition"
      chaos_records !max_post_records
  in
  let trans = Array.of_list !trans_times in
  Array.sort compare trans;
  let recov = Array.of_list !recov_times in
  Array.sort compare recov;
  let recovery_max = if Array.length recov = 0 then 0. else recov.(Array.length recov - 1) in
  let checks_ok = !ok && chaos_ok && ref_ok && agreement_ok && bound_ok in
  Printf.printf
    "epoch soak: %d cycles over %d fault combos, %.1fs wall\n\
    \  %d transitions (reference p50 %.1f ms, p99 %.1f ms); chaos recovery max %.0f ms\n\
    \  compaction reclaimed %d bytes; chaos journal %d records (max post-transition %d)\n\
     %s\n%!"
    cycles plan_len wall_s !transitions
    (1e3 *. percentile trans 0.5)
    (1e3 *. percentile trans 0.99)
    (recovery_max *. 1e3) !reclaimed chaos_records !max_post_records
    (if checks_ok then "ALL INVARIANTS HELD" else "INVARIANTS VIOLATED");
  if json then begin
    let num v = Protocol.Num v in
    let int v = Protocol.Num (float_of_int v) in
    let section =
      Protocol.Obj
        [
          ("generator", Protocol.Str "bench/chaos.exe -- --kill-epoch --json");
          ("timestamp", Protocol.Str (Bench_json.iso8601_utc ()));
          ("cycles", int cycles);
          ("fault_combos", int plan_len);
          ("wall_s", num wall_s);
          ("transitions", int !transitions);
          ("transition_p50_ms", num (1e3 *. percentile trans 0.5));
          ("transition_p99_ms", num (1e3 *. percentile trans 0.99));
          ("recovery_max_ms", num (recovery_max *. 1e3));
          ("compaction_bytes_reclaimed", int !reclaimed);
          ("journal_records_final", int chaos_records);
          ("journal_records_max_post_transition", int !max_post_records);
          ("max_reported_eps", num !max_reported_eps);
          ("invariants_held", Protocol.Bool checks_ok);
        ]
    in
    Bench_json.merge_section ~path:"BENCH_pmw.json" ~section:"epochs"
      ~command:"bench/chaos.exe -- --kill-epoch --json" section
  end;
  exit (if checks_ok then 0 else 1)

(* --- entry point --- *)

let () =
  let cycles = ref 20 in
  let analysts = ref 4 in
  let dir = ref None in
  let bin = ref "_build/default/bin/pmw_cli.exe" in
  let seed = ref 42 in
  let json = ref false in
  let eps = ref 200. in
  let n = ref 20_000 in
  let k = ref 20_000 in
  let kill_min = ref 0.3 in
  let kill_max = ref 0.9 in
  let dup_prob = ref 0.35 in
  let kill_shard = ref false in
  let kill_epoch = ref false in
  let shards = ref 4 in
  let rec parse = function
    | [] -> ()
    | "--cycles" :: v :: rest -> cycles := int_of_string v; parse rest
    | "--analysts" :: v :: rest -> analysts := int_of_string v; parse rest
    | "--dir" :: v :: rest -> dir := Some v; parse rest
    | "--server-bin" :: v :: rest -> bin := v; parse rest
    | "--seed" :: v :: rest -> seed := int_of_string v; parse rest
    | "--eps" :: v :: rest -> eps := float_of_string v; parse rest
    | "--n" :: v :: rest -> n := int_of_string v; parse rest
    | "--k" :: v :: rest -> k := int_of_string v; parse rest
    | "--kill-min-s" :: v :: rest -> kill_min := float_of_string v; parse rest
    | "--kill-max-s" :: v :: rest -> kill_max := float_of_string v; parse rest
    | "--dup-prob" :: v :: rest -> dup_prob := float_of_string v; parse rest
    | "--kill-shard" :: rest -> kill_shard := true; parse rest
    | "--kill-epoch" :: rest -> kill_epoch := true; parse rest
    | "--shards" :: v :: rest -> shards := int_of_string v; parse rest
    | "--json" :: rest -> json := true; parse rest
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %s\n\
           usage: chaos.exe [--cycles N] [--analysts N] [--dir D] [--server-bin PATH]\n\
          \       [--seed S] [--eps E] [--n N] [--k K] [--kill-min-s S] [--kill-max-s S]\n\
          \       [--dup-prob P] [--kill-shard [--shards N]] [--kill-epoch] [--json]\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if (not !kill_epoch) && not (Sys.file_exists !bin) then begin
    Printf.eprintf "server binary %s not found (dune build bin/ first)\n" !bin;
    exit 2
  end;
  let dir =
    match !dir with
    | Some d ->
        if not (Sys.file_exists d) then Sys.mkdir d 0o755;
        d
    | None ->
        let d = Filename.temp_file "pmw-chaos" "" in
        Sys.remove d;
        Sys.mkdir d 0o755;
        d
  in
  if !kill_epoch then epoch_soak ~dir ~cycles:!cycles ~json:!json ();
  if !kill_shard then
    fleet_soak ~bin:!bin ~dir ~seed:!seed ~eps:!eps ~n:!n ~k:!k ~shards:!shards
      ~analysts:!analysts ~cycles:!cycles ~kill_min:!kill_min ~kill_max:!kill_max ~json:!json ();
  let socket = Filename.concat dir "real.sock" in
  let journal = Filename.concat dir "journal.wal" in
  let proxy_path = Filename.concat dir "flaky.sock" in
  let srv = { pid = -1; incarnation = 0 } in
  let spawn () = spawn_server ~bin:!bin ~dir ~socket ~journal ~eps:!eps ~n:!n ~k:!k srv in
  let t_start = Unix.gettimeofday () in
  let trace = ref (spawn ()) in
  (match wait_ready ~socket ~timeout_s:60. with
  | Some _ -> ()
  | None ->
      Printf.eprintf "server never came up; see %s/server-1.log\n" dir;
      exit 2);
  let proxy =
    Flaky.start
      ~config:
        {
          Flaky.fl_seed = Int64.of_int !seed;
          fl_drop = 0.03;
          fl_delay = 0.08;
          fl_delay_max_s = 0.03;
          fl_truncate = 0.015;
          fl_garbage = 0.03;
          fl_disconnect = 0.015;
        }
      ~listen_path:proxy_path ~upstream:socket ()
  in
  let running = Atomic.make true in
  let panel = Bench_json.default_panel in
  let results = Array.make !analysts (new_stats ()) in
  let threads =
    List.init !analysts (fun i ->
        Thread.create
          (fun () ->
            results.(i) <-
              analyst ~running ~proxy_path ~panel ~seed:(Int64.of_int !seed) ~dup_prob:!dup_prob i)
          ())
  in
  (* killer loop: SIGKILL at a random point, restart, measure time back to
     an accepting socket *)
  let rng = Splitmix64.create (Int64.of_int (!seed + 997)) in
  let recoveries = ref [] in
  let failed_restart = ref false in
  for cycle = 1 to !cycles do
    Thread.delay (uniform rng !kill_min !kill_max);
    kill_wait srv.pid Sys.sigkill;
    let t0 = Unix.gettimeofday () in
    trace := spawn ();
    match wait_ready ~socket ~timeout_s:60. with
    | Some _ ->
        let dt = Unix.gettimeofday () -. t0 in
        recoveries := dt :: !recoveries;
        Printf.printf "cycle %2d/%d: killed pid, recovered in %.0f ms\n%!" cycle !cycles
          (dt *. 1e3)
    | None ->
        Printf.eprintf "cycle %d: server did not recover; see %s/server-%d.log\n%!" cycle dir
          srv.incarnation;
        failed_restart := true
  done;
  Atomic.set running false;
  List.iter Thread.join threads;
  (* graceful drain of the final incarnation, then validate *)
  kill_wait srv.pid Sys.sigterm;
  Flaky.stop proxy;
  let wall_s = Unix.gettimeofday () -. t_start in
  let total f = Array.fold_left (fun acc s -> acc + f s) 0 results in
  let completed = total (fun s -> s.a_completed) in
  let answered = total (fun s -> s.a_answered) in
  let errors = total (fun s -> s.a_errors) in
  let dedup_checks = total (fun s -> s.a_dedup_checks) in
  let dedup_mismatches = total (fun s -> s.a_dedup_mismatches) in
  let max_reported_eps =
    Array.fold_left (fun acc s -> Float.max acc s.a_max_eps) 0. results
  in
  let max_reported_delta =
    Array.fold_left (fun acc s -> Float.max acc s.a_max_delta) 0. results
  in
  let journal_ok, journal_records, (cum_eps, cum_delta) =
    validate_journal ~path:journal ~eps_total:!eps ~max_reported_eps ~max_reported_delta
  in
  let trace_ok =
    match Trace.load ~path:!trace with
    | Error why ->
        Printf.eprintf "INVARIANT VIOLATED: final trace unreadable: %s\n%!" why;
        false
    | Ok events -> (
        match Trace.validate events with
        | Ok () -> true
        | Error why ->
            Printf.eprintf "INVARIANT VIOLATED: final trace invalid: %s\n%!" why;
            false)
  in
  let recov = Array.of_list !recoveries in
  Array.sort compare recov;
  let recovery_mean =
    if Array.length recov = 0 then 0.
    else Array.fold_left ( +. ) 0. recov /. float_of_int (Array.length recov)
  in
  let recovery_max = if Array.length recov = 0 then 0. else recov.(Array.length recov - 1) in
  let checks_ok =
    check (dedup_mismatches = 0) "%d dedup mismatches (retried rids got fresh bytes)"
      dedup_mismatches
    && check (dedup_checks > 0) "no dedup retries were exercised (%d checks)" dedup_checks
    && check (not !failed_restart) "at least one restart never came back"
    && check (completed > 0) "no requests completed"
    && journal_ok && trace_ok
  in
  Printf.printf
    "chaos soak: %d kill/restart cycles, %d analysts, %.1fs wall\n\
    \  %d completed (%d answered, %d client errors), %d dedup retries, %d mismatches\n\
    \  recovery ms mean %.0f max %.0f; journal records %d, cum eps %.4f (max reported %.4f), \
     cum delta %.3g\n\
    \  proxy faults: %s\n\
     %s\n%!"
    !cycles !analysts wall_s completed answered errors dedup_checks dedup_mismatches
    (recovery_mean *. 1e3) (recovery_max *. 1e3) journal_records cum_eps max_reported_eps
    cum_delta
    (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) (Flaky.stats proxy)))
    (if checks_ok then "ALL INVARIANTS HELD" else "INVARIANTS VIOLATED");
  if !json then begin
    let num v = Protocol.Num v in
    let int v = Protocol.Num (float_of_int v) in
    let section =
      Protocol.Obj
        [
          ("generator", Protocol.Str "bench/chaos.exe -- --json");
          ("timestamp", Protocol.Str (Bench_json.iso8601_utc ()));
          ("cycles", int !cycles);
          ("analysts", int !analysts);
          ("wall_s", num wall_s);
          ("requests_completed", int completed);
          ("requests_answered", int answered);
          ("client_errors", int errors);
          ("dedup_retries", int dedup_checks);
          ("dedup_mismatches", int dedup_mismatches);
          ("recovery_mean_ms", num (recovery_mean *. 1e3));
          ("recovery_max_ms", num (recovery_max *. 1e3));
          ("journal_records", int journal_records);
          ("journal_cum_eps", num cum_eps);
          ("journal_cum_delta", num cum_delta);
          ("max_reported_eps", num max_reported_eps);
          ( "proxy_faults",
            Protocol.Obj (List.map (fun (k, v) -> (k, int v)) (Flaky.stats proxy)) );
          ("invariants_held", Protocol.Bool checks_ok);
        ]
    in
    Bench_json.merge_section ~path:"BENCH_pmw.json" ~section:"chaos"
      ~command:"bench/chaos.exe -- --json" section
  end;
  exit (if checks_ok then 0 else 1)
