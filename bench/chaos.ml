(* Chaos soak harness for the crash-safe serving layer (docs/robustness.md).

   Topology: this process spawns a real `pmw_cli serve` daemon (journal +
   checkpoints + --resume), puts the Flaky fault proxy in front of its
   socket, and drives N analyst threads through the proxy with
   rid-stamped requests and the Client retry loop. A killer loop SIGKILLs
   the server at random points and restarts it, measuring recovery time.
   After the last cycle the analysts stop, the server is drained with
   SIGTERM, and the journal + traces are validated:

     (a) the journal's cumulative (eps, delta) is monotone, additive for
         serve debits, covers the largest spend any client was ever told
         (rsp_spent_eps/delta), and never exceeds the configured pot — no budget is
         forgotten by a crash and none is spent twice;
     (b) every deliberately re-asked request_id produced a byte-identical
         answer to the recorded one (client side), and no rid appears in
         the journal twice with different bytes (server side);
     (c) the final incarnation's telemetry trace passes Trace.validate.

   Exit status 0 when every invariant holds, 1 otherwise. With --json, a
   "chaos" section (recovery-time and dedup-hit metrics included) is merged
   into BENCH_pmw.json. *)

module Protocol = Pmw_server.Protocol
module Net = Pmw_server.Net
module Flaky = Pmw_server.Flaky
module Journal = Pmw_server.Journal
module Trace = Pmw_telemetry.Trace
module Splitmix64 = Pmw_rng.Splitmix64

type analyst_stats = {
  mutable a_completed : int;
  mutable a_answered : int;
  mutable a_partials : int;
  mutable a_coverage_bad : int;
  mutable a_errors : int;
  mutable a_dedup_checks : int;
  mutable a_dedup_mismatches : int;
  mutable a_max_eps : float;
  mutable a_max_delta : float;
  mutable a_lines : (string * string) list;  (* (rid, recorded line), newest first *)
}

let new_stats () =
  {
    a_completed = 0;
    a_answered = 0;
    a_partials = 0;
    a_coverage_bad = 0;
    a_errors = 0;
    a_dedup_checks = 0;
    a_dedup_mismatches = 0;
    a_max_eps = 0.;
    a_max_delta = 0.;
    a_lines = [];
  }

let uniform rng lo hi =
  lo +. ((hi -. lo) *. (float_of_int (Splitmix64.next_in rng ~bound:1_000_000) /. 1_000_000.))

let is_rejected (rsp : Protocol.response) =
  match rsp.Protocol.rsp_status with Protocol.Rejected _ -> true | _ -> false

(* One analyst: closed loop through the proxy, every request rid-stamped,
   and a fraction of answered rids immediately re-asked — the dedup layer
   must hand back the recorded bytes. When [fleet = Some shards], Partial
   verdicts are expected while a shard is down; their coverage must equal
   the surviving-weight fraction (near-equal block partition: within 1e-3
   of (shards - missing)/shards), and missing_shards must be non-empty.
   Byte-identity dedup re-asks stay off in fleet mode — the router stamps a
   fresh seq and recomposes the fleet envelope on every call, so the
   single-broker byte contract intentionally does not hold; the per-shard
   journals still enforce no-rid-rewrite server-side. *)
let analyst ?fleet ~running ~proxy_path ~panel ~seed ~dup_prob i =
  let stats = new_stats () in
  let rng = Splitmix64.create (Int64.add seed (Int64.of_int (101 * (i + 1)))) in
  let name = Printf.sprintf "an%d" i in
  let policy =
    {
      Net.Client.rp_max_attempts = 12;
      rp_base_delay_s = 0.05;
      rp_max_delay_s = 1.;
      rp_deadline_s = 60.;
      rp_seed = Int64.add seed (Int64.of_int i);
    }
  in
  let client = ref None in
  let get_client () =
    match !client with
    | Some c -> Some c
    | None -> (
        match Net.Client.connect ~deadline_s:5. proxy_path with
        | c ->
            client := Some c;
            Some c
        | exception Unix.Unix_error _ -> None)
  in
  let r = ref 0 in
  while Atomic.get running do
    (match get_client () with
    | None -> Thread.delay 0.05
    | Some c -> (
        let rid = Printf.sprintf "%s-r%d" name !r in
        let req =
          {
            Protocol.req_id = !r;
            req_analyst = name;
            req_query = panel.(Splitmix64.next_in rng ~bound:(Array.length panel));
            req_rid = Some rid;
            req_shards = None;
            req_trace = None;
            req_pspan = None;
          }
        in
        match Net.Client.call_with_retry ~policy c req with
        | Error _ ->
            stats.a_errors <- stats.a_errors + 1;
            (* the connection object reconnects lazily; brief pause so a
               dead server window doesn't spin *)
            Thread.delay 0.05
        | Ok rsp ->
            stats.a_completed <- stats.a_completed + 1;
            Option.iter (fun e -> stats.a_max_eps <- Float.max stats.a_max_eps e)
              rsp.Protocol.rsp_spent_eps;
            Option.iter (fun d -> stats.a_max_delta <- Float.max stats.a_max_delta d)
              rsp.Protocol.rsp_spent_delta;
            (match (rsp.Protocol.rsp_status, fleet) with
            | Protocol.Partial { missing_shards; coverage; _ }, Some shards ->
                stats.a_partials <- stats.a_partials + 1;
                let expected =
                  float_of_int (shards - List.length missing_shards) /. float_of_int shards
                in
                if missing_shards = [] || Float.abs (coverage -. expected) > 1e-3 then begin
                  stats.a_coverage_bad <- stats.a_coverage_bad + 1;
                  Printf.eprintf "BAD COVERAGE %s/%s: [%s] coverage %.6f expected %.6f\n%!" name
                    rid
                    (String.concat "," (List.map string_of_int missing_shards))
                    coverage expected
                end
            | Protocol.Partial _, None ->
                (* a single broker can never produce a fleet verdict *)
                stats.a_partials <- stats.a_partials + 1;
                stats.a_coverage_bad <- stats.a_coverage_bad + 1
            | _ -> ());
            if not (is_rejected rsp) then begin
              stats.a_answered <- stats.a_answered + 1;
              let line = Protocol.encode_response rsp in
              stats.a_lines <- (rid, line) :: stats.a_lines;
              if uniform rng 0. 1. < dup_prob then begin
                (* idempotent retry check: same rid again, on purpose *)
                match Net.Client.call_with_retry ~policy c req with
                | Error _ -> stats.a_errors <- stats.a_errors + 1
                | Ok dup when is_rejected dup -> ()
                | Ok dup ->
                    stats.a_dedup_checks <- stats.a_dedup_checks + 1;
                    if Protocol.encode_response dup <> line then begin
                      stats.a_dedup_mismatches <- stats.a_dedup_mismatches + 1;
                      Printf.eprintf "DEDUP MISMATCH %s/%s:\n  first %s\n  retry %s\n%!" name rid
                        line
                        (Protocol.encode_response dup)
                    end
              end
            end));
    incr r;
    Thread.delay 0.01
  done;
  Option.iter Net.Client.close !client;
  stats

(* --- server lifecycle --- *)

type server = { mutable pid : int; mutable incarnation : int }

let spawn_server ?(checkpointing = true) ?(extra = []) ~bin ~dir ~socket ~journal ~eps ~n ~k srv =
  srv.incarnation <- srv.incarnation + 1;
  let log =
    Unix.openfile
      (Filename.concat dir (Printf.sprintf "server-%d.log" srv.incarnation))
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  let trace = Filename.concat dir (Printf.sprintf "trace-%d.jsonl" srv.incarnation) in
  let args =
    Array.of_list
      ([ bin; "serve"; "--socket"; socket; "--journal"; journal ]
      @ (if checkpointing then
           [ "--checkpoint-dir"; Filename.concat dir "ckpt"; "--resume"; "--checkpoint-every"; "8" ]
         else [])
      @ [
          "--dedup-cap"; "200000";
          "-n"; string_of_int n;
          "-k"; string_of_int k;
          "--eps"; Printf.sprintf "%g" eps;
          "--alpha"; "0.1";
          "--seed"; "7";
          "--trace"; trace;
        ]
      @ extra)
  in
  srv.pid <- Unix.create_process bin args Unix.stdin log log;
  Unix.close log;
  trace

let wait_ready ~socket ~timeout_s =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Some (Unix.gettimeofday () -. t0)
    | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Unix.gettimeofday () -. t0 > timeout_s then None
        else begin
          Thread.delay 0.02;
          go ()
        end
  in
  go ()

let kill_wait pid signal =
  (try Unix.kill pid signal with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid : int * Unix.process_status) with Unix.Unix_error _ -> ()

(* --- journal validation --- *)

let check cond fmt =
  Printf.ksprintf
    (fun msg ->
      if cond then true
      else begin
        Printf.eprintf "INVARIANT VIOLATED: %s\n%!" msg;
        false
      end)
    fmt

let validate_journal ~path ~eps_total ~max_reported_eps ~max_reported_delta =
  let raw =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  match Journal.replay_string raw with
  | Error why ->
      Printf.eprintf "INVARIANT VIOLATED: journal unreadable: %s\n%!" why;
      (false, 0, (0., 0.))
  | Ok rv ->
      let ok = ref (check (not rv.Journal.rv_torn) "journal torn after graceful drain") in
      let tol = 1e-9 *. Float.max 1. eps_total in
      let prev = ref (0., 0.) in
      List.iter
        (fun r ->
          match r with
          | Journal.Debit { jd_mechanism; jd_eps; jd_delta = _; jd_cum_eps; jd_cum_delta } ->
              let pe, pd = !prev in
              ok :=
                check
                  (jd_cum_eps >= pe -. tol && jd_cum_delta >= pd -. tol)
                  "cumulative ledger went backwards (%.6g,%.3g) -> (%.6g,%.3g)" pe pd jd_cum_eps
                  jd_cum_delta
                && !ok;
              if jd_mechanism = "serve" then
                ok :=
                  check
                    (Float.abs (jd_cum_eps -. (pe +. jd_eps)) <= tol)
                    "serve debit not additive: %.6g + %.6g <> %.6g" pe jd_eps jd_cum_eps
                  && !ok;
              prev := (jd_cum_eps, jd_cum_delta)
          | Journal.Answer { ja_seq; ja_line; _ } -> (
              (* debit-before-answers: at every journal prefix, the spend
                 an answer reports to its client must already be covered
                 by the last durable debit — otherwise a crash right here
                 would re-serve the answer with its cost never debited *)
              match Protocol.decode_response ja_line with
              | Error why ->
                  ok := check false "journaled answer seq %d unreadable: %s" ja_seq why && !ok
              | Ok rsp ->
                  let pe, pd = !prev in
                  Option.iter
                    (fun e ->
                      ok :=
                        check (pe +. tol >= e)
                          "answer seq %d reports spent_eps %.6g but the preceding debit only \
                           covers %.6g"
                          ja_seq e pe
                        && !ok)
                    rsp.Protocol.rsp_spent_eps;
                  Option.iter
                    (fun d ->
                      ok :=
                        check
                          (pd +. (tol *. 1e-6) >= d)
                          "answer seq %d reports spent_delta %.3g but the preceding debit only \
                           covers %.3g"
                          ja_seq d pd
                        && !ok)
                    rsp.Protocol.rsp_spent_delta)
          | Journal.Mark _ -> ())
        rv.Journal.rv_records;
      let cum_eps, cum_delta = rv.Journal.rv_cum in
      ok :=
        check
          (cum_eps <= eps_total +. tol)
          "journal cumulative eps %.6g exceeds the %.6g pot (double-spend)" cum_eps eps_total
        && !ok;
      ok :=
        check
          (cum_eps +. tol >= max_reported_eps)
          "a client saw spent_eps %.6g but the journal only covers %.6g" max_reported_eps cum_eps
        && !ok;
      ok :=
        check
          (cum_delta +. (tol *. 1e-6) >= max_reported_delta)
          "a client saw spent_delta %.3g but the journal only covers %.3g" max_reported_delta
          cum_delta
        && !ok;
      (* server-side byte identity: a rid journaled twice must carry the
         same bytes (it should in fact never be journaled twice at all —
         the dedup path replays without re-recording) *)
      let by_rid = Hashtbl.create 256 in
      List.iter
        (fun (key, line) ->
          match Hashtbl.find_opt by_rid key with
          | None -> Hashtbl.add by_rid key line
          | Some first ->
              ok :=
                check (String.equal first line) "rid %s journaled twice with different bytes"
                  (snd key)
                && !ok)
        rv.Journal.rv_answers;
      (!ok, List.length rv.Journal.rv_records, rv.Journal.rv_cum)

(* --- fleet soak (--kill-shard) ---

   One `pmw_cli serve --shards N --chaos-ctl` fleet process; analysts drive
   it straight over its socket while a killer loop takes down one shard at
   a time through the control plane and times the supervisor's recovery
   (ctl:health polling). Validated afterwards: every partial answer named
   the dead shards with the right coverage, each shard's journal passes the
   single-broker invariants independently, the fleet-reported spend is the
   parallel-composition max over the shard journals (never their sum — that
   would be cross-shard double-counting), and every recovery beat the one-
   second target. *)

let fleet_soak ~bin ~dir ~seed ~eps ~n ~k ~shards ~analysts ~cycles ~kill_min ~kill_max ~json () =
  let socket = Filename.concat dir "fleet.sock" in
  let journal = Filename.concat dir "journal.wal" in
  let srv = { pid = -1; incarnation = 0 } in
  let t_start = Unix.gettimeofday () in
  let trace =
    spawn_server ~checkpointing:false
      ~extra:
        [
          "--shards"; string_of_int shards; "--shard-by"; "block"; "--chaos-ctl";
          "--fleet-deadline"; "10";
        ]
      ~bin ~dir ~socket ~journal ~eps ~n ~k srv
  in
  (match wait_ready ~socket ~timeout_s:120. with
  | Some _ -> ()
  | None ->
      Printf.eprintf "fleet never came up; see %s/server-1.log\n" dir;
      exit 2);
  let running = Atomic.make true in
  let panel = Bench_json.default_panel in
  let results = Array.make analysts (new_stats ()) in
  let threads =
    List.init analysts (fun i ->
        Thread.create
          (fun () ->
            results.(i) <-
              analyst ~fleet:shards ~running ~proxy_path:socket ~panel ~seed:(Int64.of_int seed)
                ~dup_prob:0. i)
          ())
  in
  let ctl = Net.Client.connect ~deadline_s:5. socket in
  let call_ctl ~id q =
    Net.Client.call ctl
      {
        Protocol.req_id = id;
        req_analyst = "chaos-ctl";
        req_query = q;
        req_rid = None;
        req_shards = None;
        req_trace = None;
        req_pspan = None;
      }
  in
  let rng = Splitmix64.create (Int64.of_int (seed + 997)) in
  let recoveries = ref [] in
  let failed_restart = ref false in
  let kill_errors = ref 0 in
  for cycle = 1 to cycles do
    Thread.delay (uniform rng kill_min kill_max);
    let target = (cycle - 1) mod shards in
    match call_ctl ~id:(10_000 + cycle) (Printf.sprintf "ctl:kill:%d" target) with
    | Ok { Protocol.rsp_status = Protocol.Answered; _ } -> (
        let t0 = Unix.gettimeofday () in
        let rec poll () =
          if Unix.gettimeofday () -. t0 > 30. then None
          else
            match call_ctl ~id:(20_000 + cycle) "ctl:health" with
            | Ok { Protocol.rsp_status = Protocol.Answered; rsp_theta = Some states; _ }
              when Array.length states > target && states.(target) = 2. ->
                Some (Unix.gettimeofday () -. t0)
            | _ ->
                Thread.delay 0.005;
                poll ()
        in
        match poll () with
        | Some dt ->
            recoveries := dt :: !recoveries;
            Printf.printf "cycle %2d/%d: killed shard %d, recovered in %.0f ms\n%!" cycle cycles
              target (dt *. 1e3)
        | None ->
            Printf.eprintf "cycle %d: shard %d never came back\n%!" cycle target;
            failed_restart := true)
    | Ok rsp ->
        Printf.eprintf "cycle %d: ctl:kill:%d answered %s\n%!" cycle target
          (Protocol.status_tag rsp.Protocol.rsp_status);
        incr kill_errors
    | Error e ->
        Printf.eprintf "cycle %d: ctl error %s\n%!" cycle (Net.Client.error_to_string e);
        incr kill_errors
  done;
  Net.Client.close ctl;
  Atomic.set running false;
  List.iter Thread.join threads;
  kill_wait srv.pid Sys.sigterm;
  let wall_s = Unix.gettimeofday () -. t_start in
  let total f = Array.fold_left (fun acc s -> acc + f s) 0 results in
  let completed = total (fun s -> s.a_completed) in
  let answered = total (fun s -> s.a_answered) in
  let errors = total (fun s -> s.a_errors) in
  let partials = total (fun s -> s.a_partials) in
  let coverage_bad = total (fun s -> s.a_coverage_bad) in
  let max_reported_eps = Array.fold_left (fun acc s -> Float.max acc s.a_max_eps) 0. results in
  let shard_journals =
    List.init shards (fun i ->
        let path = Printf.sprintf "%s.shard%d" journal i in
        let ok, records, (cum_eps, cum_delta) =
          validate_journal ~path ~eps_total:eps ~max_reported_eps:0. ~max_reported_delta:0.
        in
        (i, ok, records, cum_eps, cum_delta))
  in
  let max_cum_eps =
    List.fold_left (fun acc (_, _, _, e, _) -> Float.max acc e) 0. shard_journals
  in
  let trace_ok =
    match Trace.load ~path:trace with
    | Error why ->
        Printf.eprintf "INVARIANT VIOLATED: fleet trace unreadable: %s\n%!" why;
        false
    | Ok events -> (
        match Trace.validate events with
        | Ok () -> true
        | Error why ->
            Printf.eprintf "INVARIANT VIOLATED: fleet trace invalid: %s\n%!" why;
            false)
  in
  let recov = Array.of_list !recoveries in
  Array.sort compare recov;
  let recovery_mean =
    if Array.length recov = 0 then 0.
    else Array.fold_left ( +. ) 0. recov /. float_of_int (Array.length recov)
  in
  let recovery_max = if Array.length recov = 0 then 0. else recov.(Array.length recov - 1) in
  let tol = 1e-9 *. Float.max 1. eps in
  let checks_ok =
    List.for_all (fun (_, ok, _, _, _) -> ok) shard_journals
    && check (coverage_bad = 0) "%d partial answers with wrong coverage/missing_shards"
         coverage_bad
    && check (partials > 0) "no partial answers observed across %d shard kills" cycles
    && check (not !failed_restart) "a killed shard never came back"
    && check (!kill_errors = 0) "%d ctl kills failed" !kill_errors
    && check (completed > 0) "no requests completed"
    && check
         (max_reported_eps <= max_cum_eps +. tol)
         "fleet reported spent_eps %.6g but the largest shard journal covers %.6g (cross-shard \
          double-spend)"
         max_reported_eps max_cum_eps
    && check (recovery_max < 1.)
         "slowest shard recovery %.0f ms blew the one-second target" (recovery_max *. 1e3)
    && trace_ok
  in
  Printf.printf
    "fleet soak: %d shard kills across %d shards, %d analysts, %.1fs wall\n\
    \  %d completed (%d answered, %d partial, %d client errors), %d bad coverages\n\
    \  shard recovery ms mean %.0f max %.0f; fleet max reported eps %.4f, max shard journal eps \
     %.4f\n"
    cycles shards analysts wall_s completed answered partials errors coverage_bad
    (recovery_mean *. 1e3) (recovery_max *. 1e3) max_reported_eps max_cum_eps;
  List.iter
    (fun (i, ok, records, cum_eps, cum_delta) ->
      Printf.printf "  shard %d journal: %d records, cum eps %.4f, cum delta %.3g%s\n" i records
        cum_eps cum_delta
        (if ok then "" else " INVALID"))
    shard_journals;
  Printf.printf "%s\n%!" (if checks_ok then "ALL INVARIANTS HELD" else "INVARIANTS VIOLATED");
  if json then begin
    let num v = Protocol.Num v in
    let int v = Protocol.Num (float_of_int v) in
    let section =
      Protocol.Obj
        [
          ("generator", Protocol.Str "bench/chaos.exe -- --kill-shard --json");
          ("timestamp", Protocol.Str (Bench_json.iso8601_utc ()));
          ("shards", int shards);
          ("cycles", int cycles);
          ("analysts", int analysts);
          ("wall_s", num wall_s);
          ("requests_completed", int completed);
          ("requests_answered", int answered);
          ("requests_partial", int partials);
          ("coverage_violations", int coverage_bad);
          ("client_errors", int errors);
          ("shard_recovery_mean_ms", num (recovery_mean *. 1e3));
          ("shard_recovery_max_ms", num (recovery_max *. 1e3));
          ("fleet_max_reported_eps", num max_reported_eps);
          ( "shard_journal_cum_eps",
            Protocol.Arr (List.map (fun (_, _, _, e, _) -> num e) shard_journals) );
          ("invariants_held", Protocol.Bool checks_ok);
        ]
    in
    Bench_json.merge_section ~path:"BENCH_pmw.json" ~section:"chaos_fleet"
      ~command:"bench/chaos.exe -- --kill-shard --json" section
  end;
  exit (if checks_ok then 0 else 1)

(* --- entry point --- *)

let () =
  let cycles = ref 20 in
  let analysts = ref 4 in
  let dir = ref None in
  let bin = ref "_build/default/bin/pmw_cli.exe" in
  let seed = ref 42 in
  let json = ref false in
  let eps = ref 200. in
  let n = ref 20_000 in
  let k = ref 20_000 in
  let kill_min = ref 0.3 in
  let kill_max = ref 0.9 in
  let dup_prob = ref 0.35 in
  let kill_shard = ref false in
  let shards = ref 4 in
  let rec parse = function
    | [] -> ()
    | "--cycles" :: v :: rest -> cycles := int_of_string v; parse rest
    | "--analysts" :: v :: rest -> analysts := int_of_string v; parse rest
    | "--dir" :: v :: rest -> dir := Some v; parse rest
    | "--server-bin" :: v :: rest -> bin := v; parse rest
    | "--seed" :: v :: rest -> seed := int_of_string v; parse rest
    | "--eps" :: v :: rest -> eps := float_of_string v; parse rest
    | "--n" :: v :: rest -> n := int_of_string v; parse rest
    | "--k" :: v :: rest -> k := int_of_string v; parse rest
    | "--kill-min-s" :: v :: rest -> kill_min := float_of_string v; parse rest
    | "--kill-max-s" :: v :: rest -> kill_max := float_of_string v; parse rest
    | "--dup-prob" :: v :: rest -> dup_prob := float_of_string v; parse rest
    | "--kill-shard" :: rest -> kill_shard := true; parse rest
    | "--shards" :: v :: rest -> shards := int_of_string v; parse rest
    | "--json" :: rest -> json := true; parse rest
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %s\n\
           usage: chaos.exe [--cycles N] [--analysts N] [--dir D] [--server-bin PATH]\n\
          \       [--seed S] [--eps E] [--n N] [--k K] [--kill-min-s S] [--kill-max-s S]\n\
          \       [--dup-prob P] [--kill-shard [--shards N]] [--json]\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if not (Sys.file_exists !bin) then begin
    Printf.eprintf "server binary %s not found (dune build bin/ first)\n" !bin;
    exit 2
  end;
  let dir =
    match !dir with
    | Some d ->
        if not (Sys.file_exists d) then Sys.mkdir d 0o755;
        d
    | None ->
        let d = Filename.temp_file "pmw-chaos" "" in
        Sys.remove d;
        Sys.mkdir d 0o755;
        d
  in
  if !kill_shard then
    fleet_soak ~bin:!bin ~dir ~seed:!seed ~eps:!eps ~n:!n ~k:!k ~shards:!shards
      ~analysts:!analysts ~cycles:!cycles ~kill_min:!kill_min ~kill_max:!kill_max ~json:!json ();
  let socket = Filename.concat dir "real.sock" in
  let journal = Filename.concat dir "journal.wal" in
  let proxy_path = Filename.concat dir "flaky.sock" in
  let srv = { pid = -1; incarnation = 0 } in
  let spawn () = spawn_server ~bin:!bin ~dir ~socket ~journal ~eps:!eps ~n:!n ~k:!k srv in
  let t_start = Unix.gettimeofday () in
  let trace = ref (spawn ()) in
  (match wait_ready ~socket ~timeout_s:60. with
  | Some _ -> ()
  | None ->
      Printf.eprintf "server never came up; see %s/server-1.log\n" dir;
      exit 2);
  let proxy =
    Flaky.start
      ~config:
        {
          Flaky.fl_seed = Int64.of_int !seed;
          fl_drop = 0.03;
          fl_delay = 0.08;
          fl_delay_max_s = 0.03;
          fl_truncate = 0.015;
          fl_garbage = 0.03;
          fl_disconnect = 0.015;
        }
      ~listen_path:proxy_path ~upstream:socket ()
  in
  let running = Atomic.make true in
  let panel = Bench_json.default_panel in
  let results = Array.make !analysts (new_stats ()) in
  let threads =
    List.init !analysts (fun i ->
        Thread.create
          (fun () ->
            results.(i) <-
              analyst ~running ~proxy_path ~panel ~seed:(Int64.of_int !seed) ~dup_prob:!dup_prob i)
          ())
  in
  (* killer loop: SIGKILL at a random point, restart, measure time back to
     an accepting socket *)
  let rng = Splitmix64.create (Int64.of_int (!seed + 997)) in
  let recoveries = ref [] in
  let failed_restart = ref false in
  for cycle = 1 to !cycles do
    Thread.delay (uniform rng !kill_min !kill_max);
    kill_wait srv.pid Sys.sigkill;
    let t0 = Unix.gettimeofday () in
    trace := spawn ();
    match wait_ready ~socket ~timeout_s:60. with
    | Some _ ->
        let dt = Unix.gettimeofday () -. t0 in
        recoveries := dt :: !recoveries;
        Printf.printf "cycle %2d/%d: killed pid, recovered in %.0f ms\n%!" cycle !cycles
          (dt *. 1e3)
    | None ->
        Printf.eprintf "cycle %d: server did not recover; see %s/server-%d.log\n%!" cycle dir
          srv.incarnation;
        failed_restart := true
  done;
  Atomic.set running false;
  List.iter Thread.join threads;
  (* graceful drain of the final incarnation, then validate *)
  kill_wait srv.pid Sys.sigterm;
  Flaky.stop proxy;
  let wall_s = Unix.gettimeofday () -. t_start in
  let total f = Array.fold_left (fun acc s -> acc + f s) 0 results in
  let completed = total (fun s -> s.a_completed) in
  let answered = total (fun s -> s.a_answered) in
  let errors = total (fun s -> s.a_errors) in
  let dedup_checks = total (fun s -> s.a_dedup_checks) in
  let dedup_mismatches = total (fun s -> s.a_dedup_mismatches) in
  let max_reported_eps =
    Array.fold_left (fun acc s -> Float.max acc s.a_max_eps) 0. results
  in
  let max_reported_delta =
    Array.fold_left (fun acc s -> Float.max acc s.a_max_delta) 0. results
  in
  let journal_ok, journal_records, (cum_eps, cum_delta) =
    validate_journal ~path:journal ~eps_total:!eps ~max_reported_eps ~max_reported_delta
  in
  let trace_ok =
    match Trace.load ~path:!trace with
    | Error why ->
        Printf.eprintf "INVARIANT VIOLATED: final trace unreadable: %s\n%!" why;
        false
    | Ok events -> (
        match Trace.validate events with
        | Ok () -> true
        | Error why ->
            Printf.eprintf "INVARIANT VIOLATED: final trace invalid: %s\n%!" why;
            false)
  in
  let recov = Array.of_list !recoveries in
  Array.sort compare recov;
  let recovery_mean =
    if Array.length recov = 0 then 0.
    else Array.fold_left ( +. ) 0. recov /. float_of_int (Array.length recov)
  in
  let recovery_max = if Array.length recov = 0 then 0. else recov.(Array.length recov - 1) in
  let checks_ok =
    check (dedup_mismatches = 0) "%d dedup mismatches (retried rids got fresh bytes)"
      dedup_mismatches
    && check (dedup_checks > 0) "no dedup retries were exercised (%d checks)" dedup_checks
    && check (not !failed_restart) "at least one restart never came back"
    && check (completed > 0) "no requests completed"
    && journal_ok && trace_ok
  in
  Printf.printf
    "chaos soak: %d kill/restart cycles, %d analysts, %.1fs wall\n\
    \  %d completed (%d answered, %d client errors), %d dedup retries, %d mismatches\n\
    \  recovery ms mean %.0f max %.0f; journal records %d, cum eps %.4f (max reported %.4f), \
     cum delta %.3g\n\
    \  proxy faults: %s\n\
     %s\n%!"
    !cycles !analysts wall_s completed answered errors dedup_checks dedup_mismatches
    (recovery_mean *. 1e3) (recovery_max *. 1e3) journal_records cum_eps max_reported_eps
    cum_delta
    (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) (Flaky.stats proxy)))
    (if checks_ok then "ALL INVARIANTS HELD" else "INVARIANTS VIOLATED");
  if !json then begin
    let num v = Protocol.Num v in
    let int v = Protocol.Num (float_of_int v) in
    let section =
      Protocol.Obj
        [
          ("generator", Protocol.Str "bench/chaos.exe -- --json");
          ("timestamp", Protocol.Str (Bench_json.iso8601_utc ()));
          ("cycles", int !cycles);
          ("analysts", int !analysts);
          ("wall_s", num wall_s);
          ("requests_completed", int completed);
          ("requests_answered", int answered);
          ("client_errors", int errors);
          ("dedup_retries", int dedup_checks);
          ("dedup_mismatches", int dedup_mismatches);
          ("recovery_mean_ms", num (recovery_mean *. 1e3));
          ("recovery_max_ms", num (recovery_max *. 1e3));
          ("journal_records", int journal_records);
          ("journal_cum_eps", num cum_eps);
          ("journal_cum_delta", num cum_delta);
          ("max_reported_eps", num max_reported_eps);
          ( "proxy_faults",
            Protocol.Obj (List.map (fun (k, v) -> (k, int v)) (Flaky.stats proxy)) );
          ("invariants_held", Protocol.Bool checks_ok);
        ]
    in
    Bench_json.merge_section ~path:"BENCH_pmw.json" ~section:"chaos"
      ~command:"bench/chaos.exe -- --json" section
  end;
  exit (if checks_ok then 0 else 1)
