(* Command-line interface to the library.

   Subcommands:
     list            list the paper-reproduction experiments
     exp NAME        run one experiment (or --all)
     run             run online PMW on a synthetic workload with chosen knobs
     session         run the fault-tolerant session engine (checkpoints,
                     fault injection, resume)
     serve           serve a session to concurrent analysts over a Unix
                     socket (batched evaluation, graceful SIGTERM drain)
     stats           validate and aggregate a JSONL telemetry trace
                     (--fleet stitches cross-shard request trees)
     top             live fleet metrics snapshot scraped over ctl:metrics
     theory          print the Table 1 sample-complexity bounds for given
                     parameters

   Examples:
     pmw_cli exp f1-crossover
     pmw_cli run --workload classification --n 200000 --k 24 --alpha 0.05
     pmw_cli session --checkpoint-dir /tmp/pmw --fault timeout --kill-after 8
     pmw_cli session --checkpoint-dir /tmp/pmw --fault timeout --resume
     pmw_cli serve -n 40000 --eps 20 --socket /tmp/pmw.sock --trace serve.jsonl
     pmw_cli serve --shards 4 --chaos-ctl --metrics --trace fleet.jsonl
     pmw_cli top --socket /tmp/pmw.sock --once
     pmw_cli stats serve.jsonl --check
     pmw_cli stats fleet.jsonl --fleet --journal /tmp/pmw.journal
     pmw_cli theory --alpha 0.05 --k 1000 --d 4 --log-universe 10 *)

open Cmdliner
module Registry = Pmw_experiments.Registry
module Common = Pmw_experiments.Common
module Telemetry = Pmw_telemetry.Telemetry
module Trace = Pmw_telemetry.Trace
module Metrics = Pmw_telemetry.Metrics

(* Shared --trace flag: a JSONL event trace of the whole run. *)
let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE.jsonl"
        ~doc:
          "Write a structured JSONL event trace (spans, counters, privacy-ledger debits) to \
           $(docv); inspect it with 'pmw_cli stats'.")

let make_telemetry trace =
  match trace with
  | None -> Telemetry.null ()
  | Some path -> Telemetry.create ~sink:(Telemetry.Sink.jsonl_file path) ()

let close_telemetry tel = if Telemetry.enabled tel then Telemetry.close tel

(* --- list --- *)

let list_cmd =
  let doc = "List the table/figure reproduction experiments" in
  let run () =
    List.iter
      (fun e -> Printf.printf "%-14s %s\n" e.Registry.name e.Registry.description)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- exp --- *)

let exp_cmd =
  let doc = "Run one paper-reproduction experiment (see 'list'), or all of them" in
  let name_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Experiment id")
  in
  let all_flag = Arg.(value & flag & info [ "all" ] ~doc:"Run every experiment") in
  let run all name =
    match (all, name) with
    | true, _ ->
        Registry.run_all ();
        `Ok ()
    | false, Some n -> (
        match Registry.find n with
        | Some e ->
            e.Registry.run ();
            `Ok ()
        | None -> `Error (false, Printf.sprintf "unknown experiment %S (try 'list')" n))
    | false, None -> `Error (true, "pass an experiment NAME or --all")
  in
  Cmd.v (Cmd.info "exp" ~doc) Term.(ret (const run $ all_flag $ name_arg))

(* --- run --- *)

let run_cmd =
  let doc = "Answer a synthetic CM-query stream with online private multiplicative weights" in
  let workload_arg =
    let kind = Arg.enum [ ("regression", `Regression); ("classification", `Classification) ] in
    Arg.(value & opt kind `Regression & info [ "workload" ] ~docv:"KIND" ~doc:"regression|classification")
  in
  let n_arg = Arg.(value & opt int 150_000 & info [ "n" ] ~doc:"Dataset size") in
  let k_arg = Arg.(value & opt int 20 & info [ "k" ] ~doc:"Number of queries") in
  let alpha_arg = Arg.(value & opt float 0.06 & info [ "alpha" ] ~doc:"Target excess risk") in
  let eps_arg = Arg.(value & opt float 1.0 & info [ "eps" ] ~doc:"Privacy budget epsilon") in
  let delta_arg = Arg.(value & opt float 1e-6 & info [ "delta" ] ~doc:"Privacy budget delta") in
  let t_arg = Arg.(value & opt int 20 & info [ "t-max" ] ~doc:"MW update budget T") in
  let d_arg = Arg.(value & opt int 2 & info [ "d" ] ~doc:"Feature dimension") in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed") in
  let oracle_arg =
    let kind =
      Arg.enum
        [ ("auto", `Auto); ("noisy-gd", `Gd); ("glm", `Glm); ("output-perturbation", `Out); ("exact", `Exact) ]
    in
    Arg.(value & opt kind `Auto & info [ "oracle" ] ~docv:"ORACLE"
           ~doc:"auto|noisy-gd|glm|output-perturbation|exact (exact is non-private!)")
  in
  let run workload n k alpha eps delta t_max d seed oracle_kind trace =
    if n <= 0 || k <= 0 then `Error (false, "n and k must be positive")
    else begin
      let w =
        match workload with
        | `Regression -> Common.Workload.regression ~d ()
        | `Classification -> Common.Workload.classification ~d ()
      in
      let rng = Pmw_rng.Rng.create ~seed () in
      let dataset = w.Common.Workload.sample ~n rng in
      let privacy = Pmw_dp.Params.create ~eps ~delta in
      let config =
        Pmw_core.Config.practical ~universe:w.Common.Workload.universe ~privacy ~alpha ~beta:0.05
          ~scale:w.Common.Workload.scale ~k ~t_max ~solver_iters:200 ()
      in
      let oracle =
        match oracle_kind with
        | `Auto -> Pmw_erm.Oracles.for_loss (List.hd w.Common.Workload.queries).Pmw_core.Cm_query.loss
        | `Gd -> Pmw_erm.Oracles.noisy_gd ()
        | `Glm -> Pmw_erm.Oracles.glm ()
        | `Out -> Pmw_erm.Oracles.output_perturbation
        | `Exact ->
            Printf.printf "WARNING: the exact oracle is not differentially private.\n";
            Pmw_erm.Oracles.exact
      in
      Printf.printf "universe %s (|X|=%d), n=%d, oracle=%s\n%!"
        (Pmw_data.Universe.name w.Common.Workload.universe)
        (Pmw_data.Universe.size w.Common.Workload.universe)
        n oracle.Pmw_erm.Oracle.name;
      let telemetry = make_telemetry trace in
      let mechanism = Pmw_core.Online_pmw.create ~telemetry ~config ~dataset ~oracle ~rng () in
      let analyst = Pmw_core.Analyst.cycle ~name:"cli" w.Common.Workload.queries ~k in
      let records =
        Pmw_core.Analyst.run ~analyst ~k
          ~answer:(fun q ->
            Option.map (fun o -> o.Pmw_core.Online_pmw.theta) (Pmw_core.Online_pmw.answer_opt mechanism q))
          ~dataset ~solver_iters:300 ()
      in
      List.iter
        (fun (r : Pmw_core.Analyst.record) ->
          match r.Pmw_core.Analyst.error with
          | Some e ->
              Printf.printf "round %3d  %-28s excess risk %.4f\n" r.Pmw_core.Analyst.index
                r.Pmw_core.Analyst.query.Pmw_core.Cm_query.name e
          | None -> Printf.printf "round %3d  (halted)\n" r.Pmw_core.Analyst.index)
        records;
      Printf.printf "answered %d/%d; max err %.4f; mean err %.4f; MW updates %d/%d\n"
        (Pmw_core.Analyst.answered records)
        k
        (Pmw_core.Analyst.max_error records)
        (Pmw_core.Analyst.mean_error records)
        (Pmw_core.Online_pmw.updates mechanism)
        t_max;
      Telemetry.emit_ledger_finals telemetry;
      close_telemetry telemetry;
      `Ok ()
    end
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run $ workload_arg $ n_arg $ k_arg $ alpha_arg $ eps_arg $ delta_arg $ t_arg $ d_arg
       $ seed_arg $ oracle_arg $ trace_arg))

(* --- ingest --- *)

let ingest_cmd =
  let doc =
    "Inspect how a CSV dataset discretizes (Section 1.1 rounding), or stream rows into a \
     running epoch-enabled server (--rows): the rows land in the shards' ingest buffers and \
     are absorbed into the dataset at each shard's next epoch transition"
  in
  let module Net = Pmw_server.Net in
  let module Protocol = Pmw_server.Protocol in
  let input_arg =
    Arg.(value & opt (some file) None & info [ "input" ] ~docv:"CSV" ~doc:"Input dataset (features...,label per row)")
  in
  let alpha_arg = Arg.(value & opt float 0.1 & info [ "alpha" ] ~doc:"Target accuracy for the grid") in
  let rows_arg =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "rows" ] ~docv:"I,J,..."
          ~doc:
            "Universe row indices to stream to the server at --socket. The reply reports rows \
             accepted this call and rows still pending absorption; retries with the same --rid \
             are idempotent. Ingest spends no privacy budget.")
  in
  let socket_arg =
    Arg.(value & opt string "/tmp/pmw.sock" & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix domain socket the server listens on (with --rows)")
  in
  let rid_arg =
    Arg.(value & opt (some string) None & info [ "rid" ] ~docv:"KEY"
           ~doc:"Idempotency key: retries reusing it re-get the recorded reply (with --rows)")
  in
  let analyst_arg =
    Arg.(value & opt string "ingest" & info [ "analyst" ] ~doc:"Analyst id stamped on the request")
  in
  let stream rows socket rid analyst =
    match
      (try Ok (Net.Client.connect ~deadline_s:5. socket)
       with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
    with
    | Error m -> `Error (false, Printf.sprintf "cannot connect to %s: %s" socket m)
    | Ok client ->
        let req =
          {
            Protocol.req_id = 1;
            req_analyst = analyst;
            req_query = "ingest";
            req_rid = rid;
            req_shards = None;
            req_trace = None;
            req_pspan = None;
            req_rows = Some rows;
          }
        in
        let result = Net.Client.call client req in
        Net.Client.close client;
        (match result with
        | Error e -> `Error (false, "ingest failed: " ^ Net.Client.error_to_string e)
        | Ok rsp -> (
            match (rsp.Protocol.rsp_status, rsp.Protocol.rsp_theta) with
            | (Protocol.Answered | Protocol.Partial _), Some th when Array.length th = 2 ->
                Printf.printf "ingested %d rows: %.0f accepted, %.0f pending absorption%s\n"
                  (List.length rows) th.(0) th.(1)
                  (match rsp.Protocol.rsp_epoch with
                  | Some e -> Printf.sprintf " (oldest live epoch %d)" e
                  | None -> "");
                (match rsp.Protocol.rsp_status with
                | Protocol.Partial { missing_shards; reason; _ } ->
                    Printf.printf
                      "  WARNING partial: shards [%s] missed (%s) — retry with the same --rid \
                       to converge\n"
                      (String.concat "," (List.map string_of_int missing_shards))
                      reason
                | _ -> ());
                `Ok ()
            | Protocol.Failed why, _ -> `Error (false, "ingest refused: " ^ why)
            | status, _ ->
                `Error
                  (false, "unexpected ingest reply: " ^ Protocol.status_tag status)))
  in
  let run input alpha rows socket rid analyst =
    match (rows, input) with
    | Some rows, _ -> stream rows socket rid analyst
    | None, None ->
        `Error (false, "one of --rows (stream to a server) or --input (inspect a CSV) is required")
    | None, Some input -> (
        match
          (try Ok (Pmw_data.Io.load_dataset ~path:input ~alpha ()) with
          | Failure m -> Error m
          | Invalid_argument m -> Error m)
        with
        | Error m -> `Error (false, m)
        | Ok (universe, dataset) ->
            let d = Pmw_data.Universe.dim universe in
            let spec = Pmw_data.Continuous.plan ~alpha ~dim:d ~labeled:true () in
            Printf.printf "loaded %d records, d=%d\nuniverse: %s, |X| = %d\nrounding error bound: %.4f (target alpha %.4f)\n"
              (Pmw_data.Dataset.size dataset) d
              (Pmw_data.Universe.name universe)
              (Pmw_data.Universe.size universe)
              (Pmw_data.Continuous.rounding_error spec)
              alpha;
            `Ok ())
  in
  Cmd.v (Cmd.info "ingest" ~doc)
    Term.(ret (const run $ input_arg $ alpha_arg $ rows_arg $ socket_arg $ rid_arg $ analyst_arg))

(* --- release --- *)

let release_cmd =
  let doc =
    "Release a private synthetic dataset fitted to a counting-query workload (offline PMW)"
  in
  let input_arg =
    Arg.(required & opt (some file) None & info [ "input" ] ~docv:"CSV" ~doc:"Sensitive input dataset")
  in
  let alpha_arg = Arg.(value & opt float 0.1 & info [ "alpha" ] ~doc:"Target accuracy") in
  let eps_arg = Arg.(value & opt float 1.0 & info [ "eps" ] ~doc:"Privacy budget epsilon") in
  let delta_arg = Arg.(value & opt float 1e-6 & info [ "delta" ] ~doc:"Privacy budget delta") in
  let t_arg = Arg.(value & opt int 20 & info [ "t-max" ] ~doc:"Update rounds") in
  let workload_arg =
    Arg.(
      value
      & opt (list ~sep:';' string) []
      & info [ "queries" ] ~docv:"PREDS"
          ~doc:"Semicolon-separated predicates, e.g. 'x0 > 0; x1 <= 0.5 & label > 0'. Default: all 1-way positive marginals plus 'label > 0'.")
  in
  let out_hist_arg =
    Arg.(value & opt (some string) None & info [ "out-hist" ] ~docv:"CSV" ~doc:"Write the released histogram here")
  in
  let out_synth_arg =
    Arg.(value & opt (some string) None & info [ "out-synthetic" ] ~docv:"CSV" ~doc:"Write sampled synthetic rows here")
  in
  let rows_arg = Arg.(value & opt int 10_000 & info [ "rows" ] ~doc:"Synthetic rows to sample") in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed") in
  let run input alpha eps delta t_max preds out_hist out_synth rows seed =
    let ( let* ) r f = match r with Error m -> `Error (false, m) | Ok v -> f v in
    let* universe, dataset =
      try Ok (Pmw_data.Io.load_dataset ~path:input ~alpha ()) with
      | Failure m -> Error m
      | Invalid_argument m -> Error m
    in
    let d = Pmw_data.Universe.dim universe in
    let* predicates =
      if preds = [] then
        Ok
          (List.init d (fun j ->
               Pmw_core.Predicate.Feature { axis = j; op = Pmw_core.Predicate.Gt; threshold = 0. })
          @ [ Pmw_core.Predicate.Label { op = Pmw_core.Predicate.Gt; threshold = 0. } ])
      else
        List.fold_left
          (fun acc s ->
            match (acc, Pmw_core.Predicate.parse s) with
            | Error m, _ -> Error m
            | Ok l, Ok p -> Ok (p :: l)
            | Ok _, Error m -> Error (Printf.sprintf "bad predicate %S: %s" s m))
          (Ok []) preds
        |> Result.map List.rev
    in
    let linear = List.map Pmw_core.Predicate.to_query predicates in
    let domain = Pmw_convex.Domain.interval ~lo:0. ~hi:1. in
    let queries = Array.of_list (Pmw_core.Workloads.as_cm_queries ~domain linear) in
    let rng = Pmw_rng.Rng.create ~seed () in
    (* The mean-estimation reduction squares the answer error, so a |error|
       target of alpha on the counting queries is alpha^2 on the CM scale. *)
    let config =
      Pmw_core.Config.practical ~universe
        ~privacy:(Pmw_dp.Params.create ~eps ~delta)
        ~alpha:(alpha *. alpha) ~beta:0.05 ~scale:2. ~k:(Array.length queries) ~t_max
        ~solver_iters:150 ()
    in
    let release =
      Pmw_core.Synthetic_release.release ~config ~dataset
        ~oracle:Pmw_erm.Oracles.laplace_output ~queries ~sample_size:rows ~rng ()
    in
    Printf.printf "fitted %d queries over |X|=%d in %d update rounds\n" (Array.length queries)
      (Pmw_data.Universe.size universe)
      release.Pmw_core.Synthetic_release.offline.Pmw_core.Offline_pmw.rounds_used;
    let truth = Pmw_data.Dataset.histogram dataset in
    List.iter
      (fun q ->
        Printf.printf "  %-32s true %.4f  released %.4f\n" q.Pmw_core.Linear_pmw.name
          (Pmw_core.Linear_pmw.evaluate q truth)
          (Pmw_core.Linear_pmw.evaluate q release.Pmw_core.Synthetic_release.hypothesis))
      linear;
    Option.iter
      (fun path ->
        Pmw_data.Io.save_histogram ~path release.Pmw_core.Synthetic_release.hypothesis;
        Printf.printf "histogram written to %s\n" path)
      out_hist;
    (match (out_synth, release.Pmw_core.Synthetic_release.synthetic) with
    | Some path, Some synth ->
        Pmw_data.Io.save_dataset ~path synth;
        Printf.printf "%d synthetic rows written to %s\n" (Pmw_data.Dataset.size synth) path
    | Some _, None | None, _ -> ());
    `Ok ()
  in
  Cmd.v (Cmd.info "release" ~doc)
    Term.(
      ret
        (const run $ input_arg $ alpha_arg $ eps_arg $ delta_arg $ t_arg $ workload_arg
       $ out_hist_arg $ out_synth_arg $ rows_arg $ seed_arg))

(* --- session --- *)

let session_cmd =
  let doc =
    "Run the fault-tolerant session engine: checkpoint after every query, optionally inject \
     oracle faults, and resume a killed run with --resume"
  in
  let module Session = Pmw_session.Session in
  let module Checkpoint = Pmw_session.Checkpoint in
  let module Faulty = Pmw_erm.Faulty_oracle in
  let workload_arg =
    let kind = Arg.enum [ ("regression", `Regression); ("classification", `Classification) ] in
    Arg.(value & opt kind `Regression & info [ "workload" ] ~docv:"KIND" ~doc:"regression|classification")
  in
  let n_arg = Arg.(value & opt int 150_000 & info [ "n" ] ~doc:"Dataset size") in
  let k_arg = Arg.(value & opt int 20 & info [ "k" ] ~doc:"Number of queries") in
  let alpha_arg = Arg.(value & opt float 0.06 & info [ "alpha" ] ~doc:"Target excess risk") in
  let eps_arg = Arg.(value & opt float 1.0 & info [ "eps" ] ~doc:"Privacy budget epsilon") in
  let delta_arg = Arg.(value & opt float 1e-6 & info [ "delta" ] ~doc:"Privacy budget delta") in
  let t_arg = Arg.(value & opt int 20 & info [ "t-max" ] ~doc:"MW update budget T") in
  let d_arg = Arg.(value & opt int 2 & info [ "d" ] ~doc:"Feature dimension") in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed (must match across resume)") in
  let dir_arg =
    Arg.(value & opt (some string) None & info [ "checkpoint-dir" ] ~docv:"DIR"
           ~doc:"Write DIR/session.ckpt (atomically) after every query")
  in
  let resume_flag =
    Arg.(value & flag & info [ "resume" ] ~doc:"Resume from DIR/session.ckpt instead of starting fresh")
  in
  let fault_arg =
    Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"SPEC"
           ~doc:"Inject oracle faults: nan|inf|divergent|timeout|misreport:FACTOR")
  in
  let fault_every_arg =
    Arg.(value & opt int 3 & info [ "fault-every" ] ~doc:"Inject on every Nth oracle call")
  in
  let fault_seed_arg = Arg.(value & opt int 5 & info [ "fault-seed" ] ~doc:"Fault-injection seed") in
  let kill_arg =
    Arg.(value & opt (some int) None & info [ "kill-after" ] ~docv:"M"
           ~doc:"Exit after answering M queries this invocation (simulates a crash; resume later)")
  in
  let run workload n k alpha eps delta t_max d seed dir resume fault_spec fault_every fault_seed
      kill_after trace =
    let ( let* ) r f = match r with Error m -> `Error (false, m) | Ok v -> f v in
    let* fault =
      match fault_spec with
      | None -> Ok None
      | Some s -> Result.map Option.some (Faulty.fault_of_string s)
    in
    if n <= 0 || k <= 0 then `Error (false, "n and k must be positive")
    else begin
      let w =
        match workload with
        | `Regression -> Common.Workload.regression ~d ()
        | `Classification -> Common.Workload.classification ~d ()
      in
      let dataset = w.Common.Workload.sample ~n (Pmw_rng.Rng.create ~seed ()) in
      let config =
        Pmw_core.Config.practical ~universe:w.Common.Workload.universe
          ~privacy:(Pmw_dp.Params.create ~eps ~delta)
          ~alpha ~beta:0.05 ~scale:w.Common.Workload.scale ~k ~t_max ~solver_iters:200 ()
      in
      let telemetry = make_telemetry trace in
      let faulty =
        Option.map
          (fun f ->
            Faulty.create ~seed:fault_seed ~telemetry
              ~plan:(Faulty.Every { period = fault_every; fault = f })
              (Pmw_erm.Oracles.noisy_gd ()))
          fault
      in
      let oracles =
        match faulty with
        | Some fo -> [ Faulty.oracle fo; Pmw_erm.Oracles.output_perturbation ]
        | None -> [ Pmw_erm.Oracles.noisy_gd (); Pmw_erm.Oracles.output_perturbation ]
      in
      let spend_claim =
        match faulty with
        | Some fo -> fun () -> Faulty.claimed_spend fo
        | None -> fun () -> None
      in
      let rng = Pmw_rng.Rng.create ~seed:(seed + 7919) () in
      let ckpt_path = Option.map (fun dir -> Filename.concat dir "session.ckpt") dir in
      let* session =
        if resume then
          match ckpt_path with
          | None -> Error "--resume requires --checkpoint-dir"
          | Some path -> (
              match Checkpoint.read ~path with
              | Error m -> Error m
              | Ok ckpt ->
                  Option.iter
                    (fun fo ->
                      Faulty.set_calls fo (Checkpoint.attempts_for ckpt (Faulty.oracle fo).Pmw_erm.Oracle.name))
                    faulty;
                  Session.resume ~telemetry ~config ~dataset ~oracles ~spend_claim ~rng ckpt)
        else Ok (Session.create ~telemetry ~config ~dataset ~oracles ~spend_claim ~rng ())
      in
      Option.iter (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755) dir;
      let qarr = Array.of_list w.Common.Workload.queries in
      let start = Session.queries session in
      if start > 0 then Printf.printf "resumed at query %d\n%!" start;
      let todo = max 0 (k - start) in
      let todo = match kill_after with Some m -> min m todo | None -> todo in
      for i = start to start + todo - 1 do
        let q = qarr.(i mod Array.length qarr) in
        let module O = Pmw_core.Online_pmw in
        (match Session.answer session q with
        | O.Answered o ->
            Printf.printf "round %3d  %-24s answered (%s)\n" i q.Pmw_core.Cm_query.name
              (match o.O.source with O.From_hypothesis -> "hypothesis" | O.From_oracle -> "oracle")
        | O.Degraded (_, reason) ->
            Printf.printf "round %3d  %-24s DEGRADED: %s\n" i q.Pmw_core.Cm_query.name
              (O.degradation_to_string reason)
        | O.Refused reason ->
            Printf.printf "round %3d  %-24s REFUSED: %s\n" i q.Pmw_core.Cm_query.name
              (O.refusal_to_string reason));
        Option.iter (fun path -> Session.save session ~path) ckpt_path
      done;
      let b = Session.budget session in
      let spent = Pmw_core.Budget.spent b and total = Pmw_core.Budget.total b in
      Printf.printf
        "queries %d/%d: %d answered, %d degraded, %d refused; oracle attempts %d%s\n\
         privacy spent (eps %.4f of %.4f, delta %.2e of %.2e)\n"
        (Session.queries session) k (Session.answered session)
        (Session.degraded_answers session) (Session.refusals session)
        (Session.attempt_count session)
        (if Session.breached session then "; LEDGER BREACHED (drained to cap)" else "")
        spent.Pmw_dp.Params.eps total.Pmw_dp.Params.eps spent.Pmw_dp.Params.delta
        total.Pmw_dp.Params.delta;
      Session.finish session;
      close_telemetry telemetry;
      if Session.queries session < k then begin
        Printf.printf "stopped early after --kill-after; rerun with --resume to continue\n";
        `Ok ()
      end
      else
        match Session.exit_status session with
        | Ok () -> `Ok ()
        | Error reason ->
            (* A session that ended refused or with a drained ledger is a
               failure for scripts even though the process ran to the end. *)
            Printf.eprintf "session ended badly: %s\n" reason;
            exit 2
    end
  in
  Cmd.v (Cmd.info "session" ~doc)
    Term.(
      ret
        (const run $ workload_arg $ n_arg $ k_arg $ alpha_arg $ eps_arg $ delta_arg $ t_arg $ d_arg
       $ seed_arg $ dir_arg $ resume_flag $ fault_arg $ fault_every_arg $ fault_seed_arg $ kill_arg
       $ trace_arg))

(* --- serve --- *)

let serve_cmd =
  let doc =
    "Serve a synthetic workload to concurrent analysts over a Unix domain socket \
     (line-delimited JSON; see docs/serving.md). Drains gracefully on SIGTERM/SIGINT, \
     writing a final checkpoint."
  in
  let module Session = Pmw_session.Session in
  let module Checkpoint = Pmw_session.Checkpoint in
  let module Faulty = Pmw_erm.Faulty_oracle in
  let module Broker = Pmw_server.Broker in
  let module Net = Pmw_server.Net in
  let module Journal = Pmw_server.Journal in
  let module Shard = Pmw_server.Shard in
  let module Router = Pmw_server.Router in
  let module Supervisor = Pmw_server.Supervisor in
  let workload_arg =
    let kind = Arg.enum [ ("regression", `Regression); ("classification", `Classification) ] in
    Arg.(value & opt kind `Regression & info [ "workload" ] ~docv:"KIND" ~doc:"regression|classification")
  in
  let n_arg = Arg.(value & opt int 150_000 & info [ "n" ] ~doc:"Dataset size") in
  let k_arg = Arg.(value & opt int 200 & info [ "k" ] ~doc:"Sparse-vector stream capacity") in
  let alpha_arg = Arg.(value & opt float 0.06 & info [ "alpha" ] ~doc:"Target excess risk") in
  let eps_arg = Arg.(value & opt float 1.0 & info [ "eps" ] ~doc:"Privacy budget epsilon") in
  let delta_arg = Arg.(value & opt float 1e-6 & info [ "delta" ] ~doc:"Privacy budget delta") in
  let t_arg = Arg.(value & opt int 20 & info [ "t-max" ] ~doc:"MW update budget T") in
  let d_arg = Arg.(value & opt int 2 & info [ "d" ] ~doc:"Feature dimension") in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed") in
  let socket_arg =
    Arg.(value & opt string "/tmp/pmw.sock" & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix domain socket to listen on")
  in
  let max_batch_arg =
    Arg.(value & opt int 16 & info [ "max-batch" ] ~doc:"Most requests answered per serializer pass")
  in
  let quota_arg =
    Arg.(value & opt int 0 & info [ "quota" ] ~doc:"Per-analyst query cap (0 = unlimited)")
  in
  let retry_arg =
    Arg.(value & opt float 1.0 & info [ "retry-after" ] ~docv:"SECONDS"
           ~doc:"Backpressure hint attached to budget rejections")
  in
  let dir_arg =
    Arg.(value & opt (some string) None & info [ "checkpoint-dir" ] ~docv:"DIR"
           ~doc:"Write DIR/session.ckpt on graceful drain (and every --checkpoint-every requests)")
  in
  let resume_flag =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Resume from DIR/session.ckpt when it exists (requires --checkpoint-dir); a \
                   missing checkpoint starts fresh, so crash-restart loops can pass --resume \
                   unconditionally")
  in
  let journal_arg =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"PATH"
           ~doc:"Write-ahead journal: fsync every released answer and budget debit to PATH \
                 before replying, and replay it on startup (quarantining post-checkpoint spend, \
                 seeding retry dedup)")
  in
  let ckpt_every_arg =
    Arg.(value & opt int 0 & info [ "checkpoint-every" ]
           ~doc:"Also checkpoint every N processed requests (0 = final only)")
  in
  let dedup_cap_arg =
    Arg.(value & opt int 4096 & info [ "dedup-cap" ]
           ~doc:"Recorded answers kept for request_id retry dedup (0 disables)")
  in
  let fault_arg =
    Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"SPEC"
           ~doc:"Inject oracle faults: nan|inf|divergent|timeout|misreport:FACTOR")
  in
  let fault_every_arg =
    Arg.(value & opt int 3 & info [ "fault-every" ] ~doc:"Inject on every Nth oracle call")
  in
  let fault_seed_arg = Arg.(value & opt int 5 & info [ "fault-seed" ] ~doc:"Fault-injection seed") in
  let shards_arg =
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
           ~doc:"Shard the record space into N disjoint blocks, each with its own session, \
                 journal, budget and serializer domain, behind a routing tier with supervised \
                 failover (1 = single broker, the default)")
  in
  let shard_by_arg =
    let by = Arg.enum [ ("block", Pmw_server.Shard.Block); ("hash", Pmw_server.Shard.Hash) ] in
    Arg.(value & opt by Pmw_server.Shard.Block & info [ "shard-by" ] ~docv:"KIND"
           ~doc:"Partition rows by contiguous 'block' ranges (arrival-time windows) or by 'hash' \
                 of the record value (content key)")
  in
  let chaos_ctl_flag =
    Arg.(value & flag
         & info [ "chaos-ctl" ]
             ~doc:"Enable the fleet control plane (ctl:health, ctl:spent, ctl:kill:I queries) so \
                   a chaos harness can kill shards mid-soak; never enable it for real analysts")
  in
  let fleet_deadline_arg =
    Arg.(value & opt float 5.0 & info [ "fleet-deadline" ] ~docv:"SECONDS"
           ~doc:"Fan-out deadline per query: shards that have not answered by then are reported \
                 as missing in a partial answer (0 = wait forever)")
  in
  let metrics_flag =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Enable the live metrics plane: latency histograms, rolling rates, gauges and \
                   per-ledger privacy burn, shared across the whole fleet. Scrape it with \
                   ctl:metrics / ctl:metrics:prom (fleet mode with --chaos-ctl) or watch it with \
                   'pmw_cli top'. Off by default — disabled handles cost one branch per event.")
  in
  let epoch_every_arg =
    Arg.(value & opt int 0
         & info [ "epoch-every" ] ~docv:"ANSWERS"
             ~doc:"Roll each shard's dataset generation after this many answered queries: seal \
                   the old epoch behind a checksummed snapshot, absorb ingested rows, re-anchor \
                   the hypothesis as the new epoch's prior, refresh the budget pot and compact \
                   the journal. 0 disables automatic rolls (epochs still roll on ctl:epoch:I or \
                   --epoch-secs). Requires --journal; enables the 'ingest' request path.")
  in
  let epoch_secs_arg =
    Arg.(value & opt float 0.
         & info [ "epoch-secs" ] ~docv:"SECONDS"
             ~doc:"Supervisor-driven time windows: ask every running shard to roll its epoch \
                   this often (0 disables). Requires --journal.")
  in
  let run workload n k alpha eps delta t_max d seed socket max_batch quota retry_after dir resume
      journal_path ckpt_every dedup_cap fault_spec fault_every fault_seed shards shard_by chaos_ctl
      fleet_deadline enable_metrics epoch_every epoch_secs trace =
    let ( let* ) r f = match r with Error m -> `Error (false, m) | Ok v -> f v in
    let* fault =
      match fault_spec with
      | None -> Ok None
      | Some s -> Result.map Option.some (Faulty.fault_of_string s)
    in
    let epochs = epoch_every > 0 || epoch_secs > 0. in
    if n <= 0 || k <= 0 then `Error (false, "n and k must be positive")
    else if max_batch < 1 then `Error (false, "max-batch must be >= 1")
    else if dedup_cap < 0 then `Error (false, "dedup-cap must be >= 0")
    else if resume && dir = None then `Error (false, "--resume requires --checkpoint-dir")
    else if shards < 1 then `Error (false, "--shards must be >= 1")
    else if epoch_every < 0 || epoch_secs < 0. then
      `Error (false, "--epoch-every/--epoch-secs must be >= 0")
    else if epochs && journal_path = None then
      `Error (false, "epochs need a write-ahead journal: add --journal PATH")
    else if (shards > 1 || epochs) && (dir <> None || resume) then
      `Error
        ( false,
          "--checkpoint-dir/--resume are single-broker options; fleet/epoch durability is \
           per-shard journals (--journal) and epoch snapshots" )
    else if (shards > 1 || epochs) && fault_spec <> None then
      `Error
        ( false,
          "--fault is a single-broker option; fault the fleet with --chaos-ctl and ctl:kill:I" )
    else begin
      (* Block the shutdown signals before any thread exists so every thread
         inherits the mask and only the watcher consumes them. *)
      ignore (Thread.sigmask Unix.SIG_BLOCK [ Sys.sigterm; Sys.sigint ] : int list);
      let w =
        match workload with
        | `Regression -> Common.Workload.regression ~d ()
        | `Classification -> Common.Workload.classification ~d ()
      in
      let dataset = w.Common.Workload.sample ~n (Pmw_rng.Rng.create ~seed ()) in
      let config =
        Pmw_core.Config.practical ~universe:w.Common.Workload.universe
          ~privacy:(Pmw_dp.Params.create ~eps ~delta)
          ~alpha ~beta:0.05 ~scale:w.Common.Workload.scale ~k ~t_max ~solver_iters:200 ()
      in
      let telemetry = make_telemetry trace in
      let metrics = if enable_metrics then Metrics.create () else Metrics.disabled () in
      let faulty =
        Option.map
          (fun f ->
            Faulty.create ~seed:fault_seed ~telemetry
              ~plan:(Faulty.Every { period = fault_every; fault = f })
              (Pmw_erm.Oracles.noisy_gd ()))
          fault
      in
      let oracles =
        match faulty with
        | Some fo -> [ Faulty.oracle fo; Pmw_erm.Oracles.output_perturbation ]
        | None -> [ Pmw_erm.Oracles.noisy_gd (); Pmw_erm.Oracles.output_perturbation ]
      in
      let spend_claim =
        match faulty with
        | Some fo -> fun () -> Faulty.claimed_spend fo
        | None -> fun () -> None
      in
      let registry = Hashtbl.create 16 in
      List.iter
        (fun q -> Hashtbl.replace registry q.Pmw_core.Cm_query.name q)
        w.Common.Workload.queries;
      if shards > 1 || epochs then begin
        (* Fleet mode (also used for a single epoch-rolling shard — the
           shard lifecycle owns Epoch.recover): disjoint record blocks, each
           with its own session, journal and serializer domain, behind a
           supervised routing tier. Parallel composition gives every shard
           the full (eps, delta) pot. *)
        let* blocks =
          try Ok (Shard.partition dataset ~by:shard_by ~shards)
          with Invalid_argument m -> Error m
        in
        let n_total = float_of_int (Pmw_data.Dataset.size dataset) in
        let universe = w.Common.Workload.universe in
        let mk_shard i block =
          let label = Printf.sprintf "shard%d" i in
          let base_rows = Pmw_data.Dataset.rows block in
          (* The generation-e dataset of this shard is a pure function of
             (epoch, absorbed): boot block + every row absorbed so far. The
             RNG seed is derived from the epoch, so a transition re-run
             after a crash reconstructs the identical session — the
             byte-identity the recovery contract rests on. *)
          let dataset_at ~epoch ~absorbed =
            Pmw_data.Dataset.create ~epoch universe (Array.append base_rows absorbed)
          in
          let oracles pool =
            [ Pmw_erm.Oracles.noisy_gd ~pool (); Pmw_erm.Oracles.output_perturbation ]
          in
          let rng_at epoch =
            Pmw_rng.Rng.create ~seed:(seed + 7919 + (1000 * (i + 1)) + (104729 * epoch)) ()
          in
          let epoch_cfg =
            match (epochs, journal_path) with
            | false, _ | _, None -> None
            | true, Some jp ->
                Some
                  {
                    Shard.se_snapshot = Printf.sprintf "%s.shard%d.epoch" jp i;
                    se_every = epoch_every;
                    se_row_bound = Pmw_data.Universe.size universe;
                    se_make =
                      (fun ~epoch ~absorbed ~prior tel ->
                        let pool = Pmw_parallel.Pool.create ~domains:1 () in
                        Session.create ~pool ~telemetry:tel ~label ~config
                          ~dataset:(dataset_at ~epoch ~absorbed)
                          ~oracles:(oracles pool)
                          ?prior:(Option.map (Pmw_data.Histogram.of_weights universe) prior)
                          ~rng:(rng_at epoch) ());
                    se_resume =
                      (fun ~absorbed ckpt tel ->
                        let pool = Pmw_parallel.Pool.create ~domains:1 () in
                        let epoch = ckpt.Checkpoint.epoch in
                        Session.resume ~pool ~telemetry:tel ~label ~config
                          ~dataset:(dataset_at ~epoch ~absorbed)
                          ~oracles:(oracles pool) ~rng:(rng_at epoch) ckpt);
                  }
          in
          Shard.create ~id:i
            ~weight:(float_of_int (Pmw_data.Dataset.size block) /. n_total)
            ?journal_path:(Option.map (fun p -> Printf.sprintf "%s.shard%d" p i) journal_path)
            ?epoch:epoch_cfg
            ~config:
              {
                Broker.max_batch;
                quota;
                retry_after_s = retry_after;
                dedup_cap;
                checkpoint_every = 0;
              }
            ~telemetry:(fun ~incarnation ->
              match trace with
              | None -> Telemetry.null ()
              | Some path ->
                  Telemetry.create
                    ~sink:
                      (Telemetry.Sink.jsonl_file
                         (Printf.sprintf "%s.shard%d.inc%d" path i incarnation))
                    ~tag:(Printf.sprintf "shard%d" i) ())
            ~make_session:(fun tel ->
              (* Runs on the shard's domain at every (re)start: pool, oracles
                 and rng are incarnation-private, so recovery state can only
                 come from the shard's own journal. The pool is inline
                 (domains = 1) — the fleet's parallelism axis is the shard
                 domains, and an inline pool neither violates creator
                 affinity nor leaks worker domains across restarts. *)
              let pool = Pmw_parallel.Pool.create ~domains:1 () in
              Session.create ~pool ~telemetry:tel
                ~label:(Printf.sprintf "shard%d" i)
                ~config ~dataset:block
                ~oracles:
                  [ Pmw_erm.Oracles.noisy_gd ~pool (); Pmw_erm.Oracles.output_perturbation ]
                ~rng:(Pmw_rng.Rng.create ~seed:(seed + 7919 + (1000 * (i + 1))) ())
                ())
            ~resolve:(Hashtbl.find_opt registry)
            ~metrics ()
        in
        let fleet = Array.of_list (List.mapi mk_shard blocks) in
        let* () =
          let failed =
            Array.to_list fleet
            |> List.filter_map (fun s ->
                   match Shard.start s with
                   | Ok () -> None
                   | Error m -> Some (Printf.sprintf "shard %d: %s" (Shard.id s) m))
          in
          if failed = [] then Ok () else Error (String.concat "; " failed)
        in
        let router =
          Router.create
            ~config:
              {
                Router.rt_deadline_s = fleet_deadline;
                rt_retry_after_s = retry_after;
                rt_allow_ctl = chaos_ctl;
                rt_ingest_route =
                  (if epochs then Some (Shard.route ~by:shard_by ~shards) else None);
              }
            ~metrics ~shards:fleet ()
        in
        (* Parallel composition: every shard holds the full (eps, delta)
           pot, and so does the composed fleet view. *)
        Metrics.set_ledger_budget (Metrics.ledger metrics "fleet") ~eps ~delta;
        let supervisor =
          Supervisor.start
            ~config:{ Supervisor.default_config with su_epoch_every_s = epoch_secs }
            ~telemetry
            ~extra_counters:(fun () -> Router.counters router)
            ~extra_marks:(fun () -> Router.trace_marks router)
            ~metrics ~shards:fleet ()
        in
        let listener = Net.listen ~metrics ~handler:(Router.submit router) ~path:socket () in
        Printf.printf "serving %s (|X|=%d, n=%d, k=%d) on %s; %d %s shards%s%s; queries: %s\n%!"
          (Pmw_data.Universe.name w.Common.Workload.universe)
          (Pmw_data.Universe.size w.Common.Workload.universe)
          n k socket shards (Shard.by_to_string shard_by)
          (if chaos_ctl then ", ctl enabled" else "")
          (if not epochs then ""
           else
             Printf.sprintf ", epochs (every %d answers%s)" epoch_every
               (if epoch_secs > 0. then Printf.sprintf " / %.3gs" epoch_secs else ""))
          (String.concat " "
             (List.map (fun q -> q.Pmw_core.Cm_query.name) w.Common.Workload.queries));
        (* Shard serializers run on their own domains; this thread only
           waits for the shutdown signal. *)
        let (_ : int) = Thread.wait_signal [ Sys.sigterm; Sys.sigint ] in
        Printf.eprintf "draining fleet...\n%!";
        Net.stop listener;
        Supervisor.stop supervisor;
        Array.iter Shard.stop fleet;
        Printf.printf "fleet composed %d requests across %d shards\n" (Router.processed router)
          shards;
        List.iter (fun (name, v) -> Printf.printf "  %-16s %d\n" name v) (Router.counters router);
        Printf.printf "  %d restarts; quarantined: [%s]\n" (Supervisor.restarts supervisor)
          (String.concat ", " (List.map string_of_int (Supervisor.quarantined supervisor)));
        Array.iter
          (fun s ->
            let sp = Shard.spent s in
            Printf.printf "  shard %d (%s, weight %.3f): spent eps %.4f delta %.2e\n" (Shard.id s)
              (Shard.state_to_string (Shard.state s))
              (Shard.weight s) sp.Pmw_dp.Params.eps sp.Pmw_dp.Params.delta)
          fleet;
        let spent = Router.fleet_spent router in
        Printf.printf
          "fleet privacy spent by parallel composition (eps %.4f of %.4f, delta %.2e of %.2e)\n"
          spent.Pmw_dp.Params.eps eps spent.Pmw_dp.Params.delta delta;
        close_telemetry telemetry;
        `Ok ()
      end
      else begin
      let rng = Pmw_rng.Rng.create ~seed:(seed + 7919) () in
      Option.iter (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755) dir;
      let checkpoint = Option.map (fun dir -> Filename.concat dir "session.ckpt") dir in
      (* Resume tolerates a missing checkpoint (first boot of a crash-restart
         loop): same seed + fresh state recomputes the identical transcript,
         and the journal still quarantines anything already spent. *)
      let* session =
        match (resume, checkpoint) with
        | true, Some path when Sys.file_exists path ->
            Result.bind (Checkpoint.read ~path) (fun ckpt ->
                Option.iter
                  (fun fo ->
                    Faulty.set_calls fo
                      (Checkpoint.attempts_for ckpt (Faulty.oracle fo).Pmw_erm.Oracle.name))
                  faulty;
                Session.resume ~telemetry ~config ~dataset ~oracles ~spend_claim ~rng ckpt)
        | _ -> Ok (Session.create ~telemetry ~config ~dataset ~oracles ~spend_claim ~rng ())
      in
      let* journal, recovery =
        match journal_path with
        | None -> Ok (None, Journal.empty_recovery)
        | Some p -> Result.map (fun (j, r) -> (Some j, r)) (Journal.open_journal ~path:p)
      in
      let broker =
        Broker.create
          ~config:
            {
              Broker.max_batch;
              quota;
              retry_after_s = retry_after;
              dedup_cap;
              checkpoint_every = ckpt_every;
            }
          ?journal ~recovery ~session
          ~resolve:(Hashtbl.find_opt registry)
          ~metrics ()
      in
      let listener = Net.listen ~metrics ~handler:(Broker.submit broker) ~path:socket () in
      let (_ : Thread.t) =
        Thread.create
          (fun () ->
            let (_ : int) = Thread.wait_signal [ Sys.sigterm; Sys.sigint ] in
            Printf.eprintf "draining...\n%!";
            Broker.shutdown broker)
          ()
      in
      Printf.printf "serving %s (|X|=%d, n=%d, k=%d) on %s; queries: %s\n%!"
        (Pmw_data.Universe.name w.Common.Workload.universe)
        (Pmw_data.Universe.size w.Common.Workload.universe)
        n k socket
        (String.concat " " (List.map (fun q -> q.Pmw_core.Cm_query.name) w.Common.Workload.queries));
      (* The serializer loop runs here, on the thread that owns the pool;
         it returns once the SIGTERM watcher starts the drain and the queue
         empties. *)
      Broker.run ?checkpoint broker;
      Net.stop listener;
      Option.iter Journal.close journal;
      Printf.printf "processed %d requests from %d analysts (%d dedup hits)\n"
        (Broker.processed broker)
        (List.length (Broker.analysts broker))
        (Broker.dedup_hits broker);
      List.iter
        (fun a ->
          Printf.printf
            "  %-16s submitted %d: %d answered, %d degraded, %d refused, %d rejected, %d deduped\n"
            a.Broker.an_id a.Broker.an_submitted a.Broker.an_answered a.Broker.an_degraded
            a.Broker.an_refused a.Broker.an_rejected a.Broker.an_deduped)
        (Broker.analysts broker);
      let b = Session.budget session in
      let spent = Pmw_core.Budget.spent b and total = Pmw_core.Budget.total b in
      Printf.printf "privacy spent (eps %.4f of %.4f, delta %.2e of %.2e)\n" spent.Pmw_dp.Params.eps
        total.Pmw_dp.Params.eps spent.Pmw_dp.Params.delta total.Pmw_dp.Params.delta;
      Session.finish session;
      close_telemetry telemetry;
      `Ok ()
      end
    end
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const run $ workload_arg $ n_arg $ k_arg $ alpha_arg $ eps_arg $ delta_arg $ t_arg $ d_arg
       $ seed_arg $ socket_arg $ max_batch_arg $ quota_arg $ retry_arg $ dir_arg $ resume_flag
       $ journal_arg $ ckpt_every_arg $ dedup_cap_arg $ fault_arg $ fault_every_arg
       $ fault_seed_arg $ shards_arg $ shard_by_arg $ chaos_ctl_flag $ fleet_deadline_arg
       $ metrics_flag $ epoch_every_arg $ epoch_secs_arg $ trace_arg))

(* --- stats --- *)

(* Sibling trace files of a fleet run: --trace FILE writes the router/
   supervisor trace to FILE and each shard incarnation to FILE.shardI.incJ.
   Returns (shard_id, path) sorted by (id, path) so incarnations of one
   shard stay adjacent. *)
let fleet_siblings file =
  let dir = Filename.dirname file and base = Filename.basename file in
  let prefix = base ^ ".shard" in
  let plen = String.length prefix in
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         if String.length name > plen && String.sub name 0 plen = prefix then
           let rest = String.sub name plen (String.length name - plen) in
           let id =
             match String.index_opt rest '.' with
             | Some dot -> int_of_string_opt (String.sub rest 0 dot)
             | None -> int_of_string_opt rest
           in
           Option.map (fun id -> (id, Filename.concat dir name)) id
         else None)
  |> List.sort compare

let pp_losses summary =
  match Trace.losses summary with
  | [] -> ()
  | ls ->
      Printf.printf "\nlosses (events dropped on overflow):\n";
      List.iter (fun (name, v) -> Printf.printf "  %-32s %8d\n" name v) ls

(* Coordinate-wise max of (eps, delta) pairs — the parallel-composition
   fold used everywhere the fleet accounts spend. *)
let pmax (e1, d1) (e2, d2) = (Float.max e1 e2, Float.max d1 d2)

let pp_tree t =
  let ids l = String.concat "," (List.map string_of_int l) in
  Printf.printf "  trace %-22s %-9s span %-4d shards [%s]%s coverage %s%s%s\n" t.Trace.tr_trace
    t.Trace.tr_status t.Trace.tr_span (ids t.Trace.tr_shards)
    (match t.Trace.tr_missing with [] -> "" | m -> Printf.sprintf " missing [%s]" (ids m))
    (match t.Trace.tr_coverage with Some c -> Printf.sprintf "%.3f" c | None -> "?")
    (match t.Trace.tr_spent with
    | Some (e, d) -> Printf.sprintf " spent (%.4f, %.2e)" e d
    | None -> "")
    (if t.Trace.tr_complete then "" else "  [incomplete]");
  List.iter
    (fun (l : Trace.leg) ->
      Printf.printf "    %-8s span %-5d parent %-4d %s %s\n" l.Trace.lg_tag l.Trace.lg_span
        l.Trace.lg_parent_span
        (match l.Trace.lg_dur_s with
        | Some d -> Printf.sprintf "%8.2f ms" (1e3 *. d)
        | None -> "   (never closed)")
        (match l.Trace.lg_ok with Some true -> "ok" | Some false -> "FAILED" | None -> ""))
    t.Trace.tr_legs

let stats_fleet file events check =
  let ( let* ) r f = match r with Error m -> `Error (false, m) | Ok v -> f v in
  let siblings = fleet_siblings file in
  let* streams =
    List.fold_left
      (fun acc (id, path) ->
        Result.bind acc (fun l ->
            match Trace.load ~path with
            | Ok evs -> Ok ((id, path, evs) :: l)
            | Error m -> Error (path ^ ": " ^ m)))
      (Ok []) siblings
    |> Result.map List.rev
  in
  let trees = Trace.stitch ~fleet:events ~shards:(List.map (fun (_, _, e) -> e) streams) in
  let complete = List.filter (fun t -> t.Trace.tr_complete) trees in
  Printf.printf "\nfleet request trees (%d stitched from %d shard trace files, %d complete):\n"
    (List.length trees) (List.length streams) (List.length complete);
  List.iter pp_tree trees;
  (* Reported fleet spend: coordinate-wise max over every root's stamp. *)
  let reported =
    List.fold_left
      (fun acc t -> match t.Trace.tr_spent with Some s -> pmax acc s | None -> acc)
      (0., 0.) trees
  in
  (* Per-shard spend replayed from the shard traces: each incarnation
     re-debits from zero (recovery quarantines prior spend into the fresh
     ledger), so a shard's cumulative is the max over its incarnations, and
     the fleet's is the coordinate-wise max over shards. *)
  let trace_cum =
    List.fold_left
      (fun acc (_, _, evs) ->
        List.fold_left (fun a (_, s) -> pmax a s) acc (Trace.ledger_totals evs))
      (0., 0.) streams
  in
  Printf.printf
    "fleet spend: reported (eps %.6g, delta %.3e); coordinate-wise max of shard-trace ledgers \
     (eps %.6g, delta %.3e)\n"
    (fst reported) (snd reported) (fst trace_cum) (snd trace_cum);
  (* Soundness: the fleet must never report spend the shard ledgers cannot
     account for. (The converse — ledgers ahead of the last stamped answer —
     is legal: spend that landed after the last composed request.) *)
  let tol = 1e-9 *. Float.max 1. (fst trace_cum) in
  if fst reported > fst trace_cum +. tol || snd reported > snd trace_cum +. tol then
    `Error
      ( false,
        Printf.sprintf
          "fleet spend check failed: reported (%.9g, %.3e) exceeds the per-shard ledger max \
           (%.9g, %.3e)"
          (fst reported) (snd reported) (fst trace_cum) (snd trace_cum) )
  else begin
    if check && complete = [] && trees <> [] then
      `Error (false, "stats --fleet --check: no complete request tree could be stitched")
    else `Ok ()
  end

let stats_journal_check journal_path reported_of_trace =
  let module Journal = Pmw_server.Journal in
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let siblings =
    (* exact .shardN only — not the .shardN.epoch snapshots (or .seal
       checkpoints) the epoch lifecycle parks next to each journal *)
    fleet_siblings journal_path
    |> List.filter (fun (id, path) -> path = Printf.sprintf "%s.shard%d" journal_path id)
  in
  let journals =
    if siblings = [] && Sys.file_exists journal_path then [ (0, journal_path) ] else siblings
  in
  if journals = [] then `Error (false, "no journal files found at " ^ journal_path)
  else begin
    let cum =
      List.fold_left
        (fun acc (id, path) ->
          match Journal.replay_string (read_file path) with
          | Ok r ->
              (* Lifetime account: sealed-epoch base plus the live epoch's
                 cum — a compacted journal says no less than its history. *)
              let be, bd = r.Journal.rv_base in
              let ce, cd = r.Journal.rv_cum in
              let life = (be +. ce, bd +. cd) in
              Printf.printf "  journal shard%d: epoch %d, cum (eps %.6g, delta %.3e)%s%s%s\n" id
                r.Journal.rv_epoch (fst life) (snd life)
                (if r.Journal.rv_epoch > 0 then
                   Printf.sprintf " = base (%.6g, %.3e) + live (%.6g, %.3e)" be bd ce cd
                 else "")
                (match List.length r.Journal.rv_ingest with
                | 0 -> ""
                | p -> Printf.sprintf "  [%d rows pending absorption]" p)
                (if r.Journal.rv_torn then "  [torn tail dropped]" else "");
              pmax acc life
          | Error m ->
              Printf.printf "  journal shard%d: unreadable (%s)\n" id m;
              acc)
        (0., 0.) journals
    in
    let re, rd = reported_of_trace in
    Printf.printf
      "journal cross-check: reported fleet spend (eps %.6g, delta %.3e) vs coordinate-wise max \
       of journal cums (eps %.6g, delta %.3e)\n"
      re rd (fst cum) (snd cum);
    let tol = 1e-9 *. Float.max 1. (fst cum) in
    if re > fst cum +. tol || rd > snd cum +. tol then
      `Error (false, "journal cross-check failed: reported spend exceeds journal cums")
    else `Ok ()
  end

let stats_cmd =
  let doc =
    "Summarize a JSONL trace written with --trace (spans, counters, privacy ledgers); --fleet \
     also stitches cross-shard request trees and cross-checks the fleet's spend accounting"
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.jsonl" ~doc:"Trace file")
  in
  let check_flag =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Also validate the trace (monotone timestamps and rounds, balanced spans, ledger \
             running totals and final marks consistent with the replayed debits) and fail on any \
             violation. With --fleet, additionally require at least one complete stitched tree.")
  in
  let fleet_flag =
    Arg.(
      value & flag
      & info [ "fleet" ]
          ~doc:
            "Treat $(docv) as a fleet trace: load every sibling FILE.shardI.incJ shard trace, \
             stitch the router's fleet.request root marks with the shards' server.request spans \
             into per-request causal trees, and check that the reported fleet spend never \
             exceeds the coordinate-wise max of the per-shard ledgers.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:
            "Cross-check the fleet spend against the write-ahead journals: replay PATH.shardI \
             (or PATH itself for a single broker) and compare the reported spend with the \
             coordinate-wise max of the journal cums.")
  in
  let run file check fleet journal =
    match Trace.load ~path:file with
    | Error m -> `Error (false, m)
    | Ok events -> (
        let summary = Trace.summarize events in
        Format.printf "%a@." Trace.pp_summary summary;
        pp_losses summary;
        let fleet_result =
          if fleet then stats_fleet file events check
          else `Ok ()
        in
        match fleet_result with
        | `Error _ as e -> e
        | `Ok () -> (
            let reported =
              List.fold_left
                (fun acc e ->
                  if e.Telemetry.kind = Telemetry.Mark && e.Telemetry.name = "fleet.request"
                  then
                    let f n =
                      match List.assoc_opt n e.Telemetry.fields with
                      | Some (Telemetry.Float v) -> v
                      | Some (Telemetry.Int i) -> float_of_int i
                      | _ -> 0.
                    in
                    pmax acc (f "spent_eps", f "spent_delta")
                  else acc)
                (0., 0.) events
            in
            let journal_result =
              match journal with
              | Some path -> stats_journal_check path reported
              | None -> `Ok ()
            in
            match journal_result with
            | `Error _ as e -> e
            | `Ok () ->
                if not check then `Ok ()
                else (
                  match Trace.validate events with
                  | Ok () ->
                      Printf.printf "trace OK: %d events validated\n" (List.length events);
                      `Ok ()
                  | Error m -> `Error (false, "trace validation failed: " ^ m))))
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(ret (const run $ file_arg $ check_flag $ fleet_flag $ journal_arg))

(* --- top --- *)

(* Parse one Prometheus exposition line into (family, labels, value).
   The exposition grammar here is exactly what Metrics.to_prometheus
   emits: [name value] or [name{k="v",...} value], '#' comments. *)
let parse_prom_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.index_opt line ' ' with
    | None -> None
    | Some sp -> (
        let key = String.sub line 0 sp in
        let v = String.sub line (sp + 1) (String.length line - sp - 1) in
        let value =
          match v with
          | "+Inf" -> Some Float.infinity
          | "-Inf" -> Some Float.neg_infinity
          | "NaN" -> Some Float.nan
          | v -> float_of_string_opt v
        in
        match value with
        | None -> None
        | Some value -> (
            match String.index_opt key '{' with
            | None -> Some (key, "", value)
            | Some br ->
                let name = String.sub key 0 br in
                let labels = String.sub key (br + 1) (String.length key - br - 2) in
                Some (name, labels, value)))

let top_cmd =
  let doc =
    "Watch a serving fleet's live metrics: scrape ctl:metrics:prom over the Unix socket and \
     render latency quantiles, rates, gauges and privacy burn (requires the server to run with \
     --metrics and, in fleet mode, --chaos-ctl)"
  in
  let module Net = Pmw_server.Net in
  let module Protocol = Pmw_server.Protocol in
  let socket_arg =
    Arg.(value & opt string "/tmp/pmw.sock" & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix domain socket the server listens on")
  in
  let interval_arg =
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period")
  in
  let once_flag =
    Arg.(value & flag & info [ "once" ] ~doc:"Print one snapshot and exit (for scripts and CI)")
  in
  let render text =
    let rows = List.filter_map parse_prom_line (String.split_on_char '\n' text) in
    let assoc name = List.assoc_opt name (List.map (fun (n, _, v) -> (n, v)) rows) in
    (* histogram families: pmw_X with quantile labels + _sum/_count/_max *)
    let hist_names =
      List.filter_map
        (fun (n, labels, _) ->
          if labels = "quantile=\"0.5\"" then Some n else None)
        rows
      |> List.sort_uniq compare
    in
    if hist_names <> [] then begin
      Printf.printf "%-34s %8s %10s %10s %10s %10s\n" "histogram" "count" "p50" "p90" "p99" "max";
      List.iter
        (fun n ->
          let q tag =
            List.fold_left
              (fun acc (n', l, v) ->
                if n' = n && l = Printf.sprintf "quantile=\"%s\"" tag then Some v else acc)
              None rows
          in
          let fmt = function Some v -> Printf.sprintf "%10.4g" v | None -> "         ?" in
          Printf.printf "%-34s %8.0f %s %s %s %s\n" n
            (Option.value ~default:0. (assoc (n ^ "_count")))
            (fmt (q "0.5")) (fmt (q "0.9")) (fmt (q "0.99"))
            (fmt (assoc (n ^ "_max"))))
        hist_names
    end;
    let totals =
      List.filter_map
        (fun (n, labels, v) ->
          let suffix = "_total" in
          let nl = String.length n and sl = String.length suffix in
          if labels = "" && nl > sl && String.sub n (nl - sl) sl = suffix
             && String.sub n 0 10 <> "pmw_ledger"
          then Some (String.sub n 0 (nl - sl), v)
          else None)
        rows
    in
    if totals <> [] then begin
      Printf.printf "\n%-34s %10s %10s\n" "rate" "total" "per_s";
      List.iter
        (fun (n, total) ->
          Printf.printf "%-34s %10.0f %10.3g\n" n total
            (Option.value ~default:0. (assoc (n ^ "_per_s"))))
        (List.sort compare totals)
    end;
    let gauges =
      List.filter
        (fun (n, labels, _) ->
          labels = ""
          && (not (List.mem_assoc n (List.map (fun (a, b) -> (a ^ "_total", b)) totals)))
          && not
               (List.exists
                  (fun suffix ->
                    let nl = String.length n and sl = String.length suffix in
                    nl > sl && String.sub n (nl - sl) sl = suffix)
                  [ "_total"; "_per_s"; "_sum"; "_count"; "_max" ])
          && not (List.mem n hist_names))
        rows
    in
    if gauges <> [] then begin
      Printf.printf "\n%-34s %10s\n" "gauge" "value";
      List.iter (fun (n, _, v) -> Printf.printf "%-34s %10.4g\n" n v) (List.sort compare gauges)
    end;
    let ledger_rows = List.filter (fun (n, _, _) -> String.length n > 10 && String.sub n 0 10 = "pmw_ledger") rows in
    let ledger_names =
      List.filter_map
        (fun (_, labels, _) ->
          let p = "ledger=\"" in
          let pl = String.length p in
          if String.length labels > pl && String.sub labels 0 pl = p then
            Some (String.sub labels pl (String.length labels - pl - 1))
          else None)
        ledger_rows
      |> List.sort_uniq compare
    in
    if ledger_names <> [] then begin
      Printf.printf "\n%-12s %12s %12s %8s %14s %12s %12s\n" "ledger" "eps" "eps_budget"
        "debits" "burn eps/s" "rounds_left" "secs_left";
      List.iter
        (fun l ->
          let field fam =
            List.fold_left
              (fun acc (n, labels, v) ->
                if n = "pmw_ledger_" ^ fam && labels = Printf.sprintf "ledger=\"%s\"" l then
                  Some v
                else acc)
              None ledger_rows
          in
          let g fam = Option.value ~default:Float.nan (field fam) in
          Printf.printf "%-12s %12.6g %12.6g %8.0f %14.4g %12.4g %12.4g\n" l (g "eps")
            (g "eps_budget") (g "debits_total") (g "burn_eps_per_s") (g "rounds_left")
            (g "seconds_left"))
        ledger_names
    end
  in
  let run socket interval once =
    let req id =
      {
        Protocol.req_id = id;
        req_analyst = "top";
        req_query = "ctl:metrics:prom";
        req_rid = None;
        req_shards = None;
        req_trace = None;
        req_pspan = None;
        req_rows = None;
      }
    in
    match
      (try Ok (Net.Client.connect ~deadline_s:5. socket)
       with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
    with
    | Error m -> `Error (false, Printf.sprintf "cannot connect to %s: %s" socket m)
    | Ok client ->
        let rec loop id =
          match Net.Client.call client (req id) with
          | Error e ->
              Net.Client.close client;
              `Error (false, "scrape failed: " ^ Net.Client.error_to_string e)
          | Ok rsp -> (
              match (rsp.Protocol.rsp_status, rsp.Protocol.rsp_body) with
              | Protocol.Answered, Some body ->
                  if not once then Printf.printf "\027[2J\027[H";
                  Printf.printf "pmw top — %s — %s\n\n" socket
                    (let t = Unix.localtime (Unix.time ()) in
                     Printf.sprintf "%02d:%02d:%02d" t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec);
                  render body;
                  flush stdout;
                  if once then begin
                    Net.Client.close client;
                    `Ok ()
                  end
                  else begin
                    Unix.sleepf interval;
                    loop (id + 1)
                  end
              | Protocol.Failed why, _ ->
                  Net.Client.close client;
                  `Error
                    ( false,
                      Printf.sprintf
                        "server refused ctl:metrics:prom (%s) — run the server with --metrics \
                         and --chaos-ctl"
                        why )
              | _ ->
                  Net.Client.close client;
                  `Error (false, "unexpected response to ctl:metrics:prom"))
        in
        loop 1
  in
  Cmd.v (Cmd.info "top" ~doc) Term.(ret (const run $ socket_arg $ interval_arg $ once_flag))

(* --- theory --- *)

let theory_cmd =
  let doc = "Print Table 1's required dataset sizes for given parameters (constants = 1)" in
  let alpha_arg = Arg.(value & opt float 0.05 & info [ "alpha" ] ~doc:"Target excess risk") in
  let eps_arg = Arg.(value & opt float 1.0 & info [ "eps" ] ~doc:"Epsilon") in
  let k_arg = Arg.(value & opt int 1000 & info [ "k" ] ~doc:"Number of queries") in
  let d_arg = Arg.(value & opt int 4 & info [ "d" ] ~doc:"Dimension") in
  let logx_arg = Arg.(value & opt float 10. & info [ "log-universe" ] ~doc:"log |X|") in
  let sigma_arg = Arg.(value & opt float 1.0 & info [ "sigma" ] ~doc:"Strong convexity") in
  let run alpha eps k d log_universe sigma =
    let i =
      { (Pmw_core.Theory.default ~alpha ~log_universe) with Pmw_core.Theory.eps; k; d; sigma }
    in
    let module T = Pmw_core.Theory in
    Printf.printf "Table 1 required n (alpha=%g eps=%g k=%d d=%d log|X|=%g sigma=%g):\n" alpha eps
      k d log_universe sigma;
    Printf.printf "  %-28s single %-12.3e k-queries %-12.3e\n" "linear" (T.linear_single i)
      (T.linear_k i);
    Printf.printf "  %-28s single %-12.3e k-queries %-12.3e\n" "Lipschitz, d-bounded"
      (T.lipschitz_single i) (T.lipschitz_k i);
    Printf.printf "  %-28s single %-12.3e k-queries %-12.3e\n" "UGLM" (T.uglm_single i)
      (T.uglm_k i);
    Printf.printf "  %-28s single %-12.3e k-queries %-12.3e\n" "strongly convex"
      (T.strongly_convex_single i) (T.strongly_convex_k i);
    Printf.printf "  MW update budget T = %.3e; PMW-vs-composition crossover k ~ %.3e\n"
      (T.t_updates i) (T.crossover_k i)
  in
  Cmd.v (Cmd.info "theory" ~doc)
    Term.(const run $ alpha_arg $ eps_arg $ k_arg $ d_arg $ logx_arg $ sigma_arg)

let () =
  let doc = "Private multiplicative weights beyond linear queries (Ullman, PODS 2015)" in
  let info = Cmd.info "pmw_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            exp_cmd;
            run_cmd;
            session_cmd;
            serve_cmd;
            stats_cmd;
            top_cmd;
            theory_cmd;
            ingest_cmd;
            release_cmd;
          ]))
