(* A data-analysis session: many distinct regression-style CM queries on one
   sensitive dataset, answered by online private multiplicative weights, with
   the naive composition baseline answering the same stream for comparison.

   This is the workload the paper's introduction motivates: "the same data is
   often analyzed repeatedly ... these analysts will need answers to a large
   number of distinct CM queries". Run: dune exec examples/regression_analyst.exe *)

module Universe = Pmw_data.Universe
module Synth = Pmw_data.Synth
module Domain = Pmw_convex.Domain
module Losses = Pmw_convex.Losses
module Cm_query = Pmw_core.Cm_query
module Online_pmw = Pmw_core.Online_pmw
module Composition = Pmw_core.Composition
module Analyst = Pmw_core.Analyst

let build_queries domain =
  let masks = [ [| true; true; false |]; [| true; false; true |]; [| false; true; true |] ] in
  let base =
    [
      Cm_query.make ~name:"ols" ~loss:(Losses.squared ()) ~domain ();
      Cm_query.make ~name:"lad" ~loss:(Losses.absolute ()) ~domain ();
    ]
  in
  let hubers =
    List.map
      (fun d -> Cm_query.make ~loss:(Losses.huber ~delta:d ()) ~domain ())
      [ 0.25; 0.5; 1.0 ]
  in
  let quantiles =
    List.map
      (fun tau -> Cm_query.make ~loss:(Losses.quantile ~tau ()) ~domain ())
      [ 0.25; 0.5; 0.75; 0.9 ]
  in
  let masked =
    List.map
      (fun m -> Cm_query.make ~loss:(Losses.feature_mask m (Losses.squared ())) ~domain ())
      masks
  in
  base @ hubers @ quantiles @ masked

let () =
  let rng = Pmw_rng.Rng.create ~seed:7 () in
  let universe = Universe.regression_grid ~d:3 ~levels:5 ~label_levels:5 () in
  let theta_star = [| 0.5; -0.4; 0.2 |] in
  let dataset = Synth.linear_regression ~universe ~theta_star ~noise:0.15 ~n:300_000 rng in
  let domain = Domain.unit_ball ~dim:3 in
  let privacy = Pmw_dp.Params.create ~eps:1.0 ~delta:1e-6 in
  let k = 36 in
  let queries = build_queries domain in

  Format.printf "universe %s (|X|=%d), n=%d, %d distinct losses cycled to k=%d queries@."
    (Universe.name universe) (Universe.size universe)
    (Pmw_data.Dataset.size dataset) (List.length queries) k;

  let analyst = Analyst.cycle ~name:"regression-panel" queries ~k in

  (* Online PMW. *)
  let config =
    Pmw_core.Config.practical ~universe ~privacy ~alpha:0.05 ~beta:0.05
      ~scale:(Domain.diameter domain) ~k ~t_max:30 ~solver_iters:200 ()
  in
  let mechanism =
    Online_pmw.create ~config ~dataset ~oracle:(Pmw_erm.Oracles.noisy_gd ()) ~rng ()
  in
  let pmw_records =
    Analyst.run ~analyst ~k
      ~answer:(fun q -> Option.map (fun o -> o.Online_pmw.theta) (Online_pmw.answer_opt mechanism q))
      ~dataset ~solver_iters:400 ()
  in

  (* Naive baseline: same budget split across the k queries. *)
  let baseline =
    Composition.create ~dataset ~oracle:(Pmw_erm.Oracles.noisy_gd ()) ~privacy ~k
      ~solver_iters:200 ~rng ()
  in
  let baseline_records =
    Analyst.run ~analyst ~k ~answer:(fun q -> Composition.answer baseline q) ~dataset
      ~solver_iters:400 ()
  in

  Format.printf "@.%-24s %-14s %-14s@." "query" "PMW err" "composition err";
  List.iter2
    (fun (p : Analyst.record) (b : Analyst.record) ->
      let show = function Some e -> Format.asprintf "%.4f" e | None -> "halted" in
      Format.printf "%-24s %-14s %-14s@." p.Analyst.query.Cm_query.name (show p.Analyst.error)
        (show b.Analyst.error))
    pmw_records baseline_records;
  Format.printf "@.max error:  PMW %.4f  composition %.4f@." (Analyst.max_error pmw_records)
    (Analyst.max_error baseline_records);
  Format.printf "mean error: PMW %.4f  composition %.4f@." (Analyst.mean_error pmw_records)
    (Analyst.mean_error baseline_records);
  Format.printf "MW updates spent: %d/%d@." (Online_pmw.updates mechanism)
    config.Pmw_core.Config.t_max
