(* An adaptive analyst asking classification CM queries (generalized linear
   models, Section 4.2.2): the analyst inspects each private answer and
   chooses its next query based on which features the current model uses
   least. Adaptivity is exactly what Definition 2.4's game allows and what
   the composition baseline handles poorly.

   Also demonstrates the dimension-(in)dependence of the GLM oracle
   (Theorem 4.3): the same experiment at two dimensions.
   Run: dune exec examples/adaptive_logistic.exe *)

module Vec = Pmw_linalg.Vec
module Universe = Pmw_data.Universe
module Synth = Pmw_data.Synth
module Domain = Pmw_convex.Domain
module Losses = Pmw_convex.Losses
module Cm_query = Pmw_core.Cm_query
module Online_pmw = Pmw_core.Online_pmw
module Analyst = Pmw_core.Analyst

let session ~d ~seed =
  let rng = Pmw_rng.Rng.create ~seed () in
  let universe = Universe.labeled_hypercube ~d ~labels:[| -1.; 1. |] () in
  let theta_star = Synth.random_unit_vector ~dim:d rng in
  let dataset =
    Synth.logistic_classification ~universe ~theta_star ~margin:4. ~n:300_000 rng
  in
  let domain = Domain.unit_ball ~dim:d in
  let privacy = Pmw_dp.Params.create ~eps:1.0 ~delta:1e-6 in
  let k = 24 in
  let config =
    Pmw_core.Config.practical ~universe ~privacy ~alpha:0.05 ~beta:0.05
      ~scale:(Domain.diameter domain) ~k ~t_max:24 ~solver_iters:200 ()
  in
  let mechanism = Online_pmw.create ~config ~dataset ~oracle:(Pmw_erm.Oracles.glm ()) ~rng () in

  (* The adaptive rule: start from the full-feature logistic regression; on
     each subsequent round, drop the feature whose previous coefficient was
     smallest in magnitude (an analyst doing greedy backward selection),
     occasionally switching loss family to hinge / squared margin. *)
  let losses = [| Losses.logistic (); Losses.hinge (); Losses.squared_margin () |] in
  let next ~round ~history =
    if round >= k then None
    else
      let mask =
        match history with
        | { Analyst.answer = Some theta; _ } :: _ ->
            let keep = Array.make d true in
            let smallest = ref 0 in
            Array.iteri
              (fun i v -> if Float.abs v < Float.abs theta.(!smallest) then smallest := i)
              theta;
            keep.(!smallest) <- false;
            keep
        | _ -> Array.make d true
      in
      let loss = Losses.feature_mask mask losses.(round mod Array.length losses) in
      Some (Cm_query.make ~loss ~domain ())
  in
  let analyst = Analyst.adaptive ~name:"backward-selection" next in
  let records =
    Analyst.run ~analyst ~k
      ~answer:(fun q -> Option.map (fun o -> o.Online_pmw.theta) (Online_pmw.answer_opt mechanism q))
      ~dataset ~solver_iters:400 ()
  in
  (records, Online_pmw.updates mechanism, config.Pmw_core.Config.t_max)

let () =
  List.iter
    (fun d ->
      let records, updates, t_max = session ~d ~seed:11 in
      Format.printf
        "@.d=%d (|X|=%d): answered %d adaptive queries, max err %.4f, mean err %.4f, updates %d/%d@."
        d (1 lsl (d + 1)) (Analyst.answered records) (Analyst.max_error records)
        (Analyst.mean_error records) updates t_max;
      List.iteri
        (fun i (r : Analyst.record) ->
          if i < 6 then
            match r.Analyst.error with
            | Some e -> Format.printf "  round %2d  %-28s err %.4f@." r.Analyst.index
                          r.Analyst.query.Cm_query.name e
            | None -> Format.printf "  round %2d  halted@." r.Analyst.index)
        records)
    [ 4; 8 ]
