(* Quickstart: answer a handful of convex-minimization queries on a sensitive
   dataset with the online private multiplicative weights mechanism.

   Pipeline: build a finite universe -> sample a synthetic sensitive dataset
   -> configure the mechanism -> ask CM queries (regression losses of several
   shapes) -> compare each private answer's excess risk with the non-private
   optimum. Run with: dune exec examples/quickstart.exe *)

module Vec = Pmw_linalg.Vec
module Universe = Pmw_data.Universe
module Dataset = Pmw_data.Dataset
module Synth = Pmw_data.Synth
module Domain = Pmw_convex.Domain
module Losses = Pmw_convex.Losses
module Cm_query = Pmw_core.Cm_query
module Online_pmw = Pmw_core.Online_pmw

let () =
  let rng = Pmw_rng.Rng.create ~seed:42 () in

  (* 1. A finite data universe: a 2-d feature grid inside the unit ball,
     crossed with 5 label levels in [-1, 1] (Section 1.1's rounding). *)
  let universe = Universe.regression_grid ~d:2 ~levels:9 ~label_levels:5 () in
  Format.printf "universe: %s, |X| = %d@." (Universe.name universe) (Universe.size universe);

  (* 2. The sensitive dataset: n records with a planted linear signal. *)
  let theta_star = [| 0.6; -0.3 |] in
  let dataset =
    Synth.linear_regression ~universe ~theta_star ~noise:0.1 ~n:200_000 rng
  in

  (* 3. Configure the mechanism. The `practical` constructor keeps Figure 3's
     structure but picks a laptop-scale update budget T (the verbatim theory
     constants need astronomically large n -- see DESIGN.md). *)
  let privacy = Pmw_dp.Params.create ~eps:1.0 ~delta:1e-6 in
  let domain = Domain.unit_ball ~dim:2 in
  let scale = Domain.diameter domain *. 1.0 (* 1-Lipschitz losses *) in
  let config =
    Pmw_core.Config.practical ~universe ~privacy ~alpha:0.04 ~beta:0.05 ~scale ~k:16 ~t_max:30
      ~solver_iters:250 ()
  in
  Format.printf "%a@." Pmw_core.Config.pp config;

  (* 4. The single-query oracle A' (noisy projected gradient descent). *)
  let oracle = Pmw_erm.Oracles.noisy_gd () in
  let mechanism = Online_pmw.create ~config ~dataset ~oracle ~rng () in

  (* 5. Ask CM queries of several shapes on the same data. *)
  let queries =
    [
      Cm_query.make ~name:"least-squares" ~loss:(Losses.squared ()) ~domain ();
      Cm_query.make ~name:"huber" ~loss:(Losses.huber ~delta:0.5 ()) ~domain ();
      Cm_query.make ~name:"LAD" ~loss:(Losses.absolute ()) ~domain ();
      Cm_query.make ~name:"quantile-0.75" ~loss:(Losses.quantile ~tau:0.75 ()) ~domain ();
    ]
  in
  Format.printf "@.%-16s %-28s %-12s %s@." "query" "private theta" "excess risk" "source";
  List.iter
    (fun q ->
      let print_outcome outcome tag =
        let err = Cm_query.err_answer q dataset outcome.Online_pmw.theta in
        Format.printf "%-16s %-28s %-12.4f %s%s@." q.Cm_query.name
          (Format.asprintf "%a" Vec.pp outcome.Online_pmw.theta)
          err
          (match outcome.Online_pmw.source with
          | Online_pmw.From_hypothesis -> "hypothesis"
          | Online_pmw.From_oracle -> "oracle")
          tag
      in
      match Online_pmw.answer mechanism q with
      | Online_pmw.Refused r ->
          Format.printf "%-16s (refused: %s)@." q.Cm_query.name (Online_pmw.refusal_to_string r)
      | Online_pmw.Answered outcome -> print_outcome outcome ""
      | Online_pmw.Degraded (outcome, d) ->
          print_outcome outcome
            (Printf.sprintf " [degraded: %s]" (Online_pmw.degradation_to_string d)))
    queries;
  Format.printf "@.MW updates used: %d / %d; queries answered: %d@."
    (Online_pmw.updates mechanism) config.Pmw_core.Config.t_max
    (Online_pmw.queries_answered mechanism);

  (* 6. The final hypothesis is a public synthetic dataset (Section 4.3). *)
  let hyp = Online_pmw.hypothesis mechanism in
  Format.printf "hypothesis entropy: %.3f nats (uniform would be %.3f)@."
    (Pmw_data.Histogram.entropy hyp)
    (Universe.log_size universe);
  let true_hist = Dataset.histogram dataset in
  Format.printf "L1(hypothesis, true histogram) = %.4f@."
    (Pmw_data.Histogram.l1_dist hyp true_hist)
