(* Linear queries two ways.

   Linear queries ("what fraction of rows satisfy p?") are the special case
   of CM queries the paper generalizes (Table 1, row 1). This example answers
   the same marginal/conjunction workload (a) with the Hardt-Rothblum linear
   PMW mechanism and (b) through the CM reduction l(theta; x) = (theta - q(x))^2
   over Theta = [0,1], fed to the paper's Figure 3 algorithm -- showing the CM
   machinery subsumes the linear one with comparable accuracy.

   Run: dune exec examples/linear_queries.exe *)

module Universe = Pmw_data.Universe
module Histogram = Pmw_data.Histogram
module Dataset = Pmw_data.Dataset
module Synth = Pmw_data.Synth
module Domain = Pmw_convex.Domain
module Losses = Pmw_convex.Losses
module Cm_query = Pmw_core.Cm_query
module Linear_pmw = Pmw_core.Linear_pmw
module Online_pmw = Pmw_core.Online_pmw

let () =
  let rng = Pmw_rng.Rng.create ~seed:23 () in
  let d = 6 in
  let universe = Universe.hypercube ~d () in
  let population = Synth.zipf_histogram ~universe ~s:1.2 rng in
  let dataset = Dataset.of_histogram ~n:400_000 population rng in
  let true_hist = Dataset.histogram dataset in
  let privacy = Pmw_dp.Params.create ~eps:1.0 ~delta:1e-6 in

  (* The workload: one-way marginals (x_j positive) and two-way conjunctions. *)
  let coord_positive j (x : Pmw_data.Point.t) = x.Pmw_data.Point.features.(j) > 0. in
  let one_way =
    List.init d (fun j ->
        Linear_pmw.counting_query ~name:(Printf.sprintf "x%d>0" j) (coord_positive j))
  in
  let two_way =
    List.concat
      (List.init d (fun j ->
           List.init (d - j - 1) (fun off ->
               let j' = j + off + 1 in
               Linear_pmw.counting_query
                 ~name:(Printf.sprintf "x%d>0 & x%d>0" j j')
                 (fun x -> coord_positive j x && coord_positive j' x))))
  in
  let workload = one_way @ two_way in
  let k = List.length workload in
  Format.printf "workload: %d marginal/conjunction queries over |X|=%d, n=%d@." k
    (Universe.size universe) (Dataset.size dataset);

  (* (a) Hardt-Rothblum linear PMW. *)
  let hr =
    Linear_pmw.create ~universe ~dataset ~privacy ~alpha:0.03 ~beta:0.05 ~k ~t_max:40 ~rng ()
  in
  let hr_errors =
    List.map
      (fun q ->
        match Linear_pmw.answer hr q with
        | None -> nan
        | Some a -> Float.abs (a -. Linear_pmw.evaluate q true_hist))
      workload
  in

  (* (b) The same queries as CM queries through Figure 3. *)
  let domain = Domain.interval ~lo:0. ~hi:1. in
  let cm_queries =
    List.map
      (fun (q : Linear_pmw.query) ->
        Cm_query.make
          ~loss:(Losses.mean_estimation ~q:(fun x -> q.Linear_pmw.value 0 x) ~name:q.Linear_pmw.name)
          ~domain ())
      workload
  in
  let scale = 2. *. Domain.diameter domain in
  (* the mean-estimation loss squares the answer error, so a |error| target
     of 0.1 on the counting queries is alpha = 0.01 on the CM scale *)
  let config =
    Pmw_core.Config.practical ~universe ~privacy ~alpha:0.01 ~beta:0.05 ~scale ~k ~t_max:20
      ~solver_iters:120 ()
  in
  let mechanism =
    Online_pmw.create ~config ~dataset ~oracle:Pmw_erm.Oracles.laplace_output ~rng ()
  in
  let cm_errors =
    List.map2
      (fun cq (lq : Linear_pmw.query) ->
        match Online_pmw.answer_opt mechanism cq with
        | None -> nan
        | Some o ->
            Float.abs (o.Online_pmw.theta.(0) -. Linear_pmw.evaluate lq true_hist))
      cm_queries workload
  in

  Format.printf "@.%-18s %-12s %-12s@." "query" "HR10 |err|" "CM-PMW |err|";
  List.iteri
    (fun i (q : Linear_pmw.query) ->
      if i < 10 || i >= k - 2 then
        Format.printf "%-18s %-12.4f %-12.4f@." q.Linear_pmw.name (List.nth hr_errors i)
          (List.nth cm_errors i))
    workload;
  let max_finite l = List.fold_left (fun acc e -> if Float.is_nan e then acc else Float.max acc e) 0. l in
  Format.printf "@.max |err|: HR10 %.4f   CM reduction %.4f@." (max_finite hr_errors)
    (max_finite cm_errors);
  Format.printf "updates: HR10 %d, CM %d@." (Linear_pmw.updates hr) (Online_pmw.updates mechanism)
