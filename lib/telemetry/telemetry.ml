(* Structured tracing, metrics and privacy-ledger observability.

   One [Telemetry.t] instance is threaded through a mechanism stack the same
   way [?pool] is: every instrumented module emits events into it, and the
   instance routes them to a sink (ring buffer, JSONL file, callback, or
   nothing). Counters and ledger totals are tracked in the instance even
   when the sink is [Null], so the session layer can use them as its
   authoritative tallies; spans and observations are recorded only when a
   real sink is attached, which keeps the no-op configuration within noise
   of the uninstrumented hot paths. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type kind = Span_begin | Span_end | Count | Observe | Debit | Mark

let kind_to_string = function
  | Span_begin -> "span_begin"
  | Span_end -> "span_end"
  | Count -> "count"
  | Observe -> "observe"
  | Debit -> "debit"
  | Mark -> "mark"

let kind_of_string = function
  | "span_begin" -> Some Span_begin
  | "span_end" -> Some Span_end
  | "count" -> Some Count
  | "observe" -> Some Observe
  | "debit" -> Some Debit
  | "mark" -> Some Mark
  | _ -> None

type event = {
  ts : float;  (* seconds since instance creation, non-decreasing *)
  round : int;  (* current round id; -1 outside any round *)
  kind : kind;
  name : string;
  fields : (string * value) list;
}

(* --- JSON encoding (JSONL sink) --- *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* %.17g round-trips every finite double; non-finite values have no JSON
   literal, so they are stringified (the trace reader maps them back). *)
let json_float v =
  if Float.is_finite v then Printf.sprintf "%.17g" v
  else if Float.is_nan v then "\"nan\""
  else if v > 0. then "\"inf\""
  else "\"-inf\""

let json_value b = function
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float v -> Buffer.add_string b (json_float v)
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Str s ->
      Buffer.add_char b '"';
      json_escape b s;
      Buffer.add_char b '"'

let event_to_json e =
  let b = Buffer.create 160 in
  Buffer.add_string b "{\"ts\":";
  Buffer.add_string b (json_float e.ts);
  Buffer.add_string b ",\"round\":";
  Buffer.add_string b (string_of_int e.round);
  Buffer.add_string b ",\"kind\":\"";
  Buffer.add_string b (kind_to_string e.kind);
  Buffer.add_string b "\",\"name\":\"";
  json_escape b e.name;
  Buffer.add_char b '"';
  List.iter
    (fun (k, v) ->
      Buffer.add_string b ",\"";
      json_escape b k;
      Buffer.add_string b "\":";
      json_value b v)
    e.fields;
  Buffer.add_char b '}';
  Buffer.contents b

(* --- sinks --- *)

module Sink = struct
  type t =
    | Null
    | Ring of { capacity : int; buf : event Queue.t; mutable dropped : int }
    | Jsonl of { oc : out_channel; owned : bool; mutable closed : bool }
    | Fn of (event -> unit)
    | Multi of t list

  let null = Null
  let ring ?(capacity = 65536) () = Ring { capacity; buf = Queue.create (); dropped = 0 }
  let jsonl oc = Jsonl { oc; owned = false; closed = false }

  let jsonl_file path = Jsonl { oc = open_out path; owned = true; closed = false }

  let fn f = Fn f
  let multi sinks = Multi sinks

  let rec emit sink e =
    match sink with
    | Null -> ()
    | Ring r ->
        if Queue.length r.buf >= r.capacity then begin
          ignore (Queue.pop r.buf);
          (* evicting the oldest event is a silent loss unless counted:
             the losses section of [pmw_cli stats] surfaces this total *)
          r.dropped <- r.dropped + 1
        end;
        Queue.push e r.buf
    | Jsonl j ->
        if not j.closed then begin
          output_string j.oc (event_to_json e);
          output_char j.oc '\n'
        end
    | Fn f -> f e
    | Multi sinks -> List.iter (fun s -> emit s e) sinks

  let rec events = function
    | Ring r -> List.of_seq (Queue.to_seq r.buf)
    | Multi sinks -> List.concat_map events sinks
    | Null | Jsonl _ | Fn _ -> []

  let rec drops = function
    | Ring r -> r.dropped
    | Multi sinks -> List.fold_left (fun acc s -> acc + drops s) 0 sinks
    | Null | Jsonl _ | Fn _ -> 0

  let rec close = function
    | Jsonl j ->
        if not j.closed then begin
          flush j.oc;
          if j.owned then close_out j.oc;
          j.closed <- true
        end
    | Multi sinks -> List.iter close sinks
    | Null | Ring _ | Fn _ -> ()

  let rec is_null = function
    | Null -> true
    | Multi sinks -> List.for_all is_null sinks
    | Ring _ | Jsonl _ | Fn _ -> false
end

(* --- aggregate state kept in the instance --- *)

type obs_stats = {
  mutable o_count : int;
  mutable o_sum : float;
  mutable o_min : float;
  mutable o_max : float;
  mutable o_last : float;
}

type span_stats = { mutable s_calls : int; mutable s_total : float; mutable s_max : float }

type ledger_totals = {
  mutable l_debits : int;
  mutable l_eps : float;
  mutable l_delta : float;
}

type t = {
  sink : Sink.t;
  clock : unit -> float;
  t0 : float;
  enabled : bool;
  verbose : bool;
  tag : string option;
  counters : (string, int ref) Hashtbl.t;
  observations : (string, obs_stats) Hashtbl.t;
  spans : (string, span_stats) Hashtbl.t;
  ledgers : (string, ledger_totals) Hashtbl.t;
  mutable round : int;
  mutable last_ts : float;
  mutable next_span_id : int;
  mutable span_stack : int list;
}

let default_verbose () =
  match Sys.getenv_opt "PMW_TRACE_POOL" with Some ("1" | "true") -> true | _ -> false

let create ?(clock = Unix.gettimeofday) ?(sink = Sink.Null) ?verbose ?tag () =
  let verbose = match verbose with Some v -> v | None -> default_verbose () in
  {
    sink;
    clock;
    t0 = clock ();
    enabled = not (Sink.is_null sink);
    verbose;
    tag;
    counters = Hashtbl.create 16;
    observations = Hashtbl.create 16;
    spans = Hashtbl.create 16;
    ledgers = Hashtbl.create 4;
    round = -1;
    last_ts = 0.;
    next_span_id = 0;
    span_stack = [];
  }

let null () = create ()

let enabled t = t.enabled
let verbose t = t.verbose
let tag t = t.tag
let close t = Sink.close t.sink
let events t = Sink.events t.sink
let sink_drops t = Sink.drops t.sink

(* Timestamps are clamped non-decreasing, so the emitted stream is monotone
   even if the wall clock steps backwards under the run. *)
let now t =
  let ts = t.clock () -. t.t0 in
  let ts = if ts > t.last_ts then ts else t.last_ts in
  t.last_ts <- ts;
  ts

let set_round t r = t.round <- r
let next_round t =
  t.round <- (if t.round < 0 then 1 else t.round + 1);
  t.round

let round t = t.round

(* The instance tag (a per-shard label in fleet serving) rides on every
   emitted event, so a merged multi-instance trace stays attributable. *)
let tag_fields t fields =
  match t.tag with None -> fields | Some tag -> ("tag", Str tag) :: fields

let emit t kind name fields =
  Sink.emit t.sink { ts = now t; round = t.round; kind; name; fields = tag_fields t fields }

let mark t ?(fields = []) name = if t.enabled then emit t Mark name fields

(* --- counters (tracked even with a Null sink) --- *)

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr ?(by = 1) t name =
  let r = counter_ref t name in
  r := !r + by;
  if t.enabled then emit t Count name [ ("by", Int by); ("total", Int !r) ]

let set_counter t name v =
  let r = counter_ref t name in
  r := v

let counter t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  List.sort compare (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters [])

(* --- observations (float histograms; recorded when a sink is attached) --- *)

let observe t name v =
  if t.enabled then begin
    (match Hashtbl.find_opt t.observations name with
    | Some s ->
        s.o_count <- s.o_count + 1;
        s.o_sum <- s.o_sum +. v;
        if v < s.o_min then s.o_min <- v;
        if v > s.o_max then s.o_max <- v;
        s.o_last <- v
    | None ->
        Hashtbl.add t.observations name
          { o_count = 1; o_sum = v; o_min = v; o_max = v; o_last = v });
    emit t Observe name [ ("value", Float v) ]
  end

type observation = { obs_count : int; obs_sum : float; obs_min : float; obs_max : float; obs_last : float }

let observation t name =
  Option.map
    (fun s ->
      { obs_count = s.o_count; obs_sum = s.o_sum; obs_min = s.o_min; obs_max = s.o_max; obs_last = s.o_last })
    (Hashtbl.find_opt t.observations name)

let observations t =
  List.sort compare
    (Hashtbl.fold
       (fun k s acc ->
         ( k,
           { obs_count = s.o_count; obs_sum = s.o_sum; obs_min = s.o_min; obs_max = s.o_max; obs_last = s.o_last } )
         :: acc)
       t.observations [])

(* --- privacy-ledger timeline (tracked even with a Null sink) --- *)

let debit t ~ledger ~mechanism ~eps ~delta =
  let l =
    match Hashtbl.find_opt t.ledgers ledger with
    | Some l -> l
    | None ->
        let l = { l_debits = 0; l_eps = 0.; l_delta = 0. } in
        Hashtbl.add t.ledgers ledger l;
        l
  in
  l.l_debits <- l.l_debits + 1;
  l.l_eps <- l.l_eps +. eps;
  l.l_delta <- l.l_delta +. delta;
  if t.enabled then
    emit t Debit ledger
      [
        ("mechanism", Str mechanism);
        ("eps", Float eps);
        ("delta", Float delta);
        ("eps_total", Float l.l_eps);
        ("delta_total", Float l.l_delta);
        ("debits", Int l.l_debits);
      ]

let ledger_total t ledger =
  match Hashtbl.find_opt t.ledgers ledger with
  | Some l -> (l.l_eps, l.l_delta)
  | None -> (0., 0.)

let ledgers t =
  List.sort compare
    (Hashtbl.fold (fun k l acc -> (k, (l.l_eps, l.l_delta, l.l_debits)) :: acc) t.ledgers [])

let emit_ledger_finals t =
  List.iter
    (fun (name, (eps, delta, debits)) ->
      mark t "ledger.final"
        ~fields:
          [ ("ledger", Str name); ("eps", Float eps); ("delta", Float delta); ("debits", Int debits) ])
    (ledgers t)

(* --- spans --- *)

let span_stats_ref t name =
  match Hashtbl.find_opt t.spans name with
  | Some s -> s
  | None ->
      let s = { s_calls = 0; s_total = 0.; s_max = 0. } in
      Hashtbl.add t.spans name s;
      s

let span t ?(fields = []) name f =
  if not t.enabled then f ()
  else begin
    let id = t.next_span_id in
    t.next_span_id <- id + 1;
    let parent = match t.span_stack with [] -> -1 | p :: _ -> p in
    t.span_stack <- id :: t.span_stack;
    let start = now t in
    Sink.emit t.sink
      {
        ts = start;
        round = t.round;
        kind = Span_begin;
        name;
        fields = tag_fields t (("id", Int id) :: ("parent", Int parent) :: fields);
      };
    let finish ok =
      let stop = now t in
      let dur = stop -. start in
      let s = span_stats_ref t name in
      s.s_calls <- s.s_calls + 1;
      s.s_total <- s.s_total +. dur;
      if dur > s.s_max then s.s_max <- dur;
      (match t.span_stack with top :: rest when top = id -> t.span_stack <- rest | _ -> ());
      Sink.emit t.sink
        {
          ts = stop;
          round = t.round;
          kind = Span_end;
          name;
          fields =
            tag_fields t
              [ ("id", Int id); ("parent", Int parent); ("dur_s", Float dur); ("ok", Bool ok) ];
        }
    in
    match f () with
    | v ->
        finish true;
        v
    | exception e ->
        finish false;
        raise e
  end

type span_summary = { span_calls : int; span_total_s : float; span_max_s : float }

let span_stats t name =
  Option.map
    (fun s -> { span_calls = s.s_calls; span_total_s = s.s_total; span_max_s = s.s_max })
    (Hashtbl.find_opt t.spans name)

let spans t =
  List.sort compare
    (Hashtbl.fold
       (fun k s acc ->
         (k, { span_calls = s.s_calls; span_total_s = s.s_total; span_max_s = s.s_max }) :: acc)
       t.spans [])

(* --- human-readable summary --- *)

let pp_summary fmt t =
  let open Format in
  fprintf fmt "@[<v>";
  (match counters t with
  | [] -> ()
  | cs ->
      fprintf fmt "counters:@,";
      List.iter (fun (k, v) -> fprintf fmt "  %-28s %d@," k v) cs);
  (match spans t with
  | [] -> ()
  | ss ->
      fprintf fmt "spans (calls, total s, mean ms, max ms):@,";
      List.iter
        (fun (k, s) ->
          fprintf fmt "  %-28s %6d %10.3f %10.3f %10.3f@," k s.span_calls s.span_total_s
            (if s.span_calls = 0 then 0. else 1e3 *. s.span_total_s /. float_of_int s.span_calls)
            (1e3 *. s.span_max_s))
        ss);
  (match observations t with
  | [] -> ()
  | os ->
      fprintf fmt "observations (count, mean, min, max, last):@,";
      List.iter
        (fun (k, o) ->
          fprintf fmt "  %-28s %6d %10.4g %10.4g %10.4g %10.4g@," k o.obs_count
            (if o.obs_count = 0 then 0. else o.obs_sum /. float_of_int o.obs_count)
            o.obs_min o.obs_max o.obs_last)
        os);
  (match ledgers t with
  | [] -> ()
  | ls ->
      fprintf fmt "privacy ledgers (debits, eps total, delta total):@,";
      List.iter
        (fun (k, (eps, delta, debits)) -> fprintf fmt "  %-28s %6d %12.6g %12.3e@," k debits eps delta)
        ls);
  fprintf fmt "@]"
