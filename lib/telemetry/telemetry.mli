(** Structured tracing, metrics and privacy-ledger observability for the PMW
    pipeline.

    A {!t} instance is threaded through the mechanism stack the same way
    [?pool] is: each instrumented module (sparse vector, accountant, budget,
    oracles, MW loop, session, pool) emits {!event}s into it, and the
    instance routes them to a {!Sink.t}. Three guarantees shape the design:

    - {b No-op is free}: with the default {!Sink.null} sink, spans read no
      clock and emit nothing; only plain counter increments and ledger sums
      (a handful of adds per query) remain, so instrumented hot paths stay
      within noise of the uninstrumented code.
    - {b Counters and ledgers are authoritative}: they are tracked in the
      instance even when no sink is attached, so the session layer can use
      them as its only verdict/budget tallies (no duplicated bookkeeping).
    - {b Timestamps are monotone}: event timestamps are clamped
      non-decreasing relative to instance creation, so a trace always
      replays in order even if the wall clock steps.

    Threading contract: all emission entry points must be called from the
    domain that owns the instrumented mechanism (worker domains never emit;
    the pool aggregates per-chunk timings and emits them from the caller).

    Traces record {e unprotected} intermediate values (per-round true
    errors, noisy thresholds' outcomes, per-call budget debits). They are a
    curator-side debugging artifact and must never be released to the
    analyst alongside the mechanism's answers. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type kind = Span_begin | Span_end | Count | Observe | Debit | Mark

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type event = {
  ts : float;  (** seconds since instance creation; non-decreasing *)
  round : int;  (** round id the event belongs to; [-1] outside any round *)
  kind : kind;
  name : string;  (** counter/span/observation name, or ledger tag for [Debit] *)
  fields : (string * value) list;
}

val event_to_json : event -> string
(** One-line JSON object: [{"ts":..,"round":..,"kind":..,"name":..,<fields>}].
    Finite floats round-trip exactly ([%.17g]); non-finite floats are encoded
    as the strings ["nan"], ["inf"], ["-inf"]. *)

(** Event destinations. A sink only stores/forwards; all aggregation lives in
    the instance. *)
module Sink : sig
  type t

  val null : t
  (** Drop everything (the default). *)

  val ring : ?capacity:int -> unit -> t
  (** Keep the last [capacity] (default 65536) events in memory — the test
      and in-process-inspection sink. *)

  val jsonl : out_channel -> t
  (** Write one JSON object per line to a caller-owned channel (the caller
      closes it; {!Telemetry.close} only flushes). *)

  val jsonl_file : string -> t
  (** Open [path] and write JSONL to it; {!Telemetry.close} flushes and
      closes the file. *)

  val fn : (event -> unit) -> t
  (** Forward every event to a callback. *)

  val multi : t list -> t
  (** Fan out to several sinks. *)

  val events : t -> event list
  (** Buffered events, oldest first (ring sinks only; [[]] otherwise). *)

  val drops : t -> int
  (** Events evicted by ring sinks to make room for newer ones (summed over
      [multi]) — the silent-truncation tally surfaced by the losses section
      of [pmw_cli stats]. *)
end

type t

val create :
  ?clock:(unit -> float) -> ?sink:Sink.t -> ?verbose:bool -> ?tag:string -> unit -> t
(** A fresh instance. [clock] (default [Unix.gettimeofday]) is read only when
    a non-null sink is attached; inject a counter clock for deterministic
    tests. [verbose] (default: true iff [PMW_TRACE_POOL=1] in the
    environment) additionally enables high-frequency per-chunk pool timing
    events. [tag] (e.g. ["shard3"]) is stamped as a ["tag"] field on every
    emitted event, so per-shard traces stay attributable after merging. *)

val null : unit -> t
(** [create ()] — a fresh no-op instance whose counters and ledgers still
    accumulate. Each call returns an independent instance (never a shared
    singleton: counter state must be per-mechanism). *)

val enabled : t -> bool
(** [true] iff a non-null sink is attached. *)

val verbose : t -> bool

val tag : t -> string option
(** The instance tag stamped on every emitted event, if any. *)

val close : t -> unit
(** Flush/close the attached sinks (idempotent). *)

val events : t -> event list
(** Events buffered by ring sinks of this instance, oldest first. *)

val sink_drops : t -> int
(** {!Sink.drops} of the attached sink — ring-evicted events. *)

val now : t -> float
(** Seconds since instance creation, clamped non-decreasing. *)

(** {1 Rounds} *)

val set_round : t -> int -> unit
(** Force the round id subsequent events are stamped with — used on
    checkpoint resume so a resumed trace continues the numbering. *)

val next_round : t -> int
(** Advance to the next round (first call yields 1) and return it. *)

val round : t -> int

(** {1 Emission} *)

val mark : t -> ?fields:(string * value) list -> string -> unit
(** A point event (no aggregation). No-op without a sink. *)

val incr : ?by:int -> t -> string -> unit
(** Increment a named counter (tracked even without a sink) and emit a
    [Count] event carrying the new total when a sink is attached. *)

val set_counter : t -> string -> int -> unit
(** Overwrite a counter without emitting — for checkpoint restore. *)

val counter : t -> string -> int
(** Current value (0 if never touched). *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val observe : t -> string -> float -> unit
(** Record a float sample (streaming count/sum/min/max kept per name) and
    emit an [Observe] event. No-op without a sink. *)

type observation = {
  obs_count : int;
  obs_sum : float;
  obs_min : float;
  obs_max : float;
  obs_last : float;
}

val observation : t -> string -> observation option
val observations : t -> (string * observation) list

val debit : t -> ledger:string -> mechanism:string -> eps:float -> delta:float -> unit
(** Record one privacy-ledger debit under the named ledger with its
    mechanism tag. Running [(ε, δ)] totals are tracked even without a sink;
    with one, the emitted [Debit] event carries both the per-event cost and
    the cumulative totals, so the whole curve can be replayed from the trace
    alone. *)

val ledger_total : t -> string -> float * float
(** Cumulative [(ε, δ)] sums debited under a ledger. *)

val ledgers : t -> (string * (float * float * int)) list
(** All ledgers, sorted: [(name, (eps_total, delta_total, debits))]. *)

val emit_ledger_finals : t -> unit
(** Emit one ["ledger.final"] mark per ledger carrying its cumulative
    [(ε, δ)] and debit count — the self-check {!Trace.validate} replays a
    trace's debits against. Call once, at the end of a run, before
    {!close}. *)

val span : t -> ?fields:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] times [f ()] between a [Span_begin]/[Span_end] pair with
    a fresh id and the enclosing span's id as parent; the end event carries
    [dur_s] and [ok] (false when [f] raised — the exception is re-raised).
    Without a sink this is exactly [f ()]: no clock read, no allocation. *)

type span_summary = { span_calls : int; span_total_s : float; span_max_s : float }

val span_stats : t -> string -> span_summary option
val spans : t -> (string * span_summary) list

val pp_summary : Format.formatter -> t -> unit
(** Human-readable dump of the aggregated counters, span timings,
    observations and ledger totals. *)
