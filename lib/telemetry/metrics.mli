(** Live metrics plane — the low-overhead sibling of {!Telemetry}.

    {!Telemetry} is a single-writer event {e stream}: every span, counter
    bump and debit is preserved in order, and only the owning thread may
    emit. This module is the opposite trade: a concurrent {e aggregate}.
    Handles ({!histogram}, {!rate}, {!gauge}, {!ledger}) are records of
    [Atomic.t] cells that any thread or domain may update simultaneously —
    the hot path is a few unboxed atomic operations and never allocates
    (sums and maxima live in scaled fixed-point integers precisely so no
    float is ever boxed on the update path).

    {b Disabled is free}: a registry built with {!disabled} hands out inert
    handles whose every operation is a single branch on an immutable bool —
    no clock read, no atomic traffic, no registration. Instrumented code
    therefore threads a [Metrics.t] unconditionally and never guards call
    sites.

    {b Usage contract}: ask for handles by name once, at wiring time
    (registration takes a mutex; it is idempotent, so two subsystems asking
    for the same name share the instrument), cache them, and hit the cached
    handle on the hot path.

    Histograms are fixed log2-scaled buckets (factor-of-2 resolution,
    1e-6 lower bound, 48 buckets) — quantiles are bucket-midpoint
    estimates, which is the right fidelity for latency dashboards and
    costs O(1) memory per instrument. Rates and ledger burn use a ring of
    per-second slots, so a "per second over the last N seconds" read needs
    no timer thread. *)

type t
(** A metrics registry: one per serving process (shared across shards —
    handles are concurrent), or one {!disabled} sentinel. *)

val create : ?clock:(unit -> float) -> unit -> t
(** Enabled registry. [clock] (default [Unix.gettimeofday]) feeds the
    rolling windows; inject a fake clock in tests. *)

val disabled : unit -> t
(** Registry whose handles no-op. No clock is ever read. *)

val is_enabled : t -> bool

(** {1 Latency / size histograms} *)

type histogram

val histogram : t -> string -> histogram
(** Find-or-create by name (mutex-guarded; cache the result). *)

val observe : histogram -> float -> unit
(** Record one value (seconds, batch size, coverage, ...). Thread-safe,
    allocation-free, no-op on a disabled handle. Non-positive and NaN
    values land in the lowest bucket with magnitude 0. *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_max : float;
  hs_p50 : float;  (** bucket-midpoint estimate, clamped to [hs_max] *)
  hs_p90 : float;
  hs_p99 : float;
}

val hist_snapshot : histogram -> hist_snapshot

(** {1 Rolling-window rate counters} *)

type rate

val rate : t -> string -> rate

val tick : ?by:int -> rate -> unit
(** Count [by] (default 1) events now. Thread-safe, allocation-free. *)

type rate_snapshot = {
  rs_total : int;  (** exact monotone total since creation *)
  rs_per_s : float;  (** mean rate over the trailing window *)
}

val rate_snapshot : ?window_s:int -> rate -> rate_snapshot
(** [window_s] defaults to 10 and is clamped to the ring size (62 s). *)

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Privacy-ledger burn rate} *)

type ledger

val ledger : t -> string -> ledger
(** One per privacy ledger (per shard, plus the composed fleet view). *)

val set_ledger_budget : ledger -> eps:float -> delta:float -> unit
(** Declare the ledger's total budget so snapshots can forecast
    exhaustion. Call at wiring time (and again after resume — it is a
    plain set). *)

val ledger_cum : ledger -> eps:float -> delta:float -> debits:int -> unit
(** Feed the ledger's {e cumulative} spend (what [Budget.spent] reports)
    and the total debit count. Cumulative feeds are idempotent — stale or
    replayed values are ignored by a monotone compare-and-set — so the
    caller can report after every batch without bookkeeping. *)

type ledger_snapshot = {
  ls_eps : float;  (** cumulative ε observed *)
  ls_delta : float;  (** cumulative δ observed *)
  ls_debits : int;
  ls_eps_budget : float;
  ls_delta_budget : float;
  ls_burn_eps_per_s : float;  (** ε/s over the trailing window *)
  ls_rounds_left : float;
      (** remaining ε over mean ε-per-debit; [infinity] when no budget was
          declared or nothing has been debited *)
  ls_seconds_left : float;
      (** remaining ε over the windowed burn rate; [infinity] when the
          window saw no burn *)
}

val ledger_snapshot : ?window_s:int -> ledger -> ledger_snapshot

(** {1 Rendering} *)

val to_json : t -> string
(** One-line JSON snapshot:
    [{"enabled":..,"histograms":{..},"rates":{..},"gauges":{..},
    "ledgers":{..}}]. Floats follow the trace-layer convention — finite as
    [%.17g], non-finite as the strings ["nan"]/["inf"]/["-inf"] (so
    [rounds_left] on an idle ledger is the string ["inf"]). Small enough
    to travel inside one {!Protocol} response line. *)

val to_prometheus : t -> string
(** Prometheus text exposition: histograms as [summary] families with
    [quantile] labels plus [_sum]/[_count]/[_max], rates as [_total]
    counters plus [_per_s] gauges, ledgers as a [pmw_ledger_*] family with
    a [ledger] label. Non-finite values render as [+Inf]/[-Inf]/[NaN]
    (legal in the exposition format). *)
