(** Offline trace analysis: read a JSONL trace back into {!Telemetry.event}s,
    check its structural invariants, and aggregate it into per-phase tables.

    The reader accepts exactly the flat-object JSON subset
    {!Telemetry.event_to_json} produces (one object per line; string, number
    and bool values; no nesting), which keeps the library dependency-free. *)

val load : path:string -> (Telemetry.event list, string) result
(** Parse a JSONL trace file, oldest event first. Blank lines are skipped;
    the first malformed line aborts with its line number. *)

val validate : Telemetry.event list -> (unit, string) result
(** Structural invariants every well-formed trace satisfies:
    - timestamps non-decreasing, round ids non-decreasing;
    - every [Span_end] closes a matching open [Span_begin] of the same name,
      ids unique, durations non-negative, no span left open;
    - each [Debit]'s carried cumulative totals equal the replayed
      per-ledger sums (to a 1e-9 relative tolerance);
    - any ["ledger.final"] mark matches the replayed sum of its ledger's
      debits — the "ledger sums match the accountant" check, from the trace
      alone. *)

val ledger_totals : Telemetry.event list -> (string * (float * float)) list
(** Replay the privacy-ledger timeline: per-ledger [(ε, δ)] sums of the
    individual debit events, sorted by ledger tag. *)

type span_row = { sr_name : string; sr_calls : int; sr_total_s : float; sr_max_s : float }

(** Aggregate of one observation stream (e.g. the server's
    ["server.queue_wait_s"] and ["server.batch_size"]). *)
type obs_row = {
  or_name : string;
  or_count : int;
  or_mean : float;
  or_min : float;
  or_max : float;
}

type summary = {
  events : int;
  rounds : int;  (** highest round id seen *)
  wall_s : float;  (** last timestamp minus first *)
  span_rows : span_row list;
  counter_rows : (string * int) list;  (** final value of each counter *)
  obs_rows : obs_row list;
  ledger_rows : (string * (float * float * int)) list;
      (** [(eps_total, delta_total, debits)] per ledger *)
  marks : (string * int) list;  (** occurrences per mark name *)
}

val summarize : Telemetry.event list -> summary

val losses : summary -> (string * int) list
(** Counters recording silent truncation — every counter whose name ends in
    [_dropped] or [_drops] with a non-zero total (ring-sink evictions,
    dedup-hit mark drops, router trace-mark spills). The CLI's [stats]
    prints these in one "losses" section so nothing overflows invisibly. *)

val pp_summary : Format.formatter -> summary -> unit
(** The per-phase table the CLI's [stats] subcommand prints. *)

(** {1 Fleet stitching}

    [stats --fleet] reconstructs each routed request's causal tree from the
    router's trace (the ["fleet.request"] root marks the supervisor drained)
    plus every per-shard trace stream (the ["server.request"] spans stamped
    with the same trace id). *)

(** One shard-side leg of a routed request. *)
type leg = {
  lg_tag : string;  (** emitting instance's tag (["shard0"]); ["?"] if untagged *)
  lg_span : int;  (** shard-local span id *)
  lg_parent_span : int;  (** router span id ([req_pspan]); [-1] if absent *)
  lg_ts : float;  (** shard-local clock — ordering is per-stream only *)
  lg_dur_s : float option;  (** [None]: span never closed (crash mid-request) *)
  lg_ok : bool option;
}

type tree = {
  tr_trace : string;
  tr_root : Telemetry.event option;  (** the router's ["fleet.request"] mark *)
  tr_span : int;  (** router span id; [-1] when the root is missing *)
  tr_status : string;
  tr_shards : int list;  (** covering ids from the root *)
  tr_missing : int list;
  tr_coverage : float option;
  tr_spent : (float * float) option;  (** fleet [(ε, δ)] stamped on the answer *)
  tr_legs : leg list;  (** ascending shard-local timestamp *)
  tr_complete : bool;
      (** root present, contributing set non-empty, and every contributing
          shard has a leg *)
}

val stitch : fleet:Telemetry.event list -> shards:Telemetry.event list list -> tree list
(** Join root marks (from the fleet/router trace) with shard legs (one event
    list per shard trace file, any number of incarnations each) on the trace
    id. Trees are returned in first-seen order; a tree may lack its root
    (shard span whose router mark was dropped) or lack legs (fan-out that
    never reached a shard) — both are diagnostic, not errors. *)
