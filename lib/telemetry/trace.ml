(* Offline side of the telemetry layer: read a JSONL trace back into events,
   check its structural invariants, and aggregate it into the per-phase
   tables the CLI's [stats] subcommand prints.

   The parser handles exactly the flat-object subset [Telemetry.event_to_json]
   emits: one object per line, string/number/bool/null values, no nesting.
   Keeping it in-tree (~100 lines) is what lets the library stay
   dependency-free. *)

let ( let* ) = Result.bind

(* --- a minimal flat-JSON-object parser --- *)

type scalar = J_int of int | J_float of float | J_bool of bool | J_str of string | J_null

let parse_error line what = Error (Printf.sprintf "line %d: %s" line what)

let parse_object ~line s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then begin
      advance ();
      Ok ()
    end
    else parse_error line (Printf.sprintf "expected %C at byte %d" c !pos)
  in
  let parse_string () =
    let* () = expect '"' in
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_error line "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
            advance ();
            Ok (Buffer.contents b)
        | '\\' ->
            advance ();
            if !pos >= n then parse_error line "unterminated escape"
            else begin
              (match s.[!pos] with
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'u' ->
                  if !pos + 4 < n then begin
                    let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
                    if code < 0x80 then Buffer.add_char b (Char.chr code)
                    else Buffer.add_string b (Printf.sprintf "\\u%04x" code);
                    pos := !pos + 4
                  end
              | c -> Buffer.add_char b c);
              advance ();
              go ()
            end
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ()
  in
  let parse_scalar () =
    skip_ws ();
    match peek () with
    | Some '"' -> Result.map (fun v -> J_str v) (parse_string ())
    | Some 't' when !pos + 4 <= n && String.sub s !pos 4 = "true" ->
        pos := !pos + 4;
        Ok (J_bool true)
    | Some 'f' when !pos + 5 <= n && String.sub s !pos 5 = "false" ->
        pos := !pos + 5;
        Ok (J_bool false)
    | Some 'n' when !pos + 4 <= n && String.sub s !pos 4 = "null" ->
        pos := !pos + 4;
        Ok J_null
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          &&
          match s.[!pos] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        do
          advance ()
        done;
        let tok = String.sub s start (!pos - start) in
        if tok = "" then parse_error line (Printf.sprintf "bad value at byte %d" start)
        else begin
          match int_of_string_opt tok with
          | Some i -> Ok (J_int i)
          | None -> (
              match float_of_string_opt tok with
              | Some v -> Ok (J_float v)
              | None -> parse_error line (Printf.sprintf "bad number %S" tok))
        end
    | None -> parse_error line "unexpected end of line"
  in
  let* () = expect '{' in
  let rec members acc =
    skip_ws ();
    match peek () with
    | Some '}' ->
        advance ();
        Ok (List.rev acc)
    | _ ->
        let* key = parse_string () in
        let* () = expect ':' in
        let* v = parse_scalar () in
        skip_ws ();
        let acc = (key, v) :: acc in
        if peek () = Some ',' then begin
          advance ();
          members acc
        end
        else
          let* () = expect '}' in
          Ok (List.rev acc)
  in
  let* obj = members [] in
  skip_ws ();
  if !pos <> n then parse_error line "trailing garbage after object" else Ok obj

(* --- object -> event --- *)

let to_value = function
  | J_int i -> Telemetry.Int i
  | J_float v -> Telemetry.Float v
  | J_bool v -> Telemetry.Bool v
  | J_str "nan" -> Telemetry.Float Float.nan
  | J_str "inf" -> Telemetry.Float Float.infinity
  | J_str "-inf" -> Telemetry.Float Float.neg_infinity
  | J_str s -> Telemetry.Str s
  | J_null -> Telemetry.Str "null"

let number what ~line = function
  | J_int i -> Ok (float_of_int i)
  | J_float v -> Ok v
  | _ -> parse_error line (Printf.sprintf "field %S is not a number" what)

let event_of_line ~line s =
  let* obj = parse_object ~line s in
  let field k = List.assoc_opt k obj in
  let* ts =
    match field "ts" with
    | Some v -> number "ts" ~line v
    | None -> parse_error line "missing \"ts\""
  in
  let* round =
    match field "round" with
    | Some (J_int i) -> Ok i
    | Some _ -> parse_error line "\"round\" is not an int"
    | None -> parse_error line "missing \"round\""
  in
  let* kind =
    match field "kind" with
    | Some (J_str k) -> (
        match Telemetry.kind_of_string k with
        | Some kind -> Ok kind
        | None -> parse_error line (Printf.sprintf "unknown kind %S" k))
    | Some _ | None -> parse_error line "missing or malformed \"kind\""
  in
  let* name =
    match field "name" with
    | Some (J_str n) -> Ok n
    | Some _ | None -> parse_error line "missing or malformed \"name\""
  in
  let fields =
    List.filter_map
      (fun (k, v) ->
        match k with
        | "ts" | "round" | "kind" | "name" -> None
        | k -> Some (k, to_value v))
      obj
  in
  Ok { Telemetry.ts; round; kind; name; fields }

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go line acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> go (line + 1) acc
        | s -> (
            match event_of_line ~line s with
            | Ok e -> go (line + 1) (e :: acc)
            | Error m -> Error m)
      in
      go 1 [])

(* --- structural validation --- *)

let float_field e name =
  match List.assoc_opt name e.Telemetry.fields with
  | Some (Telemetry.Float v) -> Some v
  | Some (Telemetry.Int i) -> Some (float_of_int i)
  | _ -> None

let int_field e name =
  match List.assoc_opt name e.Telemetry.fields with Some (Telemetry.Int i) -> Some i | _ -> None

let str_field e name =
  match List.assoc_opt name e.Telemetry.fields with Some (Telemetry.Str s) -> Some s | _ -> None

(* Ledger sums replayed from the per-event costs; used both by [validate]
   (against the cumulative totals carried in the events) and by callers
   comparing a trace against a live accountant. *)
let ledger_totals events =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun e ->
      if e.Telemetry.kind = Telemetry.Debit then begin
        let eps = Option.value ~default:0. (float_field e "eps") in
        let delta = Option.value ~default:0. (float_field e "delta") in
        let prev =
          Option.value ~default:(0., 0.) (Hashtbl.find_opt tbl e.Telemetry.name)
        in
        Hashtbl.replace tbl e.Telemetry.name (fst prev +. eps, snd prev +. delta)
      end)
    events;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let validate events =
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun m -> if !problem = None then problem := Some m) fmt in
  (* timestamps and rounds monotone *)
  let _ =
    List.fold_left
      (fun (ts, round, i) e ->
        if e.Telemetry.ts < ts -. 1e-9 then
          fail "event %d: timestamp went backwards (%.9f after %.9f)" i e.Telemetry.ts ts;
        if e.Telemetry.round >= 0 && e.Telemetry.round < round then
          fail "event %d: round id went backwards (%d after %d)" i e.Telemetry.round round;
        (Float.max ts e.Telemetry.ts, Int.max round e.Telemetry.round, i + 1))
      (0., -1, 0) events
  in
  (* span begin/end pairing with non-negative durations *)
  let open_spans = Hashtbl.create 32 in
  List.iteri
    (fun i e ->
      match e.Telemetry.kind with
      | Telemetry.Span_begin -> (
          match int_field e "id" with
          | None -> fail "event %d: span_begin without id" i
          | Some id ->
              if Hashtbl.mem open_spans id then fail "event %d: duplicate span id %d" i id
              else Hashtbl.add open_spans id e.Telemetry.name)
      | Telemetry.Span_end -> (
          match int_field e "id" with
          | None -> fail "event %d: span_end without id" i
          | Some id -> (
              match Hashtbl.find_opt open_spans id with
              | None -> fail "event %d: span_end for unopened id %d" i id
              | Some name ->
                  if name <> e.Telemetry.name then
                    fail "event %d: span id %d closes %S but opened %S" i id e.Telemetry.name name;
                  Hashtbl.remove open_spans id;
                  (match float_field e "dur_s" with
                  | Some d when d < 0. -> fail "event %d: negative span duration" i
                  | Some _ -> ()
                  | None -> fail "event %d: span_end without dur_s" i)))
      | _ -> ())
    events;
  if Hashtbl.length open_spans > 0 then begin
    Hashtbl.iter (fun id name -> fail "span %d (%s) never closed" id name) open_spans
  end;
  (* debit events: the carried cumulative totals must equal the replayed sum *)
  let running = Hashtbl.create 4 in
  List.iteri
    (fun i e ->
      if e.Telemetry.kind = Telemetry.Debit then begin
        let eps = Option.value ~default:0. (float_field e "eps") in
        let delta = Option.value ~default:0. (float_field e "delta") in
        let eps_sum, delta_sum =
          Option.value ~default:(0., 0.) (Hashtbl.find_opt running e.Telemetry.name)
        in
        let eps_sum = eps_sum +. eps and delta_sum = delta_sum +. delta in
        Hashtbl.replace running e.Telemetry.name (eps_sum, delta_sum);
        (match float_field e "eps_total" with
        | Some t when Float.abs (t -. eps_sum) > 1e-9 *. Float.max 1. eps_sum ->
            fail "event %d: ledger %S eps_total %.12g but replayed sum is %.12g" i e.Telemetry.name
              t eps_sum
        | _ -> ());
        match float_field e "delta_total" with
        | Some t when Float.abs (t -. delta_sum) > 1e-9 *. Float.max 1e-12 delta_sum ->
            fail "event %d: ledger %S delta_total %.12g but replayed sum is %.12g" i
              e.Telemetry.name t delta_sum
        | _ -> ()
      end)
    events;
  (* final-ledger marks, when present, must match the replayed sums *)
  let totals = ledger_totals events in
  List.iter
    (fun e ->
      if e.Telemetry.kind = Telemetry.Mark && e.Telemetry.name = "ledger.final" then begin
        match str_field e "ledger" with
        | None -> fail "ledger.final mark without a ledger tag"
        | Some tag -> (
            let eps = Option.value ~default:0. (float_field e "eps") in
            let delta = Option.value ~default:0. (float_field e "delta") in
            match List.assoc_opt tag totals with
            | None ->
                if eps <> 0. || delta <> 0. then
                  fail "ledger.final for %S but the trace has no debits under it" tag
            | Some (eps_sum, delta_sum) ->
                if Float.abs (eps -. eps_sum) > 1e-9 *. Float.max 1. eps_sum then
                  fail "ledger %S: final eps %.12g but trace debits sum to %.12g" tag eps eps_sum;
                if Float.abs (delta -. delta_sum) > 1e-9 *. Float.max 1e-12 delta_sum then
                  fail "ledger %S: final delta %.12g but trace debits sum to %.12g" tag delta
                    delta_sum)
      end)
    events;
  match !problem with None -> Ok () | Some m -> Error m

(* --- fleet stitching (stats --fleet) --- *)

(* One shard-side leg of a routed request: a "server.request" span carrying
   the router's trace id (and the router span id as parent). The begin event
   holds the identifying fields; the end event (joined by span id within the
   same instance's stream) holds duration and outcome. A leg with no end
   event is a span the shard never closed — a crash mid-request. *)
type leg = {
  lg_tag : string;  (* the emitting instance's tag ("shard0"), "?" if untagged *)
  lg_span : int;
  lg_parent_span : int;  (* router span id from req_pspan; -1 if absent *)
  lg_ts : float;
  lg_dur_s : float option;
  lg_ok : bool option;
}

type tree = {
  tr_trace : string;
  tr_root : Telemetry.event option;  (* the router's fleet.request mark *)
  tr_span : int;  (* router span id; -1 when the root is missing *)
  tr_status : string;
  tr_shards : int list;  (* covering ids, from the root *)
  tr_missing : int list;
  tr_coverage : float option;
  tr_spent : (float * float) option;
  tr_legs : leg list;  (* ascending shard-local timestamp *)
  tr_complete : bool;
      (* root present, non-empty contributing set, and every contributing
         shard has a leg *)
}

let parse_id_list s =
  if s = "" then []
  else
    String.split_on_char ',' s
    |> List.filter_map int_of_string_opt
    |> List.sort_uniq compare

(* Collect the server.request legs of one instance's event stream, joining
   span begin/end by id. Only spans stamped with a trace id participate —
   un-traced requests (direct broker clients) stay out of the forest. *)
let legs_of_stream events =
  let open_spans = Hashtbl.create 32 in
  let legs = ref [] in
  List.iter
    (fun e ->
      match e.Telemetry.kind with
      | Telemetry.Span_begin when e.Telemetry.name = "server.request" -> (
          match (int_field e "id", str_field e "trace") with
          | Some id, Some trace ->
              let leg =
                {
                  lg_tag = Option.value ~default:"?" (str_field e "tag");
                  lg_span = id;
                  lg_parent_span = Option.value ~default:(-1) (int_field e "parent_span");
                  lg_ts = e.Telemetry.ts;
                  lg_dur_s = None;
                  lg_ok = None;
                }
              in
              Hashtbl.replace open_spans id (trace, leg)
          | _ -> ())
      | Telemetry.Span_end -> (
          match int_field e "id" with
          | Some id -> (
              match Hashtbl.find_opt open_spans id with
              | Some (trace, leg) ->
                  Hashtbl.remove open_spans id;
                  legs :=
                    ( trace,
                      {
                        leg with
                        lg_dur_s = float_field e "dur_s";
                        lg_ok =
                          (match List.assoc_opt "ok" e.Telemetry.fields with
                          | Some (Telemetry.Bool b) -> Some b
                          | _ -> None);
                      } )
                    :: !legs
              | None -> ())
          | None -> ())
      | _ -> ())
    events;
  (* spans left open: the shard died mid-request — keep them, they are the
     interesting legs *)
  Hashtbl.iter (fun _ (trace, leg) -> legs := (trace, leg) :: !legs) open_spans;
  !legs

let stitch ~fleet ~shards =
  let by_trace = Hashtbl.create 64 in
  let order = ref [] in
  let tree_for trace =
    match Hashtbl.find_opt by_trace trace with
    | Some t -> t
    | None ->
        let t =
          ref
            {
              tr_trace = trace;
              tr_root = None;
              tr_span = -1;
              tr_status = "?";
              tr_shards = [];
              tr_missing = [];
              tr_coverage = None;
              tr_spent = None;
              tr_legs = [];
              tr_complete = false;
            }
        in
        Hashtbl.add by_trace trace t;
        order := trace :: !order;
        t
  in
  List.iter
    (fun e ->
      if e.Telemetry.kind = Telemetry.Mark && e.Telemetry.name = "fleet.request" then
        match str_field e "trace" with
        | None -> ()
        | Some trace ->
            let t = tree_for trace in
            let spent =
              match (float_field e "spent_eps", float_field e "spent_delta") with
              | Some eps, Some delta -> Some (eps, delta)
              | _ -> None
            in
            t :=
              {
                !t with
                tr_root = Some e;
                tr_span = Option.value ~default:(-1) (int_field e "span");
                tr_status = Option.value ~default:"?" (str_field e "status");
                tr_shards =
                  Option.value ~default:[] (Option.map parse_id_list (str_field e "shards"));
                tr_missing =
                  Option.value ~default:[]
                    (Option.map parse_id_list (str_field e "missing"));
                tr_coverage = float_field e "coverage";
                tr_spent = spent;
              })
    fleet;
  List.iter
    (fun stream ->
      List.iter
        (fun (trace, leg) ->
          let t = tree_for trace in
          t := { !t with tr_legs = leg :: !t.tr_legs })
        (legs_of_stream stream))
    shards;
  List.rev_map
    (fun trace ->
      let t = !(Hashtbl.find by_trace trace) in
      let legs = List.sort (fun a b -> compare a.lg_ts b.lg_ts) t.tr_legs in
      let contributing =
        List.filter (fun i -> not (List.mem i t.tr_missing)) t.tr_shards
      in
      let complete =
        t.tr_root <> None && contributing <> []
        && List.for_all
             (fun i ->
               List.exists (fun l -> l.lg_tag = Printf.sprintf "shard%d" i) legs)
             contributing
      in
      { t with tr_legs = legs; tr_complete = complete })
    !order

(* --- aggregation (the CLI's stats table) --- *)

type span_row = { sr_name : string; sr_calls : int; sr_total_s : float; sr_max_s : float }

type obs_row = {
  or_name : string;
  or_count : int;
  or_mean : float;
  or_min : float;
  or_max : float;
}

type summary = {
  events : int;
  rounds : int;
  wall_s : float;
  span_rows : span_row list;
  counter_rows : (string * int) list;
  obs_rows : obs_row list;
  ledger_rows : (string * (float * float * int)) list;
  marks : (string * int) list;
}

let summarize events =
  let rounds = List.fold_left (fun acc e -> Int.max acc e.Telemetry.round) 0 events in
  let wall_s =
    match (events, List.rev events) with
    | first :: _, last :: _ -> last.Telemetry.ts -. first.Telemetry.ts
    | _ -> 0.
  in
  let spans = Hashtbl.create 16 in
  let counters = Hashtbl.create 16 in
  let observations = Hashtbl.create 16 in
  let ledger_tbl = Hashtbl.create 4 in
  let marks = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e.Telemetry.kind with
      | Telemetry.Span_end ->
          let d = Option.value ~default:0. (float_field e "dur_s") in
          let calls, total, mx =
            Option.value ~default:(0, 0., 0.) (Hashtbl.find_opt spans e.Telemetry.name)
          in
          Hashtbl.replace spans e.Telemetry.name (calls + 1, total +. d, Float.max mx d)
      | Telemetry.Count ->
          (* the last emitted total is the final counter value *)
          Hashtbl.replace counters e.Telemetry.name
            (Option.value ~default:0 (int_field e "total"))
      | Telemetry.Debit ->
          let eps = Option.value ~default:0. (float_field e "eps") in
          let delta = Option.value ~default:0. (float_field e "delta") in
          let e_sum, d_sum, n =
            Option.value ~default:(0., 0., 0) (Hashtbl.find_opt ledger_tbl e.Telemetry.name)
          in
          Hashtbl.replace ledger_tbl e.Telemetry.name (e_sum +. eps, d_sum +. delta, n + 1)
      | Telemetry.Observe ->
          let v = Option.value ~default:0. (float_field e "value") in
          let count, sum, mn, mx =
            Option.value ~default:(0, 0., Float.infinity, Float.neg_infinity)
              (Hashtbl.find_opt observations e.Telemetry.name)
          in
          Hashtbl.replace observations e.Telemetry.name
            (count + 1, sum +. v, Float.min mn v, Float.max mx v)
      | Telemetry.Mark ->
          Hashtbl.replace marks e.Telemetry.name
            (1 + Option.value ~default:0 (Hashtbl.find_opt marks e.Telemetry.name))
      | Telemetry.Span_begin -> ())
    events;
  {
    events = List.length events;
    rounds;
    wall_s;
    span_rows =
      List.sort compare
        (Hashtbl.fold
           (fun name (calls, total, mx) acc ->
             { sr_name = name; sr_calls = calls; sr_total_s = total; sr_max_s = mx } :: acc)
           spans []);
    counter_rows = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters []);
    obs_rows =
      List.sort compare
        (Hashtbl.fold
           (fun name (count, sum, mn, mx) acc ->
             {
               or_name = name;
               or_count = count;
               or_mean = (if count = 0 then 0. else sum /. float_of_int count);
               or_min = mn;
               or_max = mx;
             }
             :: acc)
           observations []);
    ledger_rows = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) ledger_tbl []);
    marks = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) marks []);
  }

(* Every overflow/drop counter, whatever layer coined it, ends in _dropped
   or _drops by convention — one predicate keeps the losses section honest
   as new counters appear. *)
let losses s =
  let ends_with suffix name =
    let ls = String.length suffix and ln = String.length name in
    ln >= ls && String.sub name (ln - ls) ls = suffix
  in
  List.filter
    (fun (name, v) -> v > 0 && (ends_with "_dropped" name || ends_with "_drops" name))
    s.counter_rows

let pp_summary fmt s =
  let open Format in
  fprintf fmt "@[<v>";
  fprintf fmt "%d events over %d rounds, %.3f s wall clock@," s.events s.rounds s.wall_s;
  if s.span_rows <> [] then begin
    fprintf fmt "@,%-28s %8s %12s %12s %12s@," "span" "calls" "total s" "mean ms" "max ms";
    List.iter
      (fun r ->
        fprintf fmt "%-28s %8d %12.4f %12.4f %12.4f@," r.sr_name r.sr_calls r.sr_total_s
          (if r.sr_calls = 0 then 0. else 1e3 *. r.sr_total_s /. float_of_int r.sr_calls)
          (1e3 *. r.sr_max_s))
      s.span_rows
  end;
  if s.counter_rows <> [] then begin
    fprintf fmt "@,%-28s %8s@," "counter" "total";
    List.iter (fun (k, v) -> fprintf fmt "%-28s %8d@," k v) s.counter_rows
  end;
  if s.obs_rows <> [] then begin
    fprintf fmt "@,%-28s %8s %12s %12s %12s@," "observation" "count" "mean" "min" "max";
    List.iter
      (fun r ->
        fprintf fmt "%-28s %8d %12.6g %12.6g %12.6g@," r.or_name r.or_count r.or_mean r.or_min
          r.or_max)
      s.obs_rows
  end;
  if s.ledger_rows <> [] then begin
    fprintf fmt "@,%-28s %8s %14s %14s@," "ledger" "debits" "eps total" "delta total";
    List.iter
      (fun (k, (eps, delta, n)) -> fprintf fmt "%-28s %8d %14.6g %14.3e@," k n eps delta)
      s.ledger_rows
  end;
  if s.marks <> [] then begin
    fprintf fmt "@,%-28s %8s@," "mark" "count";
    List.iter (fun (k, v) -> fprintf fmt "%-28s %8d@," k v) s.marks
  end;
  fprintf fmt "@]"
