(* Live metrics plane: the low-overhead sibling of the Telemetry trace
   layer. Where Telemetry is a single-writer event *stream* (every event
   preserved, owned by one thread), Metrics is a lock-free *aggregate*
   (histograms, rates, gauges, ledger burn) that any thread or domain may
   update concurrently — handles are plain records of [Atomic.t] cells, so
   the hot path is a handful of unboxed atomic ops and never allocates.

   Sums and maxima are kept in scaled fixed-point integers rather than
   float atomics: an OCaml [float Atomic.t] would box a fresh float on
   every update, and this layer promises an allocation-free hot path.
   Generic values (latencies in seconds, batch sizes, coverage fractions)
   use micro-units (1e6); ledger epsilon uses nano-units (1e9) and delta
   femto-units (1e15) because privacy debits are routinely 1e-6-scale and
   the burn-rate forecast must not round them away.

   A disabled registry ([Metrics.disabled ()]) hands out inert handles:
   every operation is one branch on an immutable bool — no clock read, no
   atomic traffic — so instrumented code pays nothing when the operator
   did not ask for metrics. *)

let scale = 1e6
let eps_scale = 1e9
let delta_scale = 1e15

let to_scaled s v =
  (* clamp instead of overflowing: 4.6e12 seconds of summed latency is not
     a number this plane needs to distinguish from "saturated" *)
  if Float.is_nan v || v <= 0. then 0
  else if v *. s >= 4.0e18 then max_int
  else int_of_float (v *. s)

let of_scaled s v = float_of_int v /. s

(* saturating add so a long-lived process degrades to a pinned sum
   instead of wrapping negative *)
let atomic_add cell by =
  let rec go () =
    let cur = Atomic.get cell in
    let next = if cur > max_int - by then max_int else cur + by in
    if not (Atomic.compare_and_set cell cur next) then go ()
  in
  if by > 0 then go ()

let atomic_max cell v =
  let rec go () =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then go ()
  in
  go ()

(* --- histograms --- *)

(* Fixed log2-scaled buckets: bucket [i] covers [base*2^i, base*2^(i+1)),
   bucket 0 additionally absorbs everything below [base]. With base = 1 us
   and 48 buckets the top bucket opens at ~1.4e8 — wide enough for every
   latency, batch size or queue depth this system produces, so the mapping
   never needs to grow and observation is branch + shift-free. *)
let buckets = 48

let bucket_base = 1e-6

let bucket_index v =
  if v <= bucket_base then 0
  else
    let i = int_of_float (Float.log2 (v /. bucket_base)) in
    if i < 0 then 0 else if i >= buckets then buckets - 1 else i

(* geometric midpoint of bucket [i]: the quantile estimate for ranks that
   land inside it (exact to within the bucket's factor-of-2 width) *)
let bucket_mid i = bucket_base *. Float.pow 2. (float_of_int i) *. Float.sqrt 2.

type histogram = {
  h_name : string;
  h_enabled : bool;
  h_counts : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;  (* micro-units *)
  h_max : int Atomic.t;  (* micro-units *)
}

let make_histogram ~enabled name =
  {
    h_name = name;
    h_enabled = enabled;
    h_counts = Array.init (if enabled then buckets else 1) (fun _ -> Atomic.make 0);
    h_count = Atomic.make 0;
    h_sum = Atomic.make 0;
    h_max = Atomic.make 0;
  }

let observe h v =
  if h.h_enabled then begin
    Atomic.incr h.h_counts.(bucket_index v);
    Atomic.incr h.h_count;
    let sv = to_scaled scale v in
    atomic_add h.h_sum sv;
    atomic_max h.h_max sv
  end

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_max : float;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
}

let quantile counts total q =
  if total = 0 then 0.
  else begin
    let rank = int_of_float (Float.round (q *. float_of_int total)) in
    let rank = if rank < 1 then 1 else if rank > total then total else rank in
    let acc = ref 0 and found = ref (buckets - 1) and i = ref 0 in
    let n = Array.length counts in
    while !i < n && !acc < rank do
      acc := !acc + counts.(!i);
      if !acc >= rank then found := !i;
      incr i
    done;
    bucket_mid !found
  end

let hist_snapshot h =
  (* A racing observer can make count/sum momentarily disagree by one
     observation; snapshots are monitoring data, not accounting. *)
  let counts = Array.map Atomic.get h.h_counts in
  let total = Array.fold_left ( + ) 0 counts in
  let max_v = of_scaled scale (Atomic.get h.h_max) in
  {
    hs_count = Atomic.get h.h_count;
    hs_sum = of_scaled scale (Atomic.get h.h_sum);
    hs_max = max_v;
    hs_p50 = Float.min (quantile counts total 0.50) max_v;
    hs_p90 = Float.min (quantile counts total 0.90) max_v;
    hs_p99 = Float.min (quantile counts total 0.99) max_v;
  }

(* --- rolling-window rate counters --- *)

(* A ring of per-second slots: [tick] lands in slot [now mod slots] after
   (racily, harmlessly) resetting it if its stamped second is stale. The
   windowed rate sums slots stamped inside the window; [r_total] is exact
   and monotone regardless of slot races. *)
let slots = 64

type rate = {
  r_name : string;
  r_enabled : bool;
  r_clock : unit -> float;
  r_total : int Atomic.t;
  r_slot : int Atomic.t array;
  r_slot_sec : int Atomic.t array;
}

let make_rate ~enabled ~clock name =
  {
    r_name = name;
    r_enabled = enabled;
    r_clock = clock;
    r_total = Atomic.make 0;
    r_slot = Array.init (if enabled then slots else 1) (fun _ -> Atomic.make 0);
    r_slot_sec = Array.init (if enabled then slots else 1) (fun _ -> Atomic.make (-1));
  }

let slot_land ~sec ~slot ~by now i =
  let s = Atomic.get sec.(i) in
  if s <> now && Atomic.compare_and_set sec.(i) s now then Atomic.set slot.(i) 0;
  atomic_add slot.(i) by

let tick ?(by = 1) r =
  if r.r_enabled && by > 0 then begin
    atomic_add r.r_total by;
    let now = int_of_float (r.r_clock ()) in
    slot_land ~sec:r.r_slot_sec ~slot:r.r_slot ~by now (now mod slots)
  end

let window_sum ~sec ~slot ~now ~window_s =
  let acc = ref 0 in
  for i = 0 to Array.length slot - 1 do
    let s = Atomic.get sec.(i) in
    if s > now - window_s && s <= now then acc := !acc + Atomic.get slot.(i)
  done;
  !acc

type rate_snapshot = { rs_total : int; rs_per_s : float }

let rate_snapshot ?(window_s = 10) r =
  let total = Atomic.get r.r_total in
  if not r.r_enabled then { rs_total = total; rs_per_s = 0. }
  else
    let now = int_of_float (r.r_clock ()) in
    let w = if window_s < 1 then 1 else if window_s > slots - 2 then slots - 2 else window_s in
    let n = window_sum ~sec:r.r_slot_sec ~slot:r.r_slot ~now ~window_s:w in
    { rs_total = total; rs_per_s = float_of_int n /. float_of_int w }

(* --- gauges --- *)

type gauge = { g_name : string; g_enabled : bool; g_value : int Atomic.t (* micro-units *) }

let make_gauge ~enabled name = { g_name = name; g_enabled = enabled; g_value = Atomic.make 0 }
let set_gauge g v = if g.g_enabled then Atomic.set g.g_value (to_scaled scale v)
let gauge_value g = of_scaled scale (Atomic.get g.g_value)

(* --- privacy-ledger burn --- *)

(* Fed with *cumulative* ledger totals (what Budget.spent reports), not
   per-debit slices: cumulative feeds are idempotent under retries and
   crash-replay, and the monotone CAS below turns them back into windowed
   burn increments for the rate estimate. *)
type ledger = {
  l_name : string;
  l_enabled : bool;
  l_clock : unit -> float;
  l_eps : int Atomic.t;  (* nano-eps, cumulative *)
  l_delta : int Atomic.t;  (* femto-delta, cumulative *)
  l_debits : int Atomic.t;
  l_eps_budget : int Atomic.t;
  l_delta_budget : int Atomic.t;
  l_slot_eps : int Atomic.t array;  (* nano-eps burned, per-second ring *)
  l_slot_sec : int Atomic.t array;
}

let make_ledger ~enabled ~clock name =
  {
    l_name = name;
    l_enabled = enabled;
    l_clock = clock;
    l_eps = Atomic.make 0;
    l_delta = Atomic.make 0;
    l_debits = Atomic.make 0;
    l_eps_budget = Atomic.make 0;
    l_delta_budget = Atomic.make 0;
    l_slot_eps = Array.init (if enabled then slots else 1) (fun _ -> Atomic.make 0);
    l_slot_sec = Array.init (if enabled then slots else 1) (fun _ -> Atomic.make (-1));
  }

let set_ledger_budget l ~eps ~delta =
  if l.l_enabled then begin
    Atomic.set l.l_eps_budget (to_scaled eps_scale eps);
    Atomic.set l.l_delta_budget (to_scaled delta_scale delta)
  end

(* monotone CAS: returns how much [cell] grew, 0 on stale/racing feeds *)
let advance cell v =
  let rec go () =
    let cur = Atomic.get cell in
    if v <= cur then 0 else if Atomic.compare_and_set cell cur v then v - cur else go ()
  in
  go ()

let ledger_cum l ~eps ~delta ~debits =
  if l.l_enabled then begin
    let grew = advance l.l_eps (to_scaled eps_scale eps) in
    ignore (advance l.l_delta (to_scaled delta_scale delta));
    atomic_max l.l_debits debits;
    if grew > 0 then begin
      let now = int_of_float (l.l_clock ()) in
      slot_land ~sec:l.l_slot_sec ~slot:l.l_slot_eps ~by:grew now (now mod slots)
    end
  end

type ledger_snapshot = {
  ls_eps : float;
  ls_delta : float;
  ls_debits : int;
  ls_eps_budget : float;
  ls_delta_budget : float;
  ls_burn_eps_per_s : float;
  ls_rounds_left : float;  (** [infinity] when no budget or no debits yet *)
  ls_seconds_left : float;  (** [infinity] when the window saw no burn *)
}

let ledger_snapshot ?(window_s = 10) l =
  let eps = of_scaled eps_scale (Atomic.get l.l_eps) in
  let delta = of_scaled delta_scale (Atomic.get l.l_delta) in
  let debits = Atomic.get l.l_debits in
  let eps_budget = of_scaled eps_scale (Atomic.get l.l_eps_budget) in
  let delta_budget = of_scaled delta_scale (Atomic.get l.l_delta_budget) in
  let burn =
    if not l.l_enabled then 0.
    else
      let now = int_of_float (l.l_clock ()) in
      let w = if window_s < 1 then 1 else if window_s > slots - 2 then slots - 2 else window_s in
      of_scaled eps_scale (window_sum ~sec:l.l_slot_sec ~slot:l.l_slot_eps ~now ~window_s:w)
      /. float_of_int w
  in
  let remaining = Float.max 0. (eps_budget -. eps) in
  let rounds_left =
    if eps_budget <= 0. || debits = 0 || eps <= 0. then Float.infinity
    else remaining /. (eps /. float_of_int debits)
  in
  let seconds_left = if burn <= 0. || eps_budget <= 0. then Float.infinity else remaining /. burn in
  {
    ls_eps = eps;
    ls_delta = delta;
    ls_debits = debits;
    ls_eps_budget = eps_budget;
    ls_delta_budget = delta_budget;
    ls_burn_eps_per_s = burn;
    ls_rounds_left = rounds_left;
    ls_seconds_left = seconds_left;
  }

(* --- the registry --- *)

type t = {
  enabled : bool;
  clock : unit -> float;
  lock : Mutex.t;
  histograms : (string, histogram) Hashtbl.t;
  rates : (string, rate) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  ledgers : (string, ledger) Hashtbl.t;
  dummy_h : histogram;
  dummy_r : rate;
  dummy_g : gauge;
  dummy_l : ledger;
}

let make ~enabled ~clock =
  {
    enabled;
    clock;
    lock = Mutex.create ();
    histograms = Hashtbl.create 16;
    rates = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    ledgers = Hashtbl.create 16;
    dummy_h = make_histogram ~enabled:false "disabled";
    dummy_r = make_rate ~enabled:false ~clock "disabled";
    dummy_g = make_gauge ~enabled:false "disabled";
    dummy_l = make_ledger ~enabled:false ~clock "disabled";
  }

let create ?(clock = Unix.gettimeofday) () = make ~enabled:true ~clock
let disabled () = make ~enabled:false ~clock:(fun () -> 0.)
let is_enabled t = t.enabled

(* Registration takes the mutex (idempotent find-or-create, so wiring code
   can re-ask by name); handle *use* never does. Instrumented code should
   fetch handles once at wiring time and cache them. *)
let registered tbl lock name create_fn =
  Mutex.lock lock;
  let h =
    match Hashtbl.find_opt tbl name with
    | Some h -> h
    | None ->
        let h = create_fn name in
        Hashtbl.add tbl name h;
        h
  in
  Mutex.unlock lock;
  h

let histogram t name =
  if not t.enabled then t.dummy_h
  else registered t.histograms t.lock name (make_histogram ~enabled:true)

let rate t name =
  if not t.enabled then t.dummy_r
  else registered t.rates t.lock name (make_rate ~enabled:true ~clock:t.clock)

let gauge t name =
  if not t.enabled then t.dummy_g
  else registered t.gauges t.lock name (make_gauge ~enabled:true)

let ledger t name =
  if not t.enabled then t.dummy_l
  else registered t.ledgers t.lock name (make_ledger ~enabled:true ~clock:t.clock)

let sorted_values tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []

let sorted_by f l = List.sort (fun a b -> compare (f a) (f b)) l

let snapshot_lists t =
  Mutex.lock t.lock;
  let hs = sorted_values t.histograms
  and rs = sorted_values t.rates
  and gs = sorted_values t.gauges
  and ls = sorted_values t.ledgers in
  Mutex.unlock t.lock;
  ( sorted_by (fun h -> h.h_name) hs,
    sorted_by (fun r -> r.r_name) rs,
    sorted_by (fun g -> g.g_name) gs,
    sorted_by (fun l -> l.l_name) ls )

(* --- renderers --- *)

(* Same float convention as the trace layer: %.17g for finite values,
   quoted "nan"/"inf"/"-inf" otherwise (JSON has no literals for them). *)
let json_float v =
  if Float.is_finite v then Printf.sprintf "%.17g" v
  else if Float.is_nan v then "\"nan\""
  else if v > 0. then "\"inf\""
  else "\"-inf\""

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_obj b entries render =
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      Buffer.add_string b (json_escape name);
      Buffer.add_string b "\":";
      render v)
    entries;
  Buffer.add_char b '}'

let to_json t =
  let hs, rs, gs, ls = snapshot_lists t in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"enabled\":";
  Buffer.add_string b (if t.enabled then "true" else "false");
  Buffer.add_string b ",\"histograms\":";
  json_obj b
    (List.map (fun h -> (h.h_name, hist_snapshot h)) hs)
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "{\"count\":%d,\"sum\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}"
           s.hs_count (json_float s.hs_sum) (json_float s.hs_max) (json_float s.hs_p50)
           (json_float s.hs_p90) (json_float s.hs_p99)));
  Buffer.add_string b ",\"rates\":";
  json_obj b
    (List.map (fun r -> (r.r_name, rate_snapshot r)) rs)
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "{\"total\":%d,\"per_s\":%s}" s.rs_total (json_float s.rs_per_s)));
  Buffer.add_string b ",\"gauges\":";
  json_obj b
    (List.map (fun g -> (g.g_name, gauge_value g)) gs)
    (fun v -> Buffer.add_string b (json_float v));
  Buffer.add_string b ",\"ledgers\":";
  json_obj b
    (List.map (fun l -> (l.l_name, ledger_snapshot l)) ls)
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"eps\":%s,\"delta\":%s,\"debits\":%d,\"eps_budget\":%s,\"delta_budget\":%s,\"burn_eps_per_s\":%s,\"rounds_left\":%s,\"seconds_left\":%s}"
           (json_float s.ls_eps) (json_float s.ls_delta) s.ls_debits
           (json_float s.ls_eps_budget) (json_float s.ls_delta_budget)
           (json_float s.ls_burn_eps_per_s) (json_float s.ls_rounds_left)
           (json_float s.ls_seconds_left)));
  Buffer.add_char b '}';
  Buffer.contents b

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; everything else
   becomes '_'. Values may be +Inf/NaN (the exposition format allows them,
   unlike JSON). *)
let prom_name name =
  let b = Bytes.of_string ("pmw_" ^ name) in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  Bytes.to_string b

let prom_float v =
  if Float.is_finite v then Printf.sprintf "%.17g" v
  else if Float.is_nan v then "NaN"
  else if v > 0. then "+Inf"
  else "-Inf"

let to_prometheus t =
  let hs, rs, gs, ls = snapshot_lists t in
  let b = Buffer.create 1024 in
  List.iter
    (fun h ->
      let s = hist_snapshot h in
      let n = prom_name h.h_name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" n);
      Buffer.add_string b (Printf.sprintf "%s{quantile=\"0.5\"} %s\n" n (prom_float s.hs_p50));
      Buffer.add_string b (Printf.sprintf "%s{quantile=\"0.9\"} %s\n" n (prom_float s.hs_p90));
      Buffer.add_string b (Printf.sprintf "%s{quantile=\"0.99\"} %s\n" n (prom_float s.hs_p99));
      Buffer.add_string b (Printf.sprintf "%s_sum %s\n" n (prom_float s.hs_sum));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n s.hs_count);
      Buffer.add_string b (Printf.sprintf "%s_max %s\n" n (prom_float s.hs_max)))
    hs;
  List.iter
    (fun r ->
      let s = rate_snapshot r in
      let n = prom_name r.r_name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s_total counter\n" n);
      Buffer.add_string b (Printf.sprintf "%s_total %d\n" n s.rs_total);
      Buffer.add_string b (Printf.sprintf "# TYPE %s_per_s gauge\n" n);
      Buffer.add_string b (Printf.sprintf "%s_per_s %s\n" n (prom_float s.rs_per_s)))
    rs;
  List.iter
    (fun g ->
      let n = prom_name g.g_name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
      Buffer.add_string b (Printf.sprintf "%s %s\n" n (prom_float (gauge_value g))))
    gs;
  if ls <> [] then begin
    List.iter
      (fun (suffix, ty) ->
        Buffer.add_string b (Printf.sprintf "# TYPE pmw_ledger_%s %s\n" suffix ty))
      [
        ("eps", "gauge");
        ("delta", "gauge");
        ("eps_budget", "gauge");
        ("debits_total", "counter");
        ("burn_eps_per_s", "gauge");
        ("rounds_left", "gauge");
        ("seconds_left", "gauge");
      ];
    List.iter
      (fun l ->
        let s = ledger_snapshot l in
        let lbl = Printf.sprintf "{ledger=\"%s\"}" (json_escape l.l_name) in
        Buffer.add_string b (Printf.sprintf "pmw_ledger_eps%s %s\n" lbl (prom_float s.ls_eps));
        Buffer.add_string b
          (Printf.sprintf "pmw_ledger_delta%s %s\n" lbl (prom_float s.ls_delta));
        Buffer.add_string b
          (Printf.sprintf "pmw_ledger_eps_budget%s %s\n" lbl (prom_float s.ls_eps_budget));
        Buffer.add_string b (Printf.sprintf "pmw_ledger_debits_total%s %d\n" lbl s.ls_debits);
        Buffer.add_string b
          (Printf.sprintf "pmw_ledger_burn_eps_per_s%s %s\n" lbl
             (prom_float s.ls_burn_eps_per_s));
        Buffer.add_string b
          (Printf.sprintf "pmw_ledger_rounds_left%s %s\n" lbl (prom_float s.ls_rounds_left));
        Buffer.add_string b
          (Printf.sprintf "pmw_ledger_seconds_left%s %s\n" lbl (prom_float s.ls_seconds_left)))
      ls
  end;
  Buffer.contents b
