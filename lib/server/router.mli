(** The fleet's routing tier: fan a query out to its covering shards,
    compose the per-shard answers, and degrade {e typed} instead of failing
    when part of the fleet cannot contribute.

    {b Covering set}: a request scoped with [req_shards] covers exactly
    those ids; an unscoped request covers every shard. A single-shard cover
    is served by a direct call (no fan-out threads); a multi-shard cover
    fans out on one thread per shard with a per-shard deadline.

    {b Composition}: contributing shards are those that returned an
    [Answered] or [Degraded] theta in time. The composed theta is the
    record-weighted average of the contributors (each shard's weight is its
    share of the fleet's rows), and [coverage] is the contributed weight
    over the covering weight. The fleet verdict is the degradation algebra
    from the issue:

    - every covering shard contributed → [Answered] (or [Degraded] if any
      contributor degraded),
    - a strict, non-empty subset contributed →
      [Partial {missing_shards; coverage; …}] with a retry-after hint,
    - nobody contributed → [Refused].

    {b Accounting}: the response's [spent_eps]/[spent_delta] carry the
    fleet-level account — the coordinate-wise {e max} over every shard's
    last-observed ledger cumulative ({!Pmw_core.Budget.spent_parallel}'s
    parallel-composition rule; shards hold disjoint records, so a record's
    loss is its own shard's loss). A down shard contributes the spend last
    seen before it died, which its journal can only confirm or exceed —
    the fleet never reports spend that shrinks on a crash.

    {b Epochs}: composed answers are stamped with [rsp_epoch] — the
    {e oldest} dataset generation among the contributors, since a fleet
    answer is only as fresh as its stalest shard. When contributors span
    more than one generation ("epoch skew", transient while a roll
    propagates across the fleet), the blend mixes datasets that disagree
    about which ingested rows exist, so the verdict is downgraded:
    [Answered] becomes [Degraded "epoch skew: …"], and [Degraded]/[Partial]
    reasons get the skew appended.

    {b Ingest}: a request carrying [req_rows] is routed by {e row content},
    not by [req_shards] — each row goes to the shard owning it under
    [rt_ingest_route] (refused [Failed] when unset), the legs run in
    parallel and are joined without a deadline (ingest replies at admission
    speed), and the composed answer sums the per-shard
    [[|accepted; pending|]] thetas. Sub-requests reuse the client's [rid]
    with a [":s<i>"] suffix, so a retry re-hits each shard's dedup entry
    independently and converges without double-buffering any row. Shards
    that miss the fan-out surface as [Partial] with row-weighted coverage;
    no shard accepting is [Failed].

    {b Control plane} (enabled via [rt_allow_ctl], for the chaos harness
    and the metrics scraper): [ctl:health] answers with a per-shard
    state-code vector, [ctl:kill:<i>] force-crashes shard [i],
    [ctl:epochs] answers with the per-shard generation vector (-1 for a
    down shard), [ctl:epoch:<i>] asks shard [i]'s serializer to roll its
    epoch before the next batch (asynchronous; poll [ctl:epochs]),
    [ctl:spent] answers with the fleet [(ε, δ)], [ctl:metrics] answers
    with the live metrics snapshot as JSON in [rsp_body], and
    [ctl:metrics:prom] with the same snapshot in Prometheus text
    exposition. Control queries bypass the shards and consume no budget.

    {b Tracing}: every non-ctl request gets a trace id (adopted from
    [req_trace] when the client sent one, minted otherwise) and a
    router-side span id stamped into [req_pspan] before fan-out; shard
    spans log both, and the router queues one ["fleet.request"] root mark
    per request for the supervisor to drain ({!trace_marks}) into the
    fleet trace. [pmw_cli stats --fleet] stitches the two sides into causal
    trees. *)

type config = {
  rt_deadline_s : float;
      (** per-shard wait on a fan-out; answers past it count as missing
          ([<= 0] disables the deadline) *)
  rt_retry_after_s : float;  (** hint stamped on [Partial]/[Refused] *)
  rt_allow_ctl : bool;  (** serve [ctl:*] queries (chaos harness only) *)
  rt_ingest_route : (int -> int) option;
      (** the fleet's partition key for ingest: row value → owning shard id.
          Must agree with the {!Shard.partition} assignment used at boot
          (hash sharding routes new rows by the same mix; block/time-window
          sharding appends to the designated newest shard) — routing a row
          to a shard that does not own it would break the disjointness
          parallel composition rests on. [None] (the default) makes the
          router refuse ingest requests as [Failed]. *)
}

val default_config : config
(** [{ rt_deadline_s = 5.; rt_retry_after_s = 0.25; rt_allow_ctl = false;
      rt_ingest_route = None }] *)

type t

val create :
  ?config:config -> ?metrics:Pmw_telemetry.Metrics.t -> shards:Shard.t array -> unit -> t
(** [metrics] (default disabled) is the fleet-shared live registry: the
    router feeds [router.request_s] / [router.fanout_shards] /
    [router.coverage] histograms, per-verdict [fleet_*] rates, per-shard
    [router.shard<i>.contributed]/[.missing] outcome rates, and the
    ["fleet"] ledger (composed coordinate-wise-max burn). Pass the same
    registry to the shards and the listener for one fleet-wide snapshot.
    @raise Invalid_argument on an empty shard array. *)

val submit : t -> Protocol.request -> Protocol.response
(** Thread-safe, blocking; never raises on hostile input (unknown shard ids
    and malformed ctl queries map to [Failed] replies). *)

val shards : t -> Shard.t array

val fleet_spent : t -> Pmw_dp.Params.t
(** The fleet-level accounted spend: coordinate-wise max over every shard's
    last-observed cumulative. *)

val processed : t -> int
(** Fleet queries composed so far (ctl queries not included). *)

val counters : t -> (string * int) list
(** Verdict tallies ([fleet_answered], [fleet_degraded], [fleet_partial],
    [fleet_refused], [fleet_failed]) plus [fleet_ctl] and
    [fleet_trace_marks_dropped] (root marks lost to the pending-queue cap —
    a losses-section counter) — mirrored into the fleet telemetry by the
    supervisor's heartbeat (the router itself never touches a telemetry
    instance: submits run on many client threads, and emission is
    single-writer by contract). *)

val metrics : t -> Pmw_telemetry.Metrics.t
(** The registry handed to {!create} (or the disabled one). *)

val trace_marks : t -> (string * (string * Pmw_telemetry.Telemetry.value) list) list
(** Drain the pending ["fleet.request"] root marks, oldest first — called
    from the supervisor's heartbeat (single telemetry writer), which emits
    each as a mark on the fleet trace. The pending queue is capped; spill
    is counted in [fleet_trace_marks_dropped]. *)
