(** Fault-injecting Unix-socket proxy for chaos testing.

    [start] listens on [listen_path] and relays line traffic to the real
    server at [upstream], rolling an independent seeded fault per relayed
    line in each direction:

    - {b drop}: the line silently vanishes (the client's deadline fires);
    - {b truncate}: a random prefix is forwarded {e without} the newline and
      the connection is torn down — the receiver sees a torn final line;
    - {b garbage}: a line of random printable junk is injected before the
      real line (the server must answer the junk with a structured error
      and keep framing);
    - {b disconnect}: both directions are shut down mid-conversation;
    - {b delay}: the line is forwarded late (uniform in
      [[0, fl_delay_max_s]]).

    Probabilities are per-line and mutually exclusive (summed in the order
    drop, truncate, garbage, disconnect, delay; keep the sum ≤ 1).
    Randomness is {!Pmw_rng.Splitmix64} seeded from [fl_seed] and the
    connection index, so a chaos run is reproducible given its seed. *)

type config = {
  fl_seed : int64;
  fl_drop : float;
  fl_delay : float;
  fl_delay_max_s : float;
  fl_truncate : float;
  fl_garbage : float;
  fl_disconnect : float;
}

val default_config : config
(** Seeded, with a few percent of each fault class. *)

type t

val start : ?config:config -> listen_path:string -> upstream:string -> unit -> t
(** Raises [Unix.Unix_error] if the proxy socket cannot bind. The upstream
    is dialed per accepted connection, so the proxy may outlive (and
    predate) the server across restarts. *)

val stop : t -> unit
(** Close the listener and every live relay. Idempotent enough for
    shutdown paths. *)

val stats : t -> (string * int) list
(** Injected-fault tallies by class: [drop], [delay], [truncate],
    [garbage], [disconnect]. *)

val faults_injected : t -> int
(** Total disruptive faults (delays not counted). *)

val path : t -> string
