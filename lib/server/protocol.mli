(** Wire protocol for the concurrent query server: one JSON object per line
    in each direction, schema-versioned so a deployed analyst client and a
    newer server fail loudly instead of mis-parsing each other.

    A {b request} is [{"v":1, "id":<int>, "analyst":<string>,
    "query":<string>}] — the query is named, not inlined: the server resolves
    it against its registered workload, which both keeps the sensitive
    dataset's geometry out of the protocol and gives the broker
    physically-equal query values to share batched solves on.

    A {b response} echoes [id], carries the broker's global [seq] (the
    serializer's processing order — replaying the queries sequentially in
    [seq] order reproduces the transcript bit-for-bit), a [status] of
    [answered | degraded | refused | rejected | error] with a [reason] for
    everything but [answered], the released [theta] when there is one, and
    the service observations [batch] (how many requests shared the pass) and
    [queue_wait_s]. [rejected] is the admission controller speaking — the
    request never reached the mechanism (so no [seq] slot is consumed,
    [seq] is [-1]) and [retry_after_s] hints when to try again.

    Requests may stamp an optional ["rid"] — a client-chosen {e idempotency
    key}. The broker records the exact response line released for each
    [(analyst, rid)] in its write-ahead journal and dedup table, so a retry
    of the same rid (after a timeout, a dropped connection, or a server
    restart) returns the {e recorded} bytes — no budget double-spend, no
    fresh noise. Responses carry [spent_eps]/[spent_delta], the ledger's
    cumulative totals when the answer was released, which lets an external
    auditor check the journal covers everything any client ever saw.

    Floats use the telemetry convention: finite values as [%.17g] (which
    round-trips every double), NaN/±∞ as the strings ["nan"], ["inf"],
    ["-inf"]. Unknown fields are ignored (forward compatibility); a missing
    or different ["v"] is an error (versioning contract).

    {b Framing limits}: both decoders reject (with a structured [Error],
    never an exception) any line longer than {!max_line_bytes} or containing
    a NUL byte, before the JSON layer sees it. *)

(** {1 JSON values}

    The full nested JSON layer (the telemetry trace reader only parses flat
    objects, a response's [theta] needs arrays). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val json_to_string : json -> string
(** Compact, single-line. *)

val json_of_string : string -> (json, string) result
(** Whole-string parse: trailing non-whitespace bytes are an error. String
    escapes (including [\uXXXX] with surrogate pairs, decoded to UTF-8) are
    handled. *)

(** {1 Schema} *)

val version : int
(** Spoken on every line; currently [1]. The rid / spent fields are
    additive-optional, so version 1 still covers them. *)

val max_line_bytes : int
(** Hard cap on a single protocol line (currently 64 KiB). Longer lines are
    rejected by the decoders and by the server's bounded line reader. *)

type request = {
  req_id : int;  (** correlation id, echoed verbatim *)
  req_analyst : string;
  req_query : string;
  req_rid : string option;
      (** idempotency key: retries reusing the rid get the recorded answer *)
  req_shards : int list option;
      (** scope the query to these shard ids (fleet serving); [None] means
          every covering shard — the single-broker server ignores the field *)
  req_trace : string option;
      (** distributed-tracing id: the router stamps one when the client did
          not, and propagates it to every covering shard, whose
          ["server.request"] spans carry it as a ["trace"] field *)
  req_pspan : int option;
      (** parent span id in the {e caller's} span stream — on a router
          fan-out this is the router-side span, so [pmw_cli stats --fleet]
          can stitch per-shard spans under the fleet-level request *)
  req_rows : int list option;
      (** ingest: universe row indices to append to the dataset's ingest
          buffer (absorbed at the next epoch transition). Requests carrying
          rows skip quota/budget admission — ingest spends no privacy — and
          answer with [theta = [|accepted; pending|]]. Idempotent under
          [rid] like any other request. *)
}
(** Integers travel as JSON numbers — IEEE doubles — so ids must fit the
    exactly representable range [±2^53]; larger values are silently rounded
    by any standards-conforming JSON peer. *)

type status =
  | Answered
  | Degraded of string  (** answered from the frozen hypothesis; reason attached *)
  | Refused of string  (** the mechanism refused; ledger already consistent *)
  | Rejected of { retry_after_s : float option; reason : string }
      (** admission control said no before the mechanism saw the query *)
  | Failed of string  (** protocol or server error (e.g. unknown query name) *)
  | Partial of {
      missing_shards : int list;
      coverage : float;
      retry_after_s : float option;
      reason : string;
    }
      (** fleet answer composed from a strict subset of the covering shards:
          [missing_shards] are the ids that were down, quarantined, exhausted
          or past deadline, [coverage] is the record-weighted fraction of the
          covering population that did contribute, and [retry_after_s] hints
          when the missing shards may be back. A [Partial] is a {e success}
          for retry purposes — the theta is usable, just lower-fidelity. *)

type response = {
  rsp_id : int;  (** echo of the request's [id] *)
  rsp_seq : int;  (** global serializer order; [-1] when never processed *)
  rsp_status : status;
  rsp_theta : float array option;
  rsp_source : string option;  (** ["hypothesis"] or ["oracle"] *)
  rsp_update_index : int option;
  rsp_batch : int option;  (** size of the batch that served this request *)
  rsp_queue_wait_s : float option;
  rsp_spent_eps : float option;
      (** ledger cumulative ε when this answer was released *)
  rsp_spent_delta : float option;  (** ledger cumulative δ, same instant *)
  rsp_epoch : int option;
      (** dataset generation that served this answer; on a fleet compose,
          the {e minimum} across contributing shards (skew is surfaced in
          the status) *)
  rsp_body : string option;
      (** opaque payload for ctl-plane answers that don't fit the numeric
          [theta] channel — [ctl:metrics] returns its JSON snapshot (or
          Prometheus text) here. Must keep the whole encoded line under
          {!max_line_bytes}. *)
}

val status_tag : status -> string
(** The wire tag: ["answered"], ["degraded"], ["refused"], ["rejected"],
    ["error"] or ["partial"]. *)

val encode_request : request -> string
(** One line, no trailing newline. *)

val decode_request : string -> (request, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result
