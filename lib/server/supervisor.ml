module Telemetry = Pmw_telemetry.Telemetry
module Metrics = Pmw_telemetry.Metrics

let log_src = Logs.Src.create "pmw.supervisor" ~doc:"PMW serving-fleet shard supervisor"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  su_poll_s : float;
  su_backoff_base_s : float;
  su_backoff_max_s : float;
  su_flap_window_s : float;
  su_quarantine_after : int;
  su_heartbeat_every_s : float;
  su_epoch_every_s : float;
}

let default_config =
  {
    su_poll_s = 0.01;
    su_backoff_base_s = 0.02;
    su_backoff_max_s = 1.;
    su_flap_window_s = 2.;
    su_quarantine_after = 5;
    su_heartbeat_every_s = 1.;
    su_epoch_every_s = 0.;
  }

(* Per-shard supervision state; touched only by the monitor thread. *)
type watched = {
  w_shard : Shard.t;
  mutable w_strikes : int;
  mutable w_restart_at : float;  (** 0. = no restart scheduled *)
  mutable w_last_boot : float;
  mutable w_restarts : int;  (** successful restarts of this shard *)
  mutable w_quarantined : int;  (** 0 or 1 — quarantine is terminal *)
}

type t = {
  cfg : config;
  telemetry : Telemetry.t;
  extra : unit -> (string * int) list;
  extra_marks : unit -> (string * (string * Telemetry.value) list) list;
  watched : watched array;
  stop_flag : bool Atomic.t;
  n_restarts : int Atomic.t;
  n_quarantines : int Atomic.t;
  metrics : Metrics.t;
  m_restarts : Metrics.rate;
  m_quarantines : Metrics.rate;
  m_check : Metrics.histogram;
  mutable thread : Thread.t option;
}

(* Emit-the-delta mirroring (same trick as the broker's): [set_counter]
   never emits, and stats readers reconstruct counters from Count events. *)
let mirror_counter telemetry name total =
  let prev = Telemetry.counter telemetry name in
  if total > prev then Telemetry.incr ~by:(total - prev) telemetry name

(* The supervisor's own counters are mirrored from the authoritative
   tallies, never bumped ad hoc at incident sites: incident paths and the
   heartbeat both call this, and the delta rule makes the combination
   idempotent — each counter converges on its tally no matter how the two
   interleave. (The previous scheme emitted directly at incidents, so the
   fleet-level quarantine counter drifted from its documented name and any
   future mirror of the same name would have double-counted.) *)
let mirror_own t =
  mirror_counter t.telemetry "fleet_shard_restarts" (Atomic.get t.n_restarts);
  mirror_counter t.telemetry "fleet_quarantined" (Atomic.get t.n_quarantines);
  Array.iter
    (fun w ->
      let id = Shard.id w.w_shard in
      mirror_counter t.telemetry (Printf.sprintf "shard%d_restarts" id) w.w_restarts;
      mirror_counter t.telemetry
        (Printf.sprintf "shard%d_quarantined" id)
        w.w_quarantined)
    t.watched

let quarantine_shard t w ~now:_ =
  Shard.quarantine w.w_shard;
  Atomic.incr t.n_quarantines;
  w.w_quarantined <- 1;
  w.w_restart_at <- 0.;
  let id = Shard.id w.w_shard in
  Metrics.tick t.m_quarantines;
  mirror_own t;
  Telemetry.mark t.telemetry "shard.quarantined"
    ~fields:[ ("shard", Telemetry.Int id); ("strikes", Telemetry.Int w.w_strikes) ];
  Log.warn (fun m -> m "shard %d quarantined after %d rapid crashes" id w.w_strikes)

let schedule_restart t w ~now =
  let backoff =
    Float.min t.cfg.su_backoff_max_s
      (t.cfg.su_backoff_base_s *. Float.pow 2. (float_of_int (w.w_strikes - 1)))
  in
  w.w_restart_at <- now +. backoff;
  Telemetry.mark t.telemetry "shard.crashed"
    ~fields:
      [
        ("shard", Telemetry.Int (Shard.id w.w_shard));
        ("strikes", Telemetry.Int w.w_strikes);
        ("restart_in_s", Telemetry.Float backoff);
      ]

let handle_crashed t w ~now =
  if w.w_restart_at = 0. then begin
    (* fresh crash: a long stable run forgives earlier strikes *)
    if now -. w.w_last_boot > t.cfg.su_flap_window_s then w.w_strikes <- 0;
    w.w_strikes <- w.w_strikes + 1;
    if w.w_strikes > t.cfg.su_quarantine_after then quarantine_shard t w ~now
    else schedule_restart t w ~now
  end
  else if now >= w.w_restart_at then begin
    let id = Shard.id w.w_shard in
    let t0 = Unix.gettimeofday () in
    match Shard.start w.w_shard with
    | Ok () ->
        let boot_s = Unix.gettimeofday () -. t0 in
        Atomic.incr t.n_restarts;
        w.w_restarts <- w.w_restarts + 1;
        w.w_last_boot <- Unix.gettimeofday ();
        w.w_restart_at <- 0.;
        Metrics.tick t.m_restarts;
        mirror_own t;
        Telemetry.mark t.telemetry "shard.restarted"
          ~fields:
            [
              ("shard", Telemetry.Int id);
              ("incarnation", Telemetry.Int (Shard.incarnation w.w_shard));
              ("boot_s", Telemetry.Float boot_s);
            ];
        Log.info (fun m ->
            m "shard %d restarted (incarnation %d, boot %.3fs)" id
              (Shard.incarnation w.w_shard) boot_s)
    | Error why ->
        (* failed boot is another strike: back off harder or give up *)
        w.w_strikes <- w.w_strikes + 1;
        Telemetry.mark t.telemetry "shard.restart_failed"
          ~fields:[ ("shard", Telemetry.Int id); ("reason", Telemetry.Str why) ];
        if w.w_strikes > t.cfg.su_quarantine_after then quarantine_shard t w ~now
        else schedule_restart t w ~now
  end

let heartbeat t =
  let fields =
    Array.to_list
      (Array.map
         (fun w ->
           ( Printf.sprintf "shard%d" (Shard.id w.w_shard),
             Telemetry.Str (Shard.state_to_string (Shard.state w.w_shard)) ))
         t.watched)
  in
  let running =
    Array.fold_left
      (fun acc w -> if Shard.state w.w_shard = Shard.Running then acc + 1 else acc)
      0 t.watched
  in
  Telemetry.mark t.telemetry "fleet.heartbeat"
    ~fields:(("running", Telemetry.Int running) :: fields);
  mirror_own t;
  List.iter (fun (name, v) -> mirror_counter t.telemetry name v) (t.extra ());
  (* Drain marks queued by non-writer threads (the router's fleet.request
     root spans): the heartbeat is the single telemetry writer, so this is
     the only place they may be emitted. *)
  List.iter
    (fun (name, fields) -> Telemetry.mark t.telemetry name ~fields)
    (t.extra_marks ())

(* Time-driven epoch rolls: ask every Running shard's serializer to
   transition. The request is asynchronous and refused harmlessly by
   shards without epoch config, draining shards, or shards that die
   before acting on it — the transition itself stays crash-safe on the
   shard's side, so the supervisor never needs to know whether it landed. *)
let kick_epochs t =
  Array.iter
    (fun w ->
      if Shard.state w.w_shard = Shard.Running && Shard.request_epoch w.w_shard then begin
        Telemetry.mark t.telemetry "epoch.requested"
          ~fields:[ ("shard", Telemetry.Int (Shard.id w.w_shard)) ];
        Telemetry.incr t.telemetry "fleet_epoch_requests"
      end)
    t.watched

let monitor t =
  let last_beat = ref 0. in
  let last_epoch_kick = ref (Unix.gettimeofday ()) in
  let timed = Metrics.is_enabled t.metrics in
  while not (Atomic.get t.stop_flag) do
    let now = Unix.gettimeofday () in
    Array.iter
      (fun w ->
        match Shard.state w.w_shard with
        | Shard.Crashed -> handle_crashed t w ~now
        | _ -> ())
      t.watched;
    if t.cfg.su_epoch_every_s > 0. && now -. !last_epoch_kick >= t.cfg.su_epoch_every_s
    then begin
      last_epoch_kick := now;
      kick_epochs t
    end;
    if now -. !last_beat >= t.cfg.su_heartbeat_every_s then begin
      last_beat := now;
      heartbeat t
    end;
    (* supervisor.check_s: one full health pass over the fleet — creeping
       values here mean the monitor is being starved or a Shard.state lock
       is contended *)
    if timed then Metrics.observe t.m_check (Unix.gettimeofday () -. now);
    Thread.delay t.cfg.su_poll_s
  done;
  heartbeat t;
  Telemetry.mark t.telemetry "fleet.stop"
    ~fields:
      [
        ("restarts", Telemetry.Int (Atomic.get t.n_restarts));
        ("quarantines", Telemetry.Int (Atomic.get t.n_quarantines));
      ]

let start ?(config = default_config) ?telemetry ?(extra_counters = fun () -> [])
    ?(extra_marks = fun () -> []) ?(metrics = Metrics.disabled ()) ~shards () =
  let telemetry = match telemetry with Some t -> t | None -> Telemetry.null () in
  let now = Unix.gettimeofday () in
  let t =
    {
      cfg = config;
      telemetry;
      extra = extra_counters;
      extra_marks;
      watched =
        Array.map
          (fun s ->
            {
              w_shard = s;
              w_strikes = 0;
              w_restart_at = 0.;
              w_last_boot = now;
              w_restarts = 0;
              w_quarantined = 0;
            })
          shards;
      stop_flag = Atomic.make false;
      n_restarts = Atomic.make 0;
      n_quarantines = Atomic.make 0;
      metrics;
      m_restarts = Metrics.rate metrics "fleet_restarts";
      m_quarantines = Metrics.rate metrics "fleet_quarantines";
      m_check = Metrics.histogram metrics "supervisor.check_s";
      thread = None;
    }
  in
  t.thread <- Some (Thread.create monitor t);
  t

let stop t =
  Atomic.set t.stop_flag true;
  (match t.thread with None -> () | Some th -> Thread.join th);
  t.thread <- None

let restarts t = Atomic.get t.n_restarts
let quarantines t = Atomic.get t.n_quarantines

let quarantined t =
  Array.to_list t.watched
  |> List.filter_map (fun w ->
         if Shard.state w.w_shard = Shard.Quarantined then Some (Shard.id w.w_shard)
         else None)
  |> List.sort compare
