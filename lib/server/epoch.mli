(** Crash-safe dataset epoch transitions: snapshot, compaction, recovery.

    A shard serves one dataset {e generation} (epoch) at a time. Rolling to
    the next generation — absorbing ingested rows, re-anchoring the PMW
    hypothesis as the new epoch's prior, refreshing the budget pot, and
    compacting the write-ahead journal — must be atomic under [kill -9]
    and disk faults: recovery always lands on a {e whole} epoch, old or
    new, never a hybrid.

    {b The protocol} (run by the broker's serializer between batches):

    + {e Seal}: write the old session's checkpoint to {!seal_path}
      (crash-safe) and append an ["epoch.seal"] mark (fsynced) to the old
      journal. Nothing is committed yet — but a crash from here on can
      resume the {e exact} pre-transition state and re-run the transition
      deterministically.
    + {e Commit}: {!write_snapshot} — tmp, fsync, rename, dirsync. The
      rename of the epoch snapshot is the single commit point for the
      whole transition.
    + {e Roll forward}: build the new session, {!compact} the journal
      down to a single [Epoch] record, delete the seal. Every one of
      these steps is redone idempotently by {!recover} if a crash
      interrupts it.

    {b Fault injection}: every step calls {!probe} first; tests install a
    hook ({!set_fault_hook}) that raises at the step under test — an
    {!Injected} crash, or a [Unix.Unix_error] ([ENOSPC], [EIO])
    simulating the disk. The [*_write_mid] steps fire halfway through a
    tmp file's bytes, so a crash there leaves a genuinely torn file. *)

(** A named probe point inside the transition, in protocol order. *)
type step =
  | Seal_checkpoint  (** before writing the seal checkpoint *)
  | Seal_mark  (** before the old journal's ["epoch.seal"] mark + fsync *)
  | Snap_write  (** before writing the snapshot tmp *)
  | Snap_write_mid  (** halfway through the snapshot tmp bytes *)
  | Snap_fsync  (** before fsyncing the snapshot tmp *)
  | Snap_rename  (** before the commit rename *)
  | Snap_dirsync  (** before fsyncing the snapshot's directory *)
  | New_session  (** before building the next epoch's session *)
  | Compact_write  (** before writing the compacted journal tmp *)
  | Compact_write_mid  (** halfway through the compacted tmp bytes *)
  | Compact_fsync  (** before fsyncing the compacted tmp *)
  | Compact_rename  (** before swapping the compacted journal in *)
  | Compact_dirsync  (** before fsyncing the journal's directory *)
  | Seal_cleanup  (** before removing the now-superseded seal checkpoint *)

val all_steps : step list
(** Protocol order — what the chaos soak iterates over. *)

val step_to_string : step -> string

exception Injected of step * string
(** What a fault hook raises to simulate [kill -9] at a step. *)

val set_fault_hook : (step -> unit) -> unit
(** Install the process-global fault hook (chaos/tests only). The hook
    runs on the shard's serializer domain; storage is atomic so it may be
    swapped from another thread. *)

val clear_fault_hook : unit -> unit
val probe : step -> unit

(** The epoch snapshot — the transition's commit record. *)
type snapshot = {
  sn_epoch : int;  (** the generation this snapshot {e opens} *)
  sn_seq : int;  (** next answer seq at the transition point *)
  sn_base_eps : float;
      (** lifetime [ε] retired into sealed epochs, {e including} the one
          just sealed *)
  sn_base_delta : float;
  sn_absorbed : int array;
      (** ingest rows this transition folded into the dataset *)
  sn_prior : float array option;
      (** the sealed epoch's final hypothesis weights — the new epoch's
          re-anchor prior *)
  sn_dedup : ((string * string) * string) list;
      (** [((analyst, rid), response-line)] dedup seed carried across the
          compaction so retried rids still replay recorded bytes *)
  sn_ckpt : string option;  (** serialized checkpoint of the {e new} session *)
}

val seal_path : string -> string
(** [seal_path snapshot_path] — where the pre-transition seal checkpoint
    lives ([snapshot_path ^ ".seal"]). *)

val snapshot_to_string : snapshot -> string
(** Line-based, checksummed (fnv1a64 over the body) — a torn or corrupt
    snapshot is detected, never silently half-read. *)

val snapshot_of_string : string -> (snapshot, string) result

val write_snapshot : path:string -> snapshot -> unit
(** Durable commit: tmp, fsync, rename, dirsync — with {!probe} points
    threaded through. Raises on injected faults and real I/O errors; the
    caller (broker) lets the exception crash the shard so recovery runs. *)

val read_snapshot : path:string -> (snapshot option, string) result
(** [Ok None] when no snapshot exists (epoch 0, never transitioned). *)

val compact : journal_path:string -> epoch:int -> base:float * float -> seq:int -> unit
(** Atomically replace the journal with a single [Epoch] record (tmp,
    fsync, rename, dirsync; probed). Idempotent — exactly what
    roll-forward recovery redoes. The caller must have {e closed} the old
    journal handle and must re-open after. *)

(** What {!recover} hands the shard to rebuild a broker. *)
type boot = {
  bt_journal : Journal.t;  (** open, post-recovery journal handle *)
  bt_recovery : Journal.recovery;
  bt_epoch : int;  (** the whole epoch recovery landed on *)
  bt_base : float * float;  (** lifetime spend retired into sealed epochs *)
  bt_absorbed : int array;  (** dataset rows beyond the seed (cumulative) *)
  bt_prior : float array option;  (** hypothesis prior for this epoch *)
  bt_dedup : ((string * string) * string) list;
      (** snapshot dedup seed — the journal's own [rv_answers] come on top *)
  bt_seal : Pmw_session.Checkpoint.t option;
      (** a transition out of [bt_epoch] was in flight and had {e not}
          committed; resume this exact state and re-run it *)
  bt_rolled_forward : bool;  (** recovery redid an interrupted compaction *)
}

val recover : snapshot_path:string -> journal_path:string -> (boot, string) result
(** The recovery decision table (see docs/robustness.md). With [e_S] the
    snapshot's epoch (0 if none) and [e_J] the journal's:

    - [e_J = e_S] — in-epoch; resume from the seal if one survives.
    - [e_J < e_S] — the snapshot committed but compaction didn't finish:
      roll forward (redo the compaction, drop the superseded journal).
    - [e_J > e_S] — impossible for this protocol; hard error.

    Stale [.tmp]/[.compact] files are removed first. Never returns a
    hybrid: every field of [boot] describes one generation. *)
