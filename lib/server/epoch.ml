(* Epoch lifecycle: the durable artifacts of a dataset version transition.

   A transition must move a shard from generation e to e+1 atomically with
   respect to crashes, with THREE files in play: the seal checkpoint (the
   old session's exact state at the transition point), the epoch snapshot
   (the commit record: new epoch id, lifetime spend base, absorbed rows,
   re-anchor prior, dedup seed), and the compacted journal. The snapshot
   rename is the single commit point; everything before it recovers to the
   old epoch, everything after rolls forward to the new one. See
   docs/robustness.md for the recovery decision table. *)

module Checkpoint = Pmw_session.Checkpoint

let log_src = Logs.Src.create "pmw.epoch" ~doc:"PMW epoch transition/compaction events"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* --- fault injection ---

   Real ENOSPC/EIO cannot be provoked on demand, and kill -9 at a precise
   syscall boundary needs in-process control — so every transition step
   calls [probe] first, and tests install a hook that raises (an
   [Injected] crash, or a [Unix.Unix_error] simulating the disk) at the
   step under test. The [*_write_mid] steps fire halfway through writing a
   tmp file, so a hook crash there leaves a genuinely torn tmp. *)

type step =
  | Seal_checkpoint  (** before writing the seal checkpoint *)
  | Seal_mark  (** before the old journal's ["epoch.seal"] mark + fsync *)
  | Snap_write  (** before writing the snapshot tmp *)
  | Snap_write_mid  (** halfway through the snapshot tmp bytes *)
  | Snap_fsync  (** before fsyncing the snapshot tmp *)
  | Snap_rename  (** before the commit rename *)
  | Snap_dirsync  (** before fsyncing the snapshot's directory *)
  | New_session  (** before building the next epoch's session *)
  | Compact_write  (** before writing the compacted journal tmp *)
  | Compact_write_mid  (** halfway through the compacted tmp bytes *)
  | Compact_fsync  (** before fsyncing the compacted tmp *)
  | Compact_rename  (** before swapping the compacted journal in *)
  | Compact_dirsync  (** before fsyncing the journal's directory *)
  | Seal_cleanup  (** before removing the now-superseded seal checkpoint *)

let all_steps =
  [
    Seal_checkpoint;
    Seal_mark;
    Snap_write;
    Snap_write_mid;
    Snap_fsync;
    Snap_rename;
    Snap_dirsync;
    New_session;
    Compact_write;
    Compact_write_mid;
    Compact_fsync;
    Compact_rename;
    Compact_dirsync;
    Seal_cleanup;
  ]

let step_to_string = function
  | Seal_checkpoint -> "seal_checkpoint"
  | Seal_mark -> "seal_mark"
  | Snap_write -> "snap_write"
  | Snap_write_mid -> "snap_write_mid"
  | Snap_fsync -> "snap_fsync"
  | Snap_rename -> "snap_rename"
  | Snap_dirsync -> "snap_dirsync"
  | New_session -> "new_session"
  | Compact_write -> "compact_write"
  | Compact_write_mid -> "compact_write_mid"
  | Compact_fsync -> "compact_fsync"
  | Compact_rename -> "compact_rename"
  | Compact_dirsync -> "compact_dirsync"
  | Seal_cleanup -> "seal_cleanup"

exception Injected of step * string

(* Hook storage is an Atomic so chaos harnesses can swap it from a thread
   other than the shard's serializer domain without a data race. *)
let fault_hook : (step -> unit) option Atomic.t = Atomic.make None
let set_fault_hook f = Atomic.set fault_hook (Some f)
let clear_fault_hook () = Atomic.set fault_hook None
let probe step = match Atomic.get fault_hook with None -> () | Some f -> f step

(* --- durable write helpers (same pattern as Checkpoint.write) --- *)

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let write_all fd s ~from ~len =
  let b = Bytes.unsafe_of_string s in
  let written = ref 0 in
  while !written < len do
    match Unix.write fd b (from + !written) (len - !written) with
    | k -> written := !written + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* Write [content] to [path] via tmp + fsync + rename + dirsync, with the
   probe points threaded through. [mid] names the probe fired after the
   first half of the bytes — a hook crash there leaves a torn tmp that the
   next recovery must (and does) discard. *)
let commit_file ~tmp ~path ~write_step ~mid_step ~fsync_step ~rename_step ~dirsync_step content
    =
  probe write_step;
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let n = String.length content in
      let half = n / 2 in
      write_all fd content ~from:0 ~len:half;
      probe mid_step;
      write_all fd content ~from:half ~len:(n - half);
      probe fsync_step;
      Unix.fsync fd);
  probe rename_step;
  Sys.rename tmp path;
  probe dirsync_step;
  Checkpoint.fsync_dir (Filename.dirname path)

(* --- snapshot format --- *)

let magic = "pmw-epoch-snapshot"
let version = 1

type snapshot = {
  sn_epoch : int;
  sn_seq : int;
  sn_base_eps : float;
  sn_base_delta : float;
  sn_absorbed : int array;
  sn_prior : float array option;
  sn_dedup : ((string * string) * string) list;
  sn_ckpt : string option;
}

let f = Printf.sprintf "%h"

let snapshot_body sn =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "epoch %d" sn.sn_epoch;
  line "seq %d" sn.sn_seq;
  line "base %s %s" (f sn.sn_base_eps) (f sn.sn_base_delta);
  Buffer.add_string b (Printf.sprintf "absorbed %d" (Array.length sn.sn_absorbed));
  Array.iter (fun v -> Buffer.add_string b (Printf.sprintf " %d" v)) sn.sn_absorbed;
  Buffer.add_char b '\n';
  (match sn.sn_prior with
  | None -> line "prior 0"
  | Some w ->
      Buffer.add_string b (Printf.sprintf "prior %d" (Array.length w));
      Array.iter
        (fun v ->
          Buffer.add_char b ' ';
          Buffer.add_string b (f v))
        w;
      Buffer.add_char b '\n');
  line "dedup %d" (List.length sn.sn_dedup);
  (* Each dedup entry is serialized as a checksummed journal Answer line,
     so the snapshot and the journal agree byte-for-byte on what a
     recorded answer looks like. *)
  List.iter
    (fun ((analyst, rid), resp) ->
      line "%s"
        (Journal.record_to_string
           (Journal.Answer { ja_seq = 0; ja_analyst = analyst; ja_rid = Some rid; ja_line = resp })))
    sn.sn_dedup;
  (match sn.sn_ckpt with
  | None -> line "ckpt 0"
  | Some c ->
      line "ckpt %d" (String.length c);
      Buffer.add_string b c);
  Buffer.contents b

let snapshot_to_string sn =
  let body = snapshot_body sn in
  Printf.sprintf "%s %d\nchecksum %Lx\n%s" magic version (fnv1a64 body) body

let ( let* ) = Result.bind

let snapshot_of_string s =
  let pos = ref 0 in
  let len = String.length s in
  let read_line what =
    if !pos >= len then Error (Printf.sprintf "epoch snapshot: truncated at %s" what)
    else
      match String.index_from_opt s !pos '\n' with
      | None -> Error (Printf.sprintf "epoch snapshot: unterminated %s line" what)
      | Some nl ->
          let l = String.sub s !pos (nl - !pos) in
          pos := nl + 1;
          Ok l
  in
  let int_after what prefix l =
    match String.length l >= String.length prefix && String.sub l 0 (String.length prefix) = prefix
    with
    | false -> Error (Printf.sprintf "epoch snapshot: expected %s line, got %S" what l)
    | true -> (
        let rest = String.sub l (String.length prefix) (String.length l - String.length prefix) in
        match int_of_string_opt (String.trim (List.hd (String.split_on_char ' ' (String.trim rest) @ [ "" ]))) with
        | Some v -> Ok (v, String.trim rest)
        | None -> Error (Printf.sprintf "epoch snapshot: bad %s count" what))
  in
  let* header = read_line "header" in
  let* () =
    match String.split_on_char ' ' header with
    | [ m; v ] when m = magic ->
        if v = string_of_int version then Ok ()
        else Error (Printf.sprintf "epoch snapshot: unsupported version %s" v)
    | _ -> Error "epoch snapshot: not an epoch snapshot"
  in
  let* checksum_line = read_line "checksum" in
  let* expected =
    match String.split_on_char ' ' checksum_line with
    | [ "checksum"; v ] -> (
        match Int64.of_string_opt ("0x" ^ v) with
        | Some v -> Ok v
        | None -> Error "epoch snapshot: bad checksum field")
    | _ -> Error "epoch snapshot: missing checksum line"
  in
  let body = String.sub s !pos (len - !pos) in
  let* () =
    if Int64.equal expected (fnv1a64 body) then Ok ()
    else Error "epoch snapshot: checksum mismatch — corrupt or torn file"
  in
  let* epoch_line = read_line "epoch" in
  let* sn_epoch, _ = int_after "epoch" "epoch " epoch_line in
  let* seq_line = read_line "seq" in
  let* sn_seq, _ = int_after "seq" "seq " seq_line in
  let* base_line = read_line "base" in
  let* sn_base_eps, sn_base_delta =
    match String.split_on_char ' ' base_line with
    | [ "base"; e; d ] -> (
        match (float_of_string_opt e, float_of_string_opt d) with
        | Some e, Some d -> Ok (e, d)
        | _ -> Error "epoch snapshot: bad base floats")
    | _ -> Error "epoch snapshot: bad base line"
  in
  let* absorbed_line = read_line "absorbed" in
  let* sn_absorbed =
    match String.split_on_char ' ' absorbed_line with
    | "absorbed" :: n :: rest -> (
        match int_of_string_opt n with
        | None -> Error "epoch snapshot: bad absorbed count"
        | Some n ->
            let vals = List.filter_map int_of_string_opt rest in
            if List.length vals <> n || List.length rest <> n then
              Error "epoch snapshot: absorbed row count mismatch"
            else Ok (Array.of_list vals))
    | _ -> Error "epoch snapshot: bad absorbed line"
  in
  let* prior_line = read_line "prior" in
  let* sn_prior =
    match String.split_on_char ' ' prior_line with
    | "prior" :: n :: rest -> (
        match int_of_string_opt n with
        | None -> Error "epoch snapshot: bad prior count"
        | Some 0 -> Ok None
        | Some n ->
            let vals = List.filter_map float_of_string_opt rest in
            if List.length vals <> n || List.length rest <> n then
              Error "epoch snapshot: prior weight count mismatch"
            else Ok (Some (Array.of_list vals)))
    | [ "prior" ] -> Ok None
    | _ -> Error "epoch snapshot: bad prior line"
  in
  let* dedup_line = read_line "dedup" in
  let* ndedup, _ = int_after "dedup" "dedup " dedup_line in
  let* sn_dedup =
    let rec loop i acc =
      if i = ndedup then Ok (List.rev acc)
      else
        let* l = read_line (Printf.sprintf "dedup entry %d" i) in
        match Journal.record_of_line l with
        | Ok (Journal.Answer { ja_analyst; ja_rid = Some rid; ja_line; _ }) ->
            loop (i + 1) (((ja_analyst, rid), ja_line) :: acc)
        | Ok _ -> Error (Printf.sprintf "epoch snapshot: dedup entry %d is not an answer" i)
        | Error why -> Error (Printf.sprintf "epoch snapshot: dedup entry %d: %s" i why)
    in
    loop 0 []
  in
  let* ckpt_line = read_line "ckpt" in
  let* nckpt, _ = int_after "ckpt" "ckpt " ckpt_line in
  let* sn_ckpt =
    if nckpt = 0 then Ok None
    else if !pos + nckpt > len then Error "epoch snapshot: truncated checkpoint block"
    else Ok (Some (String.sub s !pos nckpt))
  in
  Ok { sn_epoch; sn_seq; sn_base_eps; sn_base_delta; sn_absorbed; sn_prior; sn_dedup; sn_ckpt }

let write_snapshot ~path sn =
  commit_file ~tmp:(path ^ ".tmp") ~path ~write_step:Snap_write ~mid_step:Snap_write_mid
    ~fsync_step:Snap_fsync ~rename_step:Snap_rename ~dirsync_step:Snap_dirsync
    (snapshot_to_string sn)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_snapshot ~path =
  if not (Sys.file_exists path) then Ok None
  else
    match read_file path with
    | exception Sys_error why -> Error ("epoch snapshot: " ^ why)
    | s -> Result.map Option.some (snapshot_of_string s)

let seal_path snapshot_path = snapshot_path ^ ".seal"

(* --- journal compaction ---

   Replace the journal with a single Epoch record carrying everything the
   snapshot retired: the new generation id, the lifetime spend base and
   the next answer seq. Idempotent — compacting an already-compacted
   journal writes the same single record again — which is exactly what
   roll-forward recovery needs. *)
let compact ~journal_path ~epoch ~base ~seq =
  let base_eps, base_delta = base in
  let content =
    Journal.record_to_string
      (Journal.Epoch { je_epoch = epoch; je_base_eps = base_eps; je_base_delta = base_delta; je_seq = seq })
    ^ "\n"
  in
  commit_file ~tmp:(journal_path ^ ".compact") ~path:journal_path ~write_step:Compact_write
    ~mid_step:Compact_write_mid ~fsync_step:Compact_fsync ~rename_step:Compact_rename
    ~dirsync_step:Compact_dirsync content

(* --- recovery --- *)

type boot = {
  bt_journal : Journal.t;
  bt_recovery : Journal.recovery;
  bt_epoch : int;
  bt_base : float * float;
  bt_absorbed : int array;
  bt_prior : float array option;
  bt_dedup : ((string * string) * string) list;
  bt_seal : Checkpoint.t option;
  bt_rolled_forward : bool;
}

let remove_if_exists p = try Sys.remove p with Sys_error _ -> ()

(* Resolve which generation survives a crash. Let e_S be the snapshot's
   epoch (0 when no snapshot exists) and e_J the journal's (its Epoch
   record; 0 when none):

   - e_J = e_S: in-epoch. If a seal checkpoint for e_S exists, the crash
     hit a transition before the snapshot commit — the session resumes
     from the seal (exact state at the transition point) and the broker
     re-runs the transition. Otherwise a normal mid-epoch recovery.
   - e_J < e_S: the snapshot committed but compaction (or anything after)
     didn't finish — roll forward by redoing the compaction. The old
     journal's records are all covered by the snapshot (its dedup seed and
     base), so dropping them loses nothing.
   - e_J > e_S: impossible for any crash of this protocol (the journal only
     learns an epoch AFTER the snapshot commits); a hard error.

   Stale tmp files from a mid-write crash are removed first — they were
   never renamed in, so they are dead bytes. *)
let recover ~snapshot_path ~journal_path =
  remove_if_exists (snapshot_path ^ ".tmp");
  remove_if_exists (journal_path ^ ".compact");
  remove_if_exists (seal_path snapshot_path ^ ".tmp");
  let* sn = read_snapshot ~path:snapshot_path in
  let e_s, base, absorbed, prior, dedup, seq =
    match sn with
    | None -> (0, (0., 0.), [||], None, [], 0)
    | Some sn ->
        ( sn.sn_epoch,
          (sn.sn_base_eps, sn.sn_base_delta),
          sn.sn_absorbed,
          sn.sn_prior,
          sn.sn_dedup,
          sn.sn_seq )
  in
  let* journal, recovery = Journal.open_journal ~path:journal_path in
  let e_j = recovery.Journal.rv_epoch in
  if e_j > e_s then begin
    Journal.close journal;
    Error
      (Printf.sprintf
         "epoch recovery: journal is at epoch %d but the snapshot only covers epoch %d — \
          snapshot lost or foreign journal"
         e_j e_s)
  end
  else if e_j < e_s then begin
    (* roll forward: the snapshot is the commit record; redo the compaction *)
    Journal.close journal;
    compact ~journal_path ~epoch:e_s ~base ~seq;
    remove_if_exists (seal_path snapshot_path);
    let* journal, recovery = Journal.open_journal ~path:journal_path in
    Log.info (fun m ->
        m "rolled %s forward to epoch %d (snapshot had committed; compaction redone)"
          journal_path e_s);
    Ok
      {
        bt_journal = journal;
        bt_recovery = recovery;
        bt_epoch = e_s;
        bt_base = base;
        bt_absorbed = absorbed;
        bt_prior = prior;
        bt_dedup = dedup;
        bt_seal = None;
        bt_rolled_forward = true;
      }
  end
  else begin
    (* in-epoch; a surviving seal checkpoint means a transition out of e_s
       was in flight and had NOT committed — resume its exact state *)
    let seal =
      let sp = seal_path snapshot_path in
      if not (Sys.file_exists sp) then None
      else
        match Checkpoint.read ~path:sp with
        | Ok ck when ck.Checkpoint.epoch = e_s -> Some ck
        | Ok _ | Error _ ->
            (* stale (previous generation) or unreadable: the write is
               atomic, so this is rot — discard rather than resume wrong
               state; recovery degrades to the journal-only path *)
            remove_if_exists sp;
            None
    in
    Ok
      {
        bt_journal = journal;
        bt_recovery = recovery;
        bt_epoch = e_s;
        bt_base = base;
        bt_absorbed = absorbed;
        bt_prior = prior;
        bt_dedup = dedup;
        bt_seal = seal;
        bt_rolled_forward = false;
      }
  end
