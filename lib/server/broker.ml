module Session = Pmw_session.Session
module Online = Pmw_core.Online_pmw
module Cm_query = Pmw_core.Cm_query
module Budget = Pmw_core.Budget
module Params = Pmw_dp.Params
module Telemetry = Pmw_telemetry.Telemetry
module Metrics = Pmw_telemetry.Metrics

let log_src = Logs.Src.create "pmw.server" ~doc:"PMW query-server broker events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  max_batch : int;
  quota : int;
  retry_after_s : float;
  dedup_cap : int;
  checkpoint_every : int;
}

let default_config =
  { max_batch = 16; quota = 0; retry_after_s = 1.; dedup_cap = 4096; checkpoint_every = 0 }

type analyst = {
  an_id : string;
  an_submitted : int;
  an_answered : int;
  an_degraded : int;
  an_refused : int;
  an_rejected : int;
  an_deduped : int;
  an_history : (int * string) list;
}

(* Mutable twin of [analyst]; all fields are guarded by the broker lock
   (submit bumps submitted/rejected/deduped, the serializer bumps the
   verdict tallies when it publishes replies). *)
type analyst_state = {
  mutable st_submitted : int;
  mutable st_answered : int;
  mutable st_degraded : int;
  mutable st_refused : int;
  mutable st_rejected : int;
  mutable st_deduped : int;
  mutable st_history : (int * string) list;  (* newest first *)
}

type pending = {
  p_req : Protocol.request;
  p_enqueued_at : float;
  mutable p_reply : Protocol.response option;
}

type t = {
  session : Session.t;
  resolve : string -> Cm_query.t option;
  cfg : config;
  telemetry : Telemetry.t;
  journal : Journal.t option;
  lock : Mutex.t;
  cond : Condition.t;  (* queue became non-empty, a reply landed, or drain *)
  queue : pending Queue.t;
  analysts : (string, analyst_state) Hashtbl.t;
  (* Idempotency state, guarded by the broker lock: [dedup] maps
     [analyst ^ "\x1f" ^ rid] to the exact encoded response line released
     for that rid (FIFO-evicted at [dedup_cap]); [inflight] maps the same
     key to the pending slot while the original request is still queued, so
     a concurrent duplicate coalesces onto it instead of enqueueing. *)
  dedup : (string, string) Hashtbl.t;
  dedup_order : string Queue.t;
  inflight : (string, pending) Hashtbl.t;
  mutable draining : bool;
  mutable aborted : bool;
  mutable stopped : bool;
  mutable seq : int;
  (* Journal cumulative already recorded; serializer-only. *)
  mutable last_cum : float * float;
  mutable last_checkpoint_seq : int;
  (* Submit-side tallies. Telemetry emission is single-threaded by
     contract, and submit runs on client threads — so these land in atomics
     (plus a lock-guarded hit log for the dedup marks) and the serializer
     mirrors them into the telemetry stream between batches. *)
  rejected_budget : int Atomic.t;
  rejected_quota : int Atomic.t;
  rejected_draining : int Atomic.t;
  dedup_hits : int Atomic.t;
  (* Per-hit mark backlog, drained at batch boundaries. Dedup hits never
     enqueue work, so a client replaying a recorded rid in a tight loop
     while the queue is idle could grow this without bound — the log is
     capped and the overflow counted instead. *)
  mutable dedup_hit_log : (string * string) list;  (* (analyst, rid), newest first *)
  mutable dedup_hit_log_len : int;
  dedup_hit_marks_dropped : int Atomic.t;
  (* Live metrics handles, cached at create (handles are concurrent —
     unlike telemetry they may be hit from client threads directly). All
     no-op when the registry is disabled. *)
  metrics : Metrics.t;
  m_batch : Metrics.histogram;
  m_queue_wait : Metrics.histogram;
  m_request : Metrics.histogram;
  m_queue_depth : Metrics.gauge;
  m_admitted : Metrics.rate;
  m_rej_budget : Metrics.rate;
  m_rej_quota : Metrics.rate;
  m_rej_draining : Metrics.rate;
  m_dedup : Metrics.rate;
  m_ledger : Metrics.ledger;
}

let dedup_hit_log_cap = 1024

let dedup_key analyst rid = analyst ^ "\x1f" ^ rid

let dedup_insert t key line =
  if t.cfg.dedup_cap > 0 then begin
    if not (Hashtbl.mem t.dedup key) then Queue.push key t.dedup_order;
    Hashtbl.replace t.dedup key line;
    while Hashtbl.length t.dedup > t.cfg.dedup_cap do
      Hashtbl.remove t.dedup (Queue.pop t.dedup_order)
    done
  end

let create ?(config = default_config) ?journal ?(recovery = Journal.empty_recovery)
    ?(metrics = Metrics.disabled ()) ?(metrics_label = "server") ~session ~resolve () =
  if config.max_batch < 1 then invalid_arg "Broker.create: max_batch must be >= 1";
  if config.dedup_cap < 0 then invalid_arg "Broker.create: dedup_cap must be >= 0";
  let telemetry = Session.telemetry session in
  let budget = Session.budget session in
  (* Reconcile the journal against the resumed ledger before serving: any
     spend the journal saw that the checkpoint did not is quarantined as
     already-spent (a half-completed batch whose answers may have reached
     clients must be paid for, never re-funded). *)
  let q_eps, q_delta = Journal.reconcile recovery ~budget in
  if recovery.Journal.rv_records <> [] || recovery.Journal.rv_torn then
    Telemetry.mark telemetry "journal.replayed"
      ~fields:
        ([
           ("records", Telemetry.Int (List.length recovery.Journal.rv_records));
           ("torn", Telemetry.Bool recovery.Journal.rv_torn);
           ("dropped_bytes", Telemetry.Int recovery.Journal.rv_dropped_bytes);
           ("answers", Telemetry.Int (List.length recovery.Journal.rv_answers));
           ("max_seq", Telemetry.Int recovery.Journal.rv_max_seq);
           ("quarantined_eps", Telemetry.Float q_eps);
           ("quarantined_delta", Telemetry.Float q_delta);
         ]
        @
        match recovery.Journal.rv_tail_kind with
        | None -> []
        | Some k -> [ ("tail_kind", Telemetry.Str k) ]);
  let t =
    {
      session;
      resolve;
      cfg = config;
      telemetry;
      journal;
      lock = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      analysts = Hashtbl.create 16;
      dedup = Hashtbl.create 64;
      dedup_order = Queue.create ();
      inflight = Hashtbl.create 16;
      draining = false;
      aborted = false;
      stopped = false;
      seq = max 0 (recovery.Journal.rv_max_seq + 1);
      last_cum = (0., 0.);
      last_checkpoint_seq = max 0 (recovery.Journal.rv_max_seq + 1);
      rejected_budget = Atomic.make 0;
      rejected_quota = Atomic.make 0;
      rejected_draining = Atomic.make 0;
      dedup_hits = Atomic.make 0;
      dedup_hit_log = [];
      dedup_hit_log_len = 0;
      dedup_hit_marks_dropped = Atomic.make 0;
      metrics;
      m_batch = Metrics.histogram metrics "server.batch_size";
      m_queue_wait = Metrics.histogram metrics "server.queue_wait_s";
      m_request = Metrics.histogram metrics "server.request_s";
      m_queue_depth = Metrics.gauge metrics "server.queue_depth";
      m_admitted = Metrics.rate metrics "server_admitted";
      m_rej_budget = Metrics.rate metrics "server_rejected_budget";
      m_rej_quota = Metrics.rate metrics "server_rejected_quota";
      m_rej_draining = Metrics.rate metrics "server_rejected_draining";
      m_dedup = Metrics.rate metrics "server_dedup_hits";
      m_ledger = Metrics.ledger metrics metrics_label;
    }
  in
  let total = Budget.total budget in
  Metrics.set_ledger_budget t.m_ledger ~eps:total.Params.eps ~delta:total.Params.delta;
  (let spent = Budget.spent budget in
   Metrics.ledger_cum t.m_ledger ~eps:spent.Params.eps ~delta:spent.Params.delta
     ~debits:(List.length (Budget.history budget)));
  (* Seed the dedup table with the journal's recorded answers (oldest
     first, so FIFO eviction keeps the newest when over cap). *)
  List.iter
    (fun ((analyst, rid), line) -> dedup_insert t (dedup_key analyst rid) line)
    recovery.Journal.rv_answers;
  (* Journal a restart boundary and the ledger's baseline cumulative, so
     the very first replay of a fresh journal already covers the session's
     up-front reserve (and a post-reconcile journal covers the quarantine). *)
  (match journal with
  | None -> ()
  | Some j ->
      let spent = Budget.spent budget in
      Journal.append j (Journal.Mark "start");
      Journal.append j
        (Journal.Debit
           {
             jd_mechanism = "baseline";
             jd_eps = 0.;
             jd_delta = 0.;
             jd_cum_eps = spent.Params.eps;
             jd_cum_delta = spent.Params.delta;
           });
      Journal.sync j;
      t.last_cum <- (spent.Params.eps, spent.Params.delta));
  t

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let analyst_state t id =
  match Hashtbl.find_opt t.analysts id with
  | Some st -> st
  | None ->
      let st =
        {
          st_submitted = 0;
          st_answered = 0;
          st_degraded = 0;
          st_refused = 0;
          st_rejected = 0;
          st_deduped = 0;
          st_history = [];
        }
      in
      Hashtbl.add t.analysts id st;
      st

let rejected ?retry_after_s req reason =
  {
    Protocol.rsp_id = req.Protocol.req_id;
    rsp_seq = -1;
    rsp_status = Protocol.Rejected { retry_after_s; reason };
    rsp_theta = None;
    rsp_source = None;
    rsp_update_index = None;
    rsp_batch = None;
    rsp_queue_wait_s = None;
    rsp_spent_eps = None;
    rsp_spent_delta = None;
    rsp_body = None;
  }

(* Admission, quota and enqueue run under one lock acquisition; the ledger
   fit test itself is atomic inside Budget. A request admitted here can
   still degrade if the pot moves before its oracle call — the
   authoritative check-and-debit stays in the session's authorize hook —
   but backpressure keeps the queue from filling with work that could only
   degrade.

   Idempotent retries come first, before any draining/quota/budget check:
   a rid we already answered was paid for by its original admission, so
   the recorded bytes go back out unconditionally — even during drain,
   even for an analyst whose quota has since filled. *)
let submit t req =
  let rid_key = Option.map (dedup_key req.Protocol.req_analyst) req.Protocol.req_rid in
  let verdict =
    locked t (fun () ->
        let st = analyst_state t req.Protocol.req_analyst in
        let dedup_hit () =
          Metrics.tick t.m_dedup;
          Atomic.incr t.dedup_hits;
          st.st_deduped <- st.st_deduped + 1;
          if t.dedup_hit_log_len < dedup_hit_log_cap then begin
            t.dedup_hit_log <-
              (req.Protocol.req_analyst, Option.get req.Protocol.req_rid) :: t.dedup_hit_log;
            t.dedup_hit_log_len <- t.dedup_hit_log_len + 1
          end
          else Atomic.incr t.dedup_hit_marks_dropped
        in
        match Option.bind rid_key (Hashtbl.find_opt t.dedup) with
        | Some line ->
            dedup_hit ();
            `Recorded line
        | None -> (
            match Option.bind rid_key (Hashtbl.find_opt t.inflight) with
            | Some orig ->
                dedup_hit ();
                `Coalesce orig
            | None ->
                if t.draining || t.stopped then begin
                  Metrics.tick t.m_rej_draining;
                  Atomic.incr t.rejected_draining;
                  st.st_rejected <- st.st_rejected + 1;
                  `Rejected (rejected req "server is draining")
                end
                else if t.cfg.quota > 0 && st.st_submitted >= t.cfg.quota then begin
                  Metrics.tick t.m_rej_quota;
                  Atomic.incr t.rejected_quota;
                  st.st_rejected <- st.st_rejected + 1;
                  `Rejected
                    (rejected req
                       (Printf.sprintf "analyst quota of %d queries reached" t.cfg.quota))
                end
                else (
                  match Session.admissible t.session with
                  | Error why ->
                      Metrics.tick t.m_rej_budget;
                      Atomic.incr t.rejected_budget;
                      st.st_rejected <- st.st_rejected + 1;
                      `Rejected
                        (rejected ~retry_after_s:t.cfg.retry_after_s req
                           ("admission refused: " ^ why))
                  | Ok () ->
                      st.st_submitted <- st.st_submitted + 1;
                      let p =
                        { p_req = req; p_enqueued_at = Unix.gettimeofday (); p_reply = None }
                      in
                      Option.iter (fun k -> Hashtbl.replace t.inflight k p) rid_key;
                      Queue.push p t.queue;
                      Metrics.tick t.m_admitted;
                      Metrics.set_gauge t.m_queue_depth (float_of_int (Queue.length t.queue));
                      Condition.broadcast t.cond;
                      `Enqueued p)))
  in
  let wait_for p =
    locked t (fun () ->
        while p.p_reply = None do
          Condition.wait t.cond t.lock
        done;
        Option.get p.p_reply)
  in
  (* The recorded payload travels back verbatim, but correlation belongs
     to THIS call: a retry may carry a fresh [req_id] (e.g. a restarted
     client that persisted its rids but not its id counter), and
     [Net.Client.call] drops any response whose [rsp_id] does not match
     its request as a framing desync. So a replayed reply is re-stamped
     with the incoming id — byte-identical when the retry reuses the
     original [req_id], payload-identical otherwise. *)
  let correlate reply = { reply with Protocol.rsp_id = req.Protocol.req_id } in
  match verdict with
  | `Rejected reply -> reply
  | `Recorded line -> (
      match Protocol.decode_response line with
      | Ok reply -> correlate reply
      | Error why ->
          (* cannot happen for lines we encoded ourselves; fail loudly
             rather than re-running the mechanism *)
          {
            (rejected req ("recorded answer unreadable: " ^ why)) with
            Protocol.rsp_status = Protocol.Failed ("recorded answer unreadable: " ^ why);
          })
  | `Coalesce orig -> correlate (wait_for orig)
  | `Enqueued p -> wait_for p

let source_str = function Online.From_hypothesis -> "hypothesis" | Online.From_oracle -> "oracle"

let response_of_verdict ~id ~seq ~batch ~queue_wait_s verdict =
  let base status theta source update_index =
    {
      Protocol.rsp_id = id;
      rsp_seq = seq;
      rsp_status = status;
      rsp_theta = theta;
      rsp_source = source;
      rsp_update_index = update_index;
      rsp_batch = Some batch;
      rsp_queue_wait_s = Some queue_wait_s;
      rsp_spent_eps = None;
      rsp_spent_delta = None;
      rsp_body = None;
    }
  in
  match verdict with
  | Online.Answered o ->
      base Protocol.Answered (Some o.Online.theta) (Some (source_str o.Online.source))
        (Some o.Online.update_index)
  | Online.Degraded (o, d) ->
      base
        (Protocol.Degraded (Online.degradation_to_string d))
        (Some o.Online.theta)
        (Some (source_str o.Online.source))
        (Some o.Online.update_index)
  | Online.Refused r -> base (Protocol.Refused (Online.refusal_to_string r)) None None None

(* Mirroring must EMIT, not just overwrite: [Telemetry.set_counter] never
   produces an event, so a set-only mirror leaves every server_* counter
   (including the dedup-mark overflow count) invisible to written traces and
   to [pmw_cli stats], which reads counters back out of Count events. The
   serializer is the only caller, so the read-increment pair is race-free. *)
let mirror_counter t name total =
  let prev = Telemetry.counter t.telemetry name in
  if total > prev then Telemetry.incr ~by:(total - prev) t.telemetry name

let mirror_counters t =
  mirror_counter t "server_rejected_budget" (Atomic.get t.rejected_budget);
  mirror_counter t "server_rejected_quota" (Atomic.get t.rejected_quota);
  mirror_counter t "server_rejected_draining" (Atomic.get t.rejected_draining);
  mirror_counter t "server_dedup_hits" (Atomic.get t.dedup_hits);
  mirror_counter t "server_dedup_hit_marks_dropped" (Atomic.get t.dedup_hit_marks_dropped);
  let hits =
    locked t (fun () ->
        let l = t.dedup_hit_log in
        t.dedup_hit_log <- [];
        t.dedup_hit_log_len <- 0;
        List.rev l)
  in
  List.iter
    (fun (analyst, rid) ->
      Telemetry.mark t.telemetry "dedup.hit"
        ~fields:[ ("analyst", Telemetry.Str analyst); ("rid", Telemetry.Str rid) ])
    hits

(* The durability point: journal the ledger's new cumulative plus every
   answer line of the batch, fsync once, all BEFORE any reply is published.
   A crash after the sync re-serves the same bytes from the journal; a
   crash before it means no client ever saw the batch, so re-running it
   after restart is fresh (and the quarantine covers any spend the session
   made for answers that never left).

   Order matters: the Debit goes down FIRST. A kill -9 between the two
   appends then persists spend with no answers — replay quarantines it as
   already-spent, a safe over-count. Answers-first would invert the
   failure: persisted answers seed the dedup table and are re-served on
   --resume while no debit covers their cost. *)
let journal_batch t replies =
  match t.journal with
  | None -> ()
  | Some j ->
      let spent = Budget.spent (Session.budget t.session) in
      let le, ld = t.last_cum in
      if spent.Params.eps > le || spent.Params.delta > ld then begin
        Journal.append j
          (Journal.Debit
             {
               jd_mechanism = "serve";
               jd_eps = Float.max 0. (spent.Params.eps -. le);
               jd_delta = Float.max 0. (spent.Params.delta -. ld);
               jd_cum_eps = spent.Params.eps;
               jd_cum_delta = spent.Params.delta;
             });
        t.last_cum <- (spent.Params.eps, spent.Params.delta)
      end;
      List.iter
        (fun (p, reply, line) ->
          Journal.append j
            (Journal.Answer
               {
                 ja_seq = reply.Protocol.rsp_seq;
                 ja_analyst = p.p_req.Protocol.req_analyst;
                 ja_rid = p.p_req.Protocol.req_rid;
                 ja_line = line;
               }))
        replies;
      Journal.sync j

(* Serializer-side: answer one drained batch through a single
   [Session.batch] context so the deterministic solves are shared, journal
   and fsync the results, then publish all replies under the lock in one
   broadcast. *)
let process_batch t items =
  let served_at = Unix.gettimeofday () in
  let batch_size = List.length items in
  Telemetry.observe t.telemetry "server.batch_size" (float_of_int batch_size);
  Metrics.observe t.m_batch (float_of_int batch_size);
  let timed = Metrics.is_enabled t.metrics in
  let b = Session.batch t.session in
  let budget = Session.budget t.session in
  let replies =
    List.map
      (fun p ->
        let seq = t.seq in
        t.seq <- t.seq + 1;
        let queue_wait_s = Float.max 0. (served_at -. p.p_enqueued_at) in
        Telemetry.observe t.telemetry "server.queue_wait_s" queue_wait_s;
        Metrics.observe t.m_queue_wait queue_wait_s;
        let req = p.p_req in
        let t0 = if timed then Unix.gettimeofday () else 0. in
        (* Distributed-tracing correlation: the trace id (and the caller's
           span id, on a router fan-out) ride on the span's fields, so the
           fleet stitcher can hang this shard-side span under the
           fleet-level request that caused it. *)
        let trace_fields =
          (match req.Protocol.req_trace with
          | None -> []
          | Some tr -> [ ("trace", Telemetry.Str tr) ])
          @
          match req.Protocol.req_pspan with
          | None -> []
          | Some p -> [ ("parent_span", Telemetry.Int p) ]
        in
        let reply =
          Telemetry.span t.telemetry "server.request"
            ~fields:
              ([
                 ("analyst", Telemetry.Str req.Protocol.req_analyst);
                 ("query", Telemetry.Str req.Protocol.req_query);
                 ("seq", Telemetry.Int seq);
                 ("batch", Telemetry.Int batch_size);
               ]
              @ trace_fields)
            (fun () ->
              match t.resolve req.Protocol.req_query with
              | None ->
                  {
                    (rejected req ("unknown query " ^ req.Protocol.req_query)) with
                    Protocol.rsp_seq = seq;
                    rsp_status = Protocol.Failed ("unknown query " ^ req.Protocol.req_query);
                    rsp_batch = Some batch_size;
                    rsp_queue_wait_s = Some queue_wait_s;
                  }
              | Some q ->
                  response_of_verdict ~id:req.Protocol.req_id ~seq ~batch:batch_size ~queue_wait_s
                    (Session.batch_answer b q))
        in
        if timed then Metrics.observe t.m_request (Unix.gettimeofday () -. t0);
        (* stamp the ledger cumulative at release so any client-held answer
           names a spend level the journal must (and does) cover *)
        let spent = Budget.spent budget in
        let reply =
          {
            reply with
            Protocol.rsp_spent_eps = Some spent.Params.eps;
            rsp_spent_delta = Some spent.Params.delta;
          }
        in
        (p, reply, Protocol.encode_response reply))
      items
  in
  journal_batch t replies;
  locked t (fun () ->
      List.iter
        (fun (p, reply, line) ->
          let st = analyst_state t p.p_req.Protocol.req_analyst in
          (match reply.Protocol.rsp_status with
          | Protocol.Answered -> st.st_answered <- st.st_answered + 1
          (* Partial is a fleet-level verdict (the router composes it); a
             single broker never produces one, but tally it as degraded if a
             recorded line ever replays through here. *)
          | Protocol.Degraded _ | Protocol.Partial _ -> st.st_degraded <- st.st_degraded + 1
          | Protocol.Refused _ | Protocol.Failed _ -> st.st_refused <- st.st_refused + 1
          | Protocol.Rejected _ -> st.st_rejected <- st.st_rejected + 1);
          st.st_history <-
            (reply.Protocol.rsp_seq, Protocol.status_tag reply.Protocol.rsp_status)
            :: st.st_history;
          (match p.p_req.Protocol.req_rid with
          | None -> ()
          | Some rid ->
              let key = dedup_key p.p_req.Protocol.req_analyst rid in
              dedup_insert t key line;
              Hashtbl.remove t.inflight key);
          p.p_reply <- Some reply)
        replies;
      Metrics.set_gauge t.m_queue_depth (float_of_int (Queue.length t.queue));
      Condition.broadcast t.cond);
  (* Burn-rate feed: cumulative totals are idempotent, so reporting after
     every batch is safe across retries and restarts alike. *)
  (let budget = Session.budget t.session in
   let spent = Budget.spent budget in
   Metrics.ledger_cum t.m_ledger ~eps:spent.Params.eps ~delta:spent.Params.delta
     ~debits:(List.length (Budget.history budget)));
  mirror_counters t

let write_checkpoint t ~path ~why =
  Session.save t.session ~path;
  Option.iter
    (fun j ->
      Journal.append j (Journal.Mark "checkpoint");
      Journal.sync j)
    t.journal;
  Telemetry.mark t.telemetry "server.checkpoint"
    ~fields:[ ("path", Telemetry.Str path); ("seq", Telemetry.Int t.seq) ];
  Log.info (fun m -> m "%s checkpoint written to %s (seq %d)" why path t.seq)

let run ?checkpoint t =
  Telemetry.mark t.telemetry "server.start"
    ~fields:
      [
        ("max_batch", Telemetry.Int t.cfg.max_batch);
        ("quota", Telemetry.Int t.cfg.quota);
        ("journal", Telemetry.Bool (t.journal <> None));
        ("first_seq", Telemetry.Int t.seq);
      ];
  let running = ref true in
  while !running do
    let batch =
      locked t (fun () ->
          while Queue.is_empty t.queue && not t.draining do
            Condition.wait t.cond t.lock
          done;
          if Queue.is_empty t.queue then begin
            (* draining and nothing left: this is the graceful-drain exit —
               every enqueued request has been answered (and journaled). *)
            t.stopped <- true;
            Condition.broadcast t.cond;
            []
          end
          else begin
            let n = min t.cfg.max_batch (Queue.length t.queue) in
            List.init n (fun _ -> Queue.pop t.queue)
          end)
    in
    match batch with
    | [] -> running := false
    | items ->
        process_batch t items;
        (match checkpoint with
        | Some path
          when t.cfg.checkpoint_every > 0
               && t.seq - t.last_checkpoint_seq >= t.cfg.checkpoint_every ->
            t.last_checkpoint_seq <- t.seq;
            write_checkpoint t ~path ~why:"periodic"
        | _ -> ())
  done;
  mirror_counters t;
  if t.aborted then begin
    (* Simulated kill -9: no drain mark, no final checkpoint — the journal
       must look exactly as a real crash would leave it, so restart goes
       through the same replay/reconcile path a genuine kill exercises. *)
    Telemetry.mark t.telemetry "server.aborted"
      ~fields:[ ("processed", Telemetry.Int t.seq) ];
    Log.info (fun m -> m "aborted after %d queries" t.seq)
  end
  else begin
    (* Drain boundary goes to the journal before the final checkpoint: a
       replayer seeing the mark knows every journaled answer was released. *)
    Option.iter
      (fun j ->
        Journal.append j (Journal.Mark "drain");
        Journal.sync j)
      t.journal;
    (match checkpoint with
    | None -> ()
    | Some path ->
        t.last_checkpoint_seq <- t.seq;
        write_checkpoint t ~path ~why:"final");
    Telemetry.mark t.telemetry "server.drained"
      ~fields:[ ("processed", Telemetry.Int t.seq) ];
    Log.info (fun m -> m "drained after %d queries" t.seq)
  end

let shutdown t =
  locked t (fun () ->
      t.draining <- true;
      Condition.broadcast t.cond)

(* Crash-style stop: fail every queued request NOW and make [run] exit
   without the graceful-drain journal tail. Requests already drained into
   the serializer's current batch are untouched — they were admitted, will
   be journalled, and their replies still land; everything still in the
   queue gets a [Failed] reply so no client thread is left blocked on a
   broker whose serializer is gone. *)
let abort ?(reason = "shard aborted") t =
  locked t (fun () ->
      if not t.stopped then begin
        t.draining <- true;
        t.aborted <- true;
        Queue.iter
          (fun p ->
            if p.p_reply = None then begin
              p.p_reply <-
                Some
                  {
                    (rejected p.p_req reason) with
                    Protocol.rsp_status = Protocol.Failed reason;
                  };
              match p.p_req.Protocol.req_rid with
              | None -> ()
              | Some rid ->
                  Hashtbl.remove t.inflight (dedup_key p.p_req.Protocol.req_analyst rid)
            end)
          t.queue;
        Queue.clear t.queue;
        Condition.broadcast t.cond
      end)

let aborted t = locked t (fun () -> t.aborted)

let drained t = locked t (fun () -> t.stopped)
let processed t = locked t (fun () -> t.seq)
let session t = t.session
let dedup_hits t = Atomic.get t.dedup_hits

let analysts t =
  locked t (fun () ->
      Hashtbl.fold
        (fun id st acc ->
          {
            an_id = id;
            an_submitted = st.st_submitted;
            an_answered = st.st_answered;
            an_degraded = st.st_degraded;
            an_refused = st.st_refused;
            an_rejected = st.st_rejected;
            an_deduped = st.st_deduped;
            an_history = List.rev st.st_history;
          }
          :: acc)
        t.analysts []
      |> List.sort (fun a b -> String.compare a.an_id b.an_id))
