module Session = Pmw_session.Session
module Online = Pmw_core.Online_pmw
module Cm_query = Pmw_core.Cm_query
module Budget = Pmw_core.Budget
module Params = Pmw_dp.Params
module Histogram = Pmw_data.Histogram
module Telemetry = Pmw_telemetry.Telemetry
module Metrics = Pmw_telemetry.Metrics

let log_src = Logs.Src.create "pmw.server" ~doc:"PMW query-server broker events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  max_batch : int;
  quota : int;
  retry_after_s : float;
  dedup_cap : int;
  checkpoint_every : int;
}

let default_config =
  { max_batch = 16; quota = 0; retry_after_s = 1.; dedup_cap = 4096; checkpoint_every = 0 }

(* Epoch (dataset-generation) support. When configured, the serializer
   rolls the shard to a new generation — absorbing ingested rows,
   re-anchoring the hypothesis as the new epoch's prior, refreshing the
   budget pot, compacting the journal — either every [ep_every] answers or
   on an explicit [request_epoch]. The whole transition is crash-safe; see
   Epoch for the protocol and recovery table. *)
type epoch_config = {
  ep_snapshot : string;  (* epoch snapshot path (the commit record) *)
  ep_every : int;  (* answers per epoch before an automatic roll; 0 = only on request *)
  ep_row_bound : int;  (* exclusive upper bound for ingest row indices (universe size) *)
  ep_make : epoch:int -> absorbed:int array -> prior:float array option -> Session.t;
      (* Deterministic constructor for generation [epoch]'s session: seed
         dataset + [absorbed] rows at that epoch, fresh budget pot,
         hypothesis re-anchored on [prior]. Recovery re-invokes it with the
         snapshot's exact inputs, so it MUST be a pure function of them. *)
}

(* Recovered epoch state (from Epoch.recover) handed in at create. *)
type epoch_boot = {
  eb_epoch : int;
  eb_base : float * float;  (* lifetime (ε, δ) retired into sealed epochs *)
  eb_absorbed : int array;  (* cumulative ingested rows beyond the seed *)
  eb_dedup : ((string * string) * string) list;  (* snapshot dedup seed, oldest first *)
  eb_ingest : int list;  (* journaled-but-unabsorbed rows, oldest first *)
  eb_resume_transition : bool;
      (* a seal checkpoint was resumed: a transition was in flight and had
         not committed — re-run it before serving the first batch *)
}

let empty_epoch_boot =
  {
    eb_epoch = 0;
    eb_base = (0., 0.);
    eb_absorbed = [||];
    eb_dedup = [];
    eb_ingest = [];
    eb_resume_transition = false;
  }

type analyst = {
  an_id : string;
  an_submitted : int;
  an_answered : int;
  an_degraded : int;
  an_refused : int;
  an_rejected : int;
  an_deduped : int;
  an_history : (int * string) list;
}

(* Mutable twin of [analyst]; all fields are guarded by the broker lock
   (submit bumps submitted/rejected/deduped, the serializer bumps the
   verdict tallies when it publishes replies). *)
type analyst_state = {
  mutable st_submitted : int;
  mutable st_answered : int;
  mutable st_degraded : int;
  mutable st_refused : int;
  mutable st_rejected : int;
  mutable st_deduped : int;
  mutable st_history : (int * string) list;  (* newest first *)
}

type pending = {
  p_req : Protocol.request;
  p_enqueued_at : float;
  mutable p_reply : Protocol.response option;
}

type t = {
  (* [session] and [journal] are written only by the serializer (epoch
     transitions swap both), read by client threads — all access is under
     the broker lock. *)
  mutable session : Session.t;
  resolve : string -> Cm_query.t option;
  cfg : config;
  telemetry : Telemetry.t;
  mutable journal : Journal.t option;
  epoch_cfg : epoch_config option;
  (* Epoch state; serializer-written, lock-guarded for readers. *)
  mutable epoch : int;
  mutable base : float * float;  (* lifetime spend retired into sealed epochs *)
  mutable absorbed : int array;  (* cumulative ingested rows beyond the seed *)
  mutable pending_ingest : int list;  (* newest first; absorbed at next transition *)
  mutable pending_ingest_count : int;
  mutable epoch_due : bool;  (* request_epoch arrived; roll before the next batch *)
  mutable epoch_start_seq : int;  (* t.seq when this epoch opened (ep_every counts) *)
  mutable last_compaction_at : float;
  lock : Mutex.t;
  cond : Condition.t;  (* queue became non-empty, a reply landed, or drain *)
  queue : pending Queue.t;
  analysts : (string, analyst_state) Hashtbl.t;
  (* Idempotency state, guarded by the broker lock: [dedup] maps
     [analyst ^ "\x1f" ^ rid] to the exact encoded response line released
     for that rid (FIFO-evicted at [dedup_cap]); [inflight] maps the same
     key to the pending slot while the original request is still queued, so
     a concurrent duplicate coalesces onto it instead of enqueueing. *)
  dedup : (string, string) Hashtbl.t;
  dedup_order : string Queue.t;
  inflight : (string, pending) Hashtbl.t;
  mutable draining : bool;
  mutable aborted : bool;
  mutable stopped : bool;
  mutable seq : int;
  (* Journal cumulative already recorded; serializer-only. *)
  mutable last_cum : float * float;
  mutable last_checkpoint_seq : int;
  (* Submit-side tallies. Telemetry emission is single-threaded by
     contract, and submit runs on client threads — so these land in atomics
     (plus a lock-guarded hit log for the dedup marks) and the serializer
     mirrors them into the telemetry stream between batches. *)
  rejected_budget : int Atomic.t;
  rejected_quota : int Atomic.t;
  rejected_draining : int Atomic.t;
  dedup_hits : int Atomic.t;
  (* Per-hit mark backlog, drained at batch boundaries. Dedup hits never
     enqueue work, so a client replaying a recorded rid in a tight loop
     while the queue is idle could grow this without bound — the log is
     capped and the overflow counted instead. *)
  mutable dedup_hit_log : (string * string) list;  (* (analyst, rid), newest first *)
  mutable dedup_hit_log_len : int;
  dedup_hit_marks_dropped : int Atomic.t;
  (* Live metrics handles, cached at create (handles are concurrent —
     unlike telemetry they may be hit from client threads directly). All
     no-op when the registry is disabled. *)
  metrics : Metrics.t;
  m_batch : Metrics.histogram;
  m_queue_wait : Metrics.histogram;
  m_request : Metrics.histogram;
  m_queue_depth : Metrics.gauge;
  m_admitted : Metrics.rate;
  m_rej_budget : Metrics.rate;
  m_rej_quota : Metrics.rate;
  m_rej_draining : Metrics.rate;
  m_dedup : Metrics.rate;
  m_ledger : Metrics.ledger;
  m_epoch : Metrics.gauge;
  m_journal_bytes : Metrics.gauge;
  m_journal_records : Metrics.gauge;
  m_compaction_age : Metrics.gauge;
  m_transition : Metrics.histogram;
  m_transitions : Metrics.rate;
}

let dedup_hit_log_cap = 1024

let dedup_key analyst rid = analyst ^ "\x1f" ^ rid

let dedup_insert t key line =
  if t.cfg.dedup_cap > 0 then begin
    if not (Hashtbl.mem t.dedup key) then Queue.push key t.dedup_order;
    Hashtbl.replace t.dedup key line;
    while Hashtbl.length t.dedup > t.cfg.dedup_cap do
      Hashtbl.remove t.dedup (Queue.pop t.dedup_order)
    done
  end

let create ?(config = default_config) ?journal ?(recovery = Journal.empty_recovery)
    ?(metrics = Metrics.disabled ()) ?(metrics_label = "server") ?epoch
    ?(epoch_boot = empty_epoch_boot) ~session ~resolve () =
  if config.max_batch < 1 then invalid_arg "Broker.create: max_batch must be >= 1";
  if config.dedup_cap < 0 then invalid_arg "Broker.create: dedup_cap must be >= 0";
  (match epoch with
  | Some ec ->
      if ec.ep_every < 0 then invalid_arg "Broker.create: ep_every must be >= 0";
      if ec.ep_row_bound < 1 then invalid_arg "Broker.create: ep_row_bound must be >= 1"
  | None -> ());
  if Session.epoch session <> epoch_boot.eb_epoch then
    invalid_arg
      (Printf.sprintf "Broker.create: session is at dataset epoch %d but the boot says %d"
         (Session.epoch session) epoch_boot.eb_epoch);
  let telemetry = Session.telemetry session in
  let budget = Session.budget session in
  (* Reconcile the journal against the resumed ledger before serving: any
     spend the journal saw that the checkpoint did not is quarantined as
     already-spent (a half-completed batch whose answers may have reached
     clients must be paid for, never re-funded). *)
  let q_eps, q_delta = Journal.reconcile recovery ~budget in
  if recovery.Journal.rv_records <> [] || recovery.Journal.rv_torn then
    Telemetry.mark telemetry "journal.replayed"
      ~fields:
        ([
           ("records", Telemetry.Int (List.length recovery.Journal.rv_records));
           ("torn", Telemetry.Bool recovery.Journal.rv_torn);
           ("dropped_bytes", Telemetry.Int recovery.Journal.rv_dropped_bytes);
           ("answers", Telemetry.Int (List.length recovery.Journal.rv_answers));
           ("max_seq", Telemetry.Int recovery.Journal.rv_max_seq);
           ("quarantined_eps", Telemetry.Float q_eps);
           ("quarantined_delta", Telemetry.Float q_delta);
         ]
        @
        match recovery.Journal.rv_tail_kind with
        | None -> []
        | Some k -> [ ("tail_kind", Telemetry.Str k) ]);
  let t =
    {
      session;
      resolve;
      cfg = config;
      telemetry;
      journal;
      epoch_cfg = epoch;
      epoch = epoch_boot.eb_epoch;
      base = epoch_boot.eb_base;
      absorbed = epoch_boot.eb_absorbed;
      pending_ingest = List.rev epoch_boot.eb_ingest;
      pending_ingest_count = List.length epoch_boot.eb_ingest;
      epoch_due = epoch_boot.eb_resume_transition;
      epoch_start_seq = 0;
      last_compaction_at = Unix.gettimeofday ();
      lock = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      analysts = Hashtbl.create 16;
      dedup = Hashtbl.create 64;
      dedup_order = Queue.create ();
      inflight = Hashtbl.create 16;
      draining = false;
      aborted = false;
      stopped = false;
      seq = max 0 (recovery.Journal.rv_max_seq + 1);
      last_cum = (0., 0.);
      last_checkpoint_seq = max 0 (recovery.Journal.rv_max_seq + 1);
      rejected_budget = Atomic.make 0;
      rejected_quota = Atomic.make 0;
      rejected_draining = Atomic.make 0;
      dedup_hits = Atomic.make 0;
      dedup_hit_log = [];
      dedup_hit_log_len = 0;
      dedup_hit_marks_dropped = Atomic.make 0;
      metrics;
      m_batch = Metrics.histogram metrics "server.batch_size";
      m_queue_wait = Metrics.histogram metrics "server.queue_wait_s";
      m_request = Metrics.histogram metrics "server.request_s";
      m_queue_depth = Metrics.gauge metrics "server.queue_depth";
      m_admitted = Metrics.rate metrics "server_admitted";
      m_rej_budget = Metrics.rate metrics "server_rejected_budget";
      m_rej_quota = Metrics.rate metrics "server_rejected_quota";
      m_rej_draining = Metrics.rate metrics "server_rejected_draining";
      m_dedup = Metrics.rate metrics "server_dedup_hits";
      m_ledger = Metrics.ledger metrics metrics_label;
      m_epoch = Metrics.gauge metrics "server.epoch";
      m_journal_bytes = Metrics.gauge metrics "server.journal_bytes";
      m_journal_records = Metrics.gauge metrics "server.journal_records";
      m_compaction_age = Metrics.gauge metrics "server.compaction_age_s";
      m_transition = Metrics.histogram metrics "server.epoch_transition_s";
      m_transitions = Metrics.rate metrics "server_epoch_transitions";
    }
  in
  t.epoch_start_seq <- t.seq;
  let total = Budget.total budget in
  Metrics.set_ledger_budget t.m_ledger ~eps:total.Params.eps ~delta:total.Params.delta;
  (* The ledger feed carries LIFETIME spend — the per-epoch pot plus what
     sealed epochs retired — so its cumulative stays monotone across
     transitions (the pot itself resets every epoch). *)
  (let spent = Budget.spent budget in
   let be, bd = t.base in
   Metrics.ledger_cum t.m_ledger ~eps:(be +. spent.Params.eps) ~delta:(bd +. spent.Params.delta)
     ~debits:(List.length (Budget.history budget)));
  Metrics.set_gauge t.m_epoch (float_of_int t.epoch);
  (match t.journal with
  | Some j ->
      let bytes, records = Journal.size j in
      Metrics.set_gauge t.m_journal_bytes (float_of_int bytes);
      Metrics.set_gauge t.m_journal_records (float_of_int records)
  | None -> ());
  (* Seed the dedup table: the epoch snapshot's carried answers first (they
     predate the compacted journal), then the journal's own — oldest first
     throughout, so FIFO eviction keeps the newest when over cap. *)
  List.iter
    (fun ((analyst, rid), line) -> dedup_insert t (dedup_key analyst rid) line)
    epoch_boot.eb_dedup;
  List.iter
    (fun ((analyst, rid), line) -> dedup_insert t (dedup_key analyst rid) line)
    recovery.Journal.rv_answers;
  (* Journal a restart boundary and the ledger's baseline cumulative, so
     the very first replay of a fresh journal already covers the session's
     up-front reserve (and a post-reconcile journal covers the quarantine). *)
  (match journal with
  | None -> ()
  | Some j ->
      let spent = Budget.spent budget in
      Journal.append j (Journal.Mark "start");
      Journal.append j
        (Journal.Debit
           {
             jd_mechanism = "baseline";
             jd_eps = 0.;
             jd_delta = 0.;
             jd_cum_eps = spent.Params.eps;
             jd_cum_delta = spent.Params.delta;
           });
      Journal.sync j;
      t.last_cum <- (spent.Params.eps, spent.Params.delta));
  t

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let analyst_state t id =
  match Hashtbl.find_opt t.analysts id with
  | Some st -> st
  | None ->
      let st =
        {
          st_submitted = 0;
          st_answered = 0;
          st_degraded = 0;
          st_refused = 0;
          st_rejected = 0;
          st_deduped = 0;
          st_history = [];
        }
      in
      Hashtbl.add t.analysts id st;
      st

let rejected ?retry_after_s req reason =
  {
    Protocol.rsp_id = req.Protocol.req_id;
    rsp_seq = -1;
    rsp_status = Protocol.Rejected { retry_after_s; reason };
    rsp_theta = None;
    rsp_source = None;
    rsp_update_index = None;
    rsp_batch = None;
    rsp_queue_wait_s = None;
    rsp_spent_eps = None;
    rsp_spent_delta = None;
    rsp_epoch = None;
    rsp_body = None;
  }

(* Admission, quota and enqueue run under one lock acquisition; the ledger
   fit test itself is atomic inside Budget. A request admitted here can
   still degrade if the pot moves before its oracle call — the
   authoritative check-and-debit stays in the session's authorize hook —
   but backpressure keeps the queue from filling with work that could only
   degrade.

   Idempotent retries come first, before any draining/quota/budget check:
   a rid we already answered was paid for by its original admission, so
   the recorded bytes go back out unconditionally — even during drain,
   even for an analyst whose quota has since filled. *)
let submit t req =
  let rid_key = Option.map (dedup_key req.Protocol.req_analyst) req.Protocol.req_rid in
  let verdict =
    locked t (fun () ->
        let st = analyst_state t req.Protocol.req_analyst in
        let dedup_hit () =
          Metrics.tick t.m_dedup;
          Atomic.incr t.dedup_hits;
          st.st_deduped <- st.st_deduped + 1;
          if t.dedup_hit_log_len < dedup_hit_log_cap then begin
            t.dedup_hit_log <-
              (req.Protocol.req_analyst, Option.get req.Protocol.req_rid) :: t.dedup_hit_log;
            t.dedup_hit_log_len <- t.dedup_hit_log_len + 1
          end
          else Atomic.incr t.dedup_hit_marks_dropped
        in
        match Option.bind rid_key (Hashtbl.find_opt t.dedup) with
        | Some line ->
            dedup_hit ();
            `Recorded line
        | None -> (
            match Option.bind rid_key (Hashtbl.find_opt t.inflight) with
            | Some orig ->
                dedup_hit ();
                `Coalesce orig
            | None ->
                let enqueue () =
                  st.st_submitted <- st.st_submitted + 1;
                  let p =
                    { p_req = req; p_enqueued_at = Unix.gettimeofday (); p_reply = None }
                  in
                  Option.iter (fun k -> Hashtbl.replace t.inflight k p) rid_key;
                  Queue.push p t.queue;
                  Metrics.tick t.m_admitted;
                  Metrics.set_gauge t.m_queue_depth (float_of_int (Queue.length t.queue));
                  Condition.broadcast t.cond;
                  `Enqueued p
                in
                let failed why =
                  st.st_rejected <- st.st_rejected + 1;
                  `Rejected { (rejected req why) with Protocol.rsp_status = Protocol.Failed why }
                in
                if t.draining || t.stopped then begin
                  Metrics.tick t.m_rej_draining;
                  Atomic.incr t.rejected_draining;
                  st.st_rejected <- st.st_rejected + 1;
                  `Rejected (rejected req "server is draining")
                end
                else (
                  match req.Protocol.req_rows with
                  | Some rows -> (
                      (* Ingest: rows spend no privacy (they only change the
                         data the NEXT epoch answers from), so they bypass
                         quota and budget admission — but stay rid-idempotent
                         and draining-refusable like any other request. *)
                      match t.epoch_cfg with
                      | None -> failed "ingest is not enabled on this shard"
                      | Some ec ->
                          if rows = [] then failed "ingest carried no rows"
                          else if
                            List.exists (fun r -> r < 0 || r >= ec.ep_row_bound) rows
                          then
                            failed
                              (Printf.sprintf "ingest rows must lie in [0, %d)" ec.ep_row_bound)
                          else enqueue ())
                  | None ->
                      if t.cfg.quota > 0 && st.st_submitted >= t.cfg.quota then begin
                        Metrics.tick t.m_rej_quota;
                        Atomic.incr t.rejected_quota;
                        st.st_rejected <- st.st_rejected + 1;
                        `Rejected
                          (rejected req
                             (Printf.sprintf "analyst quota of %d queries reached" t.cfg.quota))
                      end
                      else (
                        match Session.admissible t.session with
                        | Error why ->
                            Metrics.tick t.m_rej_budget;
                            Atomic.incr t.rejected_budget;
                            st.st_rejected <- st.st_rejected + 1;
                            `Rejected
                              (rejected ~retry_after_s:t.cfg.retry_after_s req
                                 ("admission refused: " ^ why))
                        | Ok () -> enqueue ()))))
  in
  let wait_for p =
    locked t (fun () ->
        while p.p_reply = None do
          Condition.wait t.cond t.lock
        done;
        Option.get p.p_reply)
  in
  (* The recorded payload travels back verbatim, but correlation belongs
     to THIS call: a retry may carry a fresh [req_id] (e.g. a restarted
     client that persisted its rids but not its id counter), and
     [Net.Client.call] drops any response whose [rsp_id] does not match
     its request as a framing desync. So a replayed reply is re-stamped
     with the incoming id — byte-identical when the retry reuses the
     original [req_id], payload-identical otherwise. *)
  let correlate reply = { reply with Protocol.rsp_id = req.Protocol.req_id } in
  match verdict with
  | `Rejected reply -> reply
  | `Recorded line -> (
      match Protocol.decode_response line with
      | Ok reply -> correlate reply
      | Error why ->
          (* cannot happen for lines we encoded ourselves; fail loudly
             rather than re-running the mechanism *)
          {
            (rejected req ("recorded answer unreadable: " ^ why)) with
            Protocol.rsp_status = Protocol.Failed ("recorded answer unreadable: " ^ why);
          })
  | `Coalesce orig -> correlate (wait_for orig)
  | `Enqueued p -> wait_for p

let source_str = function Online.From_hypothesis -> "hypothesis" | Online.From_oracle -> "oracle"

let response_of_verdict ~id ~seq ~batch ~queue_wait_s verdict =
  let base status theta source update_index =
    {
      Protocol.rsp_id = id;
      rsp_seq = seq;
      rsp_status = status;
      rsp_theta = theta;
      rsp_source = source;
      rsp_update_index = update_index;
      rsp_batch = Some batch;
      rsp_queue_wait_s = Some queue_wait_s;
      rsp_spent_eps = None;
      rsp_spent_delta = None;
      rsp_epoch = None;
      rsp_body = None;
    }
  in
  match verdict with
  | Online.Answered o ->
      base Protocol.Answered (Some o.Online.theta) (Some (source_str o.Online.source))
        (Some o.Online.update_index)
  | Online.Degraded (o, d) ->
      base
        (Protocol.Degraded (Online.degradation_to_string d))
        (Some o.Online.theta)
        (Some (source_str o.Online.source))
        (Some o.Online.update_index)
  | Online.Refused r -> base (Protocol.Refused (Online.refusal_to_string r)) None None None

(* Mirroring must EMIT, not just overwrite: [Telemetry.set_counter] never
   produces an event, so a set-only mirror leaves every server_* counter
   (including the dedup-mark overflow count) invisible to written traces and
   to [pmw_cli stats], which reads counters back out of Count events. The
   serializer is the only caller, so the read-increment pair is race-free. *)
let mirror_counter t name total =
  let prev = Telemetry.counter t.telemetry name in
  if total > prev then Telemetry.incr ~by:(total - prev) t.telemetry name

let mirror_counters t =
  mirror_counter t "server_rejected_budget" (Atomic.get t.rejected_budget);
  mirror_counter t "server_rejected_quota" (Atomic.get t.rejected_quota);
  mirror_counter t "server_rejected_draining" (Atomic.get t.rejected_draining);
  mirror_counter t "server_dedup_hits" (Atomic.get t.dedup_hits);
  mirror_counter t "server_dedup_hit_marks_dropped" (Atomic.get t.dedup_hit_marks_dropped);
  let hits =
    locked t (fun () ->
        let l = t.dedup_hit_log in
        t.dedup_hit_log <- [];
        t.dedup_hit_log_len <- 0;
        List.rev l)
  in
  List.iter
    (fun (analyst, rid) ->
      Telemetry.mark t.telemetry "dedup.hit"
        ~fields:[ ("analyst", Telemetry.Str analyst); ("rid", Telemetry.Str rid) ])
    hits

(* The durability point: journal the ledger's new cumulative plus every
   answer line of the batch, fsync once, all BEFORE any reply is published.
   A crash after the sync re-serves the same bytes from the journal; a
   crash before it means no client ever saw the batch, so re-running it
   after restart is fresh (and the quarantine covers any spend the session
   made for answers that never left).

   Order matters: the Debit goes down FIRST. A kill -9 between the two
   appends then persists spend with no answers — replay quarantines it as
   already-spent, a safe over-count. Answers-first would invert the
   failure: persisted answers seed the dedup table and are re-served on
   --resume while no debit covers their cost. *)
let journal_batch t replies =
  match t.journal with
  | None -> ()
  | Some j ->
      let spent = Budget.spent (Session.budget t.session) in
      let le, ld = t.last_cum in
      if spent.Params.eps > le || spent.Params.delta > ld then begin
        Journal.append j
          (Journal.Debit
             {
               jd_mechanism = "serve";
               jd_eps = Float.max 0. (spent.Params.eps -. le);
               jd_delta = Float.max 0. (spent.Params.delta -. ld);
               jd_cum_eps = spent.Params.eps;
               jd_cum_delta = spent.Params.delta;
             });
        t.last_cum <- (spent.Params.eps, spent.Params.delta)
      end;
      List.iter
        (fun (p, reply, line) ->
          Journal.append j
            (Journal.Answer
               {
                 ja_seq = reply.Protocol.rsp_seq;
                 ja_analyst = p.p_req.Protocol.req_analyst;
                 ja_rid = p.p_req.Protocol.req_rid;
                 ja_line = line;
               }))
        replies;
      Journal.sync j

(* Serializer-side: answer one drained batch through a single
   [Session.batch] context so the deterministic solves are shared, journal
   and fsync the results, then publish all replies under the lock in one
   broadcast. *)
let process_batch t items =
  let served_at = Unix.gettimeofday () in
  let batch_size = List.length items in
  Telemetry.observe t.telemetry "server.batch_size" (float_of_int batch_size);
  Metrics.observe t.m_batch (float_of_int batch_size);
  let timed = Metrics.is_enabled t.metrics in
  let b = Session.batch t.session in
  let budget = Session.budget t.session in
  let replies =
    List.map
      (fun p ->
        let seq = t.seq in
        t.seq <- t.seq + 1;
        let queue_wait_s = Float.max 0. (served_at -. p.p_enqueued_at) in
        Telemetry.observe t.telemetry "server.queue_wait_s" queue_wait_s;
        Metrics.observe t.m_queue_wait queue_wait_s;
        let req = p.p_req in
        let t0 = if timed then Unix.gettimeofday () else 0. in
        (* Distributed-tracing correlation: the trace id (and the caller's
           span id, on a router fan-out) ride on the span's fields, so the
           fleet stitcher can hang this shard-side span under the
           fleet-level request that caused it. *)
        let trace_fields =
          (match req.Protocol.req_trace with
          | None -> []
          | Some tr -> [ ("trace", Telemetry.Str tr) ])
          @
          match req.Protocol.req_pspan with
          | None -> []
          | Some p -> [ ("parent_span", Telemetry.Int p) ]
        in
        let reply =
          Telemetry.span t.telemetry "server.request"
            ~fields:
              ([
                 ("analyst", Telemetry.Str req.Protocol.req_analyst);
                 ("query", Telemetry.Str req.Protocol.req_query);
                 ("seq", Telemetry.Int seq);
                 ("batch", Telemetry.Int batch_size);
               ]
              @ trace_fields)
            (fun () ->
              match req.Protocol.req_rows with
              | Some rows ->
                  (* Ingest: buffer the rows and journal them — the batch's
                     fsync below makes them durable before this reply is
                     published, and replay re-seeds the buffer on recovery.
                     Absorption into the dataset happens at the next epoch
                     transition. *)
                  let rows_a = Array.of_list rows in
                  t.pending_ingest <- List.rev_append rows t.pending_ingest;
                  t.pending_ingest_count <- t.pending_ingest_count + Array.length rows_a;
                  Option.iter
                    (fun j -> Journal.append j (Journal.Ingest { ji_rows = rows_a }))
                    t.journal;
                  {
                    Protocol.rsp_id = req.Protocol.req_id;
                    rsp_seq = seq;
                    rsp_status = Protocol.Answered;
                    rsp_theta =
                      Some
                        [|
                          float_of_int (Array.length rows_a);
                          float_of_int t.pending_ingest_count;
                        |];
                    rsp_source = Some "ingest";
                    rsp_update_index = None;
                    rsp_batch = Some batch_size;
                    rsp_queue_wait_s = Some queue_wait_s;
                    rsp_spent_eps = None;
                    rsp_spent_delta = None;
                    rsp_epoch = None;
                    rsp_body = None;
                  }
              | None -> (
                  match t.resolve req.Protocol.req_query with
                  | None ->
                      {
                        (rejected req ("unknown query " ^ req.Protocol.req_query)) with
                        Protocol.rsp_seq = seq;
                        rsp_status = Protocol.Failed ("unknown query " ^ req.Protocol.req_query);
                        rsp_batch = Some batch_size;
                        rsp_queue_wait_s = Some queue_wait_s;
                      }
                  | Some q ->
                      response_of_verdict ~id:req.Protocol.req_id ~seq ~batch:batch_size
                        ~queue_wait_s (Session.batch_answer b q)))
        in
        if timed then Metrics.observe t.m_request (Unix.gettimeofday () -. t0);
        (* stamp the LIFETIME ledger cumulative (sealed-epoch base + the
           current pot) at release so any client-held answer names a spend
           level the journal — base record plus within-epoch debits — must
           (and does) cover, and stamp the generation that answered *)
        let spent = Budget.spent budget in
        let be, bd = t.base in
        let reply =
          {
            reply with
            Protocol.rsp_spent_eps = Some (be +. spent.Params.eps);
            rsp_spent_delta = Some (bd +. spent.Params.delta);
            rsp_epoch = Some t.epoch;
          }
        in
        (p, reply, Protocol.encode_response reply))
      items
  in
  journal_batch t replies;
  locked t (fun () ->
      List.iter
        (fun (p, reply, line) ->
          let st = analyst_state t p.p_req.Protocol.req_analyst in
          (match reply.Protocol.rsp_status with
          | Protocol.Answered -> st.st_answered <- st.st_answered + 1
          (* Partial is a fleet-level verdict (the router composes it); a
             single broker never produces one, but tally it as degraded if a
             recorded line ever replays through here. *)
          | Protocol.Degraded _ | Protocol.Partial _ -> st.st_degraded <- st.st_degraded + 1
          | Protocol.Refused _ | Protocol.Failed _ -> st.st_refused <- st.st_refused + 1
          | Protocol.Rejected _ -> st.st_rejected <- st.st_rejected + 1);
          st.st_history <-
            (reply.Protocol.rsp_seq, Protocol.status_tag reply.Protocol.rsp_status)
            :: st.st_history;
          (match p.p_req.Protocol.req_rid with
          | None -> ()
          | Some rid ->
              let key = dedup_key p.p_req.Protocol.req_analyst rid in
              dedup_insert t key line;
              Hashtbl.remove t.inflight key);
          p.p_reply <- Some reply)
        replies;
      Metrics.set_gauge t.m_queue_depth (float_of_int (Queue.length t.queue));
      Condition.broadcast t.cond);
  (* Burn-rate feed: cumulative totals are idempotent, so reporting after
     every batch is safe across retries and restarts alike. Lifetime values
     keep the monotone-CAS ledger honest across epoch pot refreshes. *)
  (let budget = Session.budget t.session in
   let spent = Budget.spent budget in
   let be, bd = t.base in
   Metrics.ledger_cum t.m_ledger ~eps:(be +. spent.Params.eps) ~delta:(bd +. spent.Params.delta)
     ~debits:(List.length (Budget.history budget)));
  (match t.journal with
  | Some j ->
      let bytes, records = Journal.size j in
      Metrics.set_gauge t.m_journal_bytes (float_of_int bytes);
      Metrics.set_gauge t.m_journal_records (float_of_int records)
  | None -> ());
  Metrics.set_gauge t.m_compaction_age (Unix.gettimeofday () -. t.last_compaction_at);
  mirror_counters t

let write_checkpoint t ~path ~why =
  Session.save t.session ~path;
  Option.iter
    (fun j ->
      Journal.append j (Journal.Mark "checkpoint");
      Journal.sync j)
    t.journal;
  Telemetry.mark t.telemetry "server.checkpoint"
    ~fields:[ ("path", Telemetry.Str path); ("seq", Telemetry.Int t.seq) ];
  Log.info (fun m -> m "%s checkpoint written to %s (seq %d)" why path t.seq)

(* The current dedup table in FIFO order — what the epoch snapshot carries
   across a compaction. [dedup_order] tracks the table exactly (push on
   first insert, pop on evict), so walking it recovers insertion order. *)
let dedup_entries t =
  locked t (fun () ->
      Queue.fold
        (fun acc key ->
          match Hashtbl.find_opt t.dedup key with
          | None -> acc
          | Some line -> (
              match String.index_opt key '\x1f' with
              | None -> acc
              | Some i ->
                  let analyst = String.sub key 0 i in
                  let rid = String.sub key (i + 1) (String.length key - i - 1) in
                  ((analyst, rid), line) :: acc))
        [] t.dedup_order
      |> List.rev)

(* The epoch transition, run on the serializer between batches. Protocol
   order (every step probed for fault injection; see Epoch):

     seal checkpoint → seal mark → SNAPSHOT COMMIT → new session →
     journal compaction → seal cleanup

   Any exception — injected crash, simulated or real disk fault — leaves
   the disk in a state Epoch.recover maps to exactly one whole epoch, and
   propagates out of [run] so the shard supervisor restarts through real
   recovery. *)
let do_transition t ~why =
  match t.epoch_cfg with
  | None -> ()
  | Some ec ->
      let t0 = Unix.gettimeofday () in
      let old_epoch = t.epoch in
      let new_epoch = old_epoch + 1 in
      Telemetry.span t.telemetry "server.epoch.transition"
        ~fields:
          [
            ("from", Telemetry.Int old_epoch);
            ("to", Telemetry.Int new_epoch);
            ("why", Telemetry.Str why);
          ]
        (fun () ->
          let seal = Epoch.seal_path ec.ep_snapshot in
          (* 1. Seal: the old session's exact state, durably. From here to
             the commit, recovery resumes this checkpoint and re-runs the
             transition deterministically — byte-identical outcome. *)
          Epoch.probe Epoch.Seal_checkpoint;
          Session.save t.session ~path:seal;
          Epoch.probe Epoch.Seal_mark;
          Option.iter
            (fun j ->
              Journal.append j (Journal.Mark "epoch.seal");
              Journal.sync j)
            t.journal;
          (* 2. Commit: everything the new generation is made from, behind
             one atomic rename. *)
          let rows = List.rev t.pending_ingest in
          let absorbed = Array.append t.absorbed (Array.of_list rows) in
          let spent = Budget.spent (Session.budget t.session) in
          let be, bd = t.base in
          let base = (be +. spent.Params.eps, bd +. spent.Params.delta) in
          let prior = Histogram.weights (Session.hypothesis t.session) in
          Epoch.write_snapshot ~path:ec.ep_snapshot
            {
              Epoch.sn_epoch = new_epoch;
              sn_seq = t.seq;
              sn_base_eps = fst base;
              sn_base_delta = snd base;
              sn_absorbed = absorbed;
              sn_prior = Some prior;
              sn_dedup = dedup_entries t;
              sn_ckpt = None;
            };
          (* 3. Roll forward — every step below is redone idempotently by
             recovery if we die partway. *)
          Epoch.probe Epoch.New_session;
          let session' = ec.ep_make ~epoch:new_epoch ~absorbed ~prior:(Some prior) in
          if Session.epoch session' <> new_epoch then
            invalid_arg
              (Printf.sprintf
                 "Broker: ep_make returned a session at dataset epoch %d, wanted %d"
                 (Session.epoch session') new_epoch);
          locked t (fun () ->
              t.session <- session';
              t.epoch <- new_epoch;
              t.base <- base;
              t.absorbed <- absorbed;
              t.pending_ingest <- [];
              t.pending_ingest_count <- 0;
              t.epoch_start_seq <- t.seq);
          let reclaimed = ref 0 in
          (match t.journal with
          | None -> ()
          | Some j ->
              let path = Journal.path j in
              let bytes_before, _ = Journal.size j in
              Journal.close j;
              (* no stale handle if compaction crashes partway *)
              locked t (fun () -> t.journal <- None);
              Epoch.compact ~journal_path:path ~epoch:new_epoch ~base ~seq:t.seq;
              (match Journal.open_journal ~path with
              | Error why ->
                  failwith ("epoch transition: journal reopen after compaction: " ^ why)
              | Ok (j', _) ->
                  locked t (fun () -> t.journal <- Some j');
                  let spent' = Budget.spent (Session.budget session') in
                  Journal.append j' (Journal.Mark "epoch.open");
                  Journal.append j'
                    (Journal.Debit
                       {
                         jd_mechanism = "baseline";
                         jd_eps = 0.;
                         jd_delta = 0.;
                         jd_cum_eps = spent'.Params.eps;
                         jd_cum_delta = spent'.Params.delta;
                       });
                  Journal.sync j';
                  t.last_cum <- (spent'.Params.eps, spent'.Params.delta);
                  let bytes_after, records_after = Journal.size j' in
                  reclaimed := max 0 (bytes_before - bytes_after);
                  Metrics.set_gauge t.m_journal_bytes (float_of_int bytes_after);
                  Metrics.set_gauge t.m_journal_records (float_of_int records_after)));
          t.last_compaction_at <- Unix.gettimeofday ();
          Metrics.set_gauge t.m_compaction_age 0.;
          Epoch.probe Epoch.Seal_cleanup;
          (try Sys.remove seal with Sys_error _ -> ());
          let dt = Unix.gettimeofday () -. t0 in
          Metrics.set_gauge t.m_epoch (float_of_int new_epoch);
          Metrics.observe t.m_transition dt;
          Metrics.tick t.m_transitions;
          Telemetry.incr t.telemetry "server_epoch_transitions";
          Telemetry.mark t.telemetry "epoch.transition"
            ~fields:
              [
                ("epoch", Telemetry.Int new_epoch);
                ("why", Telemetry.Str why);
                ("absorbed_rows", Telemetry.Int (List.length rows));
                ("base_eps", Telemetry.Float (fst base));
                ("base_delta", Telemetry.Float (snd base));
                ("seq", Telemetry.Int t.seq);
                ("reclaimed_bytes", Telemetry.Int !reclaimed);
                ("transition_s", Telemetry.Float dt);
              ];
          Log.info (fun m ->
              m "epoch %d -> %d (%s): absorbed %d rows, reclaimed %d journal bytes in %.3fs"
                old_epoch new_epoch why (List.length rows) !reclaimed dt))

(* An automatic roll is due once the epoch has served [ep_every] answers. *)
let periodic_epoch_due t =
  match t.epoch_cfg with
  | Some ec -> ec.ep_every > 0 && t.seq - t.epoch_start_seq >= ec.ep_every
  | None -> false

let run ?checkpoint t =
  Telemetry.mark t.telemetry "server.start"
    ~fields:
      [
        ("max_batch", Telemetry.Int t.cfg.max_batch);
        ("quota", Telemetry.Int t.cfg.quota);
        ("journal", Telemetry.Bool (t.journal <> None));
        ("first_seq", Telemetry.Int t.seq);
        ("epoch", Telemetry.Int t.epoch);
      ];
  (* A seal resumed at boot means a transition was in flight when we died
     and had not committed — re-run it before serving anything. *)
  let running = ref true in
  while !running do
    let action =
      locked t (fun () ->
          while Queue.is_empty t.queue && not t.draining && not t.epoch_due do
            Condition.wait t.cond t.lock
          done;
          if t.epoch_due && not t.draining then begin
            t.epoch_due <- false;
            `Transition
          end
          else if Queue.is_empty t.queue then begin
            (* draining and nothing left: this is the graceful-drain exit —
               every enqueued request has been answered (and journaled). *)
            t.stopped <- true;
            Condition.broadcast t.cond;
            `Stop
          end
          else begin
            let n = min t.cfg.max_batch (Queue.length t.queue) in
            `Batch (List.init n (fun _ -> Queue.pop t.queue))
          end)
    in
    match action with
    | `Stop -> running := false
    | `Transition -> do_transition t ~why:"requested"
    | `Batch items ->
        process_batch t items;
        if periodic_epoch_due t then do_transition t ~why:"periodic";
        (match checkpoint with
        | Some path
          when t.cfg.checkpoint_every > 0
               && t.seq - t.last_checkpoint_seq >= t.cfg.checkpoint_every ->
            t.last_checkpoint_seq <- t.seq;
            write_checkpoint t ~path ~why:"periodic"
        | _ -> ())
  done;
  mirror_counters t;
  if t.aborted then begin
    (* Simulated kill -9: no drain mark, no final checkpoint — the journal
       must look exactly as a real crash would leave it, so restart goes
       through the same replay/reconcile path a genuine kill exercises. *)
    Telemetry.mark t.telemetry "server.aborted"
      ~fields:[ ("processed", Telemetry.Int t.seq) ];
    Log.info (fun m -> m "aborted after %d queries" t.seq)
  end
  else begin
    (* Drain boundary goes to the journal before the final checkpoint: a
       replayer seeing the mark knows every journaled answer was released. *)
    Option.iter
      (fun j ->
        Journal.append j (Journal.Mark "drain");
        Journal.sync j)
      t.journal;
    (match checkpoint with
    | None -> ()
    | Some path ->
        t.last_checkpoint_seq <- t.seq;
        write_checkpoint t ~path ~why:"final");
    Telemetry.mark t.telemetry "server.drained"
      ~fields:[ ("processed", Telemetry.Int t.seq) ];
    Log.info (fun m -> m "drained after %d queries" t.seq)
  end

let shutdown t =
  locked t (fun () ->
      t.draining <- true;
      Condition.broadcast t.cond)

(* Crash-style stop: fail every queued request NOW and make [run] exit
   without the graceful-drain journal tail. Requests already drained into
   the serializer's current batch are untouched — they were admitted, will
   be journalled, and their replies still land; everything still in the
   queue gets a [Failed] reply so no client thread is left blocked on a
   broker whose serializer is gone. *)
let abort ?(reason = "shard aborted") t =
  locked t (fun () ->
      if not t.stopped then begin
        t.draining <- true;
        t.aborted <- true;
        Queue.iter
          (fun p ->
            if p.p_reply = None then begin
              p.p_reply <-
                Some
                  {
                    (rejected p.p_req reason) with
                    Protocol.rsp_status = Protocol.Failed reason;
                  };
              match p.p_req.Protocol.req_rid with
              | None -> ()
              | Some rid ->
                  Hashtbl.remove t.inflight (dedup_key p.p_req.Protocol.req_analyst rid)
            end)
          t.queue;
        Queue.clear t.queue;
        Condition.broadcast t.cond
      end)

let aborted t = locked t (fun () -> t.aborted)

let drained t = locked t (fun () -> t.stopped)
let processed t = locked t (fun () -> t.seq)
let session t = locked t (fun () -> t.session)
let dedup_hits t = Atomic.get t.dedup_hits
let epoch t = locked t (fun () -> t.epoch)
let epoch_base t = locked t (fun () -> t.base)
let pending_ingest t = locked t (fun () -> t.pending_ingest_count)

(* Lifetime (ε, δ): what sealed epochs retired plus the current pot's
   spend — the number an operator compares against a lifetime budget. *)
let lifetime_spent t =
  locked t (fun () ->
      let be, bd = t.base in
      let s = Budget.spent (Session.budget t.session) in
      { Params.eps = be +. s.Params.eps; delta = bd +. s.Params.delta })

(* Ask the serializer to roll the epoch before its next batch. False when
   epochs are not configured. *)
let request_epoch t =
  locked t (fun () ->
      match t.epoch_cfg with
      | None -> false
      | Some _ ->
          if not (t.draining || t.stopped) then begin
            t.epoch_due <- true;
            Condition.broadcast t.cond
          end;
          not (t.draining || t.stopped))

let journal_size t = locked t (fun () -> Option.map Journal.size t.journal)

(* Compaction swaps the journal handle out from under whoever opened it, so
   the broker owns closing: callers that passed [?journal] must close via
   this (after [run] returns), never their original handle. *)
let close_journal t =
  locked t (fun () ->
      Option.iter Journal.close t.journal;
      t.journal <- None)

let analysts t =
  locked t (fun () ->
      Hashtbl.fold
        (fun id st acc ->
          {
            an_id = id;
            an_submitted = st.st_submitted;
            an_answered = st.st_answered;
            an_degraded = st.st_degraded;
            an_refused = st.st_refused;
            an_rejected = st.st_rejected;
            an_deduped = st.st_deduped;
            an_history = List.rev st.st_history;
          }
          :: acc)
        t.analysts []
      |> List.sort (fun a b -> String.compare a.an_id b.an_id))
