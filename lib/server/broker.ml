module Session = Pmw_session.Session
module Online = Pmw_core.Online_pmw
module Cm_query = Pmw_core.Cm_query
module Telemetry = Pmw_telemetry.Telemetry

let log_src = Logs.Src.create "pmw.server" ~doc:"PMW query-server broker events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = { max_batch : int; quota : int; retry_after_s : float }

let default_config = { max_batch = 16; quota = 0; retry_after_s = 1. }

type analyst = {
  an_id : string;
  an_submitted : int;
  an_answered : int;
  an_degraded : int;
  an_refused : int;
  an_rejected : int;
  an_history : (int * string) list;
}

(* Mutable twin of [analyst]; all fields are guarded by the broker lock
   (submit bumps submitted/rejected, the serializer bumps the verdict
   tallies when it publishes replies). *)
type analyst_state = {
  mutable st_submitted : int;
  mutable st_answered : int;
  mutable st_degraded : int;
  mutable st_refused : int;
  mutable st_rejected : int;
  mutable st_history : (int * string) list;  (* newest first *)
}

type pending = {
  p_req : Protocol.request;
  p_enqueued_at : float;
  mutable p_reply : Protocol.response option;
}

type t = {
  session : Session.t;
  resolve : string -> Cm_query.t option;
  cfg : config;
  telemetry : Telemetry.t;
  lock : Mutex.t;
  cond : Condition.t;  (* queue became non-empty, a reply landed, or drain *)
  queue : pending Queue.t;
  analysts : (string, analyst_state) Hashtbl.t;
  mutable draining : bool;
  mutable stopped : bool;
  mutable seq : int;
  (* Submit-side rejection tallies. Telemetry emission is single-threaded by
     contract, and submit runs on client threads — so rejections land in
     atomics here and the serializer mirrors them into the telemetry
     counters between batches. *)
  rejected_budget : int Atomic.t;
  rejected_quota : int Atomic.t;
  rejected_draining : int Atomic.t;
}

let create ?(config = default_config) ~session ~resolve () =
  if config.max_batch < 1 then invalid_arg "Broker.create: max_batch must be >= 1";
  {
    session;
    resolve;
    cfg = config;
    telemetry = Session.telemetry session;
    lock = Mutex.create ();
    cond = Condition.create ();
    queue = Queue.create ();
    analysts = Hashtbl.create 16;
    draining = false;
    stopped = false;
    seq = 0;
    rejected_budget = Atomic.make 0;
    rejected_quota = Atomic.make 0;
    rejected_draining = Atomic.make 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let analyst_state t id =
  match Hashtbl.find_opt t.analysts id with
  | Some st -> st
  | None ->
      let st =
        {
          st_submitted = 0;
          st_answered = 0;
          st_degraded = 0;
          st_refused = 0;
          st_rejected = 0;
          st_history = [];
        }
      in
      Hashtbl.add t.analysts id st;
      st

let rejected ?retry_after_s req reason =
  {
    Protocol.rsp_id = req.Protocol.req_id;
    rsp_seq = -1;
    rsp_status = Protocol.Rejected { retry_after_s; reason };
    rsp_theta = None;
    rsp_source = None;
    rsp_update_index = None;
    rsp_batch = None;
    rsp_queue_wait_s = None;
  }

(* Admission, quota and enqueue run under one lock acquisition; the ledger
   fit test itself is atomic inside Budget. A request admitted here can
   still degrade if the pot moves before its oracle call — the
   authoritative check-and-debit stays in the session's authorize hook —
   but backpressure keeps the queue from filling with work that could only
   degrade. *)
let submit t req =
  let verdict =
    locked t (fun () ->
        let st = analyst_state t req.Protocol.req_analyst in
        if t.draining || t.stopped then begin
          Atomic.incr t.rejected_draining;
          st.st_rejected <- st.st_rejected + 1;
          Error (rejected req "server is draining")
        end
        else begin
          if t.cfg.quota > 0 && st.st_submitted >= t.cfg.quota then begin
            Atomic.incr t.rejected_quota;
            st.st_rejected <- st.st_rejected + 1;
            Error (rejected req (Printf.sprintf "analyst quota of %d queries reached" t.cfg.quota))
          end
          else
            match Session.admissible t.session with
            | Error why ->
                Atomic.incr t.rejected_budget;
                st.st_rejected <- st.st_rejected + 1;
                Error
                  (rejected ~retry_after_s:t.cfg.retry_after_s req
                     ("admission refused: " ^ why))
            | Ok () ->
                st.st_submitted <- st.st_submitted + 1;
                let p = { p_req = req; p_enqueued_at = Unix.gettimeofday (); p_reply = None } in
                Queue.push p t.queue;
                Condition.broadcast t.cond;
                Ok p
        end)
  in
  match verdict with
  | Error reply -> reply
  | Ok p ->
      locked t (fun () ->
          while p.p_reply = None do
            Condition.wait t.cond t.lock
          done;
          Option.get p.p_reply)

let source_str = function Online.From_hypothesis -> "hypothesis" | Online.From_oracle -> "oracle"

let response_of_verdict ~id ~seq ~batch ~queue_wait_s verdict =
  let base status theta source update_index =
    {
      Protocol.rsp_id = id;
      rsp_seq = seq;
      rsp_status = status;
      rsp_theta = theta;
      rsp_source = source;
      rsp_update_index = update_index;
      rsp_batch = Some batch;
      rsp_queue_wait_s = Some queue_wait_s;
    }
  in
  match verdict with
  | Online.Answered o ->
      base Protocol.Answered (Some o.Online.theta) (Some (source_str o.Online.source))
        (Some o.Online.update_index)
  | Online.Degraded (o, d) ->
      base
        (Protocol.Degraded (Online.degradation_to_string d))
        (Some o.Online.theta)
        (Some (source_str o.Online.source))
        (Some o.Online.update_index)
  | Online.Refused r -> base (Protocol.Refused (Online.refusal_to_string r)) None None None

let mirror_rejections t =
  Telemetry.set_counter t.telemetry "server_rejected_budget" (Atomic.get t.rejected_budget);
  Telemetry.set_counter t.telemetry "server_rejected_quota" (Atomic.get t.rejected_quota);
  Telemetry.set_counter t.telemetry "server_rejected_draining" (Atomic.get t.rejected_draining)

(* Serializer-side: answer one drained batch through a single
   [Session.batch] context so the deterministic solves are shared, then
   publish all replies under the lock in one broadcast. *)
let process_batch t items =
  let served_at = Unix.gettimeofday () in
  let batch_size = List.length items in
  Telemetry.observe t.telemetry "server.batch_size" (float_of_int batch_size);
  let b = Session.batch t.session in
  let replies =
    List.map
      (fun p ->
        let seq = t.seq in
        t.seq <- t.seq + 1;
        let queue_wait_s = Float.max 0. (served_at -. p.p_enqueued_at) in
        Telemetry.observe t.telemetry "server.queue_wait_s" queue_wait_s;
        let req = p.p_req in
        let reply =
          Telemetry.span t.telemetry "server.request"
            ~fields:
              [
                ("analyst", Telemetry.Str req.Protocol.req_analyst);
                ("query", Telemetry.Str req.Protocol.req_query);
                ("seq", Telemetry.Int seq);
                ("batch", Telemetry.Int batch_size);
              ]
            (fun () ->
              match t.resolve req.Protocol.req_query with
              | None ->
                  {
                    (rejected req ("unknown query " ^ req.Protocol.req_query)) with
                    Protocol.rsp_seq = seq;
                    rsp_status = Protocol.Failed ("unknown query " ^ req.Protocol.req_query);
                    rsp_batch = Some batch_size;
                    rsp_queue_wait_s = Some queue_wait_s;
                  }
              | Some q ->
                  response_of_verdict ~id:req.Protocol.req_id ~seq ~batch:batch_size ~queue_wait_s
                    (Session.batch_answer b q))
        in
        (p, reply))
      items
  in
  locked t (fun () ->
      List.iter
        (fun (p, reply) ->
          let st = analyst_state t p.p_req.Protocol.req_analyst in
          (match reply.Protocol.rsp_status with
          | Protocol.Answered -> st.st_answered <- st.st_answered + 1
          | Protocol.Degraded _ -> st.st_degraded <- st.st_degraded + 1
          | Protocol.Refused _ | Protocol.Failed _ -> st.st_refused <- st.st_refused + 1
          | Protocol.Rejected _ -> st.st_rejected <- st.st_rejected + 1);
          st.st_history <-
            (reply.Protocol.rsp_seq, Protocol.status_tag reply.Protocol.rsp_status)
            :: st.st_history;
          p.p_reply <- Some reply)
        replies;
      Condition.broadcast t.cond);
  mirror_rejections t

let run ?checkpoint t =
  Telemetry.mark t.telemetry "server.start"
    ~fields:
      [
        ("max_batch", Telemetry.Int t.cfg.max_batch);
        ("quota", Telemetry.Int t.cfg.quota);
      ];
  let running = ref true in
  while !running do
    let batch =
      locked t (fun () ->
          while Queue.is_empty t.queue && not t.draining do
            Condition.wait t.cond t.lock
          done;
          if Queue.is_empty t.queue then begin
            (* draining and nothing left: this is the graceful-drain exit —
               every enqueued request has been answered. *)
            t.stopped <- true;
            Condition.broadcast t.cond;
            []
          end
          else begin
            let n = min t.cfg.max_batch (Queue.length t.queue) in
            List.init n (fun _ -> Queue.pop t.queue)
          end)
    in
    match batch with
    | [] -> running := false
    | items -> process_batch t items
  done;
  mirror_rejections t;
  (match checkpoint with
  | None -> ()
  | Some path ->
      Session.save t.session ~path;
      Telemetry.mark t.telemetry "server.checkpoint" ~fields:[ ("path", Telemetry.Str path) ];
      Log.info (fun m -> m "final checkpoint written to %s" path));
  Telemetry.mark t.telemetry "server.drained"
    ~fields:[ ("processed", Telemetry.Int t.seq) ];
  Log.info (fun m -> m "drained after %d queries" t.seq)

let shutdown t =
  locked t (fun () ->
      t.draining <- true;
      Condition.broadcast t.cond)

let drained t = locked t (fun () -> t.stopped)
let processed t = locked t (fun () -> t.seq)
let session t = t.session

let analysts t =
  locked t (fun () ->
      Hashtbl.fold
        (fun id st acc ->
          {
            an_id = id;
            an_submitted = st.st_submitted;
            an_answered = st.st_answered;
            an_degraded = st.st_degraded;
            an_refused = st.st_refused;
            an_rejected = st.st_rejected;
            an_history = List.rev st.st_history;
          }
          :: acc)
        t.analysts []
      |> List.sort (fun a b -> String.compare a.an_id b.an_id))
