(** Unix-domain-socket front end for a request handler — a single
    {!Broker.submit} or a fleet {!Router.submit}: line-delimited
    {!Protocol} JSON over a stream socket, one reader thread per analyst
    connection, one in-flight request per connection (analysts are
    closed-loop). Malformed lines get an [error] response with [id = -1]
    (correlation lost) and the connection survives; a line that blows the
    {!Protocol.max_line_bytes} cap gets the error response and then the
    connection is closed, because framing cannot be resynchronized past an
    unbounded line. Every line in is answered by exactly one line out. *)

val ignore_sigpipe : unit Lazy.t
(** Forcing this makes a write to a vanished peer surface as [EPIPE]
    instead of a process-killing [SIGPIPE] (process-wide, once).
    {!listen}, {!Client.connect} and {!Flaky.start} force it; anything
    else that writes to sockets should too. *)

(** Bounded, deadline-aware line I/O over raw file descriptors — shared by
    the server's reader threads, the {!Client}, and the fault-injecting
    proxy in {!Flaky}. *)
module Io : sig
  type reader

  val reader : ?max_bytes:int -> Unix.file_descr -> reader
  (** [max_bytes] defaults to {!Protocol.max_line_bytes}. *)

  val read_line :
    reader -> [ `Line of string | `Too_long | `Eof | `Timeout | `Error of string ]
  (** Blocking bounded read of one ['\n']-terminated line (terminator not
      included). [`Too_long] once more than [max_bytes] arrive without a
      newline (the reader stops buffering — close the descriptor).
      [`Timeout] when the descriptor has a [SO_RCVTIMEO] deadline and it
      expired. EOF with a partial line pending is [`Eof]: the torn fragment
      is dropped, never parsed. *)

  val write_all : Unix.file_descr -> string -> unit
  (** Write the whole string, looping over partial writes and [EINTR].
      Raises [Unix.Unix_error] on failure (including [EAGAIN] when a send
      deadline is set). *)
end

type listener

val listen :
  ?metrics:Pmw_telemetry.Metrics.t ->
  handler:(Protocol.request -> Protocol.response) ->
  path:string ->
  unit ->
  listener
(** Bind (replacing any stale socket file at [path]), listen, and start the
    accept thread. [handler] runs on the per-connection reader threads and
    must be thread-safe and blocking-friendly ({!Broker.submit} and
    {!Router.submit} both qualify). [metrics] (default disabled) feeds the
    live metrics plane: [net_accepted] / [net_requests] / [net_bad_lines]
    rates, the [net.connections] gauge, and [net.read_s] (time to the next
    request line — client think time included, by design) and [net.write_s]
    (pure transmit time) histograms. Raises [Unix.Unix_error] if the bind
    fails. *)

val stop : listener -> unit
(** Stop accepting, wake every blocked connection, join the accept thread
    and remove the socket file. Does NOT drain the broker — call
    {!Broker.shutdown} for that; the usual order is [stop] (no new work)
    then [Broker.shutdown] (drain what's queued). *)

val path : listener -> string

(** A blocking client with per-call deadlines and an idempotent retry loop —
    what the load generator, the chaos harness and the tests speak; also a
    reference implementation of the protocol's framing. *)
module Client : sig
  (** Why a call failed. [Timeout] and [Closed] (and [Io_error]) are
      transport faults: the connection is dropped (the next call
      reconnects) and a retry with the same [rid] is safe — the broker
      serves the recorded answer if the original went through.
      [Protocol_error] means the peer spoke garbage; retrying won't help. *)
  type error = Timeout | Closed | Io_error of string | Protocol_error of string

  val error_to_string : error -> string

  type t

  val connect : ?deadline_s:float -> string -> t
  (** [deadline_s] arms [SO_RCVTIMEO]/[SO_SNDTIMEO] on the socket: any
      single read or write blocked longer surfaces as [Error Timeout]
      instead of hanging forever. Raises [Unix.Unix_error] if the server is
      not there. *)

  val call : t -> Protocol.request -> (Protocol.response, error) result
  (** Send one request line and block (up to the deadline) for the one
      response line. Reconnects transparently if a previous call dropped
      the connection. The response must correlate ([rsp_id] = [req_id]) —
      a parseable line answering anything else (a stale answer, the peer's
      [id = -1] reply to a corrupted line injected ahead of ours) is a
      retryable [Io_error]. Every [Error] drops the connection: after any
      fault the line framing cannot be trusted. *)

  type retry_policy = {
    rp_max_attempts : int;  (** total tries, first call included *)
    rp_base_delay_s : float;  (** backoff starts here, doubles per retry *)
    rp_max_delay_s : float;  (** cap on any single sleep *)
    rp_deadline_s : float;
        (** total wall-clock cap across the whole retry loop — when the
            next sleep would cross it, the latest outcome is returned
            instead; [<= 0] disables the cap *)
    rp_seed : int64;  (** jitter seed (mixed with the request id) *)
  }

  val default_retry : retry_policy
  (** 6 attempts, 50 ms base, 2 s per-sleep cap, 30 s total deadline. *)

  val call_with_retry :
    ?policy:retry_policy -> t -> Protocol.request -> (Protocol.response, error) result
  (** {!call} under capped exponential backoff with deterministic jitter
      (seeded from [rp_seed] and the request id). Retries transport faults
      ([Timeout]/[Closed]/[Io_error]) and [Rejected] responses that carry a
      [retry_after_s] hint (sleeping the hinted time, jittered) — bounded
      by {e both} [rp_max_attempts] and the [rp_deadline_s] wall clock.
      A [Partial] fleet verdict is a {e success}, never retried: its theta
      is usable at reduced coverage, and re-asking a degraded fleet from
      every client at once is exactly the retry storm the deadline exists
      to prevent. Stamp the request with a [rid] so a retry after a
      transport fault returns the recorded answer instead of spending
      fresh budget. *)

  val close : t -> unit
end
