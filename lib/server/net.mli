(** Unix-domain-socket front end for {!Broker}: line-delimited
    {!Protocol} JSON over a stream socket, one reader thread per analyst
    connection, one in-flight request per connection (analysts are
    closed-loop). Malformed lines get an [error] response with [id = -1]
    (correlation lost) and the connection survives; the protocol state never
    desynchronizes because every line in is answered by exactly one line
    out. *)

type listener

val listen : broker:Broker.t -> path:string -> listener
(** Bind (replacing any stale socket file at [path]), listen, and start the
    accept thread. Raises [Unix.Unix_error] if the bind fails. *)

val stop : listener -> unit
(** Stop accepting, wake every blocked connection, join the accept thread
    and remove the socket file. Does NOT drain the broker — call
    {!Broker.shutdown} for that; the usual order is [stop] (no new work)
    then [Broker.shutdown] (drain what's queued). *)

val path : listener -> string

(** A minimal blocking client — what the load generator and the tests
    speak; also a reference implementation of the protocol's framing. *)
module Client : sig
  type t

  val connect : string -> t
  (** Raises [Unix.Unix_error] if the server is not there. *)

  val call : t -> Protocol.request -> (Protocol.response, string) result
  (** Send one request line and block for the one response line. *)

  val close : t -> unit
end
