(* Unix-domain-socket front end for the broker. One reader thread per
   connection: read a request line, Broker.submit (blocking — the broker's
   serializer answers), write the response line. Analyst clients are
   closed-loop, so one in-flight request per connection is the natural
   discipline; N concurrent analysts are N connections. *)

let log_src = Logs.Src.create "pmw.server.net" ~doc:"PMW query-server socket front end"

module Log = (val Logs.src_log log_src : Logs.LOG)

type listener = {
  broker : Broker.t;
  path : string;
  sock : Unix.file_descr;
  mutable accept_thread : Thread.t option;  (* set once, right after creation *)
  conns : (Unix.file_descr, unit) Hashtbl.t;
  conns_lock : Mutex.t;
  mutable stopping : bool;
}

let error_line id why =
  Protocol.encode_response
    {
      Protocol.rsp_id = id;
      rsp_seq = -1;
      rsp_status = Protocol.Failed why;
      rsp_theta = None;
      rsp_source = None;
      rsp_update_index = None;
      rsp_batch = None;
      rsp_queue_wait_s = None;
    }

let serve_conn l fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let respond line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  (try
     let rec loop () =
       match input_line ic with
       | line ->
           (match Protocol.decode_request line with
           | Error why ->
               (* A malformed line cannot carry a trustworthy id; -1 tells the
                  client the correlation is lost but the connection survives. *)
               respond (error_line (-1) ("bad request: " ^ why))
           | Ok req -> respond (Protocol.encode_response (Broker.submit l.broker req)));
           loop ()
       | exception End_of_file -> ()
     in
     loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  Mutex.lock l.conns_lock;
  Hashtbl.remove l.conns fd;
  Mutex.unlock l.conns_lock;
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec accept_loop l =
  match Unix.accept l.sock with
  | fd, _ ->
      Mutex.lock l.conns_lock;
      Hashtbl.replace l.conns fd ();
      Mutex.unlock l.conns_lock;
      ignore (Thread.create (serve_conn l) fd : Thread.t);
      accept_loop l
  | exception Unix.Unix_error _ -> if not l.stopping then Log.warn (fun m -> m "accept failed")

let listen ~broker ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind sock (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen sock 64;
  Log.info (fun m -> m "listening on %s" path);
  let l =
    {
      broker;
      path;
      sock;
      accept_thread = None;
      conns = Hashtbl.create 16;
      conns_lock = Mutex.create ();
      stopping = false;
    }
  in
  l.accept_thread <- Some (Thread.create accept_loop l);
  l

let stop l =
  l.stopping <- true;
  (* shutdown (not just close) wakes the blocked accept on Linux; readers
     blocked in input_line are woken the same way. *)
  (try Unix.shutdown l.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close l.sock with Unix.Unix_error _ -> ());
  (match l.accept_thread with Some th -> Thread.join th | None -> ());
  Mutex.lock l.conns_lock;
  let fds = Hashtbl.fold (fun fd () acc -> fd :: acc) l.conns [] in
  Mutex.unlock l.conns_lock;
  List.iter (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()) fds;
  try Unix.unlink l.path with Unix.Unix_error _ -> ()

let path l = l.path

module Client = struct
  type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

  let connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

  let call c req =
    match
      output_string c.oc (Protocol.encode_request req);
      output_char c.oc '\n';
      flush c.oc;
      input_line c.ic
    with
    | line -> Protocol.decode_response line
    | exception End_of_file -> Error "connection closed by server"
    | exception Sys_error why -> Error why
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()
end
