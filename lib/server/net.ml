(* Unix-domain-socket front end for the broker. One reader thread per
   connection: read a request line, Broker.submit (blocking — the broker's
   serializer answers), write the response line. Analyst clients are
   closed-loop, so one in-flight request per connection is the natural
   discipline; N concurrent analysts are N connections. *)

module Splitmix64 = Pmw_rng.Splitmix64
module Metrics = Pmw_telemetry.Metrics

let log_src = Logs.Src.create "pmw.server.net" ~doc:"PMW query-server socket front end"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* A peer that vanishes mid-write (a killed server, a dropped client)
   must surface as EPIPE on the write, not as a process-killing SIGPIPE.
   Forced by every entry point that hands out a socket. *)
let ignore_sigpipe =
  lazy (if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

(* Bounded, deadline-aware line I/O over raw fds. The server cannot trust a
   peer to frame lines (a hostile or truncating client may never send '\n'),
   so the reader enforces a byte cap; deadlines arrive as SO_RCVTIMEO on the
   descriptor, surfacing as [`Timeout] instead of an unbounded block. *)
module Io = struct
  type reader = {
    rd_fd : Unix.file_descr;
    rd_max : int;
    mutable rd_acc : string;  (* received bytes not yet returned as lines *)
  }

  let reader ?(max_bytes = Protocol.max_line_bytes) fd =
    { rd_fd = fd; rd_max = max_bytes; rd_acc = "" }

  let chunk = 4096

  let rec read_line r =
    match String.index_opt r.rd_acc '\n' with
    | Some i ->
        let line = String.sub r.rd_acc 0 i in
        r.rd_acc <- String.sub r.rd_acc (i + 1) (String.length r.rd_acc - i - 1);
        if String.length line > r.rd_max then `Too_long else `Line line
    | None ->
        if String.length r.rd_acc > r.rd_max then `Too_long
        else begin
          let buf = Bytes.create chunk in
          match Unix.read r.rd_fd buf 0 chunk with
          | 0 ->
              (* EOF with a partial line pending means the peer tore the
                 final line; the fragment is dropped, never parsed. *)
              `Eof
          | n ->
              r.rd_acc <- r.rd_acc ^ Bytes.sub_string buf 0 n;
              read_line r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line r
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `Timeout
          | exception Unix.Unix_error (Unix.ETIMEDOUT, _, _) -> `Timeout
          | exception Unix.Unix_error (e, _, _) -> `Error (Unix.error_message e)
        end

  (* Partial writes are legal on sockets; loop until every byte is down.
     Raises [Unix.Unix_error] (including EAGAIN when a send deadline is
     set) — callers translate. *)
  let write_all fd s =
    let b = Bytes.unsafe_of_string s in
    let n = Bytes.length b in
    let w = ref 0 in
    while !w < n do
      match Unix.write fd b !w (n - !w) with
      | k -> w := !w + k
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
end

type listener = {
  handler : Protocol.request -> Protocol.response;
  path : string;
  sock : Unix.file_descr;
  mutable accept_thread : Thread.t option;  (* set once, right after creation *)
  conns : (Unix.file_descr, unit) Hashtbl.t;
  conns_lock : Mutex.t;
  mutable stopping : bool;
  (* Metrics handles are concurrent: reader threads hit them directly. *)
  timed : bool;
  m_accepted : Metrics.rate;
  m_requests : Metrics.rate;
  m_bad_lines : Metrics.rate;
  m_conns : Metrics.gauge;
  m_read : Metrics.histogram;
  m_write : Metrics.histogram;
}

let error_line id why =
  Protocol.encode_response
    {
      Protocol.rsp_id = id;
      rsp_seq = -1;
      rsp_status = Protocol.Failed why;
      rsp_theta = None;
      rsp_source = None;
      rsp_update_index = None;
      rsp_batch = None;
      rsp_queue_wait_s = None;
      rsp_spent_eps = None;
      rsp_spent_delta = None;
      rsp_epoch = None;
      rsp_body = None;
    }

let conn_gauge l =
  Mutex.lock l.conns_lock;
  let n = Hashtbl.length l.conns in
  Mutex.unlock l.conns_lock;
  Metrics.set_gauge l.m_conns (float_of_int n)

let serve_conn l fd =
  let r = Io.reader fd in
  let respond line =
    (* net.write_s is pure transmit time: how long pushing one response
       line into the socket takes (blocking on a slow reader included). *)
    if l.timed then begin
      let t0 = Unix.gettimeofday () in
      Io.write_all fd (line ^ "\n");
      Metrics.observe l.m_write (Unix.gettimeofday () -. t0)
    end
    else Io.write_all fd (line ^ "\n")
  in
  let timed_read () =
    (* net.read_s is time-to-next-request — for closed-loop analysts this
       includes client think time, which is exactly the idle-vs-busy split
       an operator wants next to server.request_s. *)
    if l.timed then begin
      let t0 = Unix.gettimeofday () in
      let res = Io.read_line r in
      Metrics.observe l.m_read (Unix.gettimeofday () -. t0);
      res
    end
    else Io.read_line r
  in
  let rec loop () =
    match timed_read () with
    | `Line line ->
        (match Protocol.decode_request line with
        | Error why ->
            (* A malformed line cannot carry a trustworthy id; -1 tells the
               client the correlation is lost but the connection survives. *)
            Metrics.tick l.m_bad_lines;
            respond (error_line (-1) ("bad request: " ^ why))
        | Ok req ->
            Metrics.tick l.m_requests;
            respond (Protocol.encode_response (l.handler req)));
        loop ()
    | `Too_long ->
        (* Framing is unrecoverable past the cap (no '\n' in sight): say
           why, then hang up rather than buffer without bound. *)
        Metrics.tick l.m_bad_lines;
        respond
          (error_line (-1)
             (Printf.sprintf "bad request: line exceeds %d bytes" Protocol.max_line_bytes))
    | `Timeout -> loop ()  (* the server sets no read deadline; defensive *)
    | `Eof | `Error _ -> ()
  in
  (try loop () with Sys_error _ | Unix.Unix_error _ -> ());
  Mutex.lock l.conns_lock;
  Hashtbl.remove l.conns fd;
  Mutex.unlock l.conns_lock;
  conn_gauge l;
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec accept_loop l =
  match Unix.accept l.sock with
  | fd, _ ->
      Mutex.lock l.conns_lock;
      Hashtbl.replace l.conns fd ();
      Mutex.unlock l.conns_lock;
      Metrics.tick l.m_accepted;
      conn_gauge l;
      ignore (Thread.create (serve_conn l) fd : Thread.t);
      accept_loop l
  | exception Unix.Unix_error _ -> if not l.stopping then Log.warn (fun m -> m "accept failed")

let listen ?(metrics = Metrics.disabled ()) ~handler ~path () =
  Lazy.force ignore_sigpipe;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind sock (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen sock 64;
  Log.info (fun m -> m "listening on %s" path);
  let l =
    {
      handler;
      path;
      sock;
      accept_thread = None;
      conns = Hashtbl.create 16;
      conns_lock = Mutex.create ();
      stopping = false;
      timed = Metrics.is_enabled metrics;
      m_accepted = Metrics.rate metrics "net_accepted";
      m_requests = Metrics.rate metrics "net_requests";
      m_bad_lines = Metrics.rate metrics "net_bad_lines";
      m_conns = Metrics.gauge metrics "net.connections";
      m_read = Metrics.histogram metrics "net.read_s";
      m_write = Metrics.histogram metrics "net.write_s";
    }
  in
  l.accept_thread <- Some (Thread.create accept_loop l);
  l

let stop l =
  l.stopping <- true;
  (* shutdown (not just close) wakes the blocked accept on Linux; readers
     blocked in read are woken the same way. *)
  (try Unix.shutdown l.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close l.sock with Unix.Unix_error _ -> ());
  (match l.accept_thread with Some th -> Thread.join th | None -> ());
  Mutex.lock l.conns_lock;
  let fds = Hashtbl.fold (fun fd () acc -> fd :: acc) l.conns [] in
  Mutex.unlock l.conns_lock;
  List.iter (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()) fds;
  try Unix.unlink l.path with Unix.Unix_error _ -> ()

let path l = l.path

module Client = struct
  type error =
    | Timeout
    | Closed
    | Io_error of string
    | Protocol_error of string

  let error_to_string = function
    | Timeout -> "timeout"
    | Closed -> "connection closed"
    | Io_error why -> "i/o error: " ^ why
    | Protocol_error why -> "protocol error: " ^ why

  type t = {
    cl_path : string;
    cl_deadline_s : float option;
    mutable cl_conn : (Unix.file_descr * Io.reader) option;
  }

  let set_deadlines fd = function
    | None -> ()
    | Some s ->
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO s

  let connect_fd path deadline_s =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match
      Unix.connect fd (Unix.ADDR_UNIX path);
      set_deadlines fd deadline_s
    with
    | () -> fd
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e

  let connect ?deadline_s path =
    Lazy.force ignore_sigpipe;
    let fd = connect_fd path deadline_s in
    { cl_path = path; cl_deadline_s = deadline_s; cl_conn = Some (fd, Io.reader fd) }

  let disconnect c =
    match c.cl_conn with
    | None -> ()
    | Some (fd, _) ->
        c.cl_conn <- None;
        (try Unix.close fd with Unix.Unix_error _ -> ())

  let ensure_conn c =
    match c.cl_conn with
    | Some conn -> Ok conn
    | None -> (
        match connect_fd c.cl_path c.cl_deadline_s with
        | fd ->
            let conn = (fd, Io.reader fd) in
            c.cl_conn <- Some conn;
            Ok conn
        | exception Unix.Unix_error _ -> Error Closed)

  (* After a timeout or I/O failure the framing is ambiguous (a response may
     be half-delivered), so the connection is dropped; the next call (or the
     retry loop) reconnects. Idempotency across that drop is the rid's job. *)
  let call c req =
    match ensure_conn c with
    | Error e -> Error e
    | Ok (fd, r) -> (
        match
          Io.write_all fd (Protocol.encode_request req ^ "\n");
          Io.read_line r
        with
        | `Line line -> (
            match Protocol.decode_response line with
            | Ok rsp when rsp.Protocol.rsp_id = req.Protocol.req_id -> Ok rsp
            | Ok _ ->
                (* a line that parses but answers some other request — e.g.
                   the peer's [id = -1] error reply to a corrupted line
                   injected ahead of ours. Framing is desynchronized;
                   reconnect and let the retry (same rid) re-correlate. *)
                disconnect c;
                Error (Io_error "response does not correlate with the request")
            | Error why ->
                (* after an unparseable line nothing downstream can be
                   trusted to pair with our requests *)
                disconnect c;
                Error (Protocol_error why))
        | `Too_long ->
            disconnect c;
            Error (Protocol_error "response line exceeds the protocol limit")
        | `Timeout ->
            disconnect c;
            Error Timeout
        | `Eof ->
            disconnect c;
            Error Closed
        | `Error why ->
            disconnect c;
            Error (Io_error why)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) ->
            disconnect c;
            Error Timeout
        | exception Unix.Unix_error (e, _, _) ->
            disconnect c;
            Error (Io_error (Unix.error_message e))
        | exception Sys_error why ->
            disconnect c;
            Error (Io_error why))

  type retry_policy = {
    rp_max_attempts : int;
    rp_base_delay_s : float;
    rp_max_delay_s : float;
    rp_deadline_s : float;
    rp_seed : int64;
  }

  let default_retry =
    {
      rp_max_attempts = 6;
      rp_base_delay_s = 0.05;
      rp_max_delay_s = 2.;
      rp_deadline_s = 30.;
      rp_seed = 0x9E3779B97F4A7C15L;
    }

  let retryable = function
    | Timeout | Closed | Io_error _ -> true
    | Protocol_error _ -> false

  let call_with_retry ?(policy = default_retry) c req =
    (* Deterministic jitter: seeded per request so two analysts (or two
       runs) never sync their backoff, yet a given run replays exactly. *)
    let rng =
      Splitmix64.create (Int64.logxor policy.rp_seed (Int64.of_int req.Protocol.req_id))
    in
    let frac () = float_of_int (Splitmix64.next_in rng ~bound:1000) /. 1000. in
    let backoff attempt =
      let expo = policy.rp_base_delay_s *. (2. ** float_of_int attempt) in
      Float.min policy.rp_max_delay_s expo *. (0.5 +. (0.5 *. frac ()))
    in
    let sleep s = if s > 0. then Thread.delay s in
    (* Wall-clock cap across the WHOLE loop, not just an attempt count: a
       policy that retries N times with server-hinted sleeps can otherwise
       stall a caller far past any attempt-derived bound. When the next
       sleep would cross the deadline, the loop returns its latest outcome
       instead of sleeping. [rp_deadline_s <= 0] disables the cap. *)
    let started = Unix.gettimeofday () in
    let budget_for s =
      policy.rp_deadline_s <= 0.
      || Unix.gettimeofday () -. started +. s <= policy.rp_deadline_s
    in
    let rec go attempt =
      match call c req with
      | Ok ({ Protocol.rsp_status = Protocol.Partial _; _ } as rsp) ->
          (* A Partial verdict is a SUCCESS: the theta is usable, just at
             reduced coverage, and its retry_after_s field is advice about
             when the fleet may heal — not an instruction to re-ask now.
             Retrying it would turn every degraded window into a
             thundering-herd retry storm against the surviving shards. *)
          Ok rsp
      | Ok { Protocol.rsp_status = Protocol.Rejected { retry_after_s = Some after; _ }; _ }
        as outcome
        when attempt + 1 < policy.rp_max_attempts ->
          (* backpressure: honor the server's hint (jittered up, capped) *)
          let s = Float.min policy.rp_max_delay_s (after *. (1. +. (0.25 *. frac ()))) in
          if budget_for s then begin
            sleep s;
            go (attempt + 1)
          end
          else outcome
      | Ok rsp -> Ok rsp
      | Error e when retryable e && attempt + 1 < policy.rp_max_attempts ->
          let s = backoff attempt in
          if budget_for s then begin
            sleep s;
            go (attempt + 1)
          end
          else Error e
      | Error e -> Error e
    in
    go 0

  let close c = disconnect c
end
