module Params = Pmw_dp.Params
module Telemetry = Pmw_telemetry.Telemetry
module Metrics = Pmw_telemetry.Metrics

let log_src = Logs.Src.create "pmw.router" ~doc:"PMW serving-fleet routing tier"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  rt_deadline_s : float;
  rt_retry_after_s : float;
  rt_allow_ctl : bool;
  rt_ingest_route : (int -> int) option;
      (* row value -> owning shard id, mirroring the fleet's partition key
         (hash sharding routes by the same mix; block sharding appends to a
         designated shard). None = ingest not routable at this tier. *)
}

let default_config =
  { rt_deadline_s = 5.; rt_retry_after_s = 0.25; rt_allow_ctl = false; rt_ingest_route = None }

(* Pending fleet.request trace marks are capped: a fleet under load with no
   supervisor draining them must not grow the list without bound. Overflow
   is counted (fleet_trace_marks_dropped) and surfaced in the losses
   section of [pmw_cli stats]. *)
let trace_marks_cap = 4096

type t = {
  cfg : config;
  shards : Shard.t array;
  seq : int Atomic.t;
  (* Verdict tallies live in atomics: submits run on arbitrary client
     threads, and the telemetry single-writer contract means the supervisor
     (one thread) mirrors these into the trace, never the router itself. *)
  n_answered : int Atomic.t;
  n_degraded : int Atomic.t;
  n_partial : int Atomic.t;
  n_refused : int Atomic.t;
  n_failed : int Atomic.t;
  n_ctl : int Atomic.t;
  (* Live metrics (concurrent handles — client threads hit these directly,
     unlike telemetry). *)
  metrics : Metrics.t;
  m_request : Metrics.histogram;
  m_fanout : Metrics.histogram;
  m_coverage : Metrics.histogram;
  m_answered : Metrics.rate;
  m_degraded : Metrics.rate;
  m_partial : Metrics.rate;
  m_refused : Metrics.rate;
  m_failed : Metrics.rate;
  m_ctl : Metrics.rate;
  m_shard_ok : Metrics.rate array;
  m_shard_miss : Metrics.rate array;
  m_fleet_ledger : Metrics.ledger;
  (* Distributed tracing: the router stamps a trace id + its own span id on
     every fan-out, and records one "fleet.request" mark per composed
     request. It cannot emit telemetry itself (client threads), so marks
     queue here until the supervisor's single thread drains them via
     [trace_marks] into the fleet trace. *)
  trace_nonce : string;
  span_seq : int Atomic.t;
  marks_lock : Mutex.t;
  mutable marks : (string * Telemetry.value) list list;  (* newest first *)
  mutable marks_len : int;
  marks_dropped : int Atomic.t;
}

let create ?(config = default_config) ?(metrics = Metrics.disabled ()) ~shards () =
  if Array.length shards = 0 then invalid_arg "Router.create: no shards";
  {
    cfg = config;
    shards;
    seq = Atomic.make 0;
    n_answered = Atomic.make 0;
    n_degraded = Atomic.make 0;
    n_partial = Atomic.make 0;
    n_refused = Atomic.make 0;
    n_failed = Atomic.make 0;
    n_ctl = Atomic.make 0;
    metrics;
    m_request = Metrics.histogram metrics "router.request_s";
    m_fanout = Metrics.histogram metrics "router.fanout_shards";
    m_coverage = Metrics.histogram metrics "router.coverage";
    m_answered = Metrics.rate metrics "fleet_answered";
    m_degraded = Metrics.rate metrics "fleet_degraded";
    m_partial = Metrics.rate metrics "fleet_partial";
    m_refused = Metrics.rate metrics "fleet_refused";
    m_failed = Metrics.rate metrics "fleet_failed";
    m_ctl = Metrics.rate metrics "fleet_ctl";
    m_shard_ok =
      Array.init (Array.length shards) (fun i ->
          Metrics.rate metrics (Printf.sprintf "router.shard%d.contributed" i));
    m_shard_miss =
      Array.init (Array.length shards) (fun i ->
          Metrics.rate metrics (Printf.sprintf "router.shard%d.missing" i));
    m_fleet_ledger = Metrics.ledger metrics "fleet";
    trace_nonce =
      Printf.sprintf "%08x"
        (Hashtbl.hash (Unix.gettimeofday (), Unix.getpid ()) land 0xFFFFFFF);
    span_seq = Atomic.make 0;
    marks_lock = Mutex.create ();
    marks = [];
    marks_len = 0;
    marks_dropped = Atomic.make 0;
  }

let shards t = t.shards
let processed t = Atomic.get t.seq
let metrics t = t.metrics

let push_mark t fields =
  Mutex.lock t.marks_lock;
  if t.marks_len < trace_marks_cap then begin
    t.marks <- fields :: t.marks;
    t.marks_len <- t.marks_len + 1
  end
  else Atomic.incr t.marks_dropped;
  Mutex.unlock t.marks_lock

let trace_marks t =
  Mutex.lock t.marks_lock;
  let marks = t.marks in
  t.marks <- [];
  t.marks_len <- 0;
  Mutex.unlock t.marks_lock;
  List.rev_map (fun fields -> ("fleet.request", fields)) marks

let fleet_spent t =
  Array.fold_left
    (fun acc s ->
      let sp = Shard.spent s in
      Params.create
        ~eps:(Float.max acc.Params.eps sp.Params.eps)
        ~delta:(Float.max acc.Params.delta sp.Params.delta))
    (Params.create ~eps:0. ~delta:0.)
    t.shards

let counters t =
  [
    ("fleet_answered", Atomic.get t.n_answered);
    ("fleet_degraded", Atomic.get t.n_degraded);
    ("fleet_partial", Atomic.get t.n_partial);
    ("fleet_refused", Atomic.get t.n_refused);
    ("fleet_failed", Atomic.get t.n_failed);
    ("fleet_ctl", Atomic.get t.n_ctl);
    ("fleet_trace_marks_dropped", Atomic.get t.marks_dropped);
  ]

let base_response req ~seq status =
  {
    Protocol.rsp_id = req.Protocol.req_id;
    rsp_seq = seq;
    rsp_status = status;
    rsp_theta = None;
    rsp_source = None;
    rsp_update_index = None;
    rsp_batch = None;
    rsp_queue_wait_s = None;
    rsp_spent_eps = None;
    rsp_spent_delta = None;
    rsp_epoch = None;
    rsp_body = None;
  }

(* --- control plane (chaos harness) --- *)

let state_code = function
  | Shard.Stopped -> 0.
  | Shard.Starting -> 1.
  | Shard.Running -> 2.
  | Shard.Draining -> 3.
  | Shard.Crashed -> 4.
  | Shard.Quarantined -> 5.

let ctl t req =
  Atomic.incr t.n_ctl;
  Metrics.tick t.m_ctl;
  let ok theta =
    { (base_response req ~seq:(-1) Protocol.Answered) with
      Protocol.rsp_theta = Some theta;
      rsp_source = Some "ctl";
    }
  in
  let fail why =
    { (base_response req ~seq:(-1) (Protocol.Failed why)) with Protocol.rsp_source = Some "ctl" }
  in
  (* ctl-plane answers carrying a payload (the metrics snapshot) ride in
     rsp_body; the line must stay under Protocol.max_line_bytes or the
     client's framing breaks, so oversized snapshots fail typed instead. *)
  let ok_body body =
    if String.length body > Protocol.max_line_bytes - 512 then
      fail
        (Printf.sprintf "metrics snapshot too large (%d bytes)" (String.length body))
    else
      { (base_response req ~seq:(-1) Protocol.Answered) with
        Protocol.rsp_source = Some "ctl";
        rsp_body = Some body;
      }
  in
  match req.Protocol.req_query with
  | "ctl:health" -> ok (Array.map (fun s -> state_code (Shard.state s)) t.shards)
  | "ctl:metrics" -> ok_body (Metrics.to_json t.metrics)
  | "ctl:metrics:prom" -> ok_body (Metrics.to_prometheus t.metrics)
  | "ctl:spent" ->
      let s = fleet_spent t in
      ok [| s.Params.eps; s.Params.delta |]
  | "ctl:epochs" ->
      (* per-shard dataset generation; -1 for shards that are down (their
         epoch is only knowable from their snapshot, which lives shard-side) *)
      ok
        (Array.map
           (fun s -> match Shard.epoch s with Some e -> float_of_int e | None -> -1.)
           t.shards)
  | q when String.length q > 9 && String.sub q 0 9 = "ctl:kill:" -> (
      match int_of_string_opt (String.sub q 9 (String.length q - 9)) with
      | Some i when i >= 0 && i < Array.length t.shards ->
          if Shard.kill t.shards.(i) then ok [| 1. |]
          else fail (Printf.sprintf "shard %d is not running" i)
      | _ -> fail ("bad ctl kill target in " ^ q))
  | q when String.length q > 10 && String.sub q 0 10 = "ctl:epoch:" -> (
      (* operator-triggered epoch roll: asynchronous, the shard's serializer
         transitions before its next batch; poll ctl:epochs to observe it *)
      match int_of_string_opt (String.sub q 10 (String.length q - 10)) with
      | Some i when i >= 0 && i < Array.length t.shards ->
          if Shard.request_epoch t.shards.(i) then ok [| 1. |]
          else fail (Printf.sprintf "shard %d cannot roll its epoch (down or epochs not configured)" i)
      | _ -> fail ("bad ctl epoch target in " ^ q))
  | q -> fail ("unknown ctl query " ^ q)

(* --- covering set --- *)

let covering t req =
  match req.Protocol.req_shards with
  | None -> Ok (List.init (Array.length t.shards) Fun.id)
  | Some [] -> Error "empty shard scope"
  | Some ids ->
      let n = Array.length t.shards in
      let sorted = List.sort_uniq compare ids in
      if List.for_all (fun i -> i >= 0 && i < n) sorted then Ok sorted
      else
        Error
          (Printf.sprintf "unknown shard id %d (fleet has %d shards)"
             (List.find (fun i -> i < 0 || i >= n) sorted)
             n)

(* --- fan-out --- *)

(* One thread per covering shard; a poller thread enforces the per-shard
   deadline (Condition.t has no timed wait). Late answers after the deadline
   are dropped — the shard that produced them already journalled its work,
   and its dedup table re-serves the recorded bytes if the client retries
   the same rid, so nothing is double-spent by abandoning a slow reply. *)
let fanout t req ids =
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let remaining = ref (List.length ids) in
  let timed_out = ref false in
  let results = ref [] in
  List.iter
    (fun i ->
      ignore
        (Thread.create
           (fun () ->
             let r = try Shard.submit t.shards.(i) req with _ -> None in
             Mutex.lock lock;
             results := (i, r) :: !results;
             decr remaining;
             Condition.broadcast cond;
             Mutex.unlock lock)
           ()))
    ids;
  if t.cfg.rt_deadline_s > 0. then begin
    let deadline_at = Unix.gettimeofday () +. t.cfg.rt_deadline_s in
    ignore
      (Thread.create
         (fun () ->
           let finished () =
             Mutex.lock lock;
             let d = !remaining <= 0 || !timed_out in
             Mutex.unlock lock;
             d
           in
           let rec loop () =
             if not (finished ()) then begin
               let left = deadline_at -. Unix.gettimeofday () in
               if left <= 0. then begin
                 Mutex.lock lock;
                 timed_out := true;
                 Condition.broadcast cond;
                 Mutex.unlock lock
               end
               else begin
                 Thread.delay (Float.min 0.02 left);
                 loop ()
               end
             end
           in
           loop ())
         ())
  end;
  Mutex.lock lock;
  while !remaining > 0 && not !timed_out do
    Condition.wait cond lock
  done;
  let snapshot = !results in
  Mutex.unlock lock;
  snapshot

(* --- composition --- *)

type miss = { m_id : int; m_why : string; m_retry : float option }

let compose t req ~ids results =
  let seq = Atomic.fetch_and_add t.seq 1 in
  let contributing, missing =
    List.partition_map
      (fun i ->
        match List.assoc_opt i results with
        | Some (Some rsp) -> (
            match (rsp.Protocol.rsp_status, rsp.Protocol.rsp_theta) with
            | (Protocol.Answered | Protocol.Degraded _ | Protocol.Partial _), Some theta ->
                Either.Left (i, rsp, theta)
            | Protocol.Rejected { retry_after_s; reason = _ }, _ ->
                Either.Right { m_id = i; m_why = "rejected"; m_retry = retry_after_s }
            | status, _ ->
                Either.Right
                  { m_id = i; m_why = Protocol.status_tag status; m_retry = None })
        | Some None ->
            Either.Right
              {
                m_id = i;
                m_why = Shard.state_to_string (Shard.state t.shards.(i));
                m_retry = None;
              }
        | None -> Either.Right { m_id = i; m_why = "deadline"; m_retry = None })
      ids
  in
  let weight_of i = Shard.weight t.shards.(i) in
  let covering_w = List.fold_left (fun acc i -> acc +. weight_of i) 0. ids in
  let summary misses =
    String.concat "; "
      (List.map (fun m -> Printf.sprintf "shard %d: %s" m.m_id m.m_why) misses)
  in
  let status, theta =
    match contributing with
    | [] ->
        let all_backpressure =
          missing <> [] && List.for_all (fun m -> m.m_why = "rejected") missing
        in
        if all_backpressure then
          (* every covering shard said try-again: surface it as admission
             backpressure (with the largest hint), not a terminal refusal *)
          ( Protocol.Rejected
              {
                retry_after_s =
                  List.fold_left
                    (fun acc m ->
                      match (acc, m.m_retry) with
                      | None, h -> h
                      | h, None -> h
                      | Some a, Some b -> Some (Float.max a b))
                    None missing;
                reason = summary missing;
              },
            None )
        else (Protocol.Refused ("no shard could answer: " ^ summary missing), None)
    | (_, _, first_theta) :: _ ->
        let dim = Array.length first_theta in
        let usable =
          List.filter (fun (_, _, th) -> Array.length th = dim) contributing
        in
        let total_w = List.fold_left (fun acc (i, _, _) -> acc +. weight_of i) 0. usable in
        let acc = Array.make dim 0. in
        List.iter
          (fun (i, _, th) ->
            let w = weight_of i /. total_w in
            Array.iteri (fun k v -> acc.(k) <- acc.(k) +. (w *. v)) th)
          usable;
        if missing = [] then
          let degraded =
            List.filter_map
              (fun (i, rsp, _) ->
                match rsp.Protocol.rsp_status with
                | Protocol.Degraded why -> Some (Printf.sprintf "shard %d: %s" i why)
                | _ -> None)
              contributing
          in
          match degraded with
          | [] -> (Protocol.Answered, Some acc)
          | reasons -> (Protocol.Degraded (String.concat "; " reasons), Some acc)
        else
          let contributed_w =
            List.fold_left (fun a (i, _, _) -> a +. weight_of i) 0. contributing
          in
          ( Protocol.Partial
              {
                missing_shards = List.map (fun m -> m.m_id) missing;
                coverage = (if covering_w > 0. then contributed_w /. covering_w else 0.);
                retry_after_s = Some t.cfg.rt_retry_after_s;
                reason = summary missing;
              },
            Some acc )
  in
  (* Epoch accounting: the composed answer is stamped with the OLDEST
     generation that contributed (a fleet answer is only as fresh as its
     stalest shard), and a mixed-generation blend is surfaced as degradation
     — the weighted average then spans datasets that disagree about which
     ingested rows exist, which the caller must be able to see. *)
  let epochs =
    List.filter_map (fun (_, rsp, _) -> rsp.Protocol.rsp_epoch) contributing
  in
  let rsp_epoch =
    match epochs with [] -> None | e :: rest -> Some (List.fold_left min e rest)
  in
  let status =
    match (epochs, rsp_epoch) with
    | _ :: _ :: _, Some lo ->
        let hi = List.fold_left max lo epochs in
        if hi = lo then status
        else
          let skew = Printf.sprintf "epoch skew: shards span generations %d..%d" lo hi in
          (match status with
          | Protocol.Answered -> Protocol.Degraded skew
          | Protocol.Degraded why -> Protocol.Degraded (why ^ "; " ^ skew)
          | Protocol.Partial p -> Protocol.Partial { p with reason = p.reason ^ "; " ^ skew }
          | s -> s)
    | _ -> status
  in
  (match status with
  | Protocol.Answered ->
      Atomic.incr t.n_answered;
      Metrics.tick t.m_answered
  | Protocol.Degraded _ ->
      Atomic.incr t.n_degraded;
      Metrics.tick t.m_degraded
  | Protocol.Partial _ ->
      Atomic.incr t.n_partial;
      Metrics.tick t.m_partial
  | Protocol.Refused _ | Protocol.Rejected _ ->
      Atomic.incr t.n_refused;
      Metrics.tick t.m_refused
  | Protocol.Failed _ ->
      Atomic.incr t.n_failed;
      Metrics.tick t.m_failed);
  (* per-shard outcome mix: a covering shard either contributed to this
     answer or was missing from it *)
  List.iter
    (fun m -> Metrics.tick t.m_shard_miss.(m.m_id))
    missing;
  List.iter (fun (i, _, _) -> Metrics.tick t.m_shard_ok.(i)) contributing;
  let queue_wait =
    List.fold_left
      (fun acc (_, rsp, _) ->
        match rsp.Protocol.rsp_queue_wait_s with
        | Some w -> Some (match acc with None -> w | Some a -> Float.max a w)
        | None -> acc)
      None contributing
  in
  let spent = fleet_spent t in
  (* Live fleet burn: feed the "fleet" ledger with the composed cumulative
     (coordinate-wise max across shards) — monotone, so replays and racing
     composers cannot move it backwards. *)
  Metrics.ledger_cum t.m_fleet_ledger ~eps:spent.Params.eps ~delta:spent.Params.delta
    ~debits:(seq + 1);
  {
    (base_response req ~seq status) with
    Protocol.rsp_theta = theta;
    rsp_source = Some "fleet";
    rsp_batch = Some (List.length contributing);
    rsp_queue_wait_s = queue_wait;
    rsp_spent_eps = Some spent.Params.eps;
    rsp_spent_delta = Some spent.Params.delta;
    rsp_epoch;
  }

(* One "fleet.request" trace mark per routed request — the root span of the
   request's causal tree. Shard-side "server.request" spans carry the same
   trace id (and this span id as their parent), so [pmw_cli stats --fleet]
   can stitch the tree back together from the per-shard trace files. *)
let record_request t ~trace ~span ~ids ~t0 req rsp =
  let dur_s = Unix.gettimeofday () -. t0 in
  Metrics.observe t.m_request dur_s;
  Metrics.observe t.m_fanout (float_of_int (List.length ids));
  let missing, coverage =
    match rsp.Protocol.rsp_status with
    | Protocol.Answered | Protocol.Degraded _ -> ([], 1.)
    | Protocol.Partial { missing_shards; coverage; _ } -> (missing_shards, coverage)
    | Protocol.Refused _ | Protocol.Rejected _ | Protocol.Failed _ -> (ids, 0.)
  in
  Metrics.observe t.m_coverage coverage;
  let ints l = String.concat "," (List.map string_of_int l) in
  let fields =
    [
      ("trace", Telemetry.Str trace);
      ("span", Telemetry.Int span);
      ("analyst", Telemetry.Str req.Protocol.req_analyst);
      ("query", Telemetry.Str req.Protocol.req_query);
      ("status", Telemetry.Str (Protocol.status_tag rsp.Protocol.rsp_status));
      ("seq", Telemetry.Int rsp.Protocol.rsp_seq);
      ("shards", Telemetry.Str (ints ids));
      ("missing", Telemetry.Str (ints missing));
      ("coverage", Telemetry.Float coverage);
      ("dur_s", Telemetry.Float dur_s);
    ]
    @ (match rsp.Protocol.rsp_spent_eps with
      | Some e -> [ ("spent_eps", Telemetry.Float e) ]
      | None -> [])
    @
    match rsp.Protocol.rsp_spent_delta with
    | Some d -> [ ("spent_delta", Telemetry.Float d) ]
    | None -> []
  in
  push_mark t fields

(* --- ingest fan-out --- *)

(* An ingest request is routed by row content, not by the caller's shard
   scope: each row goes to the shard that owns it under the fleet's
   partition key (rt_ingest_route), the same assignment {!Shard.partition}
   made at boot — anything else would break the disjointness that parallel
   composition rests on. Sub-requests reuse the caller's rid with a ":s<i>"
   suffix so a client retry re-hits each shard's dedup entry independently:
   shards that already accepted re-serve their recorded reply, shards that
   missed the first attempt accept now, and the retry converges without
   double-buffering any row. *)
let ingest t req rows ~trace ~span ~t0 =
  let seq () = Atomic.fetch_and_add t.seq 1 in
  let failed why =
    Atomic.incr t.n_failed;
    Metrics.tick t.m_failed;
    let rsp =
      { (base_response req ~seq:(seq ()) (Protocol.Failed why)) with
        Protocol.rsp_source = Some "fleet";
      }
    in
    record_request t ~trace ~span ~ids:[] ~t0 req rsp;
    rsp
  in
  match t.cfg.rt_ingest_route with
  | None -> failed "ingest is not routable at the fleet tier (no partition key configured)"
  | Some route -> (
      let n = Array.length t.shards in
      let buckets = Array.make n [] in
      let bad = ref None in
      List.iter
        (fun r ->
          if !bad = None then begin
            let s = route r in
            if s < 0 || s >= n then bad := Some (r, s)
            else buckets.(s) <- r :: buckets.(s)
          end)
        rows;
      match !bad with
      | Some (r, s) ->
          failed
            (Printf.sprintf "row %d routed to shard %d outside the %d-shard fleet" r s n)
      | None ->
          let ids =
            List.filter (fun i -> buckets.(i) <> []) (List.init n Fun.id)
          in
          if ids = [] then failed "ingest request carries no rows"
          else begin
            let sub_req i =
              {
                req with
                Protocol.req_shards = None;
                req_rows = Some (List.rev buckets.(i));
                req_rid =
                  Option.map (fun rid -> Printf.sprintf "%s:s%d" rid i) req.Protocol.req_rid;
              }
            in
            (* parallel legs, joined unconditionally: a down shard's submit
               returns None immediately, a live one answers at admission
               speed (ingest replies do not wait on solver work) *)
            let results = Array.make n None in
            let threads =
              List.map
                (fun i ->
                  Thread.create
                    (fun () ->
                      results.(i) <- (try Shard.submit t.shards.(i) (sub_req i) with _ -> None))
                    ())
                ids
            in
            List.iter Thread.join threads;
            let contributing, missing =
              List.partition_map
                (fun i ->
                  match results.(i) with
                  | Some ({ Protocol.rsp_status = Protocol.Answered; rsp_theta = Some th; _ } as rsp)
                    when Array.length th = 2 ->
                      Either.Left (i, rsp, th)
                  | Some rsp ->
                      Either.Right
                        { m_id = i; m_why = Protocol.status_tag rsp.Protocol.rsp_status;
                          m_retry = None }
                  | None ->
                      Either.Right
                        {
                          m_id = i;
                          m_why = Shard.state_to_string (Shard.state t.shards.(i));
                          m_retry = None;
                        })
                ids
            in
            let accepted =
              List.fold_left (fun a (_, _, th) -> a +. th.(0)) 0. contributing
            in
            let pending =
              List.fold_left (fun a (_, _, th) -> a +. th.(1)) 0. contributing
            in
            let epochs =
              List.filter_map (fun (_, rsp, _) -> rsp.Protocol.rsp_epoch) contributing
            in
            let rsp_epoch =
              match epochs with [] -> None | e :: r -> Some (List.fold_left min e r)
            in
            let summary =
              String.concat "; "
                (List.map (fun m -> Printf.sprintf "shard %d: %s" m.m_id m.m_why) missing)
            in
            let total_rows = float_of_int (List.length rows) in
            let routed_rows i = float_of_int (List.length buckets.(i)) in
            let status =
              match (contributing, missing) with
              | [], _ -> Protocol.Failed ("no shard accepted the ingest: " ^ summary)
              | _, [] -> Protocol.Answered
              | _, _ ->
                  Protocol.Partial
                    {
                      missing_shards = List.map (fun m -> m.m_id) missing;
                      coverage =
                        (if total_rows > 0. then
                           List.fold_left (fun a (i, _, _) -> a +. routed_rows i) 0. contributing
                           /. total_rows
                         else 0.);
                      retry_after_s = Some t.cfg.rt_retry_after_s;
                      reason = summary;
                    }
            in
            (match status with
            | Protocol.Answered ->
                Atomic.incr t.n_answered;
                Metrics.tick t.m_answered
            | Protocol.Partial _ ->
                Atomic.incr t.n_partial;
                Metrics.tick t.m_partial
            | _ ->
                Atomic.incr t.n_failed;
                Metrics.tick t.m_failed);
            List.iter (fun (i, _, _) -> Metrics.tick t.m_shard_ok.(i)) contributing;
            List.iter (fun m -> Metrics.tick t.m_shard_miss.(m.m_id)) missing;
            let rsp =
              {
                (base_response req ~seq:(seq ()) status) with
                Protocol.rsp_theta =
                  (if contributing = [] then None else Some [| accepted; pending |]);
                rsp_source = Some "fleet";
                rsp_batch = Some (List.length contributing);
                rsp_epoch;
              }
            in
            record_request t ~trace ~span ~ids ~t0 req rsp;
            rsp
          end)

let submit t req =
  let q = req.Protocol.req_query in
  if String.length q >= 4 && String.sub q 0 4 = "ctl:" then
    if t.cfg.rt_allow_ctl then ctl t req
    else begin
      Atomic.incr t.n_failed;
      base_response req ~seq:(-1) (Protocol.Failed "ctl queries are disabled")
    end
  else begin
    let t0 = Unix.gettimeofday () in
    (* Stamp (or adopt) the trace id and allot this routing decision its own
       span id; shards log both, making every fan-out leg attributable. *)
    let span = Atomic.fetch_and_add t.span_seq 1 in
    let trace =
      match req.Protocol.req_trace with
      | Some tr -> tr
      | None -> Printf.sprintf "%s-%d" t.trace_nonce span
    in
    let req = { req with Protocol.req_trace = Some trace; req_pspan = Some span } in
    match req.Protocol.req_rows with
    | Some rows -> ingest t req rows ~trace ~span ~t0
    | None -> (
        match covering t req with
        | Error why ->
            Atomic.incr t.n_failed;
            Metrics.tick t.m_failed;
            let rsp = base_response req ~seq:(-1) (Protocol.Failed why) in
            record_request t ~trace ~span ~ids:[] ~t0 req rsp;
            rsp
        | Ok ids ->
            let results =
              match ids with
              | [ i ] ->
                  (* single-shard cover: direct call, no fan-out threads *)
                  [ (i, Shard.submit t.shards.(i) req) ]
              | _ -> fanout t req ids
            in
            let rsp = compose t req ~ids results in
            record_request t ~trace ~span ~ids ~t0 req rsp;
            rsp)
  end
