(** The fleet's health layer: one monitor thread that heartbeats, restarts
    crashed shards from their own journals with capped exponential backoff,
    and quarantines shards that flap.

    {b Restart policy}: a crash schedules a restart after
    [backoff_base_s · 2^(strikes−1)], capped at [backoff_max_s]. A shard
    that crashes again within [flap_window_s] of its last successful boot
    accumulates strikes; surviving longer resets them. Once strikes exceed
    [quarantine_after], the shard is {!Shard.quarantine}d — out of rotation
    until an operator intervenes — so a poisoned shard cannot burn the
    monitor in a restart loop while the healthy fleet serves on.

    {b Telemetry} (the fleet instance, owned by the monitor thread — the
    single-writer contract is why the router hands its verdict tallies over
    as a closure instead of emitting them itself): a ["fleet.heartbeat"]
    mark every [heartbeat_every_s] carrying each shard's state and
    incarnation; ["shard.crashed"] / ["shard.restarted"] /
    ["shard.quarantined"] marks as they happen; counters
    [fleet_shard_restarts], [fleet_quarantined] and per-shard
    [shard<i>_restarts] / [shard<i>_quarantined] — all delta-mirrored from
    the supervisor's own authoritative tallies (incident paths and the
    heartbeat may both mirror; the delta rule keeps the combination exact,
    so these counters always equal the journal-derived restart counts);
    plus the router's [fleet_*] counters mirrored on every heartbeat, and
    any [extra_marks] (the router's queued ["fleet.request"] root spans)
    drained and emitted. All of it lands in the written trace, so
    [pmw_cli stats] reports the fleet's restart history with no extra
    plumbing. *)

type config = {
  su_poll_s : float;  (** crash-detection latency bound *)
  su_backoff_base_s : float;
  su_backoff_max_s : float;
  su_flap_window_s : float;
      (** a crash within this of the last boot counts as a flap (strike) *)
  su_quarantine_after : int;  (** strikes beyond this quarantine the shard *)
  su_heartbeat_every_s : float;
  su_epoch_every_s : float;
      (** every this-many seconds, ask each Running shard to roll its
          dataset epoch ({!Shard.request_epoch}); [0] disables. The kick
          is fire-and-forget — shards without epoch config refuse it, and
          a shard dying mid-transition recovers on its own — so the
          supervisor drives {e when} epochs happen, never {e how}. Each
          accepted kick emits an ["epoch.requested"] mark and bumps the
          [fleet_epoch_requests] counter. *)
}

val default_config : config
(** [{ su_poll_s = 0.01; su_backoff_base_s = 0.02; su_backoff_max_s = 1.;
      su_flap_window_s = 2.; su_quarantine_after = 5;
      su_heartbeat_every_s = 1.; su_epoch_every_s = 0. }] — first restart
    lands well under the fleet's one-second recovery target. *)

type t

val start :
  ?config:config ->
  ?telemetry:Pmw_telemetry.Telemetry.t ->
  ?extra_counters:(unit -> (string * int) list) ->
  ?extra_marks:
    (unit -> (string * (string * Pmw_telemetry.Telemetry.value) list) list) ->
  ?metrics:Pmw_telemetry.Metrics.t ->
  shards:Shard.t array ->
  unit ->
  t
(** Spawn the monitor thread. [extra_counters] (typically
    {!Router.counters}) is polled on each heartbeat and its deltas emitted
    into [telemetry] under the same names. [extra_marks] (typically
    {!Router.trace_marks}) is drained on each heartbeat (and once at stop)
    and each [(name, fields)] emitted as a mark — how trace events produced
    on non-writer threads reach the fleet trace. [metrics] (default
    disabled) feeds [fleet_restarts] / [fleet_quarantines] rates and the
    [supervisor.check_s] health-pass histogram. *)

val stop : t -> unit
(** Stop monitoring and join the thread (a final heartbeat and counter
    mirror are emitted). The shards themselves are not stopped — drain them
    with {!Shard.stop}. Idempotent. *)

val restarts : t -> int
(** Successful shard restarts performed so far. *)

val quarantines : t -> int
val quarantined : t -> int list
(** Ids of currently quarantined shards, ascending. *)
