module Session = Pmw_session.Session
module Budget = Pmw_core.Budget
module Params = Pmw_dp.Params
module Cm_query = Pmw_core.Cm_query
module Dataset = Pmw_data.Dataset
module Telemetry = Pmw_telemetry.Telemetry
module Metrics = Pmw_telemetry.Metrics

let log_src = Logs.Src.create "pmw.shard" ~doc:"PMW serving-fleet shard lifecycle"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* --- partitioning --- *)

type by = Block | Hash

let by_to_string = function Block -> "block" | Hash -> "hash"

let by_of_string = function
  | "block" -> Some Block
  | "hash" -> Some Hash
  | _ -> None

(* splitmix64 finalizer: full-avalanche mix so consecutive universe indices
   spread across buckets instead of striping. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hash_bucket value ~shards =
  let h = mix64 (Int64.of_int (value + 0x9E3779B9)) in
  Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int shards))

let partition ds ~by ~shards =
  if shards < 1 then invalid_arg "Shard.partition: shards must be >= 1";
  let n = Dataset.size ds in
  if shards > n then
    invalid_arg
      (Printf.sprintf "Shard.partition: %d shards exceed the %d records available" shards n);
  let rows = Dataset.rows ds in
  let universe = Dataset.universe ds in
  match by with
  | Block ->
      (* Contiguous near-equal ranges over arrival order; the first
         [n mod shards] blocks take the extra row. *)
      let base = n / shards and extra = n mod shards in
      let start = ref 0 in
      List.init shards (fun i ->
          let len = base + if i < extra then 1 else 0 in
          let block = Array.sub rows !start len in
          start := !start + len;
          Dataset.create universe block)
  | Hash ->
      let buckets = Array.make shards [] in
      (* Collect newest-first, reverse at the end: row order inside a shard
         stays the dataset's order, so the partition is deterministic. *)
      Array.iter
        (fun v ->
          let b = hash_bucket v ~shards in
          buckets.(b) <- v :: buckets.(b))
        rows;
      Array.iter
        (fun b ->
          if b = [] then
            invalid_arg
              "Shard.partition: hash partitioning left a shard empty (skewed record \
               values); use block sharding or fewer shards")
        buckets;
      Array.to_list
        (Array.map (fun b -> Dataset.create universe (Array.of_list (List.rev b))) buckets)

(* --- lifecycle --- *)

type state = Starting | Running | Draining | Crashed | Quarantined | Stopped

let state_to_string = function
  | Starting -> "starting"
  | Running -> "running"
  | Draining -> "draining"
  | Crashed -> "crashed"
  | Quarantined -> "quarantined"
  | Stopped -> "stopped"

type t = {
  sh_id : int;
  sh_weight : float;
  sh_journal_path : string option;
  sh_cfg : Broker.config;
  sh_make_session : Telemetry.t -> Session.t;
  sh_resolve : string -> Cm_query.t option;
  sh_telemetry : incarnation:int -> Telemetry.t;
  sh_metrics : Metrics.t;
  lock : Mutex.t;
  cond : Condition.t;
  mutable st : state;
  mutable broker : Broker.t option;
  mutable domain : unit Domain.t option;
  mutable inc : int;
  mutable boot_error : string option;
  (* Monotone last-observed ledger cumulative — survives the incarnation
     that produced it, so a down shard still contributes its known spend to
     the fleet's parallel composition. *)
  mutable last_spent : Params.t;
}

let create ~id ~weight ?journal_path ?(config = Broker.default_config)
    ?(telemetry = fun ~incarnation:_ -> Telemetry.null ())
    ?(metrics = Metrics.disabled ()) ~make_session ~resolve () =
  {
    sh_id = id;
    sh_weight = weight;
    sh_journal_path = journal_path;
    sh_cfg = config;
    sh_make_session = make_session;
    sh_resolve = resolve;
    sh_telemetry = telemetry;
    sh_metrics = metrics;
    lock = Mutex.create ();
    cond = Condition.create ();
    st = Stopped;
    broker = None;
    domain = None;
    inc = 0;
    boot_error = None;
    last_spent = Params.create ~eps:0. ~delta:0.;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let pmax a b =
  Params.create
    ~eps:(Float.max a.Params.eps b.Params.eps)
    ~delta:(Float.max a.Params.delta b.Params.delta)

(* The whole life of one incarnation, run on the shard's own domain: open
   the shard's journal, build a fresh session (pool included) from scratch,
   serve until drained or aborted, then close up. Crash recovery is
   journal-only by construction — nothing from the previous incarnation's
   memory survives into this closure except the journal file. *)
let life t ~inc =
  let telemetry = t.sh_telemetry ~incarnation:inc in
  let fail_boot why =
    Log.warn (fun m -> m "shard %d incarnation %d failed to boot: %s" t.sh_id inc why);
    locked t (fun () ->
        if t.inc = inc then begin
          t.boot_error <- Some why;
          t.st <- Crashed;
          Condition.broadcast t.cond
        end)
  in
  let opened =
    match t.sh_journal_path with
    | None -> Ok (None, Journal.empty_recovery)
    | Some path -> (
        match Journal.open_journal ~path with
        | Ok (j, recovery) -> Ok (Some j, recovery)
        | Error why -> Error ("journal: " ^ why))
  in
  match opened with
  | Error why -> fail_boot why
  | Ok (journal, recovery) -> (
      match
        try Ok (t.sh_make_session telemetry) with
        | Invalid_argument why | Failure why -> Error ("session: " ^ why)
      with
      | Error why ->
          Option.iter Journal.close journal;
          fail_boot why
      | Ok session ->
          let broker =
            Broker.create ~config:t.sh_cfg ?journal ~recovery ~metrics:t.sh_metrics
              ~metrics_label:(Printf.sprintf "shard%d" t.sh_id) ~session
              ~resolve:t.sh_resolve ()
          in
          Telemetry.mark telemetry "shard.start"
            ~fields:
              [
                ("shard", Telemetry.Int t.sh_id);
                ("incarnation", Telemetry.Int inc);
                ("replayed", Telemetry.Int (List.length recovery.Journal.rv_records));
              ];
          locked t (fun () ->
              if t.inc = inc then begin
                t.broker <- Some broker;
                t.st <- Running;
                t.last_spent <- pmax t.last_spent (Budget.spent (Session.budget session));
                Condition.broadcast t.cond
              end);
          (* A session fault on the serializer (a raising solver, a poisoned
             query) is a shard crash, not a fleet crash: convert it to the
             abort path so waiters fail fast and the journal is left
             crash-shaped. *)
          (try Broker.run broker
           with exn ->
             Log.err (fun m ->
                 m "shard %d serializer died: %s" t.sh_id (Printexc.to_string exn));
             Broker.abort ~reason:("shard serializer died: " ^ Printexc.to_string exn)
               broker);
          let aborted = Broker.aborted broker in
          if not aborted then Session.finish session;
          Option.iter Journal.close journal;
          Telemetry.close telemetry;
          locked t (fun () ->
              if t.inc = inc then begin
                t.broker <- None;
                t.last_spent <- pmax t.last_spent (Budget.spent (Session.budget session));
                (match t.st with
                | Quarantined -> ()
                | _ -> t.st <- (if aborted then Crashed else Stopped));
                Condition.broadcast t.cond
              end))

let start t =
  let prev =
    locked t (fun () ->
        match t.st with
        | Starting | Running | Draining ->
            Error (Printf.sprintf "shard %d is already running" t.sh_id)
        | Quarantined -> Error (Printf.sprintf "shard %d is quarantined" t.sh_id)
        | Crashed | Stopped ->
            let d = t.domain in
            t.domain <- None;
            t.broker <- None;
            t.boot_error <- None;
            t.st <- Starting;
            t.inc <- t.inc + 1;
            Ok d)
  in
  match prev with
  | Error why -> Error why
  | Ok prev ->
      (* Join the previous incarnation before spawning the next: bounds the
         domain count at one per shard, and guarantees the journal fd is
         closed before the new life reopens the file. *)
      Option.iter Domain.join prev;
      let inc = locked t (fun () -> t.inc) in
      let d = Domain.spawn (fun () -> life t ~inc) in
      locked t (fun () ->
          t.domain <- Some d;
          while t.st = Starting do
            Condition.wait t.cond t.lock
          done;
          match t.st with
          | Running -> Ok ()
          | _ ->
              Error
                (Option.value t.boot_error
                   ~default:(Printf.sprintf "shard %d failed to start" t.sh_id)))

let submit t req =
  let broker =
    locked t (fun () -> match (t.st, t.broker) with Running, Some b -> Some b | _ -> None)
  in
  match broker with
  | None -> None
  | Some b ->
      let rsp = Broker.submit b req in
      (match (rsp.Protocol.rsp_spent_eps, rsp.Protocol.rsp_spent_delta) with
      | Some eps, Some delta ->
          locked t (fun () ->
              t.last_spent <- pmax t.last_spent (Params.create ~eps ~delta))
      | _ -> ());
      Some rsp

let kill t =
  let victim =
    locked t (fun () ->
        match (t.st, t.broker) with
        | Running, Some b ->
            t.st <- Crashed;
            Some b
        | _ -> None)
  in
  match victim with
  | None -> false
  | Some b ->
      Log.info (fun m -> m "shard %d killed" t.sh_id);
      Broker.abort ~reason:(Printf.sprintf "shard %d killed" t.sh_id) b;
      true

let stop t =
  let broker =
    locked t (fun () ->
        (* let an in-flight boot land first, or the join below would block
           on a serializer that never got its shutdown *)
        while t.st = Starting do
          Condition.wait t.cond t.lock
        done;
        match (t.st, t.broker) with
        | Running, Some b ->
            t.st <- Draining;
            Some b
        | _ -> None)
  in
  Option.iter Broker.shutdown broker;
  let d =
    locked t (fun () ->
        let d = t.domain in
        t.domain <- None;
        d)
  in
  Option.iter Domain.join d;
  locked t (fun () -> match t.st with Quarantined -> () | _ -> t.st <- Stopped)

let quarantine t = locked t (fun () -> t.st <- Quarantined)

let id t = t.sh_id
let weight t = t.sh_weight
let state t = locked t (fun () -> t.st)
let incarnation t = locked t (fun () -> t.inc)
let journal_path t = t.sh_journal_path

let spent t =
  locked t (fun () ->
      (match t.broker with
      | Some b ->
          t.last_spent <- pmax t.last_spent (Budget.spent (Session.budget (Broker.session b)))
      | None -> ());
      t.last_spent)

let budget t =
  locked t (fun () ->
      match (t.st, t.broker) with
      | Running, Some b -> Some (Session.budget (Broker.session b))
      | _ -> None)
