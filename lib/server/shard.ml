module Session = Pmw_session.Session
module Budget = Pmw_core.Budget
module Params = Pmw_dp.Params
module Cm_query = Pmw_core.Cm_query
module Dataset = Pmw_data.Dataset
module Telemetry = Pmw_telemetry.Telemetry
module Metrics = Pmw_telemetry.Metrics

let log_src = Logs.Src.create "pmw.shard" ~doc:"PMW serving-fleet shard lifecycle"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* --- partitioning --- *)

type by = Block | Hash

let by_to_string = function Block -> "block" | Hash -> "hash"

let by_of_string = function
  | "block" -> Some Block
  | "hash" -> Some Hash
  | _ -> None

(* splitmix64 finalizer: full-avalanche mix so consecutive universe indices
   spread across buckets instead of striping. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hash_bucket value ~shards =
  let h = mix64 (Int64.of_int (value + 0x9E3779B9)) in
  Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int shards))

let partition ds ~by ~shards =
  if shards < 1 then invalid_arg "Shard.partition: shards must be >= 1";
  let n = Dataset.size ds in
  if shards > n then
    invalid_arg
      (Printf.sprintf "Shard.partition: %d shards exceed the %d records available" shards n);
  let rows = Dataset.rows ds in
  let universe = Dataset.universe ds in
  match by with
  | Block ->
      (* Contiguous near-equal ranges over arrival order; the first
         [n mod shards] blocks take the extra row. *)
      let base = n / shards and extra = n mod shards in
      let start = ref 0 in
      List.init shards (fun i ->
          let len = base + if i < extra then 1 else 0 in
          let block = Array.sub rows !start len in
          start := !start + len;
          Dataset.create universe block)
  | Hash ->
      let buckets = Array.make shards [] in
      (* Collect newest-first, reverse at the end: row order inside a shard
         stays the dataset's order, so the partition is deterministic. *)
      Array.iter
        (fun v ->
          let b = hash_bucket v ~shards in
          buckets.(b) <- v :: buckets.(b))
        rows;
      Array.iter
        (fun b ->
          if b = [] then
            invalid_arg
              "Shard.partition: hash partitioning left a shard empty (skewed record \
               values); use block sharding or fewer shards")
        buckets;
      Array.to_list
        (Array.map (fun b -> Dataset.create universe (Array.of_list (List.rev b))) buckets)

(* The ingest routing key: where a row value belongs under each partition
   scheme. Hash must agree bit-for-bit with [partition]'s bucketing (same
   mix); Block appends to the newest window — the last shard — since block
   ranges are arrival-ordered. *)
let route ~by ~shards value =
  if shards < 1 then invalid_arg "Shard.route: shards must be >= 1";
  match by with Block -> shards - 1 | Hash -> hash_bucket value ~shards

(* --- lifecycle --- *)

type state = Starting | Running | Draining | Crashed | Quarantined | Stopped

let state_to_string = function
  | Starting -> "starting"
  | Running -> "running"
  | Draining -> "draining"
  | Crashed -> "crashed"
  | Quarantined -> "quarantined"
  | Stopped -> "stopped"

(* Epoch (dataset-generation) config, shard flavour: like
   Broker.epoch_config but session constructors take the incarnation's
   telemetry (each incarnation owns its own stream), plus the seal-resume
   hook recovery needs. *)
type epoch = {
  se_snapshot : string;
  se_every : int;
  se_row_bound : int;
  se_make : epoch:int -> absorbed:int array -> prior:float array option -> Telemetry.t -> Session.t;
      (* deterministic constructor for a generation's session (see
         Broker.epoch_config.ep_make) *)
  se_resume :
    absorbed:int array ->
    Pmw_session.Checkpoint.t ->
    Telemetry.t ->
    (Session.t, string) result;
      (* resume the exact pre-transition state from a seal checkpoint; the
         dataset must be rebuilt at the checkpoint's epoch with [absorbed]
         rows before Session.resume *)
}

type t = {
  sh_id : int;
  sh_weight : float;
  sh_journal_path : string option;
  sh_epoch : epoch option;
  sh_cfg : Broker.config;
  sh_make_session : Telemetry.t -> Session.t;
  sh_resolve : string -> Cm_query.t option;
  sh_telemetry : incarnation:int -> Telemetry.t;
  sh_metrics : Metrics.t;
  lock : Mutex.t;
  cond : Condition.t;
  mutable st : state;
  mutable broker : Broker.t option;
  mutable domain : unit Domain.t option;
  mutable inc : int;
  mutable boot_error : string option;
  (* Monotone last-observed ledger cumulative — survives the incarnation
     that produced it, so a down shard still contributes its known spend to
     the fleet's parallel composition. *)
  mutable last_spent : Params.t;
}

let create ~id ~weight ?journal_path ?epoch ?(config = Broker.default_config)
    ?(telemetry = fun ~incarnation:_ -> Telemetry.null ())
    ?(metrics = Metrics.disabled ()) ~make_session ~resolve () =
  (match (epoch, journal_path) with
  | Some _, None ->
      (* the epoch protocol's commit/compaction story is built around the
         journal; a snapshot with no journal cannot recover ingest or spend *)
      invalid_arg "Shard.create: epoch mode requires a journal_path"
  | _ -> ());
  {
    sh_id = id;
    sh_weight = weight;
    sh_journal_path = journal_path;
    sh_epoch = epoch;
    sh_cfg = config;
    sh_make_session = make_session;
    sh_resolve = resolve;
    sh_telemetry = telemetry;
    sh_metrics = metrics;
    lock = Mutex.create ();
    cond = Condition.create ();
    st = Stopped;
    broker = None;
    domain = None;
    inc = 0;
    boot_error = None;
    last_spent = Params.create ~eps:0. ~delta:0.;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let pmax a b =
  Params.create
    ~eps:(Float.max a.Params.eps b.Params.eps)
    ~delta:(Float.max a.Params.delta b.Params.delta)

(* The whole life of one incarnation, run on the shard's own domain: open
   the shard's journal, build a fresh session (pool included) from scratch,
   serve until drained or aborted, then close up. Crash recovery is
   journal-only by construction — nothing from the previous incarnation's
   memory survives into this closure except the journal file. *)
let life t ~inc =
  let telemetry = t.sh_telemetry ~incarnation:inc in
  let fail_boot why =
    Log.warn (fun m -> m "shard %d incarnation %d failed to boot: %s" t.sh_id inc why);
    locked t (fun () ->
        if t.inc = inc then begin
          t.boot_error <- Some why;
          t.st <- Crashed;
          Condition.broadcast t.cond
        end)
  in
  let opened =
    match (t.sh_epoch, t.sh_journal_path) with
    | Some se, Some path -> (
        (* Epoch-aware recovery: resolve snapshot vs journal to one whole
           generation (rolling an interrupted compaction forward if needed)
           before anything else touches the files. *)
        match Epoch.recover ~snapshot_path:se.se_snapshot ~journal_path:path with
        | Ok boot -> Ok (`Epoch (se, boot))
        | Error why -> Error ("epoch recovery: " ^ why))
    | _, None -> Ok (`Plain (None, Journal.empty_recovery))
    | None, Some path -> (
        match Journal.open_journal ~path with
        | Ok (j, recovery) -> Ok (`Plain (Some j, recovery))
        | Error why -> Error ("journal: " ^ why))
  in
  match opened with
  | Error why -> fail_boot why
  | Ok prep -> (
      let journal, recovery =
        match prep with
        | `Plain (j, r) -> (j, r)
        | `Epoch (_, boot) -> (Some boot.Epoch.bt_journal, boot.Epoch.bt_recovery)
      in
      let make_session () =
        match prep with
        | `Plain _ -> t.sh_make_session telemetry
        | `Epoch (se, boot) -> (
            match boot.Epoch.bt_seal with
            | Some ck -> (
                (* a transition was in flight and had not committed: resume
                   its exact pre-transition state; the broker re-runs the
                   transition before serving (eb_resume_transition below) *)
                match se.se_resume ~absorbed:boot.Epoch.bt_absorbed ck telemetry with
                | Ok s -> s
                | Error why -> failwith ("seal resume: " ^ why))
            | None ->
                se.se_make ~epoch:boot.Epoch.bt_epoch ~absorbed:boot.Epoch.bt_absorbed
                  ~prior:boot.Epoch.bt_prior telemetry)
      in
      match
        try Ok (make_session ()) with
        | Invalid_argument why | Failure why -> Error ("session: " ^ why)
      with
      | Error why ->
          Option.iter Journal.close journal;
          fail_boot why
      | Ok session -> (
          match
            try
              Ok
                (match prep with
                | `Plain _ ->
                    Broker.create ~config:t.sh_cfg ?journal ~recovery ~metrics:t.sh_metrics
                      ~metrics_label:(Printf.sprintf "shard%d" t.sh_id) ~session
                      ~resolve:t.sh_resolve ()
                | `Epoch (se, boot) ->
                    Broker.create ~config:t.sh_cfg ?journal ~recovery ~metrics:t.sh_metrics
                      ~metrics_label:(Printf.sprintf "shard%d" t.sh_id)
                      ~epoch:
                        {
                          Broker.ep_snapshot = se.se_snapshot;
                          ep_every = se.se_every;
                          ep_row_bound = se.se_row_bound;
                          ep_make =
                            (fun ~epoch ~absorbed ~prior ->
                              se.se_make ~epoch ~absorbed ~prior telemetry);
                        }
                      ~epoch_boot:
                        {
                          Broker.eb_epoch = boot.Epoch.bt_epoch;
                          eb_base = boot.Epoch.bt_base;
                          eb_absorbed = boot.Epoch.bt_absorbed;
                          eb_dedup = boot.Epoch.bt_dedup;
                          eb_ingest = boot.Epoch.bt_recovery.Journal.rv_ingest;
                          eb_resume_transition = boot.Epoch.bt_seal <> None;
                        }
                      ~session ~resolve:t.sh_resolve ())
            with Invalid_argument why | Failure why -> Error ("broker: " ^ why)
          with
          | Error why ->
              Option.iter Journal.close journal;
              fail_boot why
          | Ok broker ->
              Telemetry.mark telemetry "shard.start"
                ~fields:
                  [
                    ("shard", Telemetry.Int t.sh_id);
                    ("incarnation", Telemetry.Int inc);
                    ("replayed", Telemetry.Int (List.length recovery.Journal.rv_records));
                    ("epoch", Telemetry.Int (Broker.epoch broker));
                  ];
              locked t (fun () ->
                  if t.inc = inc then begin
                    t.broker <- Some broker;
                    t.st <- Running;
                    t.last_spent <- pmax t.last_spent (Broker.lifetime_spent broker);
                    Condition.broadcast t.cond
                  end);
              (* A session fault on the serializer (a raising solver, a
                 poisoned query, an injected epoch-transition fault) is a
                 shard crash, not a fleet crash: convert it to the abort
                 path so waiters fail fast and the disk is left
                 crash-shaped. *)
              (try Broker.run broker
               with exn ->
                 Log.err (fun m ->
                     m "shard %d serializer died: %s" t.sh_id (Printexc.to_string exn));
                 Broker.abort ~reason:("shard serializer died: " ^ Printexc.to_string exn)
                   broker);
              let aborted = Broker.aborted broker in
              if not aborted then Session.finish (Broker.session broker);
              (* The broker owns the journal now: epoch compactions swap
                 handles, so the one opened above may be long dead — close
                 through the broker, never the original. *)
              Broker.close_journal broker;
              Telemetry.close telemetry;
              locked t (fun () ->
                  if t.inc = inc then begin
                    t.last_spent <- pmax t.last_spent (Broker.lifetime_spent broker);
                    t.broker <- None;
                    (match t.st with
                    | Quarantined -> ()
                    | _ -> t.st <- (if aborted then Crashed else Stopped));
                    Condition.broadcast t.cond
                  end)))

let start t =
  let prev =
    locked t (fun () ->
        match t.st with
        | Starting | Running | Draining ->
            Error (Printf.sprintf "shard %d is already running" t.sh_id)
        | Quarantined -> Error (Printf.sprintf "shard %d is quarantined" t.sh_id)
        | Crashed | Stopped ->
            let d = t.domain in
            t.domain <- None;
            t.broker <- None;
            t.boot_error <- None;
            t.st <- Starting;
            t.inc <- t.inc + 1;
            Ok d)
  in
  match prev with
  | Error why -> Error why
  | Ok prev ->
      (* Join the previous incarnation before spawning the next: bounds the
         domain count at one per shard, and guarantees the journal fd is
         closed before the new life reopens the file. *)
      Option.iter Domain.join prev;
      let inc = locked t (fun () -> t.inc) in
      let d = Domain.spawn (fun () -> life t ~inc) in
      locked t (fun () ->
          t.domain <- Some d;
          while t.st = Starting do
            Condition.wait t.cond t.lock
          done;
          match t.st with
          | Running -> Ok ()
          | _ ->
              Error
                (Option.value t.boot_error
                   ~default:(Printf.sprintf "shard %d failed to start" t.sh_id)))

let submit t req =
  let broker =
    locked t (fun () -> match (t.st, t.broker) with Running, Some b -> Some b | _ -> None)
  in
  match broker with
  | None -> None
  | Some b ->
      let rsp = Broker.submit b req in
      (match (rsp.Protocol.rsp_spent_eps, rsp.Protocol.rsp_spent_delta) with
      | Some eps, Some delta ->
          locked t (fun () ->
              t.last_spent <- pmax t.last_spent (Params.create ~eps ~delta))
      | _ -> ());
      Some rsp

let kill t =
  let victim =
    locked t (fun () ->
        match (t.st, t.broker) with
        | Running, Some b ->
            t.st <- Crashed;
            Some b
        | _ -> None)
  in
  match victim with
  | None -> false
  | Some b ->
      Log.info (fun m -> m "shard %d killed" t.sh_id);
      Broker.abort ~reason:(Printf.sprintf "shard %d killed" t.sh_id) b;
      true

let stop t =
  let broker =
    locked t (fun () ->
        (* let an in-flight boot land first, or the join below would block
           on a serializer that never got its shutdown *)
        while t.st = Starting do
          Condition.wait t.cond t.lock
        done;
        match (t.st, t.broker) with
        | Running, Some b ->
            t.st <- Draining;
            Some b
        | _ -> None)
  in
  Option.iter Broker.shutdown broker;
  let d =
    locked t (fun () ->
        let d = t.domain in
        t.domain <- None;
        d)
  in
  Option.iter Domain.join d;
  locked t (fun () -> match t.st with Quarantined -> () | _ -> t.st <- Stopped)

let quarantine t = locked t (fun () -> t.st <- Quarantined)

let id t = t.sh_id
let weight t = t.sh_weight
let state t = locked t (fun () -> t.st)
let incarnation t = locked t (fun () -> t.inc)
let journal_path t = t.sh_journal_path

let spent t =
  locked t (fun () ->
      (* lifetime spend: sealed-epoch base + the live pot, so the fleet's
         parallel composition never under-counts a shard that rolled *)
      (match t.broker with
      | Some b -> t.last_spent <- pmax t.last_spent (Broker.lifetime_spent b)
      | None -> ());
      t.last_spent)

let budget t =
  locked t (fun () ->
      match (t.st, t.broker) with
      | Running, Some b -> Some (Session.budget (Broker.session b))
      | _ -> None)

let epoch t =
  locked t (fun () ->
      match (t.st, t.broker) with
      | (Running | Draining), Some b -> Some (Broker.epoch b)
      | _ -> None)

let pending_ingest t =
  locked t (fun () -> match t.broker with Some b -> Broker.pending_ingest b | None -> 0)

let journal_size t =
  locked t (fun () -> Option.bind t.broker Broker.journal_size)

let request_epoch t =
  let b =
    locked t (fun () ->
        match (t.st, t.broker) with Running, Some b -> Some b | _ -> None)
  in
  match b with None -> false | Some b -> Broker.request_epoch b
