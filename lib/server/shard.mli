(** One shard of the serving fleet: a private block of the record space with
    its own {!Pmw_session.Session}, write-ahead {!Journal}, privacy
    {!Pmw_core.Budget} and serializer domain.

    The fleet design follows parallel composition of differential privacy:
    {!partition} splits the dataset into {e disjoint} row blocks, each block
    gets a full [(ε, δ)] pot of its own, and any single record's privacy
    loss is exactly the loss of the one shard holding it. A crashed,
    exhausted or quarantined shard is therefore a {e per-shard} event — the
    rest of the fleet keeps serving, and the router reports the hole as a
    typed partial answer instead of failing the query.

    {b Isolation model}: each shard runs its serializer ({!Broker.run}) on
    its own domain, spawned by {!start}. The session, its pool and its
    telemetry instance are all created {e inside} that domain (satisfying
    the pool's created-by-caller affinity contract), so nothing but the
    broker's thread-safe [submit] face is shared across shards. {!kill}
    simulates [kill -9] of the shard process: the broker aborts (queued
    requests fail fast, no graceful journal tail is written) and the shard's
    journal is left exactly as a real crash would leave it. {!start} on a
    crashed shard then runs the genuine recovery path — journal replay,
    ledger reconcile (quarantining any spend past what the fresh session
    knows), dedup re-seeding — under a new incarnation number.

    A shard's lifecycle is driven from outside (the {!Supervisor} restarts
    and quarantines; the {!Router} submits and observes): all entry points
    are thread-safe. *)

(** How {!partition} assigns rows to shards. *)
type by =
  | Block  (** contiguous row ranges — "time windows" over arrival order *)
  | Hash  (** by hashed record value — a content partition key *)

val by_to_string : by -> string
val by_of_string : string -> by option

val partition : Pmw_data.Dataset.t -> by:by -> shards:int -> Pmw_data.Dataset.t list
(** Split the dataset into [shards] disjoint, jointly-exhaustive row blocks
    (every row lands in exactly one shard — the precondition for parallel
    composition). [Block] yields contiguous near-equal ranges; [Hash]
    buckets by a 64-bit mix of the record value, so equal records co-locate.
    @raise Invalid_argument if [shards < 1], if [shards] exceeds the row
    count, or if hash partitioning leaves a shard empty (skewed keys — use
    [Block] or fewer shards). *)

val route : by:by -> shards:int -> int -> int
(** Where an {e ingested} row value belongs under each partition scheme —
    the fleet's [rt_ingest_route] key. [Hash] buckets by the same 64-bit
    mix as {!partition}, so new rows land on the shard that would have
    owned them at boot; [Block] appends to the newest arrival window (the
    last shard). @raise Invalid_argument if [shards < 1]. *)

type state =
  | Starting  (** boot in progress on the shard domain *)
  | Running
  | Draining  (** graceful {!stop} in progress *)
  | Crashed  (** killed or died; restartable *)
  | Quarantined  (** flapping; the supervisor took it out of rotation *)
  | Stopped  (** never started, or drained cleanly *)

val state_to_string : state -> string

type t

(** Epoch (dataset-generation) lifecycle config, shard flavour: like
    {!Broker.epoch_config} but the session constructors take the
    incarnation's telemetry instance, plus the seal-resume hook recovery
    needs. With this configured, every (re)boot goes through
    {!Epoch.recover} — snapshot vs journal resolved to one whole
    generation, interrupted compactions rolled forward, in-flight
    uncommitted transitions resumed from their seal and re-run. *)
type epoch = {
  se_snapshot : string;  (** epoch snapshot path (commit record) *)
  se_every : int;  (** answers per epoch before an automatic roll; 0 = on request only *)
  se_row_bound : int;  (** exclusive bound for ingest row indices (universe size) *)
  se_make :
    epoch:int ->
    absorbed:int array ->
    prior:float array option ->
    Pmw_telemetry.Telemetry.t ->
    Pmw_session.Session.t;
      (** deterministic generation constructor — must be a pure function
          of [(epoch, absorbed, prior)] (derive RNG seeds from [epoch]) *)
  se_resume :
    absorbed:int array ->
    Pmw_session.Checkpoint.t ->
    Pmw_telemetry.Telemetry.t ->
    (Pmw_session.Session.t, string) result;
      (** resume the exact pre-transition state from a seal checkpoint:
          rebuild the dataset at the checkpoint's epoch (seed + [absorbed]
          rows) and [Session.resume] against it *)
}

val create :
  id:int ->
  weight:float ->
  ?journal_path:string ->
  ?epoch:epoch ->
  ?config:Broker.config ->
  ?telemetry:(incarnation:int -> Pmw_telemetry.Telemetry.t) ->
  ?metrics:Pmw_telemetry.Metrics.t ->
  make_session:(Pmw_telemetry.Telemetry.t -> Pmw_session.Session.t) ->
  resolve:(string -> Pmw_core.Cm_query.t option) ->
  unit ->
  t
(** A shard handle in state [Stopped]; call {!start} to boot it.
    [make_session] builds the shard's session (and, inside it, the shard's
    pool) — it runs {e on the shard's domain} at every (re)start, so each
    incarnation gets fresh state and recovery is forced through the journal,
    never through leaked in-memory state. [telemetry] builds the
    per-incarnation telemetry instance handed to [make_session] (default:
    fresh null instances); give incarnations distinct sinks or tags to keep
    their traces apart. [metrics] (default disabled) is the fleet-shared
    live metrics registry, handed to every incarnation's broker with the
    ledger label ["shard<id>"] — metrics handles are concurrent, so one
    registry serves the whole fleet across domains. [weight] is the shard's
    share of the fleet's records (the router's coverage unit). [epoch]
    enables the generation lifecycle; [make_session] is then only used
    when epochs are {e not} configured (epoch boots construct sessions
    through [se_make]/[se_resume]).
    @raise Invalid_argument if [epoch] is given without [journal_path]. *)

val start : t -> (unit, string) result
(** Boot (or reboot after a crash): spawns the shard domain, joins any
    previous incarnation's domain first, and blocks until the shard is
    [Running] or its boot failed. Restart recovery is journal-driven: the
    new incarnation replays the shard's own journal, quarantines
    unaccounted spend into its fresh ledger and re-seeds its dedup table.
    [Error] if the shard is already running, quarantined, or the boot
    failed (journal unreadable mid-file, session construction raised). *)

val submit : t -> Protocol.request -> Protocol.response option
(** Blocking submit to this shard's broker; [None] unless the shard is
    [Running] (the router counts [None] as a missing shard). Thread-safe;
    callable from any domain. A shard killed mid-call fails the request
    fast ([Failed] reply) rather than blocking the caller. *)

val kill : t -> bool
(** Simulated [kill -9]: abort the broker (queued requests fail, no
    graceful journal tail) and mark the shard [Crashed]. Returns [false]
    if the shard was not running. The serializer domain winds down in the
    background; {!start} joins it before re-spawning. *)

val stop : t -> unit
(** Graceful drain: broker shutdown, serializer joined, journal closed with
    its ["drain"] mark, state [Stopped]. Safe in any state (a crashed
    shard's leftover domain is joined and its state preserved as
    restartable history only if quarantined — otherwise it ends
    [Stopped]). *)

val quarantine : t -> unit
(** Take the shard out of rotation (the supervisor's flapping verdict):
    {!submit} returns [None] and {!start} refuses until the operator
    intervenes. *)

val id : t -> int
val weight : t -> float
val state : t -> state
val incarnation : t -> int
(** Boot count: 1 after the first {!start}, bumped on every restart. *)

val journal_path : t -> string option

val spent : t -> Pmw_dp.Params.t
(** Last observed cumulative {e lifetime} [(ε, δ)] spend of this shard —
    sealed-epoch base plus the live pot, monotone across crashes,
    restarts and epoch transitions (a down shard reports the spend last
    seen before it died; its journal can only say more, never less). The
    router folds these with {!Pmw_core.Budget.spent_parallel}'s max rule
    for the fleet-level account. *)

val budget : t -> Pmw_core.Budget.t option
(** The current incarnation's live pot, when running — for tests asserting
    fleet accounting against per-shard ledgers. Per-{e epoch} under the
    generation lifecycle (transitions refresh it); use {!spent} for the
    lifetime account. *)

val epoch : t -> int option
(** Dataset generation currently served; [None] unless running/draining. *)

val pending_ingest : t -> int
(** Rows buffered for the next epoch transition (0 when down). *)

val journal_size : t -> (int * int) option
(** Live journal's [(bytes, records)]; [None] when down or journal-less. *)

val request_epoch : t -> bool
(** Ask the running shard's serializer to roll the epoch before its next
    batch; [false] when not running or epochs are not configured. *)
