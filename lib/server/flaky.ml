(* Fault-injecting Unix-socket proxy: sits between a client and the real
   server socket and mangles the line stream with seeded randomness. The
   chaos harness points analysts at the proxy so retries, timeouts and torn
   lines are exercised against a live broker. *)

module Splitmix64 = Pmw_rng.Splitmix64

let log_src = Logs.Src.create "pmw.server.flaky" ~doc:"PMW fault-injecting socket proxy"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  fl_seed : int64;
  fl_drop : float;
  fl_delay : float;
  fl_delay_max_s : float;
  fl_truncate : float;
  fl_garbage : float;
  fl_disconnect : float;
}

let default_config =
  {
    fl_seed = 0x5DEECE66DL;
    fl_drop = 0.02;
    fl_delay = 0.05;
    fl_delay_max_s = 0.05;
    fl_truncate = 0.01;
    fl_garbage = 0.02;
    fl_disconnect = 0.01;
  }

type t = {
  cfg : config;
  listen_path : string;
  upstream : string;
  sock : Unix.file_descr;
  mutable accept_thread : Thread.t option;
  fds : (Unix.file_descr, unit) Hashtbl.t;  (* every live fd, for stop *)
  fds_lock : Mutex.t;
  mutable stopping : bool;
  mutable conn_count : int;  (* guarded by fds_lock; seeds per-conn rngs *)
  n_drop : int Atomic.t;
  n_delay : int Atomic.t;
  n_truncate : int Atomic.t;
  n_garbage : int Atomic.t;
  n_disconnect : int Atomic.t;
}

let track t fd =
  Mutex.lock t.fds_lock;
  Hashtbl.replace t.fds fd ();
  Mutex.unlock t.fds_lock

let untrack_close t fd =
  Mutex.lock t.fds_lock;
  Hashtbl.remove t.fds fd;
  Mutex.unlock t.fds_lock;
  try Unix.close fd with Unix.Unix_error _ -> ()

let uniform rng = float_of_int (Splitmix64.next_in rng ~bound:1_000_000) /. 1_000_000.

(* One direction of one connection: read lines off [src], roll a fault per
   line, forward (or not) to [dst]. Truncate and disconnect end the relay —
   a half-line on the wire makes the framing unrecoverable anyway, which is
   exactly the torn-write shape the server must survive. *)
let relay t rng src dst =
  let r = Net.Io.reader ~max_bytes:(4 * Protocol.max_line_bytes) src in
  let rec loop () =
    match Net.Io.read_line r with
    | `Line line -> (
        let u = uniform rng in
        let c = t.cfg in
        let p0 = c.fl_drop in
        let p1 = p0 +. c.fl_truncate in
        let p2 = p1 +. c.fl_garbage in
        let p3 = p2 +. c.fl_disconnect in
        let p4 = p3 +. c.fl_delay in
        if u < p0 then begin
          Atomic.incr t.n_drop;
          loop ()
        end
        else if u < p1 then begin
          Atomic.incr t.n_truncate;
          let keep = Splitmix64.next_in rng ~bound:(String.length line + 1) in
          (try Net.Io.write_all dst (String.sub line 0 keep) with
          | Unix.Unix_error _ | Sys_error _ -> ());
          (* no newline, then hang up: the peer sees a torn final line *)
          try Unix.shutdown dst Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
        end
        else if u < p2 then begin
          Atomic.incr t.n_garbage;
          let len = 1 + Splitmix64.next_in rng ~bound:64 in
          let junk =
            String.init len (fun _ -> Char.chr (32 + Splitmix64.next_in rng ~bound:95))
          in
          match Net.Io.write_all dst (junk ^ "\n" ^ line ^ "\n") with
          | () -> loop ()
          | exception (Unix.Unix_error _ | Sys_error _) -> ()
        end
        else if u < p3 then begin
          Atomic.incr t.n_disconnect;
          (try Unix.shutdown dst Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
          try Unix.shutdown src Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
        end
        else begin
          if u < p4 then begin
            Atomic.incr t.n_delay;
            Thread.delay (uniform rng *. t.cfg.fl_delay_max_s)
          end;
          match Net.Io.write_all dst (line ^ "\n") with
          | () -> loop ()
          | exception (Unix.Unix_error _ | Sys_error _) -> ()
        end)
    | `Too_long | `Timeout | `Eof | `Error _ ->
        (* relay whatever framing fate arrives: just stop this direction *)
        (try Unix.shutdown dst Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
  in
  loop ()

let serve_conn t client seed =
  match
    let up = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect up (Unix.ADDR_UNIX t.upstream)
     with e ->
       (try Unix.close up with Unix.Unix_error _ -> ());
       raise e);
    up
  with
  | exception Unix.Unix_error _ -> untrack_close t client
  | up ->
      track t up;
      let fwd = Splitmix64.create seed in
      let bwd = Splitmix64.create (Int64.lognot seed) in
      let th = Thread.create (fun () -> relay t bwd up client) () in
      relay t fwd client up;
      Thread.join th;
      untrack_close t up;
      untrack_close t client

let rec accept_loop t =
  match Unix.accept t.sock with
  | fd, _ ->
      track t fd;
      let seed =
        Mutex.lock t.fds_lock;
        let n = t.conn_count in
        t.conn_count <- n + 1;
        Mutex.unlock t.fds_lock;
        Int64.add t.cfg.fl_seed (Int64.of_int (1 + n))
      in
      ignore (Thread.create (fun () -> serve_conn t fd seed) () : Thread.t);
      accept_loop t
  | exception Unix.Unix_error _ ->
      if not t.stopping then Log.warn (fun m -> m "proxy accept failed")

let start ?(config = default_config) ~listen_path ~upstream () =
  Lazy.force Net.ignore_sigpipe;
  (try Unix.unlink listen_path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind sock (Unix.ADDR_UNIX listen_path)
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen sock 64;
  Log.info (fun m -> m "fault proxy %s -> %s" listen_path upstream);
  let t =
    {
      cfg = config;
      listen_path;
      upstream;
      sock;
      accept_thread = None;
      fds = Hashtbl.create 16;
      fds_lock = Mutex.create ();
      stopping = false;
      conn_count = 0;
      n_drop = Atomic.make 0;
      n_delay = Atomic.make 0;
      n_truncate = Atomic.make 0;
      n_garbage = Atomic.make 0;
      n_disconnect = Atomic.make 0;
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let stop t =
  t.stopping <- true;
  (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  Mutex.lock t.fds_lock;
  let fds = Hashtbl.fold (fun fd () acc -> fd :: acc) t.fds [] in
  Mutex.unlock t.fds_lock;
  List.iter (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()) fds;
  try Unix.unlink t.listen_path with Unix.Unix_error _ -> ()

let stats t =
  [
    ("drop", Atomic.get t.n_drop);
    ("delay", Atomic.get t.n_delay);
    ("truncate", Atomic.get t.n_truncate);
    ("garbage", Atomic.get t.n_garbage);
    ("disconnect", Atomic.get t.n_disconnect);
  ]

let faults_injected t =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (stats t) - Atomic.get t.n_delay

let path t = t.listen_path
