(** The query server's request broker: many concurrent analysts, one PMW
    state, one serializer.

    Client threads call {!submit} (directly in-process, or via the socket
    front end in {!Net}); requests pass admission control and land in a
    FIFO queue. A single serializer thread — {!run}, which must execute on
    the thread that owns the session's {!Pmw_parallel.Pool} — drains up to
    [max_batch] pending requests at a time and answers them through one
    {!Pmw_session.Session.batch} context, so the O(|X|) hypothesis pass and
    the per-query solves are shared across the batch. Verdicts are
    bit-identical to sequential processing in [seq] order (the batch layer's
    contract), so concurrency changes throughput and interleaving, never
    answers.

    {b Admission control} (inside {!submit}, atomic with the enqueue):
    requests are rejected-with-retry-after once the session cannot fund one
    more oracle attempt ({!Pmw_session.Session.admissible} — the PR 1
    exhaustion semantics), rejected permanently when the per-analyst quota
    is spent, and rejected during drain. Rejected requests never consume a
    [seq] slot or any privacy budget.

    {b Durability} (when a {!Journal.t} is passed to {!create}): before any
    reply of a batch is released, the serializer journals the ledger's new
    cumulative [(ε, δ)] and then every answer's exact response line, then
    [fsync]s — one sync per batch, not per request. A [kill -9] therefore
    never loses spend a client observed, and the debit-before-answers
    order means a crash between the two appends can only quarantine spend
    for answers that never existed, never release an answer whose spend is
    uncovered. On {!create}, a replayed {!Journal.recovery} is reconciled
    into the resumed session's ledger ({!Journal.reconcile} quarantines
    post-checkpoint spend as already-spent), the recorded answers seed the
    dedup table, and [seq] continues past the journal's maximum.

    {b Idempotent retries}: a request stamped with a [rid] that the broker
    has already answered (this process, or any earlier incarnation whose
    journal was replayed) is served the {e recorded} response line — no
    fresh noise, no budget touched — even during drain or past quota. A
    concurrent duplicate of a still-queued rid coalesces onto the
    original's reply. The reply's [rsp_id] is re-stamped with the retry's
    own [req_id] so the client-side correlation check passes: the bytes
    are identical when the retry reuses the original [req_id] (the normal
    retry-loop case) and payload-identical otherwise. The table holds the
    newest [dedup_cap] answers (FIFO eviction).

    {b Telemetry} (the session's instance): a ["server.request"] span per
    processed request, ["server.queue_wait_s"] / ["server.batch_size"]
    observations, ["journal.replayed"] on recovery, ["dedup.hit"] marks and
    the [server_dedup_hits] counter, plus the [server_rejected_*] counters.
    Submit-side events are tallied on the client threads and mirrored into
    the stream by the serializer, preserving the telemetry single-writer
    contract. *)

type config = {
  max_batch : int;  (** most requests answered per serializer pass; >= 1 *)
  quota : int;  (** per-analyst lifetime query cap; [0] means unlimited *)
  retry_after_s : float;  (** backpressure hint on budget rejections *)
  dedup_cap : int;  (** recorded answers kept for retry dedup; [0] disables *)
  checkpoint_every : int;
      (** write a checkpoint every this-many processed requests during
          {!run} (needs its [checkpoint] path); [0] means final-only *)
}

val default_config : config
(** [{ max_batch = 16; quota = 0; retry_after_s = 1.; dedup_cap = 4096;
      checkpoint_every = 0 }] *)

(** A per-analyst service record (immutable snapshot). *)
type analyst = {
  an_id : string;
  an_submitted : int;  (** admitted requests (rejections not included) *)
  an_answered : int;
  an_degraded : int;
  an_refused : int;  (** refusals and protocol errors *)
  an_rejected : int;  (** turned away at admission *)
  an_deduped : int;  (** served from the recorded-answer table *)
  an_history : (int * string) list;  (** (seq, status tag), oldest first *)
}

(** Epoch (dataset-generation) lifecycle. When configured, the serializer
    rolls the shard to a new generation — absorbing ingested rows,
    re-anchoring the hypothesis as the new epoch's prior (the PMW state is
    DP, so warm-starting the next generation from it is post-processing),
    refreshing the budget pot per the window policy, and compacting the
    write-ahead journal down to one [Epoch] record — either automatically
    every [ep_every] answers or on {!request_epoch}. The transition is
    crash-safe end to end; {!Epoch} documents the protocol and the
    recovery decision table. *)
type epoch_config = {
  ep_snapshot : string;  (** epoch snapshot path — the transition's commit record *)
  ep_every : int;
      (** answers served per epoch before an automatic roll; [0] means
          only on {!request_epoch} *)
  ep_row_bound : int;
      (** exclusive upper bound for ingest row indices (the universe
          size); >= 1 *)
  ep_make : epoch:int -> absorbed:int array -> prior:float array option -> Pmw_session.Session.t;
      (** deterministic constructor for generation [epoch]'s session: seed
          dataset + [absorbed] rows stamped with that epoch, a fresh
          budget pot, hypothesis re-anchored on [prior]. Recovery
          re-invokes it with the snapshot's exact inputs, so it {b must}
          be a pure function of them (derive RNG seeds from [epoch], not
          from wall clock). *)
}

(** Recovered epoch state ({!Epoch.recover}'s [boot]) handed to {!create}
    by the shard. All-zero defaults apply when omitted. *)
type epoch_boot = {
  eb_epoch : int;  (** must equal the session's dataset epoch *)
  eb_base : float * float;  (** lifetime [(ε, δ)] retired into sealed epochs *)
  eb_absorbed : int array;  (** cumulative ingested rows beyond the seed *)
  eb_dedup : ((string * string) * string) list;
      (** the snapshot's carried answers, oldest first — seeded {e before}
          the journal's own (they predate the compaction) *)
  eb_ingest : int list;  (** journaled-but-unabsorbed rows, oldest first *)
  eb_resume_transition : bool;
      (** a seal checkpoint was resumed: a transition was in flight and
          had not committed — {!run} re-runs it before the first batch,
          reproducing the uninterrupted outcome byte-for-byte *)
}

val empty_epoch_boot : epoch_boot

type t

val create :
  ?config:config ->
  ?journal:Journal.t ->
  ?recovery:Journal.recovery ->
  ?metrics:Pmw_telemetry.Metrics.t ->
  ?metrics_label:string ->
  ?epoch:epoch_config ->
  ?epoch_boot:epoch_boot ->
  session:Pmw_session.Session.t ->
  resolve:(string -> Pmw_core.Cm_query.t option) ->
  unit ->
  t
(** [resolve] maps wire query names to registered queries; returning the
    same physical value for the same name is what lets a batch share
    solves. Pass the [journal] and the [recovery] that
    {!Journal.open_journal} returned to enable the durability layer —
    reconciliation, dedup seeding and seq continuation happen here, before
    any request is admitted.

    [metrics] (default disabled) feeds the live metrics plane:
    [server.batch_size] / [server.queue_wait_s] / [server.request_s]
    histograms, the [server.queue_depth] / [server.epoch] /
    [server.journal_bytes] / [server.journal_records] /
    [server.compaction_age_s] gauges, [server_admitted] /
    [server_rejected_*] / [server_dedup_hits] / [server_epoch_transitions]
    rates, the [server.epoch_transition_s] histogram, and a per-ledger
    privacy burn feed registered under [metrics_label] (default
    ["server"]; the fleet passes ["shard<i>"]) with the session budget's
    totals declared for the exhaustion forecast. The burn feed carries
    {e lifetime} spend (sealed-epoch base + current pot), keeping its
    monotone cumulative honest across pot refreshes. Handles are
    concurrent, so a fleet's shards safely share one registry.
    @raise Invalid_argument if [max_batch < 1], [dedup_cap < 0], the
    epoch config is malformed, or the session's dataset epoch disagrees
    with [epoch_boot]. *)

val submit : t -> Protocol.request -> Protocol.response
(** Thread-safe, blocking: admission-check, enqueue, and wait for the
    serializer's reply. Returns a [Rejected] response without blocking when
    admission refuses, and a recorded response without blocking on a dedup
    hit. Callable from any thread {e except} the serializer's own (it would
    deadlock waiting for itself). *)

val run : ?checkpoint:string -> t -> unit
(** The serializer loop. Call from the thread that created the session's
    pool; returns after {!shutdown} once the queue is fully drained —
    every admitted request is answered (and journaled, when a journal is
    attached: the drain window cannot lose queued work), then a journal
    ["drain"] mark and a final checkpoint are written to [checkpoint] (if
    given) via {!Pmw_session.Session.save}, and a ["server.drained"] mark
    closes the trace. With [checkpoint_every > 0], intermediate checkpoints
    are also written to the same path as the run progresses. *)

val shutdown : t -> unit
(** Begin graceful drain: new submissions are rejected with
    ["server is draining"] (dedup hits are still served), queued ones still
    get answers. Safe from any thread (the SIGTERM watcher calls this).
    Idempotent. *)

val abort : ?reason:string -> t -> unit
(** Crash-style stop, the shard supervisor's kill switch: every request
    still in the queue is failed immediately (a [Failed reason] reply, so
    no client thread stays blocked), new submissions are rejected, and
    {!run} exits {e without} the graceful tail — no journal ["drain"] mark,
    no final checkpoint. The journal is left exactly as a [kill -9] would
    leave it, so a restart exercises the genuine crash-recovery path
    (replay, reconcile, dedup re-seed). Requests already drained into the
    serializer's current batch still complete and journal normally. Safe
    from any thread; idempotent. *)

val aborted : t -> bool
(** {!abort} was called on this broker. *)

val drained : t -> bool
(** [run] has finished its queue (set just before it returns). *)

val processed : t -> int
(** Requests answered so far — the next [seq] to be assigned. Starts past
    the journal's max seq after a recovery. *)

val dedup_hits : t -> int
(** Requests served from the recorded-answer table (or coalesced onto an
    in-flight duplicate) so far. *)

val session : t -> Pmw_session.Session.t
(** The {e current} epoch's session — transitions swap it, so don't cache
    across epoch boundaries. *)

val epoch : t -> int
(** Dataset generation currently being served. *)

val epoch_base : t -> float * float
(** Lifetime [(ε, δ)] retired into sealed epochs (the journal [Epoch]
    record's base). *)

val lifetime_spent : t -> Pmw_dp.Params.t
(** Sealed-epoch base plus the current pot's spend — the number to compare
    against a lifetime budget (and what responses stamp in [rsp_spent_*]). *)

val pending_ingest : t -> int
(** Rows accepted into the ingest buffer but not yet absorbed (they fold
    into the dataset at the next transition). *)

val request_epoch : t -> bool
(** Ask the serializer to roll the epoch before its next batch. [false]
    when epochs are not configured or the broker is draining/stopped. *)

val journal_size : t -> (int * int) option
(** [(bytes, records)] of the live journal ({!Journal.size}); [None] when
    journal-less. *)

val close_journal : t -> unit
(** Close the broker's {e current} journal handle (call after {!run}
    returns). Compaction swaps handles, so the one passed to {!create} may
    be long dead — owners must close through this, never their original. *)

val analysts : t -> analyst list
(** Snapshot of every analyst ever seen, sorted by id. *)
