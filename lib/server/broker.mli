(** The query server's request broker: many concurrent analysts, one PMW
    state, one serializer.

    Client threads call {!submit} (directly in-process, or via the socket
    front end in {!Net}); requests pass admission control and land in a
    FIFO queue. A single serializer thread — {!run}, which must execute on
    the thread that owns the session's {!Pmw_parallel.Pool} — drains up to
    [max_batch] pending requests at a time and answers them through one
    {!Pmw_session.Session.batch} context, so the O(|X|) hypothesis pass and
    the per-query solves are shared across the batch. Verdicts are
    bit-identical to sequential processing in [seq] order (the batch layer's
    contract), so concurrency changes throughput and interleaving, never
    answers.

    {b Admission control} (inside {!submit}, atomic with the enqueue):
    requests are rejected-with-retry-after once the session cannot fund one
    more oracle attempt ({!Pmw_session.Session.admissible} — the PR 1
    exhaustion semantics), rejected permanently when the per-analyst quota
    is spent, and rejected during drain. Rejected requests never consume a
    [seq] slot or any privacy budget.

    {b Telemetry} (the session's instance): a ["server.request"] span per
    processed request (analyst / query / seq / batch fields),
    ["server.queue_wait_s"] and ["server.batch_size"] observations, and
    [server_rejected_budget] / [server_rejected_quota] /
    [server_rejected_draining] counters. Rejections are tallied in atomics
    on the client threads and mirrored into the counters by the serializer,
    preserving the telemetry single-writer contract. *)

type config = {
  max_batch : int;  (** most requests answered per serializer pass; >= 1 *)
  quota : int;  (** per-analyst lifetime query cap; [0] means unlimited *)
  retry_after_s : float;  (** backpressure hint on budget rejections *)
}

val default_config : config
(** [{ max_batch = 16; quota = 0; retry_after_s = 1. }] *)

(** A per-analyst service record (immutable snapshot). *)
type analyst = {
  an_id : string;
  an_submitted : int;  (** admitted requests (rejections not included) *)
  an_answered : int;
  an_degraded : int;
  an_refused : int;  (** refusals and protocol errors *)
  an_rejected : int;  (** turned away at admission *)
  an_history : (int * string) list;  (** (seq, status tag), oldest first *)
}

type t

val create :
  ?config:config ->
  session:Pmw_session.Session.t ->
  resolve:(string -> Pmw_core.Cm_query.t option) ->
  unit ->
  t
(** [resolve] maps wire query names to registered queries; returning the
    same physical value for the same name is what lets a batch share
    solves. @raise Invalid_argument if [max_batch < 1]. *)

val submit : t -> Protocol.request -> Protocol.response
(** Thread-safe, blocking: admission-check, enqueue, and wait for the
    serializer's reply. Returns a [Rejected] response without blocking when
    admission refuses. Callable from any thread {e except} the serializer's
    own (it would deadlock waiting for itself). *)

val run : ?checkpoint:string -> t -> unit
(** The serializer loop. Call from the thread that created the session's
    pool; returns after {!shutdown} once the queue is fully drained —
    every admitted request is answered, then a final checkpoint is written
    to [checkpoint] (if given) via {!Pmw_session.Session.save}, and a
    ["server.drained"] mark closes the trace. *)

val shutdown : t -> unit
(** Begin graceful drain: new submissions are rejected with
    ["server is draining"], queued ones still get answers. Safe from any
    thread (the SIGTERM watcher calls this). Idempotent. *)

val drained : t -> bool
(** [run] has finished its queue (set just before it returns). *)

val processed : t -> int
(** Requests answered so far — the next [seq] to be assigned. *)

val session : t -> Pmw_session.Session.t
val analysts : t -> analyst list
(** Snapshot of every analyst ever seen, sorted by id. *)
