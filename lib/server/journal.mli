(** Write-ahead journal for the query server's durability layer.

    The broker appends one record per privacy-relevant event — every budget
    debit (with the ledger's {e cumulative} totals) and every released
    answer (with the exact response line the client saw) — and calls
    {!sync} ({[fsync]}) {e before} any response of a batch leaves the
    process. A [kill -9] can therefore lose at most work the client never
    observed: if a client holds an answer, the journal holds its bytes and
    the spend that paid for it.

    {b Format}: text, one record per line, each line
    [<fnv1a64-hex> <single-line JSON payload>]. A record is written with a
    single [write(2)] on an [O_APPEND] descriptor, so a crash can only
    produce a {e torn tail} — a truncated final line — never an interleaved
    or mid-file hole. {!replay_string} (and {!open_journal}, which also
    truncates the file back to its last valid record) drops a torn tail and
    reports it; a checksum failure {e before} the tail is real corruption
    and is a hard error.

    {b Recovery contract}: replaying any prefix of a journal is
    idempotent. Debit records carry cumulative [(ε, δ)] totals, so
    {!reconcile} debits exactly [max(0, journal-cumulative − ledger-spent)]
    into the resumed session's budget — applying it twice debits nothing
    the second time, and a half-completed batch is quarantined as
    already-spent rather than forgotten. Answer records seed the broker's
    dedup table, so a retried [request_id] is served the {e recorded}
    bytes instead of fresh noise.

    {b Ordering invariant}: within a batch the broker appends the [Debit]
    {e before} the [Answer] records it pays for. A crash between the two
    can therefore only persist spend whose answers never existed (replay
    quarantines it — a safe over-count), never an answer whose spend is
    uncovered: at every prefix of a valid journal, the last [Debit]'s
    cumulative covers every answer recorded so far. *)

type record =
  | Debit of {
      jd_mechanism : string;
      jd_eps : float;  (** this event's cost (may be 0 for baselines) *)
      jd_delta : float;
      jd_cum_eps : float;  (** ledger cumulative total {e after} the debit *)
      jd_cum_delta : float;
    }
  | Answer of {
      ja_seq : int;
      ja_analyst : string;
      ja_rid : string option;  (** client idempotency key, when stamped *)
      ja_line : string;  (** the exact encoded response line released *)
    }
  | Mark of string  (** ["start"], ["checkpoint"], ["drain"], ["epoch.seal"] *)
  | Epoch of {
      je_epoch : int;  (** dataset generation the records after this line serve *)
      je_base_eps : float;
          (** lifetime [ε] retired into sealed epochs — the shard's true
              cumulative spend is [base + rv_cum] *)
      je_base_delta : float;
      je_seq : int;
          (** next answer seq at the compaction point, so seq stays monotone
              across epochs even though the Answer records that proved it
              were compacted away *)
    }
      (** First line of a compacted journal (written by [Epoch.compact]);
          everything after it belongs to generation [je_epoch]. *)
  | Ingest of { ji_rows : int array }
      (** Rows accepted into the ingest buffer — durable before the ingest
          reply is released (the batch [sync] covers them), replayed into
          the buffer on recovery, absorbed into the dataset at the next
          epoch transition. *)

type recovery = {
  rv_records : record list;  (** valid records, oldest first *)
  rv_torn : bool;  (** a torn tail was detected and dropped *)
  rv_dropped_bytes : int;  (** size of the dropped tail, 0 when clean *)
  rv_tail_kind : string option;
      (** best-effort kind (["debit"], ["answer"], ["mark"]) of the
          dropped tail when its JSON payload still parsed — lets an
          operator distinguish a routine torn write from tail corruption
          that lost a meaningful record; [None] when clean or when the
          fragment is unparseable *)
  rv_cum : float * float;
      (** cumulative [(ε, δ)] of the last [Debit] record; [(0, 0)] if none *)
  rv_answers : ((string * string) * string) list;
      (** [((analyst, rid), response-line)] for every rid-stamped answer,
          oldest first — the dedup seed *)
  rv_max_seq : int;
      (** highest journaled [seq] (an [Epoch] record's [je_seq - 1] counts);
          [-1] if none *)
  rv_epoch : int;  (** the journal's generation ([Epoch] record; 0 if none) *)
  rv_base : float * float;
      (** [(ε, δ)] retired into sealed epochs ([Epoch] record; [(0,0)] if
          none) — lifetime spend is [rv_base + rv_cum] coordinate-wise *)
  rv_ingest : int list;
      (** rows from [Ingest] records since the last epoch boundary, oldest
          first — the ingest-buffer seed *)
}

val empty_recovery : recovery

val replay_string : string -> (recovery, string) result
(** Pure replay of journal file contents. Never raises. [Error] only on
    mid-file corruption (an invalid record followed by more data). *)

type t

val open_journal : path:string -> (t * recovery, string) result
(** Open (creating if missing) for appending, replaying what is already
    there. A torn tail is truncated off the file, so a later re-open is
    clean. The descriptor is opened [O_APPEND]; callers append from a
    single thread (the broker's serializer). *)

val append : t -> record -> unit
(** Buffer-free append of one record ([write(2)] of the full line). Does
    not [fsync] — call {!sync} at the durability point. *)

val sync : t -> unit
(** [fsync] the descriptor: everything appended so far survives a crash. *)

val close : t -> unit
(** Idempotent. *)

val path : t -> string

val size : t -> int * int
(** [(bytes, records)] currently on disk (valid content only — an
    open-time torn tail is excluded). Tracked incrementally, so this is
    free to poll; it is what the journal-size gauges and the compaction
    bound checks read. *)

val reconcile : recovery -> budget:Pmw_core.Budget.t -> float * float
(** Quarantine the journal's spend into a resumed ledger: debit
    [max(0, rv_cum − Budget.spent budget)] coordinate-wise under the
    mechanism tag ["journal-replay"], returning what was debited. When the
    pot cannot cover the difference (it should always — the journal never
    records more than was granted — but corruption is conservative), the
    pot is drained instead. Idempotent: a second call returns [(0, 0)]. *)

val record_to_string : record -> string
(** The full journal line for a record (checksum prefix included, no
    trailing newline) — exposed for tests. *)

val record_of_line : string -> (record, string) result
(** Parse (and checksum-verify) one journal line. The epoch snapshot
    embeds its dedup seed as journal [Answer] lines so both artifacts
    agree byte-for-byte on what a recorded answer looks like. *)
