(* Write-ahead journal: one checksummed line per record, single write(2)
   per append on an O_APPEND descriptor, fsync at the caller's durability
   points. See journal.mli for the recovery contract. *)

module Budget = Pmw_core.Budget
module Params = Pmw_dp.Params

type record =
  | Debit of {
      jd_mechanism : string;
      jd_eps : float;
      jd_delta : float;
      jd_cum_eps : float;
      jd_cum_delta : float;
    }
  | Answer of { ja_seq : int; ja_analyst : string; ja_rid : string option; ja_line : string }
  | Mark of string
  | Epoch of {
      je_epoch : int;
      je_base_eps : float;
      je_base_delta : float;
      je_seq : int;  (** first unused answer seq, carried across compaction *)
    }
  | Ingest of { ji_rows : int array }

type recovery = {
  rv_records : record list;
  rv_torn : bool;
  rv_dropped_bytes : int;
  rv_tail_kind : string option;
  rv_cum : float * float;
  rv_answers : ((string * string) * string) list;
  rv_max_seq : int;
  rv_epoch : int;
  rv_base : float * float;
  rv_ingest : int list;
}

let empty_recovery =
  {
    rv_records = [];
    rv_torn = false;
    rv_dropped_bytes = 0;
    rv_tail_kind = None;
    rv_cum = (0., 0.);
    rv_answers = [];
    rv_max_seq = -1;
    rv_epoch = 0;
    rv_base = (0., 0.);
    rv_ingest = [];
  }

(* Same FNV-1a 64 the checkpoint format uses. *)
let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

(* --- record <-> JSON payload --- *)

let payload_of_record r =
  let num v = Protocol.Num v in
  let int v = Protocol.Num (float_of_int v) in
  match r with
  | Debit d ->
      Protocol.Obj
        [
          ("k", Protocol.Str "debit");
          ("mech", Protocol.Str d.jd_mechanism);
          ("eps", num d.jd_eps);
          ("delta", num d.jd_delta);
          ("cum_eps", num d.jd_cum_eps);
          ("cum_delta", num d.jd_cum_delta);
        ]
  | Answer a ->
      Protocol.Obj
        (("k", Protocol.Str "answer")
        :: ("seq", int a.ja_seq)
        :: ("analyst", Protocol.Str a.ja_analyst)
        :: ((match a.ja_rid with None -> [] | Some rid -> [ ("rid", Protocol.Str rid) ])
           @ [ ("rsp", Protocol.Str a.ja_line) ]))
  | Mark name -> Protocol.Obj [ ("k", Protocol.Str "mark"); ("name", Protocol.Str name) ]
  | Epoch e ->
      Protocol.Obj
        [
          ("k", Protocol.Str "epoch");
          ("epoch", int e.je_epoch);
          ("base_eps", num e.je_base_eps);
          ("base_delta", num e.je_base_delta);
          ("seq", int e.je_seq);
        ]
  | Ingest i ->
      Protocol.Obj
        [
          ("k", Protocol.Str "ingest");
          ("rows", Protocol.Arr (Array.to_list (Array.map (fun v -> int v) i.ji_rows)));
        ]

let field fields name = List.assoc_opt name fields
let as_str = function Protocol.Str s -> Some s | _ -> None

let as_num = function
  | Protocol.Num v -> Some v
  | Protocol.Str "nan" -> Some Float.nan
  | Protocol.Str "inf" -> Some Float.infinity
  | Protocol.Str "-inf" -> Some Float.neg_infinity
  | _ -> None

let as_int j =
  match as_num j with Some v when Float.is_integer v -> Some (int_of_float v) | _ -> None

let record_of_payload j =
  match j with
  | Protocol.Obj fields -> (
      match Option.bind (field fields "k") as_str with
      | Some "debit" -> (
          match
            ( Option.bind (field fields "mech") as_str,
              Option.bind (field fields "eps") as_num,
              Option.bind (field fields "delta") as_num,
              Option.bind (field fields "cum_eps") as_num,
              Option.bind (field fields "cum_delta") as_num )
          with
          | Some jd_mechanism, Some jd_eps, Some jd_delta, Some jd_cum_eps, Some jd_cum_delta ->
              Ok (Debit { jd_mechanism; jd_eps; jd_delta; jd_cum_eps; jd_cum_delta })
          | _ -> Error "journal: malformed debit record")
      | Some "answer" -> (
          match
            ( Option.bind (field fields "seq") as_int,
              Option.bind (field fields "analyst") as_str,
              Option.bind (field fields "rsp") as_str )
          with
          | Some ja_seq, Some ja_analyst, Some ja_line ->
              Ok
                (Answer
                   { ja_seq; ja_analyst; ja_rid = Option.bind (field fields "rid") as_str; ja_line })
          | _ -> Error "journal: malformed answer record")
      | Some "mark" -> (
          match Option.bind (field fields "name") as_str with
          | Some name -> Ok (Mark name)
          | None -> Error "journal: malformed mark record")
      | Some "epoch" -> (
          match
            ( Option.bind (field fields "epoch") as_int,
              Option.bind (field fields "base_eps") as_num,
              Option.bind (field fields "base_delta") as_num,
              Option.bind (field fields "seq") as_int )
          with
          | Some je_epoch, Some je_base_eps, Some je_base_delta, Some je_seq ->
              Ok (Epoch { je_epoch; je_base_eps; je_base_delta; je_seq })
          | _ -> Error "journal: malformed epoch record")
      | Some "ingest" -> (
          match field fields "rows" with
          | Some (Protocol.Arr items) ->
              let vals = List.map as_int items in
              if List.for_all Option.is_some vals then
                Ok (Ingest { ji_rows = Array.of_list (List.map Option.get vals) })
              else Error "journal: malformed ingest record"
          | _ -> Error "journal: malformed ingest record")
      | Some other -> Error (Printf.sprintf "journal: unknown record kind %S" other)
      | None -> Error "journal: record has no kind")
  | _ -> Error "journal: record is not a JSON object"

let record_to_string r =
  let payload = Protocol.json_to_string (payload_of_record r) in
  Printf.sprintf "%Lx %s" (fnv1a64 payload) payload

let record_of_line line =
  match String.index_opt line ' ' with
  | None -> Error "journal: line has no checksum field"
  | Some i -> (
      let crc = String.sub line 0 i in
      let payload = String.sub line (i + 1) (String.length line - i - 1) in
      match Int64.of_string_opt ("0x" ^ crc) with
      | None -> Error "journal: bad checksum field"
      | Some expected ->
          if not (Int64.equal expected (fnv1a64 payload)) then
            Error "journal: checksum mismatch"
          else Result.bind (Protocol.json_of_string payload) record_of_payload)

(* --- replay --- *)

let summarize ?tail_kind records torn dropped =
  let cum = ref (0., 0.) in
  let answers = ref [] in
  let max_seq = ref (-1) in
  let epoch = ref 0 in
  let base = ref (0., 0.) in
  let ingest = ref [] in
  List.iter
    (fun r ->
      match r with
      | Debit d -> cum := (d.jd_cum_eps, d.jd_cum_delta)
      | Answer a ->
          if a.ja_seq > !max_seq then max_seq := a.ja_seq;
          Option.iter (fun rid -> answers := ((a.ja_analyst, rid), a.ja_line) :: !answers) a.ja_rid
      | Mark _ -> ()
      | Epoch e ->
          (* A compacted journal starts with its Epoch record; everything
             after it belongs to that generation, so the within-epoch
             summaries reset here (defensive — compaction rewrites the file,
             so records never precede an Epoch line in practice). *)
          epoch := e.je_epoch;
          base := (e.je_base_eps, e.je_base_delta);
          if e.je_seq - 1 > !max_seq then max_seq := e.je_seq - 1;
          cum := (0., 0.);
          ingest := []
      | Ingest i -> Array.iter (fun v -> ingest := v :: !ingest) i.ji_rows)
    records;
  {
    rv_records = records;
    rv_torn = torn;
    rv_dropped_bytes = dropped;
    rv_tail_kind = tail_kind;
    rv_cum = !cum;
    rv_answers = List.rev !answers;
    rv_max_seq = !max_seq;
    rv_epoch = !epoch;
    rv_base = !base;
    rv_ingest = List.rev !ingest;
  }

(* Best-effort classification of a dropped tail. The checksum failed (or
   the newline never landed), so nothing in the fragment can be trusted as
   a record — but when its JSON payload still parses, its "k" field tells
   operators WHAT was lost, distinguishing a routine torn write from tail
   corruption that ate e.g. a released answer. *)
let tail_kind fragment =
  match String.index_opt fragment ' ' with
  | None -> None
  | Some i -> (
      let payload = String.sub fragment (i + 1) (String.length fragment - i - 1) in
      match Protocol.json_of_string payload with
      | Ok (Protocol.Obj fields) -> Option.bind (field fields "k") as_str
      | Ok _ | Error _ -> None)

(* A crash can only tear the tail: a record is one write(2) of a full line,
   so the only invalid data a clean shutdown or a kill -9 can leave is a
   truncated final line (no '\n', or a last line whose checksum fails).
   Anything invalid that is FOLLOWED by more data is disk corruption and a
   hard error — silently dropping valid answer records would break the
   dedup byte-identity contract. *)
let replay_string s =
  let len = String.length s in
  let rec go pos records =
    if pos >= len then Ok (summarize (List.rev records) false 0)
    else
      match String.index_from_opt s pos '\n' with
      | None ->
          (* trailing bytes without a newline: torn tail *)
          let tail = String.sub s pos (len - pos) in
          Ok (summarize ?tail_kind:(tail_kind tail) (List.rev records) true (len - pos))
      | Some nl -> (
          let line = String.sub s pos (nl - pos) in
          match record_of_line line with
          | Ok r -> go (nl + 1) (r :: records)
          | Error why ->
              if nl + 1 >= len then
                (* invalid final complete line: a torn write that happened
                   to end at a byte that looks like '\n', or a partially
                   synced tail — drop it *)
                Ok (summarize ?tail_kind:(tail_kind line) (List.rev records) true (len - pos))
              else Error (Printf.sprintf "%s (mid-file, at byte %d)" why pos))
  in
  go 0 []

(* --- file handle --- *)

type t = {
  jt_path : string;
  jt_fd : Unix.file_descr;
  mutable jt_closed : bool;
  mutable jt_bytes : int;  (* valid on-disk bytes after open-time truncation *)
  mutable jt_records : int;
}

(* EINTR means nothing was written (the process installs signal
   handlers), so retrying keeps the single-write(2)-per-record framing. *)
let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    match Unix.write fd b !written (n - !written) with
    | k -> written := !written + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let open_journal ~path =
  match
    let content =
      if Sys.file_exists path then begin
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      end
      else ""
    in
    Result.map (fun r -> (content, r)) (replay_string content)
  with
  | exception Sys_error why -> Error ("journal: " ^ why)
  | Error why -> Error why
  | Ok (content, recovery) -> (
      match
        let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
        if recovery.rv_dropped_bytes > 0 then begin
          (* truncate the torn tail off so the next reader starts clean *)
          Unix.ftruncate fd (String.length content - recovery.rv_dropped_bytes);
          Unix.fsync fd
        end;
        fd
      with
      | fd ->
          Ok
            ( {
                jt_path = path;
                jt_fd = fd;
                jt_closed = false;
                jt_bytes = String.length content - recovery.rv_dropped_bytes;
                jt_records = List.length recovery.rv_records;
              },
              recovery )
      | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "journal: cannot open %s: %s" path (Unix.error_message e)))

let append t r =
  if t.jt_closed then invalid_arg "Journal.append: journal is closed";
  let line = record_to_string r ^ "\n" in
  write_all t.jt_fd line;
  t.jt_bytes <- t.jt_bytes + String.length line;
  t.jt_records <- t.jt_records + 1

let sync t = if not t.jt_closed then Unix.fsync t.jt_fd

let close t =
  if not t.jt_closed then begin
    t.jt_closed <- true;
    (try Unix.fsync t.jt_fd with Unix.Unix_error _ -> ());
    try Unix.close t.jt_fd with Unix.Unix_error _ -> ()
  end

let path t = t.jt_path
let size t = (t.jt_bytes, t.jt_records)

(* --- ledger reconciliation --- *)

let reconcile recovery ~budget =
  let cum_eps, cum_delta = recovery.rv_cum in
  let spent = Budget.spent budget in
  let diff_eps = Float.max 0. (cum_eps -. spent.Params.eps) in
  let diff_delta = Float.max 0. (cum_delta -. spent.Params.delta) in
  (* Round-off guard: the journal stores the same float sums the ledger
     recomputes, so a genuine difference is at least one real debit; treat
     anything at relative-epsilon scale as equal. *)
  let total = Budget.total budget in
  let negligible v scale = v <= 1e-12 *. Float.max 1. scale in
  if negligible diff_eps total.Params.eps && negligible diff_delta total.Params.delta then (0., 0.)
  else begin
    let quarantined =
      match
        Budget.request ~mechanism:"journal-replay" budget
          (Params.create ~eps:diff_eps ~delta:(Float.min 1. diff_delta))
      with
      | Ok granted -> granted
      | Error _ ->
          (* should not happen for an honest journal; drain conservatively *)
          Budget.request_all ~mechanism:"journal-replay" budget
    in
    (quarantined.Params.eps, quarantined.Params.delta)
  end
