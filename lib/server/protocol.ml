(* Line-delimited JSON wire protocol for the query server. The JSON layer is
   hand-rolled because the repo deliberately carries no JSON dependency: the
   telemetry trace reader only parses flat objects, and the protocol needs
   nested values (theta arrays), so this module owns a small full parser.
   Floats follow the telemetry convention — %.17g for finite values (which
   round-trips every double), and the strings "nan" / "inf" / "-inf" for the
   values JSON cannot spell. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(* --- printing --- *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let num_to_string v =
  if Float.is_finite v then Printf.sprintf "%.17g" v
  else if Float.is_nan v then "\"nan\""
  else if v > 0. then "\"inf\""
  else "\"-inf\""

let rec print_into b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num v -> Buffer.add_string b (num_to_string v)
  | Str s ->
      Buffer.add_char b '"';
      escape_into b s;
      Buffer.add_char b '"'
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          print_into b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_into b k;
          Buffer.add_string b "\":";
          print_into b v)
        fields;
      Buffer.add_char b '}'

let json_to_string j =
  let b = Buffer.create 256 in
  print_into b j;
  Buffer.contents b

(* --- parsing: recursive descent over the line --- *)

exception Bad of string

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.text
    && match c.text.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> raise (Bad (Printf.sprintf "expected '%c' at byte %d, found '%c'" ch c.pos x))
  | None -> raise (Bad (Printf.sprintf "expected '%c' at byte %d, found end of input" ch c.pos))

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else raise (Bad (Printf.sprintf "bad literal at byte %d" c.pos))

(* Validates digits explicitly: int_of_string would raise Failure on a
   malformed escape like \uZZZZ, and the parser's no-raise contract (any
   byte garbage maps to Error, never an exception) is what the fuzz corpus
   in test_server.ml pins down. *)
let parse_hex4 c =
  if c.pos + 4 > String.length c.text then raise (Bad "truncated \\u escape");
  let digit ch =
    match ch with
    | '0' .. '9' -> Char.code ch - Char.code '0'
    | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
    | _ -> raise (Bad (Printf.sprintf "bad hex digit '%c' in \\u escape" ch))
  in
  let v = ref 0 in
  for i = c.pos to c.pos + 3 do
    v := (!v lsl 4) lor digit c.text.[i]
  done;
  c.pos <- c.pos + 4;
  !v

(* Decodes \uXXXX escapes to UTF-8 (surrogate pairs included) so a string
   round-trips even when the peer escapes non-ASCII. *)
let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> raise (Bad "unterminated string")
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | None -> raise (Bad "unterminated escape")
        | Some e ->
            c.pos <- c.pos + 1;
            (match e with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                let hi = parse_hex4 c in
                if hi >= 0xD800 && hi <= 0xDBFF then begin
                  expect c '\\';
                  expect c 'u';
                  let lo = parse_hex4 c in
                  if lo < 0xDC00 || lo > 0xDFFF then raise (Bad "bad surrogate pair");
                  add_utf8 b (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
                end
                else add_utf8 b hi
            | _ -> raise (Bad (Printf.sprintf "bad escape '\\%c'" e)));
            go ())
    | Some ch ->
        c.pos <- c.pos + 1;
        Buffer.add_char b ch;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let numeric ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while c.pos < String.length c.text && numeric c.text.[c.pos] do
    c.pos <- c.pos + 1
  done;
  match float_of_string_opt (String.sub c.text start (c.pos - start)) with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "bad number at byte %d" start))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> raise (Bad "unexpected end of input")
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        Arr []
      end
      else begin
        let items = ref [ parse_value c ] in
        skip_ws c;
        while peek c = Some ',' do
          c.pos <- c.pos + 1;
          items := parse_value c :: !items;
          skip_ws c
        done;
        expect c ']';
        Arr (List.rev !items)
      end
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws c;
        while peek c = Some ',' do
          c.pos <- c.pos + 1;
          fields := field () :: !fields;
          skip_ws c
        done;
        expect c '}';
        Obj (List.rev !fields)
      end
  | Some _ -> Num (parse_number c)

let json_of_string s =
  let c = { text = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "trailing bytes after JSON value at byte %d" c.pos)
      else Ok v
  | exception Bad why -> Error why
  (* Belt and braces for the no-raise contract: any stray library exception
     from a hostile input becomes a decode error, never a crashed reader
     thread. *)
  | exception Failure why -> Error ("malformed JSON: " ^ why)
  | exception Invalid_argument why -> Error ("malformed JSON: " ^ why)

(* --- schema --- *)

let version = 1

(* Framing limits: a line longer than this is rejected before parsing (one
   hostile analyst must not be able to balloon the reader's buffers), and a
   NUL byte anywhere is rejected — no legitimate encoder emits raw NUL, and
   truncation bugs in C-string-minded peers show up as embedded NULs. *)
let max_line_bytes = 65536

let frame_check what line =
  let n = String.length line in
  if n > max_line_bytes then
    Error (Printf.sprintf "%s line of %d bytes exceeds the %d-byte limit" what n max_line_bytes)
  else if String.contains line '\000' then
    Error (Printf.sprintf "%s line contains a NUL byte" what)
  else Ok ()

type request = {
  req_id : int;
  req_analyst : string;
  req_query : string;
  req_rid : string option;
  req_shards : int list option;
  req_trace : string option;
  req_pspan : int option;
  req_rows : int list option;
}

type status =
  | Answered
  | Degraded of string
  | Refused of string
  | Rejected of { retry_after_s : float option; reason : string }
  | Failed of string
  | Partial of {
      missing_shards : int list;
      coverage : float;
      retry_after_s : float option;
      reason : string;
    }

type response = {
  rsp_id : int;
  rsp_seq : int;
  rsp_status : status;
  rsp_theta : float array option;
  rsp_source : string option;
  rsp_update_index : int option;
  rsp_batch : int option;
  rsp_queue_wait_s : float option;
  rsp_spent_eps : float option;
  rsp_spent_delta : float option;
  rsp_epoch : int option;
  rsp_body : string option;
}

let field fields name = List.assoc_opt name fields

let as_num = function
  | Num v -> Some v
  | Str "nan" -> Some Float.nan
  | Str "inf" -> Some Float.infinity
  | Str "-inf" -> Some Float.neg_infinity
  | _ -> None

let as_int j =
  match as_num j with
  | Some v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let as_str = function Str s -> Some s | _ -> None

let check_version fields =
  match Option.bind (field fields "v") as_int with
  | None -> Error "missing schema version field \"v\""
  | Some v when v <> version -> Error (Printf.sprintf "unsupported schema version %d (speaking %d)" v version)
  | Some _ -> Ok ()

let encode_request r =
  json_to_string
    (Obj
       (("v", Num (float_of_int version))
       :: ("id", Num (float_of_int r.req_id))
       :: ("analyst", Str r.req_analyst)
       :: ("query", Str r.req_query)
       :: ((match r.req_rid with None -> [] | Some rid -> [ ("rid", Str rid) ])
          @ (match r.req_shards with
            | None -> []
            | Some ids ->
                [ ("shards", Arr (List.map (fun i -> Num (float_of_int i)) ids)) ])
          @ (match r.req_trace with None -> [] | Some tr -> [ ("trace", Str tr) ])
          @ (match r.req_pspan with None -> [] | Some p -> [ ("pspan", Num (float_of_int p)) ])
          @ match r.req_rows with
            | None -> []
            | Some rows -> [ ("rows", Arr (List.map (fun v -> Num (float_of_int v)) rows)) ])))

let decode_request line =
  Result.bind (frame_check "request" line) (fun () ->
      Result.bind (json_of_string line) (function
        | Obj fields -> (
            Result.bind (check_version fields) (fun () ->
                match
                  ( Option.bind (field fields "id") as_int,
                    Option.bind (field fields "analyst") as_str,
                    Option.bind (field fields "query") as_str )
                with
                | Some id, Some analyst, Some query -> (
                    let shards =
                      match field fields "shards" with
                      | None -> Ok None
                      | Some (Arr items) ->
                          let vals = List.map as_int items in
                          if List.for_all Option.is_some vals then
                            Ok (Some (List.map Option.get vals))
                          else
                            Error
                              "request field \"shards\" must be an array of integers"
                      | Some _ ->
                          Error "request field \"shards\" must be an array of integers"
                    in
                    let rows =
                      match field fields "rows" with
                      | None -> Ok None
                      | Some (Arr items) ->
                          let vals = List.map as_int items in
                          if List.for_all Option.is_some vals then
                            Ok (Some (List.map Option.get vals))
                          else Error "request field \"rows\" must be an array of integers"
                      | Some _ -> Error "request field \"rows\" must be an array of integers"
                    in
                    match (shards, rows) with
                    | Error why, _ | _, Error why -> Error why
                    | Ok shards, Ok rows ->
                        Ok
                          {
                            req_id = id;
                            req_analyst = analyst;
                            req_query = query;
                            req_rid = Option.bind (field fields "rid") as_str;
                            req_shards = shards;
                            req_trace = Option.bind (field fields "trace") as_str;
                            req_pspan = Option.bind (field fields "pspan") as_int;
                            req_rows = rows;
                          })
                | None, _, _ -> Error "request is missing integer field \"id\""
                | _, None, _ -> Error "request is missing string field \"analyst\""
                | _, _, None -> Error "request is missing string field \"query\""))
        | _ -> Error "request is not a JSON object"))

let status_tag = function
  | Answered -> "answered"
  | Degraded _ -> "degraded"
  | Refused _ -> "refused"
  | Rejected _ -> "rejected"
  | Failed _ -> "error"
  | Partial _ -> "partial"

let encode_response r =
  let opt name f v tail = match v with None -> tail | Some v -> (name, f v) :: tail in
  let num v = Num v in
  let int v = Num (float_of_int v) in
  let reason_fields =
    match r.rsp_status with
    | Answered -> []
    | Degraded why | Refused why | Failed why -> [ ("reason", Str why) ]
    | Rejected { retry_after_s; reason } ->
        ("reason", Str reason)
        :: (match retry_after_s with None -> [] | Some s -> [ ("retry_after_s", Num s) ])
    | Partial { missing_shards; coverage; retry_after_s; reason } ->
        ("reason", Str reason)
        :: ("coverage", Num coverage)
        :: ( "missing_shards",
             Arr (List.map (fun i -> Num (float_of_int i)) missing_shards) )
        :: (match retry_after_s with None -> [] | Some s -> [ ("retry_after_s", Num s) ])
  in
  json_to_string
    (Obj
       (("v", Num (float_of_int version))
        :: ("id", int r.rsp_id)
        :: ("seq", int r.rsp_seq)
        :: ("status", Str (status_tag r.rsp_status))
        :: (reason_fields
           @ opt "theta" (fun a -> Arr (Array.to_list (Array.map num a))) r.rsp_theta
             (opt "source" (fun s -> Str s) r.rsp_source
                (opt "update_index" int r.rsp_update_index
                   (opt "batch" int r.rsp_batch
                      (opt "queue_wait_s" num r.rsp_queue_wait_s
                         (opt "spent_eps" num r.rsp_spent_eps
                            (opt "spent_delta" num r.rsp_spent_delta
                               (opt "epoch" int r.rsp_epoch
                                  (opt "body" (fun s -> Str s) r.rsp_body [])))))))))))

let decode_response line =
  Result.bind (frame_check "response" line) (fun () ->
  Result.bind (json_of_string line) (function
    | Obj fields -> (
        Result.bind (check_version fields) (fun () ->
            let reason () =
              Option.value ~default:"" (Option.bind (field fields "reason") as_str)
            in
            let status =
              match Option.bind (field fields "status") as_str with
              | Some "answered" -> Ok Answered
              | Some "degraded" -> Ok (Degraded (reason ()))
              | Some "refused" -> Ok (Refused (reason ()))
              | Some "rejected" ->
                  Ok
                    (Rejected
                       {
                         retry_after_s = Option.bind (field fields "retry_after_s") as_num;
                         reason = reason ();
                       })
              | Some "error" -> Ok (Failed (reason ()))
              | Some "partial" -> (
                  let missing =
                    match field fields "missing_shards" with
                    | Some (Arr items) ->
                        let vals = List.map as_int items in
                        if List.for_all Option.is_some vals then
                          Ok (List.map Option.get vals)
                        else
                          Error
                            "partial response field \"missing_shards\" must be an \
                             array of integers"
                    | Some _ ->
                        Error
                          "partial response field \"missing_shards\" must be an \
                           array of integers"
                    | None -> Error "partial response is missing \"missing_shards\""
                  in
                  match
                    (missing, Option.bind (field fields "coverage") as_num)
                  with
                  | Error why, _ -> Error why
                  | _, None -> Error "partial response is missing number \"coverage\""
                  | Ok missing_shards, Some coverage ->
                      Ok
                        (Partial
                           {
                             missing_shards;
                             coverage;
                             retry_after_s =
                               Option.bind (field fields "retry_after_s") as_num;
                             reason = reason ();
                           }))
              | Some other -> Error (Printf.sprintf "unknown status %S" other)
              | None -> Error "response is missing string field \"status\""
            in
            Result.bind status (fun status ->
                let theta =
                  match field fields "theta" with
                  | Some (Arr items) ->
                      let vals = List.map as_num items in
                      if List.for_all Option.is_some vals then
                        Some (Array.of_list (List.map Option.get vals))
                      else None
                  | _ -> None
                in
                match
                  (Option.bind (field fields "id") as_int, Option.bind (field fields "seq") as_int)
                with
                | Some id, Some seq ->
                    Ok
                      {
                        rsp_id = id;
                        rsp_seq = seq;
                        rsp_status = status;
                        rsp_theta = theta;
                        rsp_source = Option.bind (field fields "source") as_str;
                        rsp_update_index = Option.bind (field fields "update_index") as_int;
                        rsp_batch = Option.bind (field fields "batch") as_int;
                        rsp_queue_wait_s = Option.bind (field fields "queue_wait_s") as_num;
                        rsp_spent_eps = Option.bind (field fields "spent_eps") as_num;
                        rsp_spent_delta = Option.bind (field fields "spent_delta") as_num;
                        rsp_epoch = Option.bind (field fields "epoch") as_int;
                        rsp_body = Option.bind (field fields "body") as_str;
                      }
                | None, _ -> Error "response is missing integer field \"id\""
                | _, None -> Error "response is missing integer field \"seq\"")))
    | _ -> Error "response is not a JSON object"))
