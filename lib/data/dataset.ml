module Vec = Pmw_linalg.Vec

type t = {
  universe : Universe.t;
  rows : int array;
  mutable hist : Histogram.t option;
  epoch : int;
}

let create ?(epoch = 0) u rows =
  if Array.length rows = 0 then invalid_arg "Dataset.create: empty dataset";
  if epoch < 0 then invalid_arg "Dataset.create: epoch must be >= 0";
  let n = Universe.size u in
  Array.iter
    (fun i -> if i < 0 || i >= n then invalid_arg "Dataset.create: row index out of range")
    rows;
  { universe = u; rows; hist = None; epoch }

let universe t = t.universe
let size t = Array.length t.rows
let epoch t = t.epoch

let with_epoch t epoch =
  if epoch < 0 then invalid_arg "Dataset.with_epoch: epoch must be >= 0";
  { t with epoch; hist = t.hist }

let row t i =
  if i < 0 || i >= size t then invalid_arg "Dataset.row: index out of range";
  t.rows.(i)

let row_point t i = Universe.get t.universe (row t i)
let rows t = Array.copy t.rows

let histogram t =
  match t.hist with
  | Some h -> h
  | None ->
      let counts = Array.make (Universe.size t.universe) 0 in
      Array.iter (fun i -> counts.(i) <- counts.(i) + 1) t.rows;
      let h = Histogram.of_counts t.universe counts in
      t.hist <- Some h;
      h

let of_histogram ~n h rng =
  if n <= 0 then invalid_arg "Dataset.of_histogram: n must be positive";
  let draw = Histogram.sampler h in
  create (Histogram.universe h) (Array.init n (fun _ -> draw rng))

let replace_row t ~index ~value =
  if index < 0 || index >= size t then invalid_arg "Dataset.replace_row: index out of range";
  if value < 0 || value >= Universe.size t.universe then
    invalid_arg "Dataset.replace_row: value out of range";
  let rows = Array.copy t.rows in
  rows.(index) <- value;
  { t with rows; hist = None }

let random_neighbor t rng =
  let index = Pmw_rng.Rng.int rng (size t) in
  let value = Pmw_rng.Rng.int rng (Universe.size t.universe) in
  replace_row t ~index ~value

let mean_loss t f =
  let values = Array.map (fun i -> f (Universe.get t.universe i)) t.rows in
  Vec.kahan_sum values /. float_of_int (size t)

let mean_grad t ~dim g =
  let acc = Vec.create dim in
  Array.iter (fun i -> Vec.add_inplace acc (g (Universe.get t.universe i))) t.rows;
  Vec.scale_inplace (1. /. float_of_int (size t)) acc;
  acc

let subsample t ~m rng =
  if m <= 0 || m > size t then invalid_arg "Dataset.subsample: need 0 < m <= size";
  let idx = Pmw_rng.Dist.sample_indices_without_replacement ~n:(size t) ~k:m rng in
  { t with rows = Array.map (fun i -> t.rows.(i)) idx; hist = None }

let concat a b =
  if Universe.name a.universe <> Universe.name b.universe then
    invalid_arg "Dataset.concat: different universes";
  { a with rows = Array.append a.rows b.rows; hist = None }

let advance t extra =
  let n = Universe.size t.universe in
  Array.iter
    (fun i -> if i < 0 || i >= n then invalid_arg "Dataset.advance: row index out of range")
    extra;
  {
    universe = t.universe;
    rows = Array.append t.rows extra;
    hist = None;
    epoch = t.epoch + 1;
  }

let pp fmt t =
  Format.fprintf fmt "dataset(n=%d over %s, epoch %d)" (size t) (Universe.name t.universe)
    t.epoch

(* Append-only staging area for rows that arrived after the dataset was
   versioned: rows accumulate here (validated against the universe on entry)
   until an epoch transition drains them into [advance]. The buffer itself
   is NOT durable — callers that need crash-safety journal each add and
   rebuild the buffer from the journal on recovery. *)
module Ingest = struct
  type buffer = {
    bu_universe : Universe.t;
    mutable bu_rows : int list;  (* newest first *)
    mutable bu_count : int;
  }

  let create u = { bu_universe = u; bu_rows = []; bu_count = 0 }

  let add b rows =
    let n = Universe.size b.bu_universe in
    Array.iter
      (fun i -> if i < 0 || i >= n then invalid_arg "Ingest.add: row index out of range")
      rows;
    Array.iter (fun i -> b.bu_rows <- i :: b.bu_rows) rows;
    b.bu_count <- b.bu_count + Array.length rows

  let pending b = b.bu_count

  let drain b =
    let rows = Array.of_list (List.rev b.bu_rows) in
    b.bu_rows <- [];
    b.bu_count <- 0;
    rows

  let peek b = Array.of_list (List.rev b.bu_rows)
end
