(** Datasets: ordered multisets of universe elements.

    A dataset [D ∈ Xⁿ] is stored as an array of indices into its universe,
    matching the paper's Section 2.1. Adjacency ([D ~ D'], differing in one
    row) is the replacement notion, so the histograms of adjacent datasets
    satisfy [‖D − D'‖₁ <= 2/n]. *)

type t

val create : ?epoch:int -> Universe.t -> int array -> t
(** [epoch] (default 0) is the dataset's version id — see {!epoch}.
    @raise Invalid_argument on an empty row array, out-of-range indices, or
    a negative epoch. *)

val universe : t -> Universe.t
val size : t -> int

val epoch : t -> int
(** The dataset's version id. A serving system that grows its data in
    epochs stamps each generation so checkpoints, journals and snapshots
    can name exactly which [D] they were taken against; 0 means "the only
    generation" for callers that never version. *)

val with_epoch : t -> int -> t
(** Same rows, re-stamped. @raise Invalid_argument on a negative epoch. *)

val row : t -> int -> int
(** Universe index of the [i]-th row. *)

val row_point : t -> int -> Point.t

val rows : t -> int array
(** Fresh copy of the index array. *)

val histogram : t -> Histogram.t
(** The empirical distribution of the rows — the [D] the mechanisms consume.
    Computed once and cached (datasets are immutable), so loss evaluations
    over a dataset cost [O(|X|)] rather than [O(n)]. *)

val of_histogram : n:int -> Histogram.t -> Pmw_rng.Rng.t -> t
(** [n] iid rows drawn from the histogram (alias-method sampling). *)

val replace_row : t -> index:int -> value:int -> t
(** An adjacent dataset: row [index] replaced by universe element [value].
    Used by sensitivity property tests and the empirical privacy audit. *)

val random_neighbor : t -> Pmw_rng.Rng.t -> t
(** A uniformly random adjacent dataset. *)

val mean_loss : t -> (Point.t -> float) -> float
(** [(1/n) Σᵢ f(xᵢ)] with compensated summation — the empirical risk
    functional [ℓ(θ; D)] for a fixed [θ]. *)

val mean_grad : t -> dim:int -> (Point.t -> Pmw_linalg.Vec.t) -> Pmw_linalg.Vec.t
(** [(1/n) Σᵢ g(xᵢ)]. *)

val subsample : t -> m:int -> Pmw_rng.Rng.t -> t
(** [m] rows sampled without replacement. @raise Invalid_argument if [m]
    exceeds the dataset size or is non-positive. *)

val concat : t -> t -> t
(** Row-wise concatenation (universes must coincide). Keeps [a]'s epoch. *)

val advance : t -> int array -> t
(** The next dataset generation: the old rows plus the ingested ones, with
    the epoch id bumped by one. The histogram cache is dropped (the
    empirical distribution changed). @raise Invalid_argument on
    out-of-range rows. An empty [extra] is legal — an epoch may roll over
    purely to refresh budget. *)

val pp : Format.formatter -> t -> unit

(** Append-only ingest staging for epoch-versioned serving: rows land here
    as they arrive and are drained into {!advance} at the next epoch
    transition. In-memory only — durability is the caller's journal. *)
module Ingest : sig
  type buffer

  val create : Universe.t -> buffer

  val add : buffer -> int array -> unit
  (** @raise Invalid_argument on out-of-range rows (nothing is added). *)

  val pending : buffer -> int
  (** Rows currently staged. *)

  val drain : buffer -> int array
  (** All staged rows in arrival order; empties the buffer. *)

  val peek : buffer -> int array
  (** All staged rows in arrival order, without draining. *)
end
