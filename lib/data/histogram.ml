module Vec = Pmw_linalg.Vec
module Special = Pmw_linalg.Special
module Pool = Pmw_parallel.Pool

type t = { universe : Universe.t; w : float array }

let the_pool = function Some p -> p | None -> Pool.default ()

let universe t = t.universe
let size t = Array.length t.w

let get t i =
  if i < 0 || i >= size t then invalid_arg "Histogram.get: index out of range";
  t.w.(i)

let weights t = Array.copy t.w

let uniform u =
  let n = Universe.size u in
  { universe = u; w = Array.make n (1. /. float_of_int n) }

let of_weights u w =
  if Array.length w <> Universe.size u then invalid_arg "Histogram.of_weights: length mismatch";
  Array.iter
    (fun x ->
      if x < 0. || Float.is_nan x then invalid_arg "Histogram.of_weights: negative weight")
    w;
  let total = Vec.kahan_sum w in
  if total <= 0. then invalid_arg "Histogram.of_weights: non-positive total mass";
  { universe = u; w = Array.map (fun x -> x /. total) w }

let of_counts u counts =
  of_weights u
    (Array.map
       (fun c ->
         if c < 0 then invalid_arg "Histogram.of_counts: negative count";
         float_of_int c)
       counts)

let unsafe_of_normalized u w =
  if Array.length w <> Universe.size u then
    invalid_arg "Histogram.unsafe_of_normalized: length mismatch";
  { universe = u; w }

let point_mass u i =
  if i < 0 || i >= Universe.size u then invalid_arg "Histogram.point_mass: index out of range";
  let w = Array.make (Universe.size u) 0. in
  w.(i) <- 1.;
  { universe = u; w }

(* The O(|X|) sweeps below run chunked on the pool with per-chunk compensated
   sums and an index-ordered tree combine — no intermediate |X|-sized arrays,
   and bit-identical results whatever the pool size. Zero-mass elements are
   skipped entirely: their [f] is never evaluated. *)

let expect ?pool t f =
  let pts = Universe.points t.universe in
  let w = t.w in
  Pool.parallel_reduce (the_pool pool) ~n:(Array.length w) ~neutral:0. ~combine:( +. )
    ~chunk:(fun lo hi ->
      Special.kahan_range lo hi (fun i ->
          let wi = w.(i) in
          if wi = 0. then 0. else wi *. f i pts.(i)))

let expect_vec_into ?pool t ~dst f =
  let pts = Universe.points t.universe in
  let w = t.w in
  let dim = Array.length dst in
  Array.fill dst 0 dim 0.;
  let acc =
    Pool.parallel_reduce (the_pool pool) ~n:(Array.length w) ~neutral:dst
      ~chunk:(fun lo hi ->
        let acc = Vec.create dim in
        for i = lo to hi - 1 do
          let wi = w.(i) in
          if wi > 0. then Vec.axpy ~alpha:wi ~x:(f i pts.(i)) ~y:acc
        done;
        acc)
      ~combine:(fun a b ->
        Vec.add_inplace a b;
        a)
  in
  if acc != dst then Array.blit acc 0 dst 0 dim

let expect_vec ?pool t ~dim f =
  let dst = Vec.create dim in
  expect_vec_into ?pool t ~dst f;
  dst

let dot ?pool t v =
  if Array.length v <> Array.length t.w then invalid_arg "Histogram.dot: length mismatch";
  let w = t.w in
  Pool.parallel_reduce (the_pool pool) ~n:(Array.length w) ~neutral:0. ~combine:( +. )
    ~chunk:(fun lo hi -> Special.kahan_range lo hi (fun i -> w.(i) *. v.(i)))

let same_universe name a b =
  if a.universe != b.universe && Universe.name a.universe <> Universe.name b.universe then
    invalid_arg (name ^ ": histograms over different universes")

let l1_dist a b =
  same_universe "Histogram.l1_dist" a b;
  Vec.dist1 a.w b.w

let linf_dist a b =
  same_universe "Histogram.linf_dist" a b;
  Vec.norm_inf (Vec.sub a.w b.w)

let entropy t =
  let terms = Array.map (fun p -> if p > 0. then -.p *. log p else 0.) t.w in
  Vec.kahan_sum terms

let kl_div p q =
  same_universe "Histogram.kl_div" p q;
  let acc = ref 0. in
  (try
     Array.iteri
       (fun i pi ->
         if pi > 0. then
           if q.w.(i) <= 0. then raise Exit else acc := !acc +. (pi *. log (pi /. q.w.(i))))
       p.w
   with Exit -> acc := infinity);
  Float.max 0. !acc

let sample t rng = Pmw_rng.Dist.categorical ~weights:t.w rng

let sampler t =
  let alias = Pmw_rng.Dist.Alias.create t.w in
  fun rng -> Pmw_rng.Dist.Alias.draw alias rng

let support_size ?(threshold = 0.) t =
  Array.fold_left (fun acc p -> if p > threshold then acc + 1 else acc) 0 t.w

let mix a b s =
  same_universe "Histogram.mix" a b;
  if s < 0. || s > 1. then invalid_arg "Histogram.mix: s must lie in [0, 1]";
  { universe = a.universe; w = Array.mapi (fun i x -> ((1. -. s) *. x) +. (s *. b.w.(i))) a.w }

let pp fmt t =
  Format.fprintf fmt "@[<h>histogram(%s):" (Universe.name t.universe);
  let n = size t in
  let shown = min n 8 in
  for i = 0 to shown - 1 do
    Format.fprintf fmt " %.4f" t.w.(i)
  done;
  if shown < n then Format.fprintf fmt " ... (%d more)" (n - shown);
  Format.fprintf fmt "@]"
