(** Probability distributions over a finite universe.

    Section 2.1 of the paper represents a dataset as its histogram — a vector
    in [R^X] with [D(x) = Pr(random row = x)]. Histograms are the objects the
    multiplicative-weights mechanism manipulates: the true dataset's
    histogram [D] and the public hypothesis [D̂ₜ]. The invariant (weights
    non-negative, summing to 1 up to round-off) is established by every
    constructor. *)

type t

val universe : t -> Universe.t
val size : t -> int

val get : t -> int -> float
(** Mass of the [i]-th universe element. *)

val weights : t -> float array
(** A fresh copy of the weight vector. *)

val uniform : Universe.t -> t
(** The uninformed initial hypothesis [D̂₁] of Figure 3. *)

val of_weights : Universe.t -> float array -> t
(** Normalizes the given non-negative vector.
    @raise Invalid_argument on negative entries, a non-positive sum, or a
    length mismatch with the universe. *)

val of_counts : Universe.t -> int array -> t
(** Histogram of raw counts. *)

val unsafe_of_normalized : Universe.t -> float array -> t
(** Takes {e ownership} of [w], skipping validation and normalization: the
    caller guarantees non-negative entries summing to 1 and must not mutate
    [w] afterwards. The allocation-free constructor behind
    [Mw.distribution], whose softmax output is already a distribution.
    @raise Invalid_argument on a length mismatch. *)

val point_mass : Universe.t -> int -> t

val expect : ?pool:Pmw_parallel.Pool.t -> t -> (int -> Point.t -> float) -> float
(** [expect h f] is [Σ_x h(x) · f(x)] — expected value of [f] under the
    histogram, computed with chunked compensated summation on the pool
    (deterministically: see {!Pmw_parallel.Pool}). This is how expected
    losses [ℓ(θ; D)] and linear-query answers [⟨q, D⟩] are evaluated.
    [f] is skipped (never called) on zero-mass elements, and may run on
    worker domains, so it must be thread-safe. *)

val expect_vec :
  ?pool:Pmw_parallel.Pool.t -> t -> dim:int -> (int -> Point.t -> Pmw_linalg.Vec.t) -> Pmw_linalg.Vec.t
(** Vector-valued expectation, e.g. the gradient [∇ℓ_D(θ) = Σ_x D(x) ∇ℓ_x(θ)]. *)

val expect_vec_into :
  ?pool:Pmw_parallel.Pool.t -> t -> dst:Pmw_linalg.Vec.t -> (int -> Point.t -> Pmw_linalg.Vec.t) -> unit
(** {!expect_vec} accumulated into a caller-supplied buffer (overwritten),
    for solvers that evaluate gradients every iteration. *)

val dot : ?pool:Pmw_parallel.Pool.t -> t -> float array -> float
(** [⟨w, v⟩] against a pre-tabulated per-element value vector — the fast
    path for linear queries whose values have been memoized over the
    universe (see [Linear_pmw.values]).
    @raise Invalid_argument on a length mismatch. *)

val l1_dist : t -> t -> float
(** [‖D − D'‖₁]. Adjacent size-[n] datasets satisfy [l1_dist <= 2/n]. *)

val linf_dist : t -> t -> float

val entropy : t -> float
(** Shannon entropy in nats; maximized by {!uniform}. *)

val kl_div : t -> t -> float
(** [KL(p ‖ q)]; [infinity] when [p] puts mass where [q] has none. The MW
    potential argument (Lemma 3.4) tracks [KL(D ‖ D̂ₜ)]. *)

val sample : t -> Pmw_rng.Rng.t -> int
(** One index drawn from the histogram distribution. *)

val sampler : t -> (Pmw_rng.Rng.t -> int)
(** Alias-method sampler — preferable when drawing many rows. *)

val support_size : ?threshold:float -> t -> int
(** Number of entries with mass above [threshold] (default 0). *)

val mix : t -> t -> float -> t
(** [mix a b s] is the mixture [(1-s)·a + s·b].
    @raise Invalid_argument unless [0 <= s <= 1] and universes coincide. *)

val pp : Format.formatter -> t -> unit
