(** Convex-minimization queries (Section 2.2).

    A CM query is a convex loss [ℓ : Θ × X → R] together with its domain
    [Θ]; the query asks for [q_ℓ(D) = argmin_θ ℓ(θ; D)]. This module bundles
    the two, exposes the paper's error functionals (Definitions 2.2 and 2.3)
    and the scale/sensitivity bookkeeping of Sections 3.2 and 3.4.2. *)

type t = { name : string; loss : Pmw_convex.Loss.t; domain : Pmw_convex.Domain.t }

val make : ?name:string -> loss:Pmw_convex.Loss.t -> domain:Pmw_convex.Domain.t -> unit -> t

val dim : t -> int

val scale : t -> float
(** The paper's scaling constant [S] for this query:
    [max |⟨θ−θ', ∇ℓ_x(θ)⟩| <= diam(Θ)·Lipschitz(ℓ)]. *)

val error_sensitivity : t -> n:int -> float
(** Global sensitivity of the sparse-vector query [q_j(D) = err_ℓ(D, D̂ᵗ)]:
    the [3S/n] bound proved in Section 3.4.2. *)

val minimize_on_histogram :
  ?pool:Pmw_parallel.Pool.t -> ?iters:int -> t -> Pmw_data.Histogram.t -> Pmw_convex.Solve.report
(** [argmin_θ ℓ(θ; D̂)] by the non-private solver (default 400 iterations).
    The O(|X|) objective sweeps run chunked on [pool] (default: the shared
    pool); results are bit-identical for any pool size. *)

val minimize_on_dataset :
  ?pool:Pmw_parallel.Pool.t -> ?iters:int -> t -> Pmw_data.Dataset.t -> Pmw_convex.Solve.report

val loss_on_histogram :
  ?pool:Pmw_parallel.Pool.t -> t -> Pmw_data.Histogram.t -> Pmw_linalg.Vec.t -> float
(** [ℓ(θ; D̂) = Σ_x D̂(x)·ℓ(θ; x)]. *)

val loss_on_dataset :
  ?pool:Pmw_parallel.Pool.t -> t -> Pmw_data.Dataset.t -> Pmw_linalg.Vec.t -> float

val err_answer :
  ?pool:Pmw_parallel.Pool.t -> ?iters:int -> t -> Pmw_data.Dataset.t -> Pmw_linalg.Vec.t -> float
(** Definition 2.2: [err_ℓ(D, θ̂) = ℓ(θ̂; D) − min_θ ℓ(θ; D)] (clamped at 0,
    since the solver's reference minimum is itself approximate). *)

val err_hypothesis :
  ?pool:Pmw_parallel.Pool.t -> ?iters:int -> t -> Pmw_data.Dataset.t -> Pmw_data.Histogram.t -> float
(** Definition 2.3: [err_ℓ(D, D̂) = ℓ_D(argmin ℓ_D̂) − min_θ ℓ_D(θ)] — the
    quantity the sparse-vector algorithm thresholds in Figure 3. *)

val update_vector : t -> theta_oracle:Pmw_linalg.Vec.t -> theta_hyp:Pmw_linalg.Vec.t -> int -> Pmw_data.Point.t -> float
(** The dual-certificate linear query of Section 1.2 / Figure 3:
    [uᵗ(x) = ⟨θᵗ − θ̂ᵗ, ∇ℓ_x(θ̂ᵗ)⟩], where [θᵗ] is the oracle's (private)
    near-minimizer on [D] and [θ̂ᵗ] the exact minimizer on [D̂ᵗ]. Values lie
    in [\[-S, S\]]. *)

val update_fn :
  t ->
  theta_oracle:Pmw_linalg.Vec.t ->
  theta_hyp:Pmw_linalg.Vec.t ->
  int -> Pmw_data.Point.t -> float
(** [update_fn t ~theta_oracle ~theta_hyp] is pointwise equal to
    [update_vector t ~theta_oracle ~theta_hyp], but hoists the direction
    [θᵗ − θ̂ᵗ] out of the per-element loop and, for GLM losses, contracts the
    gradient against the direction without allocating it — use it when the
    closure is swept over the whole universe (the MW update). The returned
    closure is pure and safe to call from worker domains. *)
