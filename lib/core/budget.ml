module Params = Pmw_dp.Params
module Telemetry = Pmw_telemetry.Telemetry

(* All reads and grants go through [lock]: the pot is shared between the
   mechanism stack (one serializer thread) and observers like the query
   server's admission controller or a stats endpoint, and a check-and-debit
   that is not atomic can double-spend — two racing [request]s both see the
   same remainder and both grant (the bug the server-layer regression test
   pins down). The mutex is uncontended in single-threaded use (a few ns per
   grant, far below one Params.compose_basic). The lock is NOT re-entrant:
   the [*_locked] internals never call the public entry points. *)
type t = {
  total : Params.t;
  mutable granted : Params.t list;
  telemetry : Telemetry.t;
  label : string;
  lock : Mutex.t;
}

let create ?telemetry ?(label = "budget") total =
  let telemetry = match telemetry with Some t -> t | None -> Telemetry.null () in
  { total; granted = []; telemetry; label; lock = Mutex.create () }

let total t = t.total

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let spent_locked t = Params.compose_basic (List.rev t.granted)

let remaining_locked t =
  let s = spent_locked t in
  Params.create
    ~eps:(Float.max 0. (t.total.Params.eps -. s.Params.eps))
    ~delta:(Float.max 0. (t.total.Params.delta -. s.Params.delta))

let spent t = locked t (fun () -> spent_locked t)
let remaining t = locked t (fun () -> remaining_locked t)

(* One relative slack, applied to both coordinates: round-off from summing
   granted slices scales with the total, so an absolute epsilon-slack that is
   right for eps = 1 is wrong for eps = 100 (and hopeless for delta = 1e-12).
   The same scaled slack is used by [request] and [exhausted], so the two can
   never disagree about whether a final sliver is grantable. *)
let slack = 1e-12

let eps_slack t = slack *. Float.max t.total.Params.eps 1.
let delta_slack t = slack *. Float.max t.total.Params.delta Float.min_float

let refuse t ~mechanism reason =
  Telemetry.incr t.telemetry "budget_refusals";
  Telemetry.mark t.telemetry "budget.refused"
    ~fields:[ ("ledger", Telemetry.Str t.label); ("mechanism", Telemetry.Str mechanism) ];
  Error reason

let grant_locked t ~mechanism slice =
  t.granted <- slice :: t.granted;
  Telemetry.debit t.telemetry ~ledger:t.label ~mechanism ~eps:slice.Params.eps
    ~delta:slice.Params.delta;
  slice

(* The fit test shared by [request] (which debits on Ok) and [fits] (which
   never debits); must run under the lock so the remainder it judged against
   cannot move before a paired grant. *)
let fits_locked t slice =
  let r = remaining_locked t in
  if slice.Params.eps > r.Params.eps +. eps_slack t then
    Error
      (Printf.sprintf "budget exhausted: requested eps=%g but only %g remains" slice.Params.eps
         r.Params.eps)
  else if slice.Params.delta > r.Params.delta +. delta_slack t then
    Error
      (Printf.sprintf "budget exhausted: requested delta=%g but only %g remains"
         slice.Params.delta r.Params.delta)
  else Ok ()

let fits t slice = locked t (fun () -> fits_locked t slice)

let request ?(mechanism = "slice") t slice =
  let outcome =
    locked t (fun () ->
        match fits_locked t slice with
        | Ok () -> Ok (grant_locked t ~mechanism slice)
        | Error why -> Error why)
  in
  (* Telemetry refusal events are emitted outside the lock: the instance is
     only ever touched from the serializer thread anyway, and keeping sink
     I/O out of the critical section keeps the lock hold time bounded. *)
  match outcome with Ok s -> Ok s | Error why -> refuse t ~mechanism why

let request_fraction ?mechanism t fraction =
  if fraction <= 0. || fraction > 1. then
    invalid_arg "Budget.request_fraction: fraction must lie in (0, 1]";
  request ?mechanism t
    (Params.create
       ~eps:(t.total.Params.eps *. fraction)
       ~delta:(t.total.Params.delta *. fraction))

let request_all ?(mechanism = "drain") t =
  locked t (fun () ->
      let r = remaining_locked t in
      grant_locked t ~mechanism r)

let exhausted ?tolerance t =
  let eps_tol, delta_tol =
    match tolerance with
    | None -> (eps_slack t, delta_slack t)
    | Some tol -> (tol *. Float.max t.total.Params.eps 1., tol *. Float.max t.total.Params.delta Float.min_float)
  in
  let r = remaining t in
  r.Params.eps <= eps_tol || (t.total.Params.delta > 0. && r.Params.delta <= delta_tol)

let history t = locked t (fun () -> List.rev t.granted)

(* Parallel composition: the pots belong to mechanisms running over DISJOINT
   record blocks, so the fleet's privacy loss against any one record is the
   loss of the single shard holding it — the coordinate-wise max, not the
   sum. Each [spent] read is individually atomic; the fold is a consistent
   fleet-level snapshot as long as callers read after the debits they care
   about (the router reads it when composing an answer, i.e. after every
   contributing shard has journalled its debit). *)
let spent_parallel pots =
  List.fold_left
    (fun acc pot ->
      let s = spent pot in
      Params.create
        ~eps:(Float.max acc.Params.eps s.Params.eps)
        ~delta:(Float.max acc.Params.delta s.Params.delta))
    (Params.create ~eps:0. ~delta:0.)
    pots
