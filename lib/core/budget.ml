module Params = Pmw_dp.Params
module Telemetry = Pmw_telemetry.Telemetry

type t = {
  total : Params.t;
  mutable granted : Params.t list;
  telemetry : Telemetry.t;
  label : string;
}

let create ?telemetry ?(label = "budget") total =
  let telemetry = match telemetry with Some t -> t | None -> Telemetry.null () in
  { total; granted = []; telemetry; label }

let total t = t.total

let spent t = Params.compose_basic (List.rev t.granted)

let remaining t =
  let s = spent t in
  Params.create
    ~eps:(Float.max 0. (t.total.Params.eps -. s.Params.eps))
    ~delta:(Float.max 0. (t.total.Params.delta -. s.Params.delta))

(* One relative slack, applied to both coordinates: round-off from summing
   granted slices scales with the total, so an absolute epsilon-slack that is
   right for eps = 1 is wrong for eps = 100 (and hopeless for delta = 1e-12).
   The same scaled slack is used by [request] and [exhausted], so the two can
   never disagree about whether a final sliver is grantable. *)
let slack = 1e-12

let eps_slack t = slack *. Float.max t.total.Params.eps 1.
let delta_slack t = slack *. Float.max t.total.Params.delta Float.min_float

let refuse t ~mechanism reason =
  Telemetry.incr t.telemetry "budget_refusals";
  Telemetry.mark t.telemetry "budget.refused"
    ~fields:[ ("ledger", Telemetry.Str t.label); ("mechanism", Telemetry.Str mechanism) ];
  Error reason

let grant t ~mechanism slice =
  t.granted <- slice :: t.granted;
  Telemetry.debit t.telemetry ~ledger:t.label ~mechanism ~eps:slice.Params.eps
    ~delta:slice.Params.delta;
  slice

let request ?(mechanism = "slice") t slice =
  let r = remaining t in
  if slice.Params.eps > r.Params.eps +. eps_slack t then
    refuse t ~mechanism
      (Printf.sprintf "budget exhausted: requested eps=%g but only %g remains" slice.Params.eps
         r.Params.eps)
  else if slice.Params.delta > r.Params.delta +. delta_slack t then
    refuse t ~mechanism
      (Printf.sprintf "budget exhausted: requested delta=%g but only %g remains"
         slice.Params.delta r.Params.delta)
  else Ok (grant t ~mechanism slice)

let request_fraction ?mechanism t fraction =
  if fraction <= 0. || fraction > 1. then
    invalid_arg "Budget.request_fraction: fraction must lie in (0, 1]";
  request ?mechanism t
    (Params.create
       ~eps:(t.total.Params.eps *. fraction)
       ~delta:(t.total.Params.delta *. fraction))

let request_all ?(mechanism = "drain") t =
  let r = remaining t in
  grant t ~mechanism r

let exhausted ?tolerance t =
  let eps_tol, delta_tol =
    match tolerance with
    | None -> (eps_slack t, delta_slack t)
    | Some tol -> (tol *. Float.max t.total.Params.eps 1., tol *. Float.max t.total.Params.delta Float.min_float)
  in
  let r = remaining t in
  r.Params.eps <= eps_tol || (t.total.Params.delta > 0. && r.Params.delta <= delta_tol)

let history t = List.rev t.granted
