module Universe = Pmw_data.Universe
module Histogram = Pmw_data.Histogram
module Params = Pmw_dp.Params
module Sv = Pmw_dp.Sparse_vector
module Mechanisms = Pmw_dp.Mechanisms
module Telemetry = Pmw_telemetry.Telemetry

type query = {
  name : string;
  value : int -> Pmw_data.Point.t -> float;
  mutable table : (string * float array) option;
}

let counting_query ~name p = { name; value = (fun _ x -> if p x then 1. else 0.); table = None }

(* Per-query decoded-point memo: the query's values over the whole universe,
   tabulated once on first evaluation (keyed by universe name, so a query
   reused across universes re-tabulates). Repeated evaluations — every MWEM
   round scores every query; every [answer] call evaluates the query on two
   histograms — become a single deterministic dot product. *)
let values q universe =
  match q.table with
  | Some (uname, v) when String.equal uname (Universe.name universe) && Array.length v = Universe.size universe ->
      v
  | Some _ | None ->
      let pts = Universe.points universe in
      let v = Array.init (Array.length pts) (fun i -> q.value i pts.(i)) in
      q.table <- Some (Universe.name universe, v);
      v

let evaluate ?pool q hist = Histogram.dot ?pool hist (values q (Histogram.universe hist))

type t = {
  pool : Pmw_parallel.Pool.t;
  dataset : Pmw_data.Dataset.t;
  true_hist : Histogram.t;
  mw : Pmw_mw.Mw.t;
  sv : Sv.t;
  answer_eps : float;
  n : int;
  rng : Pmw_rng.Rng.t;
  telemetry : Telemetry.t;
  mutable answered : int;
}

let create ?pool ?telemetry ~universe ~dataset ~privacy ~alpha ~beta ~k ?t_max ~rng () =
  let pool = match pool with Some p -> p | None -> Pmw_parallel.Pool.default () in
  let telemetry = match telemetry with Some t -> t | None -> Telemetry.null () in
  ignore beta;
  if alpha <= 0. || alpha >= 1. then invalid_arg "Linear_pmw.create: alpha must lie in (0,1)";
  let t_max =
    match t_max with
    | Some t ->
        if t <= 0 then invalid_arg "Linear_pmw.create: t_max must be positive";
        t
    | None -> Int.max 1 (int_of_float (ceil (16. *. Universe.log_size universe /. (alpha *. alpha))))
  in
  let n = Pmw_data.Dataset.size dataset in
  let half = Params.create ~eps:(privacy.Params.eps /. 2.) ~delta:(privacy.Params.delta /. 2.) in
  let sv =
    Sv.create ~telemetry ~t_max ~k ~threshold:alpha ~privacy:half
      ~sensitivity:(1. /. float_of_int n)
      ~rng:(Pmw_rng.Rng.split rng) ()
  in
  let answer_eps = (Params.split_advanced ~count:t_max half).Params.eps in
  let eta = alpha /. 2. in
  {
    pool;
    dataset;
    true_hist = Pmw_data.Dataset.histogram dataset;
    mw = Pmw_mw.Mw.create ~pool ~universe ~eta ();
    sv;
    answer_eps;
    n;
    rng;
    telemetry;
    answered = 0;
  }

let hypothesis t = Pmw_mw.Mw.distribution t.mw
let updates t = Pmw_mw.Mw.updates t.mw
let queries_answered t = t.answered
let halted t = Sv.halted t.sv

let answer t q =
  if halted t then None
  else begin
    ignore (Telemetry.next_round t.telemetry : int);
    let dhat = hypothesis t in
    let a_hyp = evaluate ~pool:t.pool q dhat in
    let a_true = evaluate ~pool:t.pool q t.true_hist in
    t.answered <- t.answered + 1;
    match Sv.query t.sv (Float.abs (a_hyp -. a_true)) with
    | None -> None
    | Some Sv.Bottom -> Some a_hyp
    | Some Sv.Top ->
        let noisy =
          Mechanisms.laplace ~eps:t.answer_eps ~sensitivity:(1. /. float_of_int t.n) a_true t.rng
        in
        Telemetry.debit t.telemetry ~ledger:"linear" ~mechanism:"laplace-answer"
          ~eps:t.answer_eps ~delta:0.;
        (* Push hypothesis mass toward agreement with the noisy answer: if the
           hypothesis overestimates, elements with large q(x) lose weight. *)
        let sign = if a_hyp > noisy then 1. else -1. in
        let tab = values q (Pmw_mw.Mw.universe t.mw) in
        Pmw_mw.Mw.update t.mw ~loss:(fun i -> sign *. tab.(i));
        Telemetry.incr t.telemetry "mw_updates";
        Some noisy
  end
