(** A shared privacy-budget manager for sessions that run several mechanisms
    against the same dataset.

    In practice one dataset serves many analyses (the paper's opening
    motivation); each mechanism must draw its [(ε, δ)] from a common pot or
    the guarantees silently compose past the intended total. A [Budget.t]
    holds the pot, hands out slices, refuses when exhausted, and keeps the
    ledger — so "are we still within (1, 1e-6)?" has one authoritative
    answer.

    {b Soundness assumption:} the ledger totals slices by BASIC composition
    — the granted [ε]s and [δ]s are simply summed. This is always sound
    (never under-reports the true privacy loss) but deliberately
    conservative: slices here are typically few and heterogeneous, and the
    fine-grained (advanced / zCDP) composition happens {e inside} each
    mechanism over its own sub-events. Consequently [spent <= total] under
    basic composition implies the whole session is [(total.eps,
    total.delta)]-DP; a future accountant could grant more slices from the
    same pot, never fewer. Failed or retried mechanism invocations must
    keep their slices debited (a failed private computation still consumed
    its budget) — the session layer's retry chain is built on this rule.

    {b Thread-safety:} every entry point is atomic behind an internal lock,
    so a pot shared between the mechanism's serializer thread and observers
    (the query server's admission controller, a stats endpoint) can never
    double-spend: the fit check and the debit of a {!request} happen under
    one lock acquisition, and {!request_all} drains what {e actually}
    remains at drain time. Telemetry mirroring still must come from a single
    thread — only the ledger arithmetic is locked. *)

type t

val create : ?telemetry:Pmw_telemetry.Telemetry.t -> ?label:string -> Pmw_dp.Params.t -> t
(** A fresh pot. [telemetry] mirrors every grant into the telemetry
    privacy-ledger timeline under the ledger tag [label] (default
    ["budget"]), tagged with the requesting mechanism, and counts refusals
    under [budget_refusals] — so the session's cumulative spend curve can be
    replayed from a trace alone. *)

val total : t -> Pmw_dp.Params.t
val spent : t -> Pmw_dp.Params.t
val remaining : t -> Pmw_dp.Params.t

val request : ?mechanism:string -> t -> Pmw_dp.Params.t -> (Pmw_dp.Params.t, string) result
(** [request t slice] debits [slice] if it fits in the remainder, returning
    it for the caller to hand to a mechanism; [Error] (with a human-readable
    reason) otherwise — nothing is debited on refusal. Fit is judged with a
    relative round-off slack of [1e-12·total] applied consistently to both
    [ε] and [δ], so a remainder produced by float summation is always
    re-grantable. [mechanism] (default ["slice"]) tags the debit in the
    telemetry timeline. *)

val fits : t -> Pmw_dp.Params.t -> (unit, string) result
(** Read-only admission check: would [request t slice] succeed right now?
    Judged with exactly {!request}'s slack rules but debits nothing and
    emits nothing — the query server's admission controller polls this
    before enqueueing work. A positive answer is only a hint under
    concurrency; the authoritative check-and-debit is the atomic {!request}
    on the serializer thread. *)

val request_fraction : ?mechanism:string -> t -> float -> (Pmw_dp.Params.t, string) result
(** Debit the given fraction of the ORIGINAL total (e.g. [0.5] twice
    exhausts the pot). @raise Invalid_argument unless the fraction lies in
    (0, 1]. *)

val request_all : ?mechanism:string -> t -> Pmw_dp.Params.t
(** Drain the pot: debit and return whatever remains (possibly zero), in one
    atomic step — no race between reading [remaining] and requesting it.
    The drain is recorded in the history like any grant. This is the
    conservative response to a mechanism that misreports its spend: charge
    everything left, so the ledger can never under-state the true loss. *)

val exhausted : ?tolerance:float -> t -> bool
(** No meaningful budget remains: [ε] is gone, or (for an approximate-DP
    pot) [δ] is gone. The default tolerance is the same relative [1e-12]
    slack {!request} uses, applied consistently to both coordinates — so
    [exhausted t] exactly when no request beyond round-off noise can
    succeed. Pass [tolerance] to widen both (relative) slacks together. *)

val history : t -> Pmw_dp.Params.t list
(** Granted slices, oldest first (drains included). *)

val spent_parallel : t list -> Pmw_dp.Params.t
(** Fleet-level accounted spend for pots over {e disjoint} record blocks:
    the coordinate-wise max of the pots' {!spent} values — parallel
    composition of differential privacy. Any single record lives in exactly
    one block, so the fleet's loss against it is that one shard's loss; the
    max is sound (and tight) where summing would be needlessly loose. Each
    pot read is atomic; [spent_parallel []] is [(0, 0)]. *)
