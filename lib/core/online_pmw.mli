(** Online Private Multiplicative Weights for CM queries — the paper's main
    algorithm (Figure 3).

    The mechanism holds the sensitive dataset [D], a public MW hypothesis
    [D̂ᵗ], a sparse-vector instance over the error queries
    [q_j(D) = err_{ℓ_j}(D, D̂ᵗ)] (each [3S/n]-sensitive, Section 3.4.2), and a
    single-query oracle [A']. Each incoming query [ℓ_j] is processed as:

    + compute the public minimizer [θ̂ = argmin_θ ℓ_j(θ; D̂ᵗ)];
    + feed [err_{ℓ_j}(D, D̂ᵗ)] to sparse vector;
    + on ⊥: answer [θ̂] (the hypothesis was already accurate);
    + on ⊤: call [A'(D, ℓ_j)] at [(ε₀, δ₀)] to get [θᵗ], answer [θᵗ], and
      perform the MW update with the dual-certificate vector
      [uᵗ(x) = ⟨θᵗ − θ̂, ∇ℓ_x(θ̂)⟩] (clamped to [±S]).

    Privacy (Theorem 3.9): the SV stream is [(ε/2, δ/2)]-DP and the at most
    [T] oracle calls compose (Theorem 3.10) to [(ε/2, δ/2)]-DP, so the whole
    interaction is [(ε, δ)]-DP. Accuracy is Theorem 3.8. *)

type source =
  | From_hypothesis  (** sparse vector said ⊥ — answered from [D̂ᵗ] *)
  | From_oracle  (** sparse vector said ⊤ — answered by [A'], update done *)

type outcome = {
  theta : Pmw_linalg.Vec.t;
  source : source;
  update_index : int;  (** the paper's [t] after processing this query *)
}

(** Why an answer is served from the frozen hypothesis instead of the live
    protocol. The first two are emitted by this module once the SV instance
    halts; the last two are emitted by the session layer
    ([Pmw_session.Session]) when its oracle chain or privacy ledger gives
    out — they live here so the whole stack shares one verdict type. *)
type degradation =
  | Update_budget_exhausted  (** all [T] MW updates spent *)
  | Query_limit_reached  (** all [k] SV stream slots consumed *)
  | Oracle_unavailable of string  (** every fallback stage failed *)
  | Privacy_budget_exhausted of string  (** the session ledger refused to fund an attempt *)

(** Why a query got no answer at all. Refusals leave the ledger consistent:
    whatever was debited before the failure stays debited, and nothing else
    is, so no refusal path can under-report privacy spend. *)
type refusal =
  | Scale_exceeded of { query_scale : float; limit : float }
      (** the query's scale bound would break the SV sensitivity guarantee *)
  | Quarantined of string
      (** the numeric quarantine caught a NaN/Inf or a divergent solve at
          one of the answer path's boundaries; the hypothesis is untouched *)
  | Oracle_failed of string  (** the oracle raised a typed answer-time failure *)
  | Oracle_budget_denied of string
      (** a ledger-aware chain aborted before its first unfunded attempt *)

type verdict =
  | Answered of outcome  (** the live protocol of Figure 3 *)
  | Degraded of outcome * degradation
      (** an answer from the frozen hypothesis — pure post-processing of
          already-released information, zero additional privacy cost *)
  | Refused of refusal

val degradation_to_string : degradation -> string
val refusal_to_string : refusal -> string

type t

val create :
  ?pool:Pmw_parallel.Pool.t ->
  ?telemetry:Pmw_telemetry.Telemetry.t ->
  config:Config.t ->
  dataset:Pmw_data.Dataset.t ->
  oracle:Pmw_erm.Oracle.t ->
  ?prior:Pmw_data.Histogram.t ->
  rng:Pmw_rng.Rng.t ->
  unit ->
  t
(** [pool] (default: the shared {!Pmw_parallel.Pool.default}) runs every
    O(|X|) sweep of the mechanism — MW updates, hypothesis extraction and
    the solver's objective evaluations — chunked across its domains. Results
    are bit-identical whatever the pool size, so checkpoints transfer
    between differently-sized pools.

    [telemetry] (default: a no-op instance) receives the mechanism's whole
    event stream: a ["query"] span per {!answer} call (with
    ["solve.hypothesis"], ["solve.reference"], ["oracle.call"] and
    ["mw.update"] sub-spans), the [mw_updates] /
    [answered_from_hypothesis] / [answered_from_oracle] counters, a
    [q_value] observation per live round, the SV instance's events, and a
    privacy debit per oracle call under the ["oracle"] ledger. Round
    numbering advances once per {!answer} call.

    [prior] warm-starts the hypothesis from a PUBLIC distribution (e.g. a
    previous run's released hypothesis, or public census margins) instead of
    uniform — pure post-processing, no privacy cost, and a good prior means
    fewer updates spent. The convergence guarantee degrades from [log |X|]
    to [max_x log(1/prior(x))], so priors with zero mass are rejected.
    @raise Invalid_argument if the prior is over a different universe or has
    empty support somewhere. *)

val answer : t -> Cm_query.t -> verdict
(** Process one query. While the SV instance is live this is Figure 3
    verbatim; once it halts the mechanism answers [Degraded] from the frozen
    hypothesis instead of going dark. Numeric faults (NaN/Inf hypothesis
    minimizer, error value, oracle answer, or MW update vector; oracle
    answers outside the domain) and typed oracle failures come back as
    [Refused] instead of raising — with the ledger already debited for any
    attempt that touched the data (each ⊤ costs its [(ε₀, δ₀)] whether or
    not the oracle succeeds, and a burned ⊤ stays burned). *)

val answer_opt : t -> Cm_query.t -> outcome option
(** Legacy shape: [Some] for [Answered] only — degraded and refused queries
    map to [None], matching the pre-verdict halting behaviour. *)

val answer_all : t -> Cm_query.t list -> verdict list
(** Convenience fold of {!answer}. *)

(** {1 Batched evaluation}

    A batch is a short-lived evaluation context that amortizes the O(|X|)
    work behind consecutive {!batch_answer} calls: the hypothesis extraction
    (one softmax sweep of [D̂ᵗ]), the public minimizer [θ̂] and the
    error-query value [err_ℓ(D, D̂ᵗ)] are each computed once per (query,
    hypothesis version) and reused — the query server's broker evaluates a
    whole batch of pending analyst requests against one hypothesis pass.

    Reuse is {e sound by construction}: every cached value is a
    deterministic pure function of its key (the pool makes recomputation
    bit-identical), so a batch produces bit-for-bit the verdicts of the same
    queries fed to {!answer} one at a time, in the same order — including
    when a ⊤ mid-batch updates the hypothesis (entries are versioned and
    invalidated). Each sparse-vector test still consumes its own stream
    slot and draws its own noise; only the deterministic solves are shared.
    Reuse requires physically-equal query values (e.g. resolved from one
    registry); name-equal but distinct queries are recomputed, never
    aliased. A [solve_memo_hits] counter tracks sharing. *)

type batch

val batch : t -> batch
(** A fresh context. Keep it for one broker batch; drop it after (entries
    pin the histograms/vectors they cache). *)

val batch_answer : batch -> Cm_query.t -> verdict
(** Exactly {!answer}, sharing solves with earlier calls on this batch. *)

val batch_mechanism : batch -> t

val as_answerer : t -> Cm_query.t -> Pmw_linalg.Vec.t option
(** The mechanism as a bare answering function — the shape
    {!Analyst.run}'s [answer] callback expects. [None] once degraded or
    refused (legacy halting semantics). *)

val hypothesis : t -> Pmw_data.Histogram.t
(** The current public hypothesis [D̂ᵗ] — safe to release (it is a
    post-processing of the private answers); this is the synthetic-data
    output mentioned in Section 4.3. *)

val updates : t -> int
val queries_answered : t -> int
val halted : t -> bool
val config : t -> Config.t

val telemetry : t -> Pmw_telemetry.Telemetry.t
(** The instance handed to {!create} (or the shared no-op). *)

val oracle_accountant : t -> Pmw_dp.Accountant.t
(** Ledger of the oracle calls made so far (the SV budget is accounted
    separately, inside {!Pmw_dp.Sparse_vector}). Conservative under
    failure: each ⊤ is debited before the oracle runs, so failed calls are
    charged too. *)

(** {1 Checkpoint support}

    The full mutable state of a running mechanism, exposed so the session
    layer ([Pmw_session.Checkpoint]) can serialize it and a killed process
    can resume without re-spending ε. The dataset, oracle and config are
    NOT part of a snapshot — the caller re-supplies them (and the
    checkpoint layer fingerprints the config to catch mismatches). *)

type snapshot = {
  snap_answered : int;
  snap_mw_log_weights : float array;
  snap_mw_updates : int;
  snap_sv : Pmw_dp.Sparse_vector.snapshot;
  snap_rng : int64 array;  (** the oracle-call generator *)
  snap_oracle_events : Pmw_dp.Params.t list;
  snap_oracle_rho : float;
}

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Overwrite the mutable state of [t] (freshly created with the same
    config, dataset and universe) with a snapshot; the mechanism then
    continues bit-for-bit as the checkpointed one would have.
    @raise Invalid_argument on dimension/range mismatches. *)
