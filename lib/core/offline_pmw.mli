(** The offline variant of private multiplicative weights for CM queries
    (Section 1.2's sketch, after GHRU11/GRU12/HLM12).

    All [k] loss functions are given up front. Each of at most [t_max]
    rounds privately selects the query on which the current hypothesis is
    most inaccurate (exponential mechanism over the [3S/n]-sensitive error
    scores), stops early when a noisy estimate of that maximal error is
    already below [3α/4], and otherwise performs the same dual-certificate
    MW update as the online algorithm. Every query is finally answered from
    the last hypothesis.

    The per-round budget is the advanced-composition split of the total
    across [t_max] rounds, divided between the exponential mechanism, the
    stopping test, and the oracle call. *)

type report = {
  answers : Pmw_linalg.Vec.t array;  (** one [θ̂ⱼ] per input query *)
  hypothesis : Pmw_data.Histogram.t;  (** the final public [D̂] (synthetic data) *)
  rounds_used : int;
  selected : int list;  (** indices chosen by the exponential mechanism, in order *)
}

type selector = Exponential | Permute_and_flip
(** The private-selection primitive for the worst-query step. Both are pure
    ε-DP at the same sensitivity; permute-and-flip (McKenna–Sheldon 2020)
    stochastically dominates the exponential mechanism in utility. *)

val run :
  ?pool:Pmw_parallel.Pool.t ->
  ?telemetry:Pmw_telemetry.Telemetry.t ->
  config:Config.t ->
  dataset:Pmw_data.Dataset.t ->
  oracle:Pmw_erm.Oracle.t ->
  queries:Cm_query.t array ->
  ?selector:selector ->
  rng:Pmw_rng.Rng.t ->
  unit ->
  report
(** Default [selector] is [Exponential] (the paper's choice).
    @raise Invalid_argument on an empty query array or a query whose scale
    exceeds [config.scale]. *)
