(** MWEM — the Multiplicative Weights Exponential Mechanism of Hardt, Ligett
    & McSherry (NIPS 2012), the "simple and practical" offline linear-query
    mechanism the paper singles out (its advantages "are preserved by our
    extension").

    Given a workload of linear queries up front, each of [rounds] iterations
    (i) selects the query the current hypothesis answers worst via the
    exponential mechanism, (ii) measures it with Laplace noise, and (iii)
    applies the HLM12 multiplicative update
    [D̂(x) ∝ D̂(x) · exp(q(x)·(measurement − q(D̂))/2)]. The per-round budget
    is [ε/(2·rounds)] for selection and the same for measurement, so the
    whole run is [ε]-DP (pure — MWEM needs no δ). Final answers: every
    workload query evaluated on the last hypothesis (optionally averaged
    over the iterates, which HLM12 report is more stable — both exposed). *)

type report = {
  answers : float array;  (** one answer per workload query, from [final] *)
  final : Pmw_data.Histogram.t;
  average : Pmw_data.Histogram.t;  (** mean of the per-round hypotheses *)
  selected : int list;  (** exponential-mechanism choices, in round order *)
}

val run :
  ?pool:Pmw_parallel.Pool.t ->
  ?telemetry:Pmw_telemetry.Telemetry.t ->
  dataset:Pmw_data.Dataset.t ->
  queries:Linear_pmw.query array ->
  eps:float ->
  rounds:int ->
  ?answer_from:[ `Final | `Average ] ->
  ?replays:int ->
  rng:Pmw_rng.Rng.t ->
  unit ->
  report
(** [replays] (default 10) is HLM12's practical improvement: every round,
    iterate the multiplicative update that many times over all measurements
    taken so far — pure post-processing of already-noisy values, so it is
    privacy-free and markedly speeds convergence.
    @raise Invalid_argument on an empty workload, non-positive [rounds],
    [eps] or [replays]. Default [answer_from] is [`Final] (the better choice when replays are on; [`Average] is the HLM12 paper default). *)
