module Vec = Pmw_linalg.Vec
module Universe = Pmw_data.Universe
module Sv = Pmw_dp.Sparse_vector
module Solve = Pmw_convex.Solve
module Telemetry = Pmw_telemetry.Telemetry

let log_src = Logs.Src.create "pmw.online" ~doc:"Online PMW mechanism events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type source = From_hypothesis | From_oracle

type outcome = { theta : Vec.t; source : source; update_index : int }

type degradation =
  | Update_budget_exhausted
  | Query_limit_reached
  | Oracle_unavailable of string
  | Privacy_budget_exhausted of string

type refusal =
  | Scale_exceeded of { query_scale : float; limit : float }
  | Quarantined of string
  | Oracle_failed of string
  | Oracle_budget_denied of string

type verdict = Answered of outcome | Degraded of outcome * degradation | Refused of refusal

let degradation_to_string = function
  | Update_budget_exhausted -> "update budget T exhausted"
  | Query_limit_reached -> "query limit k reached"
  | Oracle_unavailable r -> Printf.sprintf "oracle unavailable (%s)" r
  | Privacy_budget_exhausted r -> Printf.sprintf "privacy budget exhausted (%s)" r

let refusal_to_string = function
  | Scale_exceeded { query_scale; limit } ->
      Printf.sprintf "query scale %g exceeds configured S=%g" query_scale limit
  | Quarantined r -> Printf.sprintf "numeric quarantine: %s" r
  | Oracle_failed r -> Printf.sprintf "oracle failed: %s" r
  | Oracle_budget_denied r -> Printf.sprintf "oracle budget denied: %s" r

type t = {
  config : Config.t;
  pool : Pmw_parallel.Pool.t;
  dataset : Pmw_data.Dataset.t;
  oracle : Pmw_erm.Oracle.t;
  rng : Pmw_rng.Rng.t;
  mw : Pmw_mw.Mw.t;
  sv : Sv.t;
  accountant : Pmw_dp.Accountant.t;
  telemetry : Telemetry.t;
  mutable answered : int;
  mutable stamp : int;
      (* bumped whenever the hypothesis may have changed (MW update,
         restore); versions every batch-memo entry *)
}

let create ?pool ?telemetry ~config ~dataset ~oracle ?prior ~rng () =
  let pool = match pool with Some p -> p | None -> Pmw_parallel.Pool.default () in
  let telemetry = match telemetry with Some t -> t | None -> Telemetry.null () in
  let universe = Pmw_data.Dataset.universe dataset in
  let n = Pmw_data.Dataset.size dataset in
  let sensitivity = 3. *. config.Config.scale /. float_of_int n in
  let sv =
    Sv.create ~telemetry ~t_max:config.Config.t_max ~k:config.Config.k
      ~threshold:config.Config.alpha ~privacy:config.Config.sv_privacy ~sensitivity
      ~rng:(Pmw_rng.Rng.split rng) ()
  in
  let mw =
    match prior with
    | None -> Pmw_mw.Mw.create ~pool ~universe ~eta:config.Config.eta ()
    | Some h ->
        if Pmw_data.Universe.name (Pmw_data.Histogram.universe h) <> Pmw_data.Universe.name universe
        then invalid_arg "Online_pmw.create: prior over a different universe";
        for i = 0 to Pmw_data.Universe.size universe - 1 do
          if Pmw_data.Histogram.get h i <= 0. then
            invalid_arg "Online_pmw.create: prior must have full support"
        done;
        Pmw_mw.Mw.of_histogram ~pool h ~eta:config.Config.eta
  in
  {
    config;
    pool;
    dataset;
    oracle;
    rng;
    mw;
    sv;
    accountant = Pmw_dp.Accountant.create ~telemetry ~label:"oracle" ();
    telemetry;
    answered = 0;
    stamp = 0;
  }

let hypothesis t = Pmw_mw.Mw.distribution t.mw
let telemetry t = t.telemetry
let updates t = Pmw_mw.Mw.updates t.mw
let queries_answered t = t.answered
let halted t = Sv.halted t.sv
let config t = t.config
let oracle_accountant t = t.accountant

let degradation_reason t =
  if Sv.tops_used t.sv >= t.config.Config.t_max then Update_budget_exhausted
  else Query_limit_reached

let all_finite v =
  let ok = ref true in
  Array.iter (fun x -> if not (Float.is_finite x) then ok := false) v;
  !ok

(* --- batch-scoped solve memoization ---

   Every value cached here is a deterministic pure function of its key: the
   hypothesis distribution and the public minimizer depend only on (query,
   MW state), the reference solve and the error-query value only on (query,
   dataset, MW state) — and the pool guarantees each is bit-identical on
   recomputation. Reusing a memo entry therefore NEVER changes an answer,
   only skips redundant O(|X|) sweeps; a batch of queries runs bit-for-bit
   like the same queries answered one by one.

   Entries are versioned by [t.stamp] (bumped on every MW update and on
   restore) so a ⊤ mid-batch invalidates everything computed against the
   old hypothesis. Keys are query names, but each entry carries the query
   value itself and is only reused on PHYSICAL equality — two distinct
   queries that happen to share a name fall back to recomputation instead
   of silently aliasing. *)

type memo = {
  mutable m_dhat : (int * Pmw_data.Histogram.t) option;  (** stamped D̂ᵗ *)
  m_theta : (string, int * Cm_query.t * Vec.t) Hashtbl.t;  (** stamped θ̂ *)
  m_ref : (string, Cm_query.t * float) Hashtbl.t;  (** min_θ ℓ(θ; D): stamp-free *)
  m_q : (string, int * Cm_query.t * float) Hashtbl.t;  (** stamped err_ℓ(D, D̂ᵗ) *)
}

type batch = { b_mech : t; b_memo : memo }

let batch t =
  {
    b_mech = t;
    b_memo =
      { m_dhat = None; m_theta = Hashtbl.create 8; m_ref = Hashtbl.create 8; m_q = Hashtbl.create 8 };
  }

let memo_dhat t memo =
  match memo.m_dhat with
  | Some (stamp, dhat) when stamp = t.stamp -> dhat
  | _ ->
      let dhat = hypothesis t in
      memo.m_dhat <- Some (t.stamp, dhat);
      dhat

let memo_theta_hyp t memo query dhat =
  match Hashtbl.find_opt memo.m_theta query.Cm_query.name with
  | Some (stamp, q, theta) when stamp = t.stamp && q == query ->
      Telemetry.incr t.telemetry "solve_memo_hits";
      theta
  | _ ->
      let theta =
        Telemetry.span t.telemetry "solve.hypothesis" (fun () ->
            (Cm_query.minimize_on_histogram ~pool:t.pool ~iters:t.config.Config.solver_iters query
               dhat)
              .Solve.theta)
      in
      Hashtbl.replace memo.m_theta query.Cm_query.name (t.stamp, query, theta);
      theta

let memo_reference_value t memo query =
  match Hashtbl.find_opt memo.m_ref query.Cm_query.name with
  | Some (q, v) when q == query ->
      Telemetry.incr t.telemetry "solve_memo_hits";
      v
  | _ ->
      let report =
        Telemetry.span t.telemetry "solve.reference" (fun () ->
            Cm_query.minimize_on_dataset ~pool:t.pool ~iters:t.config.Config.solver_iters query
              t.dataset)
      in
      Hashtbl.replace memo.m_ref query.Cm_query.name (query, report.Solve.value);
      report.Solve.value

let memo_q_value t memo query theta_hyp =
  match Hashtbl.find_opt memo.m_q query.Cm_query.name with
  | Some (stamp, q, v) when stamp = t.stamp && q == query -> v
  | _ ->
      let reference = memo_reference_value t memo query in
      let v =
        Float.max 0. (Cm_query.loss_on_dataset ~pool:t.pool query t.dataset theta_hyp -. reference)
      in
      Hashtbl.replace memo.m_q query.Cm_query.name (t.stamp, query, v);
      v

let answer_inner t memo query =
  if Cm_query.scale query > t.config.Config.scale +. 1e-9 then
    Refused (Scale_exceeded { query_scale = Cm_query.scale query; limit = t.config.Config.scale })
  else begin
    let iters = t.config.Config.solver_iters in
    let dhat = memo_dhat t memo in
    let theta_hyp = memo_theta_hyp t memo query dhat in
    if not (all_finite theta_hyp) then Refused (Quarantined "non-finite hypothesis minimizer")
    else if halted t then begin
      (* Graceful degradation: the SV budget is gone, but the frozen public
         hypothesis is pure post-processing — keep answering from it, at
         zero additional privacy cost, with an explicit flag. *)
      let reason = degradation_reason t in
      Log.info (fun m ->
          m "query (%s): degraded answer from frozen hypothesis (%s)" query.Cm_query.name
            (degradation_to_string reason));
      Degraded ({ theta = theta_hyp; source = From_hypothesis; update_index = updates t }, reason)
    end
    else begin
      (* q_j(D) = err_l(D, Dhat^t); the true-data solve behind it is an
         internal computation whose output only reaches the analyst through
         SV. *)
      let q_value = memo_q_value t memo query theta_hyp in
      if not (Float.is_finite q_value) then Refused (Quarantined "non-finite error-query value")
      else begin
        t.answered <- t.answered + 1;
        Telemetry.observe t.telemetry "q_value" q_value;
        match Sv.query t.sv q_value with
        | None ->
            (* Unreachable given the halt check above; treat as degradation. *)
            Degraded
              ( { theta = theta_hyp; source = From_hypothesis; update_index = updates t },
                degradation_reason t )
        | Some Sv.Bottom ->
            Log.debug (fun m ->
                m "query %d (%s): below threshold, answered from hypothesis" t.answered
                  query.Cm_query.name);
            Telemetry.incr t.telemetry "answered_from_hypothesis";
            Answered { theta = theta_hyp; source = From_hypothesis; update_index = updates t }
        | Some Sv.Top -> (
            let request =
              {
                Pmw_erm.Oracle.dataset = t.dataset;
                loss = query.Cm_query.loss;
                domain = query.Cm_query.domain;
                privacy = t.config.Config.oracle_privacy;
                rng = t.rng;
                solver_iters = iters;
              }
            in
            (* Debit the per-call (eps0, delta0) BEFORE the oracle runs: a
               failed or quarantined attempt has still touched the data, so
               its budget stays spent (the ledger never un-debits). *)
            Pmw_dp.Accountant.spend ~mechanism:"oracle-call" t.accountant
              t.config.Config.oracle_privacy;
            match
              Telemetry.span t.telemetry "oracle.call" (fun () ->
                  t.oracle.Pmw_erm.Oracle.run request)
            with
            | exception Pmw_erm.Oracle.Budget_denied why ->
                Log.warn (fun m ->
                    m "query %d (%s): oracle budget denied: %s" t.answered query.Cm_query.name why);
                Refused (Oracle_budget_denied why)
            | exception e when Pmw_erm.Oracle.failure_reason e <> None ->
                let why = Option.get (Pmw_erm.Oracle.failure_reason e) in
                Log.warn (fun m ->
                    m "query %d (%s): oracle failed: %s" t.answered query.Cm_query.name why);
                Refused (Oracle_failed why)
            | theta_oracle ->
                if not (all_finite theta_oracle) then
                  Refused (Quarantined "non-finite oracle answer")
                else if
                  not
                    (Pmw_convex.Domain.contains
                       ~tol:(1e-6 *. Float.max 1. (Pmw_convex.Domain.diameter query.Cm_query.domain))
                       query.Cm_query.domain theta_oracle)
                then Refused (Quarantined "oracle answer diverged outside the domain")
                else begin
                  let s = t.config.Config.scale in
                  let universe = Pmw_mw.Mw.universe t.mw in
                  let update = Cm_query.update_fn query ~theta_oracle ~theta_hyp in
                  let u i =
                    let x = Universe.get universe i in
                    Pmw_linalg.Special.clamp ~lo:(-.s) ~hi:s (update i x)
                  in
                  match
                    Telemetry.span t.telemetry "mw.update" (fun () ->
                        Pmw_mw.Mw.update_checked t.mw ~loss:u)
                  with
                  | Error why -> Refused (Quarantined why)
                  | Ok () ->
                      t.stamp <- t.stamp + 1;
                      Log.debug (fun m ->
                          m "query %d (%s): above threshold, oracle answered, MW update %d/%d"
                            t.answered query.Cm_query.name (updates t) t.config.Config.t_max);
                      Telemetry.incr t.telemetry "mw_updates";
                      Telemetry.incr t.telemetry "answered_from_oracle";
                      Answered { theta = theta_oracle; source = From_oracle; update_index = updates t }
                end)
      end
    end
  end

let batch_answer b query =
  let t = b.b_mech in
  ignore (Telemetry.next_round t.telemetry : int);
  Telemetry.span t.telemetry "query"
    ~fields:[ ("query", Telemetry.Str query.Cm_query.name) ]
    (fun () -> answer_inner t b.b_memo query)

let batch_mechanism b = b.b_mech

(* A fresh single-use batch per call: no sharing, so the sequential path
   computes exactly what it always did. *)
let answer t query = batch_answer (batch t) query

let answer_opt t query = match answer t query with Answered o -> Some o | _ -> None

let answer_all t queries = List.map (answer t) queries

let as_answerer t query = Option.map (fun o -> o.theta) (answer_opt t query)

(* --- checkpointing --- *)

type snapshot = {
  snap_answered : int;
  snap_mw_log_weights : float array;
  snap_mw_updates : int;
  snap_sv : Sv.snapshot;
  snap_rng : int64 array;
  snap_oracle_events : Pmw_dp.Params.t list;
  snap_oracle_rho : float;
}

let snapshot t =
  {
    snap_answered = t.answered;
    snap_mw_log_weights = Pmw_mw.Mw.log_weights t.mw;
    snap_mw_updates = Pmw_mw.Mw.updates t.mw;
    snap_sv = Sv.snapshot t.sv;
    snap_rng = Pmw_rng.Rng.state t.rng;
    snap_oracle_events = Pmw_dp.Accountant.events t.accountant;
    snap_oracle_rho = Pmw_dp.Accountant.rho t.accountant;
  }

let restore t s =
  if s.snap_answered < 0 then invalid_arg "Online_pmw.restore: negative answer count";
  Pmw_mw.Mw.restore t.mw ~log_weights:s.snap_mw_log_weights ~updates:s.snap_mw_updates;
  Sv.restore t.sv s.snap_sv;
  Pmw_rng.Rng.restore t.rng s.snap_rng;
  Pmw_dp.Accountant.restore t.accountant ~events:s.snap_oracle_events ~rho:s.snap_oracle_rho;
  t.answered <- s.snap_answered;
  (* The update counter alone cannot version memo entries (a restore can
     land on the same count with different weights), so invalidate
     unconditionally. *)
  t.stamp <- t.stamp + 1
