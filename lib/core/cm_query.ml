module Vec = Pmw_linalg.Vec
module Loss = Pmw_convex.Loss
module Domain = Pmw_convex.Domain
module Solve = Pmw_convex.Solve

type t = { name : string; loss : Loss.t; domain : Domain.t }

let make ?name ~loss ~domain () =
  let name = match name with Some n -> n | None -> loss.Loss.name in
  { name; loss; domain }

let dim t = Domain.dim t.domain

let scale t = Loss.scale_parameter t.loss t.domain

let error_sensitivity t ~n =
  if n <= 0 then invalid_arg "Cm_query.error_sensitivity: n must be positive";
  3. *. scale t /. float_of_int n

let minimize_on_histogram ?pool ?iters t hist =
  Solve.minimize_loss_on_histogram ?pool ?iters t.loss t.domain hist

let minimize_on_dataset ?pool ?iters t ds =
  Solve.minimize_loss_on_dataset ?pool ?iters t.loss t.domain ds

let loss_on_histogram ?pool t hist theta =
  Pmw_data.Histogram.expect ?pool hist (fun _ x -> t.loss.Loss.value theta x)

let loss_on_dataset ?pool t ds theta =
  loss_on_histogram ?pool t (Pmw_data.Dataset.histogram ds) theta

let err_answer ?pool ?iters t ds theta =
  let reference = minimize_on_dataset ?pool ?iters t ds in
  Float.max 0. (loss_on_dataset ?pool t ds theta -. reference.Solve.value)

let err_hypothesis ?pool ?iters t ds hyp =
  let theta_hyp = (minimize_on_histogram ?pool ?iters t hyp).Solve.theta in
  err_answer ?pool ?iters t ds theta_hyp

let update_vector t ~theta_oracle ~theta_hyp _index x =
  let direction = Vec.sub theta_oracle theta_hyp in
  Vec.dot direction (t.loss.Loss.grad theta_hyp x)

(* Same linear query as [update_vector], but with the direction θᵗ − θ̂ᵗ
   hoisted out of the per-element loop and — for GLM losses — the gradient
   ∇ℓ_x(θ̂) = link'(⟨θ̂, φ(x)⟩)·φ(x) contracted against the direction without
   materializing it, so the O(|X|) MW update sweep allocates nothing. *)
let update_fn t ~theta_oracle ~theta_hyp =
  let direction = Vec.sub theta_oracle theta_hyp in
  match t.loss.Loss.glm with
  | Some g ->
      fun _index x ->
        let phi = g.Loss.feature x in
        g.Loss.link_deriv (Vec.dot theta_hyp phi) *. Vec.dot direction phi
  | None -> fun _index x -> Vec.dot direction (t.loss.Loss.grad theta_hyp x)
