module Histogram = Pmw_data.Histogram
module Universe = Pmw_data.Universe
module Mechanisms = Pmw_dp.Mechanisms
module Telemetry = Pmw_telemetry.Telemetry

type report = {
  answers : float array;
  final : Histogram.t;
  average : Histogram.t;
  selected : int list;
}

let run ?pool ?telemetry ~dataset ~queries ~eps ~rounds ?(answer_from = `Final) ?(replays = 10)
    ~rng () =
  let pool = match pool with Some p -> p | None -> Pmw_parallel.Pool.default () in
  let tel = match telemetry with Some t -> t | None -> Telemetry.null () in
  let k = Array.length queries in
  if k = 0 then invalid_arg "Mwem.run: empty workload";
  if rounds <= 0 then invalid_arg "Mwem.run: rounds must be positive";
  if eps <= 0. then invalid_arg "Mwem.run: eps must be positive";
  if replays < 1 then invalid_arg "Mwem.run: replays must be positive";
  let universe = Pmw_data.Dataset.universe dataset in
  let n = float_of_int (Pmw_data.Dataset.size dataset) in
  let truth = Pmw_data.Dataset.histogram dataset in
  let true_answers = Array.map (fun q -> Linear_pmw.evaluate ~pool q truth) queries in
  (* Tabulate each query over the universe once: every round evaluates every
     query, and the replayed updates sweep them |measurements|·replays times. *)
  let tables = Array.map (fun q -> Linear_pmw.values q universe) queries in
  let eps_round = eps /. (2. *. float_of_int rounds) in
  (* eta = 1 and explicit HLM12 exponents via the loss callback *)
  let mw = Pmw_mw.Mw.create ~pool ~universe ~eta:1. () in
  let average_acc = Array.make (Universe.size universe) 0. in
  let selected = ref [] in
  let measurements = ref [] in
  (* One MW step toward an already-taken (noisy) measurement — free to repeat
     arbitrarily: it touches only published values (post-processing). *)
  let apply (j, measurement) =
    let tab = tables.(j) in
    let hyp_answer = Histogram.dot ~pool (Pmw_mw.Mw.distribution mw) tab in
    let direction = measurement -. hyp_answer in
    (* HLM12 update: Dhat(x) *= exp(q(x) * direction / 2) *)
    Pmw_mw.Mw.update_gain mw ~gain:(fun i -> tab.(i) *. direction /. 2.)
  in
  for _ = 1 to rounds do
    ignore (Telemetry.next_round tel : int);
    let dhat = Pmw_mw.Mw.distribution mw in
    let scores =
      Array.mapi
        (fun j _ -> Float.abs (Histogram.dot ~pool dhat tables.(j) -. true_answers.(j)))
        queries
    in
    let j = Mechanisms.exponential ~eps:eps_round ~sensitivity:(1. /. n) ~scores rng in
    Telemetry.debit tel ~ledger:"mwem" ~mechanism:"exponential" ~eps:eps_round ~delta:0.;
    let measurement =
      Mechanisms.laplace ~eps:eps_round ~sensitivity:(1. /. n) true_answers.(j) rng
    in
    Telemetry.debit tel ~ledger:"mwem" ~mechanism:"laplace" ~eps:eps_round ~delta:0.;
    measurements := (j, measurement) :: !measurements;
    (* HLM12's practical improvement: iterate the update over every
       measurement taken so far (the fresh one first). *)
    for _ = 1 to replays do
      List.iter apply !measurements
    done;
    Telemetry.incr tel "mw_updates" ~by:(replays * List.length !measurements);
    let w = Histogram.weights (Pmw_mw.Mw.distribution mw) in
    Array.iteri (fun i x -> average_acc.(i) <- average_acc.(i) +. x) w;
    selected := j :: !selected
  done;
  let final = Pmw_mw.Mw.distribution mw in
  let average = Histogram.of_weights universe average_acc in
  let source = match answer_from with `Final -> final | `Average -> average in
  let answers = Array.map (fun q -> Linear_pmw.evaluate ~pool q source) queries in
  { answers; final; average; selected = List.rev !selected }
