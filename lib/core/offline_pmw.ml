module Vec = Pmw_linalg.Vec
module Universe = Pmw_data.Universe
module Params = Pmw_dp.Params
module Mechanisms = Pmw_dp.Mechanisms
module Solve = Pmw_convex.Solve
module Telemetry = Pmw_telemetry.Telemetry

type report = {
  answers : Vec.t array;
  hypothesis : Pmw_data.Histogram.t;
  rounds_used : int;
  selected : int list;
}

type selector = Exponential | Permute_and_flip

let run ?pool ?telemetry ~config ~dataset ~oracle ~queries ?(selector = Exponential) ~rng () =
  let pool = match pool with Some p -> p | None -> Pmw_parallel.Pool.default () in
  let tel = match telemetry with Some t -> t | None -> Telemetry.null () in
  let k = Array.length queries in
  if k = 0 then invalid_arg "Offline_pmw.run: no queries";
  Array.iter
    (fun q ->
      if Cm_query.scale q > config.Config.scale +. 1e-9 then
        invalid_arg "Offline_pmw.run: query scale exceeds configured S")
    queries;
  let universe = Pmw_data.Dataset.universe dataset in
  let n = Pmw_data.Dataset.size dataset in
  let iters = config.Config.solver_iters in
  let sensitivity = 3. *. config.Config.scale /. float_of_int n in
  let per_round = Params.split_advanced ~count:config.Config.t_max config.Config.privacy in
  (* The early-stopping test is only worth its budget when its Laplace noise
     is well below the threshold it tests against; otherwise it would fire
     spuriously on round one. When disabled, its share goes to the other two
     mechanisms (never spending budget is always safe). *)
  let use_stop_test =
    3. *. sensitivity /. (per_round.Params.eps /. 3.) <= 0.75 *. config.Config.alpha
  in
  let eps_third = per_round.Params.eps /. if use_stop_test then 3. else 2. in
  let mw = Pmw_mw.Mw.create ~pool ~universe ~eta:config.Config.eta () in
  (* Pre-solve the true minima once per query: each is reused every round. *)
  let references =
    Array.map (fun q -> (Cm_query.minimize_on_dataset ~pool ~iters q dataset).Solve.value) queries
  in
  let selected = ref [] in
  let rounds = ref 0 in
  (try
     for _ = 1 to config.Config.t_max do
       let dhat = Pmw_mw.Mw.distribution mw in
       let hyp_thetas =
         Array.map
           (fun q -> (Cm_query.minimize_on_histogram ~pool ~iters q dhat).Solve.theta)
           queries
       in
       let scores =
         Array.mapi
           (fun j q ->
             Float.max 0.
               (Cm_query.loss_on_dataset ~pool q dataset hyp_thetas.(j) -. references.(j)))
           queries
       in
       ignore (Telemetry.next_round tel : int);
       let j =
         match selector with
         | Exponential -> Mechanisms.exponential ~eps:eps_third ~sensitivity ~scores rng
         | Permute_and_flip ->
             Mechanisms.permute_and_flip ~eps:eps_third ~sensitivity ~scores rng
       in
       Telemetry.debit tel ~ledger:"offline" ~mechanism:"selector" ~eps:eps_third ~delta:0.;
       if use_stop_test then begin
         let noisy_err = Mechanisms.laplace ~eps:eps_third ~sensitivity scores.(j) rng in
         Telemetry.debit tel ~ledger:"offline" ~mechanism:"stop-test" ~eps:eps_third ~delta:0.;
         if noisy_err < 0.75 *. config.Config.alpha then begin
           Telemetry.mark tel "offline.stop" ~fields:[ ("round", Telemetry.Int (!rounds + 1)) ];
           raise Exit
         end
       end;
       let query = queries.(j) in
       let request =
         {
           Pmw_erm.Oracle.dataset;
           loss = query.Cm_query.loss;
           domain = query.Cm_query.domain;
           privacy =
             Params.create ~eps:eps_third ~delta:(per_round.Params.delta /. 2.);
           rng;
           solver_iters = iters;
         }
       in
       Telemetry.debit tel ~ledger:"offline" ~mechanism:"oracle-call" ~eps:eps_third
         ~delta:(per_round.Params.delta /. 2.);
       let theta_oracle =
         Telemetry.span tel "oracle.call" (fun () -> oracle.Pmw_erm.Oracle.run request)
       in
       let theta_hyp = hyp_thetas.(j) in
       let s = config.Config.scale in
       let update = Cm_query.update_fn query ~theta_oracle ~theta_hyp in
       let u i =
         let x = Universe.get universe i in
         Pmw_linalg.Special.clamp ~lo:(-.s) ~hi:s (update i x)
       in
       Pmw_mw.Mw.update mw ~loss:u;
       Telemetry.incr tel "mw_updates";
       selected := j :: !selected;
       incr rounds
     done
   with Exit -> ());
  let final = Pmw_mw.Mw.distribution mw in
  let answers =
    Array.map (fun q -> (Cm_query.minimize_on_histogram ~pool ~iters q final).Solve.theta) queries
  in
  { answers; hypothesis = final; rounds_used = !rounds; selected = List.rev !selected }
