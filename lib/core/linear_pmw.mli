(** Private multiplicative weights for linear queries — the Hardt–Rothblum
    mechanism (FOCS 2010) that the paper extends, implemented directly.

    Used as the Table 1 row 1 baseline and as the special case the CM
    machinery must not regress: a linear query [q : X → \[0,1\]] asks for
    [⟨q, D⟩ = Σ_x q(x)·D(x)]. On each query the mechanism compares the
    hypothesis answer with the true one through sparse vector; inaccurate
    hypotheses trigger a Laplace-noised answer and an MW update with the
    query itself (signed by the direction of the error) as the update
    vector. *)

type query = {
  name : string;
  value : int -> Pmw_data.Point.t -> float;
  mutable table : (string * float array) option;
      (** memoized per-universe value table, filled by {!values}; build
          queries with {!counting_query} (or [table = None]) *)
}
(** [value i x] must lie in [\[0, 1\]]; [i] is the universe index of [x]. *)

val counting_query : name:string -> (Pmw_data.Point.t -> bool) -> query
(** The classical "what fraction of rows satisfy p?" query. *)

val values : query -> Pmw_data.Universe.t -> float array
(** The query tabulated over the whole universe — [q(x)] for each point, in
    index order. Computed once per (query, universe) pair and memoized on
    the query, so repeated evaluation and MW-update sweeps stop re-decoding
    points. Callers must not mutate the returned array. *)

val evaluate : ?pool:Pmw_parallel.Pool.t -> query -> Pmw_data.Histogram.t -> float
(** [⟨q, D⟩], as a chunked deterministic dot product against the memoized
    {!values} table (default pool: {!Pmw_parallel.Pool.default}). *)

type t

val create :
  ?pool:Pmw_parallel.Pool.t ->
  ?telemetry:Pmw_telemetry.Telemetry.t ->
  universe:Pmw_data.Universe.t ->
  dataset:Pmw_data.Dataset.t ->
  privacy:Pmw_dp.Params.t ->
  alpha:float ->
  beta:float ->
  k:int ->
  ?t_max:int ->
  rng:Pmw_rng.Rng.t ->
  unit ->
  t
(** Default update budget is the HR10 theory value
    [T = ⌈16·log|X| / α²⌉]; pass [t_max] to override. The privacy budget is
    split half to sparse vector, half (advanced-composed over [T]) to the
    noisy answers. *)

val answer : t -> query -> float option
(** The private answer to one query, or [None] after halting. *)

val hypothesis : t -> Pmw_data.Histogram.t
val updates : t -> int
val queries_answered : t -> int
val halted : t -> bool
