type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let default_seed = 0x5DEECE66D

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let of_seed64 seed64 =
  let sm = Splitmix64.create seed64 in
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  (* xoshiro's state must not be all zeros; splitmix output makes this
     astronomically unlikely, but guard anyway. *)
  if Int64.equal (Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3)) 0L
  then { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let create ?(seed = default_seed) () = of_seed64 (Int64.of_int seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

(* xoshiro256++ step *)
let bits64 t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

let state t = [| t.s0; t.s1; t.s2; t.s3 |]

let check_state s =
  if Array.length s <> 4 then invalid_arg "Rng: state must have exactly 4 words";
  if Int64.equal (Int64.logor (Int64.logor s.(0) s.(1)) (Int64.logor s.(2) s.(3))) 0L then
    invalid_arg "Rng: the all-zero state is invalid for xoshiro256++"

let of_state s =
  check_state s;
  { s0 = s.(0); s1 = s.(1); s2 = s.(2); s3 = s.(3) }

let restore t s =
  check_state s;
  t.s0 <- s.(0);
  t.s1 <- s.(1);
  t.s2 <- s.(2);
  t.s3 <- s.(3)

let two_pow_53 = 9007199254740992.0 (* 2^53 *)

let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits /. two_pow_53

let float_pos t =
  let rec loop () =
    let u = float t in
    if u > 0. then u else loop ()
  in
  loop ()

let uniform t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.uniform: hi < lo";
  lo +. ((hi -. lo) *. float t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let bound64 = Int64.of_int bound in
  let rec loop () =
    let bits = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem bits bound64 in
    if Int64.compare (Int64.sub bits v) (Int64.sub Int64.max_int (Int64.sub bound64 1L)) > 0
    then loop ()
    else Int64.to_int v
  in
  loop ()

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0
