(** Seedable pseudo-random generator used throughout the library.

    The implementation is xoshiro256++ (Blackman & Vigna 2019), seeded by
    {!Splitmix64}. Every randomized component in this repository (mechanisms,
    solvers, synthetic-data generators) threads a [Rng.t] explicitly so that
    experiments are reproducible from a single integer seed. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a fresh generator. The default seed is a fixed
    constant so that programs are deterministic unless a seed is supplied. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. The derived
    stream is decorrelated from the parent's future output; use it to give
    sub-components their own streams. *)

val state : t -> int64 array
(** The 4 words of xoshiro256++ state, for checkpointing. Restoring this
    exact array reproduces the generator's future output bit-for-bit. *)

val of_state : int64 array -> t
(** A generator at the given state.
    @raise Invalid_argument unless the array has exactly 4 words and at
    least one is non-zero (the all-zero state is a fixed point). *)

val restore : t -> int64 array -> unit
(** Overwrite [t]'s state in place (same validation as {!of_state}) —
    resumes a checkpointed stream without re-threading a new generator
    through existing components. *)

val bits64 : t -> int64
(** 64 uniform pseudo-random bits. *)

val float : t -> float
(** Uniform float in [\[0, 1)] with 53 bits of precision. *)

val float_pos : t -> float
(** Uniform float in [(0, 1)] — never returns exactly [0.]; safe as an
    argument to [log]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform float in [\[lo, hi)]. @raise Invalid_argument if [hi < lo]. *)

val int : t -> int -> int
(** [int t bound] is a uniform integer in [\[0, bound)], free of modulo bias.
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool
(** A fair coin flip. *)
