module Telemetry = Pmw_telemetry.Telemetry

let grain = 8192

let num_chunks n = if n <= 0 then 0 else (n + grain - 1) / grain

type t = {
  size : int;
  mutable workers : unit Domain.t array;
  tasks : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  mutable pending : int;
  mutable error : exn option;
  mutable stopped : bool;
  mutable telemetry : Telemetry.t option;
}

let size t = t.size

(* Worker protocol: sleep until a task or shutdown appears; run tasks outside
   the lock; the last finished task of a batch wakes the caller. *)
let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.tasks && not pool.stopped do
    Condition.wait pool.work_available pool.mutex
  done;
  if Queue.is_empty pool.tasks then Mutex.unlock pool.mutex (* stopped *)
  else begin
    let task = Queue.pop pool.tasks in
    Mutex.unlock pool.mutex;
    (try task ()
     with e ->
       Mutex.lock pool.mutex;
       if pool.error = None then pool.error <- Some e;
       Mutex.unlock pool.mutex);
    Mutex.lock pool.mutex;
    pool.pending <- pool.pending - 1;
    if pool.pending = 0 then Condition.broadcast pool.batch_done;
    Mutex.unlock pool.mutex;
    worker_loop pool
  end

let shutdown t =
  if not t.stopped then begin
    Mutex.lock t.mutex;
    t.stopped <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let env_size () =
  match Sys.getenv_opt "PMW_DOMAINS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k >= 1 -> Int.min k 64
      | Some _ | None -> 1)

let create ?domains () =
  let size = match domains with Some k -> k | None -> env_size () in
  if size < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let pool =
    {
      size;
      workers = [||];
      tasks = Queue.create ();
      mutex = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      pending = 0;
      error = None;
      stopped = false;
      telemetry = None;
    }
  in
  if size > 1 then begin
    pool.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
    (* A blocked worker keeps the process alive; make exit unconditional. *)
    at_exit (fun () -> shutdown pool)
  end;
  pool

let default_pool = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create () in
      default_pool := Some p;
      p

let chunk_bounds n c =
  let lo = c * grain in
  (lo, Int.min n (lo + grain))

(* Pairwise in-place tree reduction over the chunk partials, in index order:
   the association ((p0 p1) (p2 p3)) ... depends only on the partial count. *)
let tree_combine combine parts =
  let rec go len =
    if len = 1 then parts.(0)
    else begin
      let half = (len + 1) / 2 in
      for i = 0 to (len / 2) - 1 do
        parts.(i) <- combine parts.(2 * i) parts.((2 * i) + 1)
      done;
      if len land 1 = 1 then parts.(half - 1) <- parts.(len - 1);
      go half
    end
  in
  go (Array.length parts)

(* Run [f c] for every chunk index, caller participating: enqueue all chunks,
   drain the queue from the caller too, then wait for stragglers. *)
let run_chunks_raw t ~chunks f =
  if t.stopped then invalid_arg "Pool: used after shutdown";
  if t.size = 1 || chunks = 1 then
    for c = 0 to chunks - 1 do
      f c
    done
  else begin
    Mutex.lock t.mutex;
    t.pending <- t.pending + chunks;
    for c = 0 to chunks - 1 do
      Queue.push (fun () -> f c) t.tasks
    done;
    Condition.broadcast t.work_available;
    let rec drain () =
      if not (Queue.is_empty t.tasks) then begin
        let task = Queue.pop t.tasks in
        Mutex.unlock t.mutex;
        (try task ()
         with e ->
           Mutex.lock t.mutex;
           if t.error = None then t.error <- Some e;
           Mutex.unlock t.mutex);
        Mutex.lock t.mutex;
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.broadcast t.batch_done;
        drain ()
      end
    in
    drain ();
    while t.pending > 0 do
      Condition.wait t.batch_done t.mutex
    done;
    let err = t.error in
    t.error <- None;
    Mutex.unlock t.mutex;
    match err with Some e -> raise e | None -> ()
  end

let set_telemetry t tel = t.telemetry <- tel

(* Per-chunk timing rides on the verbose flag: workers stamp durations into
   disjoint slots of a per-batch array (no shared mutation, and the batch
   barrier publishes the writes), and the calling domain emits the events
   after the batch — telemetry instances are single-domain by contract. *)
let run_chunks t ~chunks f =
  match t.telemetry with
  | Some tel when Telemetry.enabled tel && Telemetry.verbose tel ->
      let durs = Array.make chunks 0. in
      let t0 = Unix.gettimeofday () in
      run_chunks_raw t ~chunks (fun c ->
          let c0 = Unix.gettimeofday () in
          f c;
          durs.(c) <- Unix.gettimeofday () -. c0);
      let batch_s = Unix.gettimeofday () -. t0 in
      Array.iter (fun d -> Telemetry.observe tel "pool.chunk_s" d) durs;
      Telemetry.mark tel "pool.batch"
        ~fields:[ ("chunks", Telemetry.Int chunks); ("batch_s", Telemetry.Float batch_s) ]
  | _ -> run_chunks_raw t ~chunks f

let parallel_for t ~n body =
  let chunks = num_chunks n in
  if chunks > 0 then
    run_chunks t ~chunks (fun c ->
        let lo, hi = chunk_bounds n c in
        body lo hi)

let parallel_reduce t ~n ~neutral ~chunk ~combine =
  let chunks = num_chunks n in
  if chunks = 0 then neutral
  else if chunks = 1 then chunk 0 n
  else begin
    let parts = Array.make chunks neutral in
    run_chunks t ~chunks (fun c ->
        let lo, hi = chunk_bounds n c in
        parts.(c) <- chunk lo hi);
    tree_combine combine parts
  end
