(** A fixed-size domain pool with {e deterministic} data-parallel loops.

    The mechanism's inner loops are all O(|X|) array sweeps (MW updates,
    log-sum-exp, expectations, gradient accumulations). This pool runs them
    across OCaml 5 domains while keeping every floating-point result a pure
    function of the array length alone:

    - the index range [0, n) is split into fixed chunks of {!grain} elements
      (the chunk boundaries depend only on [n], never on the pool size), and
    - chunk partials are combined by a pairwise tree reduction in index order
      (again a pure function of the chunk count).

    Whichever domain happens to execute a chunk, the arithmetic performed —
    and therefore every bit of the result — is identical for a pool of size
    1, 2 or 8. This is what preserves the checkpoint/resume bit-exactness
    and seeded-RNG reproducibility contracts while still scaling the sweeps
    across cores.

    Thread-safety contract: the chunk closures handed to {!parallel_for} and
    {!parallel_reduce} run on worker domains. They must be pure with respect
    to shared state except for writes to disjoint index ranges (allocation
    is fine; the multicore GC handles it). All pool entry points must be
    called from the domain that created the pool, and never from inside a
    running chunk. *)

type t

val create : ?domains:int -> unit -> t
(** A pool of [domains] total workers (default: the [PMW_DOMAINS] environment
    variable, else 1). [domains = 1] spawns nothing and runs every loop
    inline — the sequential reference. [domains = k > 1] spawns [k - 1]
    worker domains; the calling domain participates as the [k]-th.
    @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
(** Number of participating domains (including the caller). *)

val default : unit -> t
(** The process-wide shared pool, created on first use with the size given
    by [PMW_DOMAINS] (default 1). Every kernel that is not handed an
    explicit pool uses this one, so [PMW_DOMAINS=8 ./prog] parallelizes the
    whole mechanism without code changes — and without changing a single
    output bit. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; the pool cannot be used after.
    Pools also shut themselves down at process exit. *)

val set_telemetry : t -> Pmw_telemetry.Telemetry.t option -> unit
(** Attach (or detach, with [None]) a telemetry instance. Per-chunk and
    per-batch timing events ([pool.chunk_s] observations, [pool.batch]
    marks) are emitted only when the instance is {e verbose}
    ({!Pmw_telemetry.Telemetry.verbose}, e.g. [PMW_TRACE_POOL=1]) — they
    fire on every kernel call and would otherwise swamp a trace. Workers
    stamp chunk durations into disjoint slots; the calling domain emits the
    events after each batch, so the telemetry instance itself is only ever
    touched from the domain that runs the pool. *)

val grain : int
(** Elements per chunk (8192). Exposed so tests can build inputs that span
    multiple chunks. *)

val num_chunks : int -> int
(** Number of chunks for an [n]-element loop: [ceil (n / grain)] — the pure
    function of [n] that fixes the reduction shape. *)

val parallel_for : t -> n:int -> (int -> int -> unit) -> unit
(** [parallel_for pool ~n body] runs [body lo hi] over the fixed chunking of
    [0, n); each call covers the half-open range [lo, hi). Chunks may run
    concurrently, so bodies must only write disjoint state. Re-raises the
    first chunk exception after the loop quiesces. *)

val parallel_reduce :
  t -> n:int -> neutral:'a -> chunk:(int -> int -> 'a) -> combine:('a -> 'a -> 'a) -> 'a
(** [parallel_reduce pool ~n ~neutral ~chunk ~combine] evaluates
    [chunk lo hi] on the fixed chunking and combines the per-chunk partials
    with a pairwise tree in index order: with partials [p0..p3] the result
    is [combine (combine p0 p1) (combine p2 p3)], regardless of pool size.
    Returns [neutral] when [n <= 0]. [combine] runs on the calling domain
    and may mutate and return its left argument. *)
