(** Umbrella module: one [open Pmw]-able namespace re-exporting the whole
    library. The sub-libraries remain directly usable (and are what the
    internal code depends on); this module is the convenient front door for
    applications:

    {[
      let mechanism =
        Pmw.Online_pmw.create
          ~config:(Pmw.Config.practical ~universe ... ())
          ~dataset ~oracle:(Pmw.Oracles.noisy_gd ()) ~rng ()
    ]} *)

(* randomness *)
module Rng = Pmw_rng.Rng
module Dist = Pmw_rng.Dist

(* deterministic multicore kernels *)
module Pool = Pmw_parallel.Pool

(* numerics *)
module Vec = Pmw_linalg.Vec
module Mat = Pmw_linalg.Mat
module Proj = Pmw_linalg.Proj
module Special = Pmw_linalg.Special

(* data layer *)
module Point = Pmw_data.Point
module Universe = Pmw_data.Universe
module Histogram = Pmw_data.Histogram
module Dataset = Pmw_data.Dataset
module Synth = Pmw_data.Synth
module Continuous = Pmw_data.Continuous
module Io = Pmw_data.Io

(* differential privacy *)
module Params = Pmw_dp.Params
module Mechanisms = Pmw_dp.Mechanisms
module Analytic_gaussian = Pmw_dp.Analytic_gaussian
module Sparse_vector = Pmw_dp.Sparse_vector
module Numeric_sparse = Pmw_dp.Numeric_sparse
module Accountant = Pmw_dp.Accountant
module Rdp = Pmw_dp.Rdp
module Audit = Pmw_dp.Audit

(* convex optimization *)
module Domain = Pmw_convex.Domain
module Loss = Pmw_convex.Loss
module Losses = Pmw_convex.Losses
module Objective = Pmw_convex.Objective
module Solve = Pmw_convex.Solve

(* multiplicative weights *)
module Mw = Pmw_mw.Mw

(* single-query oracles *)
module Oracle = Pmw_erm.Oracle
module Oracles = Pmw_erm.Oracles
module Faulty_oracle = Pmw_erm.Faulty_oracle

(* the paper's mechanisms *)
module Cm_query = Pmw_core.Cm_query
module Config = Pmw_core.Config
module Online_pmw = Pmw_core.Online_pmw
module Offline_pmw = Pmw_core.Offline_pmw
module Linear_pmw = Pmw_core.Linear_pmw
module Mwem = Pmw_core.Mwem
module Smalldb = Pmw_core.Smalldb
module Histogram_release = Pmw_core.Histogram_release
module Composition = Pmw_core.Composition
module Synthetic_release = Pmw_core.Synthetic_release
module Analyst = Pmw_core.Analyst
module Workloads = Pmw_core.Workloads
module Predicate = Pmw_core.Predicate
module Theory = Pmw_core.Theory
module Transfer = Pmw_core.Transfer
module Budget = Pmw_core.Budget

(* fault-tolerant session engine *)
module Session = Pmw_session.Session
module Checkpoint = Pmw_session.Checkpoint

(* attacks *)
module Reconstruction = Pmw_attacks.Reconstruction
module Tracing = Pmw_attacks.Tracing
