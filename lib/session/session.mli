(** A fault-tolerant session around the online PMW mechanism.

    The session owns the privacy ledger ({!Pmw_core.Budget}) and wires the
    mechanism's oracle slot to a retry/fallback chain
    ({!Pmw_erm.Oracles.with_fallback}) whose every attempt — including
    failed ones — is debited from the ledger before it runs. On top of the
    mechanism's own verdicts it adds one more layer of degradation: when
    the whole oracle chain fails or the budget refuses another attempt, the
    query is still answered from the frozen public hypothesis (pure
    post-processing, no further privacy cost) and flagged
    [Degraded (Oracle_unavailable _)] or
    [Degraded (Privacy_budget_exhausted _)].

    Sessions checkpoint to a {!Checkpoint.t} and resume from one with the
    exact ledger, MW weights, sparse-vector epoch and RNG states of the
    killed process — the resumed answer stream is bit-identical to the
    uninterrupted one and no ε is ever re-spent.

    Invariant maintained under every fault class (NaN/Inf answers,
    divergent solves, timeouts, misreported spends): [Budget.spent] never
    exceeds [Budget.total]. A misreported spend that cannot be covered
    drains the ledger and marks the session breached; all further oracle
    attempts are refused and answers degrade to the frozen hypothesis. *)

type t

val create :
  ?pool:Pmw_parallel.Pool.t ->
  ?telemetry:Pmw_telemetry.Telemetry.t ->
  ?label:string ->
  config:Pmw_core.Config.t ->
  dataset:Pmw_data.Dataset.t ->
  ?oracles:Pmw_erm.Oracle.t list ->
  ?retries:int ->
  ?spend_claim:(unit -> Pmw_dp.Params.t option) ->
  ?prior:Pmw_data.Histogram.t ->
  rng:Pmw_rng.Rng.t ->
  unit ->
  t
(** [pool] (default: {!Pmw_parallel.Pool.default}) runs every O(|X|) kernel
    of the session — the MW state, the solvers and the default oracle chain —
    chunked across its domains; answers and checkpoints are bit-identical
    whatever the pool size, so a session checkpointed under one pool resumes
    exactly under another.

    [label] names the session's privacy ledger in the telemetry timeline
    (default ["budget"]); a fleet gives each shard's session a distinct label
    (["shard0"], ["shard1"], …) so merged traces keep per-shard spend curves
    apart.

    [oracles] is the fallback chain, tried in order (default:
    noisy-GD then output perturbation); [retries] extra tries per stage
    (default 0). [spend_claim] is polled after every oracle attempt: when
    it returns a spend larger than the allocation the attempt was handed,
    the excess is debited (see {!breached}). The SV half of the budget is
    debited up front. @raise Invalid_argument if the config's SV budget
    does not fit the total, or [oracles] is empty.

    [telemetry] (default: a no-op instance) observes the whole stack — the
    mechanism's spans and counters, the SV instance, the oracle chain's
    attempt marks, and every ledger grant (tagged ["sv-reserve"],
    ["oracle-attempt"], ["misreport-excess"], ["misreport-drain"] or
    ["replay"]). The session's own {!queries} / {!degraded_answers} /
    {!refusals} tallies ARE its telemetry counters — one bookkeeping path,
    with or without a sink. *)

val answer : t -> Pmw_core.Cm_query.t -> Pmw_core.Online_pmw.verdict
val answer_all : t -> Pmw_core.Cm_query.t list -> Pmw_core.Online_pmw.verdict list

(** {1 Batched answering}

    The query server's broker answers each drained batch of analyst requests
    through one {!batch} context, so the mechanism's deterministic solves
    (hypothesis extraction, public minimizers, error-query values) are shared
    across the batch — see {!Pmw_core.Online_pmw.batch}. Verdicts, ledger
    debits and degradation behaviour are bit-identical to calling {!answer}
    on the same queries in the same order. *)

type batch

val batch : t -> batch
(** A fresh short-lived context; drop it once the batch is answered. *)

val batch_answer : batch -> Pmw_core.Cm_query.t -> Pmw_core.Online_pmw.verdict
(** Exactly {!answer} — including the degraded-fallback solve and the
    telemetry tallies — sharing solves with earlier calls on the batch. *)

val answer_batch : t -> Pmw_core.Cm_query.t list -> Pmw_core.Online_pmw.verdict list
(** [answer_all] through one fresh {!batch}. *)

val admissible : t -> (unit, string) result
(** Budget-aware admission check: can this session fund one more oracle
    attempt right now? [Error] when the ledger is breached or
    {!Pmw_core.Budget.fits} refuses the per-attempt debit
    ([config.oracle_privacy]) — the server's broker turns that into a
    reject-with-retry-after instead of queueing work that can only degrade.
    Read-only and atomic against concurrent debits; a query admitted on a
    positive answer can still degrade if the pot moves before its oracle
    call (the authoritative check-and-debit stays inside the chain's
    [authorize]). *)

val budget : t -> Pmw_core.Budget.t
val telemetry : t -> Pmw_telemetry.Telemetry.t
val mechanism : t -> Pmw_core.Online_pmw.t
val config : t -> Pmw_core.Config.t
val hypothesis : t -> Pmw_data.Histogram.t

val epoch : t -> int
(** The dataset generation this session answers against
    ([Dataset.epoch] of the dataset it was created with); stamped into
    every checkpoint and checked on {!resume}. *)

val queries : t -> int
(** Queries processed, any verdict. *)

val answered : t -> int
val degraded_answers : t -> int
val refusals : t -> int

val exit_status : t -> (unit, string) result
(** [Ok ()] when the session can still answer live queries; [Error reason]
    when it ended badly — the ledger was breached, the last query was
    refused, or the privacy budget is exhausted. The CLI maps [Error] to
    exit code 2. *)

val finish : t -> unit
(** Emit the end-of-run ["ledger.final"] marks
    ({!Pmw_telemetry.Telemetry.emit_ledger_finals}) so a written trace is
    self-checking. Call once, when no more queries will be asked. *)

val breached : t -> bool
(** A misreported oracle spend exceeded the remaining budget: the ledger
    was drained to its cap and every further oracle attempt is refused. *)

val attempts : t -> Checkpoint.attempt list
(** Oracle attempts so far, oldest first, successes and failures alike. *)

val attempt_count : t -> int

val checkpoint : t -> Checkpoint.t
val save : t -> path:string -> unit

val resume :
  ?pool:Pmw_parallel.Pool.t ->
  ?telemetry:Pmw_telemetry.Telemetry.t ->
  ?label:string ->
  config:Pmw_core.Config.t ->
  dataset:Pmw_data.Dataset.t ->
  ?oracles:Pmw_erm.Oracle.t list ->
  ?retries:int ->
  ?spend_claim:(unit -> Pmw_dp.Params.t option) ->
  rng:Pmw_rng.Rng.t ->
  Checkpoint.t ->
  (t, string) result
(** Rebuild a session from a checkpoint. The config, dataset and oracle
    chain are re-supplied by the caller and validated against the stored
    fingerprint; the ledger is replayed verbatim and all RNG/noise state is
    restored, so the continuation spends no ε that the killed process had
    not already spent. The supplied [rng]'s state is overwritten.

    A resumed trace continues the killed one: the verdict counters and the
    round numbering are restored and a ["session.restart"] mark (carrying
    the replayed spend) separates the two lives. *)

val resume_path :
  ?pool:Pmw_parallel.Pool.t ->
  ?telemetry:Pmw_telemetry.Telemetry.t ->
  ?label:string ->
  config:Pmw_core.Config.t ->
  dataset:Pmw_data.Dataset.t ->
  ?oracles:Pmw_erm.Oracle.t list ->
  ?retries:int ->
  ?spend_claim:(unit -> Pmw_dp.Params.t option) ->
  rng:Pmw_rng.Rng.t ->
  path:string ->
  unit ->
  (t, string) result
