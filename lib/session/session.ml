module Online = Pmw_core.Online_pmw
module Budget = Pmw_core.Budget
module Config = Pmw_core.Config
module Cm_query = Pmw_core.Cm_query
module Params = Pmw_dp.Params
module Oracle = Pmw_erm.Oracle
module Oracles = Pmw_erm.Oracles
module Solve = Pmw_convex.Solve
module Telemetry = Pmw_telemetry.Telemetry

let log_src = Logs.Src.create "pmw.session" ~doc:"Fault-tolerant PMW session events"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* The Degraded/Refused tallies live in the telemetry counters ("queries",
   "degraded_answers", "refusals") — the instance tracks counters even with
   a null sink, so there is exactly one bookkeeping path whether or not a
   trace is being written. *)
type t = {
  config : Config.t;
  pool : Pmw_parallel.Pool.t;
  dataset : Pmw_data.Dataset.t;
  budget : Budget.t;
  online : Online.t;
  telemetry : Telemetry.t;
  mutable last_refusal : string option;
  breached : bool ref;
  attempts : Checkpoint.attempt list ref;  (* newest first *)
}

let default_oracles ?pool () = [ Oracles.noisy_gd ?pool (); Oracles.output_perturbation ]

let fingerprint config dataset =
  let universe = Pmw_data.Dataset.universe dataset in
  {
    Checkpoint.fp_eps = config.Config.privacy.Params.eps;
    fp_delta = config.Config.privacy.Params.delta;
    fp_alpha = config.Config.alpha;
    fp_scale = config.Config.scale;
    fp_k = config.Config.k;
    fp_t_max = config.Config.t_max;
    fp_eta = config.Config.eta;
    fp_universe_size = Pmw_data.Universe.size universe;
    fp_universe_name = Pmw_data.Universe.name universe;
    fp_dataset_size = Pmw_data.Dataset.size dataset;
  }

(* Shared by create and resume; [ledger] is the pre-populated budget for a
   resume (create starts a fresh one and debits the SV half). *)
let make ~config ~pool ~dataset ~oracles ~retries ~spend_claim ?prior ~rng ~budget ~telemetry () =
  let breached = ref false in
  let attempts = ref [] in
  let authorize (_ : Oracle.request) =
    if !breached then Error "ledger breached by a misreported oracle spend"
    else
      Result.map
        (fun _ -> ())
        (Budget.request ~mechanism:"oracle-attempt" budget config.Config.oracle_privacy)
  in
  let on_attempt (a : Oracles.attempt) =
    attempts :=
      {
        Checkpoint.at_oracle = a.Oracles.attempt_oracle;
        at_eps = a.Oracles.attempt_spend.Params.eps;
        at_delta = a.Oracles.attempt_spend.Params.delta;
        at_ok = Result.is_ok a.Oracles.attempt_outcome;
      }
      :: !attempts;
    (* A misreporting oracle claims it spent more than it was handed. The
       sound response is to believe the claim: debit the excess, and when
       the pot cannot cover it, drain everything and refuse all future
       attempts — Budget.spent can then never exceed Budget.total. *)
    match spend_claim () with
    | None -> ()
    | Some claim ->
        let spend = a.Oracles.attempt_spend in
        let excess_eps = Float.max 0. (claim.Params.eps -. spend.Params.eps) in
        let excess_delta = Float.max 0. (claim.Params.delta -. spend.Params.delta) in
        if excess_eps > 0. || excess_delta > 0. then begin
          match
            Budget.request ~mechanism:"misreport-excess" budget
              (Params.create ~eps:excess_eps ~delta:excess_delta)
          with
          | Ok _ ->
              Log.warn (fun m ->
                  m "oracle %s misreported spend (+eps=%g); excess debited" a.Oracles.attempt_oracle
                    excess_eps)
          | Error why ->
              ignore (Budget.request_all ~mechanism:"misreport-drain" budget);
              breached := true;
              Telemetry.mark telemetry "session.breached"
                ~fields:[ ("oracle", Telemetry.Str a.Oracles.attempt_oracle) ];
              Log.err (fun m ->
                  m "oracle %s misreported spend beyond the remaining budget (%s); ledger drained, \
                     degrading"
                    a.Oracles.attempt_oracle why)
        end
  in
  let chain =
    match oracles with
    | [] -> invalid_arg "Session.create: empty oracle chain"
    | oracles -> Oracles.with_fallback ~telemetry ~retries ~authorize ~on_attempt oracles
  in
  let online = Online.create ~pool ~telemetry ~config ~dataset ~oracle:chain ?prior ~rng () in
  {
    config;
    pool;
    dataset;
    budget;
    online;
    telemetry;
    last_refusal = None;
    breached;
    attempts;
  }

let create ?pool ?telemetry ?label ~config ~dataset ?oracles ?(retries = 0)
    ?(spend_claim = fun () -> None) ?prior ~rng () =
  let pool = match pool with Some p -> p | None -> Pmw_parallel.Pool.default () in
  let telemetry = match telemetry with Some t -> t | None -> Telemetry.null () in
  let oracles = match oracles with Some o -> o | None -> default_oracles ~pool () in
  let budget = Budget.create ~telemetry ?label config.Config.privacy in
  (* The SV half is committed for the whole session up front: the sparse
     vector spends it progressively over its epochs, but the ledger must
     reserve it before the first query or oracle retries could eat it. *)
  (match Budget.request ~mechanism:"sv-reserve" budget config.Config.sv_privacy with
  | Ok _ -> ()
  | Error why -> invalid_arg ("Session.create: SV budget does not fit: " ^ why));
  make ~config ~pool ~dataset ~oracles ~retries ~spend_claim ?prior ~rng ~budget ~telemetry ()

let from_hypothesis t query =
  let dhat = Online.hypothesis t.online in
  let iters = t.config.Config.solver_iters in
  (Cm_query.minimize_on_histogram ~pool:t.pool ~iters query dhat).Solve.theta

let all_finite v =
  let ok = ref true in
  Array.iter (fun x -> if not (Float.is_finite x) then ok := false) v;
  !ok

(* One post-processing path shared by [answer] and [batch_answer]:
   [online_answer] is either [Online.answer t.online] or a batch-scoped
   [Online.batch_answer] — the degraded-fallback solve and the tallies are
   identical either way, which is what makes batched and sequential
   transcripts comparable verdict-for-verdict. *)
let answer_via t online_answer query =
  let verdict =
    match online_answer query with
    | Online.Refused (Online.Oracle_failed why) ->
        (* Last stage of the fallback chain: the hypothesis still answers,
           as pure post-processing, even when every oracle is down. *)
        let theta = from_hypothesis t query in
        if all_finite theta then
          Online.Degraded
            ( { Online.theta; source = Online.From_hypothesis; update_index = Online.updates t.online },
              Online.Oracle_unavailable why )
        else Online.Refused (Online.Oracle_failed why)
    | Online.Refused (Online.Oracle_budget_denied why) ->
        let theta = from_hypothesis t query in
        if all_finite theta then
          Online.Degraded
            ( { Online.theta; source = Online.From_hypothesis; update_index = Online.updates t.online },
              Online.Privacy_budget_exhausted why )
        else Online.Refused (Online.Oracle_budget_denied why)
    | v -> v
  in
  Telemetry.incr t.telemetry "queries";
  (match verdict with
  | Online.Degraded (_, d) ->
      Telemetry.incr t.telemetry "degraded_answers";
      Telemetry.mark t.telemetry "session.degraded"
        ~fields:[ ("reason", Telemetry.Str (Online.degradation_to_string d)) ]
  | Online.Refused r ->
      let why = Online.refusal_to_string r in
      t.last_refusal <- Some why;
      Telemetry.incr t.telemetry "refusals";
      Telemetry.mark t.telemetry "session.refused" ~fields:[ ("reason", Telemetry.Str why) ]
  | Online.Answered _ -> ());
  verdict

let answer t query = answer_via t (Online.answer t.online) query
let answer_all t queries = List.map (answer t) queries

(* --- batched answering --- *)

type batch = { bt_session : t; bt_online : Online.batch }

let batch t = { bt_session = t; bt_online = Online.batch t.online }
let batch_answer b query = answer_via b.bt_session (Online.batch_answer b.bt_online) query

let answer_batch t queries =
  let b = batch t in
  List.map (batch_answer b) queries

(* --- admission control --- *)

let admissible t =
  if !(t.breached) then Error "ledger breached by a misreported oracle spend"
  else Budget.fits t.budget t.config.Config.oracle_privacy

let budget t = t.budget
let mechanism t = t.online
let config t = t.config
let epoch t = Pmw_data.Dataset.epoch t.dataset
let telemetry t = t.telemetry
let queries t = Telemetry.counter t.telemetry "queries"
let degraded_answers t = Telemetry.counter t.telemetry "degraded_answers"
let refusals t = Telemetry.counter t.telemetry "refusals"
let answered t = queries t - degraded_answers t - refusals t
let breached t = !(t.breached)

let exit_status t =
  if !(t.breached) then
    Error "session breached: a misreported oracle spend drained the privacy ledger"
  else
    match t.last_refusal with
    | Some why -> Error (Printf.sprintf "last query refused: %s" why)
    | None ->
        if Budget.exhausted t.budget then Error "privacy budget exhausted"
        else Ok ()

let finish t =
  Telemetry.emit_ledger_finals t.telemetry
let attempts t = List.rev !(t.attempts)
let attempt_count t = List.length !(t.attempts)
let hypothesis t = Online.hypothesis t.online

(* --- checkpoint / restore --- *)

let checkpoint t =
  let snap = Online.snapshot t.online in
  {
    Checkpoint.fingerprint = fingerprint t.config t.dataset;
    epoch = Pmw_data.Dataset.epoch t.dataset;
    queries = queries t;
    degraded = degraded_answers t;
    refused = refusals t;
    breached = !(t.breached);
    granted =
      List.map (fun p -> (p.Params.eps, p.Params.delta)) (Budget.history t.budget);
    attempts = List.rev !(t.attempts);
    answered = snap.Online.snap_answered;
    mw_updates = snap.Online.snap_mw_updates;
    mw_log_weights = snap.Online.snap_mw_log_weights;
    sv_threshold = snap.Online.snap_sv.Pmw_dp.Sparse_vector.snap_noisy_threshold;
    sv_tops = snap.Online.snap_sv.Pmw_dp.Sparse_vector.snap_tops;
    sv_asked = snap.Online.snap_sv.Pmw_dp.Sparse_vector.snap_asked;
    sv_rng = snap.Online.snap_sv.Pmw_dp.Sparse_vector.snap_rng;
    rng = snap.Online.snap_rng;
    acct_rho = snap.Online.snap_oracle_rho;
    acct_events = List.map (fun p -> (p.Params.eps, p.Params.delta)) snap.Online.snap_oracle_events;
  }

let save t ~path = Checkpoint.write ~path (checkpoint t)

let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_fingerprint (fp : Checkpoint.fingerprint) config dataset =
  let now = fingerprint config dataset in
  let mismatch what = Error (Printf.sprintf "checkpoint fingerprint mismatch: %s differs" what) in
  if not (feq fp.Checkpoint.fp_eps now.Checkpoint.fp_eps && feq fp.fp_delta now.fp_delta) then
    mismatch "privacy budget"
  else if not (feq fp.fp_alpha now.fp_alpha) then mismatch "alpha"
  else if not (feq fp.fp_scale now.fp_scale) then mismatch "scale"
  else if fp.fp_k <> now.fp_k then mismatch "k"
  else if fp.fp_t_max <> now.fp_t_max then mismatch "t_max"
  else if not (feq fp.fp_eta now.fp_eta) then mismatch "eta"
  else if fp.fp_universe_size <> now.fp_universe_size || fp.fp_universe_name <> now.fp_universe_name
  then mismatch "universe"
  else if fp.fp_dataset_size <> now.fp_dataset_size then mismatch "dataset size"
  else Ok ()

let resume ?pool ?telemetry ?label ~config ~dataset ?oracles ?(retries = 0)
    ?(spend_claim = fun () -> None) ~rng (ckpt : Checkpoint.t) =
  let ( let* ) = Result.bind in
  let pool = match pool with Some p -> p | None -> Pmw_parallel.Pool.default () in
  let telemetry = match telemetry with Some t -> t | None -> Telemetry.null () in
  let oracles = match oracles with Some o -> o | None -> default_oracles ~pool () in
  let* () = check_fingerprint ckpt.Checkpoint.fingerprint config dataset in
  (* Epoch stamps must agree exactly: resuming epoch-e state against an
     epoch-e' dataset would silently answer against the wrong generation
     even when the sizes happen to match. *)
  let* () =
    let now = Pmw_data.Dataset.epoch dataset in
    if ckpt.Checkpoint.epoch = now then Ok ()
    else
      Error
        (Printf.sprintf "checkpoint is for dataset epoch %d, resuming against epoch %d"
           ckpt.Checkpoint.epoch now)
  in
  (* Replay the ledger verbatim: the resumed process starts from the exact
     spend of the killed one — nothing is re-debited, nothing forgiven. *)
  let budget = Budget.create ~telemetry ?label config.Config.privacy in
  let* () =
    List.fold_left
      (fun acc (eps, delta) ->
        let* () = acc in
        match Budget.request ~mechanism:"replay" budget (Params.create ~eps ~delta) with
        | Ok _ -> Ok ()
        | Error why -> Error ("checkpoint ledger does not replay: " ^ why))
      (Ok ()) ckpt.Checkpoint.granted
  in
  let t = make ~config ~pool ~dataset ~oracles ~retries ~spend_claim ~rng ~budget ~telemetry () in
  let* () =
    match
      Online.restore t.online
        {
          Online.snap_answered = ckpt.Checkpoint.answered;
          snap_mw_log_weights = ckpt.Checkpoint.mw_log_weights;
          snap_mw_updates = ckpt.Checkpoint.mw_updates;
          snap_sv =
            {
              Pmw_dp.Sparse_vector.snap_noisy_threshold = ckpt.Checkpoint.sv_threshold;
              snap_tops = ckpt.Checkpoint.sv_tops;
              snap_asked = ckpt.Checkpoint.sv_asked;
              snap_rng = ckpt.Checkpoint.sv_rng;
            };
          snap_rng = ckpt.Checkpoint.rng;
          snap_oracle_events =
            List.map (fun (eps, delta) -> Params.create ~eps ~delta) ckpt.Checkpoint.acct_events;
          snap_oracle_rho = ckpt.Checkpoint.acct_rho;
        }
    with
    | () -> Ok ()
    | exception Invalid_argument why -> Error ("checkpoint state rejected: " ^ why)
  in
  Telemetry.set_counter telemetry "queries" ckpt.Checkpoint.queries;
  Telemetry.set_counter telemetry "degraded_answers" ckpt.Checkpoint.degraded;
  Telemetry.set_counter telemetry "refusals" ckpt.Checkpoint.refused;
  (* Round numbering continues where the killed process stopped: a resumed
     trace reads as one session with an explicit restart mark, not as a new
     session starting over at round 1. *)
  Telemetry.set_round telemetry ckpt.Checkpoint.queries;
  Telemetry.mark telemetry "session.restart"
    ~fields:
      [
        ("queries", Telemetry.Int ckpt.Checkpoint.queries);
        ("eps_spent", Telemetry.Float (Budget.spent budget).Params.eps);
        ("delta_spent", Telemetry.Float (Budget.spent budget).Params.delta);
      ];
  t.breached := ckpt.Checkpoint.breached;
  t.attempts := List.rev ckpt.Checkpoint.attempts;
  Log.info (fun m ->
      m "session resumed at query %d (eps spent %g of %g)" (queries t)
        (Budget.spent budget).Params.eps config.Config.privacy.Params.eps);
  Ok t

let resume_path ?pool ?telemetry ?label ~config ~dataset ?oracles ?retries ?spend_claim ~rng
    ~path () =
  Result.bind (Checkpoint.read ~path) (fun ckpt ->
      resume ?pool ?telemetry ?label ~config ~dataset ?oracles ?retries ?spend_claim ~rng ckpt)
