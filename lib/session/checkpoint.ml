let version = 1
let magic = "pmw-session-checkpoint"

type fingerprint = {
  fp_eps : float;
  fp_delta : float;
  fp_alpha : float;
  fp_scale : float;
  fp_k : int;
  fp_t_max : int;
  fp_eta : float;
  fp_universe_size : int;
  fp_universe_name : string;
  fp_dataset_size : int;
}

type attempt = { at_oracle : string; at_eps : float; at_delta : float; at_ok : bool }

type t = {
  fingerprint : fingerprint;
  epoch : int;
  queries : int;
  degraded : int;
  refused : int;
  breached : bool;
  granted : (float * float) list;  (** budget ledger, oldest first *)
  attempts : attempt list;  (** oracle attempts, oldest first *)
  answered : int;
  mw_updates : int;
  mw_log_weights : float array;
  sv_threshold : float;
  sv_tops : int;
  sv_asked : int;
  sv_rng : int64 array;
  rng : int64 array;
  acct_rho : float;
  acct_events : (float * float) list;
}

(* --- checksum --- *)

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

(* --- encoding ---

   Text, line-oriented, one [key value...] pair per line. Floats are written
   as hex literals ("%h") so every bit round-trips; RNG words as hex int64.
   Free-form strings (universe / oracle names) are always the LAST field of
   their line and extend to the end of it. *)

let f = Printf.sprintf "%h"

let body t =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let fp = t.fingerprint in
  line "config %s %s %s %s %d %d %s" (f fp.fp_eps) (f fp.fp_delta) (f fp.fp_alpha) (f fp.fp_scale)
    fp.fp_k fp.fp_t_max (f fp.fp_eta);
  line "universe %d %s" fp.fp_universe_size fp.fp_universe_name;
  line "dataset %d" fp.fp_dataset_size;
  if t.epoch <> 0 then line "epoch %d" t.epoch;
  line "session %d %d %d %b" t.queries t.degraded t.refused t.breached;
  line "granted %d" (List.length t.granted);
  List.iteri (fun i (eps, delta) -> line "granted.%d %s %s" i (f eps) (f delta)) t.granted;
  line "attempts %d" (List.length t.attempts);
  List.iteri
    (fun i a -> line "attempt.%d %b %s %s %s" i a.at_ok (f a.at_eps) (f a.at_delta) a.at_oracle)
    t.attempts;
  line "answered %d" t.answered;
  line "mw %d %d" t.mw_updates (Array.length t.mw_log_weights);
  Buffer.add_string b "mw.logw";
  Array.iter
    (fun w ->
      Buffer.add_char b ' ';
      Buffer.add_string b (f w))
    t.mw_log_weights;
  Buffer.add_char b '\n';
  line "sv %s %d %d" (f t.sv_threshold) t.sv_tops t.sv_asked;
  line "sv.rng %Lx %Lx %Lx %Lx" t.sv_rng.(0) t.sv_rng.(1) t.sv_rng.(2) t.sv_rng.(3);
  line "rng %Lx %Lx %Lx %Lx" t.rng.(0) t.rng.(1) t.rng.(2) t.rng.(3);
  line "acct %s %d" (f t.acct_rho) (List.length t.acct_events);
  List.iteri (fun i (eps, delta) -> line "acct.%d %s %s" i (f eps) (f delta)) t.acct_events;
  Buffer.contents b

let to_string t =
  let body = body t in
  Printf.sprintf "%s %d\nchecksum %Lx\n%s" magic version (fnv1a64 body) body

(* --- decoding --- *)

let ( let* ) = Result.bind

let float_field what s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "checkpoint: bad float %S in %s" s what)

let int_field what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "checkpoint: bad int %S in %s" s what)

let bool_field what s =
  match bool_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "checkpoint: bad bool %S in %s" s what)

let int64_field what s =
  match Int64.of_string_opt ("0x" ^ s) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "checkpoint: bad word %S in %s" s what)

(* [key] -> fields after the key, split on spaces; [raw] keeps the rest of
   the line verbatim for keys whose last field is free-form. *)
let index_lines body =
  let tbl = Hashtbl.create 64 in
  String.split_on_char '\n' body
  |> List.iter (fun l ->
         if l <> "" then
           match String.index_opt l ' ' with
           | None -> Hashtbl.replace tbl l ""
           | Some i ->
               Hashtbl.replace tbl (String.sub l 0 i) (String.sub l (i + 1) (String.length l - i - 1)));
  tbl

let lookup tbl key =
  match Hashtbl.find_opt tbl key with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "checkpoint: missing field %S" key)

let fields s = String.split_on_char ' ' s |> List.filter (fun x -> x <> "")

let split_last_free ~count what s =
  (* First [count] space-separated fields, then the rest of the line. *)
  let rec take n acc rest =
    if n = 0 then Ok (List.rev acc, rest)
    else
      match String.index_opt rest ' ' with
      | None -> Error (Printf.sprintf "checkpoint: truncated %s line" what)
      | Some i ->
          take (n - 1) (String.sub rest 0 i :: acc) (String.sub rest (i + 1) (String.length rest - i - 1))
  in
  take count [] s

let parse_rng what s =
  match fields s with
  | [ a; b; c; d ] ->
      let* a = int64_field what a in
      let* b = int64_field what b in
      let* c = int64_field what c in
      let* d = int64_field what d in
      Ok [| a; b; c; d |]
  | _ -> Error (Printf.sprintf "checkpoint: %s needs 4 words" what)

let parse_pairs tbl ~prefix ~count =
  let rec loop i acc =
    if i = count then Ok (List.rev acc)
    else
      let key = Printf.sprintf "%s.%d" prefix i in
      let* v = lookup tbl key in
      match fields v with
      | [ eps; delta ] ->
          let* eps = float_field key eps in
          let* delta = float_field key delta in
          loop (i + 1) ((eps, delta) :: acc)
      | _ -> Error (Printf.sprintf "checkpoint: bad %s line" key)
  in
  loop 0 []

let of_string s =
  let* header, rest =
    match String.index_opt s '\n' with
    | None -> Error "checkpoint: empty input"
    | Some i -> Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  let* () =
    match fields header with
    | [ m; v ] when m = magic ->
        if v = string_of_int version then Ok ()
        else Error (Printf.sprintf "checkpoint: unsupported version %s (this build reads %d)" v version)
    | _ -> Error "checkpoint: not a pmw session checkpoint"
  in
  let* checksum_line, body =
    match String.index_opt rest '\n' with
    | None -> Error "checkpoint: truncated after header"
    | Some i -> Ok (String.sub rest 0 i, String.sub rest (i + 1) (String.length rest - i - 1))
  in
  let* expected =
    match fields checksum_line with
    | [ "checksum"; v ] -> int64_field "checksum" v
    | _ -> Error "checkpoint: missing checksum line"
  in
  let actual = fnv1a64 body in
  let* () =
    if Int64.equal expected actual then Ok ()
    else Error (Printf.sprintf "checkpoint: checksum mismatch (stored %Lx, computed %Lx) — corrupt file" expected actual)
  in
  let tbl = index_lines body in
  let* config = lookup tbl "config" in
  let* fingerprint =
    match fields config with
    | [ eps; delta; alpha; scale; k; t_max; eta ] ->
        let* fp_eps = float_field "config" eps in
        let* fp_delta = float_field "config" delta in
        let* fp_alpha = float_field "config" alpha in
        let* fp_scale = float_field "config" scale in
        let* fp_k = int_field "config" k in
        let* fp_t_max = int_field "config" t_max in
        let* fp_eta = float_field "config" eta in
        let* universe = lookup tbl "universe" in
        let* us, uname = split_last_free ~count:1 "universe" universe in
        let* fp_universe_size = int_field "universe" (List.hd us) in
        let* dataset = lookup tbl "dataset" in
        let* fp_dataset_size = int_field "dataset" dataset in
        Ok
          {
            fp_eps;
            fp_delta;
            fp_alpha;
            fp_scale;
            fp_k;
            fp_t_max;
            fp_eta;
            fp_universe_size;
            fp_universe_name = uname;
            fp_dataset_size;
          }
    | _ -> Error "checkpoint: bad config line"
  in
  (* Optional: absent in checkpoints written before datasets were
     versioned — those are epoch-0 by definition. *)
  let* epoch =
    match Hashtbl.find_opt tbl "epoch" with
    | None -> Ok 0
    | Some v -> int_field "epoch" v
  in
  let* session = lookup tbl "session" in
  let* queries, degraded, refused, breached =
    match fields session with
    | [ q; d; r; b ] ->
        let* q = int_field "session" q in
        let* d = int_field "session" d in
        let* r = int_field "session" r in
        let* b = bool_field "session" b in
        Ok (q, d, r, b)
    | _ -> Error "checkpoint: bad session line"
  in
  let* granted_count = Result.bind (lookup tbl "granted") (int_field "granted") in
  let* granted = parse_pairs tbl ~prefix:"granted" ~count:granted_count in
  let* attempt_count = Result.bind (lookup tbl "attempts") (int_field "attempts") in
  let* attempts =
    let rec loop i acc =
      if i = attempt_count then Ok (List.rev acc)
      else
        let key = Printf.sprintf "attempt.%d" i in
        let* v = lookup tbl key in
        let* front, at_oracle = split_last_free ~count:3 key v in
        match front with
        | [ ok; eps; delta ] ->
            let* at_ok = bool_field key ok in
            let* at_eps = float_field key eps in
            let* at_delta = float_field key delta in
            loop (i + 1) ({ at_oracle; at_eps; at_delta; at_ok } :: acc)
        | _ -> Error (Printf.sprintf "checkpoint: bad %s line" key)
    in
    loop 0 []
  in
  let* answered = Result.bind (lookup tbl "answered") (int_field "answered") in
  let* mw = lookup tbl "mw" in
  let* mw_updates, mw_len =
    match fields mw with
    | [ u; n ] ->
        let* u = int_field "mw" u in
        let* n = int_field "mw" n in
        Ok (u, n)
    | _ -> Error "checkpoint: bad mw line"
  in
  let* logw_line = lookup tbl "mw.logw" in
  let* mw_log_weights =
    let parts = fields logw_line in
    if List.length parts <> mw_len then
      Error
        (Printf.sprintf "checkpoint: mw.logw has %d entries, expected %d" (List.length parts) mw_len)
    else
      let arr = Array.make mw_len 0. in
      let rec fill i = function
        | [] -> Ok arr
        | p :: rest ->
            let* v = float_field "mw.logw" p in
            arr.(i) <- v;
            fill (i + 1) rest
      in
      fill 0 parts
  in
  let* sv = lookup tbl "sv" in
  let* sv_threshold, sv_tops, sv_asked =
    match fields sv with
    | [ th; tops; asked ] ->
        let* th = float_field "sv" th in
        let* tops = int_field "sv" tops in
        let* asked = int_field "sv" asked in
        Ok (th, tops, asked)
    | _ -> Error "checkpoint: bad sv line"
  in
  let* sv_rng = Result.bind (lookup tbl "sv.rng") (parse_rng "sv.rng") in
  let* rng = Result.bind (lookup tbl "rng") (parse_rng "rng") in
  let* acct = lookup tbl "acct" in
  let* acct_rho, acct_count =
    match fields acct with
    | [ rho; n ] ->
        let* rho = float_field "acct" rho in
        let* n = int_field "acct" n in
        Ok (rho, n)
    | _ -> Error "checkpoint: bad acct line"
  in
  let* acct_events = parse_pairs tbl ~prefix:"acct" ~count:acct_count in
  Ok
    {
      fingerprint;
      epoch;
      queries;
      degraded;
      refused;
      breached;
      granted;
      attempts;
      answered;
      mw_updates;
      mw_log_weights;
      sv_threshold;
      sv_tops;
      sv_asked;
      sv_rng;
      rng;
      acct_rho;
      acct_events;
    }

(* --- file I/O --- *)

(* rename(2) orders the directory entry, not the data: without the fsync
   on the tmp file a crash just after the rename can expose a checkpoint
   whose name is durable but whose bytes are not (empty or stale on ext4
   with delayed allocation); without the directory fsync the rename itself
   may be lost, resurrecting the previous checkpoint. Both syncs make the
   swap a real commit point. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* some filesystems refuse fsync on a directory fd — best effort *)
          try Unix.fsync fd with Unix.Unix_error _ -> ())

let write ~path t =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let s = to_string t in
      let b = Bytes.unsafe_of_string s in
      let n = Bytes.length b in
      let written = ref 0 in
      while !written < n do
        match Unix.write fd b !written (n - !written) with
        | k -> written := !written + k
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      Unix.fsync fd);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let read ~path =
  if not (Sys.file_exists path) then Error (Printf.sprintf "checkpoint: no such file %s" path)
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_string s
  end

let attempts_for t name =
  List.length (List.filter (fun a -> a.at_oracle = name) t.attempts)
