(** Versioned, checksummed text serialization of a session's full mutable
    state — everything a killed process needs to resume {e without
    re-spending ε}: the MW log-weights, the sparse-vector epoch (noisy
    threshold, counters, generator), the budget ledger, the oracle-attempt
    log, the query counters and both RNG states.

    What is deliberately NOT serialized: the sensitive dataset (a checkpoint
    must be safe to place on disk next to the process — it only contains
    state that is already part of the DP-released transcript plus internal
    noise values), the oracle implementations, and the config. The caller
    re-supplies those at resume time; a {!fingerprint} of the config,
    universe and dataset size is stored and checked so a mismatched resume
    fails loudly instead of silently corrupting the privacy accounting.

    Format: a [magic version] line, a [checksum] line (FNV-1a 64 of the
    body), then one [key value…] pair per line. Floats are hex literals
    ([%h]) so every bit round-trips; RNG words are hex int64. Any edit to
    the body invalidates the checksum. *)

type fingerprint = {
  fp_eps : float;
  fp_delta : float;
  fp_alpha : float;
  fp_scale : float;
  fp_k : int;
  fp_t_max : int;
  fp_eta : float;
  fp_universe_size : int;
  fp_universe_name : string;
  fp_dataset_size : int;
}

type attempt = { at_oracle : string; at_eps : float; at_delta : float; at_ok : bool }

type t = {
  fingerprint : fingerprint;
  epoch : int;
      (** dataset generation this state was taken against (0 = unversioned;
          the line is omitted on write so epoch-0 checkpoints are
          byte-identical to pre-epoch ones, and absent on read means 0) *)
  queries : int;  (** queries the session has processed (any verdict) *)
  degraded : int;
  refused : int;
  breached : bool;  (** a misreported spend drained the ledger *)
  granted : (float * float) list;  (** budget ledger slices, oldest first *)
  attempts : attempt list;  (** oracle attempts, oldest first *)
  answered : int;  (** queries fed to the SV stream *)
  mw_updates : int;
  mw_log_weights : float array;
  sv_threshold : float;
  sv_tops : int;
  sv_asked : int;
  sv_rng : int64 array;
  rng : int64 array;
  acct_rho : float;
  acct_events : (float * float) list;
}

val version : int

val to_string : t -> string

val of_string : string -> (t, string) result
(** Rejects wrong magic/version, checksum mismatches (corruption), and any
    missing or malformed field — never raises on bad input. *)

val write : path:string -> t -> unit
(** Atomic {e and} durable: writes [path.tmp], fsyncs it, renames over
    [path], then fsyncs the parent directory — a crash at any point leaves
    either the previous checkpoint or the new one, with the bytes of
    whichever name survives guaranteed on disk. *)

val fsync_dir : string -> unit
(** Best-effort fsync of a directory fd — the second half of the atomic
    rename commit (making the new name itself durable). Exposed for other
    layers (epoch snapshots, journal compaction) that use the same
    tmp-fsync-rename-dirsync pattern. *)

val read : path:string -> (t, string) result

val attempts_for : t -> string -> int
(** Number of recorded attempts by the named oracle — what
    [Faulty_oracle.set_calls] needs to replay a fault schedule on resume. *)
