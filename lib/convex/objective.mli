(** Objectives: a loss averaged over a data distribution, as a closure the
    solvers can minimize.

    The paper evaluates losses both against histograms (the public hypothesis
    [D̂ₜ] and the true histogram [D]) and against raw datasets (the
    single-query oracles); both are provided. *)

type t = {
  dim : int;
  f : Pmw_linalg.Vec.t -> float;
  grad : Pmw_linalg.Vec.t -> Pmw_linalg.Vec.t;
}

val of_histogram : ?pool:Pmw_parallel.Pool.t -> Loss.t -> Pmw_data.Histogram.t -> dim:int -> t
(** [ℓ(θ; D) = Σ_x D(x) ℓ(θ; x)] and its gradient, evaluated over the
    histogram's support with chunked deterministic sweeps on [pool]
    (default: the shared pool).

    Construction builds a per-query memo table: the support indices, their
    weights and — for GLM losses — the decoded feature vectors [φ(x)] are
    extracted {e once}, and the inner products [⟨θ, φ(x)⟩] are cached and
    shared between [f θ] and [grad θ] at the same [θ], so solver iterations
    stop re-decoding the universe and re-computing identical dot products. *)

val of_dataset : ?pool:Pmw_parallel.Pool.t -> Loss.t -> Pmw_data.Dataset.t -> dim:int -> t
(** [(1/n) Σᵢ ℓ(θ; xᵢ)]. *)

val of_fn : dim:int -> f:(Pmw_linalg.Vec.t -> float) -> grad:(Pmw_linalg.Vec.t -> Pmw_linalg.Vec.t) -> t

val add_ridge : t -> lambda:float -> t
(** The objective plus [(λ/2)‖θ‖²] — regularization applied at the objective
    level (used by output perturbation). *)
