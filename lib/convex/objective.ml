module Vec = Pmw_linalg.Vec
module Special = Pmw_linalg.Special
module Pool = Pmw_parallel.Pool

type t = { dim : int; f : Vec.t -> float; grad : Vec.t -> Vec.t }

(* Histogram objectives are evaluated hundreds of times per solve (two solver
   arms, Armijo backtracking, suffix averaging), each evaluation an O(|X|)
   sweep. Two memo layers cut the repeated work:

   - a per-objective decoded-point table: the support (indices of positive
     mass), weights and — for GLM losses — the feature vectors φ(x) are
     extracted once when the objective is built, instead of re-decoded on
     every [f]/[grad] call of every solver iteration;

   - a last-θ cache: GLM losses share the inner products zᵢ = ⟨θ, φᵢ⟩
     between [f θ] and [grad θ] at the same point (solvers routinely call
     both), so each θ pays for its dot products once.

   Everything is chunked on the pool with index-ordered tree combines, so the
   results are bit-identical whatever the pool size. *)

type 'a support = { weights : float array; points : 'a array }

let build_support hist decode =
  let n = Pmw_data.Histogram.size hist in
  let m = ref 0 in
  for i = 0 to n - 1 do
    if Pmw_data.Histogram.get hist i > 0. then incr m
  done;
  let weights = Array.make !m 0. in
  let points = Array.make !m (decode 0) in
  let j = ref 0 in
  for i = 0 to n - 1 do
    let w = Pmw_data.Histogram.get hist i in
    if w > 0. then begin
      weights.(!j) <- w;
      points.(!j) <- decode i;
      incr j
    end
  done;
  { weights; points }

let of_histogram ?pool (loss : Loss.t) hist ~dim =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let universe = Pmw_data.Histogram.universe hist in
  let decode i = Pmw_data.Universe.get universe i in
  match loss.Loss.glm with
  | Some g ->
      let { weights; points = phi } = build_support hist (fun i -> g.Loss.feature (decode i)) in
      let m = Array.length weights in
      let z = Array.make m 0. in
      let cached_theta = ref [||] in
      (* Structural equality: a hit requires equal coordinates, which implies
         equal zᵢ — the cache can never go stale. *)
      let ensure_z theta =
        if not (!cached_theta = theta) then begin
          Pool.parallel_for pool ~n:m (fun lo hi ->
              for i = lo to hi - 1 do
                z.(i) <- Vec.dot theta phi.(i)
              done);
          cached_theta := Array.copy theta
        end
      in
      let f theta =
        ensure_z theta;
        Pool.parallel_reduce pool ~n:m ~neutral:0. ~combine:( +. )
          ~chunk:(fun lo hi -> Special.kahan_range lo hi (fun i -> weights.(i) *. g.Loss.link z.(i)))
      in
      let grad theta =
        ensure_z theta;
        let acc =
          Pool.parallel_reduce pool ~n:m
            ~neutral:(Vec.create dim)
            ~chunk:(fun lo hi ->
              let acc = Vec.create dim in
              for i = lo to hi - 1 do
                Vec.axpy ~alpha:(weights.(i) *. g.Loss.link_deriv z.(i)) ~x:phi.(i) ~y:acc
              done;
              acc)
            ~combine:(fun a b ->
              Vec.add_inplace a b;
              a)
        in
        acc
      in
      { dim; f; grad }
  | None ->
      let { weights; points } = build_support hist decode in
      let m = Array.length weights in
      let f theta =
        Pool.parallel_reduce pool ~n:m ~neutral:0. ~combine:( +. )
          ~chunk:(fun lo hi ->
            Special.kahan_range lo hi (fun i -> weights.(i) *. loss.Loss.value theta points.(i)))
      in
      let grad theta =
        Pool.parallel_reduce pool ~n:m
          ~neutral:(Vec.create dim)
          ~chunk:(fun lo hi ->
            let acc = Vec.create dim in
            for i = lo to hi - 1 do
              Vec.axpy ~alpha:weights.(i) ~x:(loss.Loss.grad theta points.(i)) ~y:acc
            done;
            acc)
          ~combine:(fun a b ->
            Vec.add_inplace a b;
            a)
      in
      { dim; f; grad }

(* The dataset's histogram is an exact summary of the empirical objective, so
   evaluate through it: O(|X|) per evaluation instead of O(n). *)
let of_dataset ?pool (loss : Loss.t) ds ~dim =
  of_histogram ?pool loss (Pmw_data.Dataset.histogram ds) ~dim

let of_fn ~dim ~f ~grad = { dim; f; grad }

let add_ridge t ~lambda =
  if lambda < 0. then invalid_arg "Objective.add_ridge: lambda must be non-negative";
  {
    t with
    f = (fun theta -> t.f theta +. (0.5 *. lambda *. Vec.norm2_sq theta));
    grad = (fun theta -> Vec.add (t.grad theta) (Vec.scale lambda theta));
  }
