module Vec = Pmw_linalg.Vec

type report = { theta : Vec.t; value : float; iterations : int }

let check_start domain = function
  | Some theta0 ->
      if Vec.dim theta0 <> Domain.dim domain then
        invalid_arg "Solve: theta0 dimension mismatch";
      Domain.project domain theta0
  | None -> Domain.center domain

(* Run a projected first-order loop with the given step-size schedule,
   tracking both the best iterate seen and the suffix average (last half);
   return whichever evaluates lower. *)
let descend ~theta0 ~iters ~step domain (obj : Objective.t) =
  let theta = ref theta0 in
  let best = ref theta0 in
  let best_v = ref (obj.f theta0) in
  let avg = Vec.create obj.dim in
  let avg_count = ref 0 in
  let suffix_start = iters / 2 in
  for t = 1 to iters do
    let g = obj.grad !theta in
    let next = Vec.sub !theta (Vec.scale (step t g) g) in
    theta := Domain.project domain next;
    if t > suffix_start then begin
      Vec.add_inplace avg !theta;
      incr avg_count
    end;
    let v = obj.f !theta in
    if v < !best_v then begin
      best := !theta;
      best_v := v
    end
  done;
  if !avg_count > 0 then begin
    let mean = Vec.scale (1. /. float_of_int !avg_count) avg in
    let mean = Domain.project domain mean in
    let v = obj.f mean in
    if v < !best_v then begin
      best := mean;
      best_v := v
    end
  end;
  { theta = !best; value = !best_v; iterations = iters }

let projected_subgradient ?theta0 ~iters ~lipschitz domain obj =
  if iters <= 0 then invalid_arg "Solve.projected_subgradient: iters must be positive";
  if lipschitz <= 0. then invalid_arg "Solve.projected_subgradient: lipschitz must be positive";
  let theta0 = check_start domain theta0 in
  let diameter = Float.max (Domain.diameter domain) 1e-12 in
  let step t _g = diameter /. (lipschitz *. sqrt (float_of_int t)) in
  descend ~theta0 ~iters ~step domain obj

let strongly_convex_subgradient ?theta0 ~iters ~sigma domain obj =
  if iters <= 0 then invalid_arg "Solve.strongly_convex_subgradient: iters must be positive";
  if sigma <= 0. then invalid_arg "Solve.strongly_convex_subgradient: sigma must be positive";
  let theta0 = check_start domain theta0 in
  let step t _g = 1. /. (sigma *. float_of_int t) in
  descend ~theta0 ~iters ~step domain obj

let gradient_descent_armijo ?theta0 ~iters domain (obj : Objective.t) =
  if iters <= 0 then invalid_arg "Solve.gradient_descent_armijo: iters must be positive";
  let theta = ref (check_start domain theta0) in
  let v = ref (obj.f !theta) in
  let step = ref 1. in
  let evals = ref 1 in
  (try
     for _ = 1 to iters do
       let g = obj.grad !theta in
       let gnorm_sq = Vec.norm2_sq g in
       if gnorm_sq < 1e-24 then raise Exit;
       (* Backtrack until sufficient decrease (projected Armijo). *)
       let rec backtrack s tries =
         if tries = 0 then None
         else
           let cand = Domain.project domain (Vec.sub !theta (Vec.scale s g)) in
           let cv = obj.f cand in
           incr evals;
           let decrease = Vec.dist2 cand !theta in
           if cv <= !v -. (1e-4 *. decrease *. decrease /. Float.max s 1e-12) && cv < !v then
             Some (cand, cv, s)
           else backtrack (s /. 2.) (tries - 1)
       in
       match backtrack !step 30 with
       | None -> raise Exit
       | Some (cand, cv, s) ->
           theta := cand;
           v := cv;
           (* Let the step grow back so a single hard region does not pin it. *)
           step := Float.min (s *. 2.) 1e6
     done
   with Exit -> ());
  { theta = !theta; value = !v; iterations = !evals }

let accelerated_gradient ?theta0 ~iters ~smoothness domain (obj : Objective.t) =
  if iters <= 0 then invalid_arg "Solve.accelerated_gradient: iters must be positive";
  if smoothness <= 0. then invalid_arg "Solve.accelerated_gradient: smoothness must be positive";
  let step = 1. /. smoothness in
  let theta = ref (check_start domain theta0) in
  let momentum = ref (Vec.copy !theta) in
  let t_acc = ref 1. in
  let best = ref !theta and best_v = ref (obj.f !theta) in
  for _ = 1 to iters do
    let g = obj.grad !momentum in
    let next = Domain.project domain (Vec.sub !momentum (Vec.scale step g)) in
    let t_next = 0.5 *. (1. +. sqrt (1. +. (4. *. !t_acc *. !t_acc))) in
    let beta = (!t_acc -. 1.) /. t_next in
    momentum := Vec.add next (Vec.scale beta (Vec.sub next !theta));
    theta := next;
    t_acc := t_next;
    let v = obj.f next in
    if v < !best_v then begin
      best := next;
      best_v := v
    end
  done;
  { theta = !best; value = !best_v; iterations = iters }

let frank_wolfe ~iters ~radius (obj : Objective.t) =
  if iters <= 0 then invalid_arg "Solve.frank_wolfe: iters must be positive";
  if radius <= 0. then invalid_arg "Solve.frank_wolfe: radius must be positive";
  let theta = ref (Vec.create obj.dim) in
  for t = 1 to iters do
    let g = obj.grad !theta in
    let gn = Vec.norm2 g in
    (* Linear minimization oracle over the ball: the antipode of the gradient. *)
    let s = if gn < 1e-18 then Vec.create obj.dim else Vec.scale (-.radius /. gn) g in
    let gamma = 2. /. float_of_int (t + 2) in
    theta := Vec.lerp !theta s gamma
  done;
  { theta = !theta; value = obj.f !theta; iterations = iters }

let ternary_search ?(iters = 200) ~lo ~hi f =
  if hi < lo then invalid_arg "Solve.ternary_search: hi < lo";
  let lo = ref lo and hi = ref hi in
  for _ = 1 to iters do
    let m1 = !lo +. ((!hi -. !lo) /. 3.) in
    let m2 = !hi -. ((!hi -. !lo) /. 3.) in
    if f m1 <= f m2 then hi := m2 else lo := m1
  done;
  0.5 *. (!lo +. !hi)

let minimize ?(iters = 400) ?theta0 ?(lipschitz = 1.) ?(strong_convexity = 0.) domain
    (obj : Objective.t) =
  match Domain.kind domain with
  | Domain.Box { lo; hi } when Domain.dim domain = 1 ->
      let theta = ternary_search ~iters:100 ~lo ~hi (fun x -> obj.f [| x |]) in
      { theta = [| theta |]; value = obj.f [| theta |]; iterations = 100 }
  | Domain.L2_ball _ | Domain.Box _ | Domain.Simplex ->
      let arm1 = gradient_descent_armijo ?theta0 ~iters domain obj in
      let arm2 =
        if strong_convexity > 0. then
          strongly_convex_subgradient ?theta0 ~iters ~sigma:strong_convexity domain obj
        else projected_subgradient ?theta0 ~iters ~lipschitz domain obj
      in
      let best = if arm1.value <= arm2.value then arm1 else arm2 in
      { best with iterations = arm1.iterations + arm2.iterations }

let minimize_loss_on_histogram ?pool ?iters (loss : Loss.t) domain hist =
  let obj = Objective.of_histogram ?pool loss hist ~dim:(Domain.dim domain) in
  minimize ?iters ~lipschitz:(Float.max loss.Loss.lipschitz 1e-9)
    ~strong_convexity:loss.Loss.strong_convexity domain obj

let minimize_loss_on_dataset ?pool ?iters (loss : Loss.t) domain ds =
  let obj = Objective.of_dataset ?pool loss ds ~dim:(Domain.dim domain) in
  minimize ?iters ~lipschitz:(Float.max loss.Loss.lipschitz 1e-9)
    ~strong_convexity:loss.Loss.strong_convexity domain obj
