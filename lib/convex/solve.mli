(** Convex minimization over a {!Domain.t}.

    These are the non-private solvers: they compute the [argmin] operations
    the algorithms of the paper treat as primitive (the public minimization
    [argmin_θ ℓ(θ; D̂ₜ)] in Figure 3, the reference answers in experiments,
    and the inner loop of the single-query oracles).

    All first-order methods are projected and need only subgradients, so the
    non-smooth losses (hinge, absolute, quantile) are handled. {!minimize}
    is the robust entry point: it runs the schedules appropriate to the
    objective's constants and returns the best iterate found. *)

type report = {
  theta : Pmw_linalg.Vec.t;  (** the best point found (inside the domain) *)
  value : float;  (** objective value at [theta] *)
  iterations : int;  (** total gradient evaluations spent *)
}

val projected_subgradient :
  ?theta0:Pmw_linalg.Vec.t ->
  iters:int ->
  lipschitz:float ->
  Domain.t ->
  Objective.t ->
  report
(** Step size [D/(L√t)], suffix averaging; the classical
    [O(DL/√T)]-convergent scheme for Lipschitz convex objectives. *)

val strongly_convex_subgradient :
  ?theta0:Pmw_linalg.Vec.t ->
  iters:int ->
  sigma:float ->
  Domain.t ->
  Objective.t ->
  report
(** Step size [1/(σt)] with suffix averaging; [O(L²/(σT))] convergence. *)

val gradient_descent_armijo :
  ?theta0:Pmw_linalg.Vec.t ->
  iters:int ->
  Domain.t ->
  Objective.t ->
  report
(** Projected gradient descent with Armijo backtracking — fast on the smooth
    losses, used as one arm of {!minimize}. *)

val accelerated_gradient :
  ?theta0:Pmw_linalg.Vec.t ->
  iters:int ->
  smoothness:float ->
  Domain.t ->
  Objective.t ->
  report
(** Nesterov's accelerated projected gradient (FISTA-style momentum) with
    fixed step [1/smoothness] — [O(1/T²)] on [smoothness]-smooth objectives,
    versus [O(1/T)] for plain projected gradient. Only sound on smooth
    losses; the a1 solver-ablation bench compares all the schedules. *)

val frank_wolfe : iters:int -> radius:float -> Objective.t -> report
(** Conditional gradient over the L2 ball of the given radius (projection
    free; exercised in tests and the solver ablation bench). *)

val ternary_search : ?iters:int -> lo:float -> hi:float -> (float -> float) -> float
(** Exact minimization of a unimodal scalar function; used for 1-dimensional
    box domains where it beats any first-order schedule. *)

val minimize :
  ?iters:int ->
  ?theta0:Pmw_linalg.Vec.t ->
  ?lipschitz:float ->
  ?strong_convexity:float ->
  Domain.t ->
  Objective.t ->
  report
(** Robust dispatch (default [iters = 400] per arm): 1-d boxes use ternary
    search; otherwise runs Armijo descent and the (strongly-)convex
    subgradient schedule and returns whichever found the lower value. *)

val minimize_loss_on_histogram :
  ?pool:Pmw_parallel.Pool.t -> ?iters:int -> Loss.t -> Domain.t -> Pmw_data.Histogram.t -> report
(** [argmin_θ ℓ(θ; D̂)] — the public minimization of Figure 3. The per-
    iteration O(|X|) objective/gradient sweeps run on [pool] (default: the
    shared pool) through the memoized {!Objective.of_histogram}. *)

val minimize_loss_on_dataset :
  ?pool:Pmw_parallel.Pool.t -> ?iters:int -> Loss.t -> Domain.t -> Pmw_data.Dataset.t -> report
