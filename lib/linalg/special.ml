module Pool = Pmw_parallel.Pool

(* Compensated (Kahan) sum of [f i] over [lo, hi) — the per-chunk kernel of
   the deterministic reductions below. *)
let kahan_range lo hi f =
  let sum = ref 0. and c = ref 0. in
  for i = lo to hi - 1 do
    let y = f i -. !c in
    let t = !sum +. y in
    c := t -. !sum -. y;
    sum := t
  done;
  !sum

let max_elt ?pool a =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  Pool.parallel_reduce pool ~n:(Array.length a) ~neutral:neg_infinity ~combine:Float.max
    ~chunk:(fun lo hi ->
      let m = ref neg_infinity in
      for i = lo to hi - 1 do
        if a.(i) > !m then m := a.(i)
      done;
      !m)

let log_sum_exp ?pool a =
  let n = Array.length a in
  if n = 0 then neg_infinity
  else begin
    let pool = match pool with Some p -> p | None -> Pool.default () in
    let m = max_elt ~pool a in
    if m = neg_infinity then neg_infinity
    else begin
      let acc =
        Pool.parallel_reduce pool ~n ~neutral:0. ~combine:( +. )
          ~chunk:(fun lo hi -> kahan_range lo hi (fun i -> exp (a.(i) -. m)))
      in
      m +. log acc
    end
  end

(* Fused softmax: one exp per element, written straight into [dst], with the
   normalizing sum accumulated in the same pass (the textbook version pays a
   second full exp sweep inside log_sum_exp and then discards it). *)
let softmax_into ?pool ~dst a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Special.softmax: empty array";
  if Array.length dst <> n then invalid_arg "Special.softmax_into: dst length mismatch";
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let m = max_elt ~pool a in
  if m = neg_infinity then invalid_arg "Special.softmax: no finite entry";
  let total =
    Pool.parallel_reduce pool ~n ~neutral:0. ~combine:( +. )
      ~chunk:(fun lo hi ->
        kahan_range lo hi (fun i ->
            let e = exp (a.(i) -. m) in
            dst.(i) <- e;
            e))
  in
  Pool.parallel_for pool ~n (fun lo hi ->
      for i = lo to hi - 1 do
        dst.(i) <- dst.(i) /. total
      done)

let softmax ?pool a =
  let dst = Array.make (Array.length a) 0. in
  softmax_into ?pool ~dst a;
  dst

let logistic z = if z >= 0. then 1. /. (1. +. exp (-.z)) else exp z /. (1. +. exp z)

let log1p_exp z = if z > 0. then z +. log1p (exp (-.z)) else log1p (exp z)

let clamp ~lo ~hi x = Float.min hi (Float.max lo x)

let erf x =
  (* Abramowitz & Stegun 7.1.26. *)
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let a1 = 0.254829592
  and a2 = -0.284496736
  and a3 = 1.421413741
  and a4 = -1.453152027
  and a5 = 1.061405429
  and p = 0.3275911 in
  let t = 1. /. (1. +. (p *. x)) in
  let poly = ((((((((a5 *. t) +. a4) *. t) +. a3) *. t) +. a2) *. t) +. a1) *. t in
  sign *. (1. -. (poly *. exp (-.(x *. x))))

let gaussian_cdf ~mu ~sigma x =
  if sigma <= 0. then invalid_arg "Special.gaussian_cdf: sigma must be positive";
  0.5 *. (1. +. erf ((x -. mu) /. (sigma *. sqrt 2.)))

let binary_search_root ?(iters = 200) ~lo ~hi f =
  if hi < lo then invalid_arg "Special.binary_search_root: hi < lo";
  let flo = f lo in
  let rec loop lo hi flo i =
    if i = 0 then 0.5 *. (lo +. hi)
    else
      let mid = 0.5 *. (lo +. hi) in
      let fmid = f mid in
      if (flo <= 0. && fmid <= 0.) || (flo >= 0. && fmid >= 0.) then loop mid hi fmid (i - 1)
      else loop lo mid flo (i - 1)
  in
  loop lo hi flo iters
