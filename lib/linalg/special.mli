(** Scalar numeric helpers shared by the mechanisms and solvers.

    The array kernels ([log_sum_exp], [softmax]) run on a
    {!Pmw_parallel.Pool} (the shared default pool when none is given) with
    deterministic chunking: every result is bit-identical whatever the pool
    size. [neg_infinity] entries carry exactly zero mass through both. *)

val kahan_range : int -> int -> (int -> float) -> float
(** [kahan_range lo hi f] — compensated sum of [f i] over [lo, hi); the
    per-chunk building block of the deterministic reductions. *)

val max_elt : ?pool:Pmw_parallel.Pool.t -> float array -> float
(** Maximum entry ([neg_infinity] on the empty array). *)

val log_sum_exp : ?pool:Pmw_parallel.Pool.t -> float array -> float
(** [log Σᵢ exp(aᵢ)], computed stably by shifting by the maximum. Returns
    [neg_infinity] on the empty array or when every entry is
    [neg_infinity]. *)

val softmax : ?pool:Pmw_parallel.Pool.t -> float array -> float array
(** Stable softmax: [exp(aᵢ - log_sum_exp a)]. Sums to 1 up to round-off;
    computed fused (a single exp per element).
    @raise Invalid_argument on an empty array or when no entry is finite. *)

val softmax_into : ?pool:Pmw_parallel.Pool.t -> dst:float array -> float array -> unit
(** {!softmax} written into a caller-supplied buffer — the allocation-free
    hot path. [dst] may not alias the input.
    @raise Invalid_argument on a length mismatch. *)

val logistic : float -> float
(** [1 / (1 + e^{-z})], stable for large |z|. *)

val log1p_exp : float -> float
(** [log(1 + e^z)] (the logistic loss), stable for large |z|. *)

val clamp : lo:float -> hi:float -> float -> float

val erf : float -> float
(** Error function, Abramowitz–Stegun 7.1.26 rational approximation
    (|error| <= 1.5e-7) — enough for the Gaussian-mechanism calibration and
    test assertions. *)

val gaussian_cdf : mu:float -> sigma:float -> float -> float

val binary_search_root : ?iters:int -> lo:float -> hi:float -> (float -> float) -> float
(** Bisection root of a monotone function [f] with [f lo <= 0 <= f hi] (or the
    reverse); returns the midpoint after [iters] (default 200) halvings. *)
