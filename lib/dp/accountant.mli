(** Privacy-loss accounting.

    A mutable ledger of the [(ε, δ)] costs of the mechanisms an algorithm has
    invoked, with three ways to bound the total: basic composition, the
    strong composition theorem (Theorem 3.10), and a zero-concentrated-DP
    (zCDP) accountant (Bun–Steinke 2016) as an extension — the paper predates
    zCDP; we include it to show the modern accounting gives strictly tighter
    totals on the same event streams (exercised in tests and the ablation
    bench). *)

type t

val create : ?telemetry:Pmw_telemetry.Telemetry.t -> ?label:string -> unit -> t
(** [telemetry] mirrors every debit into the telemetry privacy-ledger
    timeline under the ledger tag [label] (default ["accountant"]), so the
    cumulative [(ε, δ)] curve can be replayed from a trace alone. Without
    it, the ledger behaves exactly as before. *)

val spend : ?mechanism:string -> t -> Params.t -> unit
(** Record one invocation of an [(ε, δ)]-DP mechanism. [mechanism] (default
    ["mechanism"]) tags the debit in the telemetry timeline. *)

val spend_gaussian : t -> sigma:float -> sensitivity:float -> unit
(** Record a Gaussian mechanism by its noise multiplier — enters the zCDP
    ledger exactly as [ρ = Δ²/(2σ²)] and the (ε, δ) ledger as [(Δ/σ ·
    √(2 ln(1.25/1e-6)), 1e-6)]-equivalents only through {!total_zcdp}.
    Emits a ["ledger.gaussian"] telemetry mark (carrying [ρ]) rather than a
    debit, since the event has no standalone [(ε, δ)] cost. *)

val count : t -> int

val events : t -> Params.t list
(** The recorded per-event costs, oldest first — for checkpointing. *)

val restore : t -> events:Params.t list -> rho:float -> unit
(** Overwrite the ledger with checkpointed events (oldest first) and
    accumulated zCDP [ρ] ([ρ] is carried explicitly because
    {!spend_gaussian} events have no [(ε, δ)] entry to recompute it from).
    @raise Invalid_argument on a negative or NaN [ρ]. *)

val total_basic : t -> Params.t
(** Sum of all recorded costs. *)

val total_advanced : t -> slack:float -> Params.t
(** Strong composition over the recorded events, treating them as a k-fold
    composition at the *maximum* recorded per-event [ε₀] (sound, possibly
    loose when events are heterogeneous), plus [slack]. *)

val total_zcdp : t -> delta:float -> float
(** Convert the accumulated zCDP budget [ρ] (pure-DP events enter as
    [ρ = ε²/2], Gaussian events as [Δ²/2σ²]) to an [ε] at the given [δ]:
    [ε = ρ + 2√(ρ ln(1/δ))]. *)

val rho : t -> float
(** The raw accumulated zCDP parameter. *)
