type answer = Below | Above of float

type t = {
  sv : Sparse_vector.t;
  value_eps : float;
  sensitivity : float;
  rng : Pmw_rng.Rng.t;
}

let create ~t_max ~k ~threshold ~privacy ~sensitivity ?(value_fraction = 1. /. 3.) ~rng () =
  if value_fraction <= 0. || value_fraction >= 1. then
    invalid_arg "Numeric_sparse.create: value_fraction must lie in (0, 1)";
  let sv_privacy =
    Params.create
      ~eps:(privacy.Params.eps *. (1. -. value_fraction))
      ~delta:(privacy.Params.delta /. 2.)
  in
  let value_budget =
    Params.create
      ~eps:(privacy.Params.eps *. value_fraction)
      ~delta:(privacy.Params.delta /. 2.)
  in
  let per_value = Params.split_advanced ~count:t_max value_budget in
  let sv =
    Sparse_vector.create ~t_max ~k ~threshold ~privacy:sv_privacy ~sensitivity
      ~rng:(Pmw_rng.Rng.split rng) ()
  in
  { sv; value_eps = per_value.Params.eps; sensitivity; rng }

let query t value =
  match Sparse_vector.query t.sv value with
  | None -> None
  | Some Sparse_vector.Bottom -> Some Below
  | Some Sparse_vector.Top ->
      Some (Above (Mechanisms.laplace ~eps:t.value_eps ~sensitivity:t.sensitivity value t.rng))

let halted t = Sparse_vector.halted t.sv
let tops_used t = Sparse_vector.tops_used t.sv
