module Dist = Pmw_rng.Dist
module Rng = Pmw_rng.Rng
module Telemetry = Pmw_telemetry.Telemetry

type answer = Top | Bottom

type t = {
  t_max : int;
  k : int;
  decision_point : float; (* midpoint of the (threshold/2, threshold) gap *)
  sensitivity : float;
  eps_epoch : float;
  delta_epoch : float;
  telemetry : Telemetry.t;
  rng : Rng.t;
  mutable noisy_threshold : float;
  mutable tops : int;
  mutable asked : int;
}

let fresh_threshold t =
  (* AboveThreshold: threshold noise Lap(2Δ/ε₀). *)
  t.decision_point +. Dist.laplace ~scale:(2. *. t.sensitivity /. t.eps_epoch) t.rng

let create ?telemetry ~t_max ~k ~threshold ~privacy ~sensitivity ~rng () =
  if t_max <= 0 then invalid_arg "Sparse_vector.create: t_max must be positive";
  if k <= 0 then invalid_arg "Sparse_vector.create: k must be positive";
  if threshold <= 0. then invalid_arg "Sparse_vector.create: threshold must be positive";
  if sensitivity < 0. then invalid_arg "Sparse_vector.create: sensitivity must be non-negative";
  let per_epoch = Params.split_advanced ~count:t_max privacy in
  let telemetry = match telemetry with Some t -> t | None -> Telemetry.null () in
  let t =
    {
      t_max;
      k;
      decision_point = 0.75 *. threshold;
      sensitivity = Float.max sensitivity 1e-300;
      eps_epoch = per_epoch.Params.eps;
      delta_epoch = per_epoch.Params.delta;
      telemetry;
      rng;
      noisy_threshold = 0.;
      tops = 0;
      asked = 0;
    }
  in
  t.noisy_threshold <- fresh_threshold t;
  t

let halted t = t.tops >= t.t_max || t.asked >= t.k
let tops_used t = t.tops
let queries_asked t = t.asked
let per_epoch_eps t = t.eps_epoch

let query t value =
  if halted t then None
  else begin
    t.asked <- t.asked + 1;
    (* Per-query noise Lap(4Δ/ε₀). *)
    let nu = Dist.laplace ~scale:(4. *. t.sensitivity /. t.eps_epoch) t.rng in
    if value +. nu >= t.noisy_threshold then begin
      t.tops <- t.tops + 1;
      if not (halted t) then t.noisy_threshold <- fresh_threshold t;
      (* One AboveThreshold epoch consumed: its (ε₀, δ₀) share hits the
         ledger timeline here, where the spend actually happens. *)
      Telemetry.incr t.telemetry "sv_failures";
      Telemetry.debit t.telemetry ~ledger:"sv" ~mechanism:"sv-epoch" ~eps:t.eps_epoch
        ~delta:t.delta_epoch;
      Telemetry.mark t.telemetry "sv.test"
        ~fields:[ ("outcome", Telemetry.Str "top"); ("tops", Telemetry.Int t.tops) ];
      Some Top
    end
    else begin
      Telemetry.incr t.telemetry "sv_passes";
      Telemetry.mark t.telemetry "sv.test" ~fields:[ ("outcome", Telemetry.Str "bottom") ];
      Some Bottom
    end
  end

type snapshot = {
  snap_noisy_threshold : float;
  snap_tops : int;
  snap_asked : int;
  snap_rng : int64 array;
}

let snapshot t =
  {
    snap_noisy_threshold = t.noisy_threshold;
    snap_tops = t.tops;
    snap_asked = t.asked;
    snap_rng = Rng.state t.rng;
  }

let restore t s =
  if s.snap_tops < 0 || s.snap_tops > t.t_max then
    invalid_arg "Sparse_vector.restore: tops out of range";
  if s.snap_asked < 0 || s.snap_asked > t.k then
    invalid_arg "Sparse_vector.restore: asked out of range";
  if Float.is_nan s.snap_noisy_threshold then
    invalid_arg "Sparse_vector.restore: NaN threshold";
  Rng.restore t.rng s.snap_rng;
  t.noisy_threshold <- s.snap_noisy_threshold;
  t.tops <- s.snap_tops;
  t.asked <- s.snap_asked

let theorem_3_1_n ~t_max ~k ~threshold ~privacy ~beta ~sensitivity_scale =
  256. *. sensitivity_scale
  *. sqrt (float_of_int t_max *. log (2. /. privacy.Params.delta))
  *. log (4. *. float_of_int k /. beta)
  /. (privacy.Params.eps *. threshold)
