(** The online sparse vector algorithm — the [SV(T, k, α, ε, δ)] black box of
    Section 3.1 / Theorem 3.1.

    The caller feeds a stream of (at most [k]) query values, each from a
    query of global sensitivity at most [sensitivity]; the algorithm answers
    each with [Top] (⊤) or [Bottom] (⊥) and halts after [t_max] Tops. With a
    large enough dataset (Theorem 3.1's [n] bound), with probability [1-β]:
    every query with true value [>= threshold] gets ⊤ and every query with
    true value [<= threshold/2] gets ⊥.

    Internally this is the textbook AboveThreshold algorithm (Dwork–Roth,
    Algorithm "Sparse"): a noisy copy of the decision point [3·threshold/4]
    is compared against each noisy query value; every ⊤ consumes one of
    [t_max] epochs and refreshes the noisy threshold. Each epoch is pure
    [ε₀]-DP; the [t_max]-fold adaptive composition at
    [ε₀ = ε/√(8·t_max·ln(2/δ))] (Theorem 3.10) makes the whole stream
    [(ε, δ)]-DP. *)

type answer = Top | Bottom

type t

val create :
  ?telemetry:Pmw_telemetry.Telemetry.t ->
  t_max:int ->
  k:int ->
  threshold:float ->
  privacy:Params.t ->
  sensitivity:float ->
  rng:Pmw_rng.Rng.t ->
  unit ->
  t
(** [t_max] = maximum number of ⊤ answers before halting (the paper's [T]);
    [k] = maximum stream length; [threshold] = the accuracy target [α] of the
    game in Figure 2; [sensitivity] = the queries' global sensitivity (the
    paper uses [3S/n]). [telemetry] receives one ["sv.test"] mark per query
    (its ⊤/⊥ outcome, never the raw value), the [sv_passes] (⊥) /
    [sv_failures] (⊤) counters, and — on every consumed epoch — a debit of
    the per-epoch [(ε₀, δ₀)] under the ["sv"] ledger.
    @raise Invalid_argument on non-positive [t_max], [k],
    [threshold] or [sensitivity < 0], or [privacy.delta = 0]. *)

val query : t -> float -> answer option
(** [query t v] feeds the true query value [v] and returns the private
    answer, or [None] if the algorithm has halted (either [t_max] Tops were
    spent or [k] queries were already asked). *)

val halted : t -> bool
val tops_used : t -> int
val queries_asked : t -> int

val per_epoch_eps : t -> float
(** The ε₀ charged per AboveThreshold epoch — exposed for accounting tests. *)

type snapshot = {
  snap_noisy_threshold : float;
  snap_tops : int;
  snap_asked : int;
  snap_rng : int64 array;
}
(** The full mutable state of a running instance. The noisy threshold and the
    generator state are part of the privacy-relevant transcript: restoring
    them resumes the SAME AboveThreshold epochs instead of drawing fresh
    noise, so a kill/resume cycle spends no additional budget. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Overwrite the mutable state of [t] (which must have been created with the
    same static parameters) with a snapshot.
    @raise Invalid_argument if the counters are outside [t]'s [t_max]/[k]
    range or the threshold is NaN. *)

val theorem_3_1_n :
  t_max:int -> k:int -> threshold:float -> privacy:Params.t -> beta:float -> sensitivity_scale:float -> float
(** The dataset-size bound of Theorem 3.1:
    [n >= 256 · S · √(T · log(2/δ)) · log(4k/β) / (ε·α)] where
    [sensitivity_scale] is the paper's [S] (queries are [3S/n]-sensitive). *)
