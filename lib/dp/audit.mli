(** Empirical privacy auditing.

    Definition 2.1 says every event's probability changes by at most [e^ε]
    (plus δ) between adjacent inputs. An audit estimates that ratio from
    repeated runs: execute the mechanism many times on a pair of adjacent
    inputs, count each observable outcome, and report the largest
    log-probability ratio among outcomes seen often enough for the estimate
    to be stable. A sound mechanism's estimate stays below ε; a broken one
    (wrong sensitivity, forgotten noise refresh) blows past it — this is the
    engine behind experiment F4 and the regression tests that would catch
    such bugs. *)

type result = {
  eps_hat : float;  (** largest observed |log(p_a(o)/p_b(o))| *)
  worst_outcome : string;  (** the outcome achieving it *)
  outcomes_compared : int;  (** outcomes with enough mass on both sides *)
  trials : int;
}

val run :
  trials:int ->
  mechanism:(seed:int -> input:'a -> string) ->
  input_a:'a ->
  input_b:'a ->
  ?min_count:int ->
  unit ->
  result
(** Run [mechanism] [trials] times on each input (seeds 1..trials — the
    mechanism must draw all its randomness from the seed) and compare
    outcome frequencies. Outcomes observed fewer than [min_count] times
    (default [trials/100]) on either side are skipped — their ratio estimate
    would be noise. @raise Invalid_argument if [trials <= 0]. *)

val estimate_epsilon :
  trials:int ->
  mechanism:(seed:int -> input:'a -> string) ->
  input_a:'a ->
  input_b:'a ->
  ?min_count:int ->
  unit ->
  float
(** [(run ...).eps_hat] — the scalar empirical lower bound, for callers
    (property-based tests, the F4 experiment driver) that compare it
    directly against an accounted ε and do not need the diagnostics. Same
    contract and validation as {!run}. *)

val laplace_counter_example : unit -> float
(** A self-test target: the ε̂ of a correctly calibrated ε=0.5 Laplace
    counting mechanism, binned to its sign — must come out ≤ ~0.5. Used by
    the test suite as a fixed point of the auditor. *)
