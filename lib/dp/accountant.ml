module Telemetry = Pmw_telemetry.Telemetry

type t = {
  mutable events : Params.t list;
  mutable rho : float;
  telemetry : Telemetry.t;
  label : string;
}

let create ?telemetry ?(label = "accountant") () =
  let telemetry = match telemetry with Some t -> t | None -> Telemetry.null () in
  { events = []; rho = 0.; telemetry; label }

let spend ?(mechanism = "mechanism") t p =
  t.events <- p :: t.events;
  (* Pure eps-DP implies (eps^2/2)-zCDP; (eps, delta)-DP has no lossless zCDP
     conversion, so we charge the pure part and keep delta in the event list.
     This keeps the zCDP total sound for the mechanisms this library uses
     (Laplace, exponential, sparse-vector epochs are pure per-event). *)
  t.rho <- t.rho +. (p.Params.eps *. p.Params.eps /. 2.);
  Telemetry.debit t.telemetry ~ledger:t.label ~mechanism ~eps:p.Params.eps ~delta:p.Params.delta

let spend_gaussian t ~sigma ~sensitivity =
  if sigma <= 0. then invalid_arg "Accountant.spend_gaussian: sigma must be positive";
  if sensitivity < 0. then invalid_arg "Accountant.spend_gaussian: negative sensitivity";
  let rho = sensitivity *. sensitivity /. (2. *. sigma *. sigma) in
  t.rho <- t.rho +. rho;
  Telemetry.mark t.telemetry "ledger.gaussian"
    ~fields:
      [
        ("ledger", Telemetry.Str t.label);
        ("rho", Telemetry.Float rho);
        ("rho_total", Telemetry.Float t.rho);
      ]

let count t = List.length t.events

let events t = List.rev t.events

let restore t ~events ~rho =
  if rho < 0. || Float.is_nan rho then invalid_arg "Accountant.restore: rho must be non-negative";
  t.events <- List.rev events;
  t.rho <- rho

let total_basic t = Params.compose_basic t.events

let total_advanced t ~slack =
  match t.events with
  | [] -> Params.pure 0.
  | events ->
      let eps_max = List.fold_left (fun acc p -> Float.max acc p.Params.eps) 0. events in
      let delta_sum = List.fold_left (fun acc p -> acc +. p.Params.delta) 0. events in
      let worst = Params.create ~eps:eps_max ~delta:0. in
      let composed = Params.compose_advanced ~count:(List.length events) ~slack worst in
      Params.create ~eps:composed.Params.eps ~delta:(Float.min 1. (composed.Params.delta +. delta_sum))

let total_zcdp t ~delta =
  if delta <= 0. || delta >= 1. then invalid_arg "Accountant.total_zcdp: delta must lie in (0,1)";
  t.rho +. (2. *. sqrt (t.rho *. log (1. /. delta)))

let rho t = t.rho
