type result = {
  eps_hat : float;
  worst_outcome : string;
  outcomes_compared : int;
  trials : int;
}

let counts_of ~trials ~mechanism ~input =
  let table = Hashtbl.create 64 in
  for seed = 1 to trials do
    let outcome = mechanism ~seed ~input in
    Hashtbl.replace table outcome (1 + Option.value ~default:0 (Hashtbl.find_opt table outcome))
  done;
  table

let run ~trials ~mechanism ~input_a ~input_b ?min_count () =
  if trials <= 0 then invalid_arg "Audit.run: trials must be positive";
  let min_count = match min_count with Some m -> Int.max 1 m | None -> Int.max 1 (trials / 100) in
  let ca = counts_of ~trials ~mechanism ~input:input_a in
  let cb = counts_of ~trials ~mechanism ~input:input_b in
  let eps_hat = ref 0. in
  let worst = ref "(none)" in
  let compared = ref 0 in
  Hashtbl.iter
    (fun outcome na ->
      match Hashtbl.find_opt cb outcome with
      | Some nb when na >= min_count && nb >= min_count ->
          incr compared;
          let r = Float.abs (log (float_of_int na /. float_of_int nb)) in
          if r > !eps_hat then begin
            eps_hat := r;
            worst := outcome
          end
      | Some _ | None -> ())
    ca;
  { eps_hat = !eps_hat; worst_outcome = !worst; outcomes_compared = !compared; trials }

let estimate_epsilon ~trials ~mechanism ~input_a ~input_b ?min_count () =
  (run ~trials ~mechanism ~input_a ~input_b ?min_count ()).eps_hat

let laplace_counter_example () =
  let eps = 0.5 in
  let mechanism ~seed ~input =
    let rng = Pmw_rng.Rng.create ~seed () in
    let noisy = Mechanisms.laplace ~eps ~sensitivity:1. input rng in
    if noisy >= 0.5 then "high" else "low"
  in
  (run ~trials:20_000 ~mechanism ~input_a:0. ~input_b:1. ()).eps_hat
