module Vec = Pmw_linalg.Vec
module Params = Pmw_dp.Params
module Splitmix64 = Pmw_rng.Splitmix64
module Telemetry = Pmw_telemetry.Telemetry

type fault =
  | Nan_answer
  | Inf_answer
  | Divergent
  | Timeout
  | Misreport of float

type plan =
  | Never
  | Always of fault
  | Every of { period : int; fault : fault }
  | Random of { rate : float; faults : fault list }
  | Schedule of (int * fault) list

type t = {
  inner : Oracle.t;
  plan : plan;
  seed : int;
  telemetry : Telemetry.t;
  mutable calls : int;
  mutable injected : int;
  mutable last_claim : Params.t option;
}

let golden_gamma = 0x9E3779B97F4A7C15L

(* The fault decision is a pure function of (seed, call index): no hidden
   generator state, so a resumed session only needs the call counter to
   replay the exact fault pattern of an uninterrupted run. *)
let hashed_unit seed index =
  let sm =
    Splitmix64.create
      (Int64.logxor (Int64.of_int seed) (Int64.mul golden_gamma (Int64.of_int (index + 1))))
  in
  let bits = Int64.shift_right_logical (Splitmix64.next sm) 11 in
  Int64.to_float bits /. 9007199254740992.

let decide t index =
  match t.plan with
  | Never -> None
  | Always fault -> Some fault
  | Every { period; fault } -> if (index + 1) mod period = 0 then Some fault else None
  | Random { rate; faults } ->
      if faults = [] then None
      else if hashed_unit t.seed index < rate then begin
        let pick = hashed_unit (t.seed lxor 0x5ca1ab1e) index in
        let i = int_of_float (pick *. float_of_int (List.length faults)) in
        Some (List.nth faults (Int.min i (List.length faults - 1)))
      end
      else None
  | Schedule l -> List.assoc_opt index l

let validate_plan = function
  | Every { period; _ } when period <= 0 -> invalid_arg "Faulty_oracle: period must be positive"
  | Random { rate; _ } when rate < 0. || rate > 1. ->
      invalid_arg "Faulty_oracle: rate must lie in [0, 1]"
  | Schedule l ->
      List.iter (fun (i, _) -> if i < 0 then invalid_arg "Faulty_oracle: negative call index") l
  | _ -> ()

let corrupt fault theta =
  let bad = Vec.copy theta in
  (match fault with
  | Nan_answer -> bad.(0) <- Float.nan
  | Inf_answer -> bad.(0) <- Float.infinity
  | Divergent -> Vec.scale_inplace 1e9 bad
  | Timeout | Misreport _ -> ());
  bad

let create ?(seed = 0) ?telemetry ~plan inner =
  validate_plan plan;
  let telemetry = match telemetry with Some t -> t | None -> Telemetry.null () in
  { inner; plan; seed; telemetry; calls = 0; injected = 0; last_claim = None }

let name t = t.inner.Oracle.name ^ "!faulty"

let fault_to_string = function
  | Nan_answer -> "nan"
  | Inf_answer -> "inf"
  | Divergent -> "divergent"
  | Timeout -> "timeout"
  | Misreport f -> Printf.sprintf "misreport:%g" f

let record t index fault ~fields =
  t.injected <- t.injected + 1;
  Telemetry.incr t.telemetry "faults_injected";
  Telemetry.mark t.telemetry "fault.injected"
    ~fields:
      (( "fault", Telemetry.Str (fault_to_string fault) )
       :: ( "call", Telemetry.Int index )
       :: fields)

let run t (req : Oracle.request) =
  let index = t.calls in
  t.calls <- index + 1;
  t.last_claim <- None;
  match decide t index with
  | None -> t.inner.Oracle.run req
  | Some Timeout ->
      record t index Timeout ~fields:[];
      raise (Oracle.Timeout (name t))
  | Some (Misreport factor) ->
      let p = req.Oracle.privacy in
      let claim =
        Params.create ~eps:(p.Params.eps *. factor)
          ~delta:(Float.min 1. (p.Params.delta *. factor))
      in
      record t index (Misreport factor)
        ~fields:
          [
            ("claimed_eps", Telemetry.Float claim.Params.eps);
            ("claimed_delta", Telemetry.Float claim.Params.delta);
          ];
      t.last_claim <- Some claim;
      t.inner.Oracle.run req
  | Some ((Nan_answer | Inf_answer | Divergent) as fault) ->
      record t index fault ~fields:[];
      corrupt fault (t.inner.Oracle.run req)

let oracle t = { Oracle.name = name t; run = (fun req -> run t req) }
let calls t = t.calls
let injected t = t.injected
let claimed_spend t = t.last_claim

let set_calls t n =
  if n < 0 then invalid_arg "Faulty_oracle.set_calls: negative count";
  t.calls <- n

let fault_of_string s =
  match String.lowercase_ascii s with
  | "nan" -> Ok Nan_answer
  | "inf" -> Ok Inf_answer
  | "divergent" -> Ok Divergent
  | "timeout" -> Ok Timeout
  | s -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "misreport" -> (
          let rest = String.sub s (i + 1) (String.length s - i - 1) in
          match float_of_string_opt rest with
          | Some f when f > 0. -> Ok (Misreport f)
          | _ -> Error (Printf.sprintf "bad misreport factor %S" rest))
      | _ -> Error (Printf.sprintf "unknown fault %S (nan|inf|divergent|timeout|misreport:F)" s))
