(** Concrete single-query oracles (Section 4.2's instantiations of [A']).

    Each returns an {!Oracle.t} whose [run] consumes the per-call
    [(ε₀, δ₀)] carried in the request. All of them project their output onto
    the request's domain, so they are safe to plug into the MW mechanism. *)

val exact : Oracle.t
(** The non-private empirical minimizer — zero privacy, the accuracy upper
    envelope. Only for debugging and baselines; never use with real data. *)

val output_perturbation : Oracle.t
(** Chaudhuri–Monteleoni–Sarwate-style output perturbation. For σ-strongly
    convex losses the exact minimizer has L2 sensitivity [2L/(nσ)]; solve,
    add Gaussian noise at that sensitivity, project. For merely convex
    losses a ridge term [λ] is added first (making the regularized problem
    λ-strongly convex) with [λ] chosen to balance the regularization bias
    [λ·R²/2] against the noise cost [√d · σ_noise · L]. *)

val noisy_gd : ?pool:Pmw_parallel.Pool.t -> ?max_steps:int -> unit -> Oracle.t
(** Bassily–Smith–Thakurta (Theorem 4.1) style noisy projected gradient
    descent: [T] full-batch steps; each step perturbs the empirical gradient
    (L2 sensitivity [2L/n]) with Gaussian noise at the per-step budget given
    by advanced composition over the [T] steps. [T = min(max_steps, n)]
    (default [max_steps = 200]); suffix averaging. Excess risk scales as
    [√d · polylog / (n·ε₀)] — the Table 1 row 2, column 1 shape. The
    per-step empirical gradient sum runs chunked on [pool] (default: the
    shared pool); the noise stream is untouched, so answers are bit-identical
    for any pool size. *)

val glm : ?pool:Pmw_parallel.Pool.t -> ?max_steps:int -> unit -> Oracle.t
(** Jain–Thakurta (Theorem 4.3) style oracle for unconstrained generalized
    linear models — SIMULATED (see DESIGN.md, substitution 2): noisy
    projected gradient descent where the per-step perturbation is a
    magnitude-calibrated noise vector of dimension-independent scale applied
    in a random direction, exploiting that a GLM's empirical gradient lives
    in the span of the data. Reproduces the dimension-independent accuracy
    scaling [~1/α₀²] of Table 1 row 3; its formal privacy matches JT14's
    claim rather than a self-contained proof, so the privacy-audit
    experiment (F4) excludes it. Falls back to {!noisy_gd} behaviour on
    losses without GLM structure. *)

val laplace_output : Oracle.t
(** Output perturbation with per-coordinate Laplace noise calibrated to the
    L1 sensitivity [√d · 2L/(nσ)] — pure [ε₀]-DP (δ₀ ignored), and tighter
    than the Gaussian version in low dimension (no [√(2 ln(1.25/δ))]
    factor). The oracle of choice for the 1-d mean-estimation losses that
    realize linear queries as CM queries. Requires strong convexity. *)

val strongly_convex : Oracle.t
(** Theorem 4.5 (BST14) shape for σ-strongly convex losses: pure output
    perturbation at sensitivity [2L/(nσ)] — no ridge bias. Raises through
    the request if the loss has [strong_convexity = 0]. *)

val for_loss : Pmw_convex.Loss.t -> Oracle.t
(** Dispatch matching Section 4.2: strongly convex losses get
    {!strongly_convex}, GLM losses get {!glm}, everything else {!noisy_gd}. *)

(** {1 Retry / fallback chains} *)

type attempt = {
  attempt_oracle : string;  (** which stage of the chain ran *)
  attempt_spend : Pmw_dp.Params.t;  (** what the attempt cost — the request's [(ε₀, δ₀)] *)
  attempt_outcome : (unit, string) result;
}

val finite_in_domain : Oracle.request -> Pmw_linalg.Vec.t -> (unit, string) result
(** The default answer validator: every coordinate finite and the point
    inside the request's domain (up to a diameter-relative tolerance) —
    catches NaN/Inf gradients and divergent solves before they reach the MW
    update. *)

val with_fallback :
  ?name:string ->
  ?telemetry:Pmw_telemetry.Telemetry.t ->
  ?retries:int ->
  ?validate:(Oracle.request -> Pmw_linalg.Vec.t -> (unit, string) result) ->
  ?authorize:(Oracle.request -> (unit, string) result) ->
  ?on_attempt:(attempt -> unit) ->
  Oracle.t list ->
  Oracle.t
(** [with_fallback oracles] is an oracle that tries each stage in order
    (each up to [1 + retries] times) until one returns a valid answer.

    Ledger-awareness is the point: [authorize] is invoked before {e every}
    attempt, and an [Error] from it aborts the whole chain with
    {!Oracle.Budget_denied} — callers plug their privacy ledger's debit in
    here, so every attempt is paid for {e before} it touches the data, and
    failed attempts stay debited (a failed private computation still
    consumed its [(ε₀, δ₀)]; see DFH+15's caveat on conditioning). After
    each attempt, [on_attempt] receives what ran, what it cost, and how it
    ended. [telemetry] mirrors the chain's life into the event stream: one
    ["oracle.attempt"] mark per attempt (oracle name, 1-based try index
    within the call, the request's [(ε₀, δ₀)], outcome and failure reason),
    the [oracle_attempts] / [oracle_retries] counters, and an
    ["oracle.exhausted"] mark when every stage has failed — enough to
    reconstruct the retry/fallback chain from a trace alone.

    A stage counts as failed when it raises {!Oracle.Timeout},
    {!Oracle.Unsupported} or {!Oracle.Failed}, or when [validate] (default
    {!finite_in_domain}) rejects its answer. Other exceptions — programmer
    errors — propagate. When every stage fails, raises {!Oracle.Failed}
    listing each stage's reason.
    @raise Invalid_argument on an empty chain or negative [retries]. *)
