module Vec = Pmw_linalg.Vec
module Solve = Pmw_convex.Solve

type request = {
  dataset : Pmw_data.Dataset.t;
  loss : Pmw_convex.Loss.t;
  domain : Pmw_convex.Domain.t;
  privacy : Pmw_dp.Params.t;
  rng : Pmw_rng.Rng.t;
  solver_iters : int;
}

type t = { name : string; run : request -> Vec.t }

exception Timeout of string
exception Unsupported of string
exception Failed of string
exception Budget_denied of string

let failure_reason = function
  | Timeout name -> Some (Printf.sprintf "oracle %s timed out" name)
  | Unsupported msg -> Some msg
  | Failed msg -> Some msg
  | Stdlib.Failure msg -> Some msg
  | _ -> None

let excess_risk req theta =
  let obj =
    Pmw_convex.Objective.of_dataset req.loss req.dataset ~dim:(Pmw_convex.Domain.dim req.domain)
  in
  let reference =
    Solve.minimize ~iters:(4 * req.solver_iters)
      ~lipschitz:(Float.max req.loss.Pmw_convex.Loss.lipschitz 1e-9)
      ~strong_convexity:req.loss.Pmw_convex.Loss.strong_convexity req.domain obj
  in
  Float.max 0. (obj.Pmw_convex.Objective.f theta -. reference.Solve.value)
