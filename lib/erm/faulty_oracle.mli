(** Deterministic fault injection over any {!Oracle.t} — the adversary the
    robustness layer is tested against.

    Each wrapped call consults a fault plan; the decision is a pure function
    of [(seed, call index)], never of hidden generator state, so a session
    resumed from a checkpoint replays the exact fault pattern of an
    uninterrupted run once {!set_calls} restores the call counter (the
    session layer records attempt counts for exactly this purpose).

    Fault taxonomy (docs/robustness.md):
    - [Nan_answer] / [Inf_answer] — a poisoned gradient step: the inner
      oracle's answer with one coordinate replaced by NaN/∞. Caught by the
      numeric quarantine / chain validator, never by the type system.
    - [Divergent] — a solver blow-up: the answer scaled by [1e9], far
      outside the domain. Caught by {!Oracles.finite_in_domain}.
    - [Timeout] — raises {!Oracle.Timeout} without touching the data.
    - [Misreport of factor] — the answer is fine but the oracle {e claims}
      to have spent [factor × (ε₀, δ₀)]; surfaced via {!claimed_spend} so a
      ledger-aware caller can debit the claim (and degrade when it cannot). *)

type fault = Nan_answer | Inf_answer | Divergent | Timeout | Misreport of float

type plan =
  | Never
  | Always of fault
  | Every of { period : int; fault : fault }  (** every [period]-th call, 1-based *)
  | Random of { rate : float; faults : fault list }
      (** each call faults with probability [rate], uniformly over [faults] *)
  | Schedule of (int * fault) list  (** explicit 0-based call index → fault *)

type t

val create : ?seed:int -> ?telemetry:Pmw_telemetry.Telemetry.t -> plan:plan -> Oracle.t -> t
(** @raise Invalid_argument on a non-positive period, a rate outside
    [0, 1], or a negative scheduled index. *)

val oracle : t -> Oracle.t
(** The wrapped oracle (named [<inner>!faulty]) to plug into a mechanism or
    a {!Oracles.with_fallback} chain. *)

val calls : t -> int
(** Calls made through the wrapper so far (faulted or not). *)

val set_calls : t -> int -> unit
(** Fast-forward the call counter when resuming a checkpointed session, so
    the fault pattern continues where it left off.
    @raise Invalid_argument on a negative count. *)

val injected : t -> int
(** Faults injected so far. *)

val claimed_spend : t -> Pmw_dp.Params.t option
(** After a [Misreport] call: the inflated [(ε, δ)] the oracle claims it
    spent. Cleared at the start of every call, so poll it immediately after
    each attempt. *)

val fault_to_string : fault -> string
val fault_of_string : string -> (fault, string) result
(** ["nan" | "inf" | "divergent" | "timeout" | "misreport:F"] — the CLI's
    [--fault] syntax. *)
