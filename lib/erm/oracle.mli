(** The single-query oracle interface: the paper's [A'].

    Section 3.2 assumes black-box access to an [(ε₀, δ₀)]-differentially
    private algorithm that is [(α₀, β₀)]-accurate for one CM query. An
    oracle here is exactly that black box: given a dataset, one loss, a
    domain and a per-call privacy budget, produce an approximate private
    minimizer in the domain. Section 4.2 instantiates it three ways
    ({!Noisy_gd}, {!Glm}, {!Strongly_convex}); {!Exact} is the non-private
    reference used for debugging and as the upper envelope in experiments. *)

type request = {
  dataset : Pmw_data.Dataset.t;
  loss : Pmw_convex.Loss.t;
  domain : Pmw_convex.Domain.t;
  privacy : Pmw_dp.Params.t;  (** the per-call [(ε₀, δ₀)] *)
  rng : Pmw_rng.Rng.t;
  solver_iters : int;  (** iteration budget for inner non-private solves *)
}

type t = {
  name : string;
  run : request -> Pmw_linalg.Vec.t;
      (** Must return a point of [request.domain]. *)
}

(** {1 Typed runtime failures}

    An oracle call can fail at answer time in ways that are not programmer
    errors: a solver diverges, a backend times out, a loss lacks the
    structure the oracle needs for {e this} request. Those raise one of the
    typed exceptions below, which the retry/fallback machinery
    ({!Oracles.with_fallback}) and the online mechanism's quarantine catch
    and convert into refusals or fallback attempts. [Invalid_argument]
    remains reserved for construction-time contract violations and is never
    caught on the answer path. *)

exception Timeout of string
(** The named oracle exceeded its (simulated or real) deadline. *)

exception Unsupported of string
(** The oracle cannot serve this request (e.g. {!Oracles.laplace_output} on
    a loss without strong convexity). *)

exception Failed of string
(** Generic answer-time failure; also raised by {!Oracles.with_fallback}
    when every stage of a chain has failed. *)

exception Budget_denied of string
(** A ledger refused to fund an attempt — raised out of a fallback chain's
    authorization hook; the caller should degrade rather than retry (any
    further attempt would cost budget that is not there). *)

val failure_reason : exn -> string option
(** [Some reason] for the three answer-time failures above ({!Timeout},
    {!Unsupported}, {!Failed}) plus [Stdlib.Failure] (a [failwith] deep in a
    solver is a divergent-solve crash, not a contract violation), [None] for
    anything else — notably [Invalid_argument] and {!Budget_denied} — the
    discriminator callers use to decide what is safe to catch. *)

val excess_risk : request -> Pmw_linalg.Vec.t -> float
(** Definition 2.2's [err_ℓ(D, θ̂)] of an answer, with the true minimum
    computed by the non-private solver (at 4x the request's iteration
    budget, so the reference is more accurate than the candidate). *)
