module Vec = Pmw_linalg.Vec
module Domain = Pmw_convex.Domain
module Loss = Pmw_convex.Loss
module Objective = Pmw_convex.Objective
module Solve = Pmw_convex.Solve
module Params = Pmw_dp.Params
module Mechanisms = Pmw_dp.Mechanisms
module Telemetry = Pmw_telemetry.Telemetry
open Oracle

let solve_exact (req : request) =
  (Solve.minimize_loss_on_dataset ~iters:req.solver_iters req.loss req.domain req.dataset)
    .Solve.theta

let exact = { name = "exact"; run = solve_exact }

let domain_radius domain =
  match Domain.kind domain with
  | Domain.L2_ball r -> r
  | Domain.Box _ | Domain.Simplex -> 0.5 *. Domain.diameter domain

let run_output_perturbation (req : request) =
  let n = float_of_int (Pmw_data.Dataset.size req.dataset) in
  let d = Domain.dim req.domain in
  let lipschitz = Float.max req.loss.Loss.lipschitz 1e-9 in
  let eps = req.privacy.Params.eps and delta = Float.max req.privacy.Params.delta 1e-12 in
  let radius = Float.max (domain_radius req.domain) 1e-9 in
  let sigma_loss = req.loss.Loss.strong_convexity in
  let lambda, loss =
    if sigma_loss > 0. then (sigma_loss, req.loss)
    else begin
      (* Balance ridge bias (lambda R^2 / 2) against expected noise cost
         (sqrt d * gaussian sigma * L): lambda* solves
         lambda R^2 / 2 = sqrt(d) * L * (2L/(n lambda)) * c / eps. *)
      let c = sqrt (2. *. log (1.25 /. delta)) in
      let lambda =
        sqrt (4. *. sqrt (float_of_int d) *. lipschitz *. lipschitz *. c /. (radius *. radius *. n *. eps))
      in
      let lambda = Float.max lambda 1e-9 in
      (lambda, Pmw_convex.Losses.ridge ~lambda ~radius req.loss)
    end
  in
  let solution = Solve.minimize_loss_on_dataset ~iters:req.solver_iters loss req.domain req.dataset in
  let sensitivity = 2. *. lipschitz /. (n *. lambda) in
  let noisy =
    Mechanisms.gaussian_vector ~eps ~delta ~l2_sensitivity:sensitivity solution.Solve.theta req.rng
  in
  Domain.project req.domain noisy

let output_perturbation = { name = "output_perturbation"; run = run_output_perturbation }

(* Shared noisy-projected-GD loop; [noise] draws one per-step perturbation
   already calibrated to the per-step privacy budget. The per-step gradient
   sum runs chunked on [pool] through the memoized objective. *)
let noisy_descent ?pool (req : request) ~steps ~noise =
  let dim = Domain.dim req.domain in
  let obj = Objective.of_dataset ?pool req.loss req.dataset ~dim in
  let lipschitz = Float.max req.loss.Loss.lipschitz 1e-9 in
  let diameter = Float.max (Domain.diameter req.domain) 1e-9 in
  let theta = ref (Domain.center req.domain) in
  let avg = Vec.create dim in
  let avg_count = ref 0 in
  let suffix = steps / 2 in
  for t = 1 to steps do
    let g = Vec.add (obj.Objective.grad !theta) (noise ()) in
    let step = diameter /. (lipschitz *. sqrt (float_of_int steps)) in
    ignore t;
    theta := Domain.project req.domain (Vec.sub !theta (Vec.scale step g));
    if t > suffix then begin
      Vec.add_inplace avg !theta;
      incr avg_count
    end
  done;
  if !avg_count = 0 then !theta
  else Domain.project req.domain (Vec.scale (1. /. float_of_int !avg_count) avg)

let gd_steps max_steps (req : request) =
  Int.max 1 (Int.min max_steps (Pmw_data.Dataset.size req.dataset))

let run_noisy_gd ?pool ~max_steps (req : request) =
  let steps = gd_steps max_steps req in
  let n = float_of_int (Pmw_data.Dataset.size req.dataset) in
  let lipschitz = Float.max req.loss.Loss.lipschitz 1e-9 in
  let per_step = Params.split_advanced ~count:steps req.privacy in
  let sigma =
    Mechanisms.gaussian_sigma ~eps:per_step.Params.eps ~delta:per_step.Params.delta
      ~sensitivity:(2. *. lipschitz /. n)
  in
  let dim = Domain.dim req.domain in
  let noise () = Pmw_rng.Dist.gaussian_vector ~dim ~sigma req.rng in
  noisy_descent ?pool req ~steps ~noise

let noisy_gd ?pool ?(max_steps = 200) () =
  { name = "noisy_gd"; run = (fun req -> run_noisy_gd ?pool ~max_steps req) }

let run_glm ?pool ~max_steps (req : request) =
  match req.loss.Loss.glm with
  | None -> run_noisy_gd ?pool ~max_steps req
  | Some _ ->
      let steps = gd_steps max_steps req in
      let n = float_of_int (Pmw_data.Dataset.size req.dataset) in
      let lipschitz = Float.max req.loss.Loss.lipschitz 1e-9 in
      let per_step = Params.split_advanced ~count:steps req.privacy in
      let sigma =
        Mechanisms.gaussian_sigma ~eps:per_step.Params.eps ~delta:per_step.Params.delta
          ~sensitivity:(2. *. lipschitz /. n)
      in
      let dim = Domain.dim req.domain in
      (* Dimension-independent magnitude: a 1-d-calibrated Gaussian magnitude
         in a random direction, rather than sigma per coordinate (total
         magnitude ~ sigma instead of sigma * sqrt d). *)
      let noise () =
        let magnitude = Pmw_rng.Dist.gaussian ~sigma req.rng in
        let direction = Pmw_data.Synth.random_unit_vector ~dim req.rng in
        Vec.scale magnitude direction
      in
      noisy_descent ?pool req ~steps ~noise

let glm ?pool ?(max_steps = 200) () =
  { name = "glm"; run = (fun req -> run_glm ?pool ~max_steps req) }

let run_laplace_output (req : request) =
  let sigma_loss = req.loss.Loss.strong_convexity in
  if sigma_loss <= 0. then raise (Unsupported "Oracles.laplace_output: loss is not strongly convex");
  let n = float_of_int (Pmw_data.Dataset.size req.dataset) in
  let lipschitz = Float.max req.loss.Loss.lipschitz 1e-9 in
  let d = Domain.dim req.domain in
  let solution =
    Solve.minimize_loss_on_dataset ~iters:req.solver_iters req.loss req.domain req.dataset
  in
  (* L2 sensitivity 2L/(n sigma); L1 <= sqrt d * that. Per-coordinate Laplace
     at the L1 sensitivity gives pure eps-DP. *)
  let l1_sensitivity = sqrt (float_of_int d) *. 2. *. lipschitz /. (n *. sigma_loss) in
  let noisy =
    Array.map
      (fun x ->
        Pmw_dp.Mechanisms.laplace ~eps:req.privacy.Params.eps ~sensitivity:l1_sensitivity x
          req.rng)
      solution.Solve.theta
  in
  Domain.project req.domain noisy

let laplace_output = { name = "laplace_output"; run = run_laplace_output }

let run_strongly_convex (req : request) =
  if req.loss.Loss.strong_convexity <= 0. then
    raise (Unsupported "Oracles.strongly_convex: loss is not strongly convex");
  run_output_perturbation req

let strongly_convex = { name = "strongly_convex"; run = run_strongly_convex }

(* --- retry / fallback chain --- *)

type attempt = {
  attempt_oracle : string;
  attempt_spend : Params.t;
  attempt_outcome : (unit, string) result;
}

let finite_in_domain (req : request) theta =
  let ok = ref true in
  Array.iter (fun x -> if not (Float.is_finite x) then ok := false) theta;
  if not !ok then Error "answer has non-finite coordinates"
  else if not (Domain.contains ~tol:(1e-6 *. Float.max 1. (Domain.diameter req.domain)) req.domain theta)
  then Error "answer diverged outside the domain"
  else Ok ()

let with_fallback ?name ?telemetry ?(retries = 0) ?(validate = finite_in_domain)
    ?(authorize = fun (_ : request) -> Ok ()) ?(on_attempt = fun (_ : attempt) -> ()) oracles =
  if oracles = [] then invalid_arg "Oracles.with_fallback: empty chain";
  if retries < 0 then invalid_arg "Oracles.with_fallback: negative retries";
  let tel = match telemetry with Some t -> t | None -> Telemetry.null () in
  let name =
    match name with
    | Some n -> n
    | None -> String.concat ">" (List.map (fun o -> o.Oracle.name) oracles)
  in
  let run req =
    let reasons = ref [] in
    let try_index = ref 0 in
    let attempt oracle =
      (* The debit happens in [authorize] BEFORE the oracle runs: a failed
         attempt has already interacted with the sensitive data, so its
         budget is spent whether or not an answer comes back. *)
      incr try_index;
      let this_try = !try_index in
      (match authorize req with
      | Error why ->
          Telemetry.mark tel "oracle.attempt"
            ~fields:
              [
                ("oracle", Telemetry.Str oracle.Oracle.name);
                ("try", Telemetry.Int this_try);
                ("ok", Telemetry.Bool false);
                ("reason", Telemetry.Str (Printf.sprintf "budget denied: %s" why));
              ];
          raise (Oracle.Budget_denied why)
      | Ok () -> ());
      Telemetry.incr tel "oracle_attempts";
      if this_try > 1 then Telemetry.incr tel "oracle_retries";
      let outcome =
        match oracle.Oracle.run req with
        | theta -> ( match validate req theta with Ok () -> Ok theta | Error e -> Error e)
        | exception e -> ( match Oracle.failure_reason e with Some r -> Error r | None -> raise e)
      in
      Telemetry.mark tel "oracle.attempt"
        ~fields:
          (( "oracle", Telemetry.Str oracle.Oracle.name )
           :: ( "try", Telemetry.Int this_try )
           :: ( "eps", Telemetry.Float req.privacy.Params.eps )
           :: ( "delta", Telemetry.Float req.privacy.Params.delta )
           ::
           (match outcome with
           | Ok _ -> [ ("ok", Telemetry.Bool true) ]
           | Error why -> [ ("ok", Telemetry.Bool false); ("reason", Telemetry.Str why) ]));
      on_attempt
        {
          attempt_oracle = oracle.Oracle.name;
          attempt_spend = req.privacy;
          attempt_outcome = Result.map (fun _ -> ()) outcome;
        };
      match outcome with
      | Ok theta -> Some theta
      | Error why ->
          reasons := Printf.sprintf "%s: %s" oracle.Oracle.name why :: !reasons;
          None
    in
    let rec tries oracle left =
      match attempt oracle with
      | Some theta -> Some theta
      | None -> if left > 0 then tries oracle (left - 1) else None
    in
    let rec stage = function
      | [] ->
          Telemetry.mark tel "oracle.exhausted"
            ~fields:[ ("attempts", Telemetry.Int !try_index) ];
          raise
            (Oracle.Failed
               (Printf.sprintf "all fallbacks failed (%s)" (String.concat "; " (List.rev !reasons))))
      | oracle :: rest -> ( match tries oracle retries with Some theta -> theta | None -> stage rest)
    in
    stage oracles
  in
  { Oracle.name; run }

let for_loss (loss : Loss.t) =
  if loss.Loss.strong_convexity > 0. then strongly_convex
  else
    match loss.Loss.glm with
    | Some _ -> glm ()
    | None -> noisy_gd ()
