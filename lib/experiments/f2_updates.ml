(* Experiment F2.updates — Section 3.3, Claims 3.6/3.7.

   The convergence argument says at most T = 64 S^2 log|X| / alpha^2 MW
   updates can ever happen (each update drops the KL potential by
   ~eta alpha/4). We run long query streams at several alpha and record how
   many updates were actually consumed vs the theory budget — the measured
   count should be far below T and grow as alpha shrinks. *)

module Table = Common.Table
module Rng = Pmw_rng.Rng

let name = "f2-updates"
let description = "Claim 3.7: MW updates actually used vs the T = 64 S^2 log|X|/alpha^2 budget"

let updates_used ~(workload : Common.Workload.regression) ~n ~k ~alpha ~seed =
  let rng = Rng.create ~seed () in
  let dataset = workload.Common.Workload.sample ~n rng in
  (* generous practical T so the bound never binds artificially *)
  let config =
    Pmw_core.Config.practical ~universe:workload.Common.Workload.universe
      ~privacy:Common.default_privacy ~alpha ~beta:0.05 ~scale:workload.Common.Workload.scale ~k
      ~t_max:60 ~solver_iters:150 ()
  in
  let mechanism =
    Pmw_core.Online_pmw.create ~config ~dataset ~oracle:Pmw_erm.Oracles.exact ~rng ()
  in
  let queries = Array.of_list workload.Common.Workload.queries in
  (try
     for j = 0 to k - 1 do
       match Pmw_core.Online_pmw.answer_opt mechanism queries.(j mod Array.length queries) with
       | Some _ -> ()
       | None -> raise Exit
     done
   with Exit -> ());
  float_of_int (Pmw_core.Online_pmw.updates mechanism)

let run () =
  let workload = Common.Workload.regression ~d:2 () in
  let log_x = Pmw_data.Universe.log_size workload.Common.Workload.universe in
  let s = workload.Common.Workload.scale in
  let rows =
    List.map
      (fun alpha ->
        let used =
          Common.repeat ~trials:3 (fun ~seed ->
              updates_used ~workload ~n:200_000 ~k:60 ~alpha ~seed)
        in
        let theory = 64. *. s *. s *. log_x /. (alpha *. alpha) in
        [
          Table.fmt_float alpha;
          Common.Stats.show used;
          Table.fmt_sci theory;
          Table.fmt_sci (used.Common.Stats.mean /. theory);
        ])
      [ 0.1; 0.05; 0.025 ]
  in
  Table.print
    ~title:"F2.updates: updates consumed over a 60-query stream vs Figure 3's T (n=200000)"
    ~headers:[ "alpha"; "updates used"; "T theory"; "used/T" ]
    rows
