(* Ablation A5 — discretization granularity (the Section 1.1 rounding).

   The paper's algorithms need a finite universe X; continuous data is
   rounded to a grid of size (d/alpha)^O(d). Finer grids shrink the rounding
   bias but inflate log|X| (more updates needed, Figure 3's T) and the
   Theta(|X|) per-update cost. We sweep the grid resolution and report
   (a) the rounding bias — the error of the best-in-universe answer against
   the continuous ground truth, (b) end-to-end PMW error, (c) update cost —
   exposing the bias/cost trade-off the paper's remark prices at "a factor
   of 2 in the error". *)

module Table = Common.Table
module Universe = Pmw_data.Universe
module Synth = Pmw_data.Synth
module Domain = Pmw_convex.Domain
module Losses = Pmw_convex.Losses
module Cm_query = Pmw_core.Cm_query
module Rng = Pmw_rng.Rng

let name = "a5-universe"
let description = "Ablation: grid resolution — rounding bias vs log|X| cost (Section 1.1)"

let run () =
  let d = 2 in
  let theta_star = [| 0.6; -0.3 |] in
  let domain = Domain.unit_ball ~dim:d in
  let rows =
    List.map
      (fun levels ->
        let universe = Universe.regression_grid ~d ~levels ~label_levels:levels () in
        let rng = Rng.create ~seed:11 () in
        let dataset = Synth.linear_regression ~universe ~theta_star ~noise:0.1 ~n:150_000 rng in
        let q = Cm_query.make ~loss:(Losses.squared ()) ~domain () in
        (* (a) rounding bias: loss of theta_star on the discretized data vs
           the best achievable there — how much signal the grid destroyed *)
        let best = (Cm_query.minimize_on_dataset ~iters:600 q dataset).Pmw_convex.Solve.value in
        let at_star = Cm_query.loss_on_dataset q dataset theta_star in
        let bias = Float.max 0. (at_star -. best) in
        (* (b) end-to-end PMW error on this universe *)
        let workload =
          {
            Common.Workload.universe;
            domain;
            scale = 2.;
            queries = [ q; Cm_query.make ~loss:(Losses.huber ~delta:0.5 ()) ~domain () ];
            sample = (fun ~n rng -> Synth.linear_regression ~universe ~theta_star ~noise:0.1 ~n rng);
          }
        in
        let pmw =
          Common.repeat ~trials:3 (fun ~seed ->
              Common.pmw_max_error ~workload ~n:150_000 ~k:10 ~alpha:0.05 ~t_max:15
                ~oracle:(Pmw_erm.Oracles.noisy_gd ()) ~seed)
        in
        (* (c) cost of one MW update at this |X| *)
        let mw = Pmw_mw.Mw.create ~universe ~eta:0.3 () in
        let (), dt =
          Common.timed (fun () ->
              for _ = 1 to 20 do
                Pmw_mw.Mw.update mw ~loss:(fun i -> float_of_int (i land 3))
              done)
        in
        [
          string_of_int levels;
          string_of_int (Universe.size universe);
          Table.fmt_float bias;
          Common.Stats.show pmw;
          Table.fmt_float (dt /. 20. *. 1e6);
        ])
      [ 3; 5; 9; 17 ]
  in
  Table.print
    ~title:"A5.universe: grid resolution trade-off (d=2, n=150000, planted linear signal)"
    ~headers:
      [ "levels/axis"; "|X|"; "rounding bias of theta*"; "PMW max err"; "us per MW update" ]
    rows
