module Universe = Pmw_data.Universe
module Synth = Pmw_data.Synth
module Domain = Pmw_convex.Domain
module Losses = Pmw_convex.Losses
module Cm_query = Pmw_core.Cm_query
module Rng = Pmw_rng.Rng

module Table = struct
  let print ~title ~headers rows =
    let all = headers :: rows in
    let cols = List.length headers in
    let width j =
      List.fold_left (fun acc row -> Int.max acc (String.length (List.nth row j))) 0 all
    in
    let widths = List.init cols width in
    let render row =
      String.concat "  "
        (List.mapi
           (fun j cell -> Printf.sprintf "%-*s" (List.nth widths j) cell)
           row)
    in
    Printf.printf "\n== %s ==\n%s\n" title (render headers);
    Printf.printf "%s\n" (String.make (String.length (render headers)) '-');
    List.iter (fun row -> Printf.printf "%s\n" (render row)) rows;
    Printf.printf "%!"

  let fmt_float v =
    if Float.is_nan v then "n/a"
    else if Float.abs v >= 1000. || (Float.abs v < 0.001 && v <> 0.) then Printf.sprintf "%.3e" v
    else Printf.sprintf "%.4f" v

  let fmt_sci v = Printf.sprintf "%.2e" v
end

module Stats = struct
  type t = { mean : float; std : float; trials : int }

  let of_runs runs =
    let n = List.length runs in
    if n = 0 then invalid_arg "Stats.of_runs: no runs";
    let fn = float_of_int n in
    let mean = List.fold_left ( +. ) 0. runs /. fn in
    let var = List.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0. runs /. fn in
    { mean; std = sqrt var; trials = n }

  let show t =
    if t.trials = 1 then Table.fmt_float t.mean
    else Printf.sprintf "%s ±%s" (Table.fmt_float t.mean) (Table.fmt_float t.std)
end

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

module Sys_domain = Stdlib.Domain

let max_domains = Int.max 1 (Int.min 8 (Sys_domain.recommended_domain_count () - 1))

let parallel_map f items =
  match items with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      (* chunk the work over at most [max_domains] domains, preserving order *)
      let arr = Array.of_list items in
      let n = Array.length arr in
      let results = Array.make n None in
      let chunks = Int.min max_domains n in
      let worker c =
        Sys_domain.spawn (fun () ->
            let i = ref c in
            while !i < n do
              results.(!i) <- Some (f arr.(!i));
              i := !i + chunks
            done)
      in
      let domains = List.init chunks worker in
      List.iter Sys_domain.join domains;
      Array.to_list
        (Array.map (function Some v -> v | None -> assert false) results)

let repeat ?(parallel = true) ~trials f =
  let seeds = List.init trials (fun i -> i + 1) in
  let runs =
    if parallel then parallel_map (fun seed -> f ~seed) seeds
    else List.map (fun seed -> f ~seed) seeds
  in
  Stats.of_runs runs

module Workload = struct
  type regression = {
    universe : Universe.t;
    domain : Domain.t;
    scale : float;
    queries : Cm_query.t list;
    sample : n:int -> Rng.t -> Pmw_data.Dataset.t;
  }

  let regression ?(d = 2) ?(levels = 7) () =
    let universe = Universe.regression_grid ~d ~levels ~label_levels:5 () in
    let domain = Domain.unit_ball ~dim:d in
    let queries =
      [
        Cm_query.make ~loss:(Losses.squared ()) ~domain ();
        Cm_query.make ~loss:(Losses.huber ~delta:0.5 ()) ~domain ();
        Cm_query.make ~loss:(Losses.absolute ()) ~domain ();
        Cm_query.make ~loss:(Losses.quantile ~tau:0.25 ()) ~domain ();
        Cm_query.make ~loss:(Losses.quantile ~tau:0.75 ()) ~domain ();
      ]
      @ List.init d (fun j ->
            let mask = Array.init d (fun i -> i <> j) in
            Cm_query.make ~loss:(Losses.feature_mask mask (Losses.squared ())) ~domain ())
    in
    let theta_star = Array.init d (fun i -> (if i mod 2 = 0 then 0.6 else -0.4) /. sqrt (float_of_int d) *. 1.5) in
    let sample ~n rng = Synth.linear_regression ~universe ~theta_star ~noise:0.15 ~n rng in
    { universe; domain; scale = Domain.diameter domain; queries; sample }

  let classification ?(d = 4) () =
    let universe = Universe.labeled_hypercube ~d ~labels:[| -1.; 1. |] () in
    let domain = Domain.unit_ball ~dim:d in
    let queries =
      [
        Cm_query.make ~loss:(Losses.logistic ()) ~domain ();
        Cm_query.make ~loss:(Losses.hinge ()) ~domain ();
        Cm_query.make ~loss:(Losses.squared_margin ()) ~domain ();
      ]
      @ List.init (Int.min d 3) (fun j ->
            let mask = Array.init d (fun i -> i <> j) in
            Cm_query.make ~loss:(Losses.feature_mask mask (Losses.logistic ())) ~domain ())
    in
    let sample ~n rng =
      let theta_star = Synth.random_unit_vector ~dim:d rng in
      Synth.logistic_classification ~universe ~theta_star ~margin:4. ~n rng
    in
    { universe; domain; scale = Domain.diameter domain; queries; sample }

  let strongly_convex ~sigma ?(d = 2) ?(levels = 7) () =
    let universe = Universe.regression_grid ~d ~levels ~label_levels:3 () in
    let domain = Domain.unit_ball ~dim:d in
    (* Distinct targets: shifted/scaled copies of the record's features. *)
    let make_target j (x : Pmw_data.Point.t) =
      Array.mapi
        (fun i v -> 0.8 *. v *. if (i + j) mod 2 = 0 then 1. else -1.)
        x.Pmw_data.Point.features
    in
    let queries =
      List.init 4 (fun j ->
          Cm_query.make
            ~name:(Printf.sprintf "prox%d(σ=%g)" j sigma)
            ~loss:(Losses.prox_quadratic ~sigma ~target:(make_target j) ~dim:d ())
            ~domain ())
    in
    let scale =
      List.fold_left (fun acc q -> Float.max acc (Cm_query.scale q)) 0. queries
    in
    let sample ~n rng =
      Pmw_data.Dataset.of_histogram ~n (Synth.zipf_histogram ~universe ~s:0.8 rng) rng
    in
    { universe; domain; scale; queries; sample }

  let counting_queries ~d =
    let coord j (x : Pmw_data.Point.t) = x.Pmw_data.Point.features.(j) > 0. in
    let one_way =
      List.init d (fun j ->
          Pmw_core.Linear_pmw.counting_query ~name:(Printf.sprintf "x%d" j) (coord j))
    in
    let two_way =
      List.concat
        (List.init d (fun j ->
             List.init (d - j - 1) (fun off ->
                 let j' = j + off + 1 in
                 Pmw_core.Linear_pmw.counting_query
                   ~name:(Printf.sprintf "x%d&x%d" j j')
                   (fun x -> coord j x && coord j' x))))
    in
    one_way @ two_way
end

let default_privacy = Pmw_dp.Params.create ~eps:1. ~delta:1e-6

let run_stream ~(workload : Workload.regression) ~k ~dataset ~answer =
  let analyst = Pmw_core.Analyst.cycle ~name:"panel" workload.Workload.queries ~k in
  let records = Pmw_core.Analyst.run ~analyst ~k ~answer ~dataset ~solver_iters:300 () in
  Pmw_core.Analyst.max_error records

let pmw_max_error ~workload ~n ~k ~alpha ~t_max ~oracle ~seed =
  let rng = Rng.create ~seed () in
  let dataset = workload.Workload.sample ~n rng in
  let config =
    Pmw_core.Config.practical ~universe:workload.Workload.universe ~privacy:default_privacy
      ~alpha ~beta:0.05 ~scale:workload.Workload.scale ~k ~t_max ~solver_iters:150 ()
  in
  let mechanism = Pmw_core.Online_pmw.create ~config ~dataset ~oracle ~rng () in
  run_stream ~workload ~k ~dataset ~answer:(fun q ->
      Option.map (fun o -> o.Pmw_core.Online_pmw.theta) (Pmw_core.Online_pmw.answer_opt mechanism q))

let composition_max_error ~workload ~n ~k ~oracle ~seed =
  let rng = Rng.create ~seed () in
  let dataset = workload.Workload.sample ~n rng in
  let baseline =
    Pmw_core.Composition.create ~dataset ~oracle ~privacy:default_privacy ~k ~solver_iters:150
      ~rng ()
  in
  run_stream ~workload ~k ~dataset ~answer:(fun q -> Pmw_core.Composition.answer baseline q)
