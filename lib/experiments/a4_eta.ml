(* Ablation A4 — the MW learning rate.

   Figure 3 fixes eta = sqrt(log|X| / T). The KL-potential argument behind
   Lemma 3.4 shows each update drops KL(D || Dhat) by ~eta*alpha/4 - eta^2 S^2,
   so eta too small wastes updates and eta too large overshoots. We replay
   the same update-vector stream at several eta and report how quickly the
   hypothesis's workload error falls — Figure 3's choice should sit near the
   sweet spot. *)

module Table = Common.Table
module Rng = Pmw_rng.Rng

let name = "a4-eta"
let description = "Ablation: MW learning-rate sensitivity around Figure 3's sqrt(log|X|/T)"

let final_error ~(workload : Common.Workload.regression) ~dataset ~eta ~rounds =
  let universe = workload.Common.Workload.universe in
  let mw = Pmw_mw.Mw.create ~universe ~eta () in
  let queries = Array.of_list workload.Common.Workload.queries in
  let iters = 200 in
  (* Non-private replay of the update loop (oracle = exact solver): isolates
     the MW dynamics from privacy noise. *)
  for t = 0 to rounds - 1 do
    let q = queries.(t mod Array.length queries) in
    let dhat = Pmw_mw.Mw.distribution mw in
    let theta_hyp = (Pmw_core.Cm_query.minimize_on_histogram ~iters q dhat).Pmw_convex.Solve.theta in
    let theta_star = (Pmw_core.Cm_query.minimize_on_dataset ~iters q dataset).Pmw_convex.Solve.theta in
    let s = workload.Common.Workload.scale in
    Pmw_mw.Mw.update mw ~loss:(fun i ->
        Pmw_linalg.Special.clamp ~lo:(-.s) ~hi:s
          (Pmw_core.Cm_query.update_vector q ~theta_oracle:theta_star ~theta_hyp i
             (Pmw_data.Universe.get universe i)))
  done;
  let dhat = Pmw_mw.Mw.distribution mw in
  Array.fold_left
    (fun acc q -> Float.max acc (Pmw_core.Cm_query.err_hypothesis ~iters q dataset dhat))
    0. queries

let run () =
  let workload = Common.Workload.regression ~d:2 () in
  let rng = Rng.create ~seed:4 () in
  let dataset = workload.Common.Workload.sample ~n:100_000 rng in
  let rounds = 20 in
  let eta_theory =
    sqrt (Pmw_data.Universe.log_size workload.Common.Workload.universe /. float_of_int rounds)
  in
  let rows =
    List.map
      (fun factor ->
        let eta = eta_theory *. factor in
        let err = final_error ~workload ~dataset ~eta ~rounds in
        [
          Printf.sprintf "%.2f x theory" factor;
          Table.fmt_float eta;
          Table.fmt_float err;
        ])
      [ 0.1; 0.3; 1.0; 3.0; 10.0 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "A4.eta: workload error of Dhat after %d noiseless updates (theory eta = %.3f)" rounds
         eta_theory)
    ~headers:[ "eta"; "value"; "max workload err of final hypothesis" ]
    rows
