(* Experiment F4.privacy — Theorem 3.9's guarantee, audited empirically.

   Two checks:
   (1) Sparse-vector audit: run SV on worst-case adjacent query streams
       (every query shifted by exactly the sensitivity) many times, estimate
       the log probability ratio of answer patterns, and compare with the
       configured eps. The estimate must stay below eps (up to sampling
       noise) — a mechanism bug (e.g. forgetting to refresh the threshold)
       would push it above.
   (2) Accountant comparison on a full online-PMW interaction: the oracle
       ledger's basic, advanced (Thm 3.10) and zCDP totals, showing the
       composition theorem the paper uses and the modern improvement. *)

module Table = Common.Table
module Params = Pmw_dp.Params
module Sv = Pmw_dp.Sparse_vector
module Rng = Pmw_rng.Rng

let name = "f4-privacy"
let description = "Theorem 3.9: empirical SV privacy audit + accountant comparison"

let audit_sv ~eps ~trials =
  let sensitivity = 0.05 in
  let stream_a = [| 0.9; 0.4; 0.75; 0.2; 0.8 |] in
  let stream_b = Array.map (fun v -> v +. sensitivity) stream_a in
  (* Probability of each of the 2^5 answer patterns under both inputs. *)
  let pattern_counts stream =
    let counts = Hashtbl.create 32 in
    for seed = 1 to trials do
      let sv =
        Sv.create ~t_max:4 ~k:10 ~threshold:1.
          ~privacy:(Params.create ~eps ~delta:1e-6)
          ~sensitivity
          ~rng:(Rng.create ~seed ())
          ()
      in
      let key =
        String.concat ""
          (Array.to_list
             (Array.map
                (fun v ->
                  match Sv.query sv v with
                  | Some Sv.Top -> "T"
                  | Some Sv.Bottom -> "B"
                  | None -> "H")
                stream))
      in
      Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
    done;
    counts
  in
  let ca = pattern_counts stream_a and cb = pattern_counts stream_b in
  (* worst log-ratio among patterns seen often enough for a stable estimate *)
  let worst = ref 0. in
  Hashtbl.iter
    (fun key na ->
      match Hashtbl.find_opt cb key with
      | Some nb when na > trials / 50 && nb > trials / 50 ->
          let r = Float.abs (log (float_of_int na /. float_of_int nb)) in
          if r > !worst then worst := r
      | Some _ | None -> ())
    ca;
  !worst

let run () =
  let trials = 6000 in
  let rows =
    List.map
      (fun eps ->
        let measured = audit_sv ~eps ~trials in
        [
          Table.fmt_float eps;
          Table.fmt_float measured;
          (if measured <= eps +. 0.3 then "ok" else "VIOLATION?");
        ])
      [ 0.25; 0.5; 1.; 2. ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "F4.privacy (a): SV empirical eps-hat on worst-case adjacent streams (%d trials)" trials)
    ~headers:[ "configured eps"; "measured worst log-ratio"; "verdict" ]
    rows;

  (* (b) accountant totals across a real interaction *)
  let workload = Common.Workload.regression ~d:2 () in
  let rng = Rng.create ~seed:5 () in
  let dataset = workload.Common.Workload.sample ~n:150_000 rng in
  let config =
    Pmw_core.Config.practical ~universe:workload.Common.Workload.universe
      ~privacy:Common.default_privacy ~alpha:0.03 ~beta:0.05
      ~scale:workload.Common.Workload.scale ~k:40 ~t_max:25 ~solver_iters:150 ()
  in
  let mechanism =
    Pmw_core.Online_pmw.create ~config ~dataset ~oracle:Pmw_erm.Oracles.exact ~rng ()
  in
  let queries = Array.of_list workload.Common.Workload.queries in
  (try
     for j = 0 to 39 do
       if Pmw_core.Online_pmw.answer_opt mechanism queries.(j mod Array.length queries) = None then
         raise Exit
     done
   with Exit -> ());
  let a = Pmw_core.Online_pmw.oracle_accountant mechanism in
  if Pmw_dp.Accountant.count a = 0 then
    Printf.printf "\nno oracle calls were made (hypothesis answered everything)\n%!"
  else begin
    let delta_slack = config.Pmw_core.Config.privacy.Params.delta /. 4. in
    let basic = Pmw_dp.Accountant.total_basic a in
    let adv = Pmw_dp.Accountant.total_advanced a ~slack:delta_slack in
    let zcdp = Pmw_dp.Accountant.total_zcdp a ~delta:delta_slack in
    Table.print
      ~title:
        (Printf.sprintf
           "F4.privacy (b): oracle-ledger totals after %d oracle calls (budgeted eps/2 = %.3f)"
           (Pmw_dp.Accountant.count a)
           (config.Pmw_core.Config.privacy.Params.eps /. 2.))
      ~headers:[ "accounting"; "total eps" ]
      [
        [ "basic composition"; Table.fmt_float basic.Params.eps ];
        [ "advanced (Thm 3.10)"; Table.fmt_float adv.Params.eps ];
        [ "zCDP (extension)"; Table.fmt_float zcdp ];
      ]
  end
