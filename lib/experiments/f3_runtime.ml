(* Experiment F3.runtime — Section 4.3's running-time discussion.

   The per-query cost of the online algorithm decomposes into (1) the sparse
   vector test — polynomial in n and d but independent of |X| beyond the
   O(|X|) loss evaluations of the public solve, and (2) the histogram update
   on top answers — Theta(|X|). We time bottom-answer rounds and top-answer
   rounds across universes of growing size and check the linear growth
   in |X| (the poly(|X|) factor that Section 4.3 proves unavoidable). *)

module Table = Common.Table
module Universe = Pmw_data.Universe
module Dataset = Pmw_data.Dataset
module Synth = Pmw_data.Synth
module Domain = Pmw_convex.Domain
module Losses = Pmw_convex.Losses
module Cm_query = Pmw_core.Cm_query
module Online_pmw = Pmw_core.Online_pmw
module Rng = Pmw_rng.Rng

let name = "f3-runtime"
let description = "Section 4.3: per-query wall clock vs |X| (updates are Theta(|X|))"

(* Mean-estimation queries over the hypercube: 1-d solves keep the convex
   machinery cheap so the |X| dependence dominates the measurement. *)
let measure ~d ~seed =
  let rng = Rng.create ~seed () in
  let universe = Universe.hypercube ~d () in
  let population = Synth.zipf_histogram ~universe ~s:1.2 rng in
  let dataset = Dataset.of_histogram ~n:50_000 population rng in
  let domain = Domain.interval ~lo:0. ~hi:1. in
  let queries =
    List.map
      (fun (q : Pmw_core.Linear_pmw.query) ->
        Cm_query.make
          ~loss:
            (Losses.mean_estimation
               ~q:(fun x -> q.Pmw_core.Linear_pmw.value 0 x)
               ~name:q.Pmw_core.Linear_pmw.name)
          ~domain ())
      (Common.Workload.counting_queries ~d)
  in
  let config =
    Pmw_core.Config.practical ~universe ~privacy:Common.default_privacy ~alpha:0.05 ~beta:0.05
      ~scale:2. ~k:(List.length queries) ~t_max:20 ~solver_iters:100 ()
  in
  let mechanism =
    Online_pmw.create ~config ~dataset ~oracle:Pmw_erm.Oracles.strongly_convex ~rng ()
  in
  let bottom_time = ref 0. and bottom_count = ref 0 in
  let top_time = ref 0. and top_count = ref 0 in
  List.iter
    (fun q ->
      let outcome, dt = Common.timed (fun () -> Online_pmw.answer_opt mechanism q) in
      match outcome with
      | Some { Online_pmw.source = Online_pmw.From_hypothesis; _ } ->
          bottom_time := !bottom_time +. dt;
          incr bottom_count
      | Some { Online_pmw.source = Online_pmw.From_oracle; _ } ->
          top_time := !top_time +. dt;
          incr top_count
      | None -> ())
    queries;
  let avg t c = if c = 0 then nan else t /. float_of_int c in
  (avg !bottom_time !bottom_count, avg !top_time !top_count, !top_count)

let run () =
  let rows =
    List.map
      (fun d ->
        let bottom, top, tops = measure ~d ~seed:1 in
        [
          string_of_int d;
          string_of_int (1 lsl d);
          Table.fmt_float (bottom *. 1e3);
          Table.fmt_float (top *. 1e3);
          string_of_int tops;
        ])
      [ 6; 9; 12 ]
  in
  Table.print
    ~title:"F3.runtime: milliseconds per query by answer type (mean-estimation queries, n=50000)"
    ~headers:[ "d"; "|X|=2^d"; "bottom-answer ms"; "top-answer ms (MW update)"; "#tops" ]
    rows;
  Printf.printf
    "expected: both phases pay O(|X|) through histogram evaluations; top answers pay the most\n\
     (public solve + oracle + the Theta(|X|) MW re-weighting) — the poly(|X|) of Section 4.3.\n%!"
