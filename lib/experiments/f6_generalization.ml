(* Experiment F6 — the Section 1.3 connection: differential privacy implies
   generalization under adaptive analysis (Dwork et al. 2015; Bassily et al.
   2015 extend it to CM queries, citing this paper's mechanism).

   Setup: the dataset is a SAMPLE from a known population. An adaptive
   analyst runs greedy forward feature selection: at each round it asks for
   the best regression restricted to the features chosen so far plus one
   candidate, picks the candidate whose answered model looked best ON THE
   SAMPLE, and continues. With direct (non-private) reuse of the sample the
   selected models overfit: their sample risk understates their population
   risk. Answering through online PMW keeps the generalization gap small.

   We report the final model's |population risk - sample risk| for both
   pipelines — the private one should be markedly smaller. *)

module Table = Common.Table
module Vec = Pmw_linalg.Vec
module Universe = Pmw_data.Universe
module Dataset = Pmw_data.Dataset
module Histogram = Pmw_data.Histogram
module Domain = Pmw_convex.Domain
module Losses = Pmw_convex.Losses
module Cm_query = Pmw_core.Cm_query
module Rng = Pmw_rng.Rng

let name = "f6-generalization"
let description = "Section 1.3: generalization gap of adaptive analysis, private vs direct reuse"

let d = 6

(* Population: labels are pure noise — any "signal" an adaptive analyst
   finds in the sample is overfitting, so the gap isolates adaptivity. *)
let population rng =
  let universe = Universe.labeled_hypercube ~d ~labels:[| -1.; 1. |] () in
  ignore rng;
  (universe, Histogram.uniform universe)

let greedy_gap ~answer ~sample ~pop_hist ~domain =
  let chosen = Array.make d false in
  let current = ref (Vec.create d) in
  for _ = 1 to 3 do
    (* try adding each unchosen feature; keep the one with best sample risk *)
    let best = ref None in
    for j = 0 to d - 1 do
      if not chosen.(j) then begin
        let mask = Array.mapi (fun i c -> c || i = j) chosen in
        let q = Cm_query.make ~loss:(Losses.feature_mask mask (Losses.squared_margin ())) ~domain () in
        match answer q with
        | None -> ()
        | Some theta ->
            let sample_risk = Cm_query.loss_on_dataset q sample theta in
            (match !best with
            | Some (_, _, _, r) when r <= sample_risk -> ()
            | Some _ | None -> best := Some (j, q, theta, sample_risk))
      end
    done;
    match !best with
    | None -> ()
    | Some (j, _, theta, _) ->
        chosen.(j) <- true;
        current := theta
  done;
  (* final model: gap between sample risk and population risk on the last
     query family (full chosen mask) *)
  let q = Cm_query.make ~loss:(Losses.feature_mask chosen (Losses.squared_margin ())) ~domain () in
  let sample_risk = Cm_query.loss_on_dataset q sample !current in
  let pop_risk = Cm_query.loss_on_histogram q pop_hist !current in
  Float.abs (pop_risk -. sample_risk)

let one_trial ~n ~seed =
  let rng = Rng.create ~seed () in
  let universe, pop_hist = population rng in
  let sample = Dataset.of_histogram ~n pop_hist rng in
  let domain = Domain.unit_ball ~dim:d in
  (* (a) direct reuse: exact empirical minimizer, no privacy *)
  let direct =
    greedy_gap ~sample ~pop_hist ~domain ~answer:(fun q ->
        Some (Cm_query.minimize_on_dataset ~iters:200 q sample).Pmw_convex.Solve.theta)
  in
  (* (b) through online PMW *)
  let config =
    Pmw_core.Config.practical ~universe ~privacy:Common.default_privacy ~alpha:0.05 ~beta:0.05
      ~scale:2. ~k:64 ~t_max:15 ~solver_iters:150 ()
  in
  let mechanism =
    Pmw_core.Online_pmw.create ~config ~dataset:sample ~oracle:(Pmw_erm.Oracles.glm ()) ~rng ()
  in
  let private_gap =
    greedy_gap ~sample ~pop_hist ~domain ~answer:(fun q ->
        Option.map (fun o -> o.Pmw_core.Online_pmw.theta) (Pmw_core.Online_pmw.answer_opt mechanism q))
  in
  (direct, private_gap)

let run () =
  let rows =
    List.map
      (fun n ->
        let runs = List.init 5 (fun i -> one_trial ~n ~seed:(i + 1)) in
        let direct = Common.Stats.of_runs (List.map fst runs) in
        let priv = Common.Stats.of_runs (List.map snd runs) in
        [ string_of_int n; Common.Stats.show direct; Common.Stats.show priv ])
      [ 500; 2_000; 8_000 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "F6.generalization: |pop risk - sample risk| after 3 rounds of greedy adaptive selection (pure-noise labels, d=%d)"
         d)
    ~headers:[ "n"; "direct reuse gap"; "via online PMW gap" ]
    rows;
  Printf.printf
    "expected: direct reuse overfits (gap ~ sqrt(features tried / n) and shrinking slowly);\n\
     the DP pipeline's gap stays near the sampling error (Dwork et al. 2015 / BSSU15).\n%!"
