(* Experiment F5.regret — Lemma 3.4.

   The multiplicative-weights engine guarantees, against ANY loss sequence
   bounded by S and any comparator distribution D,
   (1/T) sum_t <u_t, Dhat_t - D> <= 2 S sqrt(log|X| / T). We drive the
   engine with the adversarial sequence that always charges the hypothesis's
   current mode and credits a hidden target, and report the measured average
   regret next to the bound across T — the bound must hold at every T and
   the measured curve should decay like ~1/sqrt(T). *)

module Table = Common.Table
module Universe = Pmw_data.Universe
module Histogram = Pmw_data.Histogram
module Mw = Pmw_mw.Mw

let name = "f5-regret"
let description = "Lemma 3.4: measured MW regret vs the 2 S sqrt(log|X|/T) bound"

let adversarial_regret ~universe ~t_max ~s =
  let size = Universe.size universe in
  let eta = sqrt (Universe.log_size universe /. float_of_int t_max) /. s in
  let mw = Mw.create ~universe ~eta () in
  let target = 3 in
  let total = ref 0. in
  for _ = 1 to t_max do
    let d = Mw.distribution mw in
    let mode = ref 0 in
    for i = 1 to size - 1 do
      if Histogram.get d i > Histogram.get d !mode then mode := i
    done;
    let u i = if i = !mode then s else if i = target then -.s else 0. in
    let inner_dhat = Histogram.expect d (fun i _ -> u i) in
    (* comparator: point mass on the target *)
    let inner_target = u target in
    total := !total +. (inner_dhat -. inner_target);
    Mw.update mw ~loss:u
  done;
  !total /. float_of_int t_max

let run () =
  let universe = Universe.hypercube ~d:8 () in
  let s = 1. in
  let rows =
    List.map
      (fun t_max ->
        let measured = adversarial_regret ~universe ~t_max ~s in
        let bound = Mw.regret_bound ~universe ~t_max ~scale:s in
        [
          string_of_int t_max;
          Table.fmt_float measured;
          Table.fmt_float bound;
          (if measured <= bound then "ok" else "VIOLATION");
        ])
      [ 50; 200; 800; 3200 ]
  in
  Table.print
    ~title:"F5.regret: adversarial loss sequence over |X|=256, S=1"
    ~headers:[ "T"; "measured avg regret"; "bound 2S sqrt(log|X|/T)"; "verdict" ]
    rows
