module Special = Pmw_linalg.Special
module Histogram = Pmw_data.Histogram
module Universe = Pmw_data.Universe

type t = {
  universe : Universe.t;
  eta : float;
  log_w : float array;
  mutable update_count : int;
}

let create ~universe ~eta =
  if eta <= 0. then invalid_arg "Mw.create: eta must be positive";
  { universe; eta; log_w = Array.make (Universe.size universe) 0.; update_count = 0 }

let of_histogram hist ~eta =
  if eta <= 0. then invalid_arg "Mw.of_histogram: eta must be positive";
  let universe = Histogram.universe hist in
  let log_w =
    Array.init (Universe.size universe) (fun i ->
        let p = Histogram.get hist i in
        if p > 0. then log p else -1e300)
  in
  { universe; eta; log_w; update_count = 0 }

let eta t = t.eta
let universe t = t.universe
let updates t = t.update_count

let renormalize t =
  (* Keep log-weights centered to avoid drifting toward -inf/overflow. *)
  let lse = Special.log_sum_exp t.log_w in
  if Float.abs lse > 500. then
    for i = 0 to Array.length t.log_w - 1 do
      t.log_w.(i) <- t.log_w.(i) -. lse
    done

let distribution t =
  let w = Special.softmax t.log_w in
  Histogram.of_weights t.universe w

let update t ~loss =
  for i = 0 to Array.length t.log_w - 1 do
    t.log_w.(i) <- t.log_w.(i) -. (t.eta *. loss i)
  done;
  t.update_count <- t.update_count + 1;
  renormalize t

let update_checked t ~loss =
  (* Two-phase: evaluate every loss first, apply only if all are finite, so a
     NaN/Inf anywhere leaves the hypothesis untouched. *)
  let n = Array.length t.log_w in
  let staged = Array.init n loss in
  let bad = ref (-1) in
  for i = n - 1 downto 0 do
    if not (Float.is_finite staged.(i)) then bad := i
  done;
  if !bad >= 0 then
    Error (Printf.sprintf "Mw.update_checked: non-finite loss %h at element %d" staged.(!bad) !bad)
  else begin
    for i = 0 to n - 1 do
      t.log_w.(i) <- t.log_w.(i) -. (t.eta *. staged.(i))
    done;
    t.update_count <- t.update_count + 1;
    renormalize t;
    Ok ()
  end

let update_gain t ~gain = update t ~loss:(fun i -> -.gain i)

let log_weights t = Array.copy t.log_w

let restore t ~log_weights ~updates =
  if Array.length log_weights <> Array.length t.log_w then
    invalid_arg "Mw.restore: log-weight length mismatch";
  if updates < 0 then invalid_arg "Mw.restore: negative update count";
  Array.iter
    (fun w -> if Float.is_nan w then invalid_arg "Mw.restore: NaN log-weight")
    log_weights;
  Array.blit log_weights 0 t.log_w 0 (Array.length log_weights);
  t.update_count <- updates

let kl_to t target = Histogram.kl_div target (distribution t)

let theory_eta ~universe ~t_max =
  if t_max <= 0 then invalid_arg "Mw.theory_eta: t_max must be positive";
  sqrt (Universe.log_size universe /. float_of_int t_max)

let regret_bound ~universe ~t_max ~scale =
  if t_max <= 0 then invalid_arg "Mw.regret_bound: t_max must be positive";
  2. *. scale *. sqrt (Universe.log_size universe /. float_of_int t_max)
