module Special = Pmw_linalg.Special
module Histogram = Pmw_data.Histogram
module Universe = Pmw_data.Universe
module Pool = Pmw_parallel.Pool

type t = {
  universe : Universe.t;
  eta : float;
  log_w : float array;
  pool : Pool.t;
  scratch : float array;  (* staged losses for [update_checked]; reused *)
  mutable update_count : int;
}

let make ?pool ~universe ~eta log_w =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  { universe; eta; log_w; pool; scratch = Array.make (Array.length log_w) 0.; update_count = 0 }

let create ?pool ~universe ~eta () =
  if eta <= 0. then invalid_arg "Mw.create: eta must be positive";
  make ?pool ~universe ~eta (Array.make (Universe.size universe) 0.)

let of_histogram ?pool hist ~eta =
  if eta <= 0. then invalid_arg "Mw.of_histogram: eta must be positive";
  let universe = Histogram.universe hist in
  (* Zero prior mass is represented exactly: log 0 = −∞. The update
     [−∞ − η·loss] stays −∞ for every finite loss, and softmax/log_sum_exp
     assign such elements exactly zero mass — a zero-prior element can never
     drift back into the support. *)
  let log_w =
    Array.init (Universe.size universe) (fun i ->
        let p = Histogram.get hist i in
        if p > 0. then log p else Float.neg_infinity)
  in
  make ?pool ~universe ~eta log_w

let eta t = t.eta
let universe t = t.universe
let updates t = t.update_count
let pool t = t.pool

(* Log-weights must stay inside a window where [exp] arithmetic is safe. The
   seed recomputed a full log-sum-exp after every update to decide whether to
   recenter; tracking the maximum (free inside the fused update pass) gives
   the same protection — [lse] is within [log |X|] of the max — without the
   per-update exp sweep. *)
let recenter_bound = 500.

let recenter t mx =
  if Float.abs mx > recenter_bound then begin
    let lse = Special.log_sum_exp ~pool:t.pool t.log_w in
    let lw = t.log_w in
    Pool.parallel_for t.pool ~n:(Array.length lw) (fun lo hi ->
        for i = lo to hi - 1 do
          lw.(i) <- lw.(i) -. lse
        done)
  end

let distribution t =
  let w = Array.make (Array.length t.log_w) 0. in
  Special.softmax_into ~pool:t.pool ~dst:w t.log_w;
  Histogram.unsafe_of_normalized t.universe w

(* One fused sweep: apply the step and track the running maximum of the new
   log-weights in the same pass. [loss] may be evaluated on worker domains
   and must be thread-safe (all mechanism losses are pure index functions). *)
let apply_loss t loss =
  let lw = t.log_w in
  let eta = t.eta in
  let mx =
    Pool.parallel_reduce t.pool ~n:(Array.length lw) ~neutral:neg_infinity ~combine:Float.max
      ~chunk:(fun lo hi ->
        let m = ref neg_infinity in
        for i = lo to hi - 1 do
          let v = lw.(i) -. (eta *. loss i) in
          lw.(i) <- v;
          if v > !m then m := v
        done;
        !m)
  in
  t.update_count <- t.update_count + 1;
  recenter t mx

let update t ~loss = apply_loss t loss

let update_checked t ~loss =
  (* Two-phase: evaluate every loss first (into the reusable scratch buffer),
     apply only if all are finite, so a NaN/Inf anywhere leaves the
     hypothesis untouched. *)
  let n = Array.length t.log_w in
  let staged = t.scratch in
  Pool.parallel_for t.pool ~n (fun lo hi ->
      for i = lo to hi - 1 do
        staged.(i) <- loss i
      done);
  let first_bad a b = if a >= 0 then (if b >= 0 then Int.min a b else a) else b in
  let bad =
    Pool.parallel_reduce t.pool ~n ~neutral:(-1) ~combine:first_bad
      ~chunk:(fun lo hi ->
        let bad = ref (-1) in
        for i = hi - 1 downto lo do
          if not (Float.is_finite staged.(i)) then bad := i
        done;
        !bad)
  in
  if bad >= 0 then
    Error (Printf.sprintf "Mw.update_checked: non-finite loss %h at element %d" staged.(bad) bad)
  else begin
    apply_loss t (fun i -> staged.(i));
    Ok ()
  end

let update_gain t ~gain = update t ~loss:(fun i -> -.gain i)

let log_weights t = Array.copy t.log_w

let restore t ~log_weights ~updates =
  if Array.length log_weights <> Array.length t.log_w then
    invalid_arg "Mw.restore: log-weight length mismatch";
  if updates < 0 then invalid_arg "Mw.restore: negative update count";
  Array.iter
    (fun w -> if Float.is_nan w then invalid_arg "Mw.restore: NaN log-weight")
    log_weights;
  Array.blit log_weights 0 t.log_w 0 (Array.length log_weights);
  t.update_count <- updates

let kl_to t target = Histogram.kl_div target (distribution t)

let theory_eta ~universe ~t_max =
  if t_max <= 0 then invalid_arg "Mw.theory_eta: t_max must be positive";
  sqrt (Universe.log_size universe /. float_of_int t_max)

let regret_bound ~universe ~t_max ~scale =
  if t_max <= 0 then invalid_arg "Mw.regret_bound: t_max must be positive";
  2. *. scale *. sqrt (Universe.log_size universe /. float_of_int t_max)
