(** The multiplicative-weights update over the [|X|]-dimensional simplex.

    The state is a distribution [D̂ₜ] over universe elements, stored as
    unnormalized log-weights for numerical stability (weights over large
    universes underflow quickly under repeated exponential updates; log-space
    with log-sum-exp normalization does not).

    Sign convention: {!update} treats its argument as a {e loss} vector and
    multiplies weights by [exp(−η·loss(x))], decreasing the mass of elements
    with high loss. The paper's Figure 3 writes [D̂ₜ₊₁(x) ∝ exp(η·uₜ(x))·D̂ₜ(x)]
    for the update vector [uₜ(x) = ⟨θᵗ − θ̂ᵗ, ∇ℓₓ(θ̂ᵗ)⟩]; since its analysis
    establishes [⟨uₜ, D̂ₜ − D⟩ >= α/4 > 0] (Claim 3.6), the KL-potential
    argument behind Lemma 3.4 requires mass to move {e away} from high-[uₜ]
    elements, i.e. the update [exp(−η·uₜ)]. We implement that sign (and
    document the discrepancy); with it, the measured potential drop per
    update matches Lemma 3.4 (experiment F5).

    The regret bound (Lemma 3.4): for any losses [u₁..u_T] with
    [‖uₜ‖_∞ <= s] and [η = √(log|X|/T)/s],
    [(1/T) Σₜ ⟨uₜ, D̂ₜ − D⟩ <= 2·s·√(log|X|/T)] for every distribution [D]. *)

type t

val create : ?pool:Pmw_parallel.Pool.t -> universe:Pmw_data.Universe.t -> eta:float -> unit -> t
(** Uniform initial distribution [D̂₁]. The O(|X|) sweeps (update, softmax,
    normalization) run on [pool] (default: the shared
    {!Pmw_parallel.Pool.default}) with deterministic chunking — every
    log-weight and distribution bit is independent of the pool size.
    @raise Invalid_argument if [eta <= 0]. *)

val of_histogram : ?pool:Pmw_parallel.Pool.t -> Pmw_data.Histogram.t -> eta:float -> t
(** Start from a given (e.g. publicly known) prior. Zero-mass elements get
    log-weight [−∞] exactly: they carry zero mass forever (no finite loss
    sequence can resurrect them), instead of drifting via a large-negative
    sentinel. *)

val eta : t -> float
val universe : t -> Pmw_data.Universe.t

val pool : t -> Pmw_parallel.Pool.t
(** The pool this instance runs its sweeps on. *)

val updates : t -> int
(** Number of updates performed so far (the paper's [t]). *)

val distribution : t -> Pmw_data.Histogram.t
(** The current hypothesis [D̂ₜ] (normalized). *)

val update : t -> loss:(int -> float) -> unit
(** One MW step: [log w(x) ← log w(x) − η·loss(x)], then renormalize lazily
    (recentering only when the running maximum drifts out of the safe
    window, so the common case is a single fused sweep). [loss] is evaluated
    once per universe element, possibly from worker domains — it must be
    thread-safe (every mechanism loss is a pure function of the index). *)

val update_gain : t -> gain:(int -> float) -> unit
(** The opposite sign ([+η·gain]), provided for completeness/tests. *)

val update_checked : t -> loss:(int -> float) -> (unit, string) result
(** {!update} with a numeric quarantine: every loss value is evaluated and
    checked finite {e before} any weight moves, so a NaN/Inf gradient cannot
    half-apply an update. [Error] (naming the offending element) leaves the
    hypothesis and the update counter exactly as they were. *)

val log_weights : t -> float array
(** A copy of the raw (unnormalized) log-weight vector, for checkpointing. *)

val restore : t -> log_weights:float array -> updates:int -> unit
(** Overwrite the state of [t] with checkpointed log-weights and update
    counter. @raise Invalid_argument on a length mismatch, a NaN entry, or a
    negative counter. *)

val kl_to : t -> Pmw_data.Histogram.t -> float
(** [KL(target ‖ D̂ₜ)] — the potential function of the convergence analysis. *)

val theory_eta : universe:Pmw_data.Universe.t -> t_max:int -> float
(** The paper's learning rate [η = √(log|X| / T)] (Figure 3). *)

val regret_bound : universe:Pmw_data.Universe.t -> t_max:int -> scale:float -> float
(** Lemma 3.4's right-hand side [2·S·√(log|X| / T)]. *)
