type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0. }

let init ~rows ~cols f =
  let m = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let of_rows row_vecs =
  let rows = Array.length row_vecs in
  if rows = 0 then invalid_arg "Mat.of_rows: empty";
  let cols = Array.length row_vecs.(0) in
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged rows")
    row_vecs;
  init ~rows ~cols (fun i j -> row_vecs.(i).(j))

let rows m = m.rows
let cols m = m.cols

let check_index m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat: index out of range"

let get m i j =
  check_index m i j;
  m.data.((i * m.cols) + j)

let set m i j v =
  check_index m i j;
  m.data.((i * m.cols) + j) <- v

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Mat.row: index out of range";
  Array.sub m.data (i * m.cols) m.cols

let copy m = { m with data = Array.copy m.data }
let transpose m = init ~rows:m.cols ~cols:m.rows (fun i j -> get m j i)
let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1. else 0.)

let matvec m x =
  if Array.length x <> m.cols then invalid_arg "Mat.matvec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. x.(j))
      done;
      !acc)

let matvec_t m x =
  if Array.length x <> m.rows then invalid_arg "Mat.matvec_t: dimension mismatch";
  let out = Array.make m.cols 0. in
  for i = 0 to m.rows - 1 do
    let xi = x.(i) in
    for j = 0 to m.cols - 1 do
      out.(j) <- out.(j) +. (m.data.((i * m.cols) + j) *. xi)
    done
  done;
  out

let matmul a b =
  if a.cols <> b.rows then invalid_arg "Mat.matmul: dimension mismatch";
  init ~rows:a.rows ~cols:b.cols (fun i j ->
      let acc = ref 0. in
      for k = 0 to a.cols - 1 do
        acc := !acc +. (get a i k *. get b k j)
      done;
      !acc)

let gram a = matmul (transpose a) a

let add_diagonal a c =
  if a.rows <> a.cols then invalid_arg "Mat.add_diagonal: matrix must be square";
  init ~rows:a.rows ~cols:a.cols (fun i j -> get a i j +. if i = j then c else 0.)

let solve a b =
  if a.rows <> a.cols then invalid_arg "Mat.solve: matrix must be square";
  if Array.length b <> a.rows then invalid_arg "Mat.solve: dimension mismatch";
  let n = a.rows in
  let m = copy a in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    (* Partial pivoting. *)
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs (get m r col) > Float.abs (get m !pivot col) then pivot := r
    done;
    if Float.abs (get m !pivot col) < 1e-12 then failwith "Mat.solve: singular matrix";
    if !pivot <> col then begin
      for j = 0 to n - 1 do
        let tmp = get m col j in
        set m col j (get m !pivot j);
        set m !pivot j tmp
      done;
      let tmp = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- tmp
    end;
    let p = get m col col in
    for r = col + 1 to n - 1 do
      let factor = get m r col /. p in
      if factor <> 0. then begin
        for j = col to n - 1 do
          set m r j (get m r j -. (factor *. get m col j))
        done;
        x.(r) <- x.(r) -. (factor *. x.(col))
      end
    done
  done;
  (* Back substitution. *)
  for r = n - 1 downto 0 do
    let acc = ref x.(r) in
    for j = r + 1 to n - 1 do
      acc := !acc -. (get m r j *. x.(j))
    done;
    x.(r) <- !acc /. get m r r
  done;
  x

let least_squares ?(ridge = 0.) a b =
  let g = add_diagonal (gram a) ridge in
  let rhs = matvec_t a b in
  solve g rhs

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "%a@," Vec.pp (row m i)
  done;
  Format.fprintf fmt "@]"
