(** Dense vectors over [float array].

    The representation is deliberately transparent ([float array]) so that
    callers can index directly; these functions add the numerics that need
    care (compensated summation, overflow-safe norms) and the small algebra
    vocabulary the solvers use. All binary operations require equal lengths
    and raise [Invalid_argument] otherwise. *)

type t = float array

val create : int -> t
(** Zero vector of the given dimension. *)

val init : int -> (int -> float) -> t
val copy : t -> t
val dim : t -> int

val of_list : float list -> t
val to_list : t -> float list

val basis : int -> int -> t
(** [basis dim i] is the [i]-th standard basis vector. *)

val constant : int -> float -> t

val kahan_sum : t -> float
(** Compensated (Kahan) summation — used for histogram masses and expected
    losses over large universes, where naive summation loses precision. *)

val dot : t -> t -> float
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val axpy : alpha:float -> x:t -> y:t -> unit
(** [axpy ~alpha ~x ~y] sets [y <- alpha * x + y] in place. *)

val add_inplace : t -> t -> unit
(** [add_inplace acc v] sets [acc <- acc + v]. *)

val scale_inplace : float -> t -> unit

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t

val norm1 : t -> float
val norm2 : t -> float
val norm2_sq : t -> float
val norm_inf : t -> float

val dist2 : t -> t -> float
(** Euclidean distance. *)

val dist1 : t -> t -> float
(** L1 (total-variation, up to a factor 2) distance. *)

val normalize2 : t -> t
(** Rescale to unit Euclidean norm; returns the zero vector unchanged. *)

val lerp : t -> t -> float -> t
(** [lerp a b s] is [(1-s) a + s b]. *)

val mean : t list -> t
(** Coordinate-wise mean of a non-empty list.
    @raise Invalid_argument on an empty list. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Coordinate-wise comparison with absolute tolerance (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
