let l2_ball ~radius v =
  if radius < 0. then invalid_arg "Proj.l2_ball: radius must be non-negative";
  let n = Vec.norm2 v in
  if n <= radius then v else Vec.scale (radius /. n) v

let box ~lo ~hi v =
  if hi < lo then invalid_arg "Proj.box: hi < lo";
  Vec.map (fun x -> Float.min hi (Float.max lo x)) v

let nonneg v = Vec.map (fun x -> Float.max 0. x) v

let simplex ?(total = 1.) v =
  if total <= 0. then invalid_arg "Proj.simplex: total must be positive";
  let n = Array.length v in
  if n = 0 then invalid_arg "Proj.simplex: empty vector";
  let sorted = Array.copy v in
  Array.sort (fun a b -> compare b a) sorted;
  (* Find rho = max { i : sorted(i) - (cumsum(i) - total) / (i+1) > 0 }. *)
  let cumsum = ref 0. in
  let rho = ref (-1) in
  let theta = ref 0. in
  for i = 0 to n - 1 do
    cumsum := !cumsum +. sorted.(i);
    let candidate = (!cumsum -. total) /. float_of_int (i + 1) in
    if sorted.(i) -. candidate > 0. then begin
      rho := i;
      theta := candidate
    end
  done;
  if !rho < 0 then
    (* All coordinates extremely negative; fall back to the uniform point. *)
    Array.make n (total /. float_of_int n)
  else Vec.map (fun x -> Float.max 0. (x -. !theta)) v

let halfspace ~normal ~offset v =
  let norm_sq = Vec.norm2_sq normal in
  if norm_sq = 0. then invalid_arg "Proj.halfspace: zero normal";
  let excess = Vec.dot normal v -. offset in
  if excess <= 0. then v
  else Vec.sub v (Vec.scale (excess /. norm_sq) normal)
