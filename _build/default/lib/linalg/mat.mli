(** Small dense matrices, row-major.

    Used by the synthetic-data generators (design matrices, covariance
    shaping) and the least-squares sanity checks in tests. Not intended as a
    general-purpose BLAS; everything here is O(rows * cols) or cubic solvers
    on tiny systems. *)

type t

val create : rows:int -> cols:int -> t
(** Zero matrix. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t
val of_rows : Vec.t array -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val row : t -> int -> Vec.t
val copy : t -> t
val transpose : t -> t
val identity : int -> t

val matvec : t -> Vec.t -> Vec.t
(** [matvec a x] is [A x]. *)

val matvec_t : t -> Vec.t -> Vec.t
(** [matvec_t a x] is [Aᵀ x]. *)

val matmul : t -> t -> t

val gram : t -> t
(** [gram a] is [Aᵀ A] (cols x cols). *)

val add_diagonal : t -> float -> t
(** [add_diagonal a c] is [A + c I] for square [A]. *)

val solve : t -> Vec.t -> Vec.t
(** Solve the square linear system [A x = b] by Gaussian elimination with
    partial pivoting. @raise Failure on (numerically) singular systems. *)

val least_squares : ?ridge:float -> t -> Vec.t -> Vec.t
(** Minimize [||A x - b||² + ridge ||x||²] via the normal equations. The
    default [ridge] is [0.]; pass a small positive value for rank-deficient
    designs. *)

val pp : Format.formatter -> t -> unit
