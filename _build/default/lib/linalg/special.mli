(** Scalar numeric helpers shared by the mechanisms and solvers. *)

val log_sum_exp : float array -> float
(** [log Σᵢ exp(aᵢ)], computed stably by shifting by the maximum. Returns
    [neg_infinity] on the empty array. *)

val softmax : float array -> float array
(** Stable softmax: [exp(aᵢ - log_sum_exp a)]. Sums to 1 up to round-off.
    @raise Invalid_argument on an empty array. *)

val logistic : float -> float
(** [1 / (1 + e^{-z})], stable for large |z|. *)

val log1p_exp : float -> float
(** [log(1 + e^z)] (the logistic loss), stable for large |z|. *)

val clamp : lo:float -> hi:float -> float -> float

val erf : float -> float
(** Error function, Abramowitz–Stegun 7.1.26 rational approximation
    (|error| <= 1.5e-7) — enough for the Gaussian-mechanism calibration and
    test assertions. *)

val gaussian_cdf : mu:float -> sigma:float -> float -> float

val binary_search_root : ?iters:int -> lo:float -> hi:float -> (float -> float) -> float
(** Bisection root of a monotone function [f] with [f lo <= 0 <= f hi] (or the
    reverse); returns the midpoint after [iters] (default 200) halvings. *)
