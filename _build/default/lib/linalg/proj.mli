(** Euclidean projections onto the convex sets used as parameter domains.

    Each function returns the (unique) closest point of the set; inputs
    already inside are returned unchanged (possibly the same array — callers
    must not rely on physical identity). *)

val l2_ball : radius:float -> Vec.t -> Vec.t
(** Projection onto [{ v : ||v||₂ <= radius }].
    @raise Invalid_argument if [radius < 0.]. *)

val box : lo:float -> hi:float -> Vec.t -> Vec.t
(** Coordinate-wise clipping onto [\[lo, hi\]ᵈ].
    @raise Invalid_argument if [hi < lo]. *)

val nonneg : Vec.t -> Vec.t
(** Projection onto the non-negative orthant. *)

val simplex : ?total:float -> Vec.t -> Vec.t
(** Projection onto the probability simplex [{ v >= 0, Σ v = total }]
    (default [total = 1.]) via the sorting algorithm of Held, Wolfe &
    Crowder. @raise Invalid_argument if [total <= 0.]. *)

val halfspace : normal:Vec.t -> offset:float -> Vec.t -> Vec.t
(** Projection onto [{ v : <normal, v> <= offset }].
    @raise Invalid_argument if [normal] is the zero vector. *)
