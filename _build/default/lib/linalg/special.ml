let log_sum_exp a =
  let n = Array.length a in
  if n = 0 then neg_infinity
  else begin
    let m = Array.fold_left Float.max neg_infinity a in
    if m = neg_infinity then neg_infinity
    else begin
      let acc = ref 0. in
      for i = 0 to n - 1 do
        acc := !acc +. exp (a.(i) -. m)
      done;
      m +. log !acc
    end
  end

let softmax a =
  if Array.length a = 0 then invalid_arg "Special.softmax: empty array";
  let lse = log_sum_exp a in
  Array.map (fun x -> exp (x -. lse)) a

let logistic z = if z >= 0. then 1. /. (1. +. exp (-.z)) else exp z /. (1. +. exp z)

let log1p_exp z = if z > 0. then z +. log1p (exp (-.z)) else log1p (exp z)

let clamp ~lo ~hi x = Float.min hi (Float.max lo x)

let erf x =
  (* Abramowitz & Stegun 7.1.26. *)
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let a1 = 0.254829592
  and a2 = -0.284496736
  and a3 = 1.421413741
  and a4 = -1.453152027
  and a5 = 1.061405429
  and p = 0.3275911 in
  let t = 1. /. (1. +. (p *. x)) in
  let poly = ((((((((a5 *. t) +. a4) *. t) +. a3) *. t) +. a2) *. t) +. a1) *. t in
  sign *. (1. -. (poly *. exp (-.(x *. x))))

let gaussian_cdf ~mu ~sigma x =
  if sigma <= 0. then invalid_arg "Special.gaussian_cdf: sigma must be positive";
  0.5 *. (1. +. erf ((x -. mu) /. (sigma *. sqrt 2.)))

let binary_search_root ?(iters = 200) ~lo ~hi f =
  if hi < lo then invalid_arg "Special.binary_search_root: hi < lo";
  let flo = f lo in
  let rec loop lo hi flo i =
    if i = 0 then 0.5 *. (lo +. hi)
    else
      let mid = 0.5 *. (lo +. hi) in
      let fmid = f mid in
      if (flo <= 0. && fmid <= 0.) || (flo >= 0. && fmid >= 0.) then loop mid hi fmid (i - 1)
      else loop lo mid flo (i - 1)
  in
  loop lo hi flo iters
