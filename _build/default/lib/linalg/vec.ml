type t = float array

let create n = Array.make n 0.
let init = Array.init
let copy = Array.copy
let dim = Array.length
let of_list = Array.of_list
let to_list = Array.to_list

let basis n i =
  if i < 0 || i >= n then invalid_arg "Vec.basis: index out of range";
  let v = Array.make n 0. in
  v.(i) <- 1.;
  v

let constant n c = Array.make n c

let check_dims name a b =
  if Array.length a <> Array.length b then invalid_arg (name ^ ": dimension mismatch")

let kahan_sum v =
  let sum = ref 0. and c = ref 0. in
  for i = 0 to Array.length v - 1 do
    let y = v.(i) -. !c in
    let t = !sum +. y in
    c := t -. !sum -. y;
    sum := t
  done;
  !sum

let dot a b =
  check_dims "Vec.dot" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let add a b =
  check_dims "Vec.add" a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dims "Vec.sub" a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let scale alpha v = Array.map (fun x -> alpha *. x) v

let axpy ~alpha ~x ~y =
  check_dims "Vec.axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let add_inplace acc v = axpy ~alpha:1. ~x:v ~y:acc

let scale_inplace alpha v =
  for i = 0 to Array.length v - 1 do
    v.(i) <- alpha *. v.(i)
  done

let map = Array.map

let map2 f a b =
  check_dims "Vec.map2" a b;
  Array.mapi (fun i x -> f x b.(i)) a

let norm1 v = Array.fold_left (fun acc x -> acc +. Float.abs x) 0. v
let norm2_sq v = dot v v
let norm2 v = sqrt (norm2_sq v)
let norm_inf v = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. v

let dist2 a b =
  check_dims "Vec.dist2" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let dist1 a b =
  check_dims "Vec.dist1" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. Float.abs (a.(i) -. b.(i))
  done;
  !acc

let normalize2 v =
  let n = norm2 v in
  if n = 0. then copy v else scale (1. /. n) v

let lerp a b s =
  check_dims "Vec.lerp" a b;
  Array.mapi (fun i x -> ((1. -. s) *. x) +. (s *. b.(i))) a

let mean = function
  | [] -> invalid_arg "Vec.mean: empty list"
  | v :: vs ->
      let acc = copy v in
      List.iter (fun u -> add_inplace acc u) vs;
      scale_inplace (1. /. float_of_int (1 + List.length vs)) acc;
      acc

let approx_equal ?(tol = 1e-9) a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  for i = 0 to Array.length a - 1 do
    if Float.abs (a.(i) -. b.(i)) > tol then ok := false
  done;
  !ok

let pp fmt v =
  Format.fprintf fmt "[|";
  Array.iteri (fun i x -> if i = 0 then Format.fprintf fmt "%g" x else Format.fprintf fmt "; %g" x) v;
  Format.fprintf fmt "|]"
