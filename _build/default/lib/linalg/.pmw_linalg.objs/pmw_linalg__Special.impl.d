lib/linalg/special.ml: Array Float
