lib/linalg/special.mli:
