(** A single record: a feature vector plus a real label.

    Unsupervised universes simply carry [label = 0.]. The convex losses in
    {!Pmw_convex.Losses} read both fields; linear queries only read
    [features]. *)

type t = { features : Pmw_linalg.Vec.t; label : float }

val make : ?label:float -> Pmw_linalg.Vec.t -> t
val dim : t -> int

val dist : t -> t -> float
(** Euclidean distance on [(features, label)] jointly — the metric used for
    discretization (snapping a continuous record to a finite universe). *)

val norm : t -> float
(** Euclidean norm of the feature vector (ignores the label). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
