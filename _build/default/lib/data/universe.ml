type t = { name : string; dim : int; points : Point.t array }

let of_points ~name points =
  if Array.length points = 0 then invalid_arg "Universe.of_points: empty universe";
  let dim = Point.dim points.(0) in
  Array.iter
    (fun p -> if Point.dim p <> dim then invalid_arg "Universe.of_points: mixed dimensions")
    points;
  { name; dim; points }

let name t = t.name
let size t = Array.length t.points
let dim t = t.dim

let get t i =
  if i < 0 || i >= size t then invalid_arg "Universe.get: index out of range";
  t.points.(i)

let log_size t = log (float_of_int (size t))
let points t = t.points

let fold t ~init ~f =
  let acc = ref init in
  Array.iteri (fun i p -> acc := f !acc i p) t.points;
  !acc

let iter t ~f = Array.iteri f t.points

let nearest t p =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun i q ->
      let d = Point.dist p q in
      if d < !best_d then begin
        best := i;
        best_d := d
      end)
    t.points;
  !best

let max_feature_norm t = Array.fold_left (fun acc p -> Float.max acc (Point.norm p)) 0. t.points

let check_d d =
  if d <= 0 then invalid_arg "Universe: dimension must be positive";
  if d > 20 then invalid_arg "Universe: hypercube dimension too large (universe would not fit in memory)"

let hypercube_features d scale =
  let coord = scale /. sqrt (float_of_int d) in
  Array.init (1 lsl d) (fun code ->
      Array.init d (fun j -> if (code lsr j) land 1 = 1 then coord else -.coord))

let hypercube ~d ?(scale = 1.) () =
  check_d d;
  let features = hypercube_features d scale in
  of_points
    ~name:(Printf.sprintf "hypercube(d=%d,scale=%g)" d scale)
    (Array.map Point.make features)

let labeled_hypercube ~d ?(scale = 1.) ~labels () =
  check_d d;
  if Array.length labels = 0 then invalid_arg "Universe.labeled_hypercube: no labels";
  let features = hypercube_features d scale in
  let pts =
    Array.concat
      (Array.to_list
         (Array.map (fun label -> Array.map (fun x -> Point.make ~label x) features) labels))
  in
  of_points ~name:(Printf.sprintf "labeled_hypercube(d=%d,labels=%d)" d (Array.length labels)) pts

let axis_grid levels lo hi =
  if levels < 2 then invalid_arg "Universe: grid needs at least 2 levels";
  Array.init levels (fun i -> lo +. ((hi -. lo) *. float_of_int i /. float_of_int (levels - 1)))

let grid_features d levels radius =
  let coord_bound = radius /. sqrt (float_of_int d) in
  let axis = axis_grid levels (-.coord_bound) coord_bound in
  let total = int_of_float (float_of_int levels ** float_of_int d) in
  if total > 1 lsl 22 then invalid_arg "Universe: grid universe too large";
  Array.init total (fun code ->
      let rest = ref code in
      Array.init d (fun _ ->
          let v = axis.(!rest mod levels) in
          rest := !rest / levels;
          v))

let grid_ball ~d ~levels ?(radius = 1.) () =
  check_d d;
  let features = grid_features d levels radius in
  of_points
    ~name:(Printf.sprintf "grid_ball(d=%d,levels=%d,r=%g)" d levels radius)
    (Array.map Point.make features)

let cover_features d levels radius =
  let axis = axis_grid levels (-.radius) radius in
  let total = int_of_float (float_of_int levels ** float_of_int d) in
  if total > 1 lsl 22 then invalid_arg "Universe: grid universe too large";
  let kept = ref [] in
  for code = total - 1 downto 0 do
    let rest = ref code in
    let p =
      Array.init d (fun _ ->
          let v = axis.(!rest mod levels) in
          rest := !rest / levels;
          v)
    in
    (* tolerance keeps boundary points that land on the sphere numerically *)
    if Pmw_linalg.Vec.norm2 p <= radius +. 1e-12 then kept := p :: !kept
  done;
  if !kept = [] then [| Array.make d 0. |] else Array.of_list !kept

let ball_cover ~d ~levels ?(radius = 1.) () =
  check_d d;
  let features = cover_features d levels radius in
  of_points
    ~name:(Printf.sprintf "ball_cover(d=%d,levels=%d,r=%g)" d levels radius)
    (Array.map Point.make features)

let ball_cover_labeled ~d ~levels ~label_levels ?(radius = 1.) ?(label_bound = 1.) () =
  check_d d;
  if label_levels < 2 then invalid_arg "Universe.ball_cover_labeled: label_levels < 2";
  let features = cover_features d levels radius in
  let labels = axis_grid label_levels (-.label_bound) label_bound in
  let pts =
    Array.concat
      (Array.to_list
         (Array.map (fun label -> Array.map (fun x -> Point.make ~label x) features) labels))
  in
  of_points
    ~name:
      (Printf.sprintf "ball_cover_labeled(d=%d,levels=%d,labels=%d)" d levels label_levels)
    pts

let regression_grid ~d ~levels ~label_levels ?(radius = 1.) ?(label_bound = 1.) () =
  check_d d;
  if label_levels < 2 then invalid_arg "Universe.regression_grid: label_levels < 2";
  let features = grid_features d levels radius in
  let labels = axis_grid label_levels (-.label_bound) label_bound in
  let pts =
    Array.concat
      (Array.to_list
         (Array.map (fun label -> Array.map (fun x -> Point.make ~label x) features) labels))
  in
  of_points
    ~name:(Printf.sprintf "regression_grid(d=%d,levels=%d,labels=%d)" d levels label_levels)
    pts
