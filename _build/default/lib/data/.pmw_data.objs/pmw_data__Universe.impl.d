lib/data/universe.ml: Array Float Pmw_linalg Point Printf
