lib/data/point.mli: Format Pmw_linalg
