lib/data/point.ml: Format Pmw_linalg
