lib/data/synth.ml: Array Dataset Histogram Pmw_linalg Pmw_rng Point Universe
