lib/data/dataset.mli: Format Histogram Pmw_linalg Pmw_rng Point Universe
