lib/data/io.mli: Dataset Histogram Universe
