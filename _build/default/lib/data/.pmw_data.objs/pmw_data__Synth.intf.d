lib/data/synth.mli: Dataset Histogram Pmw_linalg Pmw_rng Universe
