lib/data/dataset.ml: Array Format Histogram Pmw_linalg Pmw_rng Universe
