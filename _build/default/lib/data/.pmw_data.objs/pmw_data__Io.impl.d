lib/data/io.ml: Array Continuous Dataset Fun Histogram List Point Printf String Universe
