lib/data/continuous.mli: Dataset Pmw_linalg Universe
