lib/data/histogram.ml: Array Float Format Pmw_linalg Pmw_rng Universe
