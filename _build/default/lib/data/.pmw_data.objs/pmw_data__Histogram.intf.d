lib/data/histogram.mli: Format Pmw_linalg Pmw_rng Point Universe
