lib/data/continuous.ml: Array Dataset Int Option Pmw_linalg Point Universe
