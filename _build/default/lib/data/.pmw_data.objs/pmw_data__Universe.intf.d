lib/data/universe.mli: Point
