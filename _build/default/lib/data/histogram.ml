module Vec = Pmw_linalg.Vec

type t = { universe : Universe.t; w : float array }

let universe t = t.universe
let size t = Array.length t.w

let get t i =
  if i < 0 || i >= size t then invalid_arg "Histogram.get: index out of range";
  t.w.(i)

let weights t = Array.copy t.w

let uniform u =
  let n = Universe.size u in
  { universe = u; w = Array.make n (1. /. float_of_int n) }

let of_weights u w =
  if Array.length w <> Universe.size u then invalid_arg "Histogram.of_weights: length mismatch";
  Array.iter
    (fun x ->
      if x < 0. || Float.is_nan x then invalid_arg "Histogram.of_weights: negative weight")
    w;
  let total = Vec.kahan_sum w in
  if total <= 0. then invalid_arg "Histogram.of_weights: non-positive total mass";
  { universe = u; w = Array.map (fun x -> x /. total) w }

let of_counts u counts =
  of_weights u
    (Array.map
       (fun c ->
         if c < 0 then invalid_arg "Histogram.of_counts: negative count";
         float_of_int c)
       counts)

let point_mass u i =
  if i < 0 || i >= Universe.size u then invalid_arg "Histogram.point_mass: index out of range";
  let w = Array.make (Universe.size u) 0. in
  w.(i) <- 1.;
  { universe = u; w }

let expect t f =
  let values = Array.mapi (fun i wi -> wi *. f i (Universe.get t.universe i)) t.w in
  Vec.kahan_sum values

let expect_vec t ~dim f =
  let acc = Vec.create dim in
  Array.iteri
    (fun i wi -> if wi > 0. then Vec.axpy ~alpha:wi ~x:(f i (Universe.get t.universe i)) ~y:acc)
    t.w;
  acc

let same_universe name a b =
  if a.universe != b.universe && Universe.name a.universe <> Universe.name b.universe then
    invalid_arg (name ^ ": histograms over different universes")

let l1_dist a b =
  same_universe "Histogram.l1_dist" a b;
  Vec.dist1 a.w b.w

let linf_dist a b =
  same_universe "Histogram.linf_dist" a b;
  Vec.norm_inf (Vec.sub a.w b.w)

let entropy t =
  let terms = Array.map (fun p -> if p > 0. then -.p *. log p else 0.) t.w in
  Vec.kahan_sum terms

let kl_div p q =
  same_universe "Histogram.kl_div" p q;
  let acc = ref 0. in
  (try
     Array.iteri
       (fun i pi ->
         if pi > 0. then
           if q.w.(i) <= 0. then raise Exit else acc := !acc +. (pi *. log (pi /. q.w.(i))))
       p.w
   with Exit -> acc := infinity);
  Float.max 0. !acc

let sample t rng = Pmw_rng.Dist.categorical ~weights:t.w rng

let sampler t =
  let alias = Pmw_rng.Dist.Alias.create t.w in
  fun rng -> Pmw_rng.Dist.Alias.draw alias rng

let support_size ?(threshold = 0.) t =
  Array.fold_left (fun acc p -> if p > threshold then acc + 1 else acc) 0 t.w

let mix a b s =
  same_universe "Histogram.mix" a b;
  if s < 0. || s > 1. then invalid_arg "Histogram.mix: s must lie in [0, 1]";
  { universe = a.universe; w = Array.mapi (fun i x -> ((1. -. s) *. x) +. (s *. b.w.(i))) a.w }

let pp fmt t =
  Format.fprintf fmt "@[<h>histogram(%s):" (Universe.name t.universe);
  let n = size t in
  let shown = min n 8 in
  for i = 0 to shown - 1 do
    Format.fprintf fmt " %.4f" t.w.(i)
  done;
  if shown < n then Format.fprintf fmt " ... (%d more)" (n - shown);
  Format.fprintf fmt "@]"
