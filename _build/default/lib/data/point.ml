module Vec = Pmw_linalg.Vec

type t = { features : Vec.t; label : float }

let make ?(label = 0.) features = { features; label }
let dim t = Vec.dim t.features

let dist a b =
  if dim a <> dim b then invalid_arg "Point.dist: dimension mismatch";
  let d = Vec.dist2 a.features b.features in
  let dl = a.label -. b.label in
  sqrt ((d *. d) +. (dl *. dl))

let norm t = Vec.norm2 t.features

let equal a b = a.label = b.label && Vec.approx_equal ~tol:0. a.features b.features

let pp fmt t = Format.fprintf fmt "{x=%a; y=%g}" Vec.pp t.features t.label
