module Vec = Pmw_linalg.Vec
module Rng = Pmw_rng.Rng
module Dist = Pmw_rng.Dist

let random_unit_vector ~dim rng =
  let rec loop () =
    let v = Dist.gaussian_vector ~dim ~sigma:1. rng in
    let n = Vec.norm2 v in
    if n < 1e-9 then loop () else Vec.scale (1. /. n) v
  in
  loop ()

let snap universe point = Universe.nearest universe point

let linear_regression ~universe ~theta_star ~noise ~n rng =
  if Vec.dim theta_star <> Universe.dim universe then
    invalid_arg "Synth.linear_regression: theta_star dimension mismatch";
  if noise < 0. then invalid_arg "Synth.linear_regression: negative noise";
  let m = Universe.size universe in
  let rows =
    Array.init n (fun _ ->
        let base = Universe.get universe (Rng.int rng m) in
        let y = Vec.dot theta_star base.Point.features +. Dist.gaussian ~sigma:noise rng in
        snap universe (Point.make ~label:y base.Point.features))
  in
  Dataset.create universe rows

let logistic_classification ~universe ~theta_star ~margin ~n rng =
  if Vec.dim theta_star <> Universe.dim universe then
    invalid_arg "Synth.logistic_classification: theta_star dimension mismatch";
  let m = Universe.size universe in
  let rows =
    Array.init n (fun _ ->
        let base = Universe.get universe (Rng.int rng m) in
        let p = Pmw_linalg.Special.logistic (margin *. Vec.dot theta_star base.Point.features) in
        let y = if Dist.bernoulli ~p rng then 1. else -1. in
        snap universe (Point.make ~label:y base.Point.features))
  in
  Dataset.create universe rows

let zipf_histogram ~universe ~s rng =
  if s < 0. then invalid_arg "Synth.zipf_histogram: s must be non-negative";
  let m = Universe.size universe in
  let perm = Array.init m (fun i -> i) in
  Dist.shuffle perm rng;
  let w = Array.make m 0. in
  Array.iteri (fun rank i -> w.(i) <- (float_of_int (rank + 1)) ** -.s) perm;
  Histogram.of_weights universe w

let cluster_histogram ~universe ~centers ~spread rng =
  if centers <= 0 then invalid_arg "Synth.cluster_histogram: centers must be positive";
  if spread <= 0. then invalid_arg "Synth.cluster_histogram: spread must be positive";
  let m = Universe.size universe in
  let center_points = Array.init centers (fun _ -> Universe.get universe (Rng.int rng m)) in
  let w =
    Array.init m (fun i ->
        let p = Universe.get universe i in
        let acc = ref 0. in
        Array.iter
          (fun c ->
            let d = Point.dist p c in
            acc := !acc +. exp (-.(d *. d) /. (2. *. spread *. spread)))
          center_points;
        !acc)
  in
  Histogram.of_weights universe w
