let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let save_dataset ~path ds =
  with_out path (fun oc ->
      let n = Dataset.size ds in
      for i = 0 to n - 1 do
        let p = Dataset.row_point ds i in
        Array.iter (fun v -> Printf.fprintf oc "%.17g," v) p.Point.features;
        Printf.fprintf oc "%.17g\n" p.Point.label
      done)

let save_histogram ~path h =
  with_out path (fun oc ->
      let u = Histogram.universe h in
      Universe.iter u ~f:(fun i p ->
          Array.iter (fun v -> Printf.fprintf oc "%.17g," v) p.Point.features;
          Printf.fprintf oc "%.17g,%.17g\n" p.Point.label (Histogram.get h i)))

let load_raw_csv ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rows = ref [] in
      let line_no = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr line_no;
           let trimmed = String.trim line in
           if trimmed <> "" then begin
             let fields = String.split_on_char ',' trimmed in
             let parsed =
               List.map
                 (fun f ->
                   match float_of_string_opt (String.trim f) with
                   | Some v -> v
                   | None ->
                       failwith
                         (Printf.sprintf "Io.load_raw_csv: bad field %S on line %d" f !line_no))
                 fields
             in
             rows := Array.of_list parsed :: !rows
           end
         done
       with End_of_file -> ());
      let rows = Array.of_list (List.rev !rows) in
      if Array.length rows = 0 then failwith "Io.load_raw_csv: empty file";
      let cols = Array.length rows.(0) in
      Array.iteri
        (fun i r ->
          if Array.length r <> cols then
            failwith (Printf.sprintf "Io.load_raw_csv: ragged row %d" (i + 1)))
        rows;
      rows)

let load_histogram ~path =
  let rows = load_raw_csv ~path in
  let cols = Array.length rows.(0) in
  if cols < 3 then failwith "Io.load_histogram: need features, label and mass columns";
  let points =
    Array.map
      (fun r -> Point.make ~label:r.(cols - 2) (Array.sub r 0 (cols - 2)))
      rows
  in
  let universe = Universe.of_points ~name:(Printf.sprintf "loaded(%s)" path) points in
  let weights = Array.map (fun r -> r.(cols - 1)) rows in
  match Histogram.of_weights universe weights with
  | h -> h
  | exception Invalid_argument m -> failwith ("Io.load_histogram: " ^ m)

let load_dataset ~path ~alpha ?max_universe () =
  let rows = load_raw_csv ~path in
  let cols = Array.length rows.(0) in
  if cols < 2 then failwith "Io.load_dataset: need at least one feature column plus a label";
  let features = Array.map (fun r -> Array.sub r 0 (cols - 1)) rows in
  let labels = Array.map (fun r -> r.(cols - 1)) rows in
  Continuous.ingest ~alpha ?max_universe ~features ~labels ()
