(** Finite data universes.

    The paper's algorithms maintain a histogram over a finite universe [X]
    and run in time polynomial in [|X|] (Section 4.3), so a universe here is
    a concrete, fully materialized array of points. Constructors provide the
    universes used in the experiments: the boolean hypercube (the paper's
    running example [X = {±1/√d}ᵈ]), grid discretizations of the unit ball
    (the Section 1.1 rounding remark), and labeled variants for regression
    and classification losses. *)

type t

val of_points : name:string -> Point.t array -> t
(** @raise Invalid_argument on an empty array or mixed dimensions. *)

val name : t -> string

val size : t -> int
(** [|X|]. *)

val dim : t -> int
(** Feature dimension of every point. *)

val get : t -> int -> Point.t
(** [get u i] is the [i]-th element; elements are indexed [0 .. size-1].
    @raise Invalid_argument when out of range. *)

val log_size : t -> float
(** [log |X|] — the quantity every bound in the paper depends on. *)

val points : t -> Point.t array
(** The underlying array (not a copy — do not mutate). *)

val fold : t -> init:'a -> f:('a -> int -> Point.t -> 'a) -> 'a
val iter : t -> f:(int -> Point.t -> unit) -> unit

val nearest : t -> Point.t -> int
(** Index of the universe element closest (in {!Point.dist}) to the given
    point; ties go to the lowest index. Linear scan — universes are small by
    design. *)

val max_feature_norm : t -> float
(** [max_x ||x||₂] over the universe — used to bound Lipschitz constants. *)

(** {1 Constructors used by the experiments} *)

val hypercube : d:int -> ?scale:float -> unit -> t
(** [2ᵈ] unlabeled points with coordinates [±scale/√d] (so every point has
    norm exactly [scale]; default [scale = 1.]). This is the paper's
    [X = {±1/√d}ᵈ]. @raise Invalid_argument if [d <= 0] or [d > 20]. *)

val labeled_hypercube : d:int -> ?scale:float -> labels:float array -> unit -> t
(** Hypercube features crossed with the given label set:
    [2ᵈ * Array.length labels] points. *)

val grid_ball : d:int -> levels:int -> ?radius:float -> unit -> t
(** [levelsᵈ] unlabeled points on the uniform grid over
    [\[-radius/√d, radius/√d\]ᵈ]; every point lies inside the radius-[radius]
    Euclidean ball. This is the [(d/α)^{O(d)}] discretization of Section 1.1.
    Note it covers only the cube {e inscribed} in the ball — points of the
    ball outside that cube snap with error up to [radius·(1 − 1/√d)]; use
    {!ball_cover} when arbitrary ball points must round accurately.
    @raise Invalid_argument if [levels < 2]. *)

val ball_cover : d:int -> levels:int -> ?radius:float -> unit -> t
(** The grid over the full cube [\[-radius, radius\]ᵈ] restricted to the
    points inside the radius-[radius] ball (at most [levelsᵈ] points, never
    empty — the origin region survives). Every point of the ball is within
    one cell diagonal ([2·radius·√d/(levels−1)]) of some element, so this is
    the right universe for ingesting arbitrary continuous data
    ({!Continuous}). *)

val ball_cover_labeled :
  d:int -> levels:int -> label_levels:int -> ?radius:float -> ?label_bound:float -> unit -> t
(** {!ball_cover} crossed with a uniform label grid over
    [\[-label_bound, label_bound\]]. *)

val regression_grid : d:int -> levels:int -> label_levels:int -> ?radius:float -> ?label_bound:float -> unit -> t
(** Grid-ball features crossed with [label_levels] labels uniform in
    [\[-label_bound, label_bound\]] (default 1): the universe for the linear /
    ridge-regression experiments. *)
