module Vec = Pmw_linalg.Vec

type spec = { dim : int; labeled : bool; levels : int; label_levels : int }

(* Feature grid: ball_cover over [-1, 1]^dim with per-axis spacing
   s = 2/(levels-1); any ball point rounds within s * sqrt(dim) (round each
   coordinate toward the origin: the result stays inside the ball and moves
   by at most s per axis). Label grid: half-spacing 1/(label_levels-1). *)
let feature_rounding levels dim = 2. *. sqrt (float_of_int dim) /. float_of_int (levels - 1)

let plan ~alpha ~dim ~labeled ?(max_universe = 1 lsl 18) () =
  if alpha <= 0. || alpha >= 1. then invalid_arg "Continuous.plan: alpha must lie in (0, 1)";
  if dim <= 0 then invalid_arg "Continuous.plan: dim must be positive";
  if max_universe < 4 then invalid_arg "Continuous.plan: max_universe too small";
  (* Target each component (feature, label) at alpha/sqrt 2 so the joint
     Euclidean rounding error stays below alpha. *)
  let target = alpha /. sqrt 2. in
  let want_levels = 1 + int_of_float (ceil (2. *. sqrt (float_of_int dim) /. target)) in
  let want_levels = Int.max 2 want_levels in
  let want_label_levels =
    if labeled then Int.max 2 (1 + int_of_float (ceil (1. /. target))) else 1
  in
  (* Shrink until the (unfiltered upper bound on the) universe fits. *)
  let size levels label_levels =
    let rec pow acc i =
      if i = 0 then acc
      else if acc > max_universe then acc (* avoid overflow *)
      else pow (acc * levels) (i - 1)
    in
    pow 1 dim * Int.max 1 label_levels
  in
  let rec fit levels label_levels =
    if size levels label_levels <= max_universe || (levels <= 2 && label_levels <= 2) then
      (levels, label_levels)
    else if label_levels > levels && label_levels > 2 then fit levels (label_levels - 1)
    else fit (Int.max 2 (levels - 1)) label_levels
  in
  let levels, label_levels = fit want_levels want_label_levels in
  { dim; labeled; levels; label_levels = (if labeled then Int.max 2 label_levels else 1) }

let universe_of_spec spec =
  if spec.labeled then
    Universe.ball_cover_labeled ~d:spec.dim ~levels:spec.levels ~label_levels:spec.label_levels ()
  else Universe.ball_cover ~d:spec.dim ~levels:spec.levels ()

let rounding_error spec =
  let feature_err = feature_rounding spec.levels spec.dim in
  let label_err = if spec.labeled then 1. /. float_of_int (spec.label_levels - 1) else 0. in
  sqrt ((feature_err *. feature_err) +. (label_err *. label_err))

let ingest ~alpha ?max_universe ~features ?labels () =
  let n = Array.length features in
  if n = 0 then invalid_arg "Continuous.ingest: no records";
  let dim = Vec.dim features.(0) in
  Array.iter
    (fun f -> if Vec.dim f <> dim then invalid_arg "Continuous.ingest: mixed dimensions")
    features;
  (match labels with
  | Some l when Array.length l <> n -> invalid_arg "Continuous.ingest: labels length mismatch"
  | Some _ | None -> ());
  let labeled = Option.is_some labels in
  let spec = plan ~alpha ~dim ~labeled ?max_universe () in
  let universe = universe_of_spec spec in
  let rows =
    Array.init n (fun i ->
        let f = Pmw_linalg.Proj.l2_ball ~radius:1. features.(i) in
        let label =
          match labels with
          | Some l -> Pmw_linalg.Special.clamp ~lo:(-1.) ~hi:1. l.(i)
          | None -> 0.
        in
        Universe.nearest universe (Point.make ~label f))
  in
  (universe, Dataset.create universe rows)
