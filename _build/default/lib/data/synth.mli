(** Synthetic workload generators.

    The paper has no datasets (it is a theory paper); these generators create
    the populations the experiment harness draws from. Continuous samples are
    snapped to the finite universe by nearest-neighbor rounding, implementing
    the Section 1.1 remark that data can be rounded to a finite universe at
    the cost of a constant factor in error. *)

val linear_regression :
  universe:Universe.t ->
  theta_star:Pmw_linalg.Vec.t ->
  noise:float ->
  n:int ->
  Pmw_rng.Rng.t ->
  Dataset.t
(** Rows are universe feature vectors chosen uniformly, relabeled with
    [y = ⟨θ*, x⟩ + N(0, noise²)] and snapped back to the nearest universe
    element — so the planted regression signal survives discretization.
    Requires a labeled universe. *)

val logistic_classification :
  universe:Universe.t ->
  theta_star:Pmw_linalg.Vec.t ->
  margin:float ->
  n:int ->
  Pmw_rng.Rng.t ->
  Dataset.t
(** Labels [±1] with [Pr(y = 1) = logistic(margin · ⟨θ*, x⟩)]; rows snapped to
    the nearest universe element. *)

val zipf_histogram : universe:Universe.t -> s:float -> Pmw_rng.Rng.t -> Histogram.t
(** A skewed population: mass proportional to [rank^{-s}] under a random
    permutation of the universe. [s = 0] is uniform; larger [s] concentrates
    mass — the regime where MW converges in few updates. *)

val cluster_histogram :
  universe:Universe.t -> centers:int -> spread:float -> Pmw_rng.Rng.t -> Histogram.t
(** Mixture of [centers] Gaussians (in point space) evaluated on the universe
    elements: mass ∝ Σ_c exp(-dist(x, center_c)² / 2·spread²). *)

val random_unit_vector : dim:int -> Pmw_rng.Rng.t -> Pmw_linalg.Vec.t
(** Uniform direction on the unit sphere — used to plant [θ*]. *)
