(** Continuous-data front-end: Section 1.1's rounding remark as an API.

    The paper's mechanisms need a finite universe, but real data is
    continuous; the paper notes that rounding points to a grid of size
    [(d/α)^{O(d)}] costs at most a constant factor in error. This module
    performs that rounding: given raw records (feature vectors in the unit
    ball, plus optional labels) and a target accuracy [alpha], it chooses a
    grid resolution with per-axis spacing ~[alpha] (so the rounding
    displacement of any point is at most [~alpha] — at most an [O(alpha)]
    perturbation of any 1-Lipschitz loss), builds the universe, and snaps
    every record to it. *)

type spec = {
  dim : int;
  labeled : bool;  (** whether records carry labels in [\[-1, 1\]] *)
  levels : int;  (** grid levels per axis actually chosen *)
  label_levels : int;  (** label grid (1 when unlabeled) *)
}

val plan : alpha:float -> dim:int -> labeled:bool -> ?max_universe:int -> unit -> spec
(** Choose the grid so that {!rounding_error} [<= alpha]: the feature grid
    is a ball cover with cell diagonal [<= alpha/√2] and the label grid has
    half-spacing [<= alpha/√2], each capped so the universe stays within
    [max_universe] (default [2^18]) — when the cap binds, the coarser
    grid's {!rounding_error} honestly exceeds [alpha].
    @raise Invalid_argument for [alpha] outside (0,1) or [dim <= 0]. *)

val universe_of_spec : spec -> Universe.t

val rounding_error : spec -> float
(** The worst-case Euclidean displacement of {!ingest}'s snapping under this
    spec (half the grid diagonal plus half the label spacing). *)

val ingest :
  alpha:float ->
  ?max_universe:int ->
  features:Pmw_linalg.Vec.t array ->
  ?labels:float array ->
  unit ->
  Universe.t * Dataset.t
(** Build the universe via {!plan} and snap every record. Features are
    clipped to the unit ball and labels to [\[-1, 1\]] first (outliers must
    not blow up sensitivities). @raise Invalid_argument on empty input or
    mismatched lengths. *)
