(** Plain-text (CSV) persistence for datasets, universes and histograms.

    Formats are deliberately simple and self-describing:

    - dataset CSV: one row per record, [f1,...,fd,label];
    - histogram CSV: one row per universe element, [f1,...,fd,label,mass].

    Loading a dataset goes through {!Continuous.ingest} (the records may be
    arbitrary continuous points), so the result is ready for the mechanisms.
    Released histograms/synthetic data can be saved for downstream use —
    they are differentially private, the input dataset of course is not. *)

val save_dataset : path:string -> Dataset.t -> unit
(** Write the dataset's records (decoded from the universe). *)

val load_dataset : path:string -> alpha:float -> ?max_universe:int -> unit -> Universe.t * Dataset.t
(** Read a dataset CSV (every row must have the same column count; the last
    column is the label) and ingest it at accuracy [alpha].
    @raise Failure on malformed rows. *)

val save_histogram : path:string -> Histogram.t -> unit

val load_histogram : path:string -> Histogram.t
(** Read a histogram CSV back (as written by {!save_histogram}): the
    universe is reconstructed from the point columns ([Universe.of_points]),
    the last column is the mass. Round-trips exactly up to float printing.
    @raise Failure on malformed input or non-positive total mass. *)

val load_raw_csv : path:string -> float array array
(** The underlying reader: one float array per non-empty line.
    @raise Failure on unparseable fields or ragged rows. *)
