(** Datasets: ordered multisets of universe elements.

    A dataset [D ∈ Xⁿ] is stored as an array of indices into its universe,
    matching the paper's Section 2.1. Adjacency ([D ~ D'], differing in one
    row) is the replacement notion, so the histograms of adjacent datasets
    satisfy [‖D − D'‖₁ <= 2/n]. *)

type t

val create : Universe.t -> int array -> t
(** @raise Invalid_argument on an empty row array or out-of-range indices. *)

val universe : t -> Universe.t
val size : t -> int

val row : t -> int -> int
(** Universe index of the [i]-th row. *)

val row_point : t -> int -> Point.t

val rows : t -> int array
(** Fresh copy of the index array. *)

val histogram : t -> Histogram.t
(** The empirical distribution of the rows — the [D] the mechanisms consume.
    Computed once and cached (datasets are immutable), so loss evaluations
    over a dataset cost [O(|X|)] rather than [O(n)]. *)

val of_histogram : n:int -> Histogram.t -> Pmw_rng.Rng.t -> t
(** [n] iid rows drawn from the histogram (alias-method sampling). *)

val replace_row : t -> index:int -> value:int -> t
(** An adjacent dataset: row [index] replaced by universe element [value].
    Used by sensitivity property tests and the empirical privacy audit. *)

val random_neighbor : t -> Pmw_rng.Rng.t -> t
(** A uniformly random adjacent dataset. *)

val mean_loss : t -> (Point.t -> float) -> float
(** [(1/n) Σᵢ f(xᵢ)] with compensated summation — the empirical risk
    functional [ℓ(θ; D)] for a fixed [θ]. *)

val mean_grad : t -> dim:int -> (Point.t -> Pmw_linalg.Vec.t) -> Pmw_linalg.Vec.t
(** [(1/n) Σᵢ g(xᵢ)]. *)

val subsample : t -> m:int -> Pmw_rng.Rng.t -> t
(** [m] rows sampled without replacement. @raise Invalid_argument if [m]
    exceeds the dataset size or is non-positive. *)

val concat : t -> t -> t
(** Row-wise concatenation (universes must coincide). *)

val pp : Format.formatter -> t -> unit
