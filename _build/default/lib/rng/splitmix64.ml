type t = { mutable state : int64 }

let create seed = { state = seed }

let golden_gamma = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_in t ~bound =
  if bound <= 0 then invalid_arg "Splitmix64.next_in: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec loop () =
    let bits = Int64.shift_right_logical (next t) 1 in
    let v = Int64.rem bits bound64 in
    (* Reject when [bits - v + (bound - 1)] overflows the 63-bit range. *)
    if Int64.compare (Int64.sub bits v) (Int64.sub Int64.max_int (Int64.sub bound64 1L)) > 0
    then loop ()
    else Int64.to_int v
  in
  loop ()
