lib/rng/rng.mli:
