lib/rng/rng.ml: Int64 Splitmix64
