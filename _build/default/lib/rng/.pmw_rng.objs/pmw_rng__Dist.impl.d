lib/rng/dist.ml: Array Float Queue Rng
