(** SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).

    A tiny, fast 64-bit generator with a 64-bit state. Its main role in this
    library is seeding: it expands a single user seed into the 256-bit state
    required by {!Xoshiro256}, and it provides cheap independent streams for
    tests. Not cryptographically secure (none of the DP mechanisms in this
    repository claim computational security of their noise source). *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a generator from a 64-bit seed. Distinct seeds give
    well-decorrelated streams. *)

val next : t -> int64
(** [next t] advances the state and returns 64 fresh pseudo-random bits. *)

val next_in : t -> bound:int -> int
(** [next_in t ~bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
