let bernoulli ~p rng =
  if p < 0. || p > 1. then invalid_arg "Dist.bernoulli: p must lie in [0, 1]";
  Rng.float rng < p

let rademacher rng = if Rng.bool rng then 1. else -1.

let gaussian ?(mu = 0.) ?(sigma = 1.) rng =
  if sigma < 0. then invalid_arg "Dist.gaussian: sigma must be non-negative";
  (* Marsaglia polar method; we discard the second variate for simplicity —
     the generators here are cheap and no sampler is on a hot path. *)
  let rec loop () =
    let u = Rng.uniform rng ~lo:(-1.) ~hi:1. in
    let v = Rng.uniform rng ~lo:(-1.) ~hi:1. in
    let s = (u *. u) +. (v *. v) in
    if s >= 1. || s = 0. then loop () else u *. sqrt (-2. *. log s /. s)
  in
  mu +. (sigma *. loop ())

let gaussian_vector ~dim ~sigma rng = Array.init dim (fun _ -> gaussian ~sigma rng)

let laplace ~scale rng =
  if scale < 0. then invalid_arg "Dist.laplace: scale must be non-negative";
  let u = Rng.float_pos rng in
  let sign = rademacher rng in
  (* Inverse-CDF on each half: |Z| ~ Exp(1/scale). *)
  -.scale *. log u *. sign

let exponential ~rate rng =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be positive";
  -.log (Rng.float_pos rng) /. rate

let gumbel ?(scale = 1.) rng =
  if scale < 0. then invalid_arg "Dist.gumbel: scale must be non-negative";
  scale *. -.log (-.log (Rng.float_pos rng))

let geometric ~p rng =
  if p <= 0. || p > 1. then invalid_arg "Dist.geometric: p must lie in (0, 1]";
  if p = 1. then 0
  else
    let u = Rng.float_pos rng in
    int_of_float (floor (log u /. log (1. -. p)))

let binomial ~n ~p rng =
  if n < 0 then invalid_arg "Dist.binomial: n must be non-negative";
  let count = ref 0 in
  for _ = 1 to n do
    if bernoulli ~p rng then incr count
  done;
  !count

let check_weights name weights =
  let total = ref 0. in
  Array.iter
    (fun w ->
      if w < 0. || Float.is_nan w then invalid_arg (name ^ ": weights must be non-negative");
      total := !total +. w)
    weights;
  if !total <= 0. then invalid_arg (name ^ ": weights must have a positive sum");
  !total

let categorical ~weights rng =
  let total = check_weights "Dist.categorical" weights in
  let target = Rng.float rng *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let shuffle arr rng =
  for i = Array.length arr - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_indices_without_replacement ~n ~k rng =
  if k < 0 || n < 0 || k > n then
    invalid_arg "Dist.sample_indices_without_replacement: need 0 <= k <= n";
  (* Partial Fisher–Yates: only the first k slots are settled. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + Rng.int rng (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k

module Alias = struct
  type t = { prob : float array; alias : int array }

  let create weights =
    let total = check_weights "Dist.Alias.create" weights in
    let n = Array.length weights in
    let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
    let prob = Array.make n 1. in
    let alias = Array.init n (fun i -> i) in
    let small = Queue.create () in
    let large = Queue.create () in
    Array.iteri (fun i s -> if s < 1. then Queue.add i small else Queue.add i large) scaled;
    while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
      let s = Queue.pop small in
      let l = Queue.pop large in
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.;
      if scaled.(l) < 1. then Queue.add l small else Queue.add l large
    done;
    (* Whatever remains has probability 1 up to float round-off. *)
    Queue.iter (fun i -> prob.(i) <- 1.) small;
    Queue.iter (fun i -> prob.(i) <- 1.) large;
    { prob; alias }

  let draw t rng =
    let n = Array.length t.prob in
    let i = Rng.int rng n in
    if Rng.float rng < t.prob.(i) then i else t.alias.(i)
end
