(** Samplers for the distributions used by the privacy mechanisms, solvers and
    synthetic-data generators.

    Every sampler takes the generator last so that partially-applied samplers
    read naturally, e.g. [let noise = Dist.laplace ~scale:b in ... noise rng]. *)

val bernoulli : p:float -> Rng.t -> bool
(** [bernoulli ~p rng] is [true] with probability [p].
    @raise Invalid_argument unless [0 <= p <= 1]. *)

val rademacher : Rng.t -> float
(** Uniform over [{ -1.; +1. }]. *)

val gaussian : ?mu:float -> ?sigma:float -> Rng.t -> float
(** Normal sample via the Marsaglia polar method. Defaults: [mu = 0.],
    [sigma = 1.]. @raise Invalid_argument if [sigma < 0.]. *)

val gaussian_vector : dim:int -> sigma:float -> Rng.t -> float array
(** [dim] iid centered Gaussian coordinates with standard deviation [sigma]. *)

val laplace : scale:float -> Rng.t -> float
(** Centered Laplace sample with scale [b]: density [exp(-|z|/b) / 2b].
    This is the noise distribution of the Laplace mechanism.
    @raise Invalid_argument if [scale < 0.]. *)

val exponential : rate:float -> Rng.t -> float
(** Exponential sample with the given [rate] (mean [1/rate]).
    @raise Invalid_argument if [rate <= 0.]. *)

val gumbel : ?scale:float -> Rng.t -> float
(** Standard Gumbel sample [-log(-log U)], scaled. Adding iid Gumbel noise to
    scaled scores and taking the argmax implements the exponential mechanism
    exactly (the "Gumbel-max trick"). *)

val geometric : p:float -> Rng.t -> int
(** Number of failures before the first success of a [p]-coin; support
    [{0, 1, 2, ...}]. @raise Invalid_argument unless [0 < p <= 1]. *)

val binomial : n:int -> p:float -> Rng.t -> int
(** Binomial sample by summation ([n] is small everywhere we use this). *)

val categorical : weights:float array -> Rng.t -> int
(** Index [i] with probability proportional to [weights.(i)]. Weights must be
    non-negative with a positive sum. Linear scan; for repeated sampling from
    the same weights use {!module:Alias}. *)

val shuffle : 'a array -> Rng.t -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_indices_without_replacement : n:int -> k:int -> Rng.t -> int array
(** [k] distinct indices drawn uniformly from [\[0, n)], in random order.
    @raise Invalid_argument if [k > n] or either is negative. *)

(** Walker's alias method: O(n) preprocessing, O(1) per categorical sample.
    Used to sample synthetic datasets from histogram distributions. *)
module Alias : sig
  type t

  val create : float array -> t
  (** @raise Invalid_argument on negative weights or a non-positive sum. *)

  val draw : t -> Rng.t -> int
end
