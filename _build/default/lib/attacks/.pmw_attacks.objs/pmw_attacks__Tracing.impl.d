lib/attacks/tracing.ml: Array Float Pmw_data Pmw_dp Pmw_linalg Pmw_rng
