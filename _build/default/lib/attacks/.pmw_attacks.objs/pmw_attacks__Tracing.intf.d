lib/attacks/tracing.mli: Pmw_data Pmw_linalg Pmw_rng
