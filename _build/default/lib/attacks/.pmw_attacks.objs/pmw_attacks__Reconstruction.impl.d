lib/attacks/reconstruction.ml: Array Bool Float Pmw_linalg Pmw_rng
