lib/attacks/reconstruction.mli: Pmw_linalg Pmw_rng
