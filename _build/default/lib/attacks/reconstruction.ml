module Mat = Pmw_linalg.Mat
module Rng = Pmw_rng.Rng

type queries = { design : Mat.t; answers : float array }

let random_subset_queries ~n ~k ~secret ~noise rng =
  if Array.length secret <> n then
    invalid_arg "Reconstruction.random_subset_queries: secret length mismatch";
  if n <= 0 || k <= 0 then
    invalid_arg "Reconstruction.random_subset_queries: n and k must be positive";
  let design = Mat.init ~rows:k ~cols:n (fun _ _ -> if Rng.bool rng then 1. else 0.) in
  let answers =
    Array.init k (fun j ->
        let acc = ref 0. in
        for i = 0 to n - 1 do
          if Mat.get design j i = 1. && secret.(i) then acc := !acc +. 1.
        done;
        (!acc /. float_of_int n) +. noise j)
  in
  { design; answers }

let reconstruct { design; answers } =
  let n = Mat.cols design in
  let scaled_answers = Array.map (fun a -> a *. float_of_int n) answers in
  (* Ridge keeps the normal equations well-posed when k < n or the random
     design is (near-)singular. *)
  let z = Mat.least_squares ~ridge:1e-6 design scaled_answers in
  Array.map (fun v -> v >= 0.5) z

let recovery_rate ~secret ~guess =
  let n = Array.length secret in
  if Array.length guess <> n then invalid_arg "Reconstruction.recovery_rate: length mismatch";
  let matches = ref 0 in
  for i = 0 to n - 1 do
    if Bool.equal secret.(i) guess.(i) then incr matches
  done;
  let rate = float_of_int !matches /. float_of_int n in
  Float.max rate (1. -. rate)

let attack_success ~n ~k ~noise ~seed =
  let rng = Rng.create ~seed () in
  let secret = Array.init n (fun _ -> Rng.bool rng) in
  let qs = random_subset_queries ~n ~k ~secret ~noise rng in
  recovery_rate ~secret ~guess:(reconstruct qs)
