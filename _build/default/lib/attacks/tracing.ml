module Vec = Pmw_linalg.Vec
module Dataset = Pmw_data.Dataset
module Histogram = Pmw_data.Histogram
module Rng = Pmw_rng.Rng

let score ~released ~population_mean ~record =
  Vec.dot (Vec.sub record population_mean) (Vec.sub released population_mean)

type result = { advantage : float; in_mean_score : float; out_mean_score : float }

let mean_release ds =
  let dim = Pmw_data.Universe.dim (Dataset.universe ds) in
  Dataset.mean_grad ds ~dim (fun x -> x.Pmw_data.Point.features)

let noisy_mean_release ~eps ~rng ds =
  let mean = mean_release ds in
  let universe = Dataset.universe ds in
  let n = float_of_int (Dataset.size ds) in
  let dim = Pmw_data.Universe.dim universe in
  (* replacing one row moves each coordinate mean by <= 2 max|x_i| / n; give
     each coordinate eps/dim of the budget *)
  let linf =
    Pmw_data.Universe.fold universe ~init:0. ~f:(fun acc _ p ->
        Float.max acc (Vec.norm_inf p.Pmw_data.Point.features))
  in
  let per_coord_eps = eps /. float_of_int dim in
  Array.map
    (fun v ->
      Pmw_dp.Mechanisms.laplace ~eps:per_coord_eps ~sensitivity:(2. *. linf /. n) v rng)
    mean

let attack ~release ~population ~n ~trials rng =
  if n <= 0 || trials <= 0 then invalid_arg "Tracing.attack: n and trials must be positive";
  let universe = Histogram.universe population in
  let dim = Pmw_data.Universe.dim universe in
  let pop_mean =
    Histogram.expect_vec population ~dim (fun _ x -> x.Pmw_data.Point.features)
  in
  let in_scores = Array.make trials 0. in
  let out_scores = Array.make trials 0. in
  for t = 0 to trials - 1 do
    let ds = Dataset.of_histogram ~n population rng in
    let released = release ds in
    let member = Dataset.row_point ds (Rng.int rng n) in
    let fresh = Pmw_data.Universe.get universe (Histogram.sample population rng) in
    in_scores.(t) <-
      score ~released ~population_mean:pop_mean ~record:member.Pmw_data.Point.features;
    out_scores.(t) <-
      score ~released ~population_mean:pop_mean ~record:fresh.Pmw_data.Point.features
  done;
  (* threshold at the median of the null (out) scores *)
  let sorted = Array.copy out_scores in
  Array.sort compare sorted;
  let threshold = sorted.(trials / 2) in
  let rate scores =
    float_of_int (Array.fold_left (fun acc s -> if s > threshold then acc + 1 else acc) 0 scores)
    /. float_of_int trials
  in
  let mean arr = Array.fold_left ( +. ) 0. arr /. float_of_int trials in
  {
    advantage = rate in_scores -. rate out_scores;
    in_mean_score = mean in_scores;
    out_mean_score = mean out_scores;
  }
