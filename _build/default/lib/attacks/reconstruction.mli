(** Linear reconstruction attacks (Dinur–Nissim 2003; Kasiviswanathan,
    Rudelson & Smith 2013).

    The paper's key technique (Section 1.2) is "inspired by the work of
    [KRS13] who ... use sufficiently accurate answers to non-linear CM
    queries to extract linear constraints on the dataset, and these linear
    constraints can then be combined with linear reconstruction attacks to
    violate privacy". This module implements the attack side of that story:
    given answers to many random subset-sum queries about a secret binary
    attribute, solve the linear system to reconstruct the attribute. If the
    answers are accurate to [o(1/√n)] the attack recovers almost every row —
    which is exactly why every mechanism in this repository injects noise of
    at least that order, and why the paper's error bounds cannot be
    improved below [Ω(1/α²)] rows (Section 1.1's KRS13 citation).

    Experiment F7 runs the attack against (a) exact answers, (b) answers
    with sub-sampling-error noise, and (c) answers produced by the private
    mechanisms, showing recovery rates near 100% / partial / chance. *)

type queries = {
  design : Pmw_linalg.Mat.t;  (** k x n 0/1 matrix; row j is query j's subset *)
  answers : float array;  (** (possibly noisy) normalized answers a_j = (1/n)Σᵢ design(j,i)·secret(i) *)
}

val random_subset_queries :
  n:int -> k:int -> secret:bool array -> noise:(int -> float) -> Pmw_rng.Rng.t -> queries
(** [k] uniformly random subsets of the [n] rows; answer [j] is the exact
    normalized subset sum of [secret] plus [noise j].
    @raise Invalid_argument if [Array.length secret <> n]. *)

val reconstruct : queries -> bool array
(** Least-squares decoding: solve [min_z ‖(1/n)·A·z − a‖²] over the reals
    (ridge-regularized normal equations) and round each coordinate at 1/2.
    With [k >= n] noiseless queries this recovers the secret exactly. *)

val recovery_rate : secret:bool array -> guess:bool array -> float
(** Fraction of rows recovered, symmetrized: [max(match, 1 − match)] — an
    attacker knowing nothing scores ~0.5, perfect reconstruction 1.0. *)

val attack_success :
  n:int -> k:int -> noise:(int -> float) -> seed:int -> float
(** End-to-end: plant a random secret, run the attack, return the recovery
    rate. The [noise] callback receives the query index (use it to model
    per-answer mechanisms). *)
