(** A membership-inference (tracing) attack on released statistics
    (Homer et al. 2008 style; the fingerprinting lower-bound machinery of
    BUV14, which the paper cites for the optimality of PMW).

    Given released per-coordinate means of a dataset drawn from a known
    population, the attacker scores a candidate record by the correlation
    between (record − population mean) and (released means − population
    mean). In-dataset records score systematically higher than fresh
    population samples; the attack's advantage measures the privacy leak.
    Differentially private releases (noisy means, PMW hypotheses) must push
    the advantage toward 0 — tested in the suite and demonstrated in
    experiment F7. *)

val score :
  released:Pmw_linalg.Vec.t ->
  population_mean:Pmw_linalg.Vec.t ->
  record:Pmw_linalg.Vec.t ->
  float
(** The tracing statistic [⟨record − μ, released − μ⟩]. *)

type result = {
  advantage : float;
      (** (true-positive rate) − (false-positive rate) at the
          median-of-null threshold; 0 = no leak, 1 = total leak *)
  in_mean_score : float;
  out_mean_score : float;
}

val attack :
  release:(Pmw_data.Dataset.t -> Pmw_linalg.Vec.t) ->
  population:Pmw_data.Histogram.t ->
  n:int ->
  trials:int ->
  Pmw_rng.Rng.t ->
  result
(** Repeatedly: draw a dataset of [n] rows from [population], apply the
    release function to get per-coordinate released means, score one random
    in-dataset member and one fresh out-of-dataset sample. Aggregates over
    [trials] repetitions. @raise Invalid_argument on non-positive [n] or
    [trials]. *)

val mean_release : Pmw_data.Dataset.t -> Pmw_linalg.Vec.t
(** The non-private baseline release: exact per-coordinate feature means. *)

val noisy_mean_release :
  eps:float -> rng:Pmw_rng.Rng.t -> Pmw_data.Dataset.t -> Pmw_linalg.Vec.t
(** The DP release: Laplace noise on each coordinate mean at sensitivity
    [2·max‖x‖∞/n] (split across coordinates). *)
