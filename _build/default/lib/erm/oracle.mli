(** The single-query oracle interface: the paper's [A'].

    Section 3.2 assumes black-box access to an [(ε₀, δ₀)]-differentially
    private algorithm that is [(α₀, β₀)]-accurate for one CM query. An
    oracle here is exactly that black box: given a dataset, one loss, a
    domain and a per-call privacy budget, produce an approximate private
    minimizer in the domain. Section 4.2 instantiates it three ways
    ({!Noisy_gd}, {!Glm}, {!Strongly_convex}); {!Exact} is the non-private
    reference used for debugging and as the upper envelope in experiments. *)

type request = {
  dataset : Pmw_data.Dataset.t;
  loss : Pmw_convex.Loss.t;
  domain : Pmw_convex.Domain.t;
  privacy : Pmw_dp.Params.t;  (** the per-call [(ε₀, δ₀)] *)
  rng : Pmw_rng.Rng.t;
  solver_iters : int;  (** iteration budget for inner non-private solves *)
}

type t = {
  name : string;
  run : request -> Pmw_linalg.Vec.t;
      (** Must return a point of [request.domain]. *)
}

val excess_risk : request -> Pmw_linalg.Vec.t -> float
(** Definition 2.2's [err_ℓ(D, θ̂)] of an answer, with the true minimum
    computed by the non-private solver (at 4x the request's iteration
    budget, so the reference is more accurate than the candidate). *)
