(** Concrete single-query oracles (Section 4.2's instantiations of [A']).

    Each returns an {!Oracle.t} whose [run] consumes the per-call
    [(ε₀, δ₀)] carried in the request. All of them project their output onto
    the request's domain, so they are safe to plug into the MW mechanism. *)

val exact : Oracle.t
(** The non-private empirical minimizer — zero privacy, the accuracy upper
    envelope. Only for debugging and baselines; never use with real data. *)

val output_perturbation : Oracle.t
(** Chaudhuri–Monteleoni–Sarwate-style output perturbation. For σ-strongly
    convex losses the exact minimizer has L2 sensitivity [2L/(nσ)]; solve,
    add Gaussian noise at that sensitivity, project. For merely convex
    losses a ridge term [λ] is added first (making the regularized problem
    λ-strongly convex) with [λ] chosen to balance the regularization bias
    [λ·R²/2] against the noise cost [√d · σ_noise · L]. *)

val noisy_gd : ?max_steps:int -> unit -> Oracle.t
(** Bassily–Smith–Thakurta (Theorem 4.1) style noisy projected gradient
    descent: [T] full-batch steps; each step perturbs the empirical gradient
    (L2 sensitivity [2L/n]) with Gaussian noise at the per-step budget given
    by advanced composition over the [T] steps. [T = min(max_steps, n)]
    (default [max_steps = 200]); suffix averaging. Excess risk scales as
    [√d · polylog / (n·ε₀)] — the Table 1 row 2, column 1 shape. *)

val glm : ?max_steps:int -> unit -> Oracle.t
(** Jain–Thakurta (Theorem 4.3) style oracle for unconstrained generalized
    linear models — SIMULATED (see DESIGN.md, substitution 2): noisy
    projected gradient descent where the per-step perturbation is a
    magnitude-calibrated noise vector of dimension-independent scale applied
    in a random direction, exploiting that a GLM's empirical gradient lives
    in the span of the data. Reproduces the dimension-independent accuracy
    scaling [~1/α₀²] of Table 1 row 3; its formal privacy matches JT14's
    claim rather than a self-contained proof, so the privacy-audit
    experiment (F4) excludes it. Falls back to {!noisy_gd} behaviour on
    losses without GLM structure. *)

val laplace_output : Oracle.t
(** Output perturbation with per-coordinate Laplace noise calibrated to the
    L1 sensitivity [√d · 2L/(nσ)] — pure [ε₀]-DP (δ₀ ignored), and tighter
    than the Gaussian version in low dimension (no [√(2 ln(1.25/δ))]
    factor). The oracle of choice for the 1-d mean-estimation losses that
    realize linear queries as CM queries. Requires strong convexity. *)

val strongly_convex : Oracle.t
(** Theorem 4.5 (BST14) shape for σ-strongly convex losses: pure output
    perturbation at sensitivity [2L/(nσ)] — no ridge bias. Raises through
    the request if the loss has [strong_convexity = 0]. *)

val for_loss : Pmw_convex.Loss.t -> Oracle.t
(** Dispatch matching Section 4.2: strongly convex losses get
    {!strongly_convex}, GLM losses get {!glm}, everything else {!noisy_gd}. *)
