lib/erm/oracle.ml: Float Pmw_convex Pmw_data Pmw_dp Pmw_linalg Pmw_rng
