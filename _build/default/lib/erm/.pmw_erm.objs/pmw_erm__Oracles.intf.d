lib/erm/oracles.mli: Oracle Pmw_convex
