lib/erm/oracles.ml: Array Float Int Oracle Pmw_convex Pmw_data Pmw_dp Pmw_linalg Pmw_rng
