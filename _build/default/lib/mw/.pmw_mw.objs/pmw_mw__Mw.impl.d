lib/mw/mw.ml: Array Float Pmw_data Pmw_linalg
