lib/mw/mw.mli: Pmw_data
