type experiment = { name : string; description : string; run : unit -> unit }

let of_module ~name ~description ~run = { name; description; run }

let all =
  [
    of_module ~name:T1_linear.name ~description:T1_linear.description ~run:T1_linear.run;
    of_module ~name:T1_lipschitz.name ~description:T1_lipschitz.description ~run:T1_lipschitz.run;
    of_module ~name:T1_uglm.name ~description:T1_uglm.description ~run:T1_uglm.run;
    of_module ~name:T1_strong.name ~description:T1_strong.description ~run:T1_strong.run;
    of_module ~name:F1_crossover.name ~description:F1_crossover.description ~run:F1_crossover.run;
    of_module ~name:F2_updates.name ~description:F2_updates.description ~run:F2_updates.run;
    of_module ~name:F3_runtime.name ~description:F3_runtime.description ~run:F3_runtime.run;
    of_module ~name:F4_privacy.name ~description:F4_privacy.description ~run:F4_privacy.run;
    of_module ~name:F5_regret.name ~description:F5_regret.description ~run:F5_regret.run;
    of_module ~name:F6_generalization.name ~description:F6_generalization.description
      ~run:F6_generalization.run;
    of_module ~name:F7_attacks.name ~description:F7_attacks.description ~run:F7_attacks.run;
    of_module ~name:A1_solvers.name ~description:A1_solvers.description ~run:A1_solvers.run;
    of_module ~name:A2_oracles.name ~description:A2_oracles.description ~run:A2_oracles.run;
    of_module ~name:A3_accounting.name ~description:A3_accounting.description
      ~run:A3_accounting.run;
    of_module ~name:A4_eta.name ~description:A4_eta.description ~run:A4_eta.run;
    of_module ~name:A5_universe.name ~description:A5_universe.description ~run:A5_universe.run;
    of_module ~name:A6_release.name ~description:A6_release.description ~run:A6_release.run;
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let run_all () =
  List.iter
    (fun e ->
      Printf.printf "\n######## %s — %s ########\n%!" e.name e.description;
      let (), dt = Common.timed e.run in
      Printf.printf "[%s finished in %.1fs]\n%!" e.name dt)
    all
