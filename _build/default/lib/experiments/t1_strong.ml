(* Experiment T1.strong — Table 1, row 4 (sigma-strongly convex losses).

   Paper: single query n = O~(sqrt d / (sqrt sigma * alpha * eps)) [BST14,
   Thm 4.5] — stronger convexity buys accuracy; k queries per Theorem 4.6.
   The reproducible shape: single-query excess risk falls as sigma grows
   (output perturbation's sensitivity is 2L/(n sigma), and risk <= L * noise,
   so roughly ~1/sigma at fixed L); PMW handles the prox-quadratic panel. *)

module Table = Common.Table
module Oracle = Pmw_erm.Oracle
module Rng = Pmw_rng.Rng

let name = "t1-strong"
let description = "Table 1 row 4: strongly convex — output perturbation vs sigma, PMW over k"

(* The Table 1 normalization holds the Lipschitz constant fixed (at ~1) while
   sigma varies, so we sweep sigma through a ridge term on a 1-Lipschitz base
   loss: L = 1 + sigma (nearly constant for small sigma), curvature = sigma. *)
let single_risk ~sigma ~eps ~seed =
  let workload = Common.Workload.regression ~d:2 () in
  let rng = Rng.create ~seed () in
  let dataset = workload.Common.Workload.sample ~n:20_000 rng in
  let domain = workload.Common.Workload.domain in
  let loss = Pmw_convex.Losses.ridge ~lambda:sigma ~radius:1. (Pmw_convex.Losses.absolute ()) in
  let req =
    {
      Oracle.dataset;
      loss;
      domain;
      privacy = Pmw_dp.Params.create ~eps ~delta:1e-7;
      rng;
      solver_iters = 250;
    }
  in
  Oracle.excess_risk req (Pmw_erm.Oracles.strongly_convex.Oracle.run req)

let run () =
  (* (a) error vs sigma at fixed Lipschitz constant and a tight budget:
     stronger convexity must buy accuracy (Theorem 4.5). *)
  let rows =
    List.map
      (fun sigma ->
        let s = Common.repeat ~trials:5 (fun ~seed -> single_risk ~sigma ~eps:0.02 ~seed) in
        [
          Table.fmt_float sigma;
          Common.Stats.show s;
          Table.fmt_float (1. /. sqrt sigma);
        ])
      [ 0.05; 0.2; 0.8 ]
  in
  Table.print
    ~title:"T1.strong (error vs sigma at fixed L): ridge-LAD, n=20000, eps=0.02"
    ~headers:[ "sigma"; "excess risk"; "1/sqrt(sigma) reference" ]
    rows;

  (* (b) PMW over the strongly convex panel. *)
  let workload = Common.Workload.strongly_convex ~sigma:1. ~d:2 () in
  let k = 16 in
  let pmw_rows =
    List.map
      (fun n ->
        let pmw =
          Common.repeat ~trials:3 (fun ~seed ->
              Common.pmw_max_error ~workload ~n ~k ~alpha:0.08 ~t_max:16
                ~oracle:Pmw_erm.Oracles.strongly_convex ~seed)
        in
        [ string_of_int n; Common.Stats.show pmw ])
      [ 20_000; 80_000; 320_000 ]
  in
  Table.print
    ~title:(Printf.sprintf "T1.strong (PMW over k=%d prox queries): sigma=1, eps=1" k)
    ~headers:[ "n"; "online-PMW max excess risk" ]
    pmw_rows;

  let log_x = Pmw_data.Universe.log_size workload.Common.Workload.universe in
  let theory =
    List.map
      (fun sigma ->
        let i =
          { (Pmw_core.Theory.default ~alpha:0.05 ~log_universe:log_x) with
            Pmw_core.Theory.d = 2; k; sigma }
        in
        [
          Table.fmt_float sigma;
          Table.fmt_sci (Pmw_core.Theory.strongly_convex_single i);
          Table.fmt_sci (Pmw_core.Theory.strongly_convex_k i);
        ])
      [ 0.25; 1.; 4. ]
  in
  Table.print ~title:"T1.strong theory: required n at alpha=0.05 (constants = 1)"
    ~headers:[ "sigma"; "single (Thm 4.5)"; "k queries (Thm 4.6)" ]
    theory
