(** Shared infrastructure for the experiment harness: workload builders,
    plain-text table rendering, trial aggregation and wall-clock timing.

    Every experiment (see {!Registry}) prints a self-contained table of
    measured values next to the paper's predicted shape, so
    [dune exec bench/main.exe] regenerates the whole evaluation. *)

(** Aligned plain-text tables. *)
module Table : sig
  val print : title:string -> headers:string list -> string list list -> unit

  val fmt_float : float -> string
  (** 4 significant digits, compact. *)

  val fmt_sci : float -> string
  (** Scientific notation for theory columns. *)
end

(** Mean and standard deviation over repeated trials. *)
module Stats : sig
  type t = { mean : float; std : float; trials : int }

  val of_runs : float list -> t
  val show : t -> string
end

val timed : (unit -> 'a) -> 'a * float
(** Result and elapsed wall-clock seconds. *)

val repeat : ?parallel:bool -> trials:int -> (seed:int -> float) -> Stats.t
(** Run a seeded measurement [trials] times (seeds 1..trials). With
    [parallel:true] (the default) trials run on separate OCaml 5 domains —
    results are identical to the sequential run (each trial derives all
    randomness from its seed and shares no mutable state), only faster. *)

val parallel_map : ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving map with one domain per element (capped at the
    machine's core count); used by the sweeps so a 4-point parameter sweep
    costs one point's wall clock. Exceptions propagate. *)

(** Standard synthetic workloads shared by several experiments. *)
module Workload : sig
  type regression = {
    universe : Pmw_data.Universe.t;
    domain : Pmw_convex.Domain.t;
    scale : float;
    queries : Pmw_core.Cm_query.t list;  (** a panel of distinct CM queries *)
    sample : n:int -> Pmw_rng.Rng.t -> Pmw_data.Dataset.t;
  }

  val regression : ?d:int -> ?levels:int -> unit -> regression
  (** Mixed panel (squared/huber/absolute/quantile/masked) over a labeled
      grid universe with a planted linear signal. *)

  val classification : ?d:int -> unit -> regression
  (** GLM panel (logistic/hinge/squared margin) over the labeled hypercube
      with a planted direction. *)

  val strongly_convex : sigma:float -> ?d:int -> ?levels:int -> unit -> regression
  (** Prox-quadratic panel (distinct targets per query), σ-strongly convex. *)

  val counting_queries : d:int -> Pmw_core.Linear_pmw.query list
  (** All one-way and two-way positive-marginal queries on the hypercube. *)
end

val default_privacy : Pmw_dp.Params.t
(** (ε=1, δ=1e-6) — used by every experiment unless it sweeps privacy. *)

val pmw_max_error :
  workload:Workload.regression ->
  n:int ->
  k:int ->
  alpha:float ->
  t_max:int ->
  oracle:Pmw_erm.Oracle.t ->
  seed:int ->
  float
(** One end-to-end online-PMW run: cycle the workload panel for [k] rounds
    and return the maximum true excess risk over answered rounds. *)

val composition_max_error :
  workload:Workload.regression -> n:int -> k:int -> oracle:Pmw_erm.Oracle.t -> seed:int -> float
(** Same stream answered by the composition baseline. *)
