(* Experiment F7 — the attack side of Section 1.2 / the KRS13 connection.

   Why can't private mechanisms answer more accurately? Because accuracy
   beyond the sampling error enables reconstruction. Two demonstrations:

   (a) Dinur-Nissim linear reconstruction: answer k = 4n random subset-sum
       queries about a secret bit with additive noise of magnitude E. At
       E = 0 the attack recovers ~100% of the secret; at E ~ 1/sqrt(n) it
       degrades; at the noise level our Laplace mechanism actually adds for
       this many queries (basic composition), recovery falls to near chance.

   (b) Tracing (membership inference) against released feature means: exact
       means leak membership with high advantage; the eps=1 noisy release
       drives the advantage to ~0. *)

module Table = Common.Table
module Reconstruction = Pmw_attacks.Reconstruction
module Tracing = Pmw_attacks.Tracing
module Rng = Pmw_rng.Rng

let name = "f7-attacks"
let description = "Section 1.2 / KRS13: reconstruction & tracing attacks vs noise level"

let run () =
  (* (a) reconstruction vs noise magnitude *)
  let n = 128 in
  let k = 4 * n in
  let eps = 1. in
  let dp_scale =
    (* Laplace mechanism answering k queries of sensitivity 1/n under basic
       composition at total eps *)
    float_of_int k /. (float_of_int n *. eps)
  in
  let noise_of scale seed =
    let rng = Rng.create ~seed:(seed + 9000) () in
    fun _ -> Pmw_rng.Dist.laplace ~scale rng
  in
  let rows =
    List.map
      (fun (label, scale) ->
        let stats =
          Common.repeat ~trials:5 (fun ~seed ->
              Reconstruction.attack_success ~n ~k ~noise:(noise_of scale seed) ~seed)
        in
        [ label; Table.fmt_float scale; Common.Stats.show stats ])
      [
        ("exact answers", 0.);
        ("noise 0.2/sqrt n", 0.2 /. sqrt (float_of_int n));
        ("noise 1/sqrt n", 1. /. sqrt (float_of_int n));
        ("DP noise (eps=1, k queries)", dp_scale);
      ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "F7 (a) Dinur-Nissim reconstruction: n=%d rows, k=%d subset queries (chance = 0.5)" n k)
    ~headers:[ "answer regime"; "noise scale"; "fraction of secret recovered" ]
    rows;

  (* (b) tracing attack on released means *)
  let rng = Rng.create ~seed:77 () in
  let universe = Pmw_data.Universe.hypercube ~d:12 () in
  let population = Pmw_data.Synth.zipf_histogram ~universe ~s:0.5 rng in
  let trials = 400 in
  let n_trace = 30 in
  let exact =
    Tracing.attack ~release:Tracing.mean_release ~population ~n:n_trace ~trials rng
  in
  let private_release ds = Tracing.noisy_mean_release ~eps:1. ~rng ds in
  let dp = Tracing.attack ~release:private_release ~population ~n:n_trace ~trials rng in
  Table.print
    ~title:
      (Printf.sprintf "F7 (b) tracing attack on released means: n=%d, d=12, %d trials" n_trace
         trials)
    ~headers:[ "release"; "attack advantage"; "mean in-score"; "mean out-score" ]
    [
      [
        "exact means";
        Table.fmt_float exact.Tracing.advantage;
        Table.fmt_float exact.Tracing.in_mean_score;
        Table.fmt_float exact.Tracing.out_mean_score;
      ];
      [
        "eps=1 noisy means";
        Table.fmt_float dp.Tracing.advantage;
        Table.fmt_float dp.Tracing.in_mean_score;
        Table.fmt_float dp.Tracing.out_mean_score;
      ];
    ];
  Printf.printf
    "expected: exact releases leak (recovery ~1, advantage >> 0); DP noise collapses both —\n\
     the attacks that force the paper's error bounds to be as large as they are.\n%!"
