(* Ablation A2 — the single-query oracle A'.

   Theorem 3.8 is parameterized by any (eps0, delta0)-DP, (alpha0, beta0)-
   accurate oracle; Section 4.2 instantiates three. This ablation runs every
   oracle on the same query/dataset at the same per-call budget and reports
   excess risk — showing which instantiation each loss family should use
   (the dispatch implemented in Pmw_erm.Oracles.for_loss). *)

module Table = Common.Table
module Oracle = Pmw_erm.Oracle
module Oracles = Pmw_erm.Oracles
module Losses = Pmw_convex.Losses
module Rng = Pmw_rng.Rng

let name = "a2-oracles"
let description = "Ablation: the Section 4.2 oracle instantiations on each loss family"

let risk ~(workload : Common.Workload.regression) ~loss ~oracle ~eps ~seed =
  let rng = Rng.create ~seed () in
  let dataset = workload.Common.Workload.sample ~n:50_000 rng in
  let req =
    {
      Oracle.dataset;
      loss;
      domain = workload.Common.Workload.domain;
      privacy = Pmw_dp.Params.create ~eps ~delta:1e-7;
      rng;
      solver_iters = 250;
    }
  in
  Oracle.excess_risk req (oracle.Oracle.run req)

let show ~workload ~loss ~oracle ~eps =
  try Common.Stats.show (Common.repeat ~trials:5 (fun ~seed -> risk ~workload ~loss ~oracle ~eps ~seed))
  with Invalid_argument _ -> "n/a"

let run () =
  let eps = 0.05 in
  let reg = Common.Workload.regression ~d:3 () in
  let cls = Common.Workload.classification ~d:3 () in
  let cases =
    [
      ("squared (Lipschitz)", reg, Losses.squared ());
      ("logistic (UGLM)", cls, Losses.logistic ());
      ("ridge-LAD (strongly convex)", reg, Losses.ridge ~lambda:0.3 ~radius:1. (Losses.absolute ()));
    ]
  in
  let oracles =
    [
      ("noisy_gd", Oracles.noisy_gd ());
      ("glm", Oracles.glm ());
      ("output_perturbation", Oracles.output_perturbation);
      ("strongly_convex", Oracles.strongly_convex);
      ("exact (non-private)", Oracles.exact);
    ]
  in
  let rows =
    List.map
      (fun (oname, oracle) ->
        oname
        :: List.map (fun (_, workload, loss) -> show ~workload ~loss ~oracle ~eps) cases)
      oracles
  in
  Table.print
    ~title:(Printf.sprintf "A2.oracles: excess risk per oracle x loss family (n=50000, eps=%g)" eps)
    ~headers:("oracle" :: List.map (fun (n, _, _) -> n) cases)
    rows;
  Printf.printf
    "dispatch (Oracles.for_loss): strongly convex -> strongly_convex; GLM -> glm; else noisy_gd\n%!"
