(* Experiment T1.lipschitz — Table 1, row 2 (Lipschitz, d-bounded CM queries).

   Paper: single query n = O~(sqrt d / alpha eps) [BST14, Thm 4.1]; k queries
   n = O~(max(sqrt(d log|X|)/a^2, log k sqrt(log|X|)/a^2)/eps) [Thm 4.2, new].
   We measure (a) the excess risk of the noisy-GD single-query oracle as n
   grows (expect ~1/n at fixed d) and as d grows (expect ~sqrt d at fixed n),
   and (b) online PMW's max excess risk over the k-query panel vs n. *)

module Table = Common.Table
module Oracle = Pmw_erm.Oracle
module Rng = Pmw_rng.Rng

let name = "t1-lipschitz"
let description = "Table 1 row 2: Lipschitz d-bounded — noisy-GD single query vs online PMW over k"

let single_risk ~(workload : Common.Workload.regression) ~n ~eps ~seed =
  let rng = Rng.create ~seed () in
  let dataset = workload.Common.Workload.sample ~n rng in
  let query = List.hd workload.Common.Workload.queries in
  let req =
    {
      Oracle.dataset;
      loss = query.Pmw_core.Cm_query.loss;
      domain = query.Pmw_core.Cm_query.domain;
      privacy = Pmw_dp.Params.create ~eps ~delta:1e-6;
      rng;
      solver_iters = 250;
    }
  in
  let oracle = Pmw_erm.Oracles.noisy_gd () in
  Oracle.excess_risk req (oracle.Oracle.run req)

let run () =
  let trials = 3 in
  let workload = Common.Workload.regression ~d:3 () in
  let k = 24 in

  (* (a) error vs n *)
  let rows =
    List.map
      (fun n ->
        let single = Common.repeat ~trials (fun ~seed -> single_risk ~workload ~n ~eps:1. ~seed) in
        let pmw =
          Common.repeat ~trials (fun ~seed ->
              Common.pmw_max_error ~workload ~n ~k ~alpha:0.06 ~t_max:20
                ~oracle:(Pmw_erm.Oracles.noisy_gd ()) ~seed)
        in
        [ string_of_int n; Common.Stats.show single; Common.Stats.show pmw ])
      [ 5_000; 20_000; 80_000; 320_000 ]
  in
  Table.print
    ~title:
      (Printf.sprintf "T1.lipschitz (error vs n): d=3, |X|=%d, k=%d, eps=1"
         (Pmw_data.Universe.size workload.Common.Workload.universe)
         k)
    ~headers:[ "n"; "single-query excess risk"; "online-PMW max excess risk" ]
    rows;

  (* (b) single-query noise penalty vs d at fixed n and a tight budget. To
     make the dimension cost exactly visible we use a loss whose Hessian is
     the identity at every dimension (prox-quadratic, sigma = 1) and the
     output-perturbation oracle, whose excess risk is precisely
     (1/2)||gaussian noise||^2 ~ d * sigma_noise^2/2 — linear in d. (The
     iterate-averaged noisy-GD oracle flattens the d dependence by averaging
     and projection; the exactly-calibrated oracle shows the raw cost the
     Theorem 4.1 bound prices at sqrt d in its n requirement.) *)
  let penalty ~d ~seed =
    let w = Common.Workload.strongly_convex ~sigma:1. ~d ~levels:4 () in
    let rng = Rng.create ~seed () in
    let dataset = w.Common.Workload.sample ~n:10_000 rng in
    let query = List.hd w.Common.Workload.queries in
    let req =
      {
        Oracle.dataset;
        loss = query.Pmw_core.Cm_query.loss;
        domain = query.Pmw_core.Cm_query.domain;
        privacy = Pmw_dp.Params.create ~eps:0.05 ~delta:1e-7;
        rng;
        solver_iters = 250;
      }
    in
    let noisy = Oracle.excess_risk req (Pmw_erm.Oracles.strongly_convex.Oracle.run req) in
    let exact = Oracle.excess_risk req (Pmw_erm.Oracles.exact.Oracle.run req) in
    Float.max 0. (noisy -. exact)
  in
  let d_rows =
    List.map
      (fun d ->
        let s = Common.repeat ~trials:8 (fun ~seed -> penalty ~d ~seed) in
        [ string_of_int d; Common.Stats.show s; Table.fmt_float (float_of_int d /. 2.) ])
      [ 2; 4; 6 ]
  in
  Table.print
    ~title:"T1.lipschitz (noise penalty vs d): identity-Hessian loss, n=10000, eps=0.05 (expect ~linear in d)"
    ~headers:[ "d"; "noise penalty (noisy - exact risk)"; "d/2 reference" ]
    d_rows;

  (* theory *)
  let log_x = Pmw_data.Universe.log_size workload.Common.Workload.universe in
  let theory =
    List.map
      (fun alpha ->
        let i = { (Pmw_core.Theory.default ~alpha ~log_universe:log_x) with Pmw_core.Theory.d = 3; k } in
        [
          Table.fmt_float alpha;
          Table.fmt_sci (Pmw_core.Theory.lipschitz_single i);
          Table.fmt_sci (Pmw_core.Theory.lipschitz_k i);
        ])
      [ 0.1; 0.05; 0.01 ]
  in
  Table.print ~title:"T1.lipschitz theory: required n (constants = 1)"
    ~headers:[ "alpha"; "single (sqrt d/a eps)"; "k queries (Thm 4.2)" ]
    theory
