(** The experiment registry: every table/figure reproduction, addressable by
    id. [bench/main.exe] with no arguments runs all of them; with an id it
    runs one; [bin/pmw_cli.exe] exposes the same registry on the command
    line. See DESIGN.md's experiment index for the paper mapping. *)

type experiment = {
  name : string;  (** e.g. ["t1-linear"] *)
  description : string;
  run : unit -> unit;  (** prints its tables to stdout *)
}

val all : experiment list
(** In presentation order: T1 rows 1-4, the prose claims F1-F6, then the
    design ablations A1-A5. *)

val find : string -> experiment option

val run_all : unit -> unit
(** Run every experiment, printing a header and the elapsed time of each. *)
