(* Ablation A6 — linear-query release mechanisms across universe sizes.

   The MW line of work (HR10 -> HLM12 -> this paper) exists because the
   classic Laplace-histogram release pays ~sqrt|X| while query-driven MW
   mechanisms pay ~sqrt(log|X|). We answer the same marginal workload with
   (a) the Laplace histogram, (b) MWEM (HLM12), and (c) online linear PMW
   (HR10), sweeping the hypercube dimension — the histogram baseline must
   degrade as |X| grows past n*eps while the MW mechanisms stay flat. *)

module Table = Common.Table
module Universe = Pmw_data.Universe
module Dataset = Pmw_data.Dataset
module Synth = Pmw_data.Synth
module Workloads = Pmw_core.Workloads
module Linear_pmw = Pmw_core.Linear_pmw
module Rng = Pmw_rng.Rng

let name = "a6-release"
let description = "Ablation: Laplace histogram vs MWEM vs linear PMW as |X| grows"

let one ~d ~n ~eps ~seed =
  let rng = Rng.create ~seed () in
  let universe = Universe.hypercube ~d () in
  let population = Synth.zipf_histogram ~universe ~s:1. rng in
  let dataset = Dataset.of_histogram ~n population rng in
  let truth = Dataset.histogram dataset in
  let workload = Workloads.marginals_up_to ~dim:d ~order:2 in
  let truth_answers = Workloads.evaluate_all workload truth in
  let k = List.length workload in
  (* (a) Laplace histogram *)
  let hist = Pmw_core.Histogram_release.release ~dataset ~eps ~rng in
  let laplace_errs =
    Workloads.max_abs_error ~truth:truth_answers
      ~answers:(List.map (fun q -> Pmw_core.Histogram_release.answer hist q) workload)
  in
  (* (b) MWEM *)
  let mwem =
    Pmw_core.Mwem.run ~dataset ~queries:(Array.of_list workload) ~eps ~rounds:(Int.min 20 k) ~rng ()
  in
  let mwem_errs =
    Workloads.max_abs_error ~truth:truth_answers
      ~answers:(Array.to_list mwem.Pmw_core.Mwem.answers)
  in
  (* (c) SmallDB (BLR08) — only feasible for tiny universes; its candidate
     space is |X|^m, which is the honest reason it drops out of the sweep *)
  let smalldb_errs =
    let m = 6 in
    if Pmw_core.Smalldb.candidate_count ~universe_size:(Universe.size universe) ~m > 100_000
    then nan
    else
      let report =
        Pmw_core.Smalldb.run ~dataset ~queries:(Array.of_list workload) ~eps ~m ~rng ()
      in
      Workloads.max_abs_error ~truth:truth_answers
        ~answers:(Array.to_list report.Pmw_core.Smalldb.answers)
  in
  (* (d) online linear PMW ((eps, delta)-DP) *)
  let pmw =
    Linear_pmw.create ~universe ~dataset
      ~privacy:(Pmw_dp.Params.create ~eps ~delta:1e-6)
      ~alpha:0.05 ~beta:0.05 ~k ~t_max:30 ~rng ()
  in
  let pmw_errs =
    Workloads.max_abs_error ~truth:truth_answers
      ~answers:
        (List.map
           (fun q -> match Linear_pmw.answer pmw q with Some a -> a | None -> nan)
           workload)
  in
  (laplace_errs, mwem_errs, smalldb_errs, pmw_errs, k)

let run () =
  let n = 50_000 and eps = 0.5 in
  let rows =
    List.map
      (fun d ->
        let runs = List.init 3 (fun i -> one ~d ~n ~eps ~seed:(i + 1)) in
        let pick f = Common.Stats.of_runs (List.map f runs) in
        let _, _, _, _, k = List.hd runs in
        let smalldb =
          let vals = List.map (fun (_, _, s, _, _) -> s) runs in
          if List.exists Float.is_nan vals then "infeasible"
          else Common.Stats.show (Common.Stats.of_runs vals)
        in
        [
          string_of_int d;
          string_of_int (1 lsl d);
          string_of_int k;
          Common.Stats.show (pick (fun (a, _, _, _, _) -> a));
          Common.Stats.show (pick (fun (_, b, _, _, _) -> b));
          smalldb;
          Common.Stats.show (pick (fun (_, _, _, c, _) -> c));
        ])
      [ 4; 7; 10; 13 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "A6.release: max |err| on 1- and 2-way marginals (n=%d, eps=%g; histogram pays ~sqrt|X|/n eps, MW pays ~sqrt(log|X|))"
         n eps)
    ~headers:[ "d"; "|X|"; "k"; "laplace hist"; "MWEM"; "SmallDB (BLR08)"; "linear PMW" ]
    rows;
  Printf.printf
    "expected shape: the histogram column grows ~sqrt|X| (60x over this sweep) while the MW\n\
     columns stay flat in |X|; extrapolating, the crossover sits a few dimensions past the\n\
     largest universe that fits this harness — small universes are exactly where DR06-style\n\
     histogram release remains the right tool, which is the regime boundary the MW line of\n\
     work (HR10/HLM12/this paper) was created to move past.\n%!"
