(* Experiment T1.linear — Table 1, row 1 (linear queries).

   Paper: a single linear query needs n = O(1/alpha) [DMNS06]; k queries need
   n = O~(sqrt(log|X|) log k / alpha^2) [HR10]. We measure, for a sweep of n:
   (a) the error of the Laplace mechanism on one counting query, and (b) the
   max error of linear PMW over the full marginal/conjunction workload — and
   check both fall with n at the predicted rates (1/n for Laplace; PMW's
   error at fixed T behaves like the SV noise ~ 1/n plus the MW bucket). *)

module Common = Common
module Table = Common.Table
module Universe = Pmw_data.Universe
module Dataset = Pmw_data.Dataset
module Synth = Pmw_data.Synth
module Linear_pmw = Pmw_core.Linear_pmw
module Mechanisms = Pmw_dp.Mechanisms
module Rng = Pmw_rng.Rng

let name = "t1-linear"
let description = "Table 1 row 1: linear queries — Laplace single query vs linear PMW over k"

let d = 6

let single_query_error ~n ~seed =
  let rng = Rng.create ~seed () in
  let universe = Universe.hypercube ~d () in
  let population = Synth.zipf_histogram ~universe ~s:1. rng in
  let ds = Dataset.of_histogram ~n population rng in
  let q = List.hd (Common.Workload.counting_queries ~d) in
  let truth = Linear_pmw.evaluate q (Dataset.histogram ds) in
  let noisy =
    Mechanisms.laplace ~eps:Common.default_privacy.Pmw_dp.Params.eps
      ~sensitivity:(1. /. float_of_int n) truth rng
  in
  Float.abs (noisy -. truth)

let pmw_error ~n ~alpha ~seed =
  let rng = Rng.create ~seed () in
  let universe = Universe.hypercube ~d () in
  let population = Synth.zipf_histogram ~universe ~s:1. rng in
  let ds = Dataset.of_histogram ~n population rng in
  let truth = Dataset.histogram ds in
  let queries = Common.Workload.counting_queries ~d in
  let k = List.length queries in
  let mech =
    Linear_pmw.create ~universe ~dataset:ds ~privacy:Common.default_privacy ~alpha ~beta:0.05 ~k
      ~t_max:40 ~rng ()
  in
  List.fold_left
    (fun acc q ->
      match Linear_pmw.answer mech q with
      | None -> acc
      | Some a -> Float.max acc (Float.abs (a -. Linear_pmw.evaluate q truth)))
    0. queries

let run () =
  let trials = 3 in
  let k = List.length (Common.Workload.counting_queries ~d) in
  let rows =
    List.map
      (fun n ->
        let single = Common.repeat ~trials (fun ~seed -> single_query_error ~n ~seed) in
        let pmw = Common.repeat ~trials (fun ~seed -> pmw_error ~n ~alpha:0.05 ~seed) in
        [
          string_of_int n;
          Common.Stats.show single;
          Common.Stats.show pmw;
          Table.fmt_float (1. /. float_of_int n);
        ])
      [ 2_000; 10_000; 50_000; 200_000 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "T1.linear: |X|=%d, k=%d marginal queries, eps=1 (paper: single ~1/alpha, k queries ~ sqrt(log|X|) log k/alpha^2)"
         (1 lsl d) k)
    ~headers:[ "n"; "laplace 1-query err"; "linear-PMW max err"; "1/n reference" ]
    rows;
  (* theory column: required n by Table 1 at various alpha, for context *)
  let theory_rows =
    List.map
      (fun alpha ->
        let i =
          { (Pmw_core.Theory.default ~alpha ~log_universe:(float_of_int d *. log 2.)) with
            Pmw_core.Theory.k }
        in
        [
          Table.fmt_float alpha;
          Table.fmt_sci (Pmw_core.Theory.linear_single i);
          Table.fmt_sci (Pmw_core.Theory.linear_k i);
        ])
      [ 0.1; 0.05; 0.01 ]
  in
  Table.print ~title:"T1.linear theory: required n (constants = 1)"
    ~headers:[ "alpha"; "single (1/a)"; "k queries (sqrt(log|X|) log k/a^2)" ]
    theory_rows
