(* Ablation A3 — privacy accounting and noise calibration.

   The paper composes with Theorem 3.10 (DRV10) and calibrates Gaussian
   noise classically. Modern accounting (zCDP, RDP) and the analytic
   Gaussian calibration (Balle-Wang 2018) are strictly tighter. Two tables:
   (a) the total eps charged for the same stream of T Gaussian events under
       each accountant — smaller is better (more budget left);
   (b) the noise sigma required at fixed (eps, delta) by the classical vs
       analytic calibration across eps — analytic is uniformly smaller and
       remains valid for eps > 1 where the classical formula's proof breaks. *)

module Table = Common.Table
module Params = Pmw_dp.Params

let name = "a3-accounting"
let description = "Ablation: Thm 3.10 vs zCDP vs RDP accounting; classical vs analytic Gaussian"

let run () =
  (* (a) accountant comparison on T identical Gaussian events *)
  let sigma = 20. and sensitivity = 1. and delta = 1e-6 in
  let rows =
    List.map
      (fun t ->
        (* per-event (eps, delta/2T) equivalent for the (eps, delta)-style
           accountants, computed with the classical inversion *)
        let per_event_eps =
          sensitivity *. sqrt (2. *. log (1.25 /. (delta /. (2. *. float_of_int t)))) /. sigma
        in
        let basic = float_of_int t *. per_event_eps in
        let advanced =
          (Params.compose_advanced ~count:t ~slack:(delta /. 2.)
             (Params.create ~eps:per_event_eps ~delta:0.))
            .Params.eps
        in
        let zcdp =
          let acc = Pmw_dp.Accountant.create () in
          for _ = 1 to t do
            Pmw_dp.Accountant.spend_gaussian acc ~sigma ~sensitivity
          done;
          Pmw_dp.Accountant.total_zcdp acc ~delta
        in
        let rdp =
          let acc = Pmw_dp.Rdp.create () in
          for _ = 1 to t do
            Pmw_dp.Rdp.spend_gaussian acc ~sigma ~sensitivity
          done;
          Pmw_dp.Rdp.epsilon acc ~delta
        in
        [
          string_of_int t;
          Table.fmt_float basic;
          Table.fmt_float advanced;
          Table.fmt_float zcdp;
          Table.fmt_float rdp;
        ])
      [ 10; 100; 1000 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "A3.accounting (a): total eps for T Gaussian events (sigma=%g, delta=%g) — smaller is tighter"
         sigma delta)
    ~headers:[ "T"; "basic"; "advanced (Thm 3.10)"; "zCDP"; "RDP" ]
    rows;

  (* (b) classical vs analytic Gaussian calibration *)
  let calib_rows =
    List.map
      (fun eps ->
        let classical =
          if eps <= 1. then
            Table.fmt_float (Pmw_dp.Mechanisms.gaussian_sigma ~eps ~delta ~sensitivity)
          else "(invalid)"
        in
        let analytic = Pmw_dp.Analytic_gaussian.sigma ~eps ~delta ~sensitivity in
        [ Table.fmt_float eps; classical; Table.fmt_float analytic ])
      [ 0.1; 0.5; 1.; 2.; 4. ]
  in
  Table.print
    ~title:(Printf.sprintf "A3.accounting (b): required sigma at delta=%g, sensitivity=1" delta)
    ~headers:[ "eps"; "classical sigma"; "analytic sigma (Balle-Wang)" ]
    calib_rows
