(* Ablation A1 — the convex solvers behind the public argmin.

   Figure 3 treats argmin_theta l(theta; Dhat) as a primitive; its cost and
   accuracy determine both the runtime (F3) and the solver slack in every
   error measurement. This ablation runs each first-order method on the same
   smooth objective (expected squared loss over a histogram) and on a
   non-smooth one (expected LAD loss) and reports suboptimality at equal
   iteration budgets — justifying DESIGN.md's choice of the best-of
   (Armijo, subgradient) dispatch in Solve.minimize. *)

module Table = Common.Table
module Solve = Pmw_convex.Solve
module Domain = Pmw_convex.Domain
module Losses = Pmw_convex.Losses
module Objective = Pmw_convex.Objective
module Rng = Pmw_rng.Rng

let name = "a1-solvers"
let description = "Ablation: projected solvers on smooth vs non-smooth public objectives"

let run () =
  let workload = Common.Workload.regression ~d:3 () in
  let rng = Rng.create ~seed:3 () in
  let dataset = workload.Common.Workload.sample ~n:50_000 rng in
  let hist = Pmw_data.Dataset.histogram dataset in
  let domain = workload.Common.Workload.domain in
  let cases =
    [ ("squared (smooth)", Losses.squared ()); ("absolute (non-smooth)", Losses.absolute ()) ]
  in
  List.iter
    (fun (case_name, loss) ->
      let obj = Objective.of_histogram loss hist ~dim:(Domain.dim domain) in
      (* high-effort reference minimum *)
      let reference =
        (Solve.minimize ~iters:5000 ~lipschitz:loss.Pmw_convex.Loss.lipschitz domain obj)
          .Solve.value
      in
      let iters = 200 in
      let sub r = Float.max 0. (r.Solve.value -. reference) in
      let rows =
        [
          ( "projected subgradient",
            sub (Solve.projected_subgradient ~iters ~lipschitz:loss.Pmw_convex.Loss.lipschitz domain obj) );
          ("Armijo gradient descent", sub (Solve.gradient_descent_armijo ~iters domain obj));
          ( "Nesterov accelerated",
            sub (Solve.accelerated_gradient ~iters ~smoothness:2. domain obj) );
          ("Frank-Wolfe", sub (Solve.frank_wolfe ~iters ~radius:1. obj));
          ( "minimize (dispatch)",
            sub (Solve.minimize ~iters ~lipschitz:loss.Pmw_convex.Loss.lipschitz domain obj) );
        ]
      in
      Table.print
        ~title:(Printf.sprintf "A1.solvers: %s, %d iterations, |X|=%d" case_name iters
                  (Pmw_data.Universe.size workload.Common.Workload.universe))
        ~headers:[ "solver"; "suboptimality vs 5000-iter reference" ]
        (List.map (fun (n, v) -> [ n; Table.fmt_float v ]) rows))
    cases
