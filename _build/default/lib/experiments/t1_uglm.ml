(* Experiment T1.uglm — Table 1, row 3 (unconstrained generalized linear
   models).

   Paper: a single UGLM query needs n = O~(1/alpha^2 eps) — INDEPENDENT of d
   [JT14, Thm 4.3]; k queries n = O~(sqrt(log|X|)/eps max(1/a, log k)/a^2)
   [Thm 4.4, new]. The signature to reproduce: the GLM oracle's error stays
   flat as d grows while the generic Lipschitz oracle degrades ~sqrt(d); and
   online PMW with the GLM oracle handles the classification panel. *)

module Table = Common.Table
module Oracle = Pmw_erm.Oracle
module Rng = Pmw_rng.Rng

let name = "t1-uglm"
let description = "Table 1 row 3: UGLM — dimension-independent single query, PMW over k"

let single_risk ~d ~oracle ~eps ~seed =
  let workload = Common.Workload.classification ~d () in
  let rng = Rng.create ~seed () in
  let dataset = workload.Common.Workload.sample ~n:20_000 rng in
  let query = List.hd workload.Common.Workload.queries in
  let req =
    {
      Oracle.dataset;
      loss = query.Pmw_core.Cm_query.loss;
      domain = query.Pmw_core.Cm_query.domain;
      privacy = Pmw_dp.Params.create ~eps ~delta:1e-7;
      rng;
      solver_iters = 250;
    }
  in
  Oracle.excess_risk req (oracle.Oracle.run req)

let run () =
  (* (a) dimension sweep at a tight budget: GLM flat, noisy-GD grows. *)
  let rows =
    List.map
      (fun d ->
        let glm =
          Common.repeat ~trials:5 (fun ~seed ->
              single_risk ~d ~oracle:(Pmw_erm.Oracles.glm ()) ~eps:0.05 ~seed)
        in
        let gd =
          Common.repeat ~trials:5 (fun ~seed ->
              single_risk ~d ~oracle:(Pmw_erm.Oracles.noisy_gd ()) ~eps:0.05 ~seed)
        in
        [ string_of_int d; Common.Stats.show glm; Common.Stats.show gd ])
      [ 2; 4; 8 ]
  in
  Table.print
    ~title:"T1.uglm (error vs d): logistic loss, n=20000, eps=0.05 (paper: GLM flat in d)"
    ~headers:[ "d"; "GLM oracle excess risk"; "noisy-GD oracle excess risk" ]
    rows;

  (* (b) k-query panel via online PMW with the GLM oracle. *)
  let workload = Common.Workload.classification ~d:5 () in
  let k = 18 in
  let pmw_rows =
    List.map
      (fun n ->
        let pmw =
          Common.repeat ~trials:3 (fun ~seed ->
              Common.pmw_max_error ~workload ~n ~k ~alpha:0.06 ~t_max:20
                ~oracle:(Pmw_erm.Oracles.glm ()) ~seed)
        in
        [ string_of_int n; Common.Stats.show pmw ])
      [ 20_000; 80_000; 320_000 ]
  in
  Table.print
    ~title:(Printf.sprintf "T1.uglm (PMW over k=%d GLM queries): d=5, eps=1" k)
    ~headers:[ "n"; "online-PMW max excess risk" ]
    pmw_rows;

  let log_x = Pmw_data.Universe.log_size workload.Common.Workload.universe in
  let theory =
    List.map
      (fun alpha ->
        let i = { (Pmw_core.Theory.default ~alpha ~log_universe:log_x) with Pmw_core.Theory.k } in
        [
          Table.fmt_float alpha;
          Table.fmt_sci (Pmw_core.Theory.uglm_single i);
          Table.fmt_sci (Pmw_core.Theory.uglm_k i);
        ])
      [ 0.1; 0.05; 0.01 ]
  in
  Table.print ~title:"T1.uglm theory: required n (constants = 1)"
    ~headers:[ "alpha"; "single (1/a^2 eps)"; "k queries (Thm 4.4)" ]
    theory
