lib/experiments/registry.mli:
