lib/experiments/common.ml: Array Float Int List Option Pmw_convex Pmw_core Pmw_data Pmw_dp Pmw_rng Printf Stdlib String Unix
