lib/experiments/a5_universe.ml: Common Float List Pmw_convex Pmw_core Pmw_data Pmw_erm Pmw_mw Pmw_rng
