lib/experiments/a2_oracles.ml: Common List Pmw_convex Pmw_dp Pmw_erm Pmw_rng Printf
