lib/experiments/common.mli: Pmw_convex Pmw_core Pmw_data Pmw_dp Pmw_erm Pmw_rng
