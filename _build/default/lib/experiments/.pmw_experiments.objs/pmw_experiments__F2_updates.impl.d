lib/experiments/f2_updates.ml: Array Common List Pmw_core Pmw_data Pmw_erm Pmw_rng
