lib/experiments/t1_uglm.ml: Common List Pmw_core Pmw_data Pmw_dp Pmw_erm Pmw_rng Printf
