lib/experiments/f5_regret.ml: Common List Pmw_data Pmw_mw
