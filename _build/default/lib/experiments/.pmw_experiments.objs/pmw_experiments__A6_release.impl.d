lib/experiments/a6_release.ml: Array Common Float Int List Pmw_core Pmw_data Pmw_dp Pmw_rng Printf
