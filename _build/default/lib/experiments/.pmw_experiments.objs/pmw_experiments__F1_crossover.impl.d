lib/experiments/f1_crossover.ml: Common List Pmw_core Pmw_data Pmw_erm Printf
