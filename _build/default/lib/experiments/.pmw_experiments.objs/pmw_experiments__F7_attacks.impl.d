lib/experiments/f7_attacks.ml: Common List Pmw_attacks Pmw_data Pmw_rng Printf
