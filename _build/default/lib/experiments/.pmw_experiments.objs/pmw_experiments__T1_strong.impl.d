lib/experiments/t1_strong.ml: Common List Pmw_convex Pmw_core Pmw_data Pmw_dp Pmw_erm Pmw_rng Printf
