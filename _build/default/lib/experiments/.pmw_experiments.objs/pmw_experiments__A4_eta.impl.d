lib/experiments/a4_eta.ml: Array Common Float List Pmw_convex Pmw_core Pmw_data Pmw_linalg Pmw_mw Pmw_rng Printf
