lib/experiments/a3_accounting.ml: Common List Pmw_dp Printf
