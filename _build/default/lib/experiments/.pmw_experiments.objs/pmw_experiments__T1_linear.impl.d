lib/experiments/t1_linear.ml: Common Float List Pmw_core Pmw_data Pmw_dp Pmw_rng Printf
