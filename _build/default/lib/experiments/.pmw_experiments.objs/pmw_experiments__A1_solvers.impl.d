lib/experiments/a1_solvers.ml: Common Float List Pmw_convex Pmw_data Pmw_rng Printf
