lib/experiments/t1_lipschitz.ml: Common Float List Pmw_core Pmw_data Pmw_dp Pmw_erm Pmw_rng Printf
