lib/experiments/f3_runtime.ml: Common List Pmw_convex Pmw_core Pmw_data Pmw_erm Pmw_rng Printf
