lib/experiments/f6_generalization.ml: Array Common Float List Option Pmw_convex Pmw_core Pmw_data Pmw_erm Pmw_linalg Pmw_rng Printf
