lib/experiments/f4_privacy.ml: Array Common Float Hashtbl List Option Pmw_core Pmw_dp Pmw_erm Pmw_rng Printf String
