(* Experiment F1.crossover — Section 4.1's comparison.

   The naive baseline answers each query independently at budget split across
   k, so its error grows ~k^(1/4)..sqrt(k) with the query count; online PMW
   pays ~log k. At small k composition wins (no MW/SV overhead); at large k
   PMW must win. We sweep k at fixed n and report both errors and the
   measured crossover, next to the theory crossover from Theory.crossover_k. *)

module Table = Common.Table

let name = "f1-crossover"
let description = "Section 4.1: PMW vs naive composition as k grows — the crossover"

let run () =
  let workload = Common.Workload.regression ~d:2 () in
  let n = 150_000 in
  let trials = 3 in
  let results =
    List.map
      (fun k ->
        let pmw =
          Common.repeat ~trials (fun ~seed ->
              Common.pmw_max_error ~workload ~n ~k ~alpha:0.06 ~t_max:20
                ~oracle:(Pmw_erm.Oracles.noisy_gd ()) ~seed)
        in
        let comp =
          Common.repeat ~trials (fun ~seed ->
              Common.composition_max_error ~workload ~n ~k
                ~oracle:(Pmw_erm.Oracles.noisy_gd ()) ~seed)
        in
        (k, pmw, comp))
      [ 4; 16; 64; 256 ]
  in
  let rows =
    List.map
      (fun (k, pmw, comp) ->
        let winner =
          if pmw.Common.Stats.mean < comp.Common.Stats.mean then "PMW" else "composition"
        in
        [ string_of_int k; Common.Stats.show pmw; Common.Stats.show comp; winner ])
      results
  in
  Table.print
    ~title:(Printf.sprintf "F1.crossover: n=%d, eps=1, regression panel cycled to k" n)
    ~headers:[ "k"; "PMW max err"; "composition max err"; "winner" ]
    rows;
  let log_x = Pmw_data.Universe.log_size workload.Common.Workload.universe in
  let i =
    { (Pmw_core.Theory.default ~alpha:0.06 ~log_universe:log_x) with
      Pmw_core.Theory.scale = workload.Common.Workload.scale }
  in
  Printf.printf
    "theory crossover (sqrt k = S sqrt(log|X|) log k / alpha, constants=1): k ~ %s\n%!"
    (Table.fmt_sci (Pmw_core.Theory.crossover_k i))
