lib/convex/objective.ml: Loss Pmw_data Pmw_linalg
