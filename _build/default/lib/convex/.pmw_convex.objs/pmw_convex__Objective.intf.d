lib/convex/objective.mli: Loss Pmw_data Pmw_linalg
