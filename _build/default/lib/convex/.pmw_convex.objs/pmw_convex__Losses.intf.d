lib/convex/losses.mli: Loss Pmw_data Pmw_linalg
