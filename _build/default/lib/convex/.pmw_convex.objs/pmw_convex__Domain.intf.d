lib/convex/domain.mli: Format Pmw_linalg Pmw_rng
