lib/convex/loss.ml: Array Domain Option Pmw_data Pmw_linalg Printf
