lib/convex/domain.ml: Array Float Format Pmw_linalg Pmw_rng
