lib/convex/solve.mli: Domain Loss Objective Pmw_data Pmw_linalg
