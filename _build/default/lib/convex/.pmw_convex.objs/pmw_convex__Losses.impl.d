lib/convex/losses.ml: Array Float Loss Option Pmw_data Pmw_linalg Printf String
