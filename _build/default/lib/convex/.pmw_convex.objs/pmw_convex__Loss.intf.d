lib/convex/loss.mli: Domain Pmw_data Pmw_linalg
