lib/convex/solve.ml: Domain Float Loss Objective Pmw_linalg
