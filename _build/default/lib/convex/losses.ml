module Vec = Pmw_linalg.Vec
module Special = Pmw_linalg.Special
module Point = Pmw_data.Point

let maybe_normalize normalize loss =
  if normalize && loss.Loss.lipschitz > 0. && loss.Loss.lipschitz <> 1. then
    Loss.scale (1. /. loss.Loss.lipschitz) loss
  else loss

let squared ?(radius = 1.) ?(feature_norm = 1.) ?(label_bound = 1.) ?(normalize = true) () =
  let residual_bound = (radius *. feature_norm) +. label_bound in
  let value theta (x : Point.t) =
    let r = Vec.dot theta x.features -. x.label in
    r *. r
  in
  let grad theta (x : Point.t) =
    let r = Vec.dot theta x.features -. x.label in
    Vec.scale (2. *. r) x.features
  in
  maybe_normalize normalize
    (Loss.make ~name:"squared" ~lipschitz:(2. *. residual_bound *. feature_norm) ~value ~grad ())

let squared_margin ?(radius = 1.) ?(feature_norm = 1.) ?(normalize = true) () =
  let margin_bound = 1. +. (radius *. feature_norm) in
  let glm =
    {
      Loss.link = (fun u -> (1. -. u) *. (1. -. u));
      link_deriv = (fun u -> -2. *. (1. -. u));
      feature = (fun (x : Point.t) -> Vec.scale x.label x.features);
    }
  in
  maybe_normalize normalize
    (Loss.of_glm ~name:"squared_margin" ~lipschitz:(2. *. margin_bound *. feature_norm) glm)

let logistic ?(feature_norm = 1.) () =
  let glm =
    {
      Loss.link = Special.log1p_exp;
      link_deriv = Special.logistic;
      feature = (fun (x : Point.t) -> Vec.scale (-.x.label) x.features);
    }
  in
  Loss.of_glm ~name:"logistic" ~lipschitz:feature_norm glm

let hinge ?(feature_norm = 1.) () =
  let glm =
    {
      Loss.link = (fun u -> Float.max 0. (1. -. u));
      link_deriv = (fun u -> if u < 1. then -1. else 0.);
      feature = (fun (x : Point.t) -> Vec.scale x.label x.features);
    }
  in
  Loss.of_glm ~name:"hinge" ~lipschitz:feature_norm glm

let residual_loss ~name ~lipschitz ~psi ~psi_deriv =
  let value theta (x : Point.t) = psi (Vec.dot theta x.features -. x.label) in
  let grad theta (x : Point.t) =
    Vec.scale (psi_deriv (Vec.dot theta x.features -. x.label)) x.features
  in
  Loss.make ~name ~lipschitz ~value ~grad ()

let huber ?(delta = 1.) ?(feature_norm = 1.) () =
  if delta <= 0. then invalid_arg "Losses.huber: delta must be positive";
  residual_loss ~name:(Printf.sprintf "huber(%g)" delta) ~lipschitz:(delta *. feature_norm)
    ~psi:(fun r ->
      if Float.abs r <= delta then 0.5 *. r *. r else delta *. (Float.abs r -. (0.5 *. delta)))
    ~psi_deriv:(fun r -> Special.clamp ~lo:(-.delta) ~hi:delta r)

let absolute ?(feature_norm = 1.) () =
  residual_loss ~name:"absolute" ~lipschitz:feature_norm ~psi:Float.abs ~psi_deriv:(fun r ->
      if r > 0. then 1. else if r < 0. then -1. else 0.)

let quantile ~tau ?(feature_norm = 1.) () =
  if tau <= 0. || tau >= 1. then invalid_arg "Losses.quantile: tau must lie in (0, 1)";
  residual_loss
    ~name:(Printf.sprintf "quantile(%g)" tau)
    ~lipschitz:(Float.max tau (1. -. tau) *. feature_norm)
    ~psi:(fun r -> if r >= 0. then tau *. r else (tau -. 1.) *. r)
    ~psi_deriv:(fun r -> if r > 0. then tau else if r < 0. then tau -. 1. else 0.)

let ridge ~lambda ~radius base =
  if lambda < 0. then invalid_arg "Losses.ridge: lambda must be non-negative";
  let reg =
    Loss.make
      ~name:(Printf.sprintf "l2reg(%g)" lambda)
      ~lipschitz:(lambda *. radius) ~strong_convexity:lambda
      ~value:(fun theta _ -> 0.5 *. lambda *. Vec.norm2_sq theta)
      ~grad:(fun theta _ -> Vec.scale lambda theta)
      ()
  in
  Loss.add base reg

let prox_quadratic ~sigma ~target ~dim ?(radius = 1.) () =
  if sigma <= 0. then invalid_arg "Losses.prox_quadratic: sigma must be positive";
  let value theta (x : Point.t) =
    let t = target x in
    if Vec.dim t <> dim then invalid_arg "Losses.prox_quadratic: target dimension mismatch";
    let d = Vec.dist2 theta t in
    0.5 *. sigma *. d *. d
  in
  let grad theta (x : Point.t) = Vec.scale sigma (Vec.sub theta (target x)) in
  (* ‖∇‖ = σ‖θ − target‖ <= σ·2·radius when both live in the radius ball. *)
  Loss.make
    ~name:(Printf.sprintf "prox_quadratic(σ=%g)" sigma)
    ~lipschitz:(2. *. sigma *. radius) ~strong_convexity:sigma ~value ~grad ()

let poisson ?(max_rate = 8.) ?(feature_norm = 1.) () =
  if max_rate <= 1. then invalid_arg "Losses.poisson: max_rate must exceed 1";
  let zmax = log max_rate in
  (* Clamp the linear predictor to [-zmax, zmax]: keeps e^z and hence the
     gradient bounded, preserving convexity (composition of convex clamped
     affine... the clamp makes the loss piecewise: constant-slope extension
     outside the window, which preserves convexity of e^z - y z only on the
     increasing side; we instead extend linearly with the boundary slope,
     the standard convex extension). *)
  let link z y =
    if z <= zmax then exp z -. (y *. z)
    else exp zmax +. ((exp zmax -. y) *. (z -. zmax)) -. (y *. zmax)
  in
  let link_deriv z y = (if z <= zmax then exp z else exp zmax) -. y in
  let value theta (x : Point.t) = link (Vec.dot theta x.features) x.label in
  let grad theta (x : Point.t) =
    Vec.scale (link_deriv (Vec.dot theta x.features) x.label) x.features
  in
  (* |l'| <= max(max_rate + y, y); labels assumed bounded by max_rate too *)
  Loss.make ~name:(Printf.sprintf "poisson(max=%g)" max_rate)
    ~lipschitz:(2. *. max_rate *. feature_norm) ~value ~grad ()

let smoothed_hinge ?(gamma = 0.5) ?(feature_norm = 1.) () =
  if gamma <= 0. then invalid_arg "Losses.smoothed_hinge: gamma must be positive";
  let link u =
    if u >= 1. then 0.
    else if u <= 1. -. gamma then 1. -. u -. (gamma /. 2.)
    else (1. -. u) *. (1. -. u) /. (2. *. gamma)
  in
  let link_deriv u =
    if u >= 1. then 0. else if u <= 1. -. gamma then -1. else -.(1. -. u) /. gamma
  in
  let glm =
    {
      Loss.link;
      link_deriv;
      feature = (fun (x : Point.t) -> Vec.scale x.label x.features);
    }
  in
  Loss.of_glm ~name:(Printf.sprintf "smoothed_hinge(%g)" gamma) ~lipschitz:feature_norm glm

let epsilon_insensitive ~epsilon ?(feature_norm = 1.) () =
  if epsilon < 0. then invalid_arg "Losses.epsilon_insensitive: epsilon must be non-negative";
  residual_loss
    ~name:(Printf.sprintf "eps_insensitive(%g)" epsilon)
    ~lipschitz:feature_norm
    ~psi:(fun r -> Float.max 0. (Float.abs r -. epsilon))
    ~psi_deriv:(fun r -> if r > epsilon then 1. else if r < -.epsilon then -1. else 0.)

let preprocess ~name ~f (base : Loss.t) =
  {
    base with
    Loss.name;
    value = (fun theta x -> base.Loss.value theta (f x));
    grad = (fun theta x -> base.Loss.grad theta (f x));
    glm = Option.map (fun g -> { g with Loss.feature = (fun x -> g.Loss.feature (f x)) }) base.Loss.glm;
  }

let feature_mask mask base =
  let f (x : Point.t) =
    if Array.length mask <> Vec.dim x.features then
      invalid_arg "Losses.feature_mask: mask dimension mismatch";
    Point.make ~label:x.label (Array.mapi (fun i v -> if mask.(i) then v else 0.) x.features)
  in
  let shown = String.concat "" (Array.to_list (Array.map (fun b -> if b then "1" else "0") mask)) in
  preprocess ~name:(Printf.sprintf "%s|mask=%s" base.Loss.name shown) ~f base

let mean_estimation ~q ~name =
  let value theta (x : Point.t) =
    let r = theta.(0) -. q x in
    r *. r
  in
  let grad theta (x : Point.t) = [| 2. *. (theta.(0) -. q x) |] in
  Loss.make ~name:(Printf.sprintf "mean[%s]" name) ~lipschitz:2. ~strong_convexity:2. ~value ~grad ()
