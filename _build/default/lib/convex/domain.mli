(** Parameter domains [Θ ⊆ Rᵈ]: closed convex sets with a Euclidean
    projection oracle.

    The paper's normalizations use the unit L2 ball ([d]-Bounded condition);
    the 1-dimensional box realizes linear queries as CM queries; the simplex
    appears in tests. *)

type kind =
  | L2_ball of float  (** [{θ : ‖θ‖₂ <= r}] *)
  | Box of { lo : float; hi : float }  (** [\[lo, hi\]ᵈ] *)
  | Simplex  (** [{θ >= 0, Σθ = 1}] *)

type t

val make : dim:int -> kind -> t
(** @raise Invalid_argument on non-positive [dim], negative radius, or an
    empty box. *)

val l2_ball : dim:int -> radius:float -> t
val unit_ball : dim:int -> t
val box : dim:int -> lo:float -> hi:float -> t
val interval : lo:float -> hi:float -> t
(** One-dimensional box. *)

val simplex : dim:int -> t

val dim : t -> int
val kind : t -> kind

val project : t -> Pmw_linalg.Vec.t -> Pmw_linalg.Vec.t
(** Euclidean projection onto the set.
    @raise Invalid_argument on a dimension mismatch. *)

val contains : ?tol:float -> t -> Pmw_linalg.Vec.t -> bool

val diameter : t -> float
(** Euclidean diameter — enters step sizes and the scale parameter [S]. *)

val center : t -> Pmw_linalg.Vec.t
(** A canonical interior point used as the solvers' default start. *)

val random_point : t -> Pmw_rng.Rng.t -> Pmw_linalg.Vec.t
(** A point of the set, used by property tests (uniform for boxes, projected
    Gaussian otherwise — any distribution supported on the set suffices). *)

val pp : Format.formatter -> t -> unit
