(** Objectives: a loss averaged over a data distribution, as a closure the
    solvers can minimize.

    The paper evaluates losses both against histograms (the public hypothesis
    [D̂ₜ] and the true histogram [D]) and against raw datasets (the
    single-query oracles); both are provided. *)

type t = {
  dim : int;
  f : Pmw_linalg.Vec.t -> float;
  grad : Pmw_linalg.Vec.t -> Pmw_linalg.Vec.t;
}

val of_histogram : Loss.t -> Pmw_data.Histogram.t -> dim:int -> t
(** [ℓ(θ; D) = Σ_x D(x) ℓ(θ; x)] and its gradient. *)

val of_dataset : Loss.t -> Pmw_data.Dataset.t -> dim:int -> t
(** [(1/n) Σᵢ ℓ(θ; xᵢ)]. *)

val of_fn : dim:int -> f:(Pmw_linalg.Vec.t -> float) -> grad:(Pmw_linalg.Vec.t -> Pmw_linalg.Vec.t) -> t

val add_ridge : t -> lambda:float -> t
(** The objective plus [(λ/2)‖θ‖²] — regularization applied at the objective
    level (used by output perturbation). *)
