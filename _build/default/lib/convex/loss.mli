(** First-class convex loss functions [ℓ(θ; x)].

    A CM query (Section 2.2) is specified by such a loss together with a
    {!Domain.t}. Losses carry their analytic constants so that mechanisms can
    compute sensitivities and step sizes:

    - [lipschitz]: a bound on [‖∇ℓ_x(θ)‖₂] over the intended domain and
      universe (the paper's Lipschitz condition);
    - [strong_convexity]: the σ of σ-strong convexity ([0.] when merely
      convex);
    - [glm]: present when the loss is a generalized linear model
      [ℓ(θ; x) = ℓ'(⟨θ, φ(x)⟩)] (Section 4.2.2), enabling the
      dimension-independent oracle.

    Gradients may be arbitrary subgradients at kinks (hinge, absolute), as
    the paper allows. *)

type glm = {
  link : float -> float;  (** ℓ' — the scalar convex link *)
  link_deriv : float -> float;  (** a (sub)derivative of ℓ' *)
  feature : Pmw_data.Point.t -> Pmw_linalg.Vec.t;
      (** φ — folds the label into the feature vector, e.g. [-y·x] for
          logistic loss *)
}

type t = {
  name : string;
  value : Pmw_linalg.Vec.t -> Pmw_data.Point.t -> float;
  grad : Pmw_linalg.Vec.t -> Pmw_data.Point.t -> Pmw_linalg.Vec.t;
  lipschitz : float;
  strong_convexity : float;
  glm : glm option;
}

val make :
  name:string ->
  ?lipschitz:float ->
  ?strong_convexity:float ->
  ?glm:glm ->
  value:(Pmw_linalg.Vec.t -> Pmw_data.Point.t -> float) ->
  grad:(Pmw_linalg.Vec.t -> Pmw_data.Point.t -> Pmw_linalg.Vec.t) ->
  unit ->
  t
(** Defaults: [lipschitz = 1.], [strong_convexity = 0.].
    @raise Invalid_argument on negative constants. *)

val of_glm : name:string -> ?lipschitz:float -> ?strong_convexity:float -> glm -> t
(** Build the loss from its GLM structure; [value]/[grad] are derived. *)

val scale : float -> t -> t
(** [scale c loss] multiplies the loss (and its constants) by [c > 0]. *)

val add : t -> t -> t
(** Pointwise sum; constants add (a valid, possibly loose, bound). *)

val scale_parameter : t -> Domain.t -> float
(** The paper's scaling constant
    [S >= max_{x,θ,θ'} |⟨θ − θ', ∇ℓ_x(θ)⟩| <= diameter(Θ) · lipschitz].
    Every use of [S] in the algorithm takes this bound. *)

val numeric_grad : t -> Pmw_linalg.Vec.t -> Pmw_data.Point.t -> Pmw_linalg.Vec.t
(** Central finite differences — used by tests to validate analytic
    gradients. *)
