module Vec = Pmw_linalg.Vec

type t = { dim : int; f : Vec.t -> float; grad : Vec.t -> Vec.t }

let of_histogram (loss : Loss.t) hist ~dim =
  {
    dim;
    f = (fun theta -> Pmw_data.Histogram.expect hist (fun _ x -> loss.Loss.value theta x));
    grad =
      (fun theta -> Pmw_data.Histogram.expect_vec hist ~dim (fun _ x -> loss.Loss.grad theta x));
  }

(* The dataset's histogram is an exact summary of the empirical objective, so
   evaluate through it: O(|X|) per evaluation instead of O(n). *)
let of_dataset (loss : Loss.t) ds ~dim = of_histogram loss (Pmw_data.Dataset.histogram ds) ~dim

let of_fn ~dim ~f ~grad = { dim; f; grad }

let add_ridge t ~lambda =
  if lambda < 0. then invalid_arg "Objective.add_ridge: lambda must be non-negative";
  {
    t with
    f = (fun theta -> t.f theta +. (0.5 *. lambda *. Vec.norm2_sq theta));
    grad = (fun theta -> Vec.add (t.grad theta) (Vec.scale lambda theta));
  }
