module Vec = Pmw_linalg.Vec

type glm = {
  link : float -> float;
  link_deriv : float -> float;
  feature : Pmw_data.Point.t -> Vec.t;
}

type t = {
  name : string;
  value : Vec.t -> Pmw_data.Point.t -> float;
  grad : Vec.t -> Pmw_data.Point.t -> Vec.t;
  lipschitz : float;
  strong_convexity : float;
  glm : glm option;
}

let make ~name ?(lipschitz = 1.) ?(strong_convexity = 0.) ?glm ~value ~grad () =
  if lipschitz < 0. then invalid_arg "Loss.make: negative Lipschitz constant";
  if strong_convexity < 0. then invalid_arg "Loss.make: negative strong convexity";
  { name; value; grad; lipschitz; strong_convexity; glm }

let of_glm ~name ?lipschitz ?strong_convexity glm =
  let value theta x = glm.link (Vec.dot theta (glm.feature x)) in
  let grad theta x =
    let phi = glm.feature x in
    Vec.scale (glm.link_deriv (Vec.dot theta phi)) phi
  in
  make ~name ?lipschitz ?strong_convexity ~glm ~value ~grad ()

let scale c t =
  if c <= 0. then invalid_arg "Loss.scale: factor must be positive";
  {
    name = Printf.sprintf "%g*%s" c t.name;
    value = (fun theta x -> c *. t.value theta x);
    grad = (fun theta x -> Vec.scale c (t.grad theta x));
    lipschitz = c *. t.lipschitz;
    strong_convexity = c *. t.strong_convexity;
    glm =
      Option.map
        (fun g ->
          {
            g with
            link = (fun z -> c *. g.link z);
            link_deriv = (fun z -> c *. g.link_deriv z);
          })
        t.glm;
  }

let add a b =
  {
    name = Printf.sprintf "%s+%s" a.name b.name;
    value = (fun theta x -> a.value theta x +. b.value theta x);
    grad = (fun theta x -> Vec.add (a.grad theta x) (b.grad theta x));
    lipschitz = a.lipschitz +. b.lipschitz;
    strong_convexity = a.strong_convexity +. b.strong_convexity;
    glm = None;
  }

let scale_parameter t domain = Domain.diameter domain *. t.lipschitz

let numeric_grad t theta x =
  let h = 1e-6 in
  Vec.init (Vec.dim theta) (fun i ->
      let plus = Vec.copy theta and minus = Vec.copy theta in
      plus.(i) <- plus.(i) +. h;
      minus.(i) <- minus.(i) -. h;
      (t.value plus x -. t.value minus x) /. (2. *. h))
