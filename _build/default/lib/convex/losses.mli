(** The loss-function library: every family the paper's applications section
    (Section 4.2) discusses, plus the reductions used by experiments.

    All builders state the bounds under which their Lipschitz constants are
    valid: feature vectors with [‖x‖₂ <= feature_norm], labels
    [|y| <= label_bound], and parameters in a ball of radius [radius]
    (defaults all [1.], matching the paper's normalization). Pass
    [~normalize:true] (the default for the unbounded-curvature losses) to
    rescale the loss so its Lipschitz constant is exactly 1. *)

val squared :
  ?radius:float -> ?feature_norm:float -> ?label_bound:float -> ?normalize:bool -> unit -> Loss.t
(** Linear-regression loss [(⟨θ,x⟩ − y)²] (Section 1's running example). Not
    a pure GLM in our representation (the label enters non-linearly). *)

val squared_margin : ?radius:float -> ?feature_norm:float -> ?normalize:bool -> unit -> Loss.t
(** [(1 − y⟨θ,x⟩)²] for labels [y ∈ {±1}] — the GLM form of squared loss
    ([link u = (1-u)²], [φ = y·x]); used by the UGLM experiments. *)

val logistic : ?feature_norm:float -> unit -> Loss.t
(** [log(1 + e^{−y⟨θ,x⟩})] for [y ∈ {±1}]; a 1-Lipschitz GLM when
    [feature_norm = 1]. *)

val hinge : ?feature_norm:float -> unit -> Loss.t
(** SVM loss [max(0, 1 − y⟨θ,x⟩)]; GLM, subgradient at the kink. *)

val huber : ?delta:float -> ?feature_norm:float -> unit -> Loss.t
(** Huber regression loss on the residual [⟨θ,x⟩ − y] (default
    [delta = 1.]). *)

val absolute : ?feature_norm:float -> unit -> Loss.t
(** Least-absolute-deviation loss [|⟨θ,x⟩ − y|]. *)

val quantile : tau:float -> ?feature_norm:float -> unit -> Loss.t
(** Pinball loss for quantile regression. @raise Invalid_argument unless
    [0 < tau < 1]. *)

val ridge : lambda:float -> radius:float -> Loss.t -> Loss.t
(** [ℓ + (λ/2)‖θ‖²]: adds [λ]-strong convexity; the Lipschitz constant grows
    by [λ·radius]. @raise Invalid_argument if [lambda < 0]. *)

val prox_quadratic : sigma:float -> target:(Pmw_data.Point.t -> Pmw_linalg.Vec.t) -> dim:int -> ?radius:float -> unit -> Loss.t
(** [(σ/2)‖θ − target(x)‖²] — the canonical σ-strongly-convex loss. Its exact
    minimizer over any distribution is the mean of [target], which gives
    tests and the strongly-convex experiments a closed-form ground truth. *)

val poisson : ?max_rate:float -> ?feature_norm:float -> unit -> Loss.t
(** Poisson-regression negative log-likelihood [e^{⟨θ,x⟩} − y·⟨θ,x⟩] for
    count labels [y >= 0], with the link clamped at [log max_rate] (default
    [max_rate = 8.]) so the Lipschitz constant is finite on the unit ball —
    the clamping is the standard trick for bounded-sensitivity private
    Poisson regression. A GLM in the paper's sense only for fixed [y]; we
    expose value/grad directly. *)

val smoothed_hinge : ?gamma:float -> ?feature_norm:float -> unit -> Loss.t
(** Quadratically smoothed hinge (Rennie): equal to the hinge outside a
    [gamma]-neighborhood of the kink, quadratic inside (default
    [gamma = 0.5]). Differentiable everywhere — the smooth surrogate used
    when the oracle prefers smooth objectives. GLM. *)

val epsilon_insensitive : epsilon:float -> ?feature_norm:float -> unit -> Loss.t
(** Support-vector-regression loss [max(0, |⟨θ,x⟩ − y| − epsilon)].
    @raise Invalid_argument if [epsilon < 0]. *)

val preprocess : name:string -> f:(Pmw_data.Point.t -> Pmw_data.Point.t) -> Loss.t -> Loss.t
(** Apply the loss to transformed records, e.g. restrict a regression to a
    feature subset by zeroing masked coordinates. The stated constants carry
    over only when [f] does not increase feature norms or label magnitudes
    (true for masking/clipping); the caller is responsible. *)

val feature_mask : bool array -> Loss.t -> Loss.t
(** [preprocess] specialized to zeroing the coordinates where the mask is
    [false] — the "regression on a sub-panel of attributes" queries used in
    the example analysts. *)

val mean_estimation : q:(Pmw_data.Point.t -> float) -> name:string -> Loss.t
(** The reduction realizing a linear query [q : X → \[0,1\]] as a CM query
    over [Θ = \[0,1\]]: [ℓ(θ; x) = (θ − q(x))²], whose exact minimizer is the
    query answer [⟨q, D⟩]. 2-strongly convex, 2-Lipschitz on [\[0,1\]]. *)
