module Vec = Pmw_linalg.Vec
module Proj = Pmw_linalg.Proj

type kind = L2_ball of float | Box of { lo : float; hi : float } | Simplex

type t = { dim : int; kind : kind }

let make ~dim kind =
  if dim <= 0 then invalid_arg "Domain.make: dim must be positive";
  (match kind with
  | L2_ball r -> if r < 0. then invalid_arg "Domain.make: negative radius"
  | Box { lo; hi } -> if hi < lo then invalid_arg "Domain.make: empty box"
  | Simplex -> ());
  { dim; kind }

let l2_ball ~dim ~radius = make ~dim (L2_ball radius)
let unit_ball ~dim = l2_ball ~dim ~radius:1.
let box ~dim ~lo ~hi = make ~dim (Box { lo; hi })
let interval ~lo ~hi = box ~dim:1 ~lo ~hi
let simplex ~dim = make ~dim Simplex

let dim t = t.dim
let kind t = t.kind

let check_dim t v =
  if Vec.dim v <> t.dim then invalid_arg "Domain: vector dimension mismatch"

let project t v =
  check_dim t v;
  match t.kind with
  | L2_ball r -> Proj.l2_ball ~radius:r v
  | Box { lo; hi } -> Proj.box ~lo ~hi v
  | Simplex -> Proj.simplex v

let contains ?(tol = 1e-9) t v =
  check_dim t v;
  match t.kind with
  | L2_ball r -> Vec.norm2 v <= r +. tol
  | Box { lo; hi } -> Array.for_all (fun x -> x >= lo -. tol && x <= hi +. tol) v
  | Simplex ->
      Array.for_all (fun x -> x >= -.tol) v && Float.abs (Vec.kahan_sum v -. 1.) <= tol *. float_of_int t.dim

let diameter t =
  match t.kind with
  | L2_ball r -> 2. *. r
  | Box { lo; hi } -> (hi -. lo) *. sqrt (float_of_int t.dim)
  | Simplex -> sqrt 2.

let center t =
  match t.kind with
  | L2_ball _ -> Vec.create t.dim
  | Box { lo; hi } -> Vec.constant t.dim (0.5 *. (lo +. hi))
  | Simplex -> Vec.constant t.dim (1. /. float_of_int t.dim)

let random_point t rng =
  match t.kind with
  | Box { lo; hi } -> Vec.init t.dim (fun _ -> Pmw_rng.Rng.uniform rng ~lo ~hi)
  | L2_ball _ | Simplex ->
      let g = Pmw_rng.Dist.gaussian_vector ~dim:t.dim ~sigma:1. rng in
      project t g

let pp fmt t =
  match t.kind with
  | L2_ball r -> Format.fprintf fmt "ball(d=%d, r=%g)" t.dim r
  | Box { lo; hi } -> Format.fprintf fmt "box(d=%d, [%g,%g])" t.dim lo hi
  | Simplex -> Format.fprintf fmt "simplex(d=%d)" t.dim
