type inputs = {
  alpha : float;
  eps : float;
  d : int;
  log_universe : float;
  k : int;
  sigma : float;
  scale : float;
}

let default ~alpha ~log_universe =
  { alpha; eps = 1.; d = 1; log_universe; k = 1; sigma = 1.; scale = 1. }

let logk i = Float.max 1. (log (float_of_int i.k))
let fd i = float_of_int i.d

let linear_single i = 1. /. i.alpha

let lipschitz_single i = sqrt (fd i) /. (i.alpha *. i.eps)

let uglm_single i = 1. /. (i.alpha *. i.alpha *. i.eps)

let strongly_convex_single i = sqrt (fd i) /. (sqrt i.sigma *. i.alpha *. i.eps)

let linear_k i = sqrt i.log_universe *. logk i /. (i.alpha *. i.alpha)

let lipschitz_k i =
  Float.max
    (sqrt (fd i *. i.log_universe) /. (i.alpha *. i.alpha))
    (logk i *. sqrt i.log_universe /. (i.alpha *. i.alpha))
  /. i.eps

let uglm_k i =
  sqrt i.log_universe /. i.eps
  *. Float.max (1. /. (i.alpha ** 3.)) (logk i /. (i.alpha *. i.alpha))

let strongly_convex_k i =
  sqrt i.log_universe /. i.eps
  *. Float.max
       (sqrt (fd i) /. (sqrt i.sigma *. (i.alpha ** 1.5)))
       (logk i /. (i.alpha *. i.alpha))

let t_updates i = 64. *. i.scale *. i.scale *. i.log_universe /. (i.alpha *. i.alpha)

let theorem_3_8_n i ~n_single ~delta ~beta =
  let bound =
    4096. *. i.scale *. i.scale
    *. sqrt (i.log_universe *. log (4. /. delta))
    *. log (8. *. float_of_int i.k /. beta)
    /. (i.eps *. i.alpha *. i.alpha)
  in
  Float.max n_single bound

let composition_k i ~n_single = n_single *. sqrt (float_of_int i.k)

let crossover_k i =
  let c = i.scale *. sqrt i.log_universe /. i.alpha in
  (* Solve sqrt k = c * log k for k >= e^2 (below that, PMW wins trivially
     whenever c >= sqrt e / 1). Bisection on f(k) = sqrt k - c log k. *)
  let f k = sqrt k -. (c *. log k) in
  (* f dips to its minimum at k = 4c² then rises; bisect on the rising branch
     for the larger root. If even the minimum is positive, composition never
     catches up and the crossover is immediate. *)
  let lo = Float.max (exp 2.) (4. *. c *. c) in
  if f lo > 0. then lo
  else
    let hi =
      let rec grow h = if f h > 0. || h > 1e30 then h else grow (h *. 4.) in
      grow (2. *. lo)
    in
    Pmw_linalg.Special.binary_search_root ~lo ~hi f
