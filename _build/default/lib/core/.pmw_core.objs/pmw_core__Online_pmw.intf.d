lib/core/online_pmw.mli: Cm_query Config Pmw_data Pmw_dp Pmw_erm Pmw_linalg Pmw_rng
