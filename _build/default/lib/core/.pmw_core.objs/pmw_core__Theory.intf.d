lib/core/theory.mli:
