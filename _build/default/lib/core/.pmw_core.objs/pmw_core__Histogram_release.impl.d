lib/core/histogram_release.ml: Array Float Linear_pmw Pmw_data Pmw_linalg Pmw_rng
