lib/core/workloads.mli: Cm_query Linear_pmw Pmw_convex Pmw_data Pmw_rng
