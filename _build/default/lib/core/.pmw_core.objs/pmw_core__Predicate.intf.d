lib/core/predicate.mli: Linear_pmw Pmw_data
