lib/core/budget.ml: Float List Pmw_dp Printf
