lib/core/smalldb.mli: Linear_pmw Pmw_data Pmw_rng
