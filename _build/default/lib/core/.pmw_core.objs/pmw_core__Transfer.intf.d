lib/core/transfer.mli: Pmw_dp
