lib/core/composition.ml: Cm_query Pmw_data Pmw_dp Pmw_erm Pmw_rng
