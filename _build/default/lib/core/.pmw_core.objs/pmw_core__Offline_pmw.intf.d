lib/core/offline_pmw.mli: Cm_query Config Pmw_data Pmw_erm Pmw_linalg Pmw_rng
