lib/core/budget.mli: Pmw_dp
