lib/core/composition.mli: Cm_query Pmw_data Pmw_dp Pmw_erm Pmw_linalg Pmw_rng
