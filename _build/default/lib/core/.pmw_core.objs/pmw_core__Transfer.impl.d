lib/core/transfer.ml: Pmw_dp
