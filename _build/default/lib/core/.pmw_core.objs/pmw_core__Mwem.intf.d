lib/core/mwem.mli: Linear_pmw Pmw_data Pmw_rng
