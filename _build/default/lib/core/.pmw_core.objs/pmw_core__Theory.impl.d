lib/core/theory.ml: Float Pmw_linalg
