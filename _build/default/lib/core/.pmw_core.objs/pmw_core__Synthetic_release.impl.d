lib/core/synthetic_release.ml: Array Cm_query Offline_pmw Option Pmw_data
