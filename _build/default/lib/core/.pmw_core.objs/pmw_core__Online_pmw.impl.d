lib/core/online_pmw.ml: Cm_query Config Float List Logs Option Pmw_convex Pmw_data Pmw_dp Pmw_erm Pmw_linalg Pmw_mw Pmw_rng Printf
