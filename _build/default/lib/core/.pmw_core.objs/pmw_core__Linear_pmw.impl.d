lib/core/linear_pmw.ml: Float Int Pmw_data Pmw_dp Pmw_mw Pmw_rng
