lib/core/linear_pmw.mli: Pmw_data Pmw_dp Pmw_rng
