lib/core/config.mli: Format Pmw_data Pmw_dp
