lib/core/config.ml: Float Format Int Pmw_data Pmw_dp
