lib/core/synthetic_release.mli: Cm_query Config Offline_pmw Pmw_data Pmw_erm Pmw_rng
