lib/core/smalldb.ml: Array Float Int Linear_pmw Pmw_data Pmw_dp Printf
