lib/core/predicate.ml: Array Linear_pmw List Pmw_data Printf String
