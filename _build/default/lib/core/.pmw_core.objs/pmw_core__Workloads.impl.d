lib/core/workloads.ml: Array Cm_query Float Linear_pmw List Pmw_convex Pmw_data Pmw_rng Printf String
