lib/core/histogram_release.mli: Linear_pmw Pmw_data Pmw_rng
