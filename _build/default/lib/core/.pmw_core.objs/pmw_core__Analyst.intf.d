lib/core/analyst.mli: Cm_query Pmw_data Pmw_linalg Pmw_rng
