lib/core/cm_query.ml: Float Pmw_convex Pmw_data Pmw_linalg
