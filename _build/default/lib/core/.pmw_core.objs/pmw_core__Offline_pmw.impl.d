lib/core/offline_pmw.ml: Array Cm_query Config Float List Pmw_convex Pmw_data Pmw_dp Pmw_erm Pmw_linalg Pmw_mw
