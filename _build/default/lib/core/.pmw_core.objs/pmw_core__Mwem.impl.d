lib/core/mwem.ml: Array Float Linear_pmw List Pmw_data Pmw_dp Pmw_mw
