lib/core/cm_query.mli: Pmw_convex Pmw_data Pmw_linalg
