lib/core/analyst.ml: Array Cm_query Float List Option Pmw_linalg Pmw_rng
