module Params = Pmw_dp.Params

type t = { total : Params.t; mutable granted : Params.t list }

let create total = { total; granted = [] }

let total t = t.total

let spent t = Params.compose_basic (List.rev t.granted)

let remaining t =
  let s = spent t in
  Params.create
    ~eps:(Float.max 0. (t.total.Params.eps -. s.Params.eps))
    ~delta:(Float.max 0. (t.total.Params.delta -. s.Params.delta))

let request t slice =
  let r = remaining t in
  if slice.Params.eps > r.Params.eps +. 1e-15 then
    Error
      (Printf.sprintf "budget exhausted: requested eps=%g but only %g remains" slice.Params.eps
         r.Params.eps)
  else if slice.Params.delta > r.Params.delta +. 1e-300 then
    Error
      (Printf.sprintf "budget exhausted: requested delta=%g but only %g remains"
         slice.Params.delta r.Params.delta)
  else begin
    t.granted <- slice :: t.granted;
    Ok slice
  end

let request_fraction t fraction =
  if fraction <= 0. || fraction > 1. then
    invalid_arg "Budget.request_fraction: fraction must lie in (0, 1]";
  request t
    (Params.create
       ~eps:(t.total.Params.eps *. fraction)
       ~delta:(t.total.Params.delta *. fraction))

let exhausted ?(tolerance = 1e-12) t = (remaining t).Params.eps <= tolerance

let history t = List.rev t.granted
