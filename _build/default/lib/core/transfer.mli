(** The DP → generalization transfer (Section 1.3).

    Dwork et al. (STOC 2015) and Bassily et al. (2015, for CM queries) show:
    if a mechanism is [(ε, δ)]-DP and its answers are [α]-accurate with
    respect to the {e sample}, then they are also accurate with respect to
    the {e population} the sample was drawn from — even against an adaptive
    analyst. This module packages the calculator form of that statement (the
    bound the F6 experiment verifies empirically).

    For bounded (range-1) statistics the simple transfer reads

    [α_pop <= α_sample + (e^ε − 1) + k·δ + sampling(n, β)]

    with [sampling(n, β) = √(ln(2k/β) / 2n)] the non-adaptive Hoeffding
    term. The [(e^ε − 1)] term is the max-information cost of privacy; δ
    enters linearly per query. Constants are the simple (not the
    state-of-the-art) ones — the point is the structure. *)

val sampling_term : n:int -> k:int -> beta:float -> float
(** [√(ln(2k/β) / 2n)]. *)

val population_error :
  sample_alpha:float -> privacy:Pmw_dp.Params.t -> n:int -> k:int -> beta:float -> float
(** The transfer bound above. @raise Invalid_argument on non-positive
    [n]/[k] or [beta] outside (0, 1). *)

val overfitting_bound_without_privacy : n:int -> k:int -> beta:float -> float
(** What adaptivity costs without privacy: a k-query adaptive analyst can
    build a statistic whose population error is [Ω(√(k/n))] (Dinur–Nissim /
    HU14 style); we report that rate, [√(k/n)], as the comparison column —
    exponentially worse in the number of queries than the private
    [√(log k/n)]-type rate. *)
