(** Standard linear-query workloads over grid/hypercube universes.

    These are the query families the linear-query literature the paper
    builds on (HR10, HLM12) evaluates against: marginals and conjunctions,
    threshold (CDF) queries, and random signed conjunctions. All queries
    take values in [\[0, 1\]] per record, as {!Linear_pmw.query} requires. *)

val positive_marginals : dim:int -> order:int -> Linear_pmw.query list
(** All conjunctions of exactly [order] literals of the form [x_j > 0] —
    [C(dim, order)] queries. @raise Invalid_argument unless
    [1 <= order <= dim]. *)

val marginals_up_to : dim:int -> order:int -> Linear_pmw.query list
(** Orders 1..[order] concatenated. *)

val thresholds : axis:int -> cuts:float list -> Linear_pmw.query list
(** CDF queries [Pr(x_axis <= c)] for each cut [c]. *)

val label_positive : Linear_pmw.query
(** [Pr(label > 0)] — for labeled universes. *)

val random_signed_conjunctions :
  dim:int -> order:int -> count:int -> Pmw_rng.Rng.t -> Linear_pmw.query list
(** [count] random conjunctions of [order] literals, each literal [x_j > 0]
    or [x_j < 0] on a distinct random coordinate — the workload HR10-style
    experiments use to stress large k. *)

val as_cm_queries : domain:Pmw_convex.Domain.t -> Linear_pmw.query list -> Cm_query.t list
(** The mean-estimation CM reduction of each query (Θ = the given 1-d box),
    for feeding linear workloads to the CM mechanism. *)

val evaluate_all : Linear_pmw.query list -> Pmw_data.Histogram.t -> float list
(** True answers [⟨q, D⟩] for the whole workload. *)

val max_abs_error : truth:float list -> answers:float list -> float
(** [max_i |answers_i - truth_i|], ignoring NaN answers (halted mechanisms). *)
