module Vec = Pmw_linalg.Vec
module Loss = Pmw_convex.Loss
module Domain = Pmw_convex.Domain
module Solve = Pmw_convex.Solve

type t = { name : string; loss : Loss.t; domain : Domain.t }

let make ?name ~loss ~domain () =
  let name = match name with Some n -> n | None -> loss.Loss.name in
  { name; loss; domain }

let dim t = Domain.dim t.domain

let scale t = Loss.scale_parameter t.loss t.domain

let error_sensitivity t ~n =
  if n <= 0 then invalid_arg "Cm_query.error_sensitivity: n must be positive";
  3. *. scale t /. float_of_int n

let minimize_on_histogram ?iters t hist = Solve.minimize_loss_on_histogram ?iters t.loss t.domain hist
let minimize_on_dataset ?iters t ds = Solve.minimize_loss_on_dataset ?iters t.loss t.domain ds

let loss_on_histogram t hist theta =
  Pmw_data.Histogram.expect hist (fun _ x -> t.loss.Loss.value theta x)

let loss_on_dataset t ds theta = loss_on_histogram t (Pmw_data.Dataset.histogram ds) theta

let err_answer ?iters t ds theta =
  let reference = minimize_on_dataset ?iters t ds in
  Float.max 0. (loss_on_dataset t ds theta -. reference.Solve.value)

let err_hypothesis ?iters t ds hyp =
  let theta_hyp = (minimize_on_histogram ?iters t hyp).Solve.theta in
  err_answer ?iters t ds theta_hyp

let update_vector t ~theta_oracle ~theta_hyp _index x =
  let direction = Vec.sub theta_oracle theta_hyp in
  Vec.dot direction (t.loss.Loss.grad theta_hyp x)
