(** The straightforward baseline (Introduction, paragraph 3): answer each CM
    query independently with the single-query oracle, splitting the overall
    privacy budget across the [k] queries by composition.

    This is what the paper improves upon — its required dataset size grows
    polynomially with [k] (as [√k] under advanced composition, [k] under
    basic), versus PMW's [log k]. The F1 crossover experiment pits the two
    against each other. *)

type split = Basic | Advanced

val per_query_budget : split:split -> k:int -> Pmw_dp.Params.t -> Pmw_dp.Params.t
(** The per-query [(ε_j, δ_j)] under the chosen composition theorem. *)

type t

val create :
  dataset:Pmw_data.Dataset.t ->
  oracle:Pmw_erm.Oracle.t ->
  privacy:Pmw_dp.Params.t ->
  k:int ->
  ?split:split ->
  ?solver_iters:int ->
  rng:Pmw_rng.Rng.t ->
  unit ->
  t
(** Default split is [Advanced] (the stronger baseline). *)

val answer : t -> Cm_query.t -> Pmw_linalg.Vec.t option
(** [None] once [k] queries have been answered (the budget is exhausted). *)

val queries_answered : t -> int
val accountant : t -> Pmw_dp.Accountant.t
