module Histogram = Pmw_data.Histogram
module Universe = Pmw_data.Universe

type report = {
  rows : int array;
  histogram : Histogram.t;
  answers : float array;
  candidates : int;
}

let candidate_count ~universe_size ~m =
  (* number of multisets = C(|X| + m - 1, m); saturate instead of
     overflowing — SmallDB's counts exceed 2^62 for quite small inputs. *)
  let rec binom n k acc i =
    if i > k then acc
    else
      let next = acc *. float_of_int (n - k + i) /. float_of_int i in
      if next > 1e18 then infinity else binom n k next (i + 1)
  in
  if m <= 0 then 0
  else
    let f = binom (universe_size + m - 1) m 1. 1 in
    if f = infinity || f > float_of_int max_int /. 2. then max_int else int_of_float f

let suggested_m ~k ~alpha =
  if alpha <= 0. || alpha >= 1. then invalid_arg "Smalldb.suggested_m: alpha must lie in (0,1)";
  Int.max 1 (int_of_float (ceil (log (float_of_int (Int.max 2 k)) /. (alpha *. alpha))))

(* enumerate all sorted index tuples of length m over [0, size) *)
let iter_multisets ~size ~m f =
  let tuple = Array.make m 0 in
  let rec go pos lo =
    if pos = m then f tuple
    else
      for v = lo to size - 1 do
        tuple.(pos) <- v;
        go (pos + 1) v
      done
  in
  go 0 0

let run ~dataset ~queries ~eps ~m ?(max_candidates = 200_000) ~rng () =
  let k = Array.length queries in
  if k = 0 then invalid_arg "Smalldb.run: empty workload";
  if eps <= 0. then invalid_arg "Smalldb.run: eps must be positive";
  if m <= 0 then invalid_arg "Smalldb.run: m must be positive";
  let universe = Pmw_data.Dataset.universe dataset in
  let size = Universe.size universe in
  let total = candidate_count ~universe_size:size ~m in
  if total > max_candidates then
    invalid_arg
      (Printf.sprintf
         "Smalldb.run: %d candidate databases exceed the cap of %d (SmallDB is exponential; shrink |X| or m)"
         total max_candidates);
  let truth = Pmw_data.Dataset.histogram dataset in
  let true_answers = Array.map (fun q -> Linear_pmw.evaluate q truth) queries in
  (* Precompute per-query values on universe elements once. *)
  let qvals =
    Array.map
      (fun (q : Linear_pmw.query) ->
        Array.init size (fun i -> q.Linear_pmw.value i (Universe.get universe i)))
      queries
  in
  let scores = Array.make total 0. in
  let tuples = Array.make total [||] in
  let idx = ref 0 in
  let mf = float_of_int m in
  iter_multisets ~size ~m (fun tuple ->
      let worst = ref 0. in
      for j = 0 to k - 1 do
        let acc = ref 0. in
        Array.iter (fun i -> acc := !acc +. qvals.(j).(i)) tuple;
        let e = Float.abs ((!acc /. mf) -. true_answers.(j)) in
        if e > !worst then worst := e
      done;
      scores.(!idx) <- -. !worst;
      tuples.(!idx) <- Array.copy tuple;
      incr idx);
  let n = float_of_int (Pmw_data.Dataset.size dataset) in
  let chosen =
    Pmw_dp.Mechanisms.exponential ~eps ~sensitivity:(1. /. n) ~scores rng
  in
  let rows = tuples.(chosen) in
  let counts = Array.make size 0 in
  Array.iter (fun i -> counts.(i) <- counts.(i) + 1) rows;
  let histogram = Histogram.of_counts universe counts in
  let answers = Array.map (fun q -> Linear_pmw.evaluate q histogram) queries in
  { rows; histogram; answers; candidates = total }
