(** The interactive accuracy game [Acc_{n,k,L}] of Figure 1.

    An analyst is the adversary [B]: it emits a stream of CM queries, each
    possibly depending on the full history of queries and answers. [run]
    plays the game against any answering mechanism and records, for each
    round, the answer and its true excess risk (Definition 2.2) so that
    experiments can report [max_j err_{ℓ_j}(D, θ̂ʲ)] — the quantity
    Definition 2.4's [(α, β)]-accuracy bounds. *)

type record = {
  index : int;
  query : Cm_query.t;
  answer : Pmw_linalg.Vec.t option;  (** [None] if the mechanism halted *)
  error : float option;  (** true excess risk of the answer *)
}

type t = { name : string; next : round:int -> history:record list -> Cm_query.t option }

val of_list : name:string -> Cm_query.t list -> t
(** The non-adaptive analyst that asks a fixed sequence. *)

val cycle : name:string -> Cm_query.t list -> k:int -> t
(** Asks the given queries round-robin for [k] rounds — the repeated-workload
    analyst used in crossover experiments. *)

val adaptive :
  name:string -> (round:int -> history:record list -> Cm_query.t option) -> t
(** Fully adaptive analyst: the callback sees the entire history (most
    recent first). *)

val random_from_pool : name:string -> Cm_query.t list -> k:int -> Pmw_rng.Rng.t -> t
(** Asks [k] queries drawn uniformly (with replacement) from the pool —
    the "many analysts who don't coordinate" workload. *)

val greedy_hardest : name:string -> Cm_query.t list -> k:int -> t
(** An adversarial analyst: re-asks whichever pool query produced the
    largest recorded true error so far (exploring the pool round-robin until
    every query has been tried once). Stresses the mechanism's worst query
    instead of its average one. *)

val run :
  analyst:t ->
  k:int ->
  answer:(Cm_query.t -> Pmw_linalg.Vec.t option) ->
  dataset:Pmw_data.Dataset.t ->
  ?solver_iters:int ->
  unit ->
  record list
(** Play at most [k] rounds (stopping early when the analyst runs out of
    queries); returns the records in chronological order. *)

val estimate_accuracy : trials:int -> game:(seed:int -> record list) -> alpha:float -> float
(** Definition 2.4 empirically: play the game [trials] times (seeds
    1..trials) and return the fraction of plays in which every answered
    round had error [<= alpha] AND no round went unanswered — an estimate of
    [1 − β]. @raise Invalid_argument if [trials <= 0]. *)

val max_error : record list -> float
(** [max_j err_{ℓ_j}(D, θ̂ʲ)] over the answered rounds; [0.] if none. *)

val mean_error : record list -> float
val answered : record list -> int
