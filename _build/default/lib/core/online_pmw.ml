module Vec = Pmw_linalg.Vec
module Universe = Pmw_data.Universe
module Sv = Pmw_dp.Sparse_vector
module Solve = Pmw_convex.Solve

let log_src = Logs.Src.create "pmw.online" ~doc:"Online PMW mechanism events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type source = From_hypothesis | From_oracle

type outcome = { theta : Vec.t; source : source; update_index : int }

type t = {
  config : Config.t;
  dataset : Pmw_data.Dataset.t;
  oracle : Pmw_erm.Oracle.t;
  rng : Pmw_rng.Rng.t;
  mw : Pmw_mw.Mw.t;
  sv : Sv.t;
  accountant : Pmw_dp.Accountant.t;
  mutable answered : int;
}

let create ~config ~dataset ~oracle ?prior ~rng () =
  let universe = Pmw_data.Dataset.universe dataset in
  let n = Pmw_data.Dataset.size dataset in
  let sensitivity = 3. *. config.Config.scale /. float_of_int n in
  let sv =
    Sv.create ~t_max:config.Config.t_max ~k:config.Config.k ~threshold:config.Config.alpha
      ~privacy:config.Config.sv_privacy ~sensitivity ~rng:(Pmw_rng.Rng.split rng)
  in
  let mw =
    match prior with
    | None -> Pmw_mw.Mw.create ~universe ~eta:config.Config.eta
    | Some h ->
        if Pmw_data.Universe.name (Pmw_data.Histogram.universe h) <> Pmw_data.Universe.name universe
        then invalid_arg "Online_pmw.create: prior over a different universe";
        for i = 0 to Pmw_data.Universe.size universe - 1 do
          if Pmw_data.Histogram.get h i <= 0. then
            invalid_arg "Online_pmw.create: prior must have full support"
        done;
        Pmw_mw.Mw.of_histogram h ~eta:config.Config.eta
  in
  { config; dataset; oracle; rng; mw; sv; accountant = Pmw_dp.Accountant.create (); answered = 0 }

let hypothesis t = Pmw_mw.Mw.distribution t.mw
let updates t = Pmw_mw.Mw.updates t.mw
let queries_answered t = t.answered
let halted t = Sv.halted t.sv
let config t = t.config
let oracle_accountant t = t.accountant

let answer t query =
  if Cm_query.scale query > t.config.Config.scale +. 1e-9 then
    invalid_arg
      (Printf.sprintf "Online_pmw.answer: query scale %g exceeds configured S=%g"
         (Cm_query.scale query) t.config.Config.scale);
  if halted t then None
  else begin
    let iters = t.config.Config.solver_iters in
    let dhat = hypothesis t in
    let theta_hyp = (Cm_query.minimize_on_histogram ~iters query dhat).Solve.theta in
    (* q_j(D) = err_l(D, Dhat^t); the true-data solve below is an internal
       computation whose output only reaches the analyst through SV. *)
    let reference = Cm_query.minimize_on_dataset ~iters query t.dataset in
    let q_value =
      Float.max 0. (Cm_query.loss_on_dataset query t.dataset theta_hyp -. reference.Solve.value)
    in
    t.answered <- t.answered + 1;
    match Sv.query t.sv q_value with
    | None ->
        Log.info (fun m -> m "query %d (%s): mechanism halted" t.answered query.Cm_query.name);
        None
    | Some Sv.Bottom ->
        Log.debug (fun m ->
            m "query %d (%s): below threshold, answered from hypothesis" t.answered
              query.Cm_query.name);
        Some { theta = theta_hyp; source = From_hypothesis; update_index = updates t }
    | Some Sv.Top ->
        let request =
          {
            Pmw_erm.Oracle.dataset = t.dataset;
            loss = query.Cm_query.loss;
            domain = query.Cm_query.domain;
            privacy = t.config.Config.oracle_privacy;
            rng = t.rng;
            solver_iters = iters;
          }
        in
        let theta_oracle = t.oracle.Pmw_erm.Oracle.run request in
        Pmw_dp.Accountant.spend t.accountant t.config.Config.oracle_privacy;
        let s = t.config.Config.scale in
        let universe = Pmw_mw.Mw.universe t.mw in
        let u i =
          let x = Universe.get universe i in
          let v = Cm_query.update_vector query ~theta_oracle ~theta_hyp i x in
          Pmw_linalg.Special.clamp ~lo:(-.s) ~hi:s v
        in
        Pmw_mw.Mw.update t.mw ~loss:u;
        Log.debug (fun m ->
            m "query %d (%s): above threshold, oracle answered, MW update %d/%d" t.answered
              query.Cm_query.name (updates t) t.config.Config.t_max);
        Some { theta = theta_oracle; source = From_oracle; update_index = updates t }
  end

let answer_all t queries = List.map (answer t) queries

let as_answerer t query = Option.map (fun o -> o.theta) (answer t query)
